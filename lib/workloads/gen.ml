(* Seeded random workload generator: pointer-chasing mini-C kernels drawn
   from three skeleton families (list walk, tree walk, hash-table probe)
   with tunable footprint, stride and dependence depth. Every parameter is
   derived from the seed through splitmix64, so [gen:<seed>] names the same
   program byte-for-byte in every process — corpus runs are replayable and
   usable for differential testing of the adaptation pipeline. *)

(* splitmix64: a tiny, well-mixed, cross-platform PRNG. Deliberately not
   [Random] or [Hashtbl.hash] — those are not stable contracts across
   OCaml versions, and the generated source must be. *)
let sm64 (st : int64 ref) =
  st := Int64.add !st 0x9E3779B97F4A7C15L;
  let z = !st in
  let z =
    Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30))
      0xBF58476D1CE4E5B9L
  in
  let z =
    Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27))
      0x94D049BB133111EBL
  in
  Int64.logxor z (Int64.shift_right_logical z 31)

(* A non-negative draw in [0, bound). *)
let draw st bound =
  let r = Int64.to_int (Int64.shift_right_logical (sm64 st) 2) in
  r mod bound

type skeleton = List_walk | Tree_walk | Hash_walk

type params = {
  skeleton : skeleton;
  footprint : int;  (** structure elements per scale unit *)
  stride : int;  (** odd scramble multiplier / probe stride *)
  depth : int;  (** dependence depth: extra pointer hops per visit *)
  passes : int;  (** traversals of the structure *)
}

let params_of_seed seed =
  let st = ref (Int64.of_int seed) in
  (* A couple of warmup draws so small consecutive seeds decorrelate. *)
  ignore (sm64 st);
  ignore (sm64 st);
  let skeleton =
    match draw st 3 with 0 -> List_walk | 1 -> Tree_walk | _ -> Hash_walk
  in
  {
    skeleton;
    footprint = 512 + draw st 1536;
    stride = 3 + (2 * draw st 16);
    depth = 1 + draw st 3;
    passes = 2 + draw st 2;
  }

let skeleton_name = function
  | List_walk -> "list"
  | Tree_walk -> "tree"
  | Hash_walk -> "hash"

let ilog2 n =
  let rec go k n = if n <= 1 then k else go (k + 1) (n / 2) in
  go 0 (max 1 n)

(* List walk: nodes linked into one full-cycle random-stride permutation
   ([gcd(stride, n) = 1] since n is even and stride odd), each visit also
   hopping a chain of [depth] uniformly random [via] pointers. *)
let list_source p ~seed scale =
  let n = max 64 (2 * (p.footprint * max 1 scale / 2)) in
  let hops =
    String.concat "" (List.init p.depth (fun _ -> "    q = q->via;\n"))
  in
  Printf.sprintf
    {|
// gen:%d — seeded list walk (%d nodes, stride %d, depth %d, %d passes)
struct lnode { int value; lnode* next; lnode* via; }

lnode* nodes;
int n;

void build() {
  n = %d;
  nodes = newarray(lnode, n);
  for (int i = 0; i < n; i = i + 1) {
    lnode* nd = nodes + i;
    nd->value = (rand() + %d) %% 1000;
    nd->next = nodes + (i * %d + 1) %% n;
    nd->via = nodes + rand() %% n;
  }
}

int walk() {
  int s = 0;
  lnode* p = nodes;
  for (int i = 0; i < n; i = i + 1) {
    lnode* q = p;
%s    s = s + q->value;
    p = p->next;
  }
  return s;
}

int main() {
  build();
  int s = 0;
  for (int pass = 0; pass < %d; pass = pass + 1) {
    s = s + walk();
  }
  print_int(s);
  return 0;
}
|}
    seed n p.stride p.depth p.passes n (seed mod 997) p.stride hops p.passes

(* Tree walk: a treeadd-flavoured balanced tree with randomized heap
   padding (footprint sets the depth, stride the padding grain). *)
let tree_source p ~seed scale =
  let depth =
    min 20 (9 + ilog2 ((p.footprint * max 1 scale / 512) + 1))
  in
  let pad_mod = 2 + p.depth in
  let pad_grain = 1 + (p.stride mod 5) in
  Printf.sprintf
    {|
// gen:%d — seeded tree walk (depth %d, pad %% %d x %d, %d passes)
struct tnode { int value; tnode* left; tnode* right; }

int pad_sink;

void pad() {
  int k = rand() %% %d;
  if (k > 0) {
    int* junk = newarray(int, k * %d);
    junk[0] = 1;
    pad_sink = pad_sink + junk[0];
  }
}

tnode* build(int depth) {
  tnode* t = new tnode;
  pad();
  t->value = (rand() + %d) %% 100;
  if (depth > 0) {
    t->left = build(depth - 1);
    t->right = build(depth - 1);
  } else {
    t->left = null;
    t->right = null;
  }
  return t;
}

int sum(tnode* t) {
  if (t == null) { return 0; }
  return t->value + sum(t->left) + sum(t->right);
}

int main() {
  tnode* root = build(%d);
  int s = 0;
  for (int pass = 0; pass < %d; pass = pass + 1) {
    s = s + sum(root);
  }
  print_int(s);
  return 0;
}
|}
    seed depth pad_mod pad_grain p.passes pad_mod pad_grain (seed mod 997)
    depth p.passes

(* Hash walk: open-addressing probes with a fixed stride over a half-full
   table — data-dependent indices with [depth] extra strided touches per
   lookup. *)
let hash_source p ~seed scale =
  let tsize = max 128 (p.footprint * max 1 scale) in
  Printf.sprintf
    {|
// gen:%d — seeded hash probe (table %d, stride %d, depth %d, %d passes)
int* table;
int* keys;
int tsize;
int nkeys;

void build() {
  tsize = %d;
  nkeys = tsize / 2;
  table = newarray(int, tsize);
  keys = newarray(int, nkeys);
  for (int i = 0; i < tsize; i = i + 1) {
    table[i] = -1;
  }
  for (int i = 0; i < nkeys; i = i + 1) {
    int key = 1 + (rand() + %d) %% (tsize * 4);
    keys[i] = key;
    int h = key %% tsize;
    int tries = 0;
    while (table[h] != -1 && tries < 64) {
      h = (h + %d) %% tsize;
      tries = tries + 1;
    }
    table[h] = key;
  }
}

int lookup(int key) {
  int h = key %% tsize;
  int tries = 0;
  while (table[h] != key && table[h] != -1 && tries < 64) {
    h = (h + %d) %% tsize;
    tries = tries + 1;
  }
  int extra = 0;
  for (int d = 0; d < %d; d = d + 1) {
    h = (h + %d) %% tsize;
    extra = extra + table[h];
  }
  if (table[h] == key) { return 1 + extra %% 2; }
  return extra %% 2;
}

int main() {
  build();
  int s = 0;
  for (int pass = 0; pass < %d; pass = pass + 1) {
    for (int i = 0; i < nkeys; i = i + 1) {
      s = s + lookup(keys[i]);
    }
  }
  print_int(s);
  return 0;
}
|}
    seed tsize p.stride p.depth p.passes tsize (seed mod 997) p.stride
    p.stride p.depth p.stride p.passes

let source_of_seed seed scale =
  let p = params_of_seed seed in
  match p.skeleton with
  | List_walk -> list_source p ~seed scale
  | Tree_walk -> tree_source p ~seed scale
  | Hash_walk -> hash_source p ~seed scale

let name seed = "gen:" ^ string_of_int seed

let workload ~seed =
  let p = params_of_seed seed in
  {
    Workload.name = name seed;
    description =
      Printf.sprintf
        "generated %s walk (seed %d: footprint %d, stride %d, depth %d)"
        (skeleton_name p.skeleton) seed p.footprint p.stride p.depth;
    source = source_of_seed seed;
    delinquent_hint = [];
  }

let corpus ~n ~seed = List.init n (fun i -> workload ~seed:(seed + i))

let seed_of_name nm =
  match String.index_opt nm ':' with
  | Some i when String.length nm > 4 && String.sub nm 0 4 = "gen:" ->
    int_of_string_opt (String.sub nm (i + 1) (String.length nm - i - 1))
  | _ -> None
