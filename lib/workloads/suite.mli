(** The seven pointer-intensive benchmarks of the paper's evaluation
    (§4.1): Olden em3d, health, mst, treeadd (depth-first and
    breadth-first) and SPEC CPU2000 mcf, vpr — re-implemented as mini-C
    kernels reproducing each benchmark's delinquent access pattern. *)

val all : Workload.t list
(** In the paper's presentation order: em3d, health, mst, treeadd.df,
    treeadd.bf, mcf, vpr. *)

val find : string -> Workload.t
(** By name; raises [Not_found]. Names of the shape ["gen:<seed>"] resolve
    through the seeded workload generator ({!Gen.workload}) and need not be
    in {!all}. *)

val corpus : n:int -> seed:int -> Workload.t list
(** [n] generated workloads with consecutive seeds starting at [seed]
    (see {!Gen}). *)

val reference_scale : int
(** The scale used by the paper-reproduction benches (working sets beyond
    the 3 MB L3). *)

val test_scale : int
(** A small scale for fast tests. *)
