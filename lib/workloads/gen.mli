(** Seeded random workload generator.

    [gen:<seed>] names a pointer-chasing mini-C kernel drawn from one of
    three skeleton families — list walk, tree walk, hash-table probe —
    with footprint, stride, dependence depth and pass count all derived
    from the seed via splitmix64. The mapping seed → source is a stable,
    cross-process contract (no [Random], no [Hashtbl.hash]), so corpus
    runs are replayable from the seed alone and usable for differential
    testing of the adaptation pipeline at scale. *)

type skeleton = List_walk | Tree_walk | Hash_walk

type params = {
  skeleton : skeleton;
  footprint : int;  (** structure elements per scale unit *)
  stride : int;  (** odd scramble multiplier / probe stride *)
  depth : int;  (** dependence depth: extra pointer hops per visit *)
  passes : int;  (** traversals of the structure *)
}

val params_of_seed : int -> params
(** The (deterministic) parameter draw behind [workload ~seed]. *)

val workload : seed:int -> Workload.t
(** The workload named ["gen:<seed>"]. *)

val corpus : n:int -> seed:int -> Workload.t list
(** [n] workloads with consecutive seeds starting at [seed]. *)

val seed_of_name : string -> int option
(** [Some seed] iff the name has the shape ["gen:<int>"]. *)
