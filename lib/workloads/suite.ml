let all =
  [
    Em3d.workload;
    Health.workload;
    Mst.workload;
    Treeadd.df;
    Treeadd.bf;
    Mcf.workload;
    Vpr.workload;
  ]

(* [gen:<seed>] names are resolved through the generator, so any seeded
   corpus member can be addressed like a built-in benchmark (CLI, tests,
   chaos campaigns) without being part of [all]. *)
let find name =
  match Gen.seed_of_name name with
  | Some seed -> Gen.workload ~seed
  | None -> List.find (fun w -> String.equal w.Workload.name name) all

let corpus = Gen.corpus
let reference_scale = 32
let test_scale = 2
