type block = { label : Ssp_isa.Op.label; mutable ops : Ssp_isa.Op.t array }

type func = {
  name : string;
  nparams : int;
  mutable blocks : block array;
  code_id : int;
}

type t = {
  funcs : (string, func) Hashtbl.t;
  mutable func_order : string list;
  entry : string;
  mutable data_bytes : int;
}

let data_base = 0x0010_0000L
let heap_base = 0x1000_0000L
let stack_base = 0x7fff_0000L

let create ~entry =
  { funcs = Hashtbl.create 16; func_order = []; entry; data_bytes = 0 }

let add_func t f =
  if Hashtbl.mem t.funcs f.name then
    invalid_arg (Printf.sprintf "Prog.add_func: duplicate function %s" f.name);
  Hashtbl.replace t.funcs f.name f;
  t.func_order <- t.func_order @ [ f.name ]

let find_func t name =
  match Hashtbl.find_opt t.funcs name with
  | Some f -> f
  | None -> invalid_arg (Printf.sprintf "Prog.find_func: no function %s" name)

let func_by_code_id t id =
  Hashtbl.fold
    (fun _ f acc -> if f.code_id = id then Some f else acc)
    t.funcs None

let funcs_in_order t = List.map (find_func t) t.func_order

(* All parameters passed explicitly: a local closure here would allocate
   on every taken branch of every simulated instruction. *)
let rec block_index_from blocks label n i =
  if i >= n then raise Not_found
  else
    let l = blocks.(i).label in
    (* Labels flow from a single frontend intern point, so physical
       equality almost always decides the comparison without a byte scan. *)
    if l == label || String.equal l label then i
    else block_index_from blocks label n (i + 1)

let block_index f label =
  block_index_from f.blocks label (Array.length f.blocks) 0

let instr t (r : Iref.t) =
  let f = find_func t r.fn in
  f.blocks.(r.blk).ops.(r.ins)

let iter_instrs t k =
  List.iter
    (fun f ->
      Array.iteri
        (fun bi b ->
          Array.iteri (fun ii op -> k (Iref.make f.name bi ii) op) b.ops)
        f.blocks)
    (funcs_in_order t)

let instr_count t =
  let n = ref 0 in
  iter_instrs t (fun _ _ -> incr n);
  !n

let addr_of f (r : Iref.t) =
  let a = ref 0 in
  for b = 0 to r.blk - 1 do
    a := !a + Array.length f.blocks.(b).ops
  done;
  !a + r.ins

let pp_func ppf f =
  Format.fprintf ppf "@[<v>func %s(%d):@," f.name f.nparams;
  Array.iter
    (fun b ->
      Format.fprintf ppf "%s:@," b.label;
      Array.iter (fun op -> Format.fprintf ppf "  %a@," Ssp_isa.Op.pp op) b.ops)
    f.blocks;
  Format.fprintf ppf "@]"

let pp ppf t =
  Format.fprintf ppf "@[<v>;; entry %s, data %d bytes@," t.entry t.data_bytes;
  List.iter (fun f -> Format.fprintf ppf "%a@," pp_func f) (funcs_in_order t);
  Format.fprintf ppf "@]"

let copy t =
  let funcs = Hashtbl.create (Hashtbl.length t.funcs) in
  Hashtbl.iter
    (fun name f ->
      Hashtbl.replace funcs name
        {
          f with
          blocks =
            Array.map
              (fun b -> { b with ops = Array.copy b.ops })
              f.blocks;
        })
    t.funcs;
  { t with funcs }
