(* Structured pipeline errors.

   Every pass that can refuse an input raises [Error] instead of a bare
   [Failure]/[Invalid_argument], carrying enough context (pass, function,
   region, instruction) for the driver to render a one-line diagnostic and
   for the adaptation pipeline's degradation ladder to record which load
   failed at which stage. [injected] marks faults planted by the
   fault-injection engine, so chaos reports can separate deliberate faults
   from genuine refusals. *)

type info = {
  pass : string;  (* "builder", "codegen", "slicer", "select", ... *)
  what : string;
  fn : string option;
  region : string option;
  instr : string option;
  injected : bool;
}

exception Error of info

let make ?(injected = false) ?fn ?region ?instr ~pass what =
  { pass; what; fn; region; instr; injected }

let raise_error ?injected ?fn ?region ?instr ~pass what =
  raise (Error (make ?injected ?fn ?region ?instr ~pass what))

let to_string (e : info) =
  let ctx =
    List.filter_map Fun.id
      [
        Option.map (fun f -> "fn " ^ f) e.fn;
        Option.map (fun r -> "region " ^ r) e.region;
        Option.map (fun i -> "at " ^ i) e.instr;
      ]
  in
  Printf.sprintf "%s: %s%s%s" e.pass e.what
    (if ctx = [] then "" else " (" ^ String.concat ", " ctx ^ ")")
    (if e.injected then " [injected]" else "")

let pp ppf e = Format.pp_print_string ppf (to_string e)

let () =
  Printexc.register_printer (function
    | Error e -> Some ("Ssp error: " ^ to_string e)
    | _ -> None)
