(** Structured pipeline errors.

    Passes raise {!Error} instead of bare [Failure]/[Invalid_argument] so
    that the driver can render a one-line diagnostic and the adaptation
    pipeline's degradation ladder can attribute a failure to a load and a
    stage. [injected] marks faults planted by the fault-injection engine
    ([Ssp_fault.Fault]), letting chaos reports separate deliberate faults
    from genuine refusals. *)

type info = {
  pass : string;  (** originating pass ("builder", "codegen", "slicer", ...) *)
  what : string;  (** human-readable description *)
  fn : string option;  (** enclosing function, when known *)
  region : string option;  (** enclosing region, when known *)
  instr : string option;  (** instruction reference, when known *)
  injected : bool;  (** planted by the fault-injection engine *)
}

exception Error of info

val make :
  ?injected:bool ->
  ?fn:string ->
  ?region:string ->
  ?instr:string ->
  pass:string ->
  string ->
  info

val raise_error :
  ?injected:bool ->
  ?fn:string ->
  ?region:string ->
  ?instr:string ->
  pass:string ->
  string ->
  'a

val to_string : info -> string
val pp : Format.formatter -> info -> unit
