type t = {
  name : string;
  nparams : int;
  code_id : int;
  mutable blocks : (string * Ssp_isa.Op.t list) list;  (* reversed *)
  mutable cur_label : string option;
  mutable cur_ops : Ssp_isa.Op.t list;  (* reversed *)
  mutable next_reg : int;
  mutable next_label : int;
  mutable pending_split : bool;
      (* a branch was just emitted: the next instruction must start a new
         block, so blocks remain proper basic blocks *)
  labels : (string, unit) Hashtbl.t;
}

(* Fallback for callers that don't pick ids themselves (the frontend
   always does); atomic so concurrent builders never collide. *)
let next_code_id = Atomic.make 0

let create ?code_id ~name ~nparams () =
  let code_id =
    match code_id with
    | Some id -> id
    | None -> Atomic.fetch_and_add next_code_id 1 + 1
  in
  {
    name;
    nparams;
    code_id;
    blocks = [];
    cur_label = None;
    cur_ops = [];
    next_reg = Ssp_isa.Reg.first_stacked;
    next_label = 0;
    pending_split = false;
    labels = Hashtbl.create 16;
  }

let fresh_reg b =
  if b.next_reg >= Ssp_isa.Reg.count then
    Error.raise_error ~pass:"builder" ~fn:b.name "out of stacked registers";
  let r = b.next_reg in
  b.next_reg <- r + 1;
  r

let fresh_label b stem =
  let rec pick () =
    let l = Printf.sprintf "%s_%d" stem b.next_label in
    b.next_label <- b.next_label + 1;
    if Hashtbl.mem b.labels l then pick () else l
  in
  pick ()

let seal b =
  match b.cur_label with
  | None -> ()
  | Some l ->
    b.blocks <- (l, List.rev b.cur_ops) :: b.blocks;
    b.cur_label <- None;
    b.cur_ops <- []

let start_block b label =
  if Hashtbl.mem b.labels label then
    Error.raise_error ~pass:"builder" ~fn:b.name
      (Printf.sprintf "duplicate label %s" label);
  Hashtbl.replace b.labels label ();
  seal b;
  b.pending_split <- false;
  b.cur_label <- Some label

(* Branches may only end a block. *)
let ends_block op =
  Ssp_isa.Op.is_terminator op
  || match op with Ssp_isa.Op.Brnz _ | Ssp_isa.Op.Brz _ -> true | _ -> false

let emit b op =
  if b.pending_split then begin
    let l = fresh_label b "fall" in
    start_block b l
  end;
  (match b.cur_label with
  | None -> start_block b "entry"
  | Some _ -> ());
  b.cur_ops <- op :: b.cur_ops;
  if ends_block op then b.pending_split <- true

let current_label b =
  match b.cur_label with
  | Some l -> l
  | None -> Error.raise_error ~pass:"builder" ~fn:b.name "no open block"

let finish b : Prog.func =
  seal b;
  let blocks =
    List.rev_map
      (fun (label, ops) -> { Prog.label; ops = Array.of_list ops })
      b.blocks
  in
  {
    Prog.name = b.name;
    nparams = b.nparams;
    blocks = Array.of_list blocks;
    code_id = b.code_id;
  }

let func_of_blocks ?code_id ~name ~nparams blocks =
  let b = create ?code_id ~name ~nparams () in
  List.iter
    (fun (label, ops) ->
      start_block b label;
      List.iter (emit b) ops)
    blocks;
  finish b
