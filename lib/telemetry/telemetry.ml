(* Telemetry: named counters, distributions, sample series, hierarchical
   wall-clock spans, and a structured run report exportable as JSON or as a
   human-readable summary table.

   The subsystem is global and OFF by default: every recording entry point
   is gated on [enabled], so an instrumented hot path costs a single branch
   when telemetry is off. Handles ([counter], [dist], [series]) are interned
   by name at creation time and stay valid across [reset] — a pass may hold
   one for its whole lifetime.

   Domain safety is by sharding, not locking: every domain that records
   anything gets its own shard (counters, distributions, series, span tree,
   event buffer) through domain-local storage, registered once in a global
   list. The hot recording paths therefore stay plain unsynchronized
   mutations — same cost as before domains — and [report]/[events] merge
   the shards by name at the (cold) reporting boundary. The one rule this
   imposes on callers: use a handle on the domain that interned it (every
   instrumented subsystem already creates its handles where it runs). *)

let enabled = ref false
let set_enabled b = enabled := b
let is_enabled () = !enabled

type counter = { c_name : string; mutable count : int }

type dist = {
  d_name : string;
  mutable n : int;
  mutable sum : float;
  mutable lo : float;
  mutable hi : float;
  mutable sumsq : float;
}

(* ---- quantile histograms ----

   Log-bucketed with a FIXED layout shared by every histogram in every
   process: [hist_subbuckets] buckets per power of two, from 2^-20 up to
   2^44, plus an underflow and an overflow bucket. Because the layout is
   a compile-time constant, two shards' (or two cluster nodes')
   histograms of the same name merge EXACTLY by adding bucket counts —
   the quantiles of the merge equal the quantiles of the union stream.
   A bucket spans a value ratio of 2^(1/subbuckets) (~9% at 8), so any
   quantile estimate (the bucket's geometric midpoint) carries a bounded
   relative error of about +/-4.5%. *)

let hist_subbuckets = 8
let hist_min_log2 = -20.0 (* ~1e-6: below this is the underflow bucket *)
let hist_log_buckets = 64 * hist_subbuckets (* up to 2^44 *)
let hist_bucket_count = hist_log_buckets + 2 (* + underflow + overflow *)

(* Index 0 is underflow (v < 2^-20, zero, negative, or non-finite),
   index [hist_bucket_count - 1] overflow; bucket i in between covers
   [2^(min + (i-1)/sub), 2^(min + i/sub)). *)
let hist_index v =
  if not (Float.is_finite v) || v < 0x1p-20 then 0
  else
    let e = (Float.log2 v -. hist_min_log2) *. float_of_int hist_subbuckets in
    let i = 1 + int_of_float e in
    if i > hist_log_buckets then hist_log_buckets + 1 else i

(* Geometric midpoint of bucket [i] — the bounded-relative-error
   representative used for quantile estimates. *)
let hist_bucket_value i =
  Float.exp2
    (hist_min_log2
    +. ((float_of_int (i - 1) +. 0.5) /. float_of_int hist_subbuckets))

type hist = {
  h_name : string;
  h_counts : int array; (* length [hist_bucket_count] *)
  mutable h_n : int;
  mutable h_sum : float;
  mutable h_lo : float;
  mutable h_hi : float;
}

type series = {
  s_name : string;
  mutable points : (float * float) list; (* newest first *)
}

(* ---- spans: a tree of wall-clock timed phases ---- *)

type span = {
  sp_name : string;
  mutable ms : float; (* accumulated wall-clock milliseconds *)
  mutable calls : int;
  mutable children : span list; (* newest first *)
}

let new_span name = { sp_name = name; ms = 0.; calls = 0; children = [] }

(* ---- bounded timestamped event stream (Chrome trace-event export) ---- *)

let pid_passes = 0
let pid_sim = 1

type event_phase = Ph_complete | Ph_instant

type event = {
  e_name : string;
  e_cat : string;
  e_pid : int;
  e_tid : int;
  e_ts : float;
  e_dur : float; (* Ph_complete only *)
  e_ph : event_phase;
  e_args : (string * string) list;
}

(* ---- per-domain shards ---- *)

type shard = {
  counters : (string, counter) Hashtbl.t;
  dists : (string, dist) Hashtbl.t;
  hists : (string, hist) Hashtbl.t;
  seriess : (string, series) Hashtbl.t;
  root : span;
  mutable stack : span list; (* innermost first *)
  mutable events_rev : event list; (* newest first *)
  mutable event_count : int;
  mutable events_dropped : int;
}

let new_shard () =
  {
    counters = Hashtbl.create 64;
    dists = Hashtbl.create 64;
    hists = Hashtbl.create 16;
    seriess = Hashtbl.create 16;
    root = new_span "root";
    stack = [];
    events_rev = [];
    event_count = 0;
    events_dropped = 0;
  }

(* Registration order is the merge order; the main domain's shard is
   created eagerly here so it is always first. *)
let shards_mutex = Mutex.create ()
let main_shard = new_shard ()
let shards : shard list ref = ref [ main_shard ]

let shard_key =
  Domain.DLS.new_key (fun () ->
      let s = new_shard () in
      Mutex.lock shards_mutex;
      shards := !shards @ [ s ];
      Mutex.unlock shards_mutex;
      s)

(* The main domain reuses the eagerly created shard. *)
let () = Domain.DLS.set shard_key main_shard

let my_shard () = Domain.DLS.get shard_key

let all_shards () =
  Mutex.lock shards_mutex;
  let l = !shards in
  Mutex.unlock shards_mutex;
  l

(* ---- counters ---- *)

let counter name =
  let sh = my_shard () in
  match Hashtbl.find_opt sh.counters name with
  | Some c -> c
  | None ->
    let c = { c_name = name; count = 0 } in
    Hashtbl.replace sh.counters name c;
    c

let incr c = if !enabled then c.count <- c.count + 1
let add c n = if !enabled then c.count <- c.count + n

(* Convenience for cold paths; interns by name on every call. *)
let count name n = add (counter name) n

(* ---- distributions ---- *)

let dist name =
  let sh = my_shard () in
  match Hashtbl.find_opt sh.dists name with
  | Some d -> d
  | None ->
    let d = { d_name = name; n = 0; sum = 0.; lo = infinity; hi = neg_infinity; sumsq = 0. } in
    Hashtbl.replace sh.dists name d;
    d

let observe d v =
  if !enabled then begin
    d.n <- d.n + 1;
    d.sum <- d.sum +. v;
    if v < d.lo then d.lo <- v;
    if v > d.hi then d.hi <- v;
    d.sumsq <- d.sumsq +. (v *. v)
  end

let observe_int d v = observe d (float_of_int v)
let record name v = observe (dist name) v

(* ---- histograms (hot-path latency sites wanting tail quantiles) ---- *)

let hist name =
  let sh = my_shard () in
  match Hashtbl.find_opt sh.hists name with
  | Some h -> h
  | None ->
    let h =
      {
        h_name = name;
        h_counts = Array.make hist_bucket_count 0;
        h_n = 0;
        h_sum = 0.;
        h_lo = infinity;
        h_hi = neg_infinity;
      }
    in
    Hashtbl.replace sh.hists name h;
    h

let hobserve h v =
  if !enabled then begin
    let i = hist_index v in
    h.h_counts.(i) <- h.h_counts.(i) + 1;
    h.h_n <- h.h_n + 1;
    h.h_sum <- h.h_sum +. v;
    if v < h.h_lo then h.h_lo <- v;
    if v > h.h_hi then h.h_hi <- v
  end

(* Convenience for cold paths; interns by name on every call. *)
let record_hist name v = hobserve (hist name) v

let dist_mean d = if d.n = 0 then 0.0 else d.sum /. float_of_int d.n

let dist_stddev d =
  if d.n = 0 then 0.0
  else
    let m = dist_mean d in
    sqrt (max 0.0 ((d.sumsq /. float_of_int d.n) -. (m *. m)))

(* ---- series (x/y samples, e.g. per-interval simulator events) ---- *)

let series name =
  let sh = my_shard () in
  match Hashtbl.find_opt sh.seriess name with
  | Some s -> s
  | None ->
    let s = { s_name = name; points = [] } in
    Hashtbl.replace sh.seriess name s;
    s

let sample s ~x ~y = if !enabled then s.points <- (x, y) :: s.points

(* ---- events ----

   Events are a second, opt-in layer on top of [enabled]: pass spans and
   simulator timelines are recorded as individual timestamped events only
   when [set_events true] has been called, and the stream is bounded
   (keep-first per shard; overflow is counted, not silently discarded).
   Two timelines share the stream, distinguished by pid:
     pid 0  tool passes, timestamps in wall-clock microseconds since the
            first event of the run;
     pid 1  simulator, timestamps in cycles (exported in the trace's "ts"
            field; one "microsecond" on screen = one cycle). *)

let record_events = ref false
let event_capacity = ref 65536
let trace_t0 : float option ref = ref None
let trace_t0_mutex = Mutex.create ()

let set_events b = record_events := b
let events_on () = !enabled && !record_events
let set_event_capacity n = event_capacity := max 1 n

(* Wall-clock microseconds since the first event of the run (pid 0). *)
let now_us () =
  let t = Unix.gettimeofday () in
  Mutex.lock trace_t0_mutex;
  let t0 =
    match !trace_t0 with
    | Some t0 -> t0
    | None ->
      trace_t0 := Some t;
      t
  in
  Mutex.unlock trace_t0_mutex;
  (t -. t0) *. 1e6

let push_event ev =
  (* [incr] is shadowed by the counter API above. *)
  let sh = my_shard () in
  if sh.event_count >= !event_capacity then
    sh.events_dropped <- sh.events_dropped + 1
  else begin
    sh.events_rev <- ev :: sh.events_rev;
    sh.event_count <- sh.event_count + 1
  end

let emit_complete ?(args = []) ~cat ~pid ~tid ~ts ~dur name =
  if events_on () then
    push_event
      {
        e_name = name;
        e_cat = cat;
        e_pid = pid;
        e_tid = tid;
        e_ts = ts;
        e_dur = dur;
        e_ph = Ph_complete;
        e_args = args;
      }

let emit_instant ?(args = []) ~cat ~pid ~tid ~ts name =
  if events_on () then
    push_event
      {
        e_name = name;
        e_cat = cat;
        e_pid = pid;
        e_tid = tid;
        e_ts = ts;
        e_dur = 0.;
        e_ph = Ph_instant;
        e_args = args;
      }

(* Merged view: shard streams concatenated in registration order (the
   main domain first). Within a shard events keep insertion order; the
   two pids deliberately use different time units, so no global sort. *)
let events () =
  all_shards () |> List.concat_map (fun sh -> List.rev sh.events_rev)

let events_dropped_count () =
  List.fold_left (fun acc sh -> acc + sh.events_dropped) 0 (all_shards ())

(* Repeated spans of the same name under the same parent merge: time
   accumulates and [calls] counts the invocations (e.g. one "slice" node
   per region, not one per call). When the event stream is on each
   invocation additionally becomes one Complete event on the pass
   timeline, so merged spans still show up individually in the trace. *)
let child_of parent name =
  match List.find_opt (fun s -> String.equal s.sp_name name) parent.children with
  | Some s -> s
  | None ->
    let s = new_span name in
    parent.children <- s :: parent.children;
    s

let with_span name f =
  if not !enabled then f ()
  else begin
    let sh = my_shard () in
    let parent = match sh.stack with s :: _ -> s | [] -> sh.root in
    let sp = child_of parent name in
    sh.stack <- sp :: sh.stack;
    let ev_ts = if events_on () then Some (now_us ()) else None in
    let t0 = Unix.gettimeofday () in
    Fun.protect
      ~finally:(fun () ->
        sp.ms <- sp.ms +. ((Unix.gettimeofday () -. t0) *. 1000.);
        sp.calls <- sp.calls + 1;
        (match ev_ts with
        | Some ts ->
          emit_complete ~cat:"pass" ~pid:pid_passes ~tid:0 ~ts
            ~dur:((Unix.gettimeofday () -. t0) *. 1e6)
            name
        | None -> ());
        match sh.stack with _ :: rest -> sh.stack <- rest | [] -> ())
      f
  end

(* ---- reset ---- *)

let reset () =
  List.iter
    (fun sh ->
      Hashtbl.iter (fun _ c -> c.count <- 0) sh.counters;
      Hashtbl.iter
        (fun _ d ->
          d.n <- 0;
          d.sum <- 0.;
          d.lo <- infinity;
          d.hi <- neg_infinity;
          d.sumsq <- 0.)
        sh.dists;
      Hashtbl.iter
        (fun _ h ->
          Array.fill h.h_counts 0 hist_bucket_count 0;
          h.h_n <- 0;
          h.h_sum <- 0.;
          h.h_lo <- infinity;
          h.h_hi <- neg_infinity)
        sh.hists;
      Hashtbl.iter (fun _ s -> s.points <- []) sh.seriess;
      sh.root.children <- [];
      sh.root.ms <- 0.;
      sh.root.calls <- 0;
      sh.stack <- [];
      sh.events_rev <- [];
      sh.event_count <- 0;
      sh.events_dropped <- 0)
    (all_shards ());
  Mutex.lock trace_t0_mutex;
  trace_t0 := None;
  Mutex.unlock trace_t0_mutex

(* ---- structured run report ---- *)

type dist_summary = {
  ds_n : int;
  ds_sum : float;
  ds_min : float;
  ds_max : float;
  ds_mean : float;
  ds_stddev : float;
  ds_sumsq : float; (* carried so summaries merge exactly *)
}

let merge_dist_summary a b =
  if a.ds_n = 0 then b
  else if b.ds_n = 0 then a
  else begin
    let n = a.ds_n + b.ds_n in
    let sum = a.ds_sum +. b.ds_sum in
    let sumsq = a.ds_sumsq +. b.ds_sumsq in
    let mean = sum /. float_of_int n in
    {
      ds_n = n;
      ds_sum = sum;
      ds_min = Float.min a.ds_min b.ds_min;
      ds_max = Float.max a.ds_max b.ds_max;
      ds_mean = mean;
      ds_stddev =
        sqrt (max 0.0 ((sumsq /. float_of_int n) -. (mean *. mean)));
      ds_sumsq = sumsq;
    }
  end

type hist_summary = {
  hs_n : int;
  hs_sum : float;
  hs_min : float;
  hs_max : float;
  hs_counts : int array; (* the fixed layout: [hist_bucket_count] *)
}

let empty_hist_summary () =
  {
    hs_n = 0;
    hs_sum = 0.;
    hs_min = infinity;
    hs_max = neg_infinity;
    hs_counts = Array.make hist_bucket_count 0;
  }

(* Bucket-wise exact merge: both sides share the fixed layout, so the
   merged histogram is indistinguishable from one that observed the
   union of the two sample streams. *)
let merge_hist_summary a b =
  if Array.length a.hs_counts <> Array.length b.hs_counts then
    invalid_arg "Telemetry.merge_hist_summary: bucket layouts differ";
  {
    hs_n = a.hs_n + b.hs_n;
    hs_sum = a.hs_sum +. b.hs_sum;
    hs_min = Float.min a.hs_min b.hs_min;
    hs_max = Float.max a.hs_max b.hs_max;
    hs_counts = Array.init (Array.length a.hs_counts) (fun i ->
        a.hs_counts.(i) + b.hs_counts.(i));
  }

(* Quantile estimate with bounded relative error: walk the cumulative
   counts to the target rank, answer the bucket's geometric midpoint
   (underflow/overflow answer the observed min/max), clamped into the
   observed [min, max]. *)
let hist_quantile hs q =
  if hs.hs_n = 0 then 0.
  else begin
    let target = Float.max 1.0 (q *. float_of_int hs.hs_n) in
    let cum = ref 0 in
    let found = ref None in
    Array.iteri
      (fun i c ->
        cum := !cum + c;
        if !found = None && c > 0 && float_of_int !cum >= target then
          found := Some i)
      hs.hs_counts;
    let raw =
      match !found with
      | None | Some 0 -> hs.hs_min
      | Some i when i = Array.length hs.hs_counts - 1 -> hs.hs_max
      | Some i -> hist_bucket_value i
    in
    Float.min hs.hs_max (Float.max hs.hs_min raw)
  end

let hist_mean hs = if hs.hs_n = 0 then 0. else hs.hs_sum /. float_of_int hs.hs_n

type report = {
  r_spans : span list; (* deep copies, oldest first *)
  r_counters : (string * int) list; (* sorted by name *)
  r_dists : (string * dist_summary) list;
  r_hists : (string * hist_summary) list;
  r_series : (string * (float * float) list) list; (* sorted by x *)
}

let rec copy_span sp =
  {
    sp with
    children = List.rev_map copy_span sp.children (* oldest first *);
  }

(* Merge one shard's span tree into an accumulating copy: children match
   by name, times and call counts add. Worker-domain spans that ran with
   an empty stack surface as top-level phases next to the main domain's. *)
let rec merge_span_into (dst : span) (src : span) =
  dst.ms <- dst.ms +. src.ms;
  dst.calls <- dst.calls + src.calls;
  (* [src] comes from [copy_span]: children oldest first. [child_of]
     prepends, so dst ends newest first — [merged_root] re-orients. *)
  List.iter
    (fun (c : span) ->
      let dc = child_of dst c.sp_name in
      merge_span_into dc c)
    src.children

let merged_root () =
  let acc = new_span "root" in
  List.iter (fun sh -> merge_span_into acc (copy_span sh.root)) (all_shards ());
  (* merge_span_into prepends children; re-establish oldest-first. *)
  let rec orient sp = { sp with children = List.rev_map orient sp.children } in
  orient acc

let merge_tables fold_shard merge =
  let acc : (string, 'a) Hashtbl.t = Hashtbl.create 64 in
  List.iter (fun sh -> fold_shard sh (fun name v -> merge acc name v)) (all_shards ());
  acc

let report () =
  let by_name (a, _) (b, _) = String.compare a b in
  let counters =
    merge_tables
      (fun sh f -> Hashtbl.iter (fun name c -> f name c.count) sh.counters)
      (fun acc name v ->
        Hashtbl.replace acc name
          (v + Option.value ~default:0 (Hashtbl.find_opt acc name)))
  in
  let dists =
    merge_tables
      (fun sh f -> Hashtbl.iter (fun name d -> if d.n > 0 then f name d) sh.dists)
      (fun acc name (d : dist) ->
        match Hashtbl.find_opt acc name with
        | None ->
          Hashtbl.replace acc name
            { d_name = name; n = d.n; sum = d.sum; lo = d.lo; hi = d.hi; sumsq = d.sumsq }
        | Some m ->
          m.n <- m.n + d.n;
          m.sum <- m.sum +. d.sum;
          if d.lo < m.lo then m.lo <- d.lo;
          if d.hi > m.hi then m.hi <- d.hi;
          m.sumsq <- m.sumsq +. d.sumsq)
  in
  let hists =
    merge_tables
      (fun sh f -> Hashtbl.iter (fun name h -> if h.h_n > 0 then f name h) sh.hists)
      (fun acc name (h : hist) ->
        let s =
          {
            hs_n = h.h_n;
            hs_sum = h.h_sum;
            hs_min = h.h_lo;
            hs_max = h.h_hi;
            hs_counts = Array.copy h.h_counts;
          }
        in
        match Hashtbl.find_opt acc name with
        | None -> Hashtbl.replace acc name s
        | Some m -> Hashtbl.replace acc name (merge_hist_summary m s))
  in
  let seriess =
    merge_tables
      (fun sh f ->
        Hashtbl.iter
          (fun name s -> if s.points <> [] then f name (List.rev s.points))
          sh.seriess)
      (fun acc name pts ->
        Hashtbl.replace acc name
          (Option.value ~default:[] (Hashtbl.find_opt acc name) @ pts))
  in
  {
    r_spans = (merged_root ()).children;
    r_counters =
      Hashtbl.fold (fun name v acc -> (name, v) :: acc) counters []
      |> List.sort by_name;
    r_dists =
      Hashtbl.fold
        (fun name (d : dist) acc ->
          ( name,
            {
              ds_n = d.n;
              ds_sum = d.sum;
              ds_min = d.lo;
              ds_max = d.hi;
              ds_mean = dist_mean d;
              ds_stddev = dist_stddev d;
              ds_sumsq = d.sumsq;
            } )
          :: acc)
        dists []
      |> List.sort by_name;
    r_hists =
      Hashtbl.fold (fun name h acc -> (name, h) :: acc) hists []
      |> List.sort by_name;
    r_series =
      (* Shards accumulate by list-prepend and merge by concatenation, so
         raw points arrive in interleaved insertion order; exports sort
         by x (stable: ties keep shard insertion order). *)
      Hashtbl.fold
        (fun name pts acc ->
          ( name,
            List.stable_sort (fun (x1, _) (x2, _) -> Float.compare x1 x2) pts )
          :: acc)
        seriess []
      |> List.sort by_name;
  }

(* ---- JSON export ---- *)

let buf_json_string b s =
  Buffer.add_char b '"';
  String.iter
    (fun ch ->
      match ch with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\r' -> Buffer.add_string b "\\r"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.add_char b '"'

let buf_float b f =
  (* JSON has no infinities; distributions are dropped when empty so these
     only appear if a caller records them directly. *)
  if Float.is_integer f && Float.abs f < 1e15 then
    Buffer.add_string b (Printf.sprintf "%.0f" f)
  else Buffer.add_string b (Printf.sprintf "%.6g" f)

let buf_list b xs emit =
  Buffer.add_char b '[';
  List.iteri
    (fun i x ->
      if i > 0 then Buffer.add_char b ',';
      emit x)
    xs;
  Buffer.add_char b ']'

let buf_obj b fields =
  Buffer.add_char b '{';
  List.iteri
    (fun i (k, emit) ->
      if i > 0 then Buffer.add_char b ',';
      buf_json_string b k;
      Buffer.add_char b ':';
      emit ())
    fields;
  Buffer.add_char b '}'

let rec buf_span b sp =
  buf_obj b
    [
      ("name", fun () -> buf_json_string b sp.sp_name);
      ("ms", fun () -> buf_float b sp.ms);
      ("calls", fun () -> Buffer.add_string b (string_of_int sp.calls));
      ("children", fun () -> buf_list b sp.children (buf_span b));
    ]

let to_json r =
  let b = Buffer.create 4096 in
  buf_obj b
    [
      ("spans", fun () -> buf_list b r.r_spans (buf_span b));
      ( "counters",
        fun () ->
          buf_obj b
            (List.map
               (fun (name, v) ->
                 (name, fun () -> Buffer.add_string b (string_of_int v)))
               r.r_counters) );
      ( "dists",
        fun () ->
          buf_obj b
            (List.map
               (fun (name, d) ->
                 ( name,
                   fun () ->
                     buf_obj b
                       [
                         ( "n",
                           fun () ->
                             Buffer.add_string b (string_of_int d.ds_n) );
                         ("sum", fun () -> buf_float b d.ds_sum);
                         ("min", fun () -> buf_float b d.ds_min);
                         ("max", fun () -> buf_float b d.ds_max);
                         ("mean", fun () -> buf_float b d.ds_mean);
                         ("stddev", fun () -> buf_float b d.ds_stddev);
                       ] ))
               r.r_dists) );
      ( "hists",
        fun () ->
          buf_obj b
            (List.map
               (fun (name, h) ->
                 ( name,
                   fun () ->
                     buf_obj b
                       [
                         ( "n",
                           fun () ->
                             Buffer.add_string b (string_of_int h.hs_n) );
                         ("sum", fun () -> buf_float b h.hs_sum);
                         ("min", fun () -> buf_float b h.hs_min);
                         ("max", fun () -> buf_float b h.hs_max);
                         ("mean", fun () -> buf_float b (hist_mean h));
                         ("p50", fun () -> buf_float b (hist_quantile h 0.5));
                         ("p90", fun () -> buf_float b (hist_quantile h 0.9));
                         ("p99", fun () -> buf_float b (hist_quantile h 0.99));
                         ( "p999",
                           fun () -> buf_float b (hist_quantile h 0.999) );
                       ] ))
               r.r_hists) );
      ( "series",
        fun () ->
          buf_obj b
            (List.map
               (fun (name, pts) ->
                 ( name,
                   fun () ->
                     buf_list b pts (fun (x, y) ->
                         Buffer.add_char b '[';
                         buf_float b x;
                         Buffer.add_char b ',';
                         buf_float b y;
                         Buffer.add_char b ']') ))
               r.r_series) );
    ];
  Buffer.contents b

let write_json path r =
  let oc = open_out path in
  output_string oc (to_json r);
  output_char oc '\n';
  close_out oc

(* ---- Chrome trace-event export (chrome://tracing, Perfetto) ----

   JSON object format: {"traceEvents":[...]} where each event carries
   name/cat/ph/ts/pid/tid (+dur for "X"). Metadata ("M") events name the
   two processes so the viewer labels the timelines. *)

let buf_trace_event b ev =
  let str s () = buf_json_string b s in
  let num f () = buf_float b f in
  let args () =
    buf_obj b (List.map (fun (k, v) -> (k, fun () -> buf_json_string b v)) ev.e_args)
  in
  let base =
    [
      ("name", str ev.e_name);
      ("cat", str ev.e_cat);
      ("ph", str (match ev.e_ph with Ph_complete -> "X" | Ph_instant -> "i"));
      ("ts", num ev.e_ts);
    ]
  in
  let dur =
    match ev.e_ph with Ph_complete -> [ ("dur", num ev.e_dur) ] | Ph_instant -> []
  in
  let scope = match ev.e_ph with Ph_instant -> [ ("s", str "t") ] | _ -> [] in
  let tail =
    [ ("pid", num (float_of_int ev.e_pid)); ("tid", num (float_of_int ev.e_tid)) ]
  in
  let args_f = if ev.e_args = [] then [] else [ ("args", args) ] in
  buf_obj b (base @ dur @ scope @ tail @ args_f)

let buf_metadata b ~name ~pid ~tid ~key value =
  buf_obj b
    [
      ("name", fun () -> buf_json_string b name);
      ("ph", fun () -> buf_json_string b "M");
      ("pid", fun () -> buf_float b (float_of_int pid));
      ("tid", fun () -> buf_float b (float_of_int tid));
      ( "args",
        fun () -> buf_obj b [ (key, fun () -> buf_json_string b value) ] );
    ]

let trace_events_json () =
  let b = Buffer.create 4096 in
  let evs = events () in
  let dropped = events_dropped_count () in
  Buffer.add_string b "{\"traceEvents\":[";
  buf_metadata b ~name:"process_name" ~pid:pid_passes ~tid:0 ~key:"name"
    "sspc passes (wall-clock us)";
  Buffer.add_char b ',';
  buf_metadata b ~name:"process_name" ~pid:pid_sim ~tid:0 ~key:"name"
    "simulator (ts = cycles)";
  List.iter
    (fun ev ->
      Buffer.add_char b ',';
      buf_trace_event b ev)
    evs;
  if dropped > 0 then begin
    Buffer.add_char b ',';
    buf_trace_event b
      {
        e_name = "events dropped (capacity reached)";
        e_cat = "telemetry";
        e_pid = pid_passes;
        e_tid = 0;
        e_ts = 0.;
        e_dur = 0.;
        e_ph = Ph_instant;
        e_args = [ ("dropped", string_of_int dropped) ];
      }
  end;
  Buffer.add_string b "],\"displayTimeUnit\":\"ms\"}";
  Buffer.contents b

let write_trace_events path =
  let oc = open_out path in
  output_string oc (trace_events_json ());
  output_char oc '\n';
  close_out oc

(* ---- summary table ---- *)

let pp_summary ppf r =
  Format.fprintf ppf "@[<v>";
  if r.r_spans <> [] then begin
    Format.fprintf ppf "phase timings:@,";
    let rec pp_sp depth sp =
      Format.fprintf ppf "  %s%-*s %10.3f ms  x%d@," (String.make (2 * depth) ' ')
        (max 1 (28 - (2 * depth)))
        sp.sp_name sp.ms sp.calls;
      List.iter (pp_sp (depth + 1)) sp.children
    in
    List.iter (pp_sp 0) r.r_spans
  end;
  if r.r_counters <> [] then begin
    Format.fprintf ppf "counters:@,";
    List.iter
      (fun (name, v) -> Format.fprintf ppf "  %-30s %12d@," name v)
      r.r_counters
  end;
  if r.r_dists <> [] then begin
    Format.fprintf ppf "distributions:@,";
    Format.fprintf ppf "  %-30s %8s %10s %10s %10s %10s@," "" "n" "mean"
      "min" "max" "stddev";
    List.iter
      (fun (name, d) ->
        Format.fprintf ppf "  %-30s %8d %10.2f %10.2f %10.2f %10.2f@," name
          d.ds_n d.ds_mean d.ds_min d.ds_max d.ds_stddev)
      r.r_dists
  end;
  if r.r_hists <> [] then begin
    Format.fprintf ppf "histograms:@,";
    Format.fprintf ppf "  %-30s %8s %10s %10s %10s %10s %10s@," "" "n" "mean"
      "p50" "p90" "p99" "max";
    List.iter
      (fun (name, h) ->
        Format.fprintf ppf "  %-30s %8d %10.3f %10.3f %10.3f %10.3f %10.3f@,"
          name h.hs_n (hist_mean h) (hist_quantile h 0.5) (hist_quantile h 0.9)
          (hist_quantile h 0.99) h.hs_max)
      r.r_hists
  end;
  if r.r_series <> [] then begin
    Format.fprintf ppf "series:@,";
    List.iter
      (fun (name, pts) ->
        Format.fprintf ppf "  %-30s %d samples@," name (List.length pts))
      r.r_series
  end;
  Format.fprintf ppf "@]"

(* Test / tooling helper: walk the copied span tree by path. *)
let rec find_span spans = function
  | [] -> None
  | [ name ] -> List.find_opt (fun s -> String.equal s.sp_name name) spans
  | name :: rest -> (
    match List.find_opt (fun s -> String.equal s.sp_name name) spans with
    | Some s -> find_span s.children rest
    | None -> None)

(* ---- per-request span capture (distributed tracing) ----

   Spans accumulate globally; a traced server request needs just ITS
   slice of the tree. [capture_spans f] snapshots the calling domain's
   span tree, runs [f], and returns the delta — safe because a domain
   (one pool worker, or the main thread) runs one request at a time, so
   everything that accrued on this domain during [f] belongs to it. *)

let rec span_delta (before : span option) (after : span) =
  let b_ms, b_calls, b_children =
    match before with
    | Some b -> (b.ms, b.calls, b.children)
    | None -> (0., 0, [])
  in
  let children =
    List.filter_map
      (fun (c : span) ->
        let bc =
          List.find_opt (fun (x : span) -> String.equal x.sp_name c.sp_name)
            b_children
        in
        span_delta bc c)
      after.children
  in
  let ms = Float.max 0. (after.ms -. b_ms) in
  let calls = max 0 (after.calls - b_calls) in
  if calls = 0 && ms <= 0. && children = [] then None
  else Some { sp_name = after.sp_name; ms; calls; children }

let capture_spans f =
  if not !enabled then (f (), [])
  else begin
    let sh = my_shard () in
    let before = copy_span sh.root in
    let r = f () in
    let after = copy_span sh.root in
    let delta =
      match span_delta (Some before) after with
      | Some d -> d.children
      | None -> []
    in
    (r, delta)
  end

(* ---- generic Chrome trace builder (client-side trace stitching) ----

   [chrome_trace_json ~processes events] renders an explicit event list
   with caller-chosen pids — the stitched cluster trace gives one pid to
   each process a request crossed (client, router, shard), unlike the
   in-process export above whose pids are fixed. *)

let complete_event ?(args = []) ~cat ~pid ~tid ~ts ~dur name =
  {
    e_name = name;
    e_cat = cat;
    e_pid = pid;
    e_tid = tid;
    e_ts = ts;
    e_dur = dur;
    e_ph = Ph_complete;
    e_args = args;
  }

let chrome_trace_json ~processes evs =
  let b = Buffer.create 4096 in
  Buffer.add_string b "{\"traceEvents\":[";
  List.iteri
    (fun i (pid, name) ->
      if i > 0 then Buffer.add_char b ',';
      buf_metadata b ~name:"process_name" ~pid ~tid:0 ~key:"name" name)
    processes;
  List.iter
    (fun ev ->
      if processes <> [] then Buffer.add_char b ',';
      buf_trace_event b ev)
    evs;
  Buffer.add_string b "],\"displayTimeUnit\":\"ms\"}";
  Buffer.contents b
