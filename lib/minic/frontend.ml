module T = Ssp_telemetry.Telemetry

exception Error of string

let render msg (pos : Ast.pos) =
  Printf.sprintf "%d:%d: %s" pos.Ast.line pos.Ast.col msg

let compile_checked src =
  T.with_span "frontend" @@ fun () ->
  try
    let ast = T.with_span "frontend.parse" (fun () -> Parser.parse src) in
    let env =
      T.with_span "frontend.typecheck" (fun () -> Typecheck.check_program ast)
    in
    let prog = T.with_span "frontend.lower" (fun () -> Lower.program env ast) in
    T.with_span "frontend.validate" (fun () ->
        match Ssp_ir.Validate.check prog with
        | Ok () -> ()
        | Error es ->
          let msg =
            String.concat "; "
              (List.map
                 (fun e -> Format.asprintf "%a" Ssp_ir.Validate.pp_error e)
                 es)
          in
          raise (Error ("lowered program invalid: " ^ msg)));
    if T.is_enabled () then begin
      let funcs = Ssp_ir.Prog.funcs_in_order prog in
      T.count "frontend.functions" (List.length funcs);
      T.count "frontend.blocks"
        (List.fold_left
           (fun acc (f : Ssp_ir.Prog.func) -> acc + Array.length f.blocks)
           0 funcs)
    end;
    (env, prog)
  with
  | Lexer.Error (m, p) -> raise (Error (render ("lexical error: " ^ m) p))
  | Parser.Error (m, p) -> raise (Error (render ("syntax error: " ^ m) p))
  | Typecheck.Error (m, p) -> raise (Error (render ("type error: " ^ m) p))
  | Lower.Error (m, p) -> raise (Error (render ("lowering error: " ^ m) p))

let compile src = snd (compile_checked src)
