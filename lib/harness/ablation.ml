type row = { variant : string; speedup : float; spawns : int; prefetches : int }

let run ?(setting = Experiment.reference) ?(jobs = 1) () =
  let w = Ssp_workloads.Suite.find "mcf" in
  let prog = Ssp_workloads.Workload.program w ~scale:setting.Experiment.scale in
  let cfg = Experiment.config_for setting Ssp_machine.Config.In_order in
  let profile = Ssp_profiling.Collect.collect ~config:cfg prog in
  let base = Ssp_sim.Inorder.run cfg prog in
  let variant name adapt () =
    let result = adapt () in
    let s = Ssp_sim.Inorder.run cfg result.Ssp.Adapt.prog in
    {
      variant = name;
      speedup = Experiment.speedup ~baseline:base s;
      spawns = s.Ssp_sim.Stats.spawns;
      prefetches = s.Ssp_sim.Stats.prefetches;
    }
  in
  (* Each variant is an independent adapt+sim over the shared read-only
     program and profile; [Pool.map] keeps the row order fixed. *)
  let variants =
    [
      variant "tool (chaining, combined, computed cond)" (fun () ->
          Ssp.Adapt.run ~config:cfg prog profile);
      variant "basic SP only" (fun () ->
          Ssp.Adapt.run ~force_basic:true ~config:cfg prog profile);
      variant "condition prediction forced" (fun () ->
          Ssp.Adapt.run ~force_predict:true ~config:cfg prog profile);
      variant "no slice combining" (fun () ->
          Ssp.Adapt.run ~combining:false ~config:cfg prog profile);
      variant "unroll 4 (hand-style lookahead)" (fun () ->
          Ssp.Adapt.run ~unroll:4 ~config:cfg prog profile);
    ]
  in
  if jobs <= 1 then List.map (fun v -> v ()) variants
  else
    Ssp_parallel.Pool.with_pool ~jobs (fun pool ->
        Ssp_parallel.Pool.map pool (fun v -> v ()) variants)

(* Dominator-walk vs max-flow min-cut trigger placement (§3.3): both must
   cut every frequent path to the delinquent load; the comparison is how
   often the main thread executes a trigger instruction. *)
let trigger_placement ?(setting = Experiment.reference) () =
  let w = Ssp_workloads.Suite.find "mcf" in
  let prog = Ssp_workloads.Workload.program w ~scale:setting.Experiment.scale in
  let cfg_m = Experiment.config_for setting Ssp_machine.Config.In_order in
  let profile = Ssp_profiling.Collect.collect ~config:cfg_m prog in
  let regions = Ssp_analysis.Regions.compute prog in
  let callgraph = Ssp_analysis.Callgraph.compute prog in
  let d = Ssp.Delinquent.identify prog profile in
  List.filter_map
    (fun (load : Ssp.Delinquent.load) ->
      match Ssp.Select.choose regions callgraph profile cfg_m load with
      | None -> None
      | Some c ->
        let fn = load.Ssp.Delinquent.iref.Ssp_ir.Iref.fn in
        let cfg_f = Ssp_analysis.Regions.cfg_of regions fn in
        let cut =
          Ssp.Mincut.min_cut cfg_f profile
            ~sink:load.Ssp.Delinquent.iref.Ssp_ir.Iref.blk ()
        in
        let mincut_triggers = Ssp.Mincut.triggers_of_cut fn cut in
        Some
          ( Format.asprintf "%a" Ssp_ir.Iref.pp load.Ssp.Delinquent.iref,
            List.length c.Ssp.Select.triggers,
            Ssp.Mincut.dynamic_cost profile fn c.Ssp.Select.triggers,
            List.length mincut_triggers,
            Ssp.Mincut.dynamic_cost profile fn mincut_triggers ))
    d.Ssp.Delinquent.loads

let print ?setting ?jobs ppf () =
  let rows = run ?setting ?jobs () in
  Format.fprintf ppf
    "@[<v>Ablations on mcf (in-order model, speedup over baseline)@,@,";
  Render.table ppf
    ~header:[ "variant"; "speedup"; "spawns"; "prefetches" ]
    (List.map
       (fun r ->
         [
           r.variant;
           Render.f2 r.speedup;
           string_of_int r.spawns;
           string_of_int r.prefetches;
         ])
       rows);
  Format.fprintf ppf "@,@,Trigger placement: dominator walk vs max-flow min-cut@,@,";
  Render.table ppf
    ~header:
      [ "delinquent load"; "dom triggers"; "dom dyn count"; "cut triggers";
        "cut dyn count" ]
    (List.map
       (fun (l, dt, dd, ct, cd) ->
         [ l; string_of_int dt; string_of_int dd; string_of_int ct;
           string_of_int cd ])
       (trigger_placement ?setting ()));
  Format.fprintf ppf "@]"
