(* Chaos campaigns: the speculative-safety invariance checker.

   The paper's correctness story is that speculative threads only
   prefetch — they never commit architectural state — so *any* fault in
   the speculative machinery must leave main-thread outputs bit-identical
   to a fault-free, unadapted run.  A campaign installs a seeded fault
   plan over every registered injection point (adaptation pipeline and
   simulator alike), adapts and simulates each workload under it, and
   compares the architectural outputs against two fault-free references:
   the unadapted cycle simulation and the functional simulator. *)

open Ssp_machine
module F = Ssp_fault.Fault

(* Probabilities are tuned so a default 8-campaign sweep exercises every
   site: the adapt sites are queried once or twice per delinquent load
   (hence high probabilities), the sim sites once per instruction/access
   event (hence low ones). *)
let default_specs =
  [
    ("adapt.profile.stale", F.spec 0.10);
    ("adapt.slicer.budget", F.spec 0.15);
    ("adapt.slice.oversized", F.spec 0.15);
    ("adapt.interproc.refuse", F.spec 0.30);
    ("adapt.chaining.refuse", F.spec 0.30);
    ("adapt.codegen.refuse", F.spec 0.10);
    ("sim.spec.kill", F.spec 0.001);
    ("sim.spawn.deny", F.spec 0.05);
    ("sim.spawn.delay", F.spec 0.05);
    ("sim.context.starve", F.spec 0.05);
    ("sim.chain.break", F.spec 0.03);
    ("sim.prefetch.drop", F.spec 0.03);
    ("sim.fill.exhaust", F.spec 0.01);
  ]

type campaign = {
  c_seed : int;  (* derived plan seed *)
  violations : string list;  (* divergence descriptions; empty = safe *)
  faults : F.count list;  (* per-site query/fire totals *)
  degraded : int;  (* ladder events that retried a lower rung *)
  skipped : int;  (* loads dropped entirely *)
  slices : int;  (* slices that still made it into the binary *)
}

type workload_result = { w_name : string; campaigns : campaign list }

type report = {
  seed : int;
  n_campaigns : int;
  specs : (string * F.spec) list;
  workloads : workload_result list;
}

let violations r =
  List.fold_left
    (fun acc w ->
      List.fold_left
        (fun acc c -> acc + List.length c.violations)
        acc w.campaigns)
    0 r.workloads

(* Sites that actually fired at least once, across the whole sweep. *)
let fired_sites r =
  List.fold_left
    (fun acc w ->
      List.fold_left
        (fun acc c ->
          List.fold_left
            (fun acc (f : F.count) ->
              if f.F.fired > 0 && not (List.mem f.F.site acc) then
                f.F.site :: acc
              else acc)
            acc c.faults)
        acc w.campaigns)
    [] r.workloads
  |> List.sort compare

let ladder_events r =
  List.fold_left
    (fun (d, s) w ->
      List.fold_left
        (fun (d, s) c -> (d + c.degraded, s + c.skipped))
        (d, s) w.campaigns)
    (0, 0) r.workloads

(* One campaign of one workload: adapt and simulate under the plan,
   then compare outputs against the fault-free references. *)
let run_campaign ~jobs ~cfg ~prog ~profile ~ref_outputs ~funcsim_ref plan =
  F.with_plan plan (fun () ->
      let result = Ssp.Adapt.run ~jobs ~config:cfg prog profile in
      let stats = Ssp_sim.Inorder.run cfg result.Ssp.Adapt.prog in
      let fsim =
        Ssp_sim.Funcsim.run ~spawning:true result.Ssp.Adapt.prog
      in
      let violations =
        (if stats.Ssp_sim.Stats.outputs <> ref_outputs then
           [ "cycle-simulated outputs diverge from fault-free unadapted run" ]
         else [])
        @
        if fsim.Ssp_sim.Funcsim.outputs <> funcsim_ref then
          [ "funcsim outputs of adapted binary diverge from reference" ]
        else []
      in
      let degraded, skipped =
        List.fold_left
          (fun (d, s) (diag : Ssp.Report.diag) ->
            if String.length diag.Ssp.Report.action >= 7
               && String.sub diag.Ssp.Report.action 0 7 = "degrade"
            then (d + 1, s)
            else if diag.Ssp.Report.action = "skip" then (d, s + 1)
            else (d, s))
          (0, 0) result.Ssp.Adapt.report.Ssp.Report.diagnostics
      in
      {
        c_seed = 0;  (* filled by the caller *)
        violations;
        faults = F.counts plan;
        degraded;
        skipped;
        slices = List.length result.Ssp.Adapt.choices;
      })

let run ?(jobs = 1) ?(scale = 2) ?(cache_divisor = 64)
    ?(specs = default_specs) ~seed ~campaigns
    (ws : Ssp_workloads.Workload.t list) =
  let cfg = Config.scale_caches Config.in_order cache_divisor in
  let workloads =
    List.map
      (fun (w : Ssp_workloads.Workload.t) ->
        let name = w.Ssp_workloads.Workload.name in
        let prog = Ssp_workloads.Workload.program w ~scale in
        let profile = Ssp_profiling.Collect.collect ~config:cfg prog in
        (* Fault-free references: the unadapted cycle run and funcsim. *)
        let base = Ssp_sim.Inorder.run cfg prog in
        let ref_outputs = base.Ssp_sim.Stats.outputs in
        let funcsim_ref = (Ssp_sim.Funcsim.run prog).Ssp_sim.Funcsim.outputs in
        let campaigns =
          (* Campaigns run sequentially: a plan is ambient global state
             (the per-campaign Adapt.run may itself use [jobs] domains). *)
          List.init campaigns (fun i ->
              let c_seed = Hashtbl.hash (seed, name, i) in
              let plan = F.make ~seed:c_seed specs in
              {
                (run_campaign ~jobs ~cfg ~prog ~profile ~ref_outputs
                   ~funcsim_ref plan)
                with
                c_seed;
              })
        in
        { w_name = name; campaigns })
      ws
  in
  { seed; n_campaigns = campaigns; specs; workloads }

let pp ppf r =
  let viol = violations r in
  let sites = fired_sites r in
  let degraded, skipped = ladder_events r in
  Format.fprintf ppf
    "@[<v>chaos: seed %d, %d campaigns x %d workloads: %d safety violations@,"
    r.seed r.n_campaigns
    (List.length r.workloads)
    viol;
  Format.fprintf ppf
    "  ladder: %d degradations, %d loads skipped; %d distinct fault sites \
     fired:@,"
    degraded skipped (List.length sites);
  List.iter (fun s -> Format.fprintf ppf "    %s@," s) sites;
  List.iter
    (fun w ->
      List.iter
        (fun c ->
          let fired =
            List.fold_left (fun acc (f : F.count) -> acc + f.F.fired) 0 c.faults
          in
          Format.fprintf ppf
            "  %-12s seed=%-12d slices=%-2d degraded=%-2d skipped=%-2d \
             faults=%-4d %s@,"
            w.w_name c.c_seed c.slices c.degraded c.skipped fired
            (if c.violations = [] then "ok" else "VIOLATION");
          List.iter
            (fun v -> Format.fprintf ppf "    !! %s@," v)
            c.violations)
        w.campaigns)
    r.workloads;
  Format.fprintf ppf "@]"

let json_escape s =
  let b = Buffer.create (String.length s) in
  String.iter
    (function
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let to_json r =
  let b = Buffer.create 4096 in
  let degraded, skipped = ladder_events r in
  Buffer.add_string b
    (Printf.sprintf
       "{\"seed\":%d,\"campaigns\":%d,\"violations\":%d,\"degraded\":%d,\
        \"skipped\":%d,\"fired_sites\":[%s],\"workloads\":["
       r.seed r.n_campaigns (violations r) degraded skipped
       (String.concat ","
          (List.map (fun s -> "\"" ^ json_escape s ^ "\"") (fired_sites r))));
  List.iteri
    (fun wi w ->
      if wi > 0 then Buffer.add_char b ',';
      Buffer.add_string b
        (Printf.sprintf "{\"name\":\"%s\",\"campaigns\":[" (json_escape w.w_name));
      List.iteri
        (fun ci c ->
          if ci > 0 then Buffer.add_char b ',';
          Buffer.add_string b
            (Printf.sprintf
               "{\"seed\":%d,\"slices\":%d,\"degraded\":%d,\"skipped\":%d,\
                \"violations\":[%s],\"faults\":{%s}}"
               c.c_seed c.slices c.degraded c.skipped
               (String.concat ","
                  (List.map
                     (fun v -> "\"" ^ json_escape v ^ "\"")
                     c.violations))
               (String.concat ","
                  (List.map
                     (fun (f : F.count) ->
                       Printf.sprintf "\"%s\":{\"queried\":%d,\"fired\":%d}"
                         (json_escape f.F.site) f.F.queried f.F.fired)
                     c.faults))))
        w.campaigns;
      Buffer.add_string b "]}")
    r.workloads;
  Buffer.add_string b "]}";
  Buffer.contents b
