(** Ablations of the §3 design choices, on mcf (the paper's running
    example):

    - {b basic-only}: force basic SP everywhere — quantifies what chaining
      (long-range prefetching) buys, the paper's central claim;
    - {b no-prediction}: force condition prediction off is not expressible
      (the spawn condition is computed when cheap), so instead force
      prediction {e on} — quantifies what the computed spawn condition
      buys over a depth bound;
    - {b no-combining}: keep one slice per delinquent load — quantifies
      §3.4.1's slice combining;
    - {b unroll-4}: the hand adaptation's per-thread lookahead on top of
      the automatic tool. *)

type row = { variant : string; speedup : float; spawns : int; prefetches : int }

val run : ?setting:Experiment.setting -> ?jobs:int -> unit -> row list
(** [jobs] > 1 runs the ablation variants (each an independent adapt+sim)
    across a domain pool; row order and contents match the sequential run. *)

val print :
  ?setting:Experiment.setting ->
  ?jobs:int ->
  Format.formatter ->
  unit ->
  unit
