open Ssp_machine

type setting = { scale : int; cache_divisor : int; label : string }

let reference = { scale = 32; cache_divisor = 1; label = "reference" }
let quick = { scale = 3; cache_divisor = 16; label = "quick" }

type runs = {
  name : string;
  io_base : Ssp_sim.Stats.t;
  io_ssp : Ssp_sim.Stats.t;
  io_pmem : Ssp_sim.Stats.t;
  io_pdel : Ssp_sim.Stats.t;
  ooo_base : Ssp_sim.Stats.t;
  ooo_ssp : Ssp_sim.Stats.t;
  ooo_pmem : Ssp_sim.Stats.t;
  ooo_pdel : Ssp_sim.Stats.t;
  report : Ssp.Report.t;
  delinquent : Ssp_ir.Iref.Set.t;
}

let config_for setting pipeline =
  let base =
    match pipeline with
    | Config.In_order -> Config.in_order
    | Config.Out_of_order -> Config.out_of_order
  in
  if setting.cache_divisor = 1 then base
  else Config.scale_caches base setting.cache_divisor

let simulate ?attrib (cfg : Config.t) prog =
  match cfg.Config.pipeline with
  | Config.In_order -> Ssp_sim.Inorder.run ?attrib cfg prog
  | Config.Out_of_order -> Ssp_sim.Ooo.run ?attrib cfg prog

let adapt_and_run setting ~pipeline prog profile =
  let cfg = config_for setting pipeline in
  let result = Ssp.Adapt.run ~config:cfg prog profile in
  (result, simulate cfg result.Ssp.Adapt.prog)

type attributed = {
  a_name : string;
  a_base : Ssp_sim.Stats.t;
  a_ssp : Ssp_sim.Stats.t;
  a_result : Ssp.Adapt.result;
  a_attrib : Ssp_sim.Attrib.summary;
}

let attributed_run ?(setting = reference) ~pipeline
    (w : Ssp_workloads.Workload.t) =
  let cfg = config_for setting pipeline in
  let prog = Ssp_workloads.Workload.program w ~scale:setting.scale in
  let profile = Ssp_profiling.Collect.collect ~config:cfg prog in
  let result = Ssp.Adapt.run ~config:cfg prog profile in
  let attrib =
    Ssp_sim.Attrib.create ~prefetch_map:result.Ssp.Adapt.prefetch_map ()
  in
  let base = simulate cfg prog in
  let ssp = simulate ~attrib cfg result.Ssp.Adapt.prog in
  if ssp.Ssp_sim.Stats.outputs <> base.Ssp_sim.Stats.outputs then
    failwith
      (Printf.sprintf "Experiment.attributed_run: %s outputs diverge"
         w.Ssp_workloads.Workload.name);
  {
    a_name = w.Ssp_workloads.Workload.name;
    a_base = base;
    a_ssp = ssp;
    a_result = result;
    a_attrib = Ssp_sim.Attrib.summary attrib;
  }

let cache : (string * string, runs) Hashtbl.t = Hashtbl.create 16

let run_benchmark ?(setting = reference) (w : Ssp_workloads.Workload.t) =
  let key = (w.Ssp_workloads.Workload.name, setting.label) in
  match Hashtbl.find_opt cache key with
  | Some r -> r
  | None ->
    let prog = Ssp_workloads.Workload.program w ~scale:setting.scale in
    let io_cfg = config_for setting Config.In_order in
    let ooo_cfg = config_for setting Config.Out_of_order in
    let profile = Ssp_profiling.Collect.collect ~config:io_cfg prog in
    let d = Ssp.Delinquent.identify prog profile in
    let delinquent = Ssp.Delinquent.set d in
    let adapted_io = Ssp.Adapt.run ~config:io_cfg prog profile in
    let adapted_ooo = Ssp.Adapt.run ~config:ooo_cfg prog profile in
    let mode m cfg = Config.with_memory_mode cfg m in
    let r =
      {
        name = w.Ssp_workloads.Workload.name;
        io_base = simulate io_cfg prog;
        io_ssp = simulate io_cfg adapted_io.Ssp.Adapt.prog;
        io_pmem = simulate (mode Config.Perfect_memory io_cfg) prog;
        io_pdel = simulate (mode (Config.Perfect_delinquent delinquent) io_cfg) prog;
        ooo_base = simulate ooo_cfg prog;
        ooo_ssp = simulate ooo_cfg adapted_ooo.Ssp.Adapt.prog;
        ooo_pmem = simulate (mode Config.Perfect_memory ooo_cfg) prog;
        ooo_pdel =
          simulate (mode (Config.Perfect_delinquent delinquent) ooo_cfg) prog;
        report = adapted_io.Ssp.Adapt.report;
        delinquent;
      }
    in
    (* Sanity: every configuration must compute the same outputs. *)
    List.iter
      (fun (s : Ssp_sim.Stats.t) ->
        if s.Ssp_sim.Stats.outputs <> r.io_base.Ssp_sim.Stats.outputs then
          failwith
            (Printf.sprintf "Experiment.run_benchmark: %s outputs diverge"
               w.Ssp_workloads.Workload.name))
      [ r.io_ssp; r.io_pmem; r.io_pdel; r.ooo_base; r.ooo_ssp; r.ooo_pmem;
        r.ooo_pdel ];
    Hashtbl.replace cache key r;
    r

let speedup ~baseline x =
  float_of_int baseline.Ssp_sim.Stats.cycles
  /. float_of_int x.Ssp_sim.Stats.cycles
