open Ssp_machine

type setting = { scale : int; cache_divisor : int; label : string }

let reference = { scale = 32; cache_divisor = 1; label = "reference" }
let quick = { scale = 3; cache_divisor = 16; label = "quick" }

type runs = {
  name : string;
  io_base : Ssp_sim.Stats.t;
  io_ssp : Ssp_sim.Stats.t;
  io_pmem : Ssp_sim.Stats.t;
  io_pdel : Ssp_sim.Stats.t;
  ooo_base : Ssp_sim.Stats.t;
  ooo_ssp : Ssp_sim.Stats.t;
  ooo_pmem : Ssp_sim.Stats.t;
  ooo_pdel : Ssp_sim.Stats.t;
  report : Ssp.Report.t;
  delinquent : Ssp_ir.Iref.Set.t;
}

let config_for setting pipeline =
  let base =
    match pipeline with
    | Config.In_order -> Config.in_order
    | Config.Out_of_order -> Config.out_of_order
  in
  if setting.cache_divisor = 1 then base
  else Config.scale_caches base setting.cache_divisor

let simulate ?attrib ?sampling (cfg : Config.t) prog =
  match cfg.Config.pipeline with
  | Config.In_order -> Ssp_sim.Inorder.run ?attrib ?sampling cfg prog
  | Config.Out_of_order -> Ssp_sim.Ooo.run ?attrib ?sampling cfg prog

let adapt_and_run setting ~pipeline prog profile =
  let cfg = config_for setting pipeline in
  let result = Ssp.Adapt.run ~config:cfg prog profile in
  (result, simulate cfg result.Ssp.Adapt.prog)

type attributed = {
  a_name : string;
  a_base : Ssp_sim.Stats.t;
  a_ssp : Ssp_sim.Stats.t;
  a_result : Ssp.Adapt.result;
  a_attrib : Ssp_sim.Attrib.summary;
}

let attributed_run ?(setting = reference) ~pipeline
    (w : Ssp_workloads.Workload.t) =
  let cfg = config_for setting pipeline in
  let prog = Ssp_workloads.Workload.program w ~scale:setting.scale in
  let profile = Ssp_profiling.Collect.collect ~config:cfg prog in
  let result = Ssp.Adapt.run ~config:cfg prog profile in
  let attrib =
    Ssp_sim.Attrib.create ~prefetch_map:result.Ssp.Adapt.prefetch_map ()
  in
  let base = simulate cfg prog in
  let ssp = simulate ~attrib cfg result.Ssp.Adapt.prog in
  if ssp.Ssp_sim.Stats.outputs <> base.Ssp_sim.Stats.outputs then
    failwith
      (Printf.sprintf "Experiment.attributed_run: %s outputs diverge"
         w.Ssp_workloads.Workload.name);
  {
    a_name = w.Ssp_workloads.Workload.name;
    a_base = base;
    a_ssp = ssp;
    a_result = result;
    a_attrib = Ssp_sim.Attrib.summary attrib;
  }

let l1d_miss_rate (s : Ssp_sim.Stats.t) =
  let accesses, l1 =
    Ssp_ir.Iref.Tbl.fold
      (fun _ (site : Ssp_sim.Stats.load_site) (a, h) ->
        (a + site.Ssp_sim.Stats.accesses, h + site.Ssp_sim.Stats.l1))
      s.Ssp_sim.Stats.loads (0, 0)
  in
  if accesses = 0 then 0.
  else 1. -. (float_of_int l1 /. float_of_int accesses)

type sampling_check = {
  sc_name : string;
  sc_full : Ssp_sim.Stats.t;
  sc_sampled : Ssp_sim.Stats.t;
  sc_ipc_err : float;
  sc_l1d_err : float;
  sc_outputs_equal : bool;
}

let sampling_accuracy ?(setting = quick)
    ?(sampling = Ssp_sim.Smt.default_sampling) ~pipeline
    (w : Ssp_workloads.Workload.t) =
  let cfg = config_for setting pipeline in
  let prog = Ssp_workloads.Workload.program w ~scale:setting.scale in
  let full = simulate cfg prog in
  let sampled = simulate ~sampling cfg prog in
  let ipc = Ssp_sim.Stats.ipc in
  {
    sc_name = w.Ssp_workloads.Workload.name;
    sc_full = full;
    sc_sampled = sampled;
    sc_ipc_err =
      abs_float (ipc sampled -. ipc full) /. Float.max 1e-9 (ipc full);
    sc_l1d_err = abs_float (l1d_miss_rate sampled -. l1d_miss_rate full);
    sc_outputs_equal =
      sampled.Ssp_sim.Stats.outputs = full.Ssp_sim.Stats.outputs;
  }

(* The memo is shared by every figure; guard it so workloads primed from
   pool workers can publish results concurrently. *)
let cache : (string * string, runs) Hashtbl.t = Hashtbl.create 16
let cache_mutex = Mutex.create ()
let cache_find key = Mutex.protect cache_mutex (fun () -> Hashtbl.find_opt cache key)
let cache_put key r = Mutex.protect cache_mutex (fun () -> Hashtbl.replace cache key r)

let run_benchmark ?(setting = reference) ?(jobs = 1)
    (w : Ssp_workloads.Workload.t) =
  let key = (w.Ssp_workloads.Workload.name, setting.label) in
  match cache_find key with
  | Some r -> r
  | None ->
    let prog = Ssp_workloads.Workload.program w ~scale:setting.scale in
    let io_cfg = config_for setting Config.In_order in
    let ooo_cfg = config_for setting Config.Out_of_order in
    let profile = Ssp_profiling.Collect.collect ~config:io_cfg prog in
    let d = Ssp.Delinquent.identify prog profile in
    let delinquent = Ssp.Delinquent.set d in
    let adapted_io = Ssp.Adapt.run ~jobs ~config:io_cfg prog profile in
    let adapted_ooo = Ssp.Adapt.run ~jobs ~config:ooo_cfg prog profile in
    let mode m cfg = Config.with_memory_mode cfg m in
    (* The eight sim points are independent (each builds its own machine
       over the read-only program), so with [jobs > 1] they fan out across
       a pool; [map_array]'s positional results keep the record fields —
       and therefore every downstream table — independent of scheduling. *)
    let points =
      [|
        (fun () -> simulate io_cfg prog);
        (fun () -> simulate io_cfg adapted_io.Ssp.Adapt.prog);
        (fun () -> simulate (mode Config.Perfect_memory io_cfg) prog);
        (fun () ->
          simulate (mode (Config.Perfect_delinquent delinquent) io_cfg) prog);
        (fun () -> simulate ooo_cfg prog);
        (fun () -> simulate ooo_cfg adapted_ooo.Ssp.Adapt.prog);
        (fun () -> simulate (mode Config.Perfect_memory ooo_cfg) prog);
        (fun () ->
          simulate (mode (Config.Perfect_delinquent delinquent) ooo_cfg) prog);
      |]
    in
    let stats =
      if jobs <= 1 then Array.map (fun f -> f ()) points
      else
        Ssp_parallel.Pool.with_pool ~jobs (fun pool ->
            Ssp_parallel.Pool.map_array pool (fun f -> f ()) points)
    in
    let r =
      {
        name = w.Ssp_workloads.Workload.name;
        io_base = stats.(0);
        io_ssp = stats.(1);
        io_pmem = stats.(2);
        io_pdel = stats.(3);
        ooo_base = stats.(4);
        ooo_ssp = stats.(5);
        ooo_pmem = stats.(6);
        ooo_pdel = stats.(7);
        report = adapted_io.Ssp.Adapt.report;
        delinquent;
      }
    in
    (* Sanity: every configuration must compute the same outputs. *)
    List.iter
      (fun (s : Ssp_sim.Stats.t) ->
        if s.Ssp_sim.Stats.outputs <> r.io_base.Ssp_sim.Stats.outputs then
          failwith
            (Printf.sprintf "Experiment.run_benchmark: %s outputs diverge"
               w.Ssp_workloads.Workload.name))
      [ r.io_ssp; r.io_pmem; r.io_pdel; r.ooo_base; r.ooo_ssp; r.ooo_pmem;
        r.ooo_pdel ];
    cache_put key r;
    r

(* Fill the memo for a list of workloads, one pool task per workload (the
   per-workload pipeline stays sequential — no nested pools). Two tasks
   computing the same key produce identical records, so a racing double
   insert is benign. *)
let prime ?(setting = reference) ~jobs (ws : Ssp_workloads.Workload.t list) =
  if jobs <= 1 then
    List.iter (fun w -> ignore (run_benchmark ~setting w)) ws
  else
    Ssp_parallel.Pool.with_pool ~jobs (fun pool ->
        Ssp_parallel.Pool.run pool
          (List.map (fun w () -> ignore (run_benchmark ~setting w)) ws))

let speedup ~baseline x =
  float_of_int baseline.Ssp_sim.Stats.cycles
  /. float_of_int x.Ssp_sim.Stats.cycles
