(** Experiment driver: compile → profile → adapt → simulate each benchmark
    under every configuration the paper's evaluation needs, once, and share
    the runs across figures.

    A {!setting} scales the working sets and (optionally) the caches so the
    whole evaluation can also run as a quick smoke test with the same
    shape. The reference setting uses the Table 1 geometry unmodified with
    working sets beyond the L3. *)

type setting = {
  scale : int;  (** workload size knob *)
  cache_divisor : int;  (** 1 = the paper's Table 1 geometry *)
  label : string;
}

val reference : setting
val quick : setting

type runs = {
  name : string;
  io_base : Ssp_sim.Stats.t;
  io_ssp : Ssp_sim.Stats.t;
  io_pmem : Ssp_sim.Stats.t;
  io_pdel : Ssp_sim.Stats.t;
  ooo_base : Ssp_sim.Stats.t;
  ooo_ssp : Ssp_sim.Stats.t;
  ooo_pmem : Ssp_sim.Stats.t;
  ooo_pdel : Ssp_sim.Stats.t;
  report : Ssp.Report.t;
  delinquent : Ssp_ir.Iref.Set.t;
}

val run_benchmark :
  ?setting:setting -> ?jobs:int -> Ssp_workloads.Workload.t -> runs
(** Memoized per (benchmark, setting) within the process (the memo is
    mutex-guarded, so concurrent callers are safe). [jobs] > 1 fans the
    benchmark's eight independent sim points out across a domain pool;
    results are identical to the sequential run. *)

val prime :
  ?setting:setting -> jobs:int -> Ssp_workloads.Workload.t list -> unit
(** Fill the {!run_benchmark} memo for all the given workloads, one pool
    task per workload when [jobs] > 1. Subsequent [run_benchmark] calls
    hit the memo, so figure/table rendering stays sequential and ordered
    while the heavy simulation work parallelizes. *)

val speedup : baseline:Ssp_sim.Stats.t -> Ssp_sim.Stats.t -> float
(** cycles(baseline) / cycles(x). *)

val adapt_and_run :
  setting ->
  pipeline:Ssp_machine.Config.pipeline ->
  Ssp_ir.Prog.t ->
  Ssp_profiling.Profile.t ->
  Ssp.Adapt.result * Ssp_sim.Stats.t
(** Building block for the hand-vs-auto and ablation experiments. *)

type attributed = {
  a_name : string;
  a_base : Ssp_sim.Stats.t;  (** unmodified binary *)
  a_ssp : Ssp_sim.Stats.t;  (** adapted binary, attributed run *)
  a_result : Ssp.Adapt.result;
  a_attrib : Ssp_sim.Attrib.summary;
}

val attributed_run :
  ?setting:setting ->
  pipeline:Ssp_machine.Config.pipeline ->
  Ssp_workloads.Workload.t ->
  attributed
(** Profile, adapt, and simulate one workload with prefetch-lifecycle
    attribution enabled on the adapted run; the baseline runs without
    instrumentation. Output equality between the two runs is asserted. *)

val config_for :
  setting -> Ssp_machine.Config.pipeline -> Ssp_machine.Config.t

val l1d_miss_rate : Ssp_sim.Stats.t -> float
(** Main-thread L1d miss rate aggregated over the per-site load stats. *)

type sampling_check = {
  sc_name : string;
  sc_full : Ssp_sim.Stats.t;  (** full-detail run *)
  sc_sampled : Ssp_sim.Stats.t;  (** sampled run, same binary *)
  sc_ipc_err : float;  (** relative IPC error of the sampled run *)
  sc_l1d_err : float;  (** absolute L1d-miss-rate difference *)
  sc_outputs_equal : bool;  (** must always hold: FF is architecturally exact *)
}

val sampling_accuracy :
  ?setting:setting ->
  ?sampling:Ssp_sim.Smt.sampling ->
  pipeline:Ssp_machine.Config.pipeline ->
  Ssp_workloads.Workload.t ->
  sampling_check
(** Run one workload full-detail and sampled (default
    {!Ssp_sim.Smt.default_sampling}, default [quick] setting) and compare:
    the accuracy contract behind the sampled-simulation mode. *)
