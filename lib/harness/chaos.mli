(** Chaos campaigns: the speculative-safety invariance checker.

    Speculative threads only prefetch — they never commit architectural
    state — so any fault in the speculative machinery must leave
    main-thread outputs bit-identical to a fault-free, unadapted run.
    [run] sweeps seeded fault plans over every registered injection point
    (adaptation pipeline and simulator), adapts and simulates each
    workload under each plan, and compares architectural outputs against
    two fault-free references: the unadapted cycle simulation and the
    functional simulator. *)

val default_specs : (string * Ssp_fault.Fault.spec) list
(** Every registered fault site with a probability tuned to its query
    rate (per-load adapt sites high, per-event sim sites low). *)

type campaign = {
  c_seed : int;  (** derived plan seed *)
  violations : string list;  (** divergence descriptions; empty = safe *)
  faults : Ssp_fault.Fault.count list;  (** per-site query/fire totals *)
  degraded : int;  (** ladder events that retried a lower rung *)
  skipped : int;  (** loads dropped entirely *)
  slices : int;  (** slices that still made it into the binary *)
}

type workload_result = { w_name : string; campaigns : campaign list }

type report = {
  seed : int;
  n_campaigns : int;
  specs : (string * Ssp_fault.Fault.spec) list;
  workloads : workload_result list;
}

val run :
  ?jobs:int ->
  ?scale:int ->
  ?cache_divisor:int ->
  ?specs:(string * Ssp_fault.Fault.spec) list ->
  seed:int ->
  campaigns:int ->
  Ssp_workloads.Workload.t list ->
  report
(** Campaigns are sequential (a fault plan is ambient global state);
    [jobs] parallelizes each campaign's adaptation internally, which must
    not — and, because ladder decisions are keyed by load identity, does
    not — change any outcome. *)

val violations : report -> int
val fired_sites : report -> string list
val ladder_events : report -> int * int
(** (total degradations, total skipped loads). *)

val pp : Format.formatter -> report -> unit
val to_json : report -> string
