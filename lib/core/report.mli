(** Adaptation report: the per-slice data behind Table 2 plus the
    scheduling diagnostics the paper discusses (§3.2, §4.2). *)

type slice_info = {
  fn : string;
  region : string;
  model : string;  (** "chaining" or "basic" *)
  size : int;  (** slice instructions *)
  live_ins : int;
  interprocedural : bool;
  targets : int;  (** delinquent loads covered *)
  triggers : int;
  trips : int;
  slack1 : int;  (** slack of the first iteration under the chosen model *)
  available_ilp : float;
  spawn_condition : string;  (** "computed" or "predicted" *)
}

type diag = {
  load : string;  (** delinquent load ([Iref.to_string]) *)
  stage : string;  (** failing pass: "profile", "slicer", "select", "codegen" *)
  action : string;  (** ["degrade:<rung>"], ["skip"] or ["drop-trigger"] *)
  detail : string;
}
(** One degradation-ladder event: a per-load pipeline stage failed and the
    pipeline either retried the load on a lower rung or dropped it. *)

type t = {
  slices : slice_info list;
  n_delinquent : int;
  coverage : float;  (** miss-cycle coverage of the selected loads *)
  diagnostics : diag list;
      (** per-load failures survived via the degradation ladder *)
}

val table2_row : t -> int * int * float * float
(** (slices, interprocedural slices, average size, average live-ins). *)

val pp : Format.formatter -> t -> unit
