open Ssp_analysis
module F = Ssp_fault.Fault

let site_interproc = F.site "adapt.interproc.refuse"
let site_chaining = F.site "adapt.chaining.refuse"

type model = Chaining | Basic

type choice = {
  schedule : Schedule.t;
  model : model;
  triggers : Trigger.t list;
  trips : int;
  reduced_misscycles : int;
  load : Delinquent.load;
  unroll : int;
      (* iterations one speculative thread precomputes; the automatic tool
         uses 1 (§3.2.1: "one chaining thread targets one iteration"), hand
         adaptation uses more *)
  allow_interproc : bool;
  allow_chaining : bool;
      (* the degradation-ladder rung this choice was approved under;
         [refine] must not re-promote past it when slices are combined *)
}

let cutoff = 0.3
let max_region_depth = 3

let trips_of regions profile region fn =
  match Regions.loop_of regions region with
  | None ->
    let entries = max 1 (Ssp_profiling.Profile.block_freq profile fn 0) in
    (entries, 1)
  | Some loop ->
    let header_freq =
      Ssp_profiling.Profile.block_freq profile fn loop.Loops.header
    in
    let back_freq =
      List.fold_left
        (fun acc (src, _) ->
          acc + Ssp_profiling.Profile.block_freq profile fn src)
        0 loop.Loops.back_edges
    in
    let entries = max 1 (header_freq - back_freq) in
    (entries, max 1 (header_freq / entries))

(* Σ_{i=1..trips} min(mcpi, slack(i)) with slack(i) = s1·min(i, cap), in
   closed form to survive huge trip counts. [cap] bounds how far the chain
   can run ahead (hardware contexts limit a memory-serialized chain). *)
let reduced ?(cap = max_int) ~mcpi ~trips ~slack1 () =
  if slack1 <= 0 || mcpi <= 0 then 0
  else begin
    let sat = min cap (mcpi / slack1) in
    (* iterations 1..k gain slack1·i; beyond that slack plateaus *)
    let k = min trips sat in
    let ramp = slack1 * k * (k + 1) / 2 in
    let flat = max 0 (trips - k) * min mcpi (slack1 * sat) in
    ramp + flat
  end

let has_in_region_cut regions (s : Slice.t) =
  let blocks = Regions.blocks_of regions s.Slice.region in
  List.exists
    (fun (l : Slice.live_in) ->
      List.exists
        (fun (d : Ssp_ir.Iref.t) ->
          String.equal d.fn s.Slice.fn && List.mem d.blk blocks)
        l.Slice.def_sites)
    s.Slice.live_ins

let candidate_regions regions (load : Delinquent.load) =
  let rec up region acc depth =
    if depth > max_region_depth then List.rev acc
    else
      match Regions.parent regions region with
      | None -> List.rev acc
      | Some p -> up p (p :: acc) (depth + 1)
  in
  let innermost = Regions.innermost_at regions load.Delinquent.iref in
  innermost :: up innermost [] 1

(* Average miss cycles per execution over all targets of a slice. *)
let mcpi_of_slice profile (s : Slice.t) =
  List.fold_left
    (fun acc (t : Slice.target) ->
      match Ssp_profiling.Profile.load_stats profile t.Slice.load with
      | Some st when st.Ssp_profiling.Profile.accesses > 0 ->
        acc
        + st.Ssp_profiling.Profile.miss_cycles
          / st.Ssp_profiling.Profile.accesses
      | Some _ | None -> acc)
    0 s.Slice.targets

let decide_model ?(chaining = true) regions (cfg : Ssp_machine.Config.t)
    (sched : Schedule.t) ~trips ~entries ~mcpi =
  let slice = sched.Schedule.slice in
  let nlive = List.length slice.Slice.live_ins in
  (* Trigger overhead on the main thread (§3.3: communication slows the
     main thread; the flush is the §4.4.1 exception-like spawn cost). Basic
     SP pays a full trigger every iteration; chaining pays a 1-cycle nop
     check per iteration plus occasional re-seeds (estimated as one full
     trigger per 16 iterations). *)
  let full_trigger =
    cfg.Ssp_machine.Config.front_end_penalty
    + cfg.Ssp_machine.Config.spawn_latency + nlive + 2
  in
  let overhead_bsp = entries * trips * full_trigger in
  let overhead_csp = entries * trips * (1 + (full_trigger / 16)) in
  (* A chain whose critical sub-slice is dominated by a cache miss is
     memory-serialized: links live as long as the miss, so at most
     (contexts − 1) links are in flight and the lead plateaus. *)
  let serial_cap =
    if
      sched.Schedule.height_critical
      > 4 * cfg.Ssp_machine.Config.l1.Ssp_machine.Config.latency
    then cfg.Ssp_machine.Config.n_contexts - 1
    else max_int
  in
  let red_csp =
    (entries
    * reduced ~cap:serial_cap ~mcpi ~trips
        ~slack1:(Schedule.slack_csp sched 1) ())
    - overhead_csp
  in
  (* Basic SP's lookahead does not accumulate across iterations (each
     trigger restarts one iteration ahead), so unlike the chaining estimate
     its slack is flat. A whole-procedure slice that preserves an inner
     loop covers the whole traversal: its helper gains slack at the rate
     the main thread falls behind per inner iteration. *)
  let red_bsp =
    match Regions.loop_of regions slice.Slice.region with
    | Some _ ->
      (entries * trips * min mcpi (Schedule.slack_bsp sched 1)) - overhead_bsp
    | None -> (
      match sched.Schedule.inner with
      | Some inner ->
        let itrips = max 1 inner.Schedule.trips in
        (entries
        * reduced ~mcpi ~trips:itrips
            ~slack1:(max 1 (Schedule.slack_bsp sched 1 / itrips)) ())
        - (entries * full_trigger)
      | None ->
        (entries * min mcpi (Schedule.slack_bsp sched 1))
        - (entries * full_trigger))
  in
  let forced_basic =
    (not chaining)
    || has_in_region_cut regions slice
    || Regions.loop_of regions slice.Slice.region = None
    (* chaining needs something to chain: a recurrence the thread advances *)
    || sched.Schedule.order_critical = []
    || sched.Schedule.recurrence_regs = []
  in
  if forced_basic then (Basic, red_bsp)
  else if trips < 4 then (Basic, red_bsp)
  else if red_bsp >= red_csp then (Basic, red_bsp)
  else (Chaining, red_csp)

let triggers_for ?(interproc = true) regions callgraph profile model
    (slice : Slice.t) =
  match model with
  | Chaining -> (slice, Trigger.for_chaining regions slice)
  | Basic -> (
    match Regions.loop_of regions slice.Slice.region with
    | Some _ -> (slice, Trigger.for_basic regions slice)
    | None when not interproc -> (slice, Trigger.for_basic regions slice)
    | None -> (
      match Slicer.bind_at_callers regions callgraph profile slice with
      | Some (s', sites) -> (s', Trigger.for_call_sites sites)
      | None -> (slice, Trigger.for_basic regions slice)))

(* Combining can shift the model decision (typically toward chaining), so
   refusals apply here too: a refusal at this stage degrades the merged
   choice in place — there is no ladder to rerun — and lowers its ceiling
   so later merges cannot re-promote it. *)
let refine regions callgraph profile cfg (c : choice) =
  let sched = c.schedule in
  let slice = sched.Schedule.slice in
  let key = Ssp_ir.Iref.hash c.load.Delinquent.iref in
  let entries, trips =
    trips_of regions profile slice.Slice.region slice.Slice.fn
  in
  let mcpi = mcpi_of_slice profile slice in
  let model, red =
    decide_model ~chaining:c.allow_chaining regions cfg sched ~trips ~entries
      ~mcpi
  in
  let allow_chaining =
    c.allow_chaining
    && not (model = Chaining && F.fire ~key site_chaining)
  in
  let model, red =
    if model = Chaining && not allow_chaining then
      decide_model ~chaining:false regions cfg sched ~trips ~entries ~mcpi
    else (model, red)
  in
  let slice', triggers =
    triggers_for ~interproc:c.allow_interproc regions callgraph profile model
      slice
  in
  let allow_interproc =
    c.allow_interproc
    && not (slice'.Slice.interprocedural && F.fire ~key site_interproc)
  in
  let slice', triggers =
    if slice'.Slice.interprocedural && not allow_interproc then
      triggers_for ~interproc:false regions callgraph profile model slice
    else (slice', triggers)
  in
  {
    c with
    schedule = { sched with Schedule.slice = slice' };
    model;
    triggers;
    trips;
    reduced_misscycles = red;
    allow_interproc;
    allow_chaining;
  }

let choose ?(interproc = true) ?(chaining = true) regions callgraph profile
    cfg (load : Delinquent.load) =
  let key = Ssp_ir.Iref.hash load.Delinquent.iref in
  let evaluate region =
    match Slicer.slice_region regions profile ~region load with
    | None -> None
    | Some slice ->
      let fn = slice.Slice.fn in
      let entries, trips = trips_of regions profile region fn in
      let sched = Schedule.build regions profile cfg ~trips slice in
      let mcpi =
        load.Delinquent.miss_cycles / max 1 load.Delinquent.accesses
      in
      let model, red =
        decide_model ~chaining regions cfg sched ~trips ~entries ~mcpi
      in
      Some (slice, sched, model, red, trips)
  in
  let candidates = List.filter_map evaluate (candidate_regions regions load) in
  let threshold =
    int_of_float (cutoff *. float_of_int load.Delinquent.miss_cycles)
  in
  let best =
    List.fold_left
      (fun acc ((_, _, _, red, _) as c) ->
        match acc with
        | Some (_, _, _, b, _) when b >= red -> acc
        | _ -> Some c)
      None candidates
  in
  (* Innermost region meeting the threshold wins; otherwise the best
     region, preferring inner ones when the estimates are about the same
     (§3.4.1). *)
  let chosen =
    match
      List.find_opt (fun (_, _, _, red, _) -> red >= threshold) candidates
    with
    | Some c -> Some c
    | None -> (
      match best with
      | Some (_, _, _, bred, _) when bred > 0 ->
        List.find_opt
          (fun (_, _, _, red, _) ->
            float_of_int red >= 0.9 *. float_of_int bred)
          candidates
      | _ -> None)
  in
  match chosen with
  | None -> None
  | Some (slice, sched, model, red, trips) ->
    if red <= 0 then None
    else begin
      if model = Chaining && F.fire ~key site_chaining then
        Ssp_ir.Error.raise_error ~injected:true ~pass:"select"
          ~fn:slice.Slice.fn
          ~instr:(Ssp_ir.Iref.to_string load.Delinquent.iref)
          "chaining model refused";
      (* Interprocedural binding for whole-procedure slices. *)
      let slice', triggers =
        triggers_for ~interproc regions callgraph profile model slice
      in
      if slice'.Slice.interprocedural && F.fire ~key site_interproc then
        Ssp_ir.Error.raise_error ~injected:true ~pass:"select"
          ~fn:slice'.Slice.fn
          ~instr:(Ssp_ir.Iref.to_string load.Delinquent.iref)
          "interprocedural binding refused";
      if triggers = [] then None
      else begin
        let sched = { sched with Schedule.slice = slice' } in
        Some
          { schedule = sched; model; triggers; trips;
            reduced_misscycles = red; load; unroll = 1;
            allow_interproc = interproc; allow_chaining = chaining }
      end
    end
