(** SSP-enabled code generation (§3.4.2, Figure 7).

    For every selected slice the program is rewritten in place:
    - the p-slice is appended to its host function as {e slice blocks}: the
      speculative thread copies its live-ins out of the live-in buffer,
      runs the scheduled critical sub-slice, conditionally spawns the next
      chaining thread (copying the updated live-ins into the buffer first),
      runs the non-critical sub-slice, issues the prefetches and kills
      itself;
    - each trigger site gets a {e stub block} appended to the triggering
      function: the main thread reaches it as the recovery code of the new
      [chk.c] instruction, copies the live-in values into the buffer,
      spawns the speculative thread and resumes;
    - the [chk.c] is inserted by splitting the trigger's block: the
      instructions after the trigger point move to a {e resume block}, so
      all original instruction positions before the split stay valid (the
      paper replaces an existing nop; our generator has no nops to spare).

    Slice registers are freshly renamed (speculative contexts start from a
    clean register file), which also disposes of all anti and output
    dependences, and slice code never contains stores, allocations or
    calls — validated structurally after rewriting. *)

val depth_slot : int
(** Live-in buffer slot carrying the chain-depth bound of predicted spawn
    conditions (the last slot). *)

type apply_result = {
  prefetch_map : Ssp_ir.Iref.t Ssp_ir.Iref.Map.t;
      (** every emitted instruction that acts as a prefetch — each
          [lfetch], and each slice copy of a value-used target load (no
          lfetch is emitted for those; the load itself is the prefetch) —
          mapped to the original delinquent load it precomputes *)
  dropped : (Ssp_ir.Iref.t * Ssp_ir.Error.info) list;
      (** per-choice failures survived: the delinquent load whose choice
          (or trigger) was dropped, and why.  A dropped slice or trigger
          only costs prefetches — the rewritten program stays valid. *)
}

val apply :
  Ssp_ir.Prog.t -> Ssp_machine.Config.t -> Select.choice list -> apply_result
(** Mutates the program.  Per-choice emission failures (including
    injected [adapt.codegen.refuse] faults) are isolated — the choice is
    dropped and reported in [dropped].  Raises [Ssp_ir.Error.Error] only
    if the fully rewritten program fails validation. *)

(** {2 Raw rewriting (hand adaptation)}

    The §4.5 hand-adapted binaries are built with the same low-level
    rewriting used by the automatic tool. *)

val insert_chk :
  Ssp_ir.Prog.t ->
  fn:string ->
  blk:int ->
  pos:int ->
  stub_ops:Ssp_isa.Op.t list ->
  unit
(** Split the block at [pos], insert a [chk.c], append the stub (the final
    resume branch is added automatically). *)

val append_raw_blocks :
  Ssp_ir.Prog.t -> fn:string -> (string * Ssp_isa.Op.t list) list -> unit

val fresh_name : string -> string
(** A program-unique label with the given stem. *)
