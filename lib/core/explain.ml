(* `sspc explain`: join everything the pipeline knows about each
   delinquent load — profile miss share, the slice/scheme/slack the tool
   chose, trigger placement — with what the simulator's prefetch
   attribution then observed (useful / late / early-evicted / redundant /
   dropped, coverage / accuracy / timeliness). One row per delinquent
   load; rendered as a table or as JSON. *)

module Iref = Ssp_ir.Iref
module Attrib = Ssp_sim.Attrib

type scheme = {
  model : string; (* "chaining" | "basic" *)
  slice_size : int;
  live_ins : int;
  region : string;
  interprocedural : bool;
  spawn_condition : string; (* "computed" | "predicted" *)
  slack1_csp : int;
  slack1_bsp : int;
  trips : int;
  triggers : Trigger.t list;
}

type row = {
  load : Delinquent.load;
  miss_share : float; (* of all profiled miss cycles *)
  scheme : scheme option; (* None: no slice covers this load *)
  attrib : Attrib.load_summary option;
  feedback : string option; (* cluster-aggregate cell, caller-supplied *)
}

type t = {
  rows : row list;
  threads : Attrib.thread_summary;
  sites : Attrib.site_summary list;
  profile_coverage : float; (* miss-cycle coverage of the selected loads *)
  cycles : int; (* simulated cycles of the attributed run *)
  diagnostics : Report.diag list; (* degradation-ladder decisions *)
}

let region_string r = Format.asprintf "%a" Ssp_analysis.Regions.pp r

let scheme_of (c : Select.choice) =
  let sched = c.Select.schedule in
  let slice = sched.Schedule.slice in
  {
    model =
      (match c.Select.model with
      | Select.Chaining -> "chaining"
      | Select.Basic -> "basic");
    slice_size = Slice.size slice;
    live_ins = List.length slice.Slice.live_ins;
    region = region_string slice.Slice.region;
    interprocedural = slice.Slice.interprocedural;
    spawn_condition =
      (match sched.Schedule.spawn_cond with
      | Schedule.Cond _ -> "computed"
      | Schedule.Predicted _ -> "predicted");
    slack1_csp = Schedule.slack_csp sched 1;
    slack1_bsp = Schedule.slack_bsp sched 1;
    trips = c.Select.trips;
    triggers = c.Select.triggers;
  }

(* The choice whose (possibly merged) slice covers this load. *)
let choice_for (choices : Select.choice list) (load : Delinquent.load) =
  List.find_opt
    (fun (c : Select.choice) ->
      List.exists
        (fun (t : Slice.target) -> Iref.equal t.Slice.load load.Delinquent.iref)
        c.Select.schedule.Schedule.slice.Slice.targets)
    choices

let build ?(feedback = fun _ -> None) ~(result : Adapt.result)
    ~(stats : Ssp_sim.Stats.t) ~(attrib : Attrib.summary) () =
  let d = result.Adapt.delinquent in
  let total = max 1 d.Delinquent.total_miss_cycles in
  let rows =
    List.map
      (fun (load : Delinquent.load) ->
        {
          load;
          miss_share =
            float_of_int load.Delinquent.miss_cycles /. float_of_int total;
          scheme =
            Option.map scheme_of (choice_for result.Adapt.choices load);
          attrib = Attrib.find_load attrib load.Delinquent.iref;
          feedback = feedback load.Delinquent.iref;
        })
      d.Delinquent.loads
  in
  {
    rows;
    threads = attrib.Attrib.threads;
    sites = attrib.Attrib.sites;
    profile_coverage = d.Delinquent.covered;
    cycles = stats.Ssp_sim.Stats.cycles;
    diagnostics = result.Adapt.report.Report.diagnostics;
  }

(* ---- table rendering ---- *)

let pct f = 100. *. f

let trigger_string (t : Trigger.t) =
  Printf.sprintf "%s:%d@%d(%s)" t.Trigger.fn t.Trigger.blk t.Trigger.pos
    (match t.Trigger.kind with
    | Trigger.Preheader -> "preheader"
    | Trigger.Body -> "body"
    | Trigger.Call_site -> "call site")

let pp ppf t =
  Format.fprintf ppf "@[<v>";
  Format.fprintf ppf
    "== prefetch-effectiveness attribution (%d delinquent loads, profile \
     coverage %.1f%%, %d simulated cycles) ==@,"
    (List.length t.rows) (pct t.profile_coverage) t.cycles;
  List.iter
    (fun r ->
      let l = r.load in
      Format.fprintf ppf "@,load %s  miss-share %.1f%%  miss-ratio %.2f  (%d miss cycles / %d accesses)@,"
        (Iref.to_string l.Delinquent.iref)
        (pct r.miss_share) l.Delinquent.miss_ratio l.Delinquent.miss_cycles
        l.Delinquent.accesses;
      (match r.scheme with
      | None -> Format.fprintf ppf "  scheme    (none: no slice selected)@,"
      | Some s ->
        Format.fprintf ppf
          "  scheme    %s  slice %d instrs  live-ins %d  region %s%s  spawn %s@,"
          s.model s.slice_size s.live_ins s.region
          (if s.interprocedural then " (interprocedural)" else "")
          s.spawn_condition;
        Format.fprintf ppf "  slack     csp(1)=%d  bsp(1)=%d  trips %d@,"
          s.slack1_csp s.slack1_bsp s.trips;
        Format.fprintf ppf "  triggers  %s@,"
          (String.concat "  " (List.map trigger_string s.triggers)));
      (match r.attrib with
      | None -> Format.fprintf ppf "  sim       (no attributed prefetches)@,"
      | Some a ->
        Format.fprintf ppf
          "  sim       issued %d  useful %d  late %d  early-evicted %d  \
           redundant %d  dropped %d  unused %d@,"
          a.Attrib.ls_issued a.Attrib.ls_useful a.Attrib.ls_late
          a.Attrib.ls_early_evicted a.Attrib.ls_redundant a.Attrib.ls_dropped
          a.Attrib.ls_unused;
        Format.fprintf ppf
          "  effect    coverage %.1f%%  accuracy %.1f%%  timeliness %.1f%%  \
           lead %.1fcy  late-wait %.1fcy@,"
          (pct a.Attrib.ls_coverage) (pct a.Attrib.ls_accuracy)
          (pct a.Attrib.ls_timeliness) a.Attrib.ls_mean_lead
          a.Attrib.ls_mean_late_wait;
        Format.fprintf ppf "  demand    %d accesses, %d hits@,"
          a.Attrib.ls_demand_accesses a.Attrib.ls_demand_hits);
      match r.feedback with
      | Some cell -> Format.fprintf ppf "  feedback  %s@," cell
      | None -> ())
    t.rows;
  let th = t.threads in
  Format.fprintf ppf
    "@,threads   spawns %d (denied %d)  ended %d  watchdog-kills %d  \
     lifetime avg %.1fcy max %dcy@,"
    th.Attrib.th_spawns th.Attrib.th_denied th.Attrib.th_ended
    th.Attrib.th_watchdog_kills th.Attrib.th_mean_lifetime
    th.Attrib.th_max_lifetime;
  if t.sites <> [] then begin
    Format.fprintf ppf "spawn sites:@,";
    List.iter
      (fun (s : Attrib.site_summary) ->
        Format.fprintf ppf "  %-20s spawns %8d  denied %8d@,"
          (Iref.to_string s.Attrib.ss_site)
          s.Attrib.ss_spawns s.Attrib.ss_denied)
      t.sites
  end;
  if t.diagnostics <> [] then begin
    Format.fprintf ppf "degradations (%d):@," (List.length t.diagnostics);
    List.iter
      (fun (d : Report.diag) ->
        Format.fprintf ppf "  %-20s %-10s %-16s %s@," d.Report.load
          d.Report.stage d.Report.action d.Report.detail)
      t.diagnostics
  end;
  Format.fprintf ppf "@]"

(* ---- JSON rendering ---- *)

let buf_string b s =
  Buffer.add_char b '"';
  String.iter
    (fun ch ->
      match ch with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | c when Char.code c < 0x20 ->
        Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.add_char b '"'

let buf_float b f =
  if Float.is_integer f && Float.abs f < 1e15 then
    Buffer.add_string b (Printf.sprintf "%.0f" f)
  else Buffer.add_string b (Printf.sprintf "%.6g" f)

let buf_obj b fields =
  Buffer.add_char b '{';
  List.iteri
    (fun i (k, emit) ->
      if i > 0 then Buffer.add_char b ',';
      buf_string b k;
      Buffer.add_char b ':';
      emit ())
    fields;
  Buffer.add_char b '}'

let buf_list b xs emit =
  Buffer.add_char b '[';
  List.iteri
    (fun i x ->
      if i > 0 then Buffer.add_char b ',';
      emit x)
    xs;
  Buffer.add_char b ']'

let to_json t =
  let b = Buffer.create 4096 in
  let int n () = Buffer.add_string b (string_of_int n) in
  let flt f () = buf_float b f in
  let str s () = buf_string b s in
  let bool v () = Buffer.add_string b (if v then "true" else "false") in
  let scheme_json s () =
    buf_obj b
      [
        ("model", str s.model);
        ("slice_size", int s.slice_size);
        ("live_ins", int s.live_ins);
        ("region", str s.region);
        ("interprocedural", bool s.interprocedural);
        ("spawn_condition", str s.spawn_condition);
        ("slack1_csp", int s.slack1_csp);
        ("slack1_bsp", int s.slack1_bsp);
        ("trips", int s.trips);
        ( "triggers",
          fun () ->
            buf_list b s.triggers (fun tr ->
                buf_obj b
                  [
                    ("fn", str tr.Trigger.fn);
                    ("blk", int tr.Trigger.blk);
                    ("pos", int tr.Trigger.pos);
                    ( "kind",
                      str
                        (match tr.Trigger.kind with
                        | Trigger.Preheader -> "preheader"
                        | Trigger.Body -> "body"
                        | Trigger.Call_site -> "call_site") );
                  ]) );
      ]
  in
  let attrib_json (a : Attrib.load_summary) () =
    buf_obj b
      [
        ("issued", int a.Attrib.ls_issued);
        ("useful", int a.Attrib.ls_useful);
        ("late", int a.Attrib.ls_late);
        ("early_evicted", int a.Attrib.ls_early_evicted);
        ("redundant", int a.Attrib.ls_redundant);
        ("dropped", int a.Attrib.ls_dropped);
        ("unused", int a.Attrib.ls_unused);
        ("demand_accesses", int a.Attrib.ls_demand_accesses);
        ("demand_hits", int a.Attrib.ls_demand_hits);
        ("coverage", flt a.Attrib.ls_coverage);
        ("accuracy", flt a.Attrib.ls_accuracy);
        ("timeliness", flt a.Attrib.ls_timeliness);
        ("mean_lead_cycles", flt a.Attrib.ls_mean_lead);
        ("mean_late_wait_cycles", flt a.Attrib.ls_mean_late_wait);
      ]
  in
  buf_obj b
    [
      ("cycles", int t.cycles);
      ("profile_coverage", flt t.profile_coverage);
      ( "loads",
        fun () ->
          buf_list b t.rows (fun r ->
              let l = r.load in
              buf_obj b
                ([
                   ("load", str (Iref.to_string l.Delinquent.iref));
                   ("miss_cycles", int l.Delinquent.miss_cycles);
                   ("accesses", int l.Delinquent.accesses);
                   ("miss_ratio", flt l.Delinquent.miss_ratio);
                   ("miss_share", flt r.miss_share);
                 ]
                @ (match r.scheme with
                  | Some s -> [ ("scheme", scheme_json s) ]
                  | None -> [])
                @ (match r.attrib with
                  | Some a -> [ ("attribution", attrib_json a) ]
                  | None -> [])
                @
                match r.feedback with
                | Some cell -> [ ("feedback", str cell) ]
                | None -> [])) );
      ( "threads",
        fun () ->
          let th = t.threads in
          buf_obj b
            [
              ("spawns", int th.Attrib.th_spawns);
              ("denied", int th.Attrib.th_denied);
              ("ended", int th.Attrib.th_ended);
              ("watchdog_kills", int th.Attrib.th_watchdog_kills);
              ("mean_lifetime_cycles", flt th.Attrib.th_mean_lifetime);
              ("max_lifetime_cycles", int th.Attrib.th_max_lifetime);
            ] );
      ( "spawn_sites",
        fun () ->
          buf_list b t.sites (fun (s : Attrib.site_summary) ->
              buf_obj b
                [
                  ("site", str (Iref.to_string s.Attrib.ss_site));
                  ("spawns", int s.Attrib.ss_spawns);
                  ("denied", int s.Attrib.ss_denied);
                ]) );
      ( "diagnostics",
        fun () ->
          buf_list b t.diagnostics (fun (d : Report.diag) ->
              buf_obj b
                [
                  ("load", str d.Report.load);
                  ("stage", str d.Report.stage);
                  ("action", str d.Report.action);
                  ("detail", str d.Report.detail);
                ]) );
    ];
  Buffer.contents b
