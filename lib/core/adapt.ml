open Ssp_analysis
module T = Ssp_telemetry.Telemetry

type result = {
  prog : Ssp_ir.Prog.t;
  report : Report.t;
  delinquent : Delinquent.t;
  choices : Select.choice list;
  prefetch_map : Ssp_ir.Iref.t Ssp_ir.Iref.Map.t;
      (* emitted prefetch site -> delinquent load, for attribution *)
}

let region_string r = Format.asprintf "%a" Regions.pp r

let report_of (d : Delinquent.t) (choices : Select.choice list) =
  let slices =
    List.map
      (fun (c : Select.choice) ->
        let sched = c.Select.schedule in
        let slice = sched.Schedule.slice in
        {
          Report.fn = slice.Slice.fn;
          region = region_string slice.Slice.region;
          model =
            (match c.Select.model with
            | Select.Chaining -> "chaining"
            | Select.Basic -> "basic");
          size = Slice.size slice;
          live_ins = List.length slice.Slice.live_ins;
          interprocedural = slice.Slice.interprocedural;
          targets = List.length slice.Slice.targets;
          triggers = List.length c.Select.triggers;
          trips = c.Select.trips;
          slack1 =
            (match c.Select.model with
            | Select.Chaining -> Schedule.slack_csp sched 1
            | Select.Basic -> Schedule.slack_bsp sched 1);
          available_ilp = sched.Schedule.available_ilp;
          spawn_condition =
            (match sched.Schedule.spawn_cond with
            | Schedule.Cond _ -> "computed"
            | Schedule.Predicted _ -> "predicted");
        })
      choices
  in
  {
    Report.slices;
    n_delinquent = List.length d.Delinquent.loads;
    coverage = d.Delinquent.covered;
  }

(* Combine choices over the same region whose slices share dependence-graph
   nodes (§3.4.1): merge targets and live-ins, rebuild the schedule over
   the merged slice and re-decide the model and triggers (the combined
   slice shifts the basic/chaining trade-off — typically toward chaining,
   with one set of triggers instead of several). *)
let combine regions callgraph profile config (choices : Select.choice list) =
  let rec fold acc = function
    | [] -> List.rev acc
    | (c : Select.choice) :: rest -> (
      let slice_of (x : Select.choice) = x.Select.schedule.Schedule.slice in
      (* Slices over the same region always combine: they share the region's
         induction/recurrence structure even when a degenerate slice (an
         address that is directly a live-in) has no instructions to share. *)
      let mergeable (a : Select.choice) =
        (slice_of a).Slice.region = (slice_of c).Slice.region
        && String.equal (slice_of a).Slice.fn (slice_of c).Slice.fn
        && ((slice_of a).Slice.interprocedural
            = (slice_of c).Slice.interprocedural)
      in
      match List.partition mergeable acc with
      | [], _ -> fold (c :: acc) rest
      | host :: others, keep ->
        let merged_slice = Slice.merge (slice_of host) (slice_of c) in
        let sched =
          Schedule.build regions profile config ~trips:host.Select.trips
            merged_slice
        in
        let merged =
          Select.refine regions callgraph profile config
            { host with Select.schedule = sched }
        in
        fold (merged :: (others @ keep)) rest)
  in
  fold [] choices

let apply_choices prog ~config choices delinquent =
  let adapted = Ssp_ir.Prog.copy prog in
  let prefetch_map =
    T.with_span "adapt.codegen" (fun () -> Codegen.apply adapted config choices)
  in
  {
    prog = adapted;
    report = report_of delinquent choices;
    delinquent;
    choices;
    prefetch_map;
  }

let run ?(coverage = 0.9) ?(combining = true) ?(force_basic = false)
    ?(force_predict = false) ?(unroll = 1) ?(jobs = 1) ~config prog profile =
  T.with_span "adapt" @@ fun () ->
  let delinquent = Delinquent.identify ~coverage prog profile in
  let regions = T.with_span "adapt.regions" (fun () -> Regions.compute prog) in
  let callgraph =
    T.with_span "adapt.callgraph" (fun () -> Callgraph.compute prog)
  in
  (* The per-load slice/schedule/trigger pipeline is independent per
     delinquent load; with [jobs > 1] it fans out across a domain pool.
     The shared analysis state is made read-only first ([Regions.freeze]
     forces the lazily memoized per-function artifacts), and the pool's
     deterministic result ordering keeps the choice list — and therefore
     everything downstream (combining, codegen, the report) — identical
     to the sequential run. *)
  let choices =
    T.with_span "adapt.select" (fun () ->
        let select load = Select.choose regions callgraph profile config load in
        if jobs <= 1 then List.filter_map select delinquent.Delinquent.loads
        else begin
          Regions.freeze regions;
          Ssp_parallel.Pool.with_pool ~jobs (fun pool ->
              Ssp_parallel.Pool.map pool select delinquent.Delinquent.loads)
          |> List.filter_map Fun.id
        end)
  in
  let choices =
    T.with_span "adapt.combine" (fun () ->
        if combining then combine regions callgraph profile config choices
        else choices)
  in
  if T.is_enabled () then begin
    T.count "adapt.slices" (List.length choices);
    List.iter
      (fun (c : Select.choice) ->
        T.record "adapt.slice_size" (float_of_int (Slice.size c.Select.schedule.Schedule.slice));
        T.count "adapt.triggers" (List.length c.Select.triggers);
        match c.Select.model with
        | Select.Chaining -> T.count "adapt.model.chaining" 1
        | Select.Basic -> T.count "adapt.model.basic" 1)
      choices
  end;
  (* Ablation knobs (never taken by the normal pipeline). *)
  let choices =
    List.map
      (fun (c : Select.choice) ->
        let c =
          if force_basic && c.Select.model = Select.Chaining then begin
            let slice = c.Select.schedule.Schedule.slice in
            let triggers = Trigger.for_basic regions slice in
            { c with Select.model = Select.Basic; triggers }
          end
          else c
        in
        let c =
          if force_predict then
            let sched = c.Select.schedule in
            {
              c with
              Select.schedule =
                {
                  sched with
                  Schedule.spawn_cond =
                    Schedule.Predicted { depth = max 1 c.Select.trips };
                };
            }
          else c
        in
        { c with Select.unroll = max 1 unroll })
      choices
  in
  apply_choices prog ~config choices delinquent
