open Ssp_analysis
module T = Ssp_telemetry.Telemetry
module F = Ssp_fault.Fault

let site_stale = F.site "adapt.profile.stale"

type result = {
  prog : Ssp_ir.Prog.t;
  report : Report.t;
  delinquent : Delinquent.t;
  choices : Select.choice list;
  prefetch_map : Ssp_ir.Iref.t Ssp_ir.Iref.Map.t;
      (* emitted prefetch site -> delinquent load, for attribution *)
}

let region_string r = Format.asprintf "%a" Regions.pp r

let report_of ?(diags = []) (d : Delinquent.t) (choices : Select.choice list)
    =
  let slices =
    List.map
      (fun (c : Select.choice) ->
        let sched = c.Select.schedule in
        let slice = sched.Schedule.slice in
        {
          Report.fn = slice.Slice.fn;
          region = region_string slice.Slice.region;
          model =
            (match c.Select.model with
            | Select.Chaining -> "chaining"
            | Select.Basic -> "basic");
          size = Slice.size slice;
          live_ins = List.length slice.Slice.live_ins;
          interprocedural = slice.Slice.interprocedural;
          targets = List.length slice.Slice.targets;
          triggers = List.length c.Select.triggers;
          trips = c.Select.trips;
          slack1 =
            (match c.Select.model with
            | Select.Chaining -> Schedule.slack_csp sched 1
            | Select.Basic -> Schedule.slack_bsp sched 1);
          available_ilp = sched.Schedule.available_ilp;
          spawn_condition =
            (match sched.Schedule.spawn_cond with
            | Schedule.Cond _ -> "computed"
            | Schedule.Predicted _ -> "predicted");
        })
      choices
  in
  {
    Report.slices;
    n_delinquent = List.length d.Delinquent.loads;
    coverage = d.Delinquent.covered;
    diagnostics = diags;
  }

(* The degradation ladder (tried top to bottom; a structured failure on
   one rung retries the load on the next, the last failure skips the
   load).  Rung order mirrors how much machinery each failure can blame:
   interprocedural binding first, then chaining, then even basic SP. *)
let ladder =
  [
    ("interprocedural", (* interproc *) true, (* chaining *) true);
    ("intraprocedural", false, true);
    ("basic", false, false);
  ]

(* One load through the ladder.  Decisions the fault engine takes inside
   are keyed by the load's [Iref.hash], so the outcome is a pure function
   of the load — identical whether this runs sequentially or on a domain
   pool, and whatever order the pool schedules loads in. *)
let select_one regions callgraph profile config (load : Delinquent.load) :
    Select.choice option * Report.diag list =
  let lstr = Ssp_ir.Iref.to_string load.Delinquent.iref in
  let key = Ssp_ir.Iref.hash load.Delinquent.iref in
  if F.fire ~key site_stale then
    ( None,
      [
        {
          Report.load = lstr;
          stage = "profile";
          action = "skip";
          detail = "profile stale: samples disagree with the binary \
                    [injected]";
        };
      ] )
  else begin
    let rec go diags = function
      | [] -> (None, List.rev diags)
      | (_rung, interproc, chaining) :: rest -> (
        match
          Select.choose ~interproc ~chaining regions callgraph profile config
            load
        with
        | choice -> (choice, List.rev diags)
        | exception Ssp_ir.Error.Error e ->
          let action =
            match rest with
            | (next, _, _) :: _ -> "degrade:" ^ next
            | [] -> "skip"
          in
          let d =
            {
              Report.load = lstr;
              stage = e.Ssp_ir.Error.pass;
              action;
              detail = Ssp_ir.Error.to_string e;
            }
          in
          go (d :: diags) rest
        | exception (Failure msg | Invalid_argument msg) ->
          (* Legacy unstructured failures: isolate them too, but don't
             bother degrading — they don't name a recoverable stage. *)
          ( None,
            List.rev
              ({ Report.load = lstr; stage = "select"; action = "skip";
                 detail = msg }
              :: diags) ))
    in
    go [] ladder
  end

(* Combine choices over the same region whose slices share dependence-graph
   nodes (§3.4.1): merge targets and live-ins, rebuild the schedule over
   the merged slice and re-decide the model and triggers (the combined
   slice shifts the basic/chaining trade-off — typically toward chaining,
   with one set of triggers instead of several). *)
let combine regions callgraph profile config (choices : Select.choice list) =
  let diags = ref [] in
  let note (c : Select.choice) what =
    diags :=
      {
        Report.load = Ssp_ir.Iref.to_string c.Select.load.Delinquent.iref;
        stage = "combine";
        action = "degrade:basic";
        detail = what;
      }
      :: !diags
  in
  let rec fold acc = function
    | [] -> List.rev acc
    | (c : Select.choice) :: rest -> (
      let slice_of (x : Select.choice) = x.Select.schedule.Schedule.slice in
      (* Slices over the same region always combine: they share the region's
         induction/recurrence structure even when a degenerate slice (an
         address that is directly a live-in) has no instructions to share. *)
      let mergeable (a : Select.choice) =
        (slice_of a).Slice.region = (slice_of c).Slice.region
        && String.equal (slice_of a).Slice.fn (slice_of c).Slice.fn
        && ((slice_of a).Slice.interprocedural
            = (slice_of c).Slice.interprocedural)
      in
      match List.partition mergeable acc with
      | [], _ -> fold (c :: acc) rest
      | host :: others, keep ->
        let merged_slice = Slice.merge (slice_of host) (slice_of c) in
        let sched =
          Schedule.build regions profile config ~trips:host.Select.trips
            merged_slice
        in
        (* The merged choice inherits the most conservative ladder rung of
           its parts: combining must never re-promote a model or binding a
           refusal already degraded.  [Select.refine] may lower the rung
           further (a refusal while re-deciding the merged model). *)
        let allow_interproc =
          host.Select.allow_interproc && c.Select.allow_interproc
        in
        let allow_chaining =
          host.Select.allow_chaining && c.Select.allow_chaining
        in
        let merged =
          Select.refine regions callgraph profile config
            { host with Select.schedule = sched; allow_interproc;
              allow_chaining }
        in
        if allow_chaining && not merged.Select.allow_chaining then
          note merged "chaining model refused for combined slice [injected]";
        if allow_interproc && not merged.Select.allow_interproc then
          note merged
            "interprocedural binding refused for combined slice [injected]";
        fold (merged :: (others @ keep)) rest)
  in
  let combined = fold [] choices in
  (combined, List.rev !diags)

let apply_choices ?(diags = []) prog ~config choices delinquent =
  let adapted = Ssp_ir.Prog.copy prog in
  let gen =
    T.with_span "adapt.codegen" (fun () -> Codegen.apply adapted config choices)
  in
  let diags =
    diags
    @ List.map
        (fun (load, e) ->
          {
            Report.load = Ssp_ir.Iref.to_string load;
            stage = "codegen";
            action = "drop-trigger";
            detail = Ssp_ir.Error.to_string e;
          })
        gen.Codegen.dropped
  in
  {
    prog = adapted;
    report = report_of ~diags delinquent choices;
    delinquent;
    choices;
    prefetch_map = gen.Codegen.prefetch_map;
  }

(* ---- per-load overrides (the feedback tuner's lever) ----

   Global knobs steer the whole pipeline; a [load_knob] adjusts one
   delinquent load. Skips are applied after selection but before
   combining (a skipped load never contributes to a merged slice);
   model/unroll adjustments apply after combining, to the choice whose
   primary load matches. Forcing chaining respects the degradation
   ladder: a load whose rung already refused chaining stays basic. *)

type load_knob = {
  lk_skip : bool;
  lk_model : [ `Keep | `Basic | `Chaining ];
  lk_unroll : int; (* 0 = keep the globally selected unroll *)
}

let keep_knob = { lk_skip = false; lk_model = `Keep; lk_unroll = 0 }

type overrides = load_knob Ssp_ir.Iref.Map.t

let no_overrides : overrides = Ssp_ir.Iref.Map.empty

(* Canonical, injective rendering — a cache-key component, like
   [knobs_string]. Map bindings iterate in key order, so the string is
   independent of insertion order; loads bound to the identity knob are
   dropped so "no effective override" renders as "". *)
let overrides_string (o : overrides) =
  Ssp_ir.Iref.Map.bindings o
  |> List.filter (fun (_, lk) -> lk <> keep_knob)
  |> List.map (fun (iref, lk) ->
         Printf.sprintf "%s:skip=%b,model=%s,unroll=%d"
           (Ssp_ir.Iref.to_string iref)
           lk.lk_skip
           (match lk.lk_model with
           | `Keep -> "keep"
           | `Basic -> "basic"
           | `Chaining -> "chaining")
           lk.lk_unroll)
  |> String.concat ";"

type knobs = {
  coverage : float;
  combining : bool;
  force_basic : bool;
  force_predict : bool;
  unroll : int;
}

let default_knobs =
  {
    coverage = 0.9;
    combining = true;
    force_basic = false;
    force_predict = false;
    unroll = 1;
  }

(* Canonical, injective rendering: part of the content-addressed cache
   key, so any knob change must change this string. %h renders the float
   exactly. *)
let knobs_string k =
  Printf.sprintf "coverage=%h;combining=%b;force_basic=%b;force_predict=%b;unroll=%d"
    k.coverage k.combining k.force_basic k.force_predict k.unroll

let run ?(coverage = 0.9) ?(combining = true) ?(force_basic = false)
    ?(force_predict = false) ?(unroll = 1) ?(overrides = no_overrides)
    ?(jobs = 1) ~config prog profile =
  T.with_span "adapt" @@ fun () ->
  let delinquent = Delinquent.identify ~coverage prog profile in
  let regions = T.with_span "adapt.regions" (fun () -> Regions.compute prog) in
  let callgraph =
    T.with_span "adapt.callgraph" (fun () -> Callgraph.compute prog)
  in
  (* The per-load slice/schedule/trigger pipeline is independent per
     delinquent load; with [jobs > 1] it fans out across a domain pool.
     The shared analysis state is made read-only first ([Regions.freeze]
     forces the lazily memoized per-function artifacts), and the pool's
     deterministic result ordering keeps the choice list — and therefore
     everything downstream (combining, codegen, the report) — identical
     to the sequential run. *)
  let selected =
    T.with_span "adapt.select" (fun () ->
        let select load = select_one regions callgraph profile config load in
        if jobs <= 1 then List.map select delinquent.Delinquent.loads
        else begin
          Regions.freeze regions;
          Ssp_parallel.Pool.with_pool ~jobs (fun pool ->
              Ssp_parallel.Pool.map pool select delinquent.Delinquent.loads)
        end)
  in
  let choices = List.filter_map fst selected in
  let diags = ref (List.concat_map snd selected) in
  (* Feedback demotions to skip come off before combining, so a skipped
     load never contributes to a merged slice. *)
  let choices =
    if Ssp_ir.Iref.Map.is_empty overrides then choices
    else
      List.filter
        (fun (c : Select.choice) ->
          match
            Ssp_ir.Iref.Map.find_opt c.Select.load.Delinquent.iref overrides
          with
          | Some lk when lk.lk_skip ->
            diags :=
              !diags
              @ [
                  {
                    Report.load =
                      Ssp_ir.Iref.to_string c.Select.load.Delinquent.iref;
                    stage = "feedback";
                    action = "skip";
                    detail = "demoted: prefetches mostly redundant";
                  };
                ];
            false
          | _ -> true)
        choices
  in
  let choices =
    T.with_span "adapt.combine" (fun () ->
        if combining then begin
          let combined, cdiags =
            combine regions callgraph profile config choices
          in
          diags := !diags @ cdiags;
          combined
        end
        else choices)
  in
  if T.is_enabled () then begin
    T.count "adapt.slices" (List.length choices);
    List.iter
      (fun (c : Select.choice) ->
        T.record "adapt.slice_size" (float_of_int (Slice.size c.Select.schedule.Schedule.slice));
        T.count "adapt.triggers" (List.length c.Select.triggers);
        match c.Select.model with
        | Select.Chaining -> T.count "adapt.model.chaining" 1
        | Select.Basic -> T.count "adapt.model.basic" 1)
      choices
  end;
  (* Ablation knobs (never taken by the normal pipeline). *)
  let choices =
    List.map
      (fun (c : Select.choice) ->
        let c =
          if force_basic && c.Select.model = Select.Chaining then begin
            let slice = c.Select.schedule.Schedule.slice in
            let triggers = Trigger.for_basic regions slice in
            { c with Select.model = Select.Basic; triggers }
          end
          else c
        in
        let c =
          if force_predict then
            let sched = c.Select.schedule in
            {
              c with
              Select.schedule =
                {
                  sched with
                  Schedule.spawn_cond =
                    Schedule.Predicted { depth = max 1 c.Select.trips };
                };
            }
          else c
        in
        { c with Select.unroll = max 1 unroll })
      choices
  in
  (* Per-load model/unroll overrides, applied last so they win over the
     global ablation knobs for the loads they name. Promotion to
     chaining is clamped by the degradation ladder ([allow_chaining]):
     the tuner can restore a model the ladder allows, never one a rung
     already refused. *)
  let choices =
    if Ssp_ir.Iref.Map.is_empty overrides then choices
    else
      List.map
        (fun (c : Select.choice) ->
          match
            Ssp_ir.Iref.Map.find_opt c.Select.load.Delinquent.iref overrides
          with
          | None -> c
          | Some lk ->
            let c =
              match lk.lk_model with
              | `Basic when c.Select.model = Select.Chaining ->
                let slice = c.Select.schedule.Schedule.slice in
                { c with Select.model = Select.Basic;
                  triggers = Trigger.for_basic regions slice }
              | `Chaining
                when c.Select.model = Select.Basic && c.Select.allow_chaining
                ->
                let slice = c.Select.schedule.Schedule.slice in
                { c with Select.model = Select.Chaining;
                  triggers = Trigger.for_chaining regions slice }
              | _ -> c
            in
            if lk.lk_unroll > 0 then { c with Select.unroll = lk.lk_unroll }
            else c)
        choices
  in
  apply_choices ~diags:!diags prog ~config choices delinquent

let run_knobs ?(jobs = 1) ?overrides ~knobs ~config prog profile =
  run ~coverage:knobs.coverage ~combining:knobs.combining
    ~force_basic:knobs.force_basic ~force_predict:knobs.force_predict
    ~unroll:knobs.unroll ?overrides ~jobs ~config prog profile
