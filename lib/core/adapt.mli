(** The post-pass tool: the whole Figure 1 second pass.

    [run] takes the original binary and its profile and produces the
    SSP-enhanced binary: delinquent loads are identified, a region and a
    precomputation model are selected for each (slicing, scheduling, slack
    estimation), slices sharing dependence-graph nodes are combined, and
    the rewritten binary has the trigger [chk.c]s inserted and the stub /
    slice blocks attached. The input program is not modified. *)

type result = {
  prog : Ssp_ir.Prog.t;  (** the adapted binary *)
  report : Report.t;
  delinquent : Delinquent.t;
  choices : Select.choice list;
  prefetch_map : Ssp_ir.Iref.t Ssp_ir.Iref.Map.t;
      (** emitted prefetch sites (lfetches, value-used target-load
          copies) mapped to the delinquent loads they precompute; feed to
          [Ssp_sim.Attrib.create] for prefetch-lifecycle attribution *)
}

type load_knob = {
  lk_skip : bool;  (** drop this load's precomputation entirely *)
  lk_model : [ `Keep | `Basic | `Chaining ];
      (** flip the SP model; promotion to chaining is clamped by the
          load's degradation-ladder ceiling ([Select.allow_chaining]) *)
  lk_unroll : int;  (** per-thread lookahead; 0 keeps the global value *)
}
(** A per-load adjustment, as computed by the feedback tuner
    ([Ssp_feedback]). Skips are applied before slice combining; model
    and unroll adjustments after, to the choice whose primary load
    matches. *)

val keep_knob : load_knob
(** The identity override (no skip, keep model, keep unroll). *)

type overrides = load_knob Ssp_ir.Iref.Map.t

val no_overrides : overrides

val overrides_string : overrides -> string
(** Canonical injective rendering (loads in key order, identity knobs
    dropped) — a cache-key component, like {!knobs_string}. *)

val run :
  ?coverage:float ->
  ?combining:bool ->
  ?force_basic:bool ->
  ?force_predict:bool ->
  ?unroll:int ->
  ?overrides:overrides ->
  ?jobs:int ->
  config:Ssp_machine.Config.t ->
  Ssp_ir.Prog.t ->
  Ssp_profiling.Profile.t ->
  result
(** The optional flags are ablation knobs (defaults reproduce the paper's
    tool): [combining:false] keeps one slice per delinquent load;
    [force_basic] disables chaining SP; [force_predict] replaces computed
    spawn conditions with the chain-depth bound; [unroll] sets per-thread
    iteration lookahead.

    [jobs] > 1 fans the per-delinquent-load slice/schedule/trigger
    pipeline out across that many domains (shared analysis state is
    frozen read-only first). The result is byte-identical to [jobs:1] —
    parallelism is an execution detail, never a semantic knob.

    Per-load failures ([Ssp_ir.Error.Error], from real refusals or the
    fault-injection engine) never abort the run: each load walks a
    degradation ladder (interprocedural → intraprocedural → basic → skip)
    and every degradation or skip is recorded in
    [result.report.diagnostics].  Ladder decisions are keyed by the
    load's identity, so they are identical under any [jobs] value. *)

type knobs = {
  coverage : float;
  combining : bool;
  force_basic : bool;
  force_predict : bool;
  unroll : int;
}
(** The ablation knobs of {!run} as a first-class record, so callers that
    memoize adaptation results (the content-addressed store, the serving
    daemon) can canonicalize the full configuration. *)

val default_knobs : knobs
(** The defaults of {!run} (the paper's tool). *)

val knobs_string : knobs -> string
(** Canonical injective rendering — any knob change changes the string.
    Used as a cache-key component by [Ssp_store]. *)

val run_knobs :
  ?jobs:int ->
  ?overrides:overrides ->
  knobs:knobs ->
  config:Ssp_machine.Config.t ->
  Ssp_ir.Prog.t ->
  Ssp_profiling.Profile.t ->
  result
(** {!run} with the knobs passed as a record. *)

val apply_choices :
  ?diags:Report.diag list ->
  Ssp_ir.Prog.t ->
  config:Ssp_machine.Config.t ->
  Select.choice list ->
  Delinquent.t ->
  result
(** Code generation only, for pre-built (e.g. hand-written) choices.
    [diags] (selection-stage diagnostics) are prepended to the
    codegen-stage ones in the report. *)
