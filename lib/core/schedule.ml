open Ssp_isa
open Ssp_analysis
module T = Ssp_telemetry.Telemetry

type spawn_condition =
  | Cond of {
      extra : Ssp_ir.Iref.t list;
      reg : Reg.t;
      spawn_if_nonzero : bool;
    }
  | Predicted of { depth : int }

type inner_loop = {
  loop_id : int;
  body : Ssp_ir.Iref.t list;
  pre : Ssp_ir.Iref.t list;
  carried : Reg.t list;
  cond : spawn_condition;
  trips : int;
}

type t = {
  slice : Slice.t;
  order_critical : Ssp_ir.Iref.t list;
  order_non_critical : Ssp_ir.Iref.t list;
  spawn_cond : spawn_condition;
  recurrence_regs : Reg.t list;
  height_region : int;
  height_critical : int;
  height_slice : int;
  copy_spawn_latency : int;
  rotation : int;
  loop_carried_edges : int;
  available_ilp : float;
  inner : inner_loop option;
}

let latency_of profile cfg prog iref =
  let op = Ssp_ir.Prog.instr prog iref in
  if Op.is_load op then Ssp_profiling.Profile.avg_load_latency profile cfg iref
  else max 1 (Ssp_machine.Latency.of_op op)

(* Dependence edges among a set of instructions of one function:
   (src_index, dst_index, loop_carried). *)
let edges_among regions profile cfg nodes =
  ignore profile;
  ignore cfg;
  let prog = Regions.prog regions in
  let arr = Array.of_list nodes in
  let index = Ssp_ir.Iref.Tbl.create 16 in
  Array.iteri (fun i n -> Ssp_ir.Iref.Tbl.replace index n i) arr;
  let edges = ref [] in
  Array.iteri
    (fun di (use : Ssp_ir.Iref.t) ->
      let reach = Regions.reaching_of regions use.fn in
      let op = Ssp_ir.Prog.instr prog use in
      List.iter
        (fun r ->
          let all = Reaching.reaching_defs reach ~use r in
          let intra = Reaching.defs_without_back_edges reach ~use r in
          List.iter
            (fun (df : Reaching.def) ->
              let site = df.Reaching.site in
              match Ssp_ir.Iref.Tbl.find_opt index site with
              | None -> ()
              | Some si ->
                let is_intra =
                  List.exists
                    (fun (i : Reaching.def) ->
                      Ssp_ir.Iref.equal i.Reaching.site site)
                    intra
                in
                edges := (si, di, not is_intra) :: !edges)
            all)
        (Op.uses op))
    arr;
  (arr, !edges)

(* Longest dependence path (intra-iteration edges only) over the nodes. *)
let height_of regions profile cfg nodes =
  let prog = Regions.prog regions in
  let arr, edges = edges_among regions profile cfg nodes in
  let n = Array.length arr in
  if n = 0 then 0
  else begin
    let g =
      Digraph.make ~n
        (List.filter_map
           (fun (s, d, lc) -> if lc || s = d then None else Some (s, d))
           edges)
    in
    match Digraph.longest_path g ~node_weight:(fun i ->
              latency_of profile cfg prog arr.(i))
    with
    | h -> Array.fold_left max 0 h
    | exception Invalid_argument _ ->
      (* Residual intra-iteration cycle (irreducible flow): fall back to the
         sum of latencies, a conservative overestimate. *)
      Array.fold_left (fun acc x -> acc + latency_of profile cfg prog x) 0 arr
  end

(* The loop's continue branch: a conditional branch in the loop whose taken
   and fall-through successors straddle the loop boundary. Returns
   (branch iref, condition register, spawn_if_nonzero). *)
let continue_branch_of_loop regions fn (loop : Loops.loop) =
    let cfg = Regions.cfg_of regions fn in
    let f = cfg.Cfg.func in
    let candidates = ref [] in
    List.iter
      (fun bi ->
        let ops = f.Ssp_ir.Prog.blocks.(bi).Ssp_ir.Prog.ops in
        let n = Array.length ops in
        if n > 0 then begin
          match ops.(n - 1) with
          | Op.Brnz (r, l) | Op.Brz (r, l) ->
            let target = Cfg.block_of_label cfg l in
            let target_in = List.mem target loop.Loops.body in
            let fall_in =
              bi + 1 < Cfg.n_blocks cfg && List.mem (bi + 1) loop.Loops.body
            in
            if target_in <> fall_in then begin
              (* Exit branch: continue = staying in the loop. *)
              let spawn_if_nonzero =
                match ops.(n - 1) with
                | Op.Brnz _ -> target_in (* taken stays in loop *)
                | Op.Brz _ -> not target_in
                | _ -> assert false
              in
              candidates :=
                (Ssp_ir.Iref.make fn bi (n - 1), r, spawn_if_nonzero)
                :: !candidates
            end
          | _ -> ()
        end)
      loop.Loops.body;
    (* Prefer the branch in the loop header. *)
    let header_first =
      List.sort
        (fun ((a : Ssp_ir.Iref.t), _, _) ((b : Ssp_ir.Iref.t), _, _) ->
          let rank (i : Ssp_ir.Iref.t) =
            if i.blk = loop.Loops.header then 0 else 1
          in
          compare (rank a, a) (rank b, b))
        !candidates
    in
    (match header_first with [] -> None | c :: _ -> Some c)

let continue_branch regions (slice : Slice.t) =
  match Regions.loop_of regions slice.Slice.region with
  | None -> None
  | Some loop -> continue_branch_of_loop regions slice.Slice.fn loop

(* Backward data slice of the continue condition, restricted to the region
   and capped; None = too expensive to precompute (use prediction). *)
let slice_condition regions profile (slice : Slice.t) cond_use cond_reg =
  let fn = slice.Slice.fn in
  let reach = Regions.reaching_of regions fn in
  let prog = Regions.prog regions in
  let blocks = Regions.blocks_of regions slice.Slice.region in
  let in_region (i : Ssp_ir.Iref.t) =
    String.equal i.fn fn && List.mem i.blk blocks
  in
  let extra = ref [] in
  let seen = Hashtbl.create 8 in
  let ok = ref true in
  let budget = 6 in
  let rec go (use : Ssp_ir.Iref.t) r =
    if !ok && r <> Reg.zero && not (Hashtbl.mem seen (use, r)) then begin
      Hashtbl.replace seen (use, r) ();
      List.iter
        (fun (df : Reaching.def) ->
          let site = df.Reaching.site in
          if site.Ssp_ir.Iref.ins = -1 then () (* parameter: live-in *)
          else if not (in_region site) then () (* invariant: live-in *)
          else if Ssp_ir.Iref.Set.mem site slice.Slice.instrs then ()
          else begin
            let op = Ssp_ir.Prog.instr prog site in
            if
              (not
                 (match op with
                 | Op.Movi _ | Op.Mov _ | Op.Alu _ | Op.Alui _ | Op.Cmp _
                 | Op.Cmpi _ ->
                   true
                 | _ -> false))
              || not (Ssp_profiling.Profile.executed profile site)
            then ok := false
            else if not (List.exists (Ssp_ir.Iref.equal site) !extra) then begin
              extra := site :: !extra;
              if List.length !extra > budget then ok := false
              else List.iter (go site) (Op.uses op)
            end
          end)
        (Reaching.reaching_defs reach ~use r)
    end
  in
  go cond_use cond_reg;
  if !ok then begin
    (* Emission order is program order: the backward discovery order would
       evaluate the comparison before its operands. *)
    let f = Ssp_ir.Prog.find_func prog fn in
    Some
      (List.sort
         (fun a b ->
           compare (Ssp_ir.Prog.addr_of f a) (Ssp_ir.Prog.addr_of f b))
         !extra)
  end
  else None

let build regions profile cfg ~trips (slice : Slice.t) =
  T.with_span "schedule" @@ fun () ->
  let prog = Regions.prog regions in
  let fn = slice.Slice.fn in
  let f = Ssp_ir.Prog.find_func prog fn in
  let nodes =
    Ssp_ir.Iref.Set.elements slice.Slice.instrs
    |> List.sort (fun a b ->
           compare (Ssp_ir.Prog.addr_of f a) (Ssp_ir.Prog.addr_of f b))
  in
  let arr, edges = edges_among regions profile cfg nodes in
  let n = Array.length arr in
  let is_loop = Regions.loop_of regions slice.Slice.region <> None in
  (* --- Loop rotation (§3.2.1.1): choose the boundary minimizing remaining
     loop-carried edges without creating new ones. In the rotated order a
     dependence is loop-carried iff the def does not precede the use. --- *)
  let lc_count rot =
    let pos i = (i - rot + n) mod n in
    List.fold_left
      (fun acc (s, d, _lc) -> if pos s >= pos d then acc + 1 else acc)
      0 edges
  in
  let lc_set rot =
    let pos i = (i - rot + n) mod n in
    List.filter (fun (s, d, _) -> pos s >= pos d) edges
  in
  let rotation, loop_carried_edges =
    if (not is_loop) || n = 0 then (0, 0)
    else begin
      let base = lc_set 0 in
      let subset_of_base rot =
        List.for_all (fun e -> List.mem e base) (lc_set rot)
      in
      let best = ref (0, lc_count 0) in
      for rot = 1 to n - 1 do
        let c = lc_count rot in
        if c < snd !best && subset_of_base rot then best := (rot, c)
      done;
      !best
    end
  in
  (* --- SCC partitioning on the full dependence graph (intra + carried,
     in rotated coordinates). --- *)
  let g_all =
    Digraph.make ~n
      (List.filter_map (fun (s, d, _) -> if s = d then None else Some (s, d))
         edges)
  in
  let comps = Digraph.tarjan_scc g_all in
  let comp_of = Digraph.scc_of comps ~n in
  let nondegenerate =
    Array.to_list comps
    |> List.mapi (fun ci c -> (ci, c))
    |> List.filter (fun ((_ci, c) : int * int list) ->
           match c with
           | [ v ] -> List.mem v g_all.Digraph.succ.(v) (* self loop *)
           | _ :: _ :: _ -> true
           | [] -> false)
    |> List.map fst
  in
  if T.is_enabled () then begin
    T.record "schedule.nodes" (float_of_int n);
    T.record "schedule.sccs" (float_of_int (Array.length comps));
    T.record "schedule.nondegenerate_sccs"
      (float_of_int (List.length nondegenerate))
  end;
  (* Critical sub-slice: non-degenerate SCC members plus their
     intra-iteration backward closure (the values the next thread needs). *)
  let critical = Array.make n false in
  List.iter
    (fun ci ->
      Array.iteri (fun v c -> if c = ci then critical.(v) <- true) comp_of)
    nondegenerate;
  let intra_edges =
    List.filter_map (fun (s, d, lc) -> if lc then None else Some (s, d)) edges
  in
  let changed = ref true in
  while !changed do
    changed := false;
    List.iter
      (fun (s, d) ->
        if critical.(d) && not critical.(s) then begin
          critical.(s) <- true;
          changed := true
        end)
      intra_edges
  done;
  (* --- List scheduling by maximum dependence height (intra edges only),
     ties by lower original address. --- *)
  let g_intra =
    Digraph.make ~n (List.filter (fun (s, d) -> s <> d) intra_edges)
  in
  let weights i = latency_of profile cfg prog arr.(i) in
  let heights =
    try Digraph.longest_path g_intra ~node_weight:weights
    with Invalid_argument _ -> Array.init n weights
  in
  let order_of idxs =
    List.sort
      (fun a b ->
        let c = compare heights.(b) heights.(a) in
        if c <> 0 then c
        else
          compare (Ssp_ir.Prog.addr_of f arr.(a)) (Ssp_ir.Prog.addr_of f arr.(b)))
      idxs
    (* Stabilize into a legal order: topological among chosen, using the
       priority order as tie-break. *)
    |> fun prio ->
    let chosen = List.sort_uniq compare idxs in
    let rank = Hashtbl.create 16 in
    List.iteri (fun i v -> Hashtbl.replace rank v i) prio;
    let in_set v = List.mem v chosen in
    let indeg = Hashtbl.create 16 in
    List.iter (fun v -> Hashtbl.replace indeg v 0) chosen;
    List.iter
      (fun (s, d) ->
        if in_set s && in_set d then
          Hashtbl.replace indeg d (1 + Hashtbl.find indeg d))
      intra_edges;
    let out = ref [] in
    let remaining = ref chosen in
    while !remaining <> [] do
      let ready =
        List.filter (fun v -> Hashtbl.find indeg v = 0) !remaining
      in
      let pick =
        match
          List.sort (fun a b -> compare (Hashtbl.find rank a) (Hashtbl.find rank b)) ready
        with
        | p :: _ -> p
        | [] -> List.hd !remaining (* cycle: break arbitrarily *)
      in
      out := pick :: !out;
      remaining := List.filter (fun v -> v <> pick) !remaining;
      List.iter
        (fun (s, d) ->
          if s = pick && in_set d && Hashtbl.find indeg d > 0 then
            Hashtbl.replace indeg d (Hashtbl.find indeg d - 1))
        intra_edges
    done;
    List.rev !out
  in
  let crit_idx = List.filter (fun i -> critical.(i)) (List.init n Fun.id) in
  let noncrit_idx =
    List.filter (fun i -> not critical.(i)) (List.init n Fun.id)
  in
  let order_critical = List.map (fun i -> arr.(i)) (order_of crit_idx) in
  let order_non_critical = List.map (fun i -> arr.(i)) (order_of noncrit_idx) in
  (* --- Spawn condition (§3.2.1.1 condition prediction). --- *)
  let spawn_cond =
    if not is_loop then Predicted { depth = 1 }
    else
      match continue_branch regions slice with
      | None -> Predicted { depth = max 1 trips }
      | Some (br, reg, spawn_if_nonzero) -> (
        match slice_condition regions profile slice br reg with
        | Some extra -> Cond { extra; reg; spawn_if_nonzero }
        | None -> Predicted { depth = max 1 trips })
  in
  (* The condition's own external inputs become additional (invariant)
     live-ins so the speculative thread can evaluate it. *)
  let slice =
    match spawn_cond with
    | Predicted _ -> slice
    | Cond { extra; reg; _ } ->
      let reach = Regions.reaching_of regions fn in
      let blocks = Regions.blocks_of regions slice.Slice.region in
      let in_region (i : Ssp_ir.Iref.t) =
        String.equal i.fn fn && List.mem i.blk blocks
      in
      let known r =
        List.exists (fun (l : Slice.live_in) -> l.Slice.orig_reg = r)
          slice.Slice.live_ins
      in
      let extra_set =
        List.fold_left (fun a i -> Ssp_ir.Iref.Set.add i a)
          slice.Slice.instrs extra
      in
      let new_live = ref [] in
      List.iter
        (fun use ->
          let op = Ssp_ir.Prog.instr prog use in
          List.iter
            (fun r ->
              List.iter
                (fun (df : Reaching.def) ->
                  let site = df.Reaching.site in
                  let external_ =
                    site.Ssp_ir.Iref.ins = -1
                    || (not (in_region site))
                    || not (Ssp_ir.Iref.Set.mem site extra_set)
                  in
                  if external_ && (not (known r))
                     && not
                          (List.exists
                             (fun (l : Slice.live_in) -> l.Slice.orig_reg = r)
                             !new_live)
                  then
                    new_live :=
                      { Slice.orig_reg = r; def_sites = []; recurrence = false }
                      :: !new_live)
                (Reaching.reaching_defs reach ~use r))
            (Op.uses op))
        (extra @ [ (match (continue_branch regions slice, extra) with
                    | Some (br, _, _), _ -> br
                    | None, e :: _ -> e
                    | None, [] ->
                      Ssp_ir.Error.raise_error ~pass:"schedule" ~fn
                        "chaining schedule: region has neither a continue \
                         branch nor chained uses to seed live-ins from") ]);
      ignore reg;
      { slice with Slice.live_ins = slice.Slice.live_ins @ List.rev !new_live }
  in
  (* --- Heights and slack ingredients. --- *)
  let region_nodes =
    List.concat_map
      (fun bi ->
        let ops = f.Ssp_ir.Prog.blocks.(bi).Ssp_ir.Prog.ops in
        List.init (Array.length ops) (fun ii -> Ssp_ir.Iref.make fn bi ii))
      (Regions.blocks_of regions slice.Slice.region)
  in
  let height_region = height_of regions profile cfg region_nodes in
  let height_critical = height_of regions profile cfg order_critical in
  let height_slice = height_of regions profile cfg nodes in
  let nlive = List.length slice.Slice.live_ins in
  let copy_spawn_latency =
    cfg.Ssp_machine.Config.spawn_latency
    + cfg.Ssp_machine.Config.lib_latency
    + ((nlive + 1) / 2)
  in
  let total_latency =
    List.fold_left (fun acc x -> acc + latency_of profile cfg prog x) 0 nodes
  in
  let available_ilp =
    if height_slice = 0 then 1.0
    else float_of_int total_latency /. float_of_int height_slice
  in
  let recurrence_regs =
    List.filter_map
      (fun (l : Slice.live_in) ->
        if l.Slice.recurrence then Some l.Slice.orig_reg else None)
      slice.Slice.live_ins
  in
  (* --- Inner-loop sub-slice (the health pattern): a loop strictly inside
     the region over whose back edge the slice carries a recurrence. When
     found, code generation preserves the loop so a single speculative
     thread prefetches the whole traversal (one inner loop per slice; the
     deepest qualifying one wins). --- *)
  let inner =
    let loops = Regions.loops_of regions fn in
    let region_loop_id =
      match Regions.loop_of regions slice.Slice.region with
      | Some l -> Some l.Loops.id
      | None -> None
    in
    let region_depth = Regions.depth regions slice.Slice.region in
    let candidates =
      List.filter
        (fun (l : Loops.loop) ->
          Some l.Loops.id <> region_loop_id
          && l.Loops.depth > region_depth
          && List.exists
               (fun (i : Ssp_ir.Iref.t) -> List.mem i.blk l.Loops.body)
               nodes)
        (Loops.all loops)
    in
    let deepest =
      List.fold_left
        (fun acc (l : Loops.loop) ->
          match acc with
          | Some (best : Loops.loop) when best.Loops.depth >= l.Loops.depth ->
            acc
          | _ -> Some l)
        None candidates
    in
    match deepest with
    | None -> None
    | Some l ->
      let in_l (i : Ssp_ir.Iref.t) = List.mem i.blk l.Loops.body in
      let order = order_critical @ order_non_critical in
      let body = List.filter in_l order in
      let pre = List.filter (fun i -> not (in_l i)) order in
      (* Registers the slice carries around this loop's back edge. *)
      let reach = Regions.reaching_of regions fn in
      let carried = ref [] in
      List.iter
        (fun (use : Ssp_ir.Iref.t) ->
          let op = Ssp_ir.Prog.instr prog use in
          List.iter
            (fun r ->
              let all = Reaching.reaching_defs reach ~use r in
              let intra = Reaching.defs_without_back_edges reach ~use r in
              List.iter
                (fun (df : Reaching.def) ->
                  let site = df.Reaching.site in
                  if
                    site.Ssp_ir.Iref.ins >= 0 && in_l site
                    && List.exists (Ssp_ir.Iref.equal site) body
                    && (not
                          (List.exists
                             (fun (i : Reaching.def) ->
                               Ssp_ir.Iref.equal i.Reaching.site site)
                             intra))
                    && not (List.mem r !carried)
                  then carried := r :: !carried)
                all)
            (Op.uses op))
        body;
      if body = [] || !carried = [] then None
      else begin
        let inner_entries =
          max 1
            (Ssp_profiling.Profile.block_freq profile fn l.Loops.header
            - List.fold_left
                (fun acc (src, _) ->
                  acc + Ssp_profiling.Profile.block_freq profile fn src)
                0 l.Loops.back_edges)
        in
        let inner_trips =
          max 1
            (Ssp_profiling.Profile.block_freq profile fn l.Loops.header
            / inner_entries)
        in
        let cond =
          match continue_branch_of_loop regions fn l with
          | None -> Predicted { depth = inner_trips }
          | Some (br, reg, continue_if_nonzero) -> (
            match slice_condition regions profile slice br reg with
            | Some extra ->
              Cond { extra; reg; spawn_if_nonzero = continue_if_nonzero }
            | None -> Predicted { depth = inner_trips })
        in
        Some
          {
            loop_id = l.Loops.id;
            body;
            pre;
            carried = !carried;
            cond;
            trips = inner_trips;
          }
      end
  in
  {
    slice;
    order_critical;
    order_non_critical;
    spawn_cond;
    recurrence_regs;
    height_region;
    height_critical;
    height_slice;
    copy_spawn_latency;
    rotation;
    loop_carried_edges;
    available_ilp;
    inner;
  }

let slack_csp t i =
  max 0 ((t.height_region - t.height_critical - t.copy_spawn_latency) * i)

let slack_bsp t i = max 0 ((t.height_region - t.height_slice) * i)
