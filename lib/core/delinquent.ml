open Ssp_isa
module T = Ssp_telemetry.Telemetry

type load = {
  iref : Ssp_ir.Iref.t;
  addr_reg : Reg.t;
  offset : int;
  miss_cycles : int;
  accesses : int;
  miss_ratio : float;
}

type t = { loads : load list; covered : float; total_miss_cycles : int }

let identify ?(coverage = 0.9) (prog : Ssp_ir.Prog.t)
    (profile : Ssp_profiling.Profile.t) =
  T.with_span "delinquent" @@ fun () ->
  let candidates = ref [] in
  Ssp_ir.Prog.iter_instrs prog (fun iref op ->
      match op with
      | Op.Load (_, _, base, offset) -> (
        match Ssp_profiling.Profile.load_stats profile iref with
        | Some s when s.Ssp_profiling.Profile.miss_cycles > 0 ->
          let misses =
            s.Ssp_profiling.Profile.accesses - s.Ssp_profiling.Profile.l1_hits
          in
          candidates :=
            {
              iref;
              addr_reg = base;
              offset;
              miss_cycles = s.Ssp_profiling.Profile.miss_cycles;
              accesses = s.Ssp_profiling.Profile.accesses;
              miss_ratio =
                (if s.Ssp_profiling.Profile.accesses = 0 then 0.0
                 else
                   float_of_int misses
                   /. float_of_int s.Ssp_profiling.Profile.accesses);
            }
            :: !candidates
        | Some _ | None -> ())
      | _ -> ());
  let sorted =
    List.sort (fun a b -> compare b.miss_cycles a.miss_cycles) !candidates
  in
  let total = List.fold_left (fun acc l -> acc + l.miss_cycles) 0 sorted in
  let threshold = float_of_int total *. coverage in
  let rec take acc sum = function
    | [] -> List.rev acc
    | l :: rest ->
      if float_of_int sum >= threshold then List.rev acc
      else take (l :: acc) (sum + l.miss_cycles) rest
  in
  let picked = take [] 0 sorted in
  (* Drop noise: loads contributing under 1% of total miss cycles. *)
  let picked =
    List.filter
      (fun l -> float_of_int l.miss_cycles >= 0.01 *. float_of_int total)
      picked
  in
  let covered_cycles =
    List.fold_left (fun acc l -> acc + l.miss_cycles) 0 picked
  in
  if T.is_enabled () then begin
    T.count "delinquent.candidates" (List.length sorted);
    T.count "delinquent.selected" (List.length picked);
    List.iter (fun l -> T.record "delinquent.miss_ratio" l.miss_ratio) picked
  end;
  {
    loads = picked;
    covered =
      (if total = 0 then 0.0
       else float_of_int covered_cycles /. float_of_int total);
    total_miss_cycles = total;
  }

let set t =
  List.fold_left
    (fun acc l -> Ssp_ir.Iref.Set.add l.iref acc)
    Ssp_ir.Iref.Set.empty t.loads

let pp ppf t =
  Format.fprintf ppf
    "@[<v>%d delinquent loads covering %.1f%% of %d miss cycles:@,"
    (List.length t.loads) (100.0 *. t.covered) t.total_miss_cycles;
  List.iter
    (fun l ->
      Format.fprintf ppf "  %a  [%a%+d]  miss_cycles=%d accesses=%d miss=%.1f%%@,"
        Ssp_ir.Iref.pp l.iref Reg.pp l.addr_reg l.offset l.miss_cycles
        l.accesses (100.0 *. l.miss_ratio))
    t.loads;
  Format.fprintf ppf "@]"
