open Ssp_isa

(* mcf: the automatic pipeline with four iterations per chaining thread. *)
let adapt_mcf ~config prog profile =
  let auto = Adapt.run ~config prog profile in
  let choices =
    List.map
      (fun (c : Select.choice) ->
        match c.Select.model with
        | Select.Chaining -> { c with Select.unroll = 4 }
        | Select.Basic -> { c with Select.unroll = 2 })
      auto.Adapt.choices
  in
  Adapt.apply_choices prog ~config choices auto.Adapt.delinquent

(* health: the automatic adaptation plus a hand-written interprocedural
   slice with one recursion level inlined. Offsets follow the village /
   patient layout of the workload source (8-byte fields):
   village = { child0; child1; child2; child3; list; seed; npatients }
   patient = { time; units; severity; next } *)
let health_child_offsets = [ 0; 8; 16; 24 ]
let health_list_offset = 32
let health_patient_next = 24

let adapt_health ~config prog profile =
  let auto = Adapt.run ~config prog profile in
  let adapted = auto.Adapt.prog in
  if not (Hashtbl.mem adapted.Ssp_ir.Prog.funcs "simulate") then None
  else begin
    (* Call sites are located in the already-adapted binary: the automatic
       pass moved instruction positions when it split trigger blocks. *)
    let callgraph = Ssp_analysis.Callgraph.compute adapted in
    let sites = Ssp_analysis.Callgraph.callers callgraph "simulate" in
    if sites = [] then None
    else begin
      let l_slice = Codegen.fresh_name "hand_slice" in
      (* Registers of the fresh speculative context. *)
      let v = 32 and l = 33 and p1 = 34 and p2 = 35 in
      let c k = 40 + k and cl k = 48 + k and cn k = 56 + k in
      let body =
        ref
          [
            Op.Lib_ld (v, 0);
            (* this village's patient list: walk two nodes ahead *)
            Op.Load (Op.W8, l, v, health_list_offset);
            Op.Lfetch (l, 0);
            Op.Load (Op.W8, p1, l, health_patient_next);
            Op.Lfetch (p1, 0);
            Op.Load (Op.W8, p2, p1, health_patient_next);
            Op.Lfetch (p2, 0);
          ]
      in
      (* children and, one recursion level deep, their lists *)
      List.iteri
        (fun k off ->
          body :=
            !body
            @ [
                Op.Load (Op.W8, c k, v, off);
                Op.Lfetch (c k, 0);
                Op.Load (Op.W8, cl k, c k, health_list_offset);
                Op.Lfetch (cl k, 0);
                Op.Load (Op.W8, cn k, cl k, health_patient_next);
                Op.Lfetch (cn k, 0);
              ])
        health_child_offsets;
      body := !body @ [ Op.Kill ];
      Codegen.append_raw_blocks adapted ~fn:"simulate" [ (l_slice, !body) ];
      (* Trigger at every call site: the actual v is in r8 right before the
         call. Insert per block from the highest position down. *)
      let sorted =
        List.sort
          (fun ((a : Ssp_ir.Iref.t), _) ((b : Ssp_ir.Iref.t), _) ->
            Ssp_ir.Iref.compare b a)
          sites
      in
      List.iter
        (fun ((site : Ssp_ir.Iref.t), _) ->
          Codegen.insert_chk adapted ~fn:site.Ssp_ir.Iref.fn
            ~blk:site.Ssp_ir.Iref.blk ~pos:site.Ssp_ir.Iref.ins
            ~stub_ops:
              [ Op.Lib_st (0, Reg.arg 0); Op.Spawn ("simulate", l_slice) ])
        sorted;
      (match Ssp_ir.Validate.check adapted with
      | Ok () -> ()
      | Error (e :: _) ->
        Ssp_ir.Error.raise_error ~pass:"hand"
          ?instr:(Option.map Ssp_ir.Iref.to_string e.Ssp_ir.Validate.where)
          ("adapt_health produced an invalid rewrite: "
          ^ e.Ssp_ir.Validate.message)
      | Error [] ->
        Ssp_ir.Error.raise_error ~pass:"hand"
          "adapt_health produced an invalid rewrite");
      Some auto
    end
  end

let adapt ~workload ~config prog profile =
  match workload with
  | "mcf" -> Some (adapt_mcf ~config prog profile)
  | "health" -> adapt_health ~config prog profile
  | _ -> None
