open Ssp_analysis
module T = Ssp_telemetry.Telemetry

type kind = Preheader | Body | Call_site

type t = { fn : string; blk : int; pos : int; kind : kind }

let placed ts =
  T.add (T.counter "trigger.placed") (List.length ts);
  ts

let for_chaining regions (s : Slice.t) =
  T.with_span "trigger" @@ fun () ->
  placed
  @@
  (* The chaining trigger sits at the loop header: while chained threads
     occupy every context the check is a nop; when the chain dies (a spawn
     found no free context) the next main-thread iteration re-seeds it from
     the current live-in values. A preheader-only trigger would seed one
     chain per loop entry and prefetching would stop with the first failed
     chained spawn. *)
  match Regions.loop_of regions s.Slice.region with
  | None -> []
  | Some loop ->
    [ { fn = s.Slice.fn; blk = loop.Loops.header; pos = 0; kind = Preheader } ]

let for_basic regions (s : Slice.t) =
  T.with_span "trigger" @@ fun () ->
  placed
  @@
  match Regions.loop_of regions s.Slice.region with
  | None ->
    (* Procedure region: at function entry, after the last live-in
       producer (parameters are defined at entry, so position 0 barring
       in-body cut points). *)
    let in_body_cuts =
      List.concat_map (fun (l : Slice.live_in) -> l.Slice.def_sites)
        s.Slice.live_ins
      |> List.filter (fun (i : Ssp_ir.Iref.t) -> String.equal i.fn s.Slice.fn)
    in
    (match
       List.sort (fun a b -> Ssp_ir.Iref.compare b a) in_body_cuts
     with
    | [] -> [ { fn = s.Slice.fn; blk = 0; pos = 0; kind = Body } ]
    | last :: _ ->
      [
        { fn = s.Slice.fn; blk = last.Ssp_ir.Iref.blk;
          pos = last.Ssp_ir.Iref.ins + 1; kind = Body };
      ])
  | Some loop ->
    (* After the last in-loop live-in producer; otherwise the loop body
       entry (the header's first non-terminator slot). *)
    let in_loop_cuts =
      List.concat_map (fun (l : Slice.live_in) -> l.Slice.def_sites)
        s.Slice.live_ins
      |> List.filter (fun (i : Ssp_ir.Iref.t) ->
             String.equal i.fn s.Slice.fn && List.mem i.blk loop.Loops.body)
    in
    (match List.sort (fun a b -> Ssp_ir.Iref.compare b a) in_loop_cuts with
    | last :: _ ->
      [
        { fn = s.Slice.fn; blk = last.Ssp_ir.Iref.blk;
          pos = last.Ssp_ir.Iref.ins + 1; kind = Body };
      ]
    | [] -> [ { fn = s.Slice.fn; blk = loop.Loops.header; pos = 0; kind = Body } ])

let for_call_sites sites =
  T.with_span "trigger" @@ fun () ->
  placed
  @@ List.map
       (fun (i : Ssp_ir.Iref.t) ->
         { fn = i.fn; blk = i.blk; pos = i.ins; kind = Call_site })
       sites

let dominates_load regions t (load : Ssp_ir.Iref.t) =
  if not (String.equal t.fn load.fn) then t.kind = Call_site
  else begin
    let cfg = Regions.cfg_of regions t.fn in
    let dom = Dom.compute cfg.Cfg.graph ~entry:0 in
    Dom.dominates dom t.blk load.blk
    || (* a preheader does not dominate loads of loops with several
          preheaders; accept any preheader of the load's loop *)
    t.kind = Preheader || t.kind = Call_site
  end
