(** Region and precomputation-model selection (§3.4.1).

    For each delinquent load the region graph is walked from the innermost
    region containing the load outward (bounded nesting, stopping at the
    procedure). For each candidate the slice is built and scheduled, the
    trip count is derived from block profiling, and the reduced miss
    cycles are estimated as

    [reduced = entries · Σ_{i=1..trips} min(miss_cycles_per_iteration,
    slack_model(i))].

    The first region whose estimate exceeds the cutoff fraction of the
    load's profiled miss cycles wins; failing that, the best one. Basic SP
    is chosen when the trip count is small, when basic slack dominates
    chaining slack, or when a live-in is produced inside the loop
    (per-iteration cut point — a chaining thread could not run ahead of
    it); chaining SP otherwise. Whole-procedure slices whose live-ins are
    all parameters are bound at their call sites (interprocedural slices,
    §3.1). *)

type model = Chaining | Basic

type choice = {
  schedule : Schedule.t;
  model : model;
  triggers : Trigger.t list;
  trips : int;
  reduced_misscycles : int;
  load : Delinquent.load;
  unroll : int;
      (** iterations one speculative thread precomputes; 1 for the
          automatic tool, > 1 for hand adaptation (§4.5) *)
  allow_interproc : bool;
  allow_chaining : bool;
      (** the degradation-ladder rung this choice was approved under
          ([choose]'s [interproc]/[chaining] arguments); {!refine} will
          not re-promote past it when slices are combined *)
}

val cutoff : float
(** Fraction of a load's miss cycles a region must recover (0.3; §3.4.1
    reports low sensitivity to this value). *)

val max_region_depth : int
(** How many region expansions outward are considered. *)

val choose :
  ?interproc:bool ->
  ?chaining:bool ->
  Ssp_analysis.Regions.t ->
  Ssp_analysis.Callgraph.t ->
  Ssp_profiling.Profile.t ->
  Ssp_machine.Config.t ->
  Delinquent.load ->
  choice option
(** [interproc:false] disables interprocedural (call-site) binding,
    [chaining:false] forces the basic model — the lower rungs of the
    per-load degradation ladder ([Adapt.run] retries a load with these
    after a structured failure).  May raise [Ssp_ir.Error.Error] (real
    refusals and injected faults alike); [Adapt.run] isolates these per
    load. *)

val trips_of :
  Ssp_analysis.Regions.t -> Ssp_profiling.Profile.t ->
  Ssp_analysis.Regions.region -> string -> int * int
(** [(entries, trips per entry)] of a loop region from block profiles;
    [(invocations, 1)] for procedure regions. *)

val refine :
  Ssp_analysis.Regions.t ->
  Ssp_analysis.Callgraph.t ->
  Ssp_profiling.Profile.t ->
  Ssp_machine.Config.t ->
  choice ->
  choice
(** Re-decide model and triggers for a (merged) choice: the combined slice
    may shift the basic/chaining trade-off — but never past the choice's
    [allow_interproc]/[allow_chaining] ceiling. *)
