(** The `sspc explain` report: per delinquent load, the join of

    - the profile (miss cycles, miss share among all profiled misses),
    - the tool's decision (slice size, region, basic vs. chaining,
      [slack_csp]/[slack_bsp] at the first iteration, spawn condition,
      trigger placement),
    - the simulator's prefetch-lifecycle attribution (useful / late /
      early-evicted / redundant / dropped counts and the derived
      coverage / accuracy / timeliness),

    plus speculative-thread lifetime statistics and per-spawn-site
    accept/deny counts. *)

type scheme = {
  model : string;  (** "chaining" or "basic" *)
  slice_size : int;
  live_ins : int;
  region : string;
  interprocedural : bool;
  spawn_condition : string;  (** "computed" or "predicted" *)
  slack1_csp : int;
  slack1_bsp : int;
  trips : int;
  triggers : Trigger.t list;
}

type row = {
  load : Delinquent.load;
  miss_share : float;  (** of all profiled miss cycles *)
  scheme : scheme option;  (** [None]: no slice covers this load *)
  attrib : Ssp_sim.Attrib.load_summary option;
  feedback : string option;
      (** pre-rendered cluster-aggregate cell ([sspc explain
          --feedback]): fleet coverage/accuracy/timeliness and the last
          tuning action for this load, supplied by the caller so this
          module stays independent of the feedback plane *)
}

type t = {
  rows : row list;
  threads : Ssp_sim.Attrib.thread_summary;
  sites : Ssp_sim.Attrib.site_summary list;
  profile_coverage : float;
  cycles : int;  (** simulated cycles of the attributed run *)
  diagnostics : Report.diag list;
      (** the adaptation run's degradation-ladder decisions (per-load
          rung downgrades and skips), verbatim from
          [result.report.diagnostics] — rendered as a table section by
          {!pp} and a ["diagnostics"] array by {!to_json} *)
}

val build :
  ?feedback:(Ssp_ir.Iref.t -> string option) ->
  result:Adapt.result ->
  stats:Ssp_sim.Stats.t ->
  attrib:Ssp_sim.Attrib.summary ->
  unit ->
  t
(** [feedback] looks up the cluster-aggregate cell for a delinquent
    load (default: none). *)

val pp : Format.formatter -> t -> unit
val to_json : t -> string
