type slice_info = {
  fn : string;
  region : string;
  model : string;
  size : int;
  live_ins : int;
  interprocedural : bool;
  targets : int;
  triggers : int;
  trips : int;
  slack1 : int;
  available_ilp : float;
  spawn_condition : string;
}

(* One degradation-ladder event: a per-load pipeline stage failed and the
   pipeline either retried the load on a lower rung or dropped it. *)
type diag = {
  load : string;  (* delinquent load (Iref.to_string) *)
  stage : string;  (* failing pass: "profile", "slicer", "select", "codegen" *)
  action : string;  (* "degrade:<rung>", "skip" or "drop-trigger" *)
  detail : string;
}

type t = {
  slices : slice_info list;
  n_delinquent : int;
  coverage : float;
  diagnostics : diag list;
}

let table2_row t =
  let n = List.length t.slices in
  let interproc =
    List.length (List.filter (fun s -> s.interprocedural) t.slices)
  in
  let avg f =
    if n = 0 then 0.0
    else List.fold_left (fun acc s -> acc +. f s) 0.0 t.slices /. float_of_int n
  in
  ( n,
    interproc,
    avg (fun s -> float_of_int s.size),
    avg (fun s -> float_of_int s.live_ins) )

let pp ppf t =
  let n, ip, sz, li = table2_row t in
  Format.fprintf ppf
    "@[<v>%d delinquent loads (%.1f%% of miss cycles) -> %d slices (%d \
     interprocedural), avg size %.1f, avg live-ins %.1f@,"
    t.n_delinquent (100.0 *. t.coverage) n ip sz li;
  List.iter
    (fun s ->
      Format.fprintf ppf
        "  %s %s: %s SP, %d instrs, %d live-ins, %d targets, %d triggers, \
         trips~%d, slack1=%d, ilp=%.2f, cond=%s%s@,"
        s.fn s.region s.model s.size s.live_ins s.targets s.triggers s.trips
        s.slack1 s.available_ilp s.spawn_condition
        (if s.interprocedural then ", interprocedural" else ""))
    t.slices;
  List.iter
    (fun d ->
      Format.fprintf ppf "  ! %s: %s failed -> %s (%s)@," d.load d.stage
        d.action d.detail)
    t.diagnostics;
  Format.fprintf ppf "@]"
