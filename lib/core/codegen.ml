open Ssp_isa
module F = Ssp_fault.Fault

let site_refuse = F.site "adapt.codegen.refuse"

let depth_slot = Ssp_sim.Thread.lib_slots - 1

(* Label gensym. [apply] threads its own counter (restarted per call, so
   the emitted assembly is deterministic and concurrent applies on
   different programs never share state); the exported [fresh_name] for
   raw rewriting (hand adaptation) draws from a process-wide atomic. *)
let fresh_counter = Atomic.make 0

let fresh_name stem =
  Printf.sprintf "ssp_%s_%d" stem (Atomic.fetch_and_add fresh_counter 1 + 1)

(* Renaming state for slice emission: original register -> slice register.
   Fresh registers come from the stacked partition of the (clean)
   speculative context. *)
type rename = {
  mutable map : (Reg.t * Reg.t) list;
  mutable next : Reg.t;
  by_site : Reg.t Ssp_ir.Iref.Tbl.t;
      (* renamed destination of each emitted slice instruction, so targets
         whose original registers were reused (temporaries) can resolve
         their address through the defining instruction *)
}

let rename_create () =
  { map = []; next = Reg.first_stacked; by_site = Ssp_ir.Iref.Tbl.create 16 }

let rename_fresh rn =
  if rn.next >= Reg.count then
    Ssp_ir.Error.raise_error ~pass:"codegen" "slice out of registers";
  let r = rn.next in
  rn.next <- r + 1;
  r

let rename_use rn r =
  if r = Reg.zero then Reg.zero
  else
    match List.assoc_opt r rn.map with
    | Some r' -> r'
    | None ->
      (* An unexpected external value: speculative contexts start zeroed, so
         reading a fresh register yields 0 — harmless for prefetching. *)
      let r' = rename_fresh rn in
      rn.map <- (r, r') :: rn.map;
      r'

let rename_def rn r =
  if r = Reg.zero then Reg.zero
  else begin
    let r' = rename_fresh rn in
    rn.map <- (r, r') :: List.remove_assoc r rn.map;
    r'
  end

let rename_instr ?site rn op =
  let record d =
    (match site with
    | Some i -> Ssp_ir.Iref.Tbl.replace rn.by_site i d
    | None -> ());
    d
  in
  match op with
  | Op.Movi (d, i) -> Op.Movi (record (rename_def rn d), i)
  | Op.Mov (d, s) ->
    let s' = rename_use rn s in
    Op.Mov (record (rename_def rn d), s')
  | Op.Alu (o, d, a, b) ->
    let a' = rename_use rn a and b' = rename_use rn b in
    Op.Alu (o, record (rename_def rn d), a', b')
  | Op.Alui (o, d, a, i) ->
    let a' = rename_use rn a in
    Op.Alui (o, record (rename_def rn d), a', i)
  | Op.Cmp (o, d, a, b) ->
    let a' = rename_use rn a and b' = rename_use rn b in
    Op.Cmp (o, record (rename_def rn d), a', b')
  | Op.Cmpi (o, d, a, i) ->
    let a' = rename_use rn a in
    Op.Cmpi (o, record (rename_def rn d), a', i)
  | Op.Load (w, d, b, off) ->
    let b' = rename_use rn b in
    Op.Load (w, record (rename_def rn d), b', off)
  | _ ->
    Ssp_ir.Error.raise_error ~pass:"codegen" ~instr:(Op.to_string op)
      "non-replayable instruction in slice"

let append_blocks (f : Ssp_ir.Prog.func) blocks =
  f.Ssp_ir.Prog.blocks <-
    Array.append f.Ssp_ir.Prog.blocks (Array.of_list blocks)

(* Emit the speculative-thread code of one scheduled slice; returns the
   label of its first block and the emitted prefetch sites (lfetches and
   value-used target-load copies) mapped to their original target loads.

   With [unroll] = K > 1 one speculative thread precomputes K consecutive
   iterations: the critical sub-slice is replicated K times (advancing the
   recurrences K steps) before the chained spawn, and the non-critical
   sub-slice runs once per step using that step's register versions. *)
let emit_slice ~fresh prog (choice : Select.choice) =
  let sched = choice.Select.schedule in
  let slice = sched.Schedule.slice in
  let unroll = max 1 choice.Select.unroll in
  let f = Ssp_ir.Prog.find_func prog slice.Slice.fn in
  let l_slice = fresh "slice" in
  let l_skip = fresh "skip" in
  let rn = rename_create () in
  (* Prefetch-site marks, for attribution: every emitted instruction that
     acts as a prefetch of a target load — the lfetches, and the slice
     copies of value-used target loads (those emit no lfetch; the load
     itself is the prefetch). Recorded as (label, index-in-block, target)
     and resolved to block indices once the blocks are appended. *)
  let marks : (string * int * Ssp_ir.Iref.t) list ref = ref [] in
  let mark label buf target =
    marks := (label, List.length !buf, target) :: !marks
  in
  let vu_loads =
    List.filter_map
      (fun (t : Slice.target) ->
        if t.Slice.value_used then Some t.Slice.load else None)
      slice.Slice.targets
  in
  let is_vu i = List.exists (Ssp_ir.Iref.equal i) vu_loads in
  let resolve_marks () =
    let blocks = f.Ssp_ir.Prog.blocks in
    let index_of label =
      let n = Array.length blocks in
      let rec go i =
        if i >= n then
          Ssp_ir.Error.raise_error ~pass:"codegen" ~fn:slice.Slice.fn
            (Printf.sprintf "unresolved slice label %s" label)
        else if String.equal blocks.(i).Ssp_ir.Prog.label label then i
        else go (i + 1)
      in
      go 0
    in
    List.rev_map
      (fun (label, ins, target) ->
        ({ Ssp_ir.Iref.fn = slice.Slice.fn; blk = index_of label; ins }, target))
      !marks
  in
  let body = ref [] in
  let emit op = body := op :: !body in
  (* Live-in loads. *)
  List.iteri
    (fun slot (l : Slice.live_in) ->
      let r = rename_fresh rn in
      rn.map <- (l.Slice.orig_reg, r) :: rn.map;
      emit (Op.Lib_ld (r, slot)))
    slice.Slice.live_ins;
  let depth_reg =
    match (choice.Select.model, sched.Schedule.spawn_cond) with
    | Select.Chaining, Schedule.Predicted _ ->
      let d = rename_fresh rn in
      emit (Op.Lib_ld (d, depth_slot));
      Some d
    | _ -> None
  in
  let instr_of i = Ssp_ir.Prog.instr prog i in
  (* Reaching definitions of the (not yet rewritten) host function: targets
     resolve their address through the definition that reaches the load, so
     reused temporaries do not alias different targets to one register. *)
  let reach = Ssp_analysis.Reaching.compute (Ssp_analysis.Cfg.of_func f) in
  let target_base_via (t : Slice.target) =
    (* The renamed register holding a target's address: through the slice
       member whose definition reaches the load (reused temporaries would
       otherwise alias different targets), else the current map. *)
    let candidates =
      Ssp_analysis.Reaching.reaching_defs reach ~use:t.Slice.load
        t.Slice.addr_reg
    in
    match
      List.find_map
        (fun (d : Ssp_analysis.Reaching.def) ->
          Ssp_ir.Iref.Tbl.find_opt rn.by_site d.Ssp_analysis.Reaching.site)
        candidates
    with
    | Some r -> r
    | None -> rename_use rn t.Slice.addr_reg
  in
  let emit_prefetches ~label =
    let seen = Hashtbl.create 8 in
    List.iter
      (fun (t : Slice.target) ->
        if not t.Slice.value_used then begin
          let base = target_base_via t in
          if not (Hashtbl.mem seen (base, t.Slice.offset)) then begin
            Hashtbl.replace seen (base, t.Slice.offset) ();
            mark label body t.Slice.load;
            emit (Op.Lfetch (base, t.Slice.offset))
          end
        end)
      slice.Slice.targets
  in
  (* --- Inner-loop slices (basic SP): keep the loop, so one speculative
     thread prefetches the whole traversal (the paper's interprocedural
     health slice). Loop-carried registers get fixed homes; every round
     copies the new versions back before the back edge. --- *)
  match (choice.Select.model, sched.Schedule.inner) with
  | Select.Basic, Some inner ->
    let l_loop = fresh "sloop" in
    let l_done = fresh "sdone" in
    List.iter
      (fun i ->
        if is_vu i then mark l_slice body i;
        emit (rename_instr ~site:i rn (instr_of i)))
      inner.Schedule.pre;
    let homes =
      List.map
        (fun r ->
          let home = rename_fresh rn in
          emit (Op.Mov (home, rename_use rn r));
          rn.map <- (r, home) :: List.remove_assoc r rn.map;
          (r, home))
        inner.Schedule.carried
    in
    (* Bounded even when the condition is predicted: a countdown. *)
    let counter = rename_fresh rn in
    let bound =
      match inner.Schedule.cond with
      | Schedule.Predicted { depth } -> max 1 depth
      | Schedule.Cond _ -> 4 * max 1 inner.Schedule.trips
    in
    emit (Op.Movi (counter, Int64.of_int bound));
    let pre_ops = List.rev !body in
    body := [];
    List.iter
      (fun i ->
        if is_vu i then mark l_loop body i;
        emit (rename_instr ~site:i rn (instr_of i)))
      inner.Schedule.body;
    emit_prefetches ~label:l_loop;
    (match inner.Schedule.cond with
    | Schedule.Cond { extra; reg; spawn_if_nonzero } ->
      List.iter (fun i -> emit (rename_instr ~site:i rn (instr_of i))) extra;
      let c = rename_use rn reg in
      if spawn_if_nonzero then emit (Op.Brz (c, l_done))
      else emit (Op.Brnz (c, l_done))
    | Schedule.Predicted _ -> ());
    List.iter
      (fun (r, home) ->
        let cur = rename_use rn r in
        if cur <> home then emit (Op.Mov (home, cur));
        rn.map <- (r, home) :: List.remove_assoc r rn.map)
      homes;
    let counter' = rename_fresh rn in
    emit (Op.Alui (Op.Sub, counter', counter, 1L));
    emit (Op.Mov (counter, counter'));
    emit (Op.Brnz (counter, l_loop));
    let loop_ops = List.rev !body in
    append_blocks f
      [
        { Ssp_ir.Prog.label = l_slice; ops = Array.of_list pre_ops };
        { Ssp_ir.Prog.label = l_loop; ops = Array.of_list loop_ops };
        { Ssp_ir.Prog.label = l_done; ops = [| Op.Kill |] };
      ];
    (l_slice, resolve_marks ())
  | _ ->
  (* Critical sub-slice, replicated per unrolled step; snapshot the
     register versions after each step for its non-critical twin. *)
  let snapshots = ref [] in
  for _step = 1 to unroll do
    List.iter
      (fun i ->
        if is_vu i then mark l_slice body i;
        emit (rename_instr ~site:i rn (instr_of i)))
      sched.Schedule.order_critical;
    snapshots := rn.map :: !snapshots
  done;
  let snapshots = List.rev !snapshots in
  (* Spawn sequence (chaining only). *)
  (match choice.Select.model with
  | Select.Basic -> ()
  | Select.Chaining ->
    (match sched.Schedule.spawn_cond with
    | Schedule.Cond { extra; reg; spawn_if_nonzero } ->
      List.iter (fun i -> emit (rename_instr ~site:i rn (instr_of i))) extra;
      let c = rename_use rn reg in
      if spawn_if_nonzero then emit (Op.Brz (c, l_skip))
      else emit (Op.Brnz (c, l_skip))
    | Schedule.Predicted _ -> (
      match depth_reg with
      | Some d ->
        let t = rename_fresh rn in
        emit (Op.Cmpi (Op.Le, t, d, 0L));
        emit (Op.Brnz (t, l_skip))
      | None -> ()));
    (* Copy the next thread's live-ins into the buffer. *)
    List.iteri
      (fun slot (l : Slice.live_in) ->
        emit (Op.Lib_st (slot, rename_use rn l.Slice.orig_reg)))
      slice.Slice.live_ins;
    (match depth_reg with
    | Some d ->
      let d' = rename_fresh rn in
      emit (Op.Alui (Op.Sub, d', d, Int64.of_int unroll));
      emit (Op.Lib_st (depth_slot, d'))
    | None -> ());
    emit (Op.Spawn (slice.Slice.fn, l_slice)));
  let head = List.rev !body in
  (* Non-critical sub-slice + prefetches + kill, in the skip block — once
     per unrolled step, reading that step's register versions. *)
  let tail = ref [] in
  let emit op = tail := op :: !tail in
  List.iter
    (fun snapshot ->
      rn.map <- snapshot;
      List.iter
        (fun i ->
          if is_vu i then mark l_skip tail i;
          emit (rename_instr ~site:i rn (instr_of i)))
        sched.Schedule.order_non_critical;
      let seen = Hashtbl.create 8 in
      List.iter
        (fun (t : Slice.target) ->
          if not t.Slice.value_used then begin
            let base = target_base_via t in
            if not (Hashtbl.mem seen (base, t.Slice.offset)) then begin
              Hashtbl.replace seen (base, t.Slice.offset) ();
              mark l_skip tail t.Slice.load;
              emit (Op.Lfetch (base, t.Slice.offset))
            end
          end)
        slice.Slice.targets)
    snapshots;
  emit Op.Kill;
  append_blocks f
    [
      { Ssp_ir.Prog.label = l_slice; ops = Array.of_list head };
      { Ssp_ir.Prog.label = l_skip; ops = Array.of_list (List.rev !tail) };
    ];
  (l_slice, resolve_marks ())

(* Insert a chk.c at a trigger point by splitting the block, appending the
   given stub body (without its final resume branch) as the recovery code. *)
let insert_chk_gen ~fresh prog ~fn ~blk ~pos ~stub_ops =
  let f = Ssp_ir.Prog.find_func prog fn in
  let b = f.Ssp_ir.Prog.blocks.(blk) in
  let ops = b.Ssp_ir.Prog.ops in
  let n = Array.length ops in
  let pos = min pos n in
  let l_stub = fresh "stub" in
  let l_resume = fresh "resume" in
  let head = Array.sub ops 0 pos in
  let tail = Array.sub ops pos (n - pos) in
  (* The moved tail must not fall through past the resume block. *)
  let tail =
    let needs_br =
      n - pos = 0 || not (Op.is_terminator tail.(Array.length tail - 1))
    in
    if needs_br then begin
      if blk + 1 >= Array.length f.Ssp_ir.Prog.blocks then
        Ssp_ir.Error.raise_error ~pass:"codegen" ~fn
          ~instr:(Printf.sprintf "block %d, pos %d" blk pos)
          "fallthrough at function end";
      let next = f.Ssp_ir.Prog.blocks.(blk + 1).Ssp_ir.Prog.label in
      Array.append tail [| Op.Br next |]
    end
    else tail
  in
  b.Ssp_ir.Prog.ops <- Array.append head [| Op.Chk_c l_stub; Op.Br l_resume |];
  append_blocks f
    [
      {
        Ssp_ir.Prog.label = l_stub;
        ops = Array.of_list (stub_ops @ [ Op.Br l_resume ]);
      };
      { Ssp_ir.Prog.label = l_resume; ops = tail };
    ]

let insert_chk prog ~fn ~blk ~pos ~stub_ops =
  insert_chk_gen ~fresh:fresh_name prog ~fn ~blk ~pos ~stub_ops

let append_raw_blocks prog ~fn blocks =
  let f = Ssp_ir.Prog.find_func prog fn in
  append_blocks f
    (List.map
       (fun (label, ops) -> { Ssp_ir.Prog.label; ops = Array.of_list ops })
       blocks)

let insert_trigger ~fresh prog (choice : Select.choice) ~slice_label (t : Trigger.t) =
  let sched = choice.Select.schedule in
  let slice = sched.Schedule.slice in
  (* Stub: copy live-ins (main-thread registers) to the buffer, seed the
     chain depth, spawn. Scratch r2 is free by convention. *)
  let stub = ref [] in
  let emit op = stub := op :: !stub in
  List.iteri
    (fun slot (l : Slice.live_in) ->
      emit (Op.Lib_st (slot, l.Slice.orig_reg)))
    slice.Slice.live_ins;
  (match (choice.Select.model, sched.Schedule.spawn_cond) with
  | Select.Chaining, Schedule.Predicted { depth } ->
    emit (Op.Movi (2, Int64.of_int depth));
    emit (Op.Lib_st (depth_slot, 2))
  | _ -> ());
  emit (Op.Spawn (slice.Slice.fn, slice_label));
  insert_chk_gen ~fresh prog ~fn:t.Trigger.fn ~blk:t.Trigger.blk
    ~pos:t.Trigger.pos ~stub_ops:(List.rev !stub)

type apply_result = {
  prefetch_map : Ssp_ir.Iref.t Ssp_ir.Iref.Map.t;
  dropped : (Ssp_ir.Iref.t * Ssp_ir.Error.info) list;
      (* (delinquent load of the failing choice, error); slice-emission
         failures drop the whole choice, trigger failures only that
         trigger — either way the program stays valid and the failure is
         reported instead of aborting adaptation *)
}

let apply prog cfg (choices : Select.choice list) =
  ignore cfg;
  (* Labels only need to be unique within the rewritten program; a local
     gensym restarted per call keeps the emitted assembly deterministic
     across repeated (or concurrent) adapt runs in one process. *)
  let ctr = ref 0 in
  let fresh stem =
    Stdlib.incr ctr;
    Printf.sprintf "ssp_%s_%d" stem !ctr
  in
  let dropped = ref [] in
  let drop (choice : Select.choice) e =
    dropped := (choice.Select.load.Delinquent.iref, e) :: !dropped
  in
  (* Emit every slice first: appends never move existing instructions, so
     the position-based slice references of later choices stay valid. Then
     insert all triggers, globally ordered from the highest position down
     within each block, so splits never invalidate a pending position.
     (Trigger insertion splits original blocks and appends stubs after the
     slice blocks, so the prefetch-site refs collected here stay valid.)

     Failures are isolated per choice: [emit_slice] only mutates the
     program once emission has fully succeeded (blocks are appended at the
     end), so a refusing choice is dropped cleanly; a failing trigger
     leaves its block untouched, and a slice without (all of) its triggers
     is merely dead speculative code — never a correctness hazard. *)
  let prefetch_map = ref Ssp_ir.Iref.Map.empty in
  let pending =
    List.concat_map
      (fun (choice : Select.choice) ->
        let load = choice.Select.load.Delinquent.iref in
        match
          if F.fire ~key:(Ssp_ir.Iref.hash load) site_refuse then
            Ssp_ir.Error.raise_error ~injected:true ~pass:"codegen"
              ~fn:choice.Select.schedule.Schedule.slice.Slice.fn
              ~instr:(Ssp_ir.Iref.to_string load)
              "codegen refused slice";
          emit_slice ~fresh prog choice
        with
        | slice_label, marks ->
          List.iter
            (fun (site, target) ->
              prefetch_map := Ssp_ir.Iref.Map.add site target !prefetch_map)
            marks;
          List.map (fun t -> (choice, slice_label, t)) choice.Select.triggers
        | exception Ssp_ir.Error.Error e ->
          drop choice e;
          [])
      choices
  in
  let pending =
    List.sort
      (fun (_, _, (a : Trigger.t)) (_, _, (b : Trigger.t)) ->
        compare (b.Trigger.fn, b.Trigger.blk, b.Trigger.pos)
          (a.Trigger.fn, a.Trigger.blk, a.Trigger.pos))
      pending
  in
  List.iter
    (fun (choice, slice_label, t) ->
      try insert_trigger ~fresh prog choice ~slice_label t
      with Ssp_ir.Error.Error e -> drop choice e)
    pending;
  (match Ssp_ir.Validate.check prog with
  | Ok () -> ()
  | Error es ->
    let msg =
      String.concat "; "
        (List.map (fun e -> Format.asprintf "%a" Ssp_ir.Validate.pp_error e) es)
    in
    Ssp_ir.Error.raise_error ~pass:"codegen"
      ("invalid program after rewriting: " ^ msg));
  { prefetch_map = !prefetch_map; dropped = List.rev !dropped }
