open Ssp_isa
open Ssp_analysis
module T = Ssp_telemetry.Telemetry
module F = Ssp_fault.Fault

let max_slice_size = 48

(* The transitive slice walk is bounded by distinct (use, reg) pairs, so
   this budget never binds on real programs; it exists so adversarial (or
   fault-injected) inputs fail with a structured error instead of
   spinning. *)
let max_worklist_steps = 100_000

let site_budget = F.site "adapt.slicer.budget"
let site_oversized = F.site "adapt.slice.oversized"

(* Can a speculative thread re-execute this instruction? Stores, calls,
   allocation, I/O and randomness are out; so are the SSP instructions
   themselves. Branches are excluded here because the slicer works on data
   dependences only (the scheduler re-introduces the loop branch). *)
let sliceable = function
  | Op.Movi _ | Op.Mov _ | Op.Alu _ | Op.Alui _ | Op.Cmp _ | Op.Cmpi _
  | Op.Load _ ->
    true
  | Op.Nop | Op.Store _ | Op.Lfetch _ | Op.Br _ | Op.Brnz _ | Op.Brz _
  | Op.Call _ | Op.Icall _ | Op.Ret | Op.Halt | Op.Chk_c _ | Op.Spawn _
  | Op.Kill | Op.Lib_st _ | Op.Lib_ld _ | Op.Alloc _ | Op.Print _ | Op.Rand _
    ->
    false

module RS = Set.Make (Int)

let slice_region regions profile ~region (d : Delinquent.load) =
  T.with_span "slice" @@ fun () ->
  T.incr (T.counter "slice.attempts");
  let fn = d.Delinquent.iref.Ssp_ir.Iref.fn in
  if not (String.equal (Regions.func_of region) fn) then None
  else if d.Delinquent.addr_reg = Reg.zero then None
  else begin
    let reach = Regions.reaching_of regions fn in
    let in_region (i : Ssp_ir.Iref.t) =
      String.equal i.fn fn && Regions.in_region regions region i.blk
    in
    (* Reaching-defs queries repeat heavily while the slice is resolved
       (the same (use, reg) pair recurs across the transitive walk and
       again in recurrence detection); memoize them for this call. *)
    let rdefs_memo = Hashtbl.create 64 in
    let rdefs ~use r =
      match Hashtbl.find_opt rdefs_memo (use, r) with
      | Some ds -> ds
      | None ->
        let ds = Reaching.reaching_defs reach ~use r in
        Hashtbl.replace rdefs_memo (use, r) ds;
        ds
    in
    let intra_memo = Hashtbl.create 64 in
    let intra_defs ~use r =
      match Hashtbl.find_opt intra_memo (use, r) with
      | Some ds -> ds
      | None ->
        let ds = Reaching.defs_without_back_edges reach ~use r in
        Hashtbl.replace intra_memo (use, r) ds;
        ds
    in
    if not (in_region d.Delinquent.iref) then None
    else begin
      let key = Ssp_ir.Iref.hash d.Delinquent.iref in
      if F.fire ~key site_oversized then
        Ssp_ir.Error.raise_error ~injected:true ~pass:"slicer" ~fn
          ~instr:(Ssp_ir.Iref.to_string d.Delinquent.iref)
          "oversized region: slice exceeds the size bound";
      let budget_injected = F.fire ~key site_budget in
      let budget = ref (if budget_injected then 4 else max_worklist_steps) in
      let instrs = ref Ssp_ir.Iref.Set.empty in
      (* live-in register -> def sites seen *)
      let live : (Reg.t, Ssp_ir.Iref.Set.t) Hashtbl.t = Hashtbl.create 8 in
      let add_live r (site : Ssp_ir.Iref.t option) =
        let cur =
          Option.value ~default:Ssp_ir.Iref.Set.empty (Hashtbl.find_opt live r)
        in
        let cur =
          match site with
          | Some s -> Ssp_ir.Iref.Set.add s cur
          | None -> cur
        in
        Hashtbl.replace live r cur
      in
      let visited = Hashtbl.create 64 in
      let overflow = ref false in
      let rec resolve (use : Ssp_ir.Iref.t) (r : Reg.t) =
        if r <> Reg.zero && not (Hashtbl.mem visited (use, r)) then begin
          decr budget;
          if !budget < 0 then
            Ssp_ir.Error.raise_error ~injected:budget_injected ~pass:"slicer"
              ~fn
              ~instr:(Ssp_ir.Iref.to_string d.Delinquent.iref)
              "slicing worklist budget exhausted";
          Hashtbl.replace visited (use, r) ();
          let defs = rdefs ~use r in
          List.iter
            (fun (df : Reaching.def) ->
              let site = df.Reaching.site in
              if site.Ssp_ir.Iref.ins = -1 then
                (* function parameter *)
                add_live r None
              else if not (in_region site) then add_live r (Some site)
              else if not (Ssp_profiling.Profile.executed profile site) then
                (* speculative slicing: never-executed path, prune *)
                ()
              else begin
                let op = Ssp_ir.Prog.instr (Regions.prog regions) site in
                if not (sliceable op) then add_live r (Some site)
                else if not (Ssp_ir.Iref.Set.mem site !instrs) then begin
                  instrs := Ssp_ir.Iref.Set.add site !instrs;
                  if Ssp_ir.Iref.Set.cardinal !instrs > max_slice_size then
                    overflow := true
                  else List.iter (resolve site) (Op.uses op)
                end
              end)
            defs
        end
      in
      resolve d.Delinquent.iref d.Delinquent.addr_reg;
      if T.is_enabled () then
        T.record "slice.instrs"
          (float_of_int (Ssp_ir.Iref.Set.cardinal !instrs));
      if !overflow then begin
        T.incr (T.counter "slice.overflow");
        None
      end
      else begin
        (* Was the delinquent load itself pulled into the slice (its value
           feeds the address chain, e.g. p = p->next)? *)
        let value_used = Ssp_ir.Iref.Set.mem d.Delinquent.iref !instrs in
        (* Recurrences: slice-member defs that reach slice uses only around
           the loop back edge. *)
        let recurrent = ref RS.empty in
        (match Regions.loop_of regions region with
        | None -> ()
        | Some _ ->
          Ssp_ir.Iref.Set.iter
            (fun use ->
              let op = Ssp_ir.Prog.instr (Regions.prog regions) use in
              List.iter
                (fun r ->
                  let all = rdefs ~use r in
                  let intra = intra_defs ~use r in
                  List.iter
                    (fun (df : Reaching.def) ->
                      let site = df.Reaching.site in
                      if site.Ssp_ir.Iref.ins >= 0
                         && Ssp_ir.Iref.Set.mem site !instrs
                         && not
                              (List.exists
                                 (fun (i : Reaching.def) ->
                                   Ssp_ir.Iref.equal i.Reaching.site site)
                                 intra)
                      then recurrent := RS.add r !recurrent)
                    all)
                (Op.uses op))
            !instrs);
        (* A recurrence register also needs an initial value at the trigger,
           so it is a live-in even without an outside def. *)
        RS.iter (fun r -> add_live r None) !recurrent;
        let live_ins =
          Hashtbl.fold
            (fun r sites acc ->
              {
                Slice.orig_reg = r;
                def_sites = Ssp_ir.Iref.Set.elements sites;
                recurrence = RS.mem r !recurrent;
              }
              :: acc)
            live []
          |> List.sort (fun a b -> compare a.Slice.orig_reg b.Slice.orig_reg)
        in
        if List.length live_ins > Ssp_sim.Thread.lib_slots - 1 then None
        else
          Some
            {
              Slice.fn;
              region;
              targets =
                [
                  {
                    Slice.load = d.Delinquent.iref;
                    addr_reg = d.Delinquent.addr_reg;
                    offset = d.Delinquent.offset;
                    value_used;
                  };
                ];
              instrs = !instrs;
              live_ins;
              interprocedural = false;
            }
      end
    end
  end

let bind_at_callers regions callgraph profile (s : Slice.t) =
  match s.Slice.region with
  | Regions.Loop _ -> None
  | Regions.Proc fn ->
    (* Every live-in must be a formal parameter (an argument register with
       no outside def sites). *)
    let f = Ssp_ir.Prog.find_func (Regions.prog regions) fn in
    let is_param (l : Slice.live_in) =
      l.Slice.def_sites = []
      && l.Slice.orig_reg >= Reg.arg 0
      && l.Slice.orig_reg < Reg.arg 0 + f.Ssp_ir.Prog.nparams
    in
    if not (List.for_all is_param s.Slice.live_ins) then None
    else begin
      let sites =
        List.filter
          (fun (site, _) -> Ssp_profiling.Profile.executed profile site)
          (Callgraph.callers callgraph fn)
        |> List.map fst
      in
      if sites = [] then None
      else Some ({ s with Slice.interprocedural = true }, sites)
    end
