(** Static per-program layout tables shared by the cycle simulators.

    One [entry] per function carries:
    - the absolute program-counter id of every block's first instruction
      ([pc_id] is a dense global instruction number used as the branch
      predictor index and, scaled by 16, the instruction-fetch address);
    - the static bundle index of every instruction (issue-bandwidth
      accounting in bundle units).

    The numbering replicates the historical pcmap exactly (functions in
    [funcs_in_order] order, blocks sequential), so predictor/BTB indices are
    independent of the lookup structure. [irefs] inverts the numbering —
    the hot loops fetch a preallocated {!Ssp_ir.Iref.t} by pc instead of
    allocating one per instruction. *)

type entry = {
  func : Ssp_ir.Prog.func;
  block_base : int array;  (** absolute pc id of each block's first instr *)
  bundle_idx : int array array;  (** per block: bundle index per instr *)
  blk0_iaddr : int array;
      (** fetch address of each block's first instr as a native int — the
          fast-forward loop warms the I-cache without int64 arithmetic *)
  dec : Decode.t;  (** predecoded flat instruction stream *)
}

type t = {
  tbl : (string, entry) Hashtbl.t;
  by_index : entry array;
      (** entries in [funcs_in_order] order; decoded call words index
          this table directly *)
  n_pcs : int;  (** total static instruction count *)
  irefs : Ssp_ir.Iref.t array;  (** pc id → instruction reference *)
}

val code_base : int64
(** Base pseudo-address of the code segment (16 bytes per instruction,
    distinct from data addresses). *)

val code_base_i : int
(** [code_base] as a native int (addresses fit in 62 bits). *)

val dummy : entry
(** Physically-unique placeholder for per-context caches; never returned by
    [find]. *)

val of_prog : Ssp_ir.Prog.t -> t
val find : t -> string -> entry option
val pc_id : entry -> blk:int -> ins:int -> int
val pc_addr : entry -> blk:int -> ins:int -> int64
val iref_of : t -> int -> Ssp_ir.Iref.t
