(** The shared cache hierarchy with the 16-entry fill buffer.

    An access probes L1 → fill buffer → L2 → L3 → memory. A miss allocates
    a fill-buffer (MSHR) entry; an access to a line already in transit is a
    {e partial} hit serviced when the outstanding fill completes — the
    partial categories of Figure 9. Completed fills install the line at
    every level. When the fill buffer is full a missing access must wait
    for the earliest entry to retire. *)

type level = L1 | L2 | L3 | Mem

type outcome = {
  level : level;  (** where the data was found (origin of the fill) *)
  partial : bool;  (** line was already in transit *)
  ready : int;  (** cycle the value is available *)
}

type t

val create : ?tprefix:string -> Ssp_machine.Config.t -> t
(** [tprefix] (default ["sim"]) namespaces the per-level telemetry counters
    (["sim.l1d.hits"], ["sim.fill.dropped_prefetch"], ...), so simulator
    and profiler traffic stay distinguishable in one run report. *)

val l1d : t -> Cache.t
(** The L1 data cache (for interval telemetry sampling). *)

val set_attrib : t -> Attrib.t -> unit
(** Attach prefetch-lifecycle attribution. Accesses carrying a [pf_tag]
    are recorded as prefetch issues (and classified redundant / dropped
    at issue time); untagged data accesses settle outstanding prefetches
    (useful / late / early-evicted). Pure bookkeeping: outcomes and
    timing are unchanged. *)

val access :
  t ->
  now:int ->
  ?prefetch:bool ->
  ?low_priority:bool ->
  ?instruction:bool ->
  ?pf_tag:Attrib.tag ->
  ?demand_iref:Ssp_ir.Iref.t ->
  ?demand_main:bool ->
  int64 ->
  outcome
(** Account a load ([prefetch:false]), a prefetch or an instruction fetch
    at the given cycle. Prefetch fills are non-temporal: they install into
    L2/L3 but not L1 (Itanium [lfetch.nt]). Stores are accounted as loads for line-fill
    purposes (write-allocate). In [Perfect_memory] mode everything hits L1;
    the perfect-delinquent filtering is done by the caller (it knows the
    static load identity).

    [pf_tag] marks the access as an attributed prefetch (an lfetch, or a
    speculative demand load standing in for one); [demand_iref] and
    [demand_main] identify untagged data accesses for attribution — all
    three are ignored unless [set_attrib] was called. *)

val perfect_hit : t -> now:int -> outcome
(** An L1-latency hit regardless of state (used for perfect modes). *)

val level_latency : t -> level -> int

val pp_level : Format.formatter -> level -> unit
