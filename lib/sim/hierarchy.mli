(** The shared cache hierarchy with the 16-entry fill buffer.

    An access probes L1 → fill buffer → L2 → L3 → memory. A miss allocates
    a fill-buffer (MSHR) entry; an access to a line already in transit is a
    {e partial} hit serviced when the outstanding fill completes — the
    partial categories of Figure 9. Completed fills install the line at
    every level. When the fill buffer is full a missing access must wait
    for the earliest entry to retire. *)

type level = L1 | L2 | L3 | Mem

type outcome = {
  level : level;  (** where the data was found (origin of the fill) *)
  partial : bool;  (** line was already in transit *)
  ready : int;  (** cycle the value is available *)
}

type t

val create : ?tprefix:string -> Ssp_machine.Config.t -> t
(** [tprefix] (default ["sim"]) namespaces the per-level telemetry counters
    (["sim.l1d.hits"], ["sim.fill.dropped_prefetch"], ...), so simulator
    and profiler traffic stay distinguishable in one run report. *)

val l1d : t -> Cache.t
(** The L1 data cache (for interval telemetry sampling). *)

val set_attrib : t -> Attrib.t -> unit
(** Attach prefetch-lifecycle attribution. Accesses carrying a [pf_tag]
    are recorded as prefetch issues (and classified redundant / dropped
    at issue time); untagged data accesses settle outstanding prefetches
    (useful / late / early-evicted). Pure bookkeeping: outcomes and
    timing are unchanged. *)

val access :
  t ->
  now:int ->
  ?prefetch:bool ->
  ?low_priority:bool ->
  ?instruction:bool ->
  ?pf_tag:Attrib.tag ->
  ?demand_iref:Ssp_ir.Iref.t ->
  ?demand_main:bool ->
  int64 ->
  outcome
(** Account a load ([prefetch:false]), a prefetch or an instruction fetch
    at the given cycle. Prefetch fills are non-temporal: they install into
    L2/L3 but not L1 (Itanium [lfetch.nt]). Stores are accounted as loads for line-fill
    purposes (write-allocate). In [Perfect_memory] mode everything hits L1;
    the perfect-delinquent filtering is done by the caller (it knows the
    static load identity).

    [pf_tag] marks the access as an attributed prefetch (an lfetch, or a
    speculative demand load standing in for one); [demand_iref] and
    [demand_main] identify untagged data accesses for attribution — all
    three are ignored unless [set_attrib] was called. *)

val demand : t -> now:int -> low_priority:bool -> int64 -> outcome
(** [access] without the optional plumbing: an untagged demand data access
    ([demand_main] is the negation of [low_priority]). The cycle
    simulators' hot path when no attribution is attached. *)

val ifetch : t -> now:int -> int64 -> outcome
(** An instruction fetch (equivalent to [access ~instruction:true] with no
    other options; instruction fetches never carry attribution). *)

val prefetch : t -> now:int -> int64 -> outcome
(** An untagged prefetch (equivalent to [access ~prefetch:true] with no
    attribution tag); the hot path when attribution is off. *)

val warm : t -> int64 -> unit
(** Functional warming (sampled simulation): install the line at every
    level with no timing, fill-buffer traffic or attribution. Consecutive
    touches of one line collapse to a single access (exact for LRU state:
    no other line moved in between); call {!reset_warm_filter} whenever a
    timed access may have intervened. *)

val warm_i : t -> int -> unit
(** [warm] with the address as a native int (62-bit address space) — the
    decoded fast-forward loop computes addresses without int64 boxing. *)

val warm_ifetch_i : t -> int -> unit
(** Functional warming of the instruction cache (int fetch address, as
    precomputed in [Layout.blk0_iaddr]). *)

val reset_warm_filter : t -> unit
(** Invalidate the consecutive-same-line warming filter; the fast-forward
    loop calls it on entry (detailed windows touch the caches directly). *)

val perfect_hit : t -> now:int -> outcome
(** An L1-latency hit regardless of state (used for perfect modes). *)

val level_latency : t -> level -> int

val pp_level : Format.formatter -> level -> unit
