(** Architectural state of one hardware thread context: program counter,
    register file, register-stack frames, and the live-in buffer views used
    by SSP spawning. *)

type frame = {
  saved_stacked : int64 array;  (** r32–r127 of the caller *)
  mutable saved_n : int;
      (** how many entries of [saved_stacked] the call actually saved; the
          matching return restores exactly that many. [push_frame] sets the
          full count; the decoded fast-forward call saves only the caller's
          mentioned-register prefix and lowers it *)
  mutable ret_blk : int;
  mutable ret_ins : int;
  mutable ret_fn : string;
}
(** One register-stack frame. Frames live in a per-thread pool ([frames] up
    to [frame_n]) and are reused across calls — a call blits the stacked
    registers into the pooled frame instead of allocating. *)

type t = {
  id : int;  (** hardware context number *)
  mutable fn : string;
  mutable blk : int;
  mutable ins : int;
  regs : int64 array;  (** 128 registers; r0 kept at zero *)
  mutable frames : frame array;
      (** frame pool, grown by doubling; [frames.(0 .. frame_n-1)] are the
          live frames, innermost last *)
  mutable frame_n : int;  (** live call depth *)
  mutable live_in : int64 array;  (** snapshot received at spawn *)
  lib_out : int64 array;  (** staging area for the next spawn *)
  mutable speculative : bool;
  mutable active : bool;
  mutable instrs : int;  (** dynamic instructions executed *)
  mutable rand_state : int64;
  cached_fns : string array;
      (** physical-equality keys of [cached_funcs], most recent first;
          maintained by [Exec]. Four slots so a tight loop calling through
          a couple of helpers never thrashes back to the name table. *)
  cached_funcs : Ssp_ir.Prog.func array;
}

val lib_slots : int
(** Live-in buffer capacity (one register-stack spill area's worth). *)

val no_func : Ssp_ir.Prog.func
(** Placeholder function record for caches ([cached_func] before first
    fill); never a real program function. *)

val create : id:int -> t

val reset_for_spawn :
  t -> fn:string -> blk:int -> live_in:int64 array -> rand_state:int64 -> unit
(** Reinitialize a context as a speculative thread starting at the given
    block with the given live-in snapshot. *)

val get : t -> Ssp_isa.Reg.t -> int64
val set : t -> Ssp_isa.Reg.t -> int64 -> unit

val push_frame : t -> ret_blk:int -> ret_ins:int -> frame
(** The next pooled frame, fields set ([ret_fn] from the thread's current
    [fn]) and depth bumped; the caller blits the stacked registers into
    [saved_stacked]. Allocates only when the pool grows. *)
