(** Simulation statistics: everything Figures 8–10 and §4.4 need.

    Cycle categories follow Figure 10 (main thread only):
    - [Cat_l3]/[Cat_l2]/[Cat_l1]: no instruction issued while a demand miss
      of the main thread was outstanding; attributed to the cache level that
      missed (a fill from memory is an L3 miss, from L3 an L2 miss, from L2
      an L1 miss);
    - [Cat_cache_exec]: issued and a miss outstanding in the same cycle;
    - [Cat_exec]: issued, no miss outstanding;
    - [Cat_other]: neither (branch bubbles, flushes, front-end stalls).

    Per-static-load level counters (main thread only) drive Figure 9,
    including partial hits (line already in transit). *)

type category = Cat_l3 | Cat_l2 | Cat_l1 | Cat_cache_exec | Cat_exec | Cat_other

type load_site = {
  mutable accesses : int;
  mutable l1 : int;
  mutable l2 : int;
  mutable l2_partial : int;
  mutable l3 : int;
  mutable l3_partial : int;
  mutable mem : int;
  mutable mem_partial : int;
}

type t = {
  mutable cycles : int;
  mutable main_instrs : int;
  mutable spec_instrs : int;
  mutable spawns : int;
  mutable chk_fired : int;
  mutable mispredicts : int;
  mutable prefetches : int;
  categories : int array;  (** indexed by {!category_index} *)
  loads : load_site Ssp_ir.Iref.Tbl.t;
  mutable outputs : int64 list;  (** program order; filled by {!finish} *)
  mutable out_buf : int64 array;  (** growable output buffer, program order *)
  mutable out_n : int;
  mutable sites : load_site option array;
      (** pc-indexed load-site counters (see {!Layout}); merged into
          [loads] by {!finish} *)
}

val create : unit -> t
val category_index : category -> int
val add_category : t -> category -> unit
val load_site : t -> Ssp_ir.Iref.t -> load_site

val push_output : t -> int64 -> unit
(** Append to the growable output buffer: order-correct by construction,
    amortized allocation-free. *)

val ensure_sites : t -> int -> unit
(** Size the pc-indexed site array (once, at machine creation). *)

val record_load : t -> Ssp_ir.Iref.t -> Hierarchy.level -> partial:bool -> unit

val record_load_pc : t -> pc:int -> Hierarchy.level -> partial:bool -> unit
(** Allocation-light per-site recording by dense pc id; requires
    [ensure_sites] to have covered [pc]. *)

val finish : ?irefs:Ssp_ir.Iref.t array -> t -> t
(** Publish [outputs] (buffered outputs are already in program order; any
    legacy cons-accumulated list is reversed and prepended) and, given the
    layout's [irefs], merge pc-indexed site counters into [loads]. *)

val ipc : t -> float
val pp : Format.formatter -> t -> unit
