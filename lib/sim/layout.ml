module Bundle = Ssp_isa.Bundle

type entry = {
  func : Ssp_ir.Prog.func;
  block_base : int array;
  bundle_idx : int array array;
  blk0_iaddr : int array;
  dec : Decode.t;
}

type t = {
  tbl : (string, entry) Hashtbl.t;
  by_index : entry array;
  n_pcs : int;
  irefs : Ssp_ir.Iref.t array;
}

let code_base = 0x4000_0000L
let code_base_i = 0x4000_0000

let dummy =
  { func = Thread.no_func; block_base = [||]; bundle_idx = [||];
    blk0_iaddr = [||]; dec = Decode.empty }

(* Numbering matches the historical pcmap exactly: functions in
   [funcs_in_order] order, blocks sequential within a function — so branch
   predictor and BTB indices are unchanged by the flat-table rewrite. *)
let of_prog (prog : Ssp_ir.Prog.t) =
  let tbl = Hashtbl.create 16 in
  let next = ref 0 in
  let entries = ref [] in
  let funcs = Ssp_ir.Prog.funcs_in_order prog in
  let fidx = Hashtbl.create 16 in
  List.iteri
    (fun i (f : Ssp_ir.Prog.func) -> Hashtbl.replace fidx f.name i)
    funcs;
  let func_index name =
    match Hashtbl.find_opt fidx name with Some i -> i | None -> -1
  in
  List.iter
    (fun (f : Ssp_ir.Prog.func) ->
      let nb = Array.length f.blocks in
      let block_base = Array.make nb 0 in
      Array.iteri
        (fun i (b : Ssp_ir.Prog.block) ->
          block_base.(i) <- !next;
          next := !next + Array.length b.ops)
        f.blocks;
      let bundle_idx =
        Array.map
          (fun (b : Ssp_ir.Prog.block) ->
            let idx = Array.make (Array.length b.ops) 0 in
            List.iteri
              (fun bi (bd : Bundle.t) ->
                for k = bd.Bundle.start to bd.Bundle.start + bd.Bundle.len - 1
                do
                  idx.(k) <- bi
                done)
              (Bundle.of_block b.ops);
            idx)
          f.blocks
      in
      let blk0_iaddr =
        Array.map (fun base -> code_base_i + (16 * base)) block_base
      in
      let e =
        { func = f; block_base; bundle_idx; blk0_iaddr;
          dec = Decode.decode_func ~func_index f }
      in
      Hashtbl.replace tbl f.name e;
      entries := e :: !entries)
    funcs;
  let n_pcs = !next in
  let irefs = Array.make (max 1 n_pcs) (Ssp_ir.Iref.make "" 0 0) in
  List.iter
    (fun e ->
      Array.iteri
        (fun bi (b : Ssp_ir.Prog.block) ->
          let base = e.block_base.(bi) in
          Array.iteri
            (fun ii _ ->
              irefs.(base + ii) <- Ssp_ir.Iref.make e.func.Ssp_ir.Prog.name bi ii)
            b.ops)
        e.func.Ssp_ir.Prog.blocks)
    !entries;
  let by_index =
    Array.of_list
      (List.map
         (fun (f : Ssp_ir.Prog.func) -> Hashtbl.find tbl f.name)
         funcs)
  in
  { tbl; by_index; n_pcs; irefs }

let find t fn = Hashtbl.find_opt t.tbl fn

let pc_id (e : entry) ~blk ~ins = e.block_base.(blk) + ins

let pc_addr (e : entry) ~blk ~ins =
  Int64.add code_base (Int64.of_int (16 * pc_id e ~blk ~ins))

let iref_of t pc = t.irefs.(pc)
