open Ssp_machine
module T = Ssp_telemetry.Telemetry
module F = Ssp_fault.Fault

(* Simulator fault sites (see lib/fault): all of them perturb only the
   speculative machinery or the memory-system timing, so under any fault
   plan the main thread's architectural outputs stay bit-identical —
   the invariant the chaos harness checks. *)
let site_kill = F.site "sim.spec.kill"
let site_spawn_deny = F.site "sim.spawn.deny"
let site_spawn_delay = F.site "sim.spawn.delay"
let site_starve = F.site "sim.context.starve"
let site_chain_break = F.site "sim.chain.break"

type pcmap = {
  bases : (string, int array) Hashtbl.t;  (* per func: block start offsets *)
  func_base : (string, int) Hashtbl.t;
}

let pcmap_of (prog : Ssp_ir.Prog.t) =
  let bases = Hashtbl.create 16 and func_base = Hashtbl.create 16 in
  let next = ref 0 in
  List.iter
    (fun (f : Ssp_ir.Prog.func) ->
      Hashtbl.replace func_base f.name !next;
      let offs = Array.make (Array.length f.blocks) 0 in
      let o = ref 0 in
      Array.iteri
        (fun i (b : Ssp_ir.Prog.block) ->
          offs.(i) <- !o;
          o := !o + Array.length b.ops)
        f.blocks;
      Hashtbl.replace bases f.name offs;
      next := !next + !o)
    (Ssp_ir.Prog.funcs_in_order prog);
  { bases; func_base }

let pc_id t ~fn ~blk ~ins =
  match (Hashtbl.find_opt t.func_base fn, Hashtbl.find_opt t.bases fn) with
  | Some base, Some offs -> base + offs.(blk) + ins
  | _ -> 0

let code_base = 0x4000_0000L

let pc_addr t ~fn ~blk ~ins =
  Int64.add code_base (Int64.of_int (16 * pc_id t ~fn ~blk ~ins))

type context = {
  thread : Thread.t;
  mutable redirect_until : int;
  reg_ready : int array;
  reg_level : Hierarchy.level option array;
  mutable fills : (Hierarchy.level * int) list;
  mutable bundle_left : int;
  mutable last_chk_fire : int;
  mutable spawned_at : int;  (* cycle the current speculative thread began; -1 idle *)
  mutable spawn_src : Ssp_ir.Iref.t option;  (* Spawn instruction that bound it *)
  mutable spawn_target : string;  (* "fn#blk" label for timelines *)
}

type machine = {
  cfg : Config.t;
  prog : Ssp_ir.Prog.t;
  mem : Memory.t;
  hier : Hierarchy.t;
  bp : Bpred.t;
  pcs : pcmap;
  ctxs : context array;
  stats : Stats.t;
  mutable rr : int;
  delinquent : Ssp_ir.Iref.Set.t;
  mutable last_spawned : int;  (* context id bound by the latest try_spawn *)
  attrib : Attrib.t option;
  tel_spawns : T.counter;
  tel_spawn_denied : T.counter;
  tel_watchdog_kills : T.counter;
}

let new_context id =
  {
    thread = Thread.create ~id;
    redirect_until = 0;
    reg_ready = Array.make Ssp_isa.Reg.count 0;
    reg_level = Array.make Ssp_isa.Reg.count None;
    fills = [];
    bundle_left = 0;
    last_chk_fire = min_int / 2;
    spawned_at = -1;
    spawn_src = None;
    spawn_target = "";
  }

let create ?attrib cfg prog =
  let ctxs = Array.init cfg.Config.n_contexts new_context in
  let main = ctxs.(0).thread in
  main.Thread.fn <- prog.Ssp_ir.Prog.entry;
  main.Thread.active <- true;
  Thread.set main Ssp_isa.Reg.sp Ssp_ir.Prog.stack_base;
  let delinquent =
    match cfg.Config.memory_mode with
    | Config.Perfect_delinquent s -> s
    | Config.Normal | Config.Perfect_memory -> Ssp_ir.Iref.Set.empty
  in
  let hier = Hierarchy.create cfg in
  (match attrib with Some a -> Hierarchy.set_attrib hier a | None -> ());
  {
    cfg;
    prog;
    mem = Memory.create ();
    hier;
    bp = Bpred.create cfg;
    pcs = pcmap_of prog;
    ctxs;
    stats = Stats.create ();
    rr = 0;
    delinquent;
    last_spawned = -1;
    attrib;
    tel_spawns = T.counter "sim.spawns";
    tel_spawn_denied = T.counter "sim.spawn_denied";
    tel_watchdog_kills = T.counter "sim.watchdog_kills";
  }

let free_count m =
  let n = ref 0 in
  Array.iteri
    (fun i c -> if i > 0 && not c.thread.Thread.active then incr n)
    m.ctxs;
  !n

(* The chk.c firing policy: a free context (or several, per config), and a
   refractory interval per triggering thread to bound flush costs. The
   caller must have set [cur] to the checking context. *)
let chk_allowed m ~now (ctx : context) =
  free_count m >= m.cfg.Config.chk_min_free
  && now - ctx.last_chk_fire >= m.cfg.Config.chk_refractory
  && (not (F.fire site_starve))
  && (ctx.last_chk_fire <- now;
      true)

let free_context m =
  let n = Array.length m.ctxs in
  let rec go i =
    if i >= n then None
    else if not m.ctxs.(i).thread.Thread.active then Some m.ctxs.(i)
    else go (i + 1)
  in
  go 1

(* The end of a speculative occupancy: record its lifetime and emit its
   timeline slice. Idempotent per occupancy ([spawned_at] is reset). *)
let note_thread_end m (ctx : context) ~now ~watchdog =
  if ctx.spawned_at >= 0 then begin
    (match m.attrib with
    | Some a -> Attrib.thread_end a ~spawned_at:ctx.spawned_at ~now ~watchdog
    | None -> ());
    if T.events_on () then
      T.emit_complete ~cat:"spec_thread" ~pid:T.pid_sim
        ~tid:ctx.thread.Thread.id
        ~ts:(float_of_int ctx.spawned_at)
        ~dur:(float_of_int (max 0 (now - ctx.spawned_at)))
        ~args:
          [
            ("target", ctx.spawn_target);
            ("watchdog", if watchdog then "true" else "false");
          ]
        (if ctx.spawn_target = "" then "spec" else ctx.spawn_target);
    ctx.spawned_at <- -1;
    ctx.spawn_src <- None
  end

let try_spawn m ~now ~src ~fn ~blk ~live_in =
  match if F.fire site_spawn_deny then None else free_context m with
  | None ->
    T.incr m.tel_spawn_denied;
    (match m.attrib with Some a -> Attrib.spawn_denied a ~src | None -> ());
    false
  | Some ctx ->
    (* A context can be freed by the issue loop without the end having
       been noted (e.g. the previous occupant was killed this cycle). *)
    note_thread_end m ctx ~now ~watchdog:false;
    Thread.reset_for_spawn ctx.thread ~fn ~blk ~live_in
      ~rand_state:(Int64.of_int ((ctx.thread.Thread.id * 1103515245) + 12345));
    Array.fill ctx.reg_ready 0 (Array.length ctx.reg_ready) 0;
    Array.fill ctx.reg_level 0 (Array.length ctx.reg_level) None;
    ctx.fills <- [];
    ctx.redirect_until <-
      now + m.cfg.Config.spawn_latency + m.cfg.Config.lib_latency
      + (if F.fire site_spawn_delay then 64 else 0);
    ctx.spawned_at <- now;
    ctx.spawn_src <- Some src;
    ctx.spawn_target <-
      (if m.attrib <> None || T.events_on () then
         fn ^ "#" ^ string_of_int blk
       else "");
    m.stats.Stats.spawns <- m.stats.Stats.spawns + 1;
    T.incr m.tel_spawns;
    (match m.attrib with Some a -> Attrib.spawned a ~src | None -> ());
    m.last_spawned <- ctx.thread.Thread.id;
    true

let select_threads m ~eligible =
  (* The non-speculative thread has priority for fetch/issue slots;
     speculative contexts share the remainder round-robin. Helper threads
     must not slow the thread they are helping. *)
  let n = Array.length m.ctxs in
  let picked = ref [] in
  let count = ref 0 in
  if eligible m.ctxs.(0) then begin
    picked := [ m.ctxs.(0) ];
    count := 1
  end;
  for k = 0 to n - 2 do
    let i = 1 + ((m.rr + k) mod (n - 1)) in
    let c = m.ctxs.(i) in
    if !count < m.cfg.Config.issue_threads && eligible c then begin
      picked := c :: !picked;
      incr count
    end
  done;
  m.rr <- (m.rr + 1) mod (max 1 (n - 1));
  List.rev !picked

let level_rank = function
  | Hierarchy.L1 -> 1
  | Hierarchy.L2 -> 2
  | Hierarchy.L3 -> 3
  | Hierarchy.Mem -> 4

let outstanding_level ctx ~now =
  ctx.fills <- List.filter (fun (_, ready) -> ready > now) ctx.fills;
  List.fold_left
    (fun acc (lvl, _) ->
      match acc with
      | None -> Some lvl
      | Some best -> if level_rank lvl > level_rank best then Some lvl else acc)
    None ctx.fills

(* A speculative demand load at a slice site that maps back to a
   delinquent load IS the prefetch for value-used targets (no lfetch is
   emitted for those); tag it so attribution sees it as an issue. *)
let pf_tag_of m (ctx : context) iref =
  match m.attrib with
  | Some a when ctx.thread.Thread.id <> 0 -> (
    match Attrib.target_of a iref with
    | Some target ->
      Some
        {
          Attrib.target;
          site = iref;
          ctx = ctx.thread.Thread.id;
          spawn_src = ctx.spawn_src;
        }
    | None -> None)
  | _ -> None

let demand_access m ~now ~ctx ~iref addr =
  let perfect = Ssp_ir.Iref.Set.mem iref m.delinquent in
  (* Speculative-thread misses must not starve the main thread's demand
     misses out of the fill buffer. *)
  let low_priority = ctx.thread.Thread.id <> 0 in
  let o =
    if perfect then Hierarchy.perfect_hit m.hier ~now
    else
      Hierarchy.access m.hier ~now ~low_priority ?pf_tag:(pf_tag_of m ctx iref)
        ~demand_iref:iref
        ~demand_main:(ctx.thread.Thread.id = 0)
        addr
  in
  if ctx.thread.Thread.id = 0 then
    Stats.record_load m.stats iref o.Hierarchy.level
      ~partial:o.Hierarchy.partial;
  (* Track the fill for stall attribution if it is an L1 miss. *)
  (match o.Hierarchy.level with
  | Hierarchy.L1 -> ()
  | lvl -> ctx.fills <- (lvl, o.Hierarchy.ready) :: ctx.fills);
  o

let watchdog_check m ~now ctx =
  let th = ctx.thread in
  if th.Thread.speculative && th.Thread.active then
    if th.Thread.instrs > m.cfg.Config.spec_watchdog then begin
      T.incr m.tel_watchdog_kills;
      th.Thread.active <- false;
      note_thread_end m ctx ~now ~watchdog:true
    end
    else if F.fire site_kill then begin
      (* Injected random spec-thread kill: ends the occupancy exactly the
         way a watchdog kill does, minus the watchdog counter. *)
      th.Thread.active <- false;
      note_thread_end m ctx ~now ~watchdog:true
    end
