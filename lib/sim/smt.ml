open Ssp_machine
module T = Ssp_telemetry.Telemetry
module F = Ssp_fault.Fault

(* Simulator fault sites (see lib/fault): all of them perturb only the
   speculative machinery or the memory-system timing, so under any fault
   plan the main thread's architectural outputs stay bit-identical —
   the invariant the chaos harness checks. *)
let site_kill = F.site "sim.spec.kill"
let site_spawn_deny = F.site "sim.spawn.deny"
let site_spawn_delay = F.site "sim.spawn.delay"
let site_starve = F.site "sim.context.starve"
let site_chain_break = F.site "sim.chain.break"

(* Sampled simulation: alternate [detail_window] cycle-accurate main-thread
   instructions with [ff_window] functionally-warmed fast-forward ones. *)
type sampling = { detail_window : int; ff_window : int }

(* 10% detailed with a short period: many small windows average over
   program phases far better than a few large ones at the same ratio.
   Validated by the sampled-accuracy tests (IPC within a few percent of a
   full run on every suite workload). *)
let default_sampling = { detail_window = 500; ff_window = 4_500 }

(* splitmix64, for the fast-forward length jitter below. *)
let sm64 (st : int64 ref) =
  st := Int64.add !st 0x9E3779B97F4A7C15L;
  let z = !st in
  let z =
    Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30))
      0xBF58476D1CE4E5B9L
  in
  let z =
    Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27))
      0x94D049BB133111EBL
  in
  Int64.logxor z (Int64.shift_right_logical z 31)

let jitter_seed = 0x5350_4331L

(* Strictly periodic sampling resonates with loop periodicity (a window
   landing always on the same phase of an inner loop biases the estimate
   arbitrarily badly); drawing each fast-forward's length uniformly from
   [0.5, 1.5)x the nominal window de-correlates the sample points. The
   stream is seeded by a constant, so runs stay bit-reproducible. *)
let ff_jitter st ~window =
  let r = Int64.to_int (Int64.logand (sm64 st) 0xFFFFL) in
  let f = 0.5 +. (float_of_int r /. 65536.0) in
  max 1 (int_of_float (float_of_int window *. f))

type context = {
  thread : Thread.t;
  mutable redirect_until : int;
  reg_ready : int array;
  fill_ready : int array;
  mutable bundle_left : int;
  mutable last_chk_fire : int;
  mutable spawned_at : int;  (* cycle the current speculative thread began; -1 idle *)
  mutable spawn_src : Ssp_ir.Iref.t option;  (* Spawn instruction that bound it *)
  mutable spawn_target : string;  (* "fn#blk" label for timelines *)
  lay_fns : string array;  (* physical-equality keys of [lays], MRU first *)
  lays : Layout.entry array;
}

type machine = {
  cfg : Config.t;
  prog : Ssp_ir.Prog.t;
  mem : Memory.t;
  hier : Hierarchy.t;
  bp : Bpred.t;
  lay : Layout.t;
  ctxs : context array;
  sel : context array;
  stats : Stats.t;
  mutable rr : int;
  delinquent_pc : bool array;
  mutable last_spawned : int;  (* context id bound by the latest try_spawn *)
  mutable ff : bool;  (* inside a fast-forward window *)
  attrib : Attrib.t option;
  tel_spawns : T.counter;
  tel_spawn_denied : T.counter;
  tel_watchdog_kills : T.counter;
}

let new_context id =
  {
    thread = Thread.create ~id;
    redirect_until = 0;
    reg_ready = Array.make Ssp_isa.Reg.count 0;
    fill_ready = Array.make 5 0;
    bundle_left = 0;
    last_chk_fire = min_int / 2;
    spawned_at = -1;
    spawn_src = None;
    spawn_target = "";
    lay_fns = Array.init 4 (fun _ -> String.make 1 '\000');
    lays = Array.make 4 Layout.dummy;
  }

let create ?attrib cfg prog =
  let ctxs = Array.init cfg.Config.n_contexts new_context in
  let main = ctxs.(0).thread in
  main.Thread.fn <- prog.Ssp_ir.Prog.entry;
  main.Thread.active <- true;
  Thread.set main Ssp_isa.Reg.sp Ssp_ir.Prog.stack_base;
  let lay = Layout.of_prog prog in
  let delinquent_pc = Array.make (max 1 lay.Layout.n_pcs) false in
  (match cfg.Config.memory_mode with
  | Config.Perfect_delinquent s ->
    Array.iteri
      (fun pc iref ->
        if Ssp_ir.Iref.Set.mem iref s then delinquent_pc.(pc) <- true)
      lay.Layout.irefs
  | Config.Normal | Config.Perfect_memory -> ());
  let hier = Hierarchy.create cfg in
  (match attrib with Some a -> Hierarchy.set_attrib hier a | None -> ());
  let stats = Stats.create () in
  Stats.ensure_sites stats lay.Layout.n_pcs;
  {
    cfg;
    prog;
    mem = Memory.create ();
    hier;
    bp = Bpred.create cfg;
    lay;
    ctxs;
    sel = Array.copy ctxs;
    stats;
    rr = 0;
    delinquent_pc;
    last_spawned = -1;
    ff = false;
    attrib;
    tel_spawns = T.counter "sim.spawns";
    tel_spawn_denied = T.counter "sim.spawn_denied";
    tel_watchdog_kills = T.counter "sim.watchdog_kills";
  }

(* The context's current layout entry, memoized exactly like the thread's
   function record (four move-to-front physical-equality slots, so a loop
   cycling through a few functions stays off the Hashtbl — see
   [Exec.func_of]). *)
let lay_promote (ctx : context) i fn e =
  let fns = ctx.lay_fns and ls = ctx.lays in
  for j = i downto 1 do
    fns.(j) <- fns.(j - 1);
    ls.(j) <- ls.(j - 1)
  done;
  fns.(0) <- fn;
  ls.(0) <- e

let layout_of m (ctx : context) =
  let fn = ctx.thread.Thread.fn in
  let fns = ctx.lay_fns in
  if Array.unsafe_get fns 0 == fn then Array.unsafe_get ctx.lays 0
  else if Array.unsafe_get fns 1 == fn then begin
    let e = ctx.lays.(1) in
    lay_promote ctx 1 fn e;
    e
  end
  else if Array.unsafe_get fns 2 == fn then begin
    let e = ctx.lays.(2) in
    lay_promote ctx 2 fn e;
    e
  end
  else if Array.unsafe_get fns 3 == fn then begin
    let e = ctx.lays.(3) in
    lay_promote ctx 3 fn e;
    e
  end
  else
    match Layout.find m.lay fn with
    | Some e ->
      lay_promote ctx 3 fn e;
      e
    | None -> invalid_arg (Printf.sprintf "Smt.layout_of: no function %s" fn)

let free_count m =
  let n = ref 0 in
  Array.iteri
    (fun i c -> if i > 0 && not c.thread.Thread.active then incr n)
    m.ctxs;
  !n

(* The chk.c firing policy: a free context (or several, per config), and a
   refractory interval per triggering thread to bound flush costs. The
   caller must have set [cur] to the checking context. Never fires inside a
   fast-forward window (no timing context to spawn into; architecturally a
   chk.c that does not fire is a nop, so outputs are unaffected). *)
let chk_allowed m ~now (ctx : context) =
  (not m.ff)
  && free_count m >= m.cfg.Config.chk_min_free
  && now - ctx.last_chk_fire >= m.cfg.Config.chk_refractory
  && (not (F.fire site_starve))
  && (ctx.last_chk_fire <- now;
      true)

let free_context m =
  let n = Array.length m.ctxs in
  let rec go i =
    if i >= n then None
    else if not m.ctxs.(i).thread.Thread.active then Some m.ctxs.(i)
    else go (i + 1)
  in
  go 1

(* The end of a speculative occupancy: record its lifetime and emit its
   timeline slice. Idempotent per occupancy ([spawned_at] is reset). *)
let note_thread_end m (ctx : context) ~now ~watchdog =
  if ctx.spawned_at >= 0 then begin
    (match m.attrib with
    | Some a -> Attrib.thread_end a ~spawned_at:ctx.spawned_at ~now ~watchdog
    | None -> ());
    if T.events_on () then
      T.emit_complete ~cat:"spec_thread" ~pid:T.pid_sim
        ~tid:ctx.thread.Thread.id
        ~ts:(float_of_int ctx.spawned_at)
        ~dur:(float_of_int (max 0 (now - ctx.spawned_at)))
        ~args:
          [
            ("target", ctx.spawn_target);
            ("watchdog", if watchdog then "true" else "false");
          ]
        (if ctx.spawn_target = "" then "spec" else ctx.spawn_target);
    ctx.spawned_at <- -1;
    ctx.spawn_src <- None
  end

let try_spawn m ~now ~src ~fn ~blk ~live_in =
  match if F.fire site_spawn_deny then None else free_context m with
  | None ->
    T.incr m.tel_spawn_denied;
    (match m.attrib with Some a -> Attrib.spawn_denied a ~src | None -> ());
    false
  | Some ctx ->
    (* A context can be freed by the issue loop without the end having
       been noted (e.g. the previous occupant was killed this cycle). *)
    note_thread_end m ctx ~now ~watchdog:false;
    Thread.reset_for_spawn ctx.thread ~fn ~blk ~live_in
      ~rand_state:(Int64.of_int ((ctx.thread.Thread.id * 1103515245) + 12345));
    Array.fill ctx.reg_ready 0 (Array.length ctx.reg_ready) 0;
    Array.fill ctx.fill_ready 0 (Array.length ctx.fill_ready) 0;
    ctx.redirect_until <-
      now + m.cfg.Config.spawn_latency + m.cfg.Config.lib_latency
      + (if F.fire site_spawn_delay then 64 else 0);
    ctx.spawned_at <- now;
    ctx.spawn_src <- Some src;
    ctx.spawn_target <-
      (if m.attrib <> None || T.events_on () then
         fn ^ "#" ^ string_of_int blk
       else "");
    m.stats.Stats.spawns <- m.stats.Stats.spawns + 1;
    T.incr m.tel_spawns;
    (match m.attrib with Some a -> Attrib.spawned a ~src | None -> ());
    m.last_spawned <- ctx.thread.Thread.id;
    true

(* Fill [m.sel] with up to [issue_threads] eligible contexts — the
   non-speculative thread first (it has priority for fetch/issue slots),
   speculative contexts round-robin — and return how many. The scratch
   array replaces the per-cycle list the old selector consed. *)
let select_threads m ~eligible =
  let n = Array.length m.ctxs in
  let count = ref 0 in
  if eligible m.ctxs.(0) then begin
    m.sel.(0) <- m.ctxs.(0);
    count := 1
  end;
  for k = 0 to n - 2 do
    let i = 1 + ((m.rr + k) mod (n - 1)) in
    let c = m.ctxs.(i) in
    if !count < m.cfg.Config.issue_threads && eligible c then begin
      m.sel.(!count) <- c;
      incr count
    end
  done;
  m.rr <- (m.rr + 1) mod (max 1 (n - 1));
  !count

let level_rank = function
  | Hierarchy.L1 -> 1
  | Hierarchy.L2 -> 2
  | Hierarchy.L3 -> 3
  | Hierarchy.Mem -> 4

(* Deepest level-rank among the thread's outstanding fills (0 = none): the
   per-rank max ready cycle is outstanding iff it is still in the future.
   Replaces filtering a (level, ready) list every cycle. *)
let outstanding_rank (ctx : context) ~now =
  if ctx.fill_ready.(4) > now then 4
  else if ctx.fill_ready.(3) > now then 3
  else if ctx.fill_ready.(2) > now then 2
  else 0

(* A speculative demand load at a slice site that maps back to a
   delinquent load IS the prefetch for value-used targets (no lfetch is
   emitted for those); tag it so attribution sees it as an issue. *)
let pf_tag_of m (ctx : context) iref =
  match m.attrib with
  | Some a when ctx.thread.Thread.id <> 0 -> (
    match Attrib.target_of a iref with
    | Some target ->
      Some
        {
          Attrib.target;
          site = iref;
          ctx = ctx.thread.Thread.id;
          spawn_src = ctx.spawn_src;
        }
    | None -> None)
  | _ -> None

let demand_access m ~now ~ctx ~pc addr =
  let perfect = m.delinquent_pc.(pc) in
  (* Speculative-thread misses must not starve the main thread's demand
     misses out of the fill buffer. *)
  let low_priority = ctx.thread.Thread.id <> 0 in
  let o =
    if perfect then Hierarchy.perfect_hit m.hier ~now
    else
      match m.attrib with
      | None -> Hierarchy.demand m.hier ~now ~low_priority addr
      | Some _ ->
        let iref = Layout.iref_of m.lay pc in
        Hierarchy.access m.hier ~now ~low_priority
          ?pf_tag:(pf_tag_of m ctx iref) ~demand_iref:iref
          ~demand_main:(not low_priority) addr
  in
  if ctx.thread.Thread.id = 0 then
    Stats.record_load_pc m.stats ~pc o.Hierarchy.level
      ~partial:o.Hierarchy.partial;
  (* Track the fill for stall attribution if it is an L1 miss. *)
  (match o.Hierarchy.level with
  | Hierarchy.L1 -> ()
  | lvl ->
    let r = level_rank lvl in
    if o.Hierarchy.ready > ctx.fill_ready.(r) then
      ctx.fill_ready.(r) <- o.Hierarchy.ready);
  o

let watchdog_check m ~now ctx =
  let th = ctx.thread in
  if th.Thread.speculative && th.Thread.active then
    if th.Thread.instrs > m.cfg.Config.spec_watchdog then begin
      T.incr m.tel_watchdog_kills;
      th.Thread.active <- false;
      note_thread_end m ctx ~now ~watchdog:true
    end
    else if F.fire site_kill then begin
      (* Injected random spec-thread kill: ends the occupancy exactly the
         way a watchdog kill does, minus the watchdog counter. *)
      th.Thread.active <- false;
      note_thread_end m ctx ~now ~watchdog:true
    end

(* Fast-forward the main thread [instrs] architectural instructions with
   functional warming: memory state, outputs, caches and branch predictor
   advance; the clock does not. Live speculative threads are ended first
   (their timing context is meaningless across the gap; architecturally
   they never affect main-thread state). Returns the instruction count
   actually executed (the main thread may halt mid-window). *)
let fast_forward m (env : Exec.env) ~now ~instrs =
  m.ff <- true;
  Array.iteri
    (fun i (c : context) ->
      if i > 0 && c.thread.Thread.active then begin
        c.thread.Thread.active <- false;
        note_thread_end m c ~now ~watchdog:false
      end)
    m.ctxs;
  let main = m.ctxs.(0) in
  let th = main.thread in
  let done_ = ref 0 in
  Hierarchy.reset_warm_filter m.hier;
  (* Decoded-stream interpreter. The opcode literals below mirror
     [Decode.enc]'s map exactly (see decode.ml for the word layout); the
     sampling accuracy tests pin the two representations together by
     asserting that sampled and full runs produce identical outputs.

     Invariants the loop leans on: only the main thread runs here (so
     stores always commit — the thread is never speculative), register
     fields were range-validated by every producer (so reads use
     [unsafe_get]), and r0 is never written (so reading [regs.(0)] always
     yields the hardwired zero without a branch). [fn] only changes at
     calls and returns, so the current layout entry lives in a local
     refreshed on those events. *)
  let hier = m.hier in
  let bp = m.bp in
  let regs = th.Thread.regs in
  let mem = env.Exec.mem in
  let e = ref (layout_of m main) in
  while !done_ < instrs && th.Thread.active do
    let dec = (!e).Layout.dec in
    let code = dec.Decode.code in
    let nb = Array.length code in
    while
      th.Thread.blk < nb
      && th.Thread.ins >= Array.length (Array.unsafe_get code th.Thread.blk)
    do
      th.Thread.blk <- th.Thread.blk + 1;
      th.Thread.ins <- 0
    done;
    let blk = th.Thread.blk and ins = th.Thread.ins in
    let w = code.(blk).(ins) in
    if ins = 0 then
      Hierarchy.warm_ifetch_i hier (Array.unsafe_get (!e).Layout.blk0_iaddr blk);
    incr done_;
    th.Thread.instrs <- th.Thread.instrs + 1;
    (match w land 63 with
    | 0 -> th.Thread.ins <- ins + 1 (* nop *)
    | 1 ->
      (* movi *)
      let d = (w lsr 6) land 127 in
      if d <> 0 then
        Array.unsafe_set regs d (Array.unsafe_get dec.Decode.imms (w asr 27));
      th.Thread.ins <- ins + 1
    | 2 ->
      (* mov *)
      let d = (w lsr 6) land 127 in
      if d <> 0 then
        Array.unsafe_set regs d (Array.unsafe_get regs ((w lsr 13) land 127));
      th.Thread.ins <- ins + 1
    | (3 | 4 | 5 | 6 | 7 | 8 | 9 | 10 | 11 | 12) as opc ->
      (* alu: add sub mul div rem and or xor shl shr *)
      let a = Array.unsafe_get regs ((w lsr 13) land 127)
      and b = Array.unsafe_get regs ((w lsr 20) land 127) in
      let v =
        match opc with
        | 3 -> Int64.add a b
        | 4 -> Int64.sub a b
        | 5 -> Int64.mul a b
        | 6 -> if Int64.equal b 0L then 0L else Int64.div a b
        | 7 -> if Int64.equal b 0L then 0L else Int64.rem a b
        | 8 -> Int64.logand a b
        | 9 -> Int64.logor a b
        | 10 -> Int64.logxor a b
        | 11 -> Int64.shift_left a (Int64.to_int b land 63)
        | _ -> Int64.shift_right a (Int64.to_int b land 63)
      in
      let d = (w lsr 6) land 127 in
      if d <> 0 then Array.unsafe_set regs d v;
      th.Thread.ins <- ins + 1
    | (13 | 14 | 15 | 16 | 17 | 18 | 19 | 20 | 21 | 22) as opc ->
      (* alui *)
      let a = Array.unsafe_get regs ((w lsr 13) land 127)
      and b = Array.unsafe_get dec.Decode.imms (w asr 27) in
      let v =
        match opc with
        | 13 -> Int64.add a b
        | 14 -> Int64.sub a b
        | 15 -> Int64.mul a b
        | 16 -> if Int64.equal b 0L then 0L else Int64.div a b
        | 17 -> if Int64.equal b 0L then 0L else Int64.rem a b
        | 18 -> Int64.logand a b
        | 19 -> Int64.logor a b
        | 20 -> Int64.logxor a b
        | 21 -> Int64.shift_left a (Int64.to_int b land 63)
        | _ -> Int64.shift_right a (Int64.to_int b land 63)
      in
      let d = (w lsr 6) land 127 in
      if d <> 0 then Array.unsafe_set regs d v;
      th.Thread.ins <- ins + 1
    | (23 | 24 | 25 | 26 | 27 | 28) as opc ->
      (* cmp: eq ne lt le gt ge *)
      let a = Array.unsafe_get regs ((w lsr 13) land 127)
      and b = Array.unsafe_get regs ((w lsr 20) land 127) in
      let c = Int64.compare a b in
      let v =
        match opc with
        | 23 -> c = 0
        | 24 -> c <> 0
        | 25 -> c < 0
        | 26 -> c <= 0
        | 27 -> c > 0
        | _ -> c >= 0
      in
      let d = (w lsr 6) land 127 in
      if d <> 0 then Array.unsafe_set regs d (if v then 1L else 0L);
      th.Thread.ins <- ins + 1
    | (29 | 30 | 31 | 32 | 33 | 34) as opc ->
      (* cmpi *)
      let a = Array.unsafe_get regs ((w lsr 13) land 127)
      and b = Array.unsafe_get dec.Decode.imms (w asr 27) in
      let c = Int64.compare a b in
      let v =
        match opc with
        | 29 -> c = 0
        | 30 -> c <> 0
        | 31 -> c < 0
        | 32 -> c <= 0
        | 33 -> c > 0
        | _ -> c >= 0
      in
      let d = (w lsr 6) land 127 in
      if d <> 0 then Array.unsafe_set regs d (if v then 1L else 0L);
      th.Thread.ins <- ins + 1
    | (35 | 36 | 37 | 38) as opc ->
      (* load, widths 1 2 4 8 *)
      let base = Array.unsafe_get regs ((w lsr 13) land 127) in
      let addr = (Int64.to_int base + (w asr 27)) land max_int in
      let v = Memory.read_i mem addr (1 lsl (opc - 35)) in
      let d = (w lsr 6) land 127 in
      if d <> 0 then Array.unsafe_set regs d v;
      th.Thread.ins <- ins + 1;
      Hierarchy.warm_i hier addr
    | (39 | 40 | 41 | 42) as opc ->
      (* store, widths 1 2 4 8 *)
      let base = Array.unsafe_get regs ((w lsr 13) land 127) in
      let addr = (Int64.to_int base + (w asr 27)) land max_int in
      Memory.write_i mem addr
        (1 lsl (opc - 39))
        (Array.unsafe_get regs ((w lsr 6) land 127));
      th.Thread.ins <- ins + 1;
      Hierarchy.warm_i hier addr
    | 43 ->
      (* lfetch: warm the target line — the timed runs' prefetch traffic
         fills the hierarchy, so skipping it would leave the next detailed
         window colder than a full run *)
      let base = Array.unsafe_get regs ((w lsr 13) land 127) in
      let addr = (Int64.to_int base + (w asr 27)) land max_int in
      th.Thread.ins <- ins + 1;
      Hierarchy.warm_i hier addr
    | 44 ->
      (* br *)
      let pc = Array.unsafe_get (!e).Layout.block_base blk + ins in
      th.Thread.blk <- w asr 27;
      th.Thread.ins <- 0;
      if not (Bpred.btb_lookup bp ~pc) then Bpred.btb_insert bp ~pc
    | (45 | 46) as opc ->
      (* brnz / brz *)
      let z =
        Int64.equal (Array.unsafe_get regs ((w lsr 13) land 127)) 0L
      in
      let taken = if opc = 45 then not z else z in
      let pc = Array.unsafe_get (!e).Layout.block_base blk + ins in
      Bpred.update bp ~thread:0 ~pc ~taken;
      if taken then begin
        th.Thread.blk <- w asr 27;
        th.Thread.ins <- 0;
        if not (Bpred.btb_lookup bp ~pc) then Bpred.btb_insert bp ~pc
      end
      else th.Thread.ins <- ins + 1
    | 47 ->
      (* call: save only the caller's mentioned stacked-register prefix —
         the return restores [saved_n], so the code resuming after it sees
         every register it can read *)
      let fr = Thread.push_frame th ~ret_blk:blk ~ret_ins:(ins + 1) in
      let k = dec.Decode.n_save in
      fr.Thread.saved_n <- k;
      Array.blit regs Ssp_isa.Reg.first_stacked fr.Thread.saved_stacked 0 k;
      let e' = m.lay.Layout.by_index.(w asr 27) in
      th.Thread.fn <- e'.Layout.func.Ssp_ir.Prog.name;
      th.Thread.blk <- 0;
      th.Thread.ins <- 0;
      e := e'
    | 48 ->
      (* ret *)
      if th.Thread.frame_n = 0 then th.Thread.active <- false
      else begin
        th.Thread.frame_n <- th.Thread.frame_n - 1;
        let fr = th.Thread.frames.(th.Thread.frame_n) in
        Array.blit fr.Thread.saved_stacked 0 regs Ssp_isa.Reg.first_stacked
          fr.Thread.saved_n;
        th.Thread.fn <- fr.Thread.ret_fn;
        th.Thread.blk <- fr.Thread.ret_blk;
        th.Thread.ins <- fr.Thread.ret_ins;
        e := layout_of m main
      end
    | 49 | 50 -> th.Thread.active <- false (* halt / kill *)
    | 51 ->
      (* chk.c *)
      if env.Exec.chk_free () then begin
        th.Thread.blk <- w asr 27;
        th.Thread.ins <- 0
      end
      else th.Thread.ins <- ins + 1
    | 52 ->
      (* rand: xorshift64*, same stream as Exec *)
      let x = th.Thread.rand_state in
      let x = Int64.logxor x (Int64.shift_left x 13) in
      let x = Int64.logxor x (Int64.shift_right_logical x 7) in
      let x = Int64.logxor x (Int64.shift_left x 17) in
      th.Thread.rand_state <- x;
      let d = (w lsr 6) land 127 in
      if d <> 0 then
        Array.unsafe_set regs d (Int64.shift_right_logical x 1);
      th.Thread.ins <- ins + 1
    | _ ->
      (* slow path: rare ops (icall, spawn, lib.st/ld, alloc, print, and
         unresolved static targets) run on the boxed form *)
      th.Thread.instrs <- th.Thread.instrs - 1 (* step_op recounts *);
      let f = (!e).Layout.func in
      let op = f.Ssp_ir.Prog.blocks.(blk).Ssp_ir.Prog.ops.(ins) in
      let ev = Exec.step_op env th f op in
      (match ev with
      | Exec.Ev_load | Exec.Ev_store | Exec.Ev_prefetch ->
        Hierarchy.warm hier env.Exec.ev_addr
      | Exec.Ev_branch_taken | Exec.Ev_branch_not_taken ->
        (* unresolved-target branches: warm the predictor like the hot
           arms do *)
        let pc = Layout.pc_id !e ~blk ~ins in
        let taken = ev = Exec.Ev_branch_taken in
        (match op with
        | Ssp_isa.Op.Brnz _ | Ssp_isa.Op.Brz _ ->
          Bpred.update bp ~thread:0 ~pc ~taken
        | _ -> ());
        if taken && not (Bpred.btb_lookup bp ~pc) then
          Bpred.btb_insert bp ~pc
      | Exec.Ev_call | Exec.Ev_ret ->
        if th.Thread.active then e := layout_of m main
      | _ -> ()))
  done;
  m.ff <- false;
  !done_
