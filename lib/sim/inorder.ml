open Ssp_isa
open Ssp_machine
module T = Ssp_telemetry.Telemetry

(* Per-block static bundle index of every instruction, to charge issue
   bandwidth in bundle units. *)
type bundle_map = (string, int array array) Hashtbl.t

let bundle_map_of (prog : Ssp_ir.Prog.t) : bundle_map =
  let m = Hashtbl.create 16 in
  List.iter
    (fun (f : Ssp_ir.Prog.func) ->
      let per_block =
        Array.map
          (fun (b : Ssp_ir.Prog.block) ->
            let idx = Array.make (Array.length b.ops) 0 in
            List.iteri
              (fun bi (bd : Bundle.t) ->
                for k = bd.Bundle.start to bd.Bundle.start + bd.Bundle.len - 1
                do
                  idx.(k) <- bi
                done)
              (Bundle.of_block b.ops);
            idx)
          f.blocks
      in
      Hashtbl.replace m f.name per_block)
    (Ssp_ir.Prog.funcs_in_order prog);
  m

let run ?attrib (cfg : Config.t) (prog : Ssp_ir.Prog.t) =
  T.with_span "sim.inorder" @@ fun () ->
  let m = Smt.create ?attrib cfg prog in
  let bundles = bundle_map_of prog in
  let stats = m.Smt.stats in
  let now = ref 0 in
  let stepping = ref m.Smt.ctxs.(0) in
  let env =
    {
      Exec.mem = m.Smt.mem;
      prog;
      chk_free = (fun () -> Smt.chk_allowed m ~now:!now !stepping);
      spawn =
        (fun ~src ~fn ~blk ~live_in ->
          (* Injected chained-spawn breakage: a speculative thread's spawn
             silently fails, cutting the chain. *)
          if
            (!stepping).Smt.thread.Thread.speculative
            && Ssp_fault.Fault.fire Smt.site_chain_break
          then false
          else Smt.try_spawn m ~now:!now ~src ~fn ~blk ~live_in);
      output = (fun v -> stats.Stats.outputs <- v :: stats.Stats.outputs);
    }
  in
  let main = m.Smt.ctxs.(0) in
  let bundle_index (th : Thread.t) =
    let per_block = Hashtbl.find bundles th.Thread.fn in
    per_block.(th.Thread.blk).(th.Thread.ins)
  in
  (* Shared function units, reset each cycle. *)
  let mem_used = ref 0 in
  let is_mem op =
    match op with
    | Op.Load _ | Op.Store _ | Op.Lfetch _ -> true
    | _ -> false
  in
  (* Issue as much as the thread's bundle budget allows this cycle.
     Returns the number of instructions issued. *)
  let issue_thread (ctx : Smt.context) =
    stepping := ctx;
    let th = ctx.Smt.thread in
    let issued = ref 0 in
    let blocked = ref false in
    while (not !blocked) && th.Thread.active && ctx.Smt.bundle_left > 0 do
      Exec.normalize_pc prog th;
      let iref = Ssp_ir.Iref.make th.Thread.fn th.Thread.blk th.Thread.ins in
      let op = Exec.instr_at prog th in
      (* Scoreboard: every source operand must be ready (stall-on-use). *)
      let unready =
        List.find_opt (fun r -> ctx.Smt.reg_ready.(r) > !now) (Op.uses op)
      in
      match unready with
      | Some _ -> blocked := true
      | None when is_mem op && !mem_used >= cfg.Config.mem_ports ->
        (* structural hazard: both memory ports busy this cycle *)
        blocked := true
      | None ->
        let start_bundle = bundle_index th in
        (* Instruction-fetch: charge an I-cache access at block entry. *)
        if th.Thread.ins = 0 then begin
          let ia =
            Smt.pc_addr m.Smt.pcs ~fn:th.Thread.fn ~blk:th.Thread.blk ~ins:0
          in
          let o = Hierarchy.access m.Smt.hier ~now:!now ~instruction:true ia in
          if o.Hierarchy.level <> Hierarchy.L1 then begin
            ctx.Smt.redirect_until <- o.Hierarchy.ready;
            blocked := true
          end
        end;
        if not !blocked then begin
          (* Predict branches before executing (Exec moves the pc). *)
          let pcid =
            Smt.pc_id m.Smt.pcs ~fn:th.Thread.fn ~blk:th.Thread.blk
              ~ins:th.Thread.ins
          in
          let predicted =
            match op with
            | Op.Brnz _ | Op.Brz _ -> Some (Bpred.predict m.Smt.bp ~thread:th.Thread.id ~pc:pcid)
            | _ -> None
          in
          let ev = Exec.step env th in
          incr issued;
          if is_mem op then incr mem_used;
          if th.Thread.id = 0 then
            stats.Stats.main_instrs <- stats.Stats.main_instrs + 1
          else stats.Stats.spec_instrs <- stats.Stats.spec_instrs + 1;
          let base_latency = Latency.of_op op in
          let finish_defs lat lvl =
            List.iter
              (fun r ->
                ctx.Smt.reg_ready.(r) <- !now + lat;
                ctx.Smt.reg_level.(r) <- lvl)
              (Op.defs op)
          in
          (match ev with
          | Exec.Ev_load { addr; _ } ->
            let o = Smt.demand_access m ~now:!now ~ctx ~iref addr in
            List.iter
              (fun r ->
                ctx.Smt.reg_ready.(r) <- o.Hierarchy.ready;
                ctx.Smt.reg_level.(r) <-
                  (if o.Hierarchy.level = Hierarchy.L1 then None
                   else Some o.Hierarchy.level))
              (Op.defs op)
          | Exec.Ev_store { addr; _ } ->
            (* Write-allocate; the store buffer hides the latency. *)
            ignore
              (Hierarchy.access m.Smt.hier ~now:!now
                 ~demand_main:(th.Thread.id = 0) addr)
          | Exec.Ev_prefetch addr ->
            stats.Stats.prefetches <- stats.Stats.prefetches + 1;
            ignore
              (Hierarchy.access m.Smt.hier ~now:!now ~prefetch:true
                 ?pf_tag:(Smt.pf_tag_of m ctx iref) addr)
          | Exec.Ev_branch { taken } -> (
            match predicted with
            | Some p ->
              Bpred.update m.Smt.bp ~thread:th.Thread.id ~pc:pcid ~taken;
              if p <> taken then begin
                stats.Stats.mispredicts <- stats.Stats.mispredicts + 1;
                ctx.Smt.redirect_until <- !now + cfg.Config.front_end_penalty;
                blocked := true
              end
              else if taken then begin
                (* Correctly predicted taken: needs the BTB for the target. *)
                if not (Bpred.btb_lookup m.Smt.bp ~pc:pcid) then begin
                  Bpred.btb_insert m.Smt.bp ~pc:pcid;
                  ctx.Smt.redirect_until <- !now + 2;
                  blocked := true
                end
              end
            | None ->
              (* Unconditional branch: a taken-branch fetch bubble. *)
              if not (Bpred.btb_lookup m.Smt.bp ~pc:pcid) then begin
                Bpred.btb_insert m.Smt.bp ~pc:pcid;
                ctx.Smt.redirect_until <- !now + 1;
                blocked := true
              end)
          | Exec.Ev_call | Exec.Ev_ret ->
            finish_defs (max 1 base_latency) None;
            (* Calls and returns redirect the front end briefly. *)
            ctx.Smt.redirect_until <- !now + 1;
            blocked := true
          | Exec.Ev_chk { fired } ->
            if fired then begin
              stats.Stats.chk_fired <- stats.Stats.chk_fired + 1;
              if cfg.Config.spawn_flush then begin
                (* Exception-like pipeline flush (§4.4.1). *)
                ctx.Smt.redirect_until <- !now + cfg.Config.front_end_penalty;
                blocked := true
              end
            end
          | Exec.Ev_spawn _ -> finish_defs 1 None
          | Exec.Ev_lib -> finish_defs cfg.Config.lib_latency None
          | Exec.Ev_halt | Exec.Ev_kill ->
            if th.Thread.speculative then
              Smt.note_thread_end m ctx ~now:!now ~watchdog:false;
            blocked := true
          | Exec.Ev_plain -> finish_defs (max 1 base_latency) None);
          Smt.watchdog_check m ~now:!now ctx;
          (* Bundle accounting: crossing into a new bundle (or leaving the
             block) consumes one bundle slot. *)
          let crossed =
            (not th.Thread.active)
            ||
            (Exec.normalize_pc prog th;
             th.Thread.fn <> iref.Ssp_ir.Iref.fn
             || th.Thread.blk <> iref.Ssp_ir.Iref.blk
             || bundle_index th <> start_bundle)
          in
          if crossed then ctx.Smt.bundle_left <- ctx.Smt.bundle_left - 1
        end
    done;
    !issued
  in
  (* Per-interval telemetry: issue rate and demand misses over time. *)
  let tel_interval = 8192 in
  let tel_last_instrs = ref 0 in
  let tel_last_misses = ref 0 in
  let tel_ipc = T.series "sim.inorder.interval_ipc" in
  let tel_miss = T.series "sim.inorder.interval_l1d_misses" in
  let tel_tick () =
    if T.is_enabled () && !now mod tel_interval = 0 then begin
      let mi = stats.Stats.main_instrs in
      let ms = Cache.stats_misses (Hierarchy.l1d m.Smt.hier) in
      T.sample tel_ipc ~x:(float_of_int !now)
        ~y:
          (float_of_int (mi - !tel_last_instrs) /. float_of_int tel_interval);
      T.sample tel_miss ~x:(float_of_int !now)
        ~y:(float_of_int (ms - !tel_last_misses));
      tel_last_instrs := mi;
      tel_last_misses := ms
    end
  in
  (* Main loop. The helper closures are hoisted out of the loop (and the
     per-cycle scratch refs reset instead of rebound) so the steady-state
     cycle allocates nothing. *)
  let running = ref true in
  (* A thread is only worth an issue slot if its next instruction's
     operands are ready (Itanium stall-on-use would waste the slot
     otherwise) — an ICOUNT-flavoured SMT policy. *)
  let eligible (c : Smt.context) =
    let th = c.Smt.thread in
    th.Thread.active && c.Smt.redirect_until <= !now
    &&
    (Exec.normalize_pc prog th;
     let op = Exec.instr_at prog th in
     List.for_all (fun r -> c.Smt.reg_ready.(r) <= !now) (Op.uses op))
  in
  let main_issued = ref 0 in
  let one_bundle (c : Smt.context) = c.Smt.bundle_left <- 1 in
  let issue_chosen (c : Smt.context) =
    let n = issue_thread c in
    if c.Smt.thread.Thread.id = 0 then main_issued := n
  in
  while !running do
    if !now > cfg.Config.max_cycles then
      failwith "Inorder.run: exceeded max_cycles";
    mem_used := 0;
    let chosen = Smt.select_threads m ~eligible in
    (match chosen with
    | [ only ] -> only.Smt.bundle_left <- cfg.Config.issue_bundles
    | cs -> List.iter one_bundle cs);
    main_issued := 0;
    List.iter issue_chosen chosen;
    (* Figure 10 accounting for the main thread. *)
    let outstanding = Smt.outstanding_level main ~now:!now in
    let cat =
      match (!main_issued > 0, outstanding) with
      | true, Some _ -> Stats.Cat_cache_exec
      | true, None -> Stats.Cat_exec
      | false, Some Hierarchy.Mem -> Stats.Cat_l3
      | false, Some Hierarchy.L3 -> Stats.Cat_l2
      | false, Some Hierarchy.L2 -> Stats.Cat_l1
      | false, Some Hierarchy.L1 | false, None -> Stats.Cat_other
    in
    Stats.add_category stats cat;
    incr now;
    tel_tick ();
    stats.Stats.cycles <- !now;
    if not main.Smt.thread.Thread.active then running := false
  done;
  (* Settle attribution: speculative threads still alive at program end,
     then prefetches never demanded. *)
  Array.iter
    (fun c -> Smt.note_thread_end m c ~now:!now ~watchdog:false)
    m.Smt.ctxs;
  (match attrib with Some a -> Attrib.finalize a | None -> ());
  Stats.finish stats
