open Ssp_isa
open Ssp_machine
module T = Ssp_telemetry.Telemetry

(* The in-order Itanium-flavoured core. The hot loop runs on flat
   preallocated state: layout tables (pc numbering, bundle indices) come
   from [Smt.layout_of]'s per-context memo, operand queries go through
   caller-owned scratch arrays, and events are constant constructors — the
   steady-state cycle allocates (almost) nothing. *)
let run ?attrib ?sampling (cfg : Config.t) (prog : Ssp_ir.Prog.t) =
  T.with_span "sim.inorder" @@ fun () ->
  let m = Smt.create ?attrib cfg prog in
  let stats = m.Smt.stats in
  let now = ref 0 in
  let stepping = ref m.Smt.ctxs.(0) in
  let env =
    {
      Exec.mem = m.Smt.mem;
      prog;
      chk_free = (fun () -> Smt.chk_allowed m ~now:!now !stepping);
      spawn =
        (fun ~src ~fn ~blk ~live_in ->
          (* Injected chained-spawn breakage: a speculative thread's spawn
             silently fails, cutting the chain. *)
          if
            (!stepping).Smt.thread.Thread.speculative
            && Ssp_fault.Fault.fire Smt.site_chain_break
          then false
          else Smt.try_spawn m ~now:!now ~src ~fn ~blk ~live_in);
      output = (fun v -> Stats.push_output stats v);
      ev_addr = 0L;
    }
  in
  let main = m.Smt.ctxs.(0) in
  (* Scratch for allocation-free operand queries. *)
  let ubuf = Array.make Op.scratch_regs 0 in
  let dbuf = Array.make Op.scratch_regs 0 in
  (* Sampled-simulation bookkeeping (instructions left in the current
     detailed window; fast-forwarded instruction and estimated-cycle
     totals). *)
  let detail_left = ref max_int in
  let ff_total = ref 0 in
  let est_extra = ref 0.0 in
  (* Measurement marks: each fast-forward is extrapolated from the CPI of
     its own surrounding detailed window (local, SMARTS-style), and the
     first quarter of every detailed window is detailed warming — executed
     cycle-accurately but excluded from the estimator, so the ramp-up of
     the drained fill buffer / pipeline after a fast-forward doesn't bias
     the CPI fast. *)
  let win_cycles0 = ref 0 in
  let win_instrs0 = ref 0 in
  let measuring = ref false in
  let jst = ref Smt.jitter_seed in
  (* Centered extrapolation: a fast-forwarded chunk is charged the average
     CPI of the detailed windows on BOTH sides (the one before is in
     [prev_cpi], the one after settles the [pending_k] instrs) — halves
     the error of chunks spanning a phase transition. *)
  let pending_k = ref 0 in
  let prev_cpi = ref 0.0 in
  (match sampling with
  | Some s -> detail_left := s.Smt.detail_window
  | None -> ());
  (* Shared function units, reset each cycle. *)
  let mem_used = ref 0 in
  let is_mem op =
    match op with
    | Op.Load _ | Op.Store _ | Op.Lfetch _ -> true
    | _ -> false
  in
  (* Issue as much as the thread's bundle budget allows this cycle.
     Returns the number of instructions issued. *)
  let issue_thread (ctx : Smt.context) =
    stepping := ctx;
    let th = ctx.Smt.thread in
    let issued = ref 0 in
    let blocked = ref false in
    while (not !blocked) && th.Thread.active && ctx.Smt.bundle_left > 0 do
      Exec.normalize_pc prog th;
      let e = Smt.layout_of m ctx in
      let blk0 = th.Thread.blk and ins0 = th.Thread.ins in
      let pcid = e.Layout.block_base.(blk0) + ins0 in
      let op = e.Layout.func.Ssp_ir.Prog.blocks.(blk0).ops.(ins0) in
      (* Scoreboard: every source operand must be ready (stall-on-use). *)
      let nu = Op.uses_into op ubuf in
      let unready = ref false in
      for i = 0 to nu - 1 do
        if ctx.Smt.reg_ready.(ubuf.(i)) > !now then unready := true
      done;
      if !unready then blocked := true
      else if is_mem op && !mem_used >= cfg.Config.mem_ports then
        (* structural hazard: both memory ports busy this cycle *)
        blocked := true
      else begin
        let start_bundle = e.Layout.bundle_idx.(blk0).(ins0) in
        (* Instruction-fetch: charge an I-cache access at block entry. *)
        if ins0 = 0 then begin
          let ia = Layout.pc_addr e ~blk:blk0 ~ins:0 in
          let o = Hierarchy.ifetch m.Smt.hier ~now:!now ia in
          if o.Hierarchy.level <> Hierarchy.L1 then begin
            ctx.Smt.redirect_until <- o.Hierarchy.ready;
            blocked := true
          end
        end;
        if not !blocked then begin
          (* Predict branches before executing (Exec moves the pc). *)
          let is_cond =
            match op with Op.Brnz _ | Op.Brz _ -> true | _ -> false
          in
          let predicted =
            is_cond && Bpred.predict m.Smt.bp ~thread:th.Thread.id ~pc:pcid
          in
          let ev = Exec.step env th in
          incr issued;
          if is_mem op then incr mem_used;
          if th.Thread.id = 0 then begin
            stats.Stats.main_instrs <- stats.Stats.main_instrs + 1;
            decr detail_left
          end
          else stats.Stats.spec_instrs <- stats.Stats.spec_instrs + 1;
          let base_latency = Latency.of_op op in
          let finish_defs lat =
            let nd = Op.defs_into op dbuf in
            for i = 0 to nd - 1 do
              ctx.Smt.reg_ready.(dbuf.(i)) <- !now + lat
            done
          in
          (match ev with
          | Exec.Ev_load ->
            let o =
              Smt.demand_access m ~now:!now ~ctx ~pc:pcid env.Exec.ev_addr
            in
            let nd = Op.defs_into op dbuf in
            for i = 0 to nd - 1 do
              ctx.Smt.reg_ready.(dbuf.(i)) <- o.Hierarchy.ready
            done
          | Exec.Ev_store -> (
            (* Write-allocate; the store buffer hides the latency. *)
            match m.Smt.attrib with
            | None ->
              ignore
                (Hierarchy.demand m.Smt.hier ~now:!now ~low_priority:false
                   env.Exec.ev_addr)
            | Some _ ->
              ignore
                (Hierarchy.access m.Smt.hier ~now:!now
                   ~demand_main:(th.Thread.id = 0) env.Exec.ev_addr))
          | Exec.Ev_prefetch -> (
            stats.Stats.prefetches <- stats.Stats.prefetches + 1;
            match m.Smt.attrib with
            | None ->
              ignore (Hierarchy.prefetch m.Smt.hier ~now:!now env.Exec.ev_addr)
            | Some _ ->
              let iref = Layout.iref_of m.Smt.lay pcid in
              ignore
                (Hierarchy.access m.Smt.hier ~now:!now ~prefetch:true
                   ?pf_tag:(Smt.pf_tag_of m ctx iref) env.Exec.ev_addr))
          | Exec.Ev_branch_taken | Exec.Ev_branch_not_taken ->
            let taken = ev = Exec.Ev_branch_taken in
            if is_cond then begin
              Bpred.update m.Smt.bp ~thread:th.Thread.id ~pc:pcid ~taken;
              if predicted <> taken then begin
                stats.Stats.mispredicts <- stats.Stats.mispredicts + 1;
                ctx.Smt.redirect_until <- !now + cfg.Config.front_end_penalty;
                blocked := true
              end
              else if taken then begin
                (* Correctly predicted taken: needs the BTB for the target. *)
                if not (Bpred.btb_lookup m.Smt.bp ~pc:pcid) then begin
                  Bpred.btb_insert m.Smt.bp ~pc:pcid;
                  ctx.Smt.redirect_until <- !now + 2;
                  blocked := true
                end
              end
            end
            else if not (Bpred.btb_lookup m.Smt.bp ~pc:pcid) then begin
              (* Unconditional branch: a taken-branch fetch bubble. *)
              Bpred.btb_insert m.Smt.bp ~pc:pcid;
              ctx.Smt.redirect_until <- !now + 1;
              blocked := true
            end
          | Exec.Ev_call | Exec.Ev_ret ->
            finish_defs (max 1 base_latency);
            (* Calls and returns redirect the front end briefly. *)
            ctx.Smt.redirect_until <- !now + 1;
            blocked := true
          | Exec.Ev_chk_fired ->
            stats.Stats.chk_fired <- stats.Stats.chk_fired + 1;
            if cfg.Config.spawn_flush then begin
              (* Exception-like pipeline flush (§4.4.1). *)
              ctx.Smt.redirect_until <- !now + cfg.Config.front_end_penalty;
              blocked := true
            end
          | Exec.Ev_chk_nofire -> ()
          | Exec.Ev_spawned | Exec.Ev_spawn_denied -> finish_defs 1
          | Exec.Ev_lib -> finish_defs cfg.Config.lib_latency
          | Exec.Ev_halt | Exec.Ev_kill ->
            if th.Thread.speculative then
              Smt.note_thread_end m ctx ~now:!now ~watchdog:false;
            blocked := true
          | Exec.Ev_plain -> finish_defs (max 1 base_latency));
          Smt.watchdog_check m ~now:!now ctx;
          (* Bundle accounting: crossing into a new bundle (or leaving the
             block) consumes one bundle slot. *)
          let crossed =
            (not th.Thread.active)
            ||
            (Exec.normalize_pc prog th;
             let e' = Smt.layout_of m ctx in
             e' != e || th.Thread.blk <> blk0
             || e.Layout.bundle_idx.(blk0).(th.Thread.ins) <> start_bundle)
          in
          if crossed then ctx.Smt.bundle_left <- ctx.Smt.bundle_left - 1
        end
      end
    done;
    !issued
  in
  (* Per-interval telemetry: issue rate and demand misses over time. *)
  let tel_interval = 8192 in
  let tel_last_instrs = ref 0 in
  let tel_last_misses = ref 0 in
  let tel_ipc = T.series "sim.inorder.interval_ipc" in
  let tel_miss = T.series "sim.inorder.interval_l1d_misses" in
  let tel_tick () =
    if T.is_enabled () && !now mod tel_interval = 0 then begin
      let mi = stats.Stats.main_instrs in
      let ms = Cache.stats_misses (Hierarchy.l1d m.Smt.hier) in
      T.sample tel_ipc ~x:(float_of_int !now)
        ~y:
          (float_of_int (mi - !tel_last_instrs) /. float_of_int tel_interval);
      T.sample tel_miss ~x:(float_of_int !now)
        ~y:(float_of_int (ms - !tel_last_misses));
      tel_last_instrs := mi;
      tel_last_misses := ms
    end
  in
  (* Main loop. Thread selection fills the machine's scratch array; the
     helpers are hoisted so the steady-state cycle allocates nothing. *)
  let running = ref true in
  (* A thread is only worth an issue slot if its next instruction's
     operands are ready (Itanium stall-on-use would waste the slot
     otherwise) — an ICOUNT-flavoured SMT policy. *)
  let eligible (c : Smt.context) =
    let th = c.Smt.thread in
    th.Thread.active && c.Smt.redirect_until <= !now
    &&
    (Exec.normalize_pc prog th;
     let e = Smt.layout_of m c in
     let op =
       e.Layout.func.Ssp_ir.Prog.blocks.(th.Thread.blk).ops.(th.Thread.ins)
     in
     let nu = Op.uses_into op ubuf in
     let ok = ref true in
     for i = 0 to nu - 1 do
       if c.Smt.reg_ready.(ubuf.(i)) > !now then ok := false
     done;
     !ok)
  in
  let main_issued = ref 0 in
  while !running do
    if !now > cfg.Config.max_cycles then
      failwith "Inorder.run: exceeded max_cycles";
    mem_used := 0;
    let nsel = Smt.select_threads m ~eligible in
    if nsel = 1 then m.Smt.sel.(0).Smt.bundle_left <- cfg.Config.issue_bundles
    else
      for i = 0 to nsel - 1 do
        m.Smt.sel.(i).Smt.bundle_left <- 1
      done;
    main_issued := 0;
    for i = 0 to nsel - 1 do
      let c = m.Smt.sel.(i) in
      let n = issue_thread c in
      if c.Smt.thread.Thread.id = 0 then main_issued := n
    done;
    (* Figure 10 accounting for the main thread. *)
    let rank = Smt.outstanding_rank main ~now:!now in
    let cat =
      if !main_issued > 0 then
        if rank > 0 then Stats.Cat_cache_exec else Stats.Cat_exec
      else
        match rank with
        | 4 -> Stats.Cat_l3
        | 3 -> Stats.Cat_l2
        | 2 -> Stats.Cat_l1
        | _ -> Stats.Cat_other
    in
    Stats.add_category stats cat;
    incr now;
    tel_tick ();
    stats.Stats.cycles <- !now;
    (* Sampled mode: after the detailed window's instruction budget is
       spent, fast-forward with functional warming and extrapolate the
       skipped cycles from the detailed cycles-per-instruction so far. *)
    (match sampling with
    | Some s ->
      if
        (not !measuring)
        && s.Smt.detail_window - !detail_left >= s.Smt.detail_window / 3
      then begin
        win_cycles0 := !now;
        win_instrs0 := stats.Stats.main_instrs - !ff_total;
        measuring := true
      end;
      if !detail_left <= 0 && main.Smt.thread.Thread.active then begin
        let det_instrs =
          stats.Stats.main_instrs - !ff_total - !win_instrs0
        in
        let det_cycles = !now - !win_cycles0 in
        let cpi_w =
          if det_instrs > 0 then
            float_of_int det_cycles /. float_of_int det_instrs
          else !prev_cpi
        in
        if !pending_k > 0 then
          est_extra :=
            !est_extra
            +. (float_of_int !pending_k *. ((!prev_cpi +. cpi_w) /. 2.0));
        let k =
          Smt.fast_forward m env ~now:!now
            ~instrs:(Smt.ff_jitter jst ~window:s.Smt.ff_window)
        in
        ff_total := !ff_total + k;
        stats.Stats.main_instrs <- stats.Stats.main_instrs + k;
        pending_k := k;
        prev_cpi := cpi_w;
        measuring := false;
        detail_left := s.Smt.detail_window
      end
    | None -> ());
    if not main.Smt.thread.Thread.active then running := false
  done;
  (* Settle attribution: speculative threads still alive at program end,
     then prefetches never demanded. *)
  Array.iter
    (fun c -> Smt.note_thread_end m c ~now:!now ~watchdog:false)
    m.Smt.ctxs;
  (match attrib with Some a -> Attrib.finalize a | None -> ());
  if !ff_total > 0 then begin
    (* The last chunk has no following window; settle it one-sided. *)
    if !pending_k > 0 then
      est_extra := !est_extra +. (float_of_int !pending_k *. !prev_cpi);
    stats.Stats.cycles <- !now + int_of_float (Float.round !est_extra);
    (* Cycle categories are only counted during detailed windows;
       extrapolate them by the same factor as cycles so the printed
       breakdown stays a per-cycle distribution. *)
    let k = float_of_int stats.Stats.cycles /. float_of_int (max 1 !now) in
    Array.iteri
      (fun i c ->
        stats.Stats.categories.(i) <-
          int_of_float (Float.round (float_of_int c *. k)))
      stats.Stats.categories
  end;
  Stats.finish ~irefs:m.Smt.lay.Layout.irefs stats
