type frame = {
  saved_stacked : int64 array;
  mutable saved_n : int;
  mutable ret_blk : int;
  mutable ret_ins : int;
  mutable ret_fn : string;
}

type t = {
  id : int;
  mutable fn : string;
  mutable blk : int;
  mutable ins : int;
  regs : int64 array;
  mutable frames : frame array;
  mutable frame_n : int;
  mutable live_in : int64 array;
  lib_out : int64 array;
  mutable speculative : bool;
  mutable active : bool;
  mutable instrs : int;
  mutable rand_state : int64;
  cached_fns : string array;
  cached_funcs : Ssp_ir.Prog.func array;
}

let lib_slots = 16

let no_func : Ssp_ir.Prog.func =
  { name = ""; nparams = 0; blocks = [||]; code_id = -1 }

let n_stacked = Ssp_isa.Reg.count - Ssp_isa.Reg.first_stacked

let new_frame () =
  { saved_stacked = Array.make n_stacked 0L; saved_n = n_stacked;
    ret_blk = 0; ret_ins = 0; ret_fn = "" }

let create ~id =
  {
    id;
    fn = "";
    blk = 0;
    ins = 0;
    regs = Array.make Ssp_isa.Reg.count 0L;
    frames = Array.init 16 (fun _ -> new_frame ());
    frame_n = 0;
    live_in = Array.make lib_slots 0L;
    lib_out = Array.make lib_slots 0L;
    speculative = false;
    active = false;
    instrs = 0;
    rand_state = 0x9E3779B97F4A7C15L;
    (* Fresh, physically-unique sentinels: the [cached_fns.(i) == t.fn]
       probes in Exec can never spuriously hit before the first fill. *)
    cached_fns = Array.init 4 (fun _ -> String.make 1 '\000');
    cached_funcs = Array.make 4 no_func;
  }

let reset_for_spawn t ~fn ~blk ~live_in ~rand_state =
  t.fn <- fn;
  t.blk <- blk;
  t.ins <- 0;
  Array.fill t.regs 0 (Array.length t.regs) 0L;
  t.frame_n <- 0;
  t.live_in <- Array.copy live_in;
  Array.fill t.lib_out 0 lib_slots 0L;
  t.speculative <- true;
  t.active <- true;
  t.instrs <- 0;
  t.rand_state <- rand_state

let push_frame t ~ret_blk ~ret_ins =
  let cap = Array.length t.frames in
  if t.frame_n = cap then
    t.frames <-
      Array.init (2 * cap) (fun i ->
          if i < cap then t.frames.(i) else new_frame ());
  let fr = t.frames.(t.frame_n) in
  t.frame_n <- t.frame_n + 1;
  fr.saved_n <- n_stacked;
  fr.ret_blk <- ret_blk;
  fr.ret_ins <- ret_ins;
  fr.ret_fn <- t.fn;
  fr

(* Register indices are range-validated at every producer (Ir.Builder,
   Core.Codegen, Ir.Asm's parser all reject r >= Reg.count), so the
   per-instruction accessors skip the redundant bounds check. *)
let get t r = if r = Ssp_isa.Reg.zero then 0L else Array.unsafe_get t.regs r

let set t r v =
  if r <> Ssp_isa.Reg.zero then Array.unsafe_set t.regs r v
