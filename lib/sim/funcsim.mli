(** Functional (non-timing) whole-program simulation.

    Runs the main thread to completion. Three uses:
    - reference semantics and observable-output capture for tests;
    - profile collection (a hook sees every executed instruction and its
      event, so block frequencies, cache behaviour and call targets can be
      recorded);
    - differential testing of adapted binaries: with [spawning] disabled
      every [Chk_c] behaves as a nop, so an adapted binary must produce
      exactly the original's outputs; with [spawning] enabled speculative
      threads run to completion (interleaved coarsely) and must not change
      the outputs either. *)

type result = {
  outputs : int64 list;  (** values printed by [Print], in order *)
  instrs : int;  (** dynamic instructions of the main thread *)
  spec_instrs : int;  (** dynamic instructions of speculative threads *)
  spawns : int;  (** accepted spawn requests *)
}

val run :
  ?max_instrs:int ->
  ?spawning:bool ->
  ?hook:
    (Exec.env -> Thread.t -> Ssp_ir.Iref.t -> Ssp_isa.Op.t -> Exec.event -> unit) ->
  Ssp_ir.Prog.t ->
  result
(** Execute from the program entry. [max_instrs] (default 200M) bounds the
    main thread; exceeding it raises [Failure]. The [hook] receives the
    execution environment first (event payloads such as the effective
    address live in [env.ev_addr]) and fires after each
    executed instruction of {e any} thread. With [spawning] (default false)
    a spawned thread runs for a bounded slice of instructions interleaved
    with the main thread, mimicking concurrency coarsely; at most 3
    speculative contexts exist at once (4 contexts − main). *)
