(* Prefetch-lifecycle attribution.

   When an [Attrib.t] is attached to a simulation, every prefetch a
   speculative thread issues — an [lfetch], or a demand load at a slice
   site whose value feeds further slice computation (value-used targets
   emit no lfetch; the load itself is the prefetch) — is tagged with the
   static delinquent load it precomputes, the slice instruction that
   issued it, the hardware context, and the spawn site that started the
   thread. Each prefetch is then classified exactly once by what the
   main thread observes at its target line:

     useful         main-thread demand hit on a line a prefetch filled
     late           main-thread demand found the prefetch still in
                    flight (a partial hit: latency partly hidden)
     early_evicted  the prefetched line was evicted before any use
     redundant      the prefetch hit (or partially hit) at issue time —
                    the line was already present or in flight
     dropped        the fill buffer refused the prefetch (full, or the
                    demand-priority reserve kicked in)
     unused         still unclassified when the simulation ends

   Per delinquent load this yields the paper's three effectiveness
   axes: coverage (fraction of would-be misses a prefetch absorbed),
   accuracy (useful fraction of everything issued) and timeliness
   (fraction of covering prefetches that arrived whole). The same
   object accumulates speculative-thread lifetimes and per-spawn-site
   accept/deny counts, so `sspc explain` can join profile → slice →
   trigger → simulated effect.

   All recording is passive bookkeeping keyed off the simulator's own
   events; attaching an [Attrib.t] never changes timing or outputs. *)

module T = Ssp_telemetry.Telemetry
module Iref = Ssp_ir.Iref

type cls = Useful | Late | Early_evicted | Redundant | Dropped

let cls_name = function
  | Useful -> "useful"
  | Late -> "late"
  | Early_evicted -> "early_evicted"
  | Redundant -> "redundant"
  | Dropped -> "dropped"

type tag = {
  target : Iref.t; (* the delinquent load this prefetch precomputes *)
  site : Iref.t; (* the slice instruction that issued it *)
  ctx : int; (* hardware context of the issuing thread *)
  spawn_src : Iref.t option; (* Spawn instruction that started the thread *)
}

type pf_state = In_flight | Filled

type pf = {
  tag : tag;
  issued_at : int;
  mutable state : pf_state;
  mutable filled_at : int;
}

type acct = {
  mutable issued : int; (* fills actually allocated *)
  mutable useful : int;
  mutable late : int;
  mutable early_evicted : int;
  mutable redundant : int;
  mutable dropped : int;
  mutable unused : int;
  mutable lead_sum : int; (* cycles between fill and first use (useful) *)
  mutable late_wait_sum : int; (* residual latency the main thread ate (late) *)
  mutable demand_accesses : int; (* main-thread accesses of the target load *)
  mutable demand_hits : int;
  lead_counts : int array; (* lead-time distribution, telemetry hist layout *)
  mutable lead_min : int;
  mutable lead_max : int;
}

let acct_create () =
  {
    issued = 0;
    useful = 0;
    late = 0;
    early_evicted = 0;
    redundant = 0;
    dropped = 0;
    unused = 0;
    lead_sum = 0;
    late_wait_sum = 0;
    demand_accesses = 0;
    demand_hits = 0;
    lead_counts = Array.make T.hist_bucket_count 0;
    lead_min = max_int;
    lead_max = 0;
  }

type site = { mutable s_spawns : int; mutable s_denied : int }

type t = {
  prefetch_map : Iref.t Iref.Map.t; (* emitted prefetch site -> target load *)
  targets : Iref.Set.t; (* the delinquent loads under attribution *)
  lines : (int64, pf) Hashtbl.t; (* line address -> outstanding prefetch *)
  accts : acct Iref.Tbl.t; (* per target load *)
  sites : site Iref.Tbl.t; (* per spawn site *)
  mutable spawns : int;
  mutable denied : int;
  mutable threads_ended : int;
  mutable watchdog_kills : int;
  mutable lifetime_sum : int;
  mutable lifetime_max : int;
  tel_useful : T.counter;
  tel_late : T.counter;
  tel_early_evicted : T.counter;
  tel_redundant : T.counter;
  tel_dropped : T.counter;
}

let create ?(prefetch_map = Iref.Map.empty) ?(targets = Iref.Set.empty) () =
  (* Any mapped target is implicitly under attribution. *)
  let targets =
    Iref.Map.fold (fun _ tgt s -> Iref.Set.add tgt s) prefetch_map targets
  in
  {
    prefetch_map;
    targets;
    lines = Hashtbl.create 256;
    accts = Iref.Tbl.create 8;
    sites = Iref.Tbl.create 8;
    spawns = 0;
    denied = 0;
    threads_ended = 0;
    watchdog_kills = 0;
    lifetime_sum = 0;
    lifetime_max = 0;
    tel_useful = T.counter "sim.pf.useful";
    tel_late = T.counter "sim.pf.late";
    tel_early_evicted = T.counter "sim.pf.early_evicted";
    tel_redundant = T.counter "sim.pf.redundant";
    tel_dropped = T.counter "sim.pf.dropped";
  }

let target_of t site = Iref.Map.find_opt site t.prefetch_map
let is_target t iref = Iref.Set.mem iref t.targets

let acct t load =
  match Iref.Tbl.find_opt t.accts load with
  | Some a -> a
  | None ->
    let a = acct_create () in
    Iref.Tbl.replace t.accts load a;
    a

let site t src =
  match Iref.Tbl.find_opt t.sites src with
  | Some s -> s
  | None ->
    let s = { s_spawns = 0; s_denied = 0 } in
    Iref.Tbl.replace t.sites src s;
    s

(* ---- prefetch lifecycle (driven by Hierarchy) ---- *)

let classify t tag c =
  let a = acct t tag.target in
  match c with
  | Useful -> a.useful <- a.useful + 1; T.incr t.tel_useful
  | Late -> a.late <- a.late + 1; T.incr t.tel_late
  | Early_evicted ->
    a.early_evicted <- a.early_evicted + 1;
    T.incr t.tel_early_evicted
  | Redundant -> a.redundant <- a.redundant + 1; T.incr t.tel_redundant
  | Dropped -> a.dropped <- a.dropped + 1; T.incr t.tel_dropped

(* A new fill was allocated for a tagged prefetch. A previous record on
   the same line is necessarily a filled prefetch whose line has since
   been evicted (an in-flight fill would have given a partial hit, i.e.
   the redundant path): settle it as early-evicted first. *)
let prefetch_issued t tag ~line ~now =
  (match Hashtbl.find_opt t.lines line with
  | Some old -> classify t old.tag Early_evicted
  | None -> ());
  Hashtbl.replace t.lines line
    { tag; issued_at = now; state = In_flight; filled_at = max_int };
  let a = acct t tag.target in
  a.issued <- a.issued + 1

let prefetch_redundant t tag = classify t tag Redundant
let prefetch_dropped t tag = classify t tag Dropped

let fill_retired t ~line ~now =
  match Hashtbl.find_opt t.lines line with
  | Some pf when pf.state = In_flight ->
    pf.state <- Filled;
    pf.filled_at <- now
  | _ -> ()

(* A main-thread demand access settles the line's outstanding prefetch,
   and accumulates hit/miss accounting when the access is one of the
   delinquent loads themselves. Speculative-thread accesses never
   classify (a helper touching its own prefetched line is not a use). *)
let demand_use t ?iref ~main ~line ~hit ~partial ~now ~ready () =
  (match iref with
  | Some i when main && Iref.Set.mem i t.targets ->
    let a = acct t i in
    a.demand_accesses <- a.demand_accesses + 1;
    if hit then a.demand_hits <- a.demand_hits + 1
  | _ -> ());
  if main then
    match Hashtbl.find_opt t.lines line with
    | None -> ()
    | Some pf -> (
      match pf.state with
      | Filled ->
        Hashtbl.remove t.lines line;
        if hit then begin
          classify t pf.tag Useful;
          let a = acct t pf.tag.target in
          let lead = max 0 (now - pf.filled_at) in
          a.lead_sum <- a.lead_sum + lead;
          (* The distribution uses the telemetry histograms' fixed bucket
             layout, so reports from different clients merge exactly. *)
          let i = T.hist_index (float_of_int lead) in
          a.lead_counts.(i) <- a.lead_counts.(i) + 1;
          if lead < a.lead_min then a.lead_min <- lead;
          if lead > a.lead_max then a.lead_max <- lead
        end
        else
          (* The prefetched line is gone (evicted) — whether the demand
             now misses outright or is itself refetching, the prefetch
             did not survive to its use. *)
          classify t pf.tag Early_evicted
      | In_flight ->
        if partial then begin
          Hashtbl.remove t.lines line;
          classify t pf.tag Late;
          let a = acct t pf.tag.target in
          a.late_wait_sum <- a.late_wait_sum + max 0 (ready - now)
        end)

(* ---- speculative-thread lifetimes (driven by Smt) ---- *)

let spawned t ~src =
  t.spawns <- t.spawns + 1;
  let s = site t src in
  s.s_spawns <- s.s_spawns + 1

let spawn_denied t ~src =
  t.denied <- t.denied + 1;
  let s = site t src in
  s.s_denied <- s.s_denied + 1

let thread_end t ~spawned_at ~now ~watchdog =
  t.threads_ended <- t.threads_ended + 1;
  if watchdog then t.watchdog_kills <- t.watchdog_kills + 1;
  let life = max 0 (now - spawned_at) in
  t.lifetime_sum <- t.lifetime_sum + life;
  if life > t.lifetime_max then t.lifetime_max <- life

(* ---- finalization and summaries ---- *)

let finalize t =
  Hashtbl.iter
    (fun _ pf ->
      let a = acct t pf.tag.target in
      a.unused <- a.unused + 1)
    t.lines;
  Hashtbl.reset t.lines

type load_summary = {
  ls_load : Iref.t;
  ls_issued : int;
  ls_useful : int;
  ls_late : int;
  ls_early_evicted : int;
  ls_redundant : int;
  ls_dropped : int;
  ls_unused : int;
  ls_demand_accesses : int;
  ls_demand_hits : int;
  ls_coverage : float;
  ls_accuracy : float;
  ls_timeliness : float;
  ls_mean_lead : float; (* cycles a useful line waited before its use *)
  ls_mean_late_wait : float; (* residual cycles the main thread still paid *)
  ls_lead_hist : T.hist_summary; (* lead-time distribution of useful fills *)
}

type site_summary = { ss_site : Iref.t; ss_spawns : int; ss_denied : int }

type thread_summary = {
  th_spawns : int;
  th_denied : int;
  th_ended : int;
  th_watchdog_kills : int;
  th_mean_lifetime : float;
  th_max_lifetime : int;
}

type summary = {
  loads : load_summary list; (* sorted by load *)
  sites : site_summary list; (* sorted by site *)
  threads : thread_summary;
}

let load_summary_of load (a : acct) =
  let misses = a.demand_accesses - a.demand_hits in
  (* Every useful prefetch turned a would-be miss into a hit; misses as
     observed already exclude them. *)
  let would_be = misses + a.useful in
  let issued_total = a.issued + a.redundant + a.dropped in
  let fdiv n d = if d = 0 then 0.0 else float_of_int n /. float_of_int d in
  {
    ls_load = load;
    ls_issued = a.issued;
    ls_useful = a.useful;
    ls_late = a.late;
    ls_early_evicted = a.early_evicted;
    ls_redundant = a.redundant;
    ls_dropped = a.dropped;
    ls_unused = a.unused;
    ls_demand_accesses = a.demand_accesses;
    ls_demand_hits = a.demand_hits;
    ls_coverage = fdiv (a.useful + a.late) would_be;
    ls_accuracy = fdiv a.useful issued_total;
    ls_timeliness = fdiv a.useful (a.useful + a.late);
    ls_mean_lead = fdiv a.lead_sum a.useful;
    ls_mean_late_wait = fdiv a.late_wait_sum a.late;
    ls_lead_hist =
      {
        T.hs_n = a.useful;
        hs_sum = float_of_int a.lead_sum;
        hs_min = (if a.useful = 0 then infinity else float_of_int a.lead_min);
        hs_max =
          (if a.useful = 0 then neg_infinity else float_of_int a.lead_max);
        hs_counts = Array.copy a.lead_counts;
      };
  }

let summary t =
  let loads =
    Iref.Tbl.fold (fun load a acc -> load_summary_of load a :: acc) t.accts []
    |> List.sort (fun a b -> Iref.compare a.ls_load b.ls_load)
  in
  let sites =
    Iref.Tbl.fold
      (fun src s acc ->
        { ss_site = src; ss_spawns = s.s_spawns; ss_denied = s.s_denied } :: acc)
      t.sites []
    |> List.sort (fun a b -> Iref.compare a.ss_site b.ss_site)
  in
  {
    loads;
    sites;
    threads =
      {
        th_spawns = t.spawns;
        th_denied = t.denied;
        th_ended = t.threads_ended;
        th_watchdog_kills = t.watchdog_kills;
        th_mean_lifetime =
          (if t.threads_ended = 0 then 0.0
           else float_of_int t.lifetime_sum /. float_of_int t.threads_ended);
        th_max_lifetime = t.lifetime_max;
      };
  }

let find_load s iref =
  List.find_opt (fun ls -> Iref.equal ls.ls_load iref) s.loads
