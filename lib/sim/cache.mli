(** A single set-associative cache level with LRU replacement.

    Only tags are modeled (data comes from {!Memory}); that is all the
    timing model needs. *)

type t

val create : ?name:string -> Ssp_machine.Config.cache_geom -> t
(** [name] registers telemetry counters ["<name>.hits"] / ["<name>.misses"]
    updated on every {!access} while telemetry is enabled. *)

val probe : t -> int64 -> bool
(** Whether the line containing the address is present (no state change). *)

val touch : t -> int64 -> unit
(** Mark the line most recently used (on a hit). *)

val install : t -> int64 -> unit
(** Fill the line, evicting the LRU way of its set. *)

val access : t -> int64 -> bool
(** [probe]; on hit also [touch]. Returns whether it hit. *)

val warm_access : t -> int64 -> bool
(** [access], and on a miss also [install], in one set scan: the
    functional-warming hot path. Equivalent to [access] followed by
    [install] up to LRU clock values (identical tags, recency order, and
    hit/miss counts). *)

val warm_access_i : t -> int -> bool
(** [warm_access] with the address as a native int (62-bit address
    space) — no int64 boxing on the warming path. *)

val line_addr : t -> int64 -> int64

val line_bits : t -> int
(** log2 of the line size in bytes. *)

val stats_accesses : t -> int
val stats_misses : t -> int
val reset_stats : t -> unit
