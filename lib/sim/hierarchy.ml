open Ssp_machine
module T = Ssp_telemetry.Telemetry
module F = Ssp_fault.Fault

let site_pf_drop = F.site "sim.prefetch.drop"
let site_fill_exhaust = F.site "sim.fill.exhaust"

type level = L1 | L2 | L3 | Mem

type outcome = { level : level; partial : bool; ready : int }

type mshr = { line : int64; origin : level; done_at : int; nt : bool }

type t = {
  cfg : Config.t;
  l1d : Cache.t;
  l1i : Cache.t;
  l2 : Cache.t;
  l3 : Cache.t;
  mutable fills : mshr list;  (* in flight, unordered (≤ 16 entries) *)
  mutable attrib : Attrib.t option;  (* prefetch-lifecycle attribution *)
  tel_dropped : T.counter;  (* prefetches dropped on a full fill buffer *)
  tel_stalled : T.counter;  (* fills delayed by a full fill buffer *)
}

(* [tprefix] namespaces the telemetry counters so the cycle simulators
   ("sim.*") and the profiling pass ("profile.*") stay distinguishable in
   one run report. *)
let create ?(tprefix = "sim") (cfg : Config.t) =
  {
    cfg;
    l1d = Cache.create ~name:(tprefix ^ ".l1d") cfg.l1;
    l1i = Cache.create ~name:(tprefix ^ ".l1i") cfg.l1;
    l2 = Cache.create ~name:(tprefix ^ ".l2") cfg.l2;
    l3 = Cache.create ~name:(tprefix ^ ".l3") cfg.l3;
    fills = [];
    attrib = None;
    tel_dropped = T.counter (tprefix ^ ".fill.dropped_prefetch");
    tel_stalled = T.counter (tprefix ^ ".fill.full_stall");
  }

let l1d t = t.l1d
let set_attrib t a = t.attrib <- Some a

let level_latency t = function
  | L1 -> t.cfg.l1.latency
  | L2 -> t.cfg.l2.latency
  | L3 -> t.cfg.l3.latency
  | Mem -> t.cfg.mem_latency

let retire_fills t ~now =
  let done_, pending = List.partition (fun m -> m.done_at <= now) t.fills in
  List.iter
    (fun m ->
      Cache.install t.l1d m.line;
      Cache.install t.l2 m.line;
      Cache.install t.l3 m.line;
      match t.attrib with
      | Some a -> Attrib.fill_retired a ~line:m.line ~now:m.done_at
      | None -> ())
    done_;
  t.fills <- pending

let perfect_hit t ~now = { level = L1; partial = false; ready = now + t.cfg.l1.latency }

let access_real t ~now ~instruction ~nt ~low_priority ~pf_tag ~demand_iref
    ~demand_main addr =
  retire_fills t ~now;
  let l1 = if instruction then t.l1i else t.l1d in
  let line = Cache.line_addr t.l2 addr in
  (* Attribution: a tagged access IS a prefetch (an lfetch, or a
     speculative demand load standing in for one); an untagged data
     access is a potential use settling the line's outstanding
     prefetch. Bookkeeping only — never changes the outcome. *)
  let attr_pf f =
    match (t.attrib, pf_tag) with Some a, Some tag -> f a tag | _ -> ()
  in
  let attr_use ~hit ~partial ~ready =
    if not instruction then
      match (t.attrib, pf_tag) with
      | Some a, None ->
        Attrib.demand_use a ?iref:demand_iref ~main:demand_main ~line ~hit
          ~partial ~now ~ready ()
      | _ -> ()
  in
  if Cache.access l1 addr then begin
    let ready = now + t.cfg.l1.latency in
    attr_pf (fun a tag -> Attrib.prefetch_redundant a tag);
    attr_use ~hit:true ~partial:false ~ready;
    { level = L1; partial = false; ready }
  end
  else
    (* Fill buffer: line already in transit? *)
    match List.find_opt (fun m -> Int64.equal m.line line) t.fills with
    | Some m ->
      let ready = max (m.done_at) (now + t.cfg.l1.latency) in
      attr_pf (fun a tag -> Attrib.prefetch_redundant a tag);
      attr_use ~hit:false ~partial:true ~ready;
      { level = m.origin; partial = true; ready }
    | None ->
      let used = List.length t.fills in
      let full = used >= t.cfg.fill_buffer_entries in
      (* Demand priority: the last few entries are reserved for the main
         thread, so speculative traffic cannot starve the misses it is
         supposed to be helping. Prefetches are dropped outright when the
         buffer is full; speculative loads wait as if it were full. *)
      let reserve = max 0 (t.cfg.fill_buffer_entries - 4) in
      let full = full || (low_priority && used >= reserve) in
      (* Injected fill-buffer exhaustion: pretend the buffer is full (only
         meaningful while fills are actually in flight — the delay is
         computed from the earliest outstanding entry). *)
      let full = full || (t.fills <> [] && F.fire site_fill_exhaust) in
      if nt && (full || F.fire site_pf_drop) then begin
        T.incr t.tel_dropped;
        attr_pf (fun a tag -> Attrib.prefetch_dropped a tag);
        { level = L1; partial = false; ready = now + 1 }
      end
      else begin
        if full then T.incr t.tel_stalled;
        let origin, latency =
          if Cache.access t.l2 addr then (L2, t.cfg.l2.latency)
          else if Cache.access t.l3 addr then (L3, t.cfg.l3.latency)
          else (Mem, t.cfg.mem_latency)
        in
        (* A full fill buffer delays the new fill until the earliest
           outstanding one retires. *)
        let start =
          if full then
            List.fold_left (fun acc m -> min acc m.done_at) max_int t.fills
          else now
        in
        let done_at = start + latency in
        t.fills <- { line; origin; done_at; nt } :: t.fills;
        attr_pf (fun a tag -> Attrib.prefetch_issued a tag ~line ~now);
        attr_use ~hit:false ~partial:false ~ready:done_at;
        if instruction then Cache.install t.l1i addr;
        { level = origin; partial = false; ready = done_at }
      end

let access t ~now ?(prefetch = false) ?(low_priority = false)
    ?(instruction = false) ?pf_tag ?demand_iref ?(demand_main = false) addr =
  match t.cfg.memory_mode with
  | Config.Perfect_memory -> perfect_hit t ~now
  | Config.Normal | Config.Perfect_delinquent _ ->
    access_real t ~now ~instruction ~nt:prefetch
      ~low_priority:(low_priority || prefetch) ~pf_tag ~demand_iref
      ~demand_main addr

let pp_level ppf l =
  Format.pp_print_string ppf
    (match l with L1 -> "L1" | L2 -> "L2" | L3 -> "L3" | Mem -> "Mem")
