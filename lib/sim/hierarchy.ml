open Ssp_machine
module T = Ssp_telemetry.Telemetry
module F = Ssp_fault.Fault

let site_pf_drop = F.site "sim.prefetch.drop"
let site_fill_exhaust = F.site "sim.fill.exhaust"

type level = L1 | L2 | L3 | Mem

type outcome = { level : level; partial : bool; ready : int }

(* The in-flight fill buffer lives in parallel flat arrays (structure of
   arrays), preallocated and compacted in place: the per-access probe and
   the retire sweep allocate nothing. The logical entry count is [fl_n];
   capacity grows by doubling in the rare overflow case (entries can
   transiently exceed [fill_buffer_entries]: a "full" buffer delays the new
   fill's start but still tracks it). *)
type t = {
  cfg : Config.t;
  l1d : Cache.t;
  l1i : Cache.t;
  l2 : Cache.t;
  l3 : Cache.t;
  mutable fl_line : int64 array;
  mutable fl_origin : level array;
  mutable fl_done : int array;
  mutable fl_n : int;
  mutable attrib : Attrib.t option;  (* prefetch-lifecycle attribution *)
  warm_shift : int;  (* L1 line_bits: int line key = addr lsr warm_shift *)
  mutable warm_dline : int;
      (* last L1d line warmed by {!warm}; a repeat touch of the same line
         with no other access in between is an LRU no-op, so the filter is
         exact — reset whenever the timed path may have intervened. Int
         keys (addresses fit 62 bits) keep the filter allocation-free. *)
  mutable warm_iline : int;  (* same, for {!warm_ifetch} / L1i *)
  tel_dropped : T.counter;  (* prefetches dropped on a full fill buffer *)
  tel_stalled : T.counter;  (* fills delayed by a full fill buffer *)
}

(* [tprefix] namespaces the telemetry counters so the cycle simulators
   ("sim.*") and the profiling pass ("profile.*") stay distinguishable in
   one run report. *)
let create ?(tprefix = "sim") (cfg : Config.t) =
  let cap = max 32 (2 * cfg.fill_buffer_entries) in
  let l1d = Cache.create ~name:(tprefix ^ ".l1d") cfg.l1 in
  {
    cfg;
    l1d;
    l1i = Cache.create ~name:(tprefix ^ ".l1i") cfg.l1;
    l2 = Cache.create ~name:(tprefix ^ ".l2") cfg.l2;
    l3 = Cache.create ~name:(tprefix ^ ".l3") cfg.l3;
    fl_line = Array.make cap 0L;
    fl_origin = Array.make cap L1;
    fl_done = Array.make cap 0;
    fl_n = 0;
    attrib = None;
    warm_shift = Cache.line_bits l1d;
    warm_dline = -1;
    warm_iline = -1;
    tel_dropped = T.counter (tprefix ^ ".fill.dropped_prefetch");
    tel_stalled = T.counter (tprefix ^ ".fill.full_stall");
  }

let l1d t = t.l1d
let set_attrib t a = t.attrib <- Some a

let level_latency t = function
  | L1 -> t.cfg.l1.latency
  | L2 -> t.cfg.l2.latency
  | L3 -> t.cfg.l3.latency
  | Mem -> t.cfg.mem_latency

let add_fill t ~line ~origin ~done_at =
  let n = t.fl_n in
  if n >= Array.length t.fl_line then begin
    let cap = 2 * Array.length t.fl_line in
    let line' = Array.make cap 0L in
    let origin' = Array.make cap L1 in
    let done' = Array.make cap 0 in
    Array.blit t.fl_line 0 line' 0 n;
    Array.blit t.fl_origin 0 origin' 0 n;
    Array.blit t.fl_done 0 done' 0 n;
    t.fl_line <- line';
    t.fl_origin <- origin';
    t.fl_done <- done'
  end;
  t.fl_line.(n) <- line;
  t.fl_origin.(n) <- origin;
  t.fl_done.(n) <- done_at;
  t.fl_n <- n + 1

let retire_fills t ~now =
  let n = t.fl_n in
  if n > 0 then begin
    (* Install newest-first: entries append in age order, and the previous
       list representation retired cons-newest-first — LRU state (and so
       downstream timing) is bit-identical. *)
    for i = n - 1 downto 0 do
      if t.fl_done.(i) <= now then begin
        let line = t.fl_line.(i) in
        Cache.install t.l1d line;
        Cache.install t.l2 line;
        Cache.install t.l3 line;
        match t.attrib with
        | Some a -> Attrib.fill_retired a ~line ~now:t.fl_done.(i)
        | None -> ()
      end
    done;
    let k = ref 0 in
    for i = 0 to n - 1 do
      if t.fl_done.(i) > now then begin
        if !k <> i then begin
          t.fl_line.(!k) <- t.fl_line.(i);
          t.fl_origin.(!k) <- t.fl_origin.(i);
          t.fl_done.(!k) <- t.fl_done.(i)
        end;
        incr k
      end
    done;
    t.fl_n <- !k
  end

let find_fill t line =
  let n = t.fl_n in
  let rec go i =
    if i >= n then -1
    else if Int64.equal (Array.unsafe_get t.fl_line i) line then i
    else go (i + 1)
  in
  go 0

let earliest_fill_done t =
  let e = ref max_int in
  for i = 0 to t.fl_n - 1 do
    if t.fl_done.(i) < !e then e := t.fl_done.(i)
  done;
  !e

let perfect_hit t ~now = { level = L1; partial = false; ready = now + t.cfg.l1.latency }

let access_real t ~now ~instruction ~nt ~low_priority ~pf_tag ~demand_iref
    ~demand_main addr =
  retire_fills t ~now;
  let l1 = if instruction then t.l1i else t.l1d in
  let line = Cache.line_addr t.l2 addr in
  (* Attribution: a tagged access IS a prefetch (an lfetch, or a
     speculative demand load standing in for one); an untagged data
     access is a potential use settling the line's outstanding
     prefetch. Bookkeeping only — never changes the outcome. The matches
     are written out inline (no helper closures) to keep the usual
     attrib-off path allocation-free. *)
  if Cache.access l1 addr then begin
    let ready = now + t.cfg.l1.latency in
    (match (t.attrib, pf_tag) with
    | Some a, Some tag -> Attrib.prefetch_redundant a tag
    | Some a, None ->
      if not instruction then
        Attrib.demand_use a ?iref:demand_iref ~main:demand_main ~line
          ~hit:true ~partial:false ~now ~ready ()
    | None, _ -> ());
    { level = L1; partial = false; ready }
  end
  else begin
    (* Fill buffer: line already in transit? *)
    let fi = find_fill t line in
    if fi >= 0 then begin
      let done_at = t.fl_done.(fi) in
      let ready = max done_at (now + t.cfg.l1.latency) in
      (match (t.attrib, pf_tag) with
      | Some a, Some tag -> Attrib.prefetch_redundant a tag
      | Some a, None ->
        if not instruction then
          Attrib.demand_use a ?iref:demand_iref ~main:demand_main ~line
            ~hit:false ~partial:true ~now ~ready ()
      | None, _ -> ());
      { level = t.fl_origin.(fi); partial = true; ready }
    end
    else begin
      let used = t.fl_n in
      let full = used >= t.cfg.fill_buffer_entries in
      (* Demand priority: the last few entries are reserved for the main
         thread, so speculative traffic cannot starve the misses it is
         supposed to be helping. Prefetches are dropped outright when the
         buffer is full; speculative loads wait as if it were full. *)
      let reserve = max 0 (t.cfg.fill_buffer_entries - 4) in
      let full = full || (low_priority && used >= reserve) in
      (* Injected fill-buffer exhaustion: pretend the buffer is full (only
         meaningful while fills are actually in flight — the delay is
         computed from the earliest outstanding entry). *)
      let full = full || (t.fl_n > 0 && F.fire site_fill_exhaust) in
      if nt && (full || F.fire site_pf_drop) then begin
        T.incr t.tel_dropped;
        (match (t.attrib, pf_tag) with
        | Some a, Some tag -> Attrib.prefetch_dropped a tag
        | _ -> ());
        { level = L1; partial = false; ready = now + 1 }
      end
      else begin
        if full then T.incr t.tel_stalled;
        let origin, latency =
          if Cache.access t.l2 addr then (L2, t.cfg.l2.latency)
          else if Cache.access t.l3 addr then (L3, t.cfg.l3.latency)
          else (Mem, t.cfg.mem_latency)
        in
        (* A full fill buffer delays the new fill until the earliest
           outstanding one retires. *)
        let start = if full then earliest_fill_done t else now in
        let done_at = start + latency in
        add_fill t ~line ~origin ~done_at;
        (match (t.attrib, pf_tag) with
        | Some a, Some tag -> Attrib.prefetch_issued a tag ~line ~now
        | Some a, None ->
          if not instruction then
            Attrib.demand_use a ?iref:demand_iref ~main:demand_main ~line
              ~hit:false ~partial:false ~now ~ready:done_at ()
        | None, _ -> ());
        if instruction then Cache.install t.l1i addr;
        { level = origin; partial = false; ready = done_at }
      end
    end
  end

let access t ~now ?(prefetch = false) ?(low_priority = false)
    ?(instruction = false) ?pf_tag ?demand_iref ?(demand_main = false) addr =
  match t.cfg.memory_mode with
  | Config.Perfect_memory -> perfect_hit t ~now
  | Config.Normal | Config.Perfect_delinquent _ ->
    access_real t ~now ~instruction ~nt:prefetch
      ~low_priority:(low_priority || prefetch) ~pf_tag ~demand_iref
      ~demand_main addr

(* Non-optional hot-path entry points: the cycle simulators call these when
   no attribution is attached, dodging the optional-argument plumbing. *)
let demand t ~now ~low_priority addr =
  match t.cfg.memory_mode with
  | Config.Perfect_memory -> perfect_hit t ~now
  | Config.Normal | Config.Perfect_delinquent _ ->
    access_real t ~now ~instruction:false ~nt:false ~low_priority ~pf_tag:None
      ~demand_iref:None ~demand_main:(not low_priority) addr

let prefetch t ~now addr =
  match t.cfg.memory_mode with
  | Config.Perfect_memory -> perfect_hit t ~now
  | Config.Normal | Config.Perfect_delinquent _ ->
    access_real t ~now ~instruction:false ~nt:true ~low_priority:true
      ~pf_tag:None ~demand_iref:None ~demand_main:false addr

let ifetch t ~now addr =
  match t.cfg.memory_mode with
  | Config.Perfect_memory -> perfect_hit t ~now
  | Config.Normal | Config.Perfect_delinquent _ ->
    access_real t ~now ~instruction:true ~nt:false ~low_priority:false
      ~pf_tag:None ~demand_iref:None ~demand_main:false addr

(* Functional warming for sampled simulation: bring the line in at every
   level with no timing, no fill-buffer traffic and no attribution — keeps
   cache contents (and so the next detailed window) honest while the
   fast-forward window skips the clock. *)
let reset_warm_filter t =
  t.warm_dline <- -1;
  t.warm_iline <- -1

let warm_i t a =
  match t.cfg.memory_mode with
  | Config.Perfect_memory -> ()
  | Config.Normal | Config.Perfect_delinquent _ ->
    let a = a land max_int in
    let line = a lsr t.warm_shift in
    if line <> t.warm_dline then begin
      t.warm_dline <- line;
      if not (Cache.warm_access_i t.l1d a) then begin
        ignore (Cache.warm_access_i t.l2 a);
        ignore (Cache.warm_access_i t.l3 a)
      end
    end

let warm t addr = warm_i t (Int64.to_int addr)

let warm_ifetch_i t a =
  match t.cfg.memory_mode with
  | Config.Perfect_memory -> ()
  | Config.Normal | Config.Perfect_delinquent _ ->
    let a = a land max_int in
    let line = a lsr t.warm_shift in
    if line <> t.warm_iline then begin
      t.warm_iline <- line;
      ignore (Cache.warm_access_i t.l1i a)
    end

let pp_level ppf l =
  Format.pp_print_string ppf
    (match l with L1 -> "L1" | L2 -> "L2" | L3 -> "L3" | Mem -> "Mem")
