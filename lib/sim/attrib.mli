(** Prefetch-lifecycle attribution.

    Attached to a simulation (via [Smt.create ~attrib] / the [?attrib]
    argument of [Inorder.run] and [Ooo.run]), an [Attrib.t] tags every
    prefetch issued by a speculative thread with the delinquent load it
    precomputes and classifies it exactly once against the main thread's
    demand stream:

    - {e useful}: demand hit on a line the prefetch filled;
    - {e late}: demand found the prefetch still in flight (partial hit);
    - {e early_evicted}: the line was evicted before any use;
    - {e redundant}: the line was already present/in flight at issue;
    - {e dropped}: the fill buffer refused the prefetch;
    - {e unused}: never demanded before the simulation ended.

    Recording is passive — attaching an [Attrib.t] changes neither cycle
    counts nor outputs (tested). *)

type cls = Useful | Late | Early_evicted | Redundant | Dropped

val cls_name : cls -> string

type tag = {
  target : Ssp_ir.Iref.t;  (** the delinquent load being precomputed *)
  site : Ssp_ir.Iref.t;  (** slice instruction that issued the prefetch *)
  ctx : int;  (** hardware context of the issuing thread *)
  spawn_src : Ssp_ir.Iref.t option;  (** Spawn that started the thread *)
}

type t

val create :
  ?prefetch_map:Ssp_ir.Iref.t Ssp_ir.Iref.Map.t ->
  ?targets:Ssp_ir.Iref.Set.t ->
  unit ->
  t
(** [prefetch_map] maps emitted prefetch sites (lfetch instructions and
    value-used slice loads) to the original delinquent load, as returned
    by [Codegen.apply] / carried in [Adapt.result]. [targets] adds loads
    to track demand hit/miss accounting for; mapped targets are always
    tracked. *)

val target_of : t -> Ssp_ir.Iref.t -> Ssp_ir.Iref.t option
(** The delinquent load a prefetch site precomputes, if mapped. *)

val is_target : t -> Ssp_ir.Iref.t -> bool

(** {2 Hooks} — called by the simulator; not for external use. *)

val prefetch_issued : t -> tag -> line:int64 -> now:int -> unit
val prefetch_redundant : t -> tag -> unit
val prefetch_dropped : t -> tag -> unit
val fill_retired : t -> line:int64 -> now:int -> unit

val demand_use :
  t ->
  ?iref:Ssp_ir.Iref.t ->
  main:bool ->
  line:int64 ->
  hit:bool ->
  partial:bool ->
  now:int ->
  ready:int ->
  unit ->
  unit

val spawned : t -> src:Ssp_ir.Iref.t -> unit
val spawn_denied : t -> src:Ssp_ir.Iref.t -> unit
val thread_end : t -> spawned_at:int -> now:int -> watchdog:bool -> unit

val finalize : t -> unit
(** Classify all still-outstanding prefetches as unused. Call once when
    the simulation ends, before [summary]. *)

(** {2 Summaries} *)

type load_summary = {
  ls_load : Ssp_ir.Iref.t;
  ls_issued : int;
  ls_useful : int;
  ls_late : int;
  ls_early_evicted : int;
  ls_redundant : int;
  ls_dropped : int;
  ls_unused : int;
  ls_demand_accesses : int;
  ls_demand_hits : int;
  ls_coverage : float;
      (** (useful + late) / would-be misses of the target load *)
  ls_accuracy : float;  (** useful / everything issued (incl. dropped) *)
  ls_timeliness : float;  (** useful / (useful + late) *)
  ls_mean_lead : float;  (** cycles a useful line waited before its use *)
  ls_mean_late_wait : float;  (** residual cycles late prefetches cost *)
  ls_lead_hist : Ssp_telemetry.Telemetry.hist_summary;
      (** lead-time distribution of useful fills, in the telemetry
          histograms' fixed bucket layout (merges exactly across runs) *)
}

type site_summary = {
  ss_site : Ssp_ir.Iref.t;
  ss_spawns : int;
  ss_denied : int;
}

type thread_summary = {
  th_spawns : int;
  th_denied : int;
  th_ended : int;
  th_watchdog_kills : int;
  th_mean_lifetime : float;
  th_max_lifetime : int;
}

type summary = {
  loads : load_summary list;
  sites : site_summary list;
  threads : thread_summary;
}

val summary : t -> summary
val find_load : summary -> Ssp_ir.Iref.t -> load_summary option
