(** Shared SMT machinery for the cycle models: hardware-context management,
    the static layout tables (branch-predictor numbering, bundle indices),
    round-robin thread selection, the spawn policy, and the fast-forward
    engine for sampled simulation. *)

val site_chain_break : Ssp_fault.Fault.site
(** Fault site for injected chained-spawn breakage; queried by the cycle
    models when a {e speculative} thread executes a [Spawn] (only they
    know which context is stepping). *)

type sampling = { detail_window : int; ff_window : int }
(** Sampled-simulation windows, in main-thread instructions: alternate
    [detail_window] cycle-accurate instructions with [ff_window]
    fast-forwarded (functionally warmed) ones. *)

val default_sampling : sampling
(** 500 detailed / 4500 fast-forwarded (10% detail, short period): the
    windows the bench and accuracy tests validate. *)

val jitter_seed : int64
(** Initial state for the {!ff_jitter} stream (one fresh ref per run). *)

val ff_jitter : int64 ref -> window:int -> int
(** The next fast-forward length: uniform in [0.5, 1.5)x [window], drawn
    from a deterministic splitmix64 stream — breaks the resonance of
    strictly periodic sampling with loop periodicity while keeping runs
    bit-reproducible. *)

type context = {
  thread : Thread.t;
  mutable redirect_until : int;
      (** front end stalled until this cycle (mispredict, flush, I-miss) *)
  reg_ready : int array;  (** scoreboard: cycle each register is available *)
  fill_ready : int array;
      (** per level-rank (indices 2..4): latest ready cycle among this
          thread's demand fills from that level — outstanding iff in the
          future *)
  mutable bundle_left : int;  (** issue-slot bookkeeping within a cycle *)
  mutable last_chk_fire : int;  (** cycle of this thread's last chk.c fire *)
  mutable spawned_at : int;
      (** cycle the current speculative occupancy began (-1 when idle) *)
  mutable spawn_src : Ssp_ir.Iref.t option;
      (** the [Spawn] instruction that bound this occupancy *)
  mutable spawn_target : string;  (** "fn#blk" label for timeline events *)
  lay_fns : string array;
      (** physical-equality keys of [lays], most recent first: four
          move-to-front slots keep call/return cycles off the Hashtbl *)
  lays : Layout.entry array;  (** memoized layout entries *)
}

type machine = {
  cfg : Ssp_machine.Config.t;
  prog : Ssp_ir.Prog.t;
  mem : Memory.t;
  hier : Hierarchy.t;
  bp : Bpred.t;
  lay : Layout.t;
  ctxs : context array;
  sel : context array;  (** scratch filled by {!select_threads} *)
  stats : Stats.t;
  mutable rr : int;  (** round-robin cursor over contexts *)
  delinquent_pc : bool array;
      (** pc-indexed perfect-delinquent filtering (dense {!Layout} ids) *)
  mutable last_spawned : int;
      (** context id bound by the most recent successful spawn (-1 if
          none); lets a timing model adjust the child's start *)
  mutable ff : bool;
      (** inside a fast-forward window: chk.c never fires *)
  attrib : Attrib.t option;  (** prefetch-lifecycle attribution, if any *)
  tel_spawns : Ssp_telemetry.Telemetry.counter;
  tel_spawn_denied : Ssp_telemetry.Telemetry.counter;
  tel_watchdog_kills : Ssp_telemetry.Telemetry.counter;
}

val create : ?attrib:Attrib.t -> Ssp_machine.Config.t -> Ssp_ir.Prog.t -> machine
(** Context 0 is the main thread, initialized at the program entry.
    [attrib] attaches prefetch-lifecycle attribution to the machine and
    its hierarchy (bookkeeping only; timing is unchanged). *)

val layout_of : machine -> context -> Layout.entry
(** The layout entry of the context's current function, memoized in the
    context (physical equality on [fn]); allocation-free on the hit path. *)

val chk_allowed : machine -> now:int -> context -> bool
(** Whether a [chk.c] of this thread fires now: enough free contexts and
    the thread's refractory interval elapsed (and not fast-forwarding).
    Records the firing time when it returns true. *)

val free_context : machine -> context option
(** An inactive context, if any (never the main thread's). *)

val try_spawn :
  machine ->
  now:int ->
  src:Ssp_ir.Iref.t ->
  fn:string ->
  blk:int ->
  live_in:int64 array ->
  bool
(** Bind a free context as a speculative thread; charges the spawn and
    live-in-copy latency to the child's start. [src] is the spawning
    [Spawn] instruction, recorded for attribution and denied-spawn
    accounting. *)

val note_thread_end : machine -> context -> now:int -> watchdog:bool -> unit
(** Record the end of a speculative occupancy: lifetime attribution and a
    timeline event. Idempotent per occupancy; the issue loops call it when
    a speculative thread kills itself, [watchdog_check] and [try_spawn]
    call it for the other endings. *)

val select_threads : machine -> eligible:(context -> bool) -> int
(** Fill [sel] with up to [issue_threads] contexts in priority order (main
    thread first, then round-robin) satisfying [eligible]; returns the
    count and advances the cursor. Allocation-free. *)

val outstanding_rank : context -> now:int -> int
(** Deepest level-rank (1=L1 .. 4=Mem; 0 = none) among the thread's
    outstanding fills, for Figure 10 accounting. *)

val demand_access :
  machine -> now:int -> ctx:context -> pc:int -> int64 -> Hierarchy.outcome
(** A load's cache access with perfect-delinquent filtering and per-site
    stats recording (main thread only), keyed by the dense {!Layout} pc id.
    With attribution attached, a speculative load at a mapped slice site is
    tagged as a prefetch issue (value-used targets emit no lfetch — the
    load is the prefetch), and main-thread accesses settle outstanding
    prefetches. *)

val pf_tag_of : machine -> context -> Ssp_ir.Iref.t -> Attrib.tag option
(** The attribution tag of a prefetch issued by this context at this
    site, if attribution is on and the site maps to a delinquent load. *)

val watchdog_check : machine -> now:int -> context -> unit
(** Kill a speculative thread that exceeded its instruction budget. *)

val fast_forward : machine -> Exec.env -> now:int -> instrs:int -> int
(** Advance the main thread up to [instrs] architectural instructions with
    functional warming (memory, outputs, caches, branch predictor — no
    timing). Ends live speculative threads first; suppresses chk.c firing
    for the duration. Returns the count actually executed (the main thread
    may halt mid-window). *)
