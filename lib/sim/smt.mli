(** Shared SMT machinery for the cycle models: hardware-context management,
    program-counter numbering (for the branch predictor and the instruction
    cache), round-robin thread selection, and the spawn policy. *)

val site_chain_break : Ssp_fault.Fault.site
(** Fault site for injected chained-spawn breakage; queried by the cycle
    models when a {e speculative} thread executes a [Spawn] (only they
    know which context is stepping). *)

type pcmap

val pcmap_of : Ssp_ir.Prog.t -> pcmap

val pc_id : pcmap -> fn:string -> blk:int -> ins:int -> int
(** A dense global instruction number, used as the branch predictor index
    and (scaled) as the instruction-fetch address. *)

val pc_addr : pcmap -> fn:string -> blk:int -> ins:int -> int64
(** The pseudo-address of the instruction in the code segment (16 bytes per
    instruction, distinct from data addresses). *)

type context = {
  thread : Thread.t;
  mutable redirect_until : int;
      (** front end stalled until this cycle (mispredict, flush, I-miss) *)
  reg_ready : int array;  (** scoreboard: cycle each register is available *)
  reg_level : Hierarchy.level option array;
      (** the cache level servicing the pending fill of each register *)
  mutable fills : (Hierarchy.level * int) list;
      (** this thread's outstanding demand fills (level, ready cycle) *)
  mutable bundle_left : int;  (** issue-slot bookkeeping within a cycle *)
  mutable last_chk_fire : int;  (** cycle of this thread's last chk.c fire *)
  mutable spawned_at : int;
      (** cycle the current speculative occupancy began (-1 when idle) *)
  mutable spawn_src : Ssp_ir.Iref.t option;
      (** the [Spawn] instruction that bound this occupancy *)
  mutable spawn_target : string;  (** "fn#blk" label for timeline events *)
}

type machine = {
  cfg : Ssp_machine.Config.t;
  prog : Ssp_ir.Prog.t;
  mem : Memory.t;
  hier : Hierarchy.t;
  bp : Bpred.t;
  pcs : pcmap;
  ctxs : context array;
  stats : Stats.t;
  mutable rr : int;  (** round-robin cursor over contexts *)
  delinquent : Ssp_ir.Iref.Set.t;  (** perfect-delinquent filtering *)
  mutable last_spawned : int;
      (** context id bound by the most recent successful spawn (-1 if
          none); lets a timing model adjust the child's start *)
  attrib : Attrib.t option;  (** prefetch-lifecycle attribution, if any *)
  tel_spawns : Ssp_telemetry.Telemetry.counter;
  tel_spawn_denied : Ssp_telemetry.Telemetry.counter;
  tel_watchdog_kills : Ssp_telemetry.Telemetry.counter;
}

val create : ?attrib:Attrib.t -> Ssp_machine.Config.t -> Ssp_ir.Prog.t -> machine
(** Context 0 is the main thread, initialized at the program entry.
    [attrib] attaches prefetch-lifecycle attribution to the machine and
    its hierarchy (bookkeeping only; timing is unchanged). *)

val chk_allowed : machine -> now:int -> context -> bool
(** Whether a [chk.c] of this thread fires now: enough free contexts and
    the thread's refractory interval elapsed. Records the firing time when
    it returns true. *)

val free_context : machine -> context option
(** An inactive context, if any (never the main thread's). *)

val try_spawn :
  machine ->
  now:int ->
  src:Ssp_ir.Iref.t ->
  fn:string ->
  blk:int ->
  live_in:int64 array ->
  bool
(** Bind a free context as a speculative thread; charges the spawn and
    live-in-copy latency to the child's start. [src] is the spawning
    [Spawn] instruction, recorded for attribution and denied-spawn
    accounting. *)

val note_thread_end : machine -> context -> now:int -> watchdog:bool -> unit
(** Record the end of a speculative occupancy: lifetime attribution and a
    timeline event. Idempotent per occupancy; the issue loops call it when
    a speculative thread kills itself, [watchdog_check] and [try_spawn]
    call it for the other endings. *)

val select_threads : machine -> eligible:(context -> bool) -> context list
(** Up to [issue_threads] contexts in round-robin order satisfying
    [eligible]; advances the cursor. *)

val outstanding_level : context -> now:int -> Hierarchy.level option
(** Deepest level among the thread's outstanding fills (retiring completed
    ones), for Figure 10 accounting. *)

val demand_access :
  machine -> now:int -> ctx:context -> iref:Ssp_ir.Iref.t -> int64 ->
  Hierarchy.outcome
(** A load's cache access with perfect-delinquent filtering and per-site
    stats recording (main thread only). With attribution attached, a
    speculative load at a mapped slice site is tagged as a prefetch issue
    (value-used targets emit no lfetch — the load is the prefetch), and
    main-thread accesses settle outstanding prefetches. *)

val pf_tag_of : machine -> context -> Ssp_ir.Iref.t -> Attrib.tag option
(** The attribution tag of a prefetch issued by this context at this
    site, if attribution is on and the site maps to a delinquent load. *)

val watchdog_check : machine -> now:int -> context -> unit
(** Kill a speculative thread that exceeded its instruction budget. *)
