(** The in-order research Itanium model: 12-stage pipeline, SMT over four
    hardware contexts, two bundles issued per cycle from one thread or one
    bundle each from two threads, and — critically for the paper — Itanium
    stall-on-use semantics: a thread issues in order and stalls only when an
    instruction reads the destination register of an outstanding load miss
    (tracked by a per-register scoreboard).

    Branch direction comes from the shared gshare predictor; a mispredicted
    branch (or a BTB-missing taken branch, a [chk.c] flush, an I-cache
    miss) stalls the thread's front end for the redirect penalty.

    [chk.c] fires when a hardware context is free: the triggering thread
    takes an exception-like flush and resumes at the stub block; [spawn]
    binds the context, transferring the live-in buffer snapshot. Speculative
    threads never update memory and are reclaimed by [kill] or the
    watchdog. Simulation ends when the main thread halts. *)

val run :
  ?attrib:Attrib.t ->
  ?sampling:Smt.sampling ->
  Ssp_machine.Config.t ->
  Ssp_ir.Prog.t ->
  Stats.t
(** [attrib] attaches prefetch-lifecycle attribution; recording is passive
    and never changes cycle counts or outputs.

    [sampling] enables sampled simulation: [detail_window] cycle-accurate
    main-thread instructions alternate with [ff_window] fast-forwarded,
    functionally-warmed ones; [cycles] is extrapolated so the sampled IPC
    equals the detailed-window IPC. Outputs are byte-identical to a full
    run (fast-forward is architecturally exact); per-site load stats and
    cycle categories cover the detailed windows only. *)
