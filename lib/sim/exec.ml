open Ssp_isa

type env = {
  mem : Memory.t;
  prog : Ssp_ir.Prog.t;
  chk_free : unit -> bool;
  spawn : src:Ssp_ir.Iref.t -> fn:string -> blk:int -> live_in:int64 array -> bool;
  output : int64 -> unit;
}

type event =
  | Ev_plain
  | Ev_load of { addr : int64; width : int }
  | Ev_store of { addr : int64; width : int }
  | Ev_prefetch of int64
  | Ev_branch of { taken : bool }
  | Ev_call
  | Ev_ret
  | Ev_halt
  | Ev_kill
  | Ev_chk of { fired : bool }
  | Ev_spawn of { accepted : bool }
  | Ev_lib

let normalize_pc prog (t : Thread.t) =
  let rec go () =
    let f = Ssp_ir.Prog.find_func prog t.fn in
    if t.blk < Array.length f.blocks
       && t.ins >= Array.length f.blocks.(t.blk).ops
    then begin
      t.blk <- t.blk + 1;
      t.ins <- 0;
      go ()
    end
  in
  go ()

let instr_at prog (t : Thread.t) =
  normalize_pc prog t;
  let f = Ssp_ir.Prog.find_func prog t.fn in
  f.blocks.(t.blk).ops.(t.ins)

let sign_extend v width =
  match width with
  | 8 -> v
  | _ ->
    (* Loads zero-extend (documented in Op); value already masked. *)
    v

let step env (t : Thread.t) =
  normalize_pc env.prog t;
  let f = Ssp_ir.Prog.find_func env.prog t.fn in
  let op = f.blocks.(t.blk).ops.(t.ins) in
  t.instrs <- t.instrs + 1;
  let next () = t.ins <- t.ins + 1 in
  let jump label =
    t.blk <- Ssp_ir.Prog.block_index f label;
    t.ins <- 0
  in
  let get = Thread.get t and set = Thread.set t in
  match op with
  | Op.Nop ->
    next ();
    Ev_plain
  | Op.Movi (d, i) ->
    set d i;
    next ();
    Ev_plain
  | Op.Mov (d, s) ->
    set d (get s);
    next ();
    Ev_plain
  | Op.Alu (o, d, a, b) ->
    set d (Op.alu_eval o (get a) (get b));
    next ();
    Ev_plain
  | Op.Alui (o, d, a, i) ->
    set d (Op.alu_eval o (get a) i);
    next ();
    Ev_plain
  | Op.Cmp (o, d, a, b) ->
    set d (if Op.cmp_eval o (get a) (get b) then 1L else 0L);
    next ();
    Ev_plain
  | Op.Cmpi (o, d, a, i) ->
    set d (if Op.cmp_eval o (get a) i then 1L else 0L);
    next ();
    Ev_plain
  | Op.Load (w, d, b, off) ->
    let addr = Int64.add (get b) (Int64.of_int off) in
    let width = Op.width_bytes w in
    set d (sign_extend (Memory.read env.mem addr width) width);
    next ();
    Ev_load { addr; width }
  | Op.Store (w, s, b, off) ->
    let addr = Int64.add (get b) (Int64.of_int off) in
    let width = Op.width_bytes w in
    if not t.speculative then Memory.write env.mem addr width (get s);
    next ();
    Ev_store { addr; width }
  | Op.Lfetch (b, off) ->
    let addr = Int64.add (get b) (Int64.of_int off) in
    next ();
    Ev_prefetch addr
  | Op.Br l ->
    jump l;
    Ev_branch { taken = true }
  | Op.Brnz (s, l) ->
    let taken = not (Int64.equal (get s) 0L) in
    if taken then jump l else next ();
    Ev_branch { taken }
  | Op.Brz (s, l) ->
    let taken = Int64.equal (get s) 0L in
    if taken then jump l else next ();
    Ev_branch { taken }
  | Op.Call (callee, _) ->
    let saved =
      Array.sub t.regs Reg.first_stacked (Reg.count - Reg.first_stacked)
    in
    t.frames <-
      { Thread.saved_stacked = saved; ret_blk = t.blk; ret_ins = t.ins + 1;
        ret_fn = t.fn }
      :: t.frames;
    t.fn <- callee;
    t.blk <- 0;
    t.ins <- 0;
    Ev_call
  | Op.Icall (r, _) -> (
    let id = Int64.to_int (get r) in
    match Ssp_ir.Prog.func_by_code_id env.prog id with
    | None ->
      (* An indirect call through garbage: speculative threads tolerate it
         (treated as a nop); the main thread must not do this. *)
      if not t.speculative then
        failwith
          (Printf.sprintf "Exec: indirect call to unknown code id %d" id);
      next ();
      Ev_plain
    | Some callee ->
      let saved =
        Array.sub t.regs Reg.first_stacked (Reg.count - Reg.first_stacked)
      in
      t.frames <-
        { Thread.saved_stacked = saved; ret_blk = t.blk; ret_ins = t.ins + 1;
          ret_fn = t.fn }
        :: t.frames;
      t.fn <- callee.Ssp_ir.Prog.name;
      t.blk <- 0;
      t.ins <- 0;
      Ev_call)
  | Op.Ret -> (
    match t.frames with
    | [] ->
      (* Returning from the outermost frame ends the thread. *)
      t.active <- false;
      if t.speculative then Ev_kill else Ev_halt
    | fr :: rest ->
      Array.blit fr.Thread.saved_stacked 0 t.regs Reg.first_stacked
        (Reg.count - Reg.first_stacked);
      t.fn <- fr.Thread.ret_fn;
      t.blk <- fr.Thread.ret_blk;
      t.ins <- fr.Thread.ret_ins;
      t.frames <- rest;
      Ev_ret)
  | Op.Halt ->
    t.active <- false;
    Ev_halt
  | Op.Kill ->
    t.active <- false;
    Ev_kill
  | Op.Chk_c stub ->
    let fired = env.chk_free () in
    if fired then jump stub else next ();
    Ev_chk { fired }
  | Op.Spawn (fn, label) ->
    let target = Ssp_ir.Prog.find_func env.prog fn in
    let blk = Ssp_ir.Prog.block_index target label in
    let src = { Ssp_ir.Iref.fn = t.fn; blk = t.blk; ins = t.ins } in
    let accepted = env.spawn ~src ~fn ~blk ~live_in:t.lib_out in
    next ();
    Ev_spawn { accepted }
  | Op.Lib_st (slot, s) ->
    if slot >= 0 && slot < Thread.lib_slots then t.lib_out.(slot) <- get s;
    next ();
    Ev_lib
  | Op.Lib_ld (d, slot) ->
    if slot >= 0 && slot < Thread.lib_slots then set d t.live_in.(slot)
    else set d 0L;
    next ();
    Ev_lib
  | Op.Alloc (d, s) ->
    if t.speculative then set d 0L else set d (Memory.alloc env.mem (get s));
    next ();
    Ev_plain
  | Op.Print s ->
    if not t.speculative then env.output (get s);
    next ();
    Ev_plain
  | Op.Rand d ->
    (* xorshift64*; deterministic per thread. *)
    let x = t.rand_state in
    let x = Int64.logxor x (Int64.shift_left x 13) in
    let x = Int64.logxor x (Int64.shift_right_logical x 7) in
    let x = Int64.logxor x (Int64.shift_left x 17) in
    t.rand_state <- x;
    set d (Int64.shift_right_logical x 1);
    next ();
    Ev_plain
