open Ssp_isa

type env = {
  mem : Memory.t;
  prog : Ssp_ir.Prog.t;
  chk_free : unit -> bool;
  spawn : src:Ssp_ir.Iref.t -> fn:string -> blk:int -> live_in:int64 array -> bool;
  output : int64 -> unit;
  mutable ev_addr : int64;
}

(* Events are all constant constructors (immediates): returning one from the
   per-instruction hot path allocates nothing. The address of the last
   load/store/prefetch is passed out of band in [env.ev_addr] — assigning an
   int64 that [step] computed anyway stores the existing box. *)
type event =
  | Ev_plain
  | Ev_load
  | Ev_store
  | Ev_prefetch
  | Ev_branch_taken
  | Ev_branch_not_taken
  | Ev_call
  | Ev_ret
  | Ev_halt
  | Ev_kill
  | Ev_chk_fired
  | Ev_chk_nofire
  | Ev_spawned
  | Ev_spawn_denied
  | Ev_lib

(* Function lookup memoized per thread: a thread's [fn] only changes at
   calls/returns/spawns, so the front physical-equality probe hits on
   nearly every instruction and the Hashtbl lookup disappears from the hot
   path. Four move-to-front slots: a tight loop calling through a couple
   of helpers cycles over several functions, and fewer slots thrash back
   to the Hashtbl on every call and return. *)
let memo_promote (t : Thread.t) i f =
  let fns = t.cached_fns and fs = t.cached_funcs in
  for j = i downto 1 do
    fns.(j) <- fns.(j - 1);
    fs.(j) <- fs.(j - 1)
  done;
  fns.(0) <- t.fn;
  fs.(0) <- f

let func_of prog (t : Thread.t) =
  let fns = t.cached_fns and fn = t.fn in
  if Array.unsafe_get fns 0 == fn then Array.unsafe_get t.cached_funcs 0
  else if Array.unsafe_get fns 1 == fn then begin
    let f = t.cached_funcs.(1) in
    memo_promote t 1 f;
    f
  end
  else if Array.unsafe_get fns 2 == fn then begin
    let f = t.cached_funcs.(2) in
    memo_promote t 2 f;
    f
  end
  else if Array.unsafe_get fns 3 == fn then begin
    let f = t.cached_funcs.(3) in
    memo_promote t 3 f;
    f
  end
  else begin
    let f = Ssp_ir.Prog.find_func prog t.fn in
    memo_promote t 3 f;
    f
  end

let normalize_pc prog (t : Thread.t) =
  let f = func_of prog t in
  let blocks = f.Ssp_ir.Prog.blocks in
  let n = Array.length blocks in
  while t.blk < n && t.ins >= Array.length blocks.(t.blk).ops do
    t.blk <- t.blk + 1;
    t.ins <- 0
  done

let instr_at prog (t : Thread.t) =
  normalize_pc prog t;
  let f = func_of prog t in
  f.Ssp_ir.Prog.blocks.(t.blk).ops.(t.ins)

(* The per-instruction dispatch allocates nothing on the common paths: no
   closures (the old [next]/[jump]/[get]/[set] bindings cost four closure
   allocations per call), and direct [Thread.get]/[Thread.set] applications
   that the compiler can inline. [step_op] is the fetch-free core for
   callers that already normalized the pc and hold the function and
   instruction word (the cycle models and the fast-forward loop do, for
   their own bookkeeping); [step] is the self-contained form. *)
let step_op env (t : Thread.t) (f : Ssp_ir.Prog.func) (op : Op.t) =
  t.instrs <- t.instrs + 1;
  match op with
  | Op.Nop ->
    t.ins <- t.ins + 1;
    Ev_plain
  | Op.Movi (d, i) ->
    Thread.set t d i;
    t.ins <- t.ins + 1;
    Ev_plain
  | Op.Mov (d, s) ->
    Thread.set t d (Thread.get t s);
    t.ins <- t.ins + 1;
    Ev_plain
  | Op.Alu (o, d, a, b) ->
    Thread.set t d (Op.alu_eval o (Thread.get t a) (Thread.get t b));
    t.ins <- t.ins + 1;
    Ev_plain
  | Op.Alui (o, d, a, i) ->
    Thread.set t d (Op.alu_eval o (Thread.get t a) i);
    t.ins <- t.ins + 1;
    Ev_plain
  | Op.Cmp (o, d, a, b) ->
    Thread.set t d
      (if Op.cmp_eval o (Thread.get t a) (Thread.get t b) then 1L else 0L);
    t.ins <- t.ins + 1;
    Ev_plain
  | Op.Cmpi (o, d, a, i) ->
    Thread.set t d (if Op.cmp_eval o (Thread.get t a) i then 1L else 0L);
    t.ins <- t.ins + 1;
    Ev_plain
  | Op.Load (w, d, b, off) ->
    let addr = Int64.add (Thread.get t b) (Int64.of_int off) in
    (* Loads zero-extend (documented in Op); value already masked. *)
    Thread.set t d (Memory.read env.mem addr (Op.width_bytes w));
    t.ins <- t.ins + 1;
    env.ev_addr <- addr;
    Ev_load
  | Op.Store (w, s, b, off) ->
    let addr = Int64.add (Thread.get t b) (Int64.of_int off) in
    if not t.speculative then
      Memory.write env.mem addr (Op.width_bytes w) (Thread.get t s);
    t.ins <- t.ins + 1;
    env.ev_addr <- addr;
    Ev_store
  | Op.Lfetch (b, off) ->
    let addr = Int64.add (Thread.get t b) (Int64.of_int off) in
    t.ins <- t.ins + 1;
    env.ev_addr <- addr;
    Ev_prefetch
  | Op.Br l ->
    t.blk <- Ssp_ir.Prog.block_index f l;
    t.ins <- 0;
    Ev_branch_taken
  | Op.Brnz (s, l) ->
    if not (Int64.equal (Thread.get t s) 0L) then begin
      t.blk <- Ssp_ir.Prog.block_index f l;
      t.ins <- 0;
      Ev_branch_taken
    end
    else begin
      t.ins <- t.ins + 1;
      Ev_branch_not_taken
    end
  | Op.Brz (s, l) ->
    if Int64.equal (Thread.get t s) 0L then begin
      t.blk <- Ssp_ir.Prog.block_index f l;
      t.ins <- 0;
      Ev_branch_taken
    end
    else begin
      t.ins <- t.ins + 1;
      Ev_branch_not_taken
    end
  | Op.Call (callee, _) ->
    let fr = Thread.push_frame t ~ret_blk:t.blk ~ret_ins:(t.ins + 1) in
    Array.blit t.regs Reg.first_stacked fr.Thread.saved_stacked 0
      (Reg.count - Reg.first_stacked);
    t.fn <- callee;
    t.blk <- 0;
    t.ins <- 0;
    Ev_call
  | Op.Icall (r, _) -> (
    let id = Int64.to_int (Thread.get t r) in
    match Ssp_ir.Prog.func_by_code_id env.prog id with
    | None ->
      (* An indirect call through garbage: speculative threads tolerate it
         (treated as a nop); the main thread must not do this. *)
      if not t.speculative then
        failwith
          (Printf.sprintf "Exec: indirect call to unknown code id %d" id);
      t.ins <- t.ins + 1;
      Ev_plain
    | Some callee ->
      let fr = Thread.push_frame t ~ret_blk:t.blk ~ret_ins:(t.ins + 1) in
      Array.blit t.regs Reg.first_stacked fr.Thread.saved_stacked 0
        (Reg.count - Reg.first_stacked);
      t.fn <- callee.Ssp_ir.Prog.name;
      t.blk <- 0;
      t.ins <- 0;
      Ev_call)
  | Op.Ret ->
    if t.frame_n = 0 then begin
      (* Returning from the outermost frame ends the thread. *)
      t.active <- false;
      if t.speculative then Ev_kill else Ev_halt
    end
    else begin
      t.frame_n <- t.frame_n - 1;
      let fr = t.frames.(t.frame_n) in
      Array.blit fr.Thread.saved_stacked 0 t.regs Reg.first_stacked
        fr.Thread.saved_n;
      t.fn <- fr.Thread.ret_fn;
      t.blk <- fr.Thread.ret_blk;
      t.ins <- fr.Thread.ret_ins;
      Ev_ret
    end
  | Op.Halt ->
    t.active <- false;
    Ev_halt
  | Op.Kill ->
    t.active <- false;
    Ev_kill
  | Op.Chk_c stub ->
    if env.chk_free () then begin
      t.blk <- Ssp_ir.Prog.block_index f stub;
      t.ins <- 0;
      Ev_chk_fired
    end
    else begin
      t.ins <- t.ins + 1;
      Ev_chk_nofire
    end
  | Op.Spawn (fn, label) ->
    let target = Ssp_ir.Prog.find_func env.prog fn in
    let blk = Ssp_ir.Prog.block_index target label in
    let src = { Ssp_ir.Iref.fn = t.fn; blk = t.blk; ins = t.ins } in
    let accepted = env.spawn ~src ~fn ~blk ~live_in:t.lib_out in
    t.ins <- t.ins + 1;
    if accepted then Ev_spawned else Ev_spawn_denied
  | Op.Lib_st (slot, s) ->
    if slot >= 0 && slot < Thread.lib_slots then
      t.lib_out.(slot) <- Thread.get t s;
    t.ins <- t.ins + 1;
    Ev_lib
  | Op.Lib_ld (d, slot) ->
    if slot >= 0 && slot < Thread.lib_slots then
      Thread.set t d t.live_in.(slot)
    else Thread.set t d 0L;
    t.ins <- t.ins + 1;
    Ev_lib
  | Op.Alloc (d, s) ->
    if t.speculative then Thread.set t d 0L
    else Thread.set t d (Memory.alloc env.mem (Thread.get t s));
    t.ins <- t.ins + 1;
    Ev_plain
  | Op.Print s ->
    if not t.speculative then env.output (Thread.get t s);
    t.ins <- t.ins + 1;
    Ev_plain
  | Op.Rand d ->
    (* xorshift64*; deterministic per thread. *)
    let x = t.rand_state in
    let x = Int64.logxor x (Int64.shift_left x 13) in
    let x = Int64.logxor x (Int64.shift_right_logical x 7) in
    let x = Int64.logxor x (Int64.shift_left x 17) in
    t.rand_state <- x;
    Thread.set t d (Int64.shift_right_logical x 1);
    t.ins <- t.ins + 1;
    Ev_plain

let step env (t : Thread.t) =
  normalize_pc env.prog t;
  let f = func_of env.prog t in
  step_op env t f f.Ssp_ir.Prog.blocks.(t.blk).ops.(t.ins)
