type t = {
  counters : int array;  (* 2-bit saturating *)
  mask : int;
  history : int array;  (* per thread *)
  btb_tags : int array;  (* sets * ways, -1 invalid *)
  btb_lru : int array;
  btb_sets : int;
  btb_set_mask : int;
      (* [btb_sets - 1] when a power of two (set select is a [land]);
         [-1] otherwise, falling back to [mod] *)
  btb_ways : int;
  mutable clock : int;
  mutable lookups : int;
  mutable mispredicts : int;
}

let create (cfg : Ssp_machine.Config.t) =
  let n = cfg.gshare_entries in
  let sets = cfg.btb_entries / cfg.btb_ways in
  {
    counters = Array.make n 2;
    mask = n - 1;
    history = Array.make cfg.n_contexts 0;
    btb_tags = Array.make (sets * cfg.btb_ways) (-1);
    btb_lru = Array.make (sets * cfg.btb_ways) 0;
    btb_sets = sets;
    btb_set_mask = (if sets > 0 && sets land (sets - 1) = 0 then sets - 1 else -1);
    btb_ways = cfg.btb_ways;
    clock = 0;
    lookups = 0;
    mispredicts = 0;
  }

let index t ~thread ~pc = (pc lxor t.history.(thread)) land t.mask

let predict t ~thread ~pc =
  t.lookups <- t.lookups + 1;
  t.counters.(index t ~thread ~pc) >= 2

let update t ~thread ~pc ~taken =
  let i = index t ~thread ~pc in
  let c = t.counters.(i) in
  let predicted = c >= 2 in
  if predicted <> taken then t.mispredicts <- t.mispredicts + 1;
  t.counters.(i) <- (if taken then min 3 (c + 1) else max 0 (c - 1));
  t.history.(thread) <- ((t.history.(thread) lsl 1) lor Bool.to_int taken) land t.mask

(* Way index holding [pc], or -1: an int result and explicit parameters
   keep the per-branch hot path allocation-free (a local closure would
   allocate per lookup). *)
let rec scan_btb tags base pc ways w =
  if w >= ways then -1
  else if tags.(base + w) = pc then base + w
  else scan_btb tags base pc ways (w + 1)

let btb_set t ~pc =
  if t.btb_set_mask >= 0 then pc land t.btb_set_mask else pc mod t.btb_sets

let btb_find t ~pc =
  let base = btb_set t ~pc * t.btb_ways in
  scan_btb t.btb_tags base pc t.btb_ways 0

let btb_lookup t ~pc =
  let i = btb_find t ~pc in
  if i >= 0 then begin
    t.clock <- t.clock + 1;
    t.btb_lru.(i) <- t.clock;
    true
  end
  else false

let btb_insert t ~pc =
  if btb_find t ~pc < 0 then begin
    let base = btb_set t ~pc * t.btb_ways in
    let victim = ref base in
    for w = 1 to t.btb_ways - 1 do
      if t.btb_lru.(base + w) < t.btb_lru.(!victim) then victim := base + w
    done;
    t.clock <- t.clock + 1;
    t.btb_tags.(!victim) <- pc;
    t.btb_lru.(!victim) <- t.clock
  end

let mispredicts t = t.mispredicts
let lookups t = t.lookups
