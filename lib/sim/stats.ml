type category = Cat_l3 | Cat_l2 | Cat_l1 | Cat_cache_exec | Cat_exec | Cat_other

type load_site = {
  mutable accesses : int;
  mutable l1 : int;
  mutable l2 : int;
  mutable l2_partial : int;
  mutable l3 : int;
  mutable l3_partial : int;
  mutable mem : int;
  mutable mem_partial : int;
}

type t = {
  mutable cycles : int;
  mutable main_instrs : int;
  mutable spec_instrs : int;
  mutable spawns : int;
  mutable chk_fired : int;
  mutable mispredicts : int;
  mutable prefetches : int;
  categories : int array;
  loads : load_site Ssp_ir.Iref.Tbl.t;
  mutable outputs : int64 list;
  mutable out_buf : int64 array;
  mutable out_n : int;
  mutable sites : load_site option array;
}

let create () =
  {
    cycles = 0;
    main_instrs = 0;
    spec_instrs = 0;
    spawns = 0;
    chk_fired = 0;
    mispredicts = 0;
    prefetches = 0;
    categories = Array.make 6 0;
    loads = Ssp_ir.Iref.Tbl.create 64;
    outputs = [];
    out_buf = [||];
    out_n = 0;
    sites = [||];
  }

let push_output t v =
  let n = t.out_n in
  let cap = Array.length t.out_buf in
  if n >= cap then begin
    let nb = Array.make (max 64 (2 * cap)) 0L in
    Array.blit t.out_buf 0 nb 0 cap;
    t.out_buf <- nb
  end;
  t.out_buf.(n) <- v;
  t.out_n <- n + 1

let ensure_sites t n =
  if Array.length t.sites < n then begin
    let ns = Array.make n None in
    Array.blit t.sites 0 ns 0 (Array.length t.sites);
    t.sites <- ns
  end

let category_index = function
  | Cat_l3 -> 0
  | Cat_l2 -> 1
  | Cat_l1 -> 2
  | Cat_cache_exec -> 3
  | Cat_exec -> 4
  | Cat_other -> 5

let add_category t c =
  let i = category_index c in
  t.categories.(i) <- t.categories.(i) + 1

let load_site t iref =
  match Ssp_ir.Iref.Tbl.find_opt t.loads iref with
  | Some s -> s
  | None ->
    let s =
      {
        accesses = 0;
        l1 = 0;
        l2 = 0;
        l2_partial = 0;
        l3 = 0;
        l3_partial = 0;
        mem = 0;
        mem_partial = 0;
      }
    in
    Ssp_ir.Iref.Tbl.replace t.loads iref s;
    s

let bump_site s level ~partial =
  s.accesses <- s.accesses + 1;
  match (level, partial) with
  | Hierarchy.L1, _ -> s.l1 <- s.l1 + 1
  | Hierarchy.L2, false -> s.l2 <- s.l2 + 1
  | Hierarchy.L2, true -> s.l2_partial <- s.l2_partial + 1
  | Hierarchy.L3, false -> s.l3 <- s.l3 + 1
  | Hierarchy.L3, true -> s.l3_partial <- s.l3_partial + 1
  | Hierarchy.Mem, false -> s.mem <- s.mem + 1
  | Hierarchy.Mem, true -> s.mem_partial <- s.mem_partial + 1

let record_load t iref level ~partial = bump_site (load_site t iref) level ~partial

let record_load_pc t ~pc level ~partial =
  let s =
    match t.sites.(pc) with
    | Some s -> s
    | None ->
      let s =
        {
          accesses = 0;
          l1 = 0;
          l2 = 0;
          l2_partial = 0;
          l3 = 0;
          l3_partial = 0;
          mem = 0;
          mem_partial = 0;
        }
      in
      t.sites.(pc) <- Some s;
      s
  in
  bump_site s level ~partial

let finish ?irefs t =
  (* Merge the pc-indexed site counters into the per-Iref table consumers
     read (figures, bench miss rates). *)
  (match irefs with
  | Some irefs ->
    Array.iteri
      (fun pc slot ->
        match slot with
        | Some s when pc < Array.length irefs ->
          let dst = load_site t irefs.(pc) in
          dst.accesses <- dst.accesses + s.accesses;
          dst.l1 <- dst.l1 + s.l1;
          dst.l2 <- dst.l2 + s.l2;
          dst.l2_partial <- dst.l2_partial + s.l2_partial;
          dst.l3 <- dst.l3 + s.l3;
          dst.l3_partial <- dst.l3_partial + s.l3_partial;
          dst.mem <- dst.mem + s.mem;
          dst.mem_partial <- dst.mem_partial + s.mem_partial
        | _ -> ())
      t.sites
  | None -> ());
  (* Buffered outputs are in program order by construction; the legacy
     cons path (if a caller still uses it) builds reversed. *)
  let buffered = List.init t.out_n (fun i -> t.out_buf.(i)) in
  t.outputs <- List.rev_append t.outputs buffered;
  t

let ipc t =
  if t.cycles = 0 then 0.0 else float_of_int t.main_instrs /. float_of_int t.cycles

let pp ppf t =
  let cat name i = (name, t.categories.(i)) in
  let cats =
    [
      cat "L3" 0; cat "L2" 1; cat "L1" 2; cat "Cache+Exec" 3; cat "Exec" 4;
      cat "Other" 5;
    ]
  in
  Format.fprintf ppf
    "@[<v>cycles        %d@,main instrs   %d (IPC %.3f)@,spec instrs   %d@,\
     spawns        %d (chk fired %d)@,mispredicts   %d@,prefetches    %d@,\
     cycle breakdown:@,"
    t.cycles t.main_instrs (ipc t) t.spec_instrs t.spawns t.chk_fired
    t.mispredicts t.prefetches;
  List.iter
    (fun (n, v) ->
      Format.fprintf ppf "  %-11s %d (%.1f%%)@," n v
        (if t.cycles = 0 then 0.0
         else 100.0 *. float_of_int v /. float_of_int t.cycles))
    cats;
  Format.fprintf ppf "@]"
