type result = {
  outputs : int64 list;
  instrs : int;
  spec_instrs : int;
  spawns : int;
}

let run ?(max_instrs = 200_000_000) ?(spawning = false) ?hook prog =
  let mem = Memory.create () in
  let outputs = ref [] in
  let main = Thread.create ~id:0 in
  main.Thread.fn <- prog.Ssp_ir.Prog.entry;
  main.Thread.active <- true;
  Thread.set main Ssp_isa.Reg.sp Ssp_ir.Prog.stack_base;
  let specs : Thread.t option array = Array.make 3 None in
  let spawns = ref 0 in
  let spec_instrs = ref 0 in
  let free_slot () =
    let rec go i =
      if i >= Array.length specs then None
      else match specs.(i) with None -> Some i | Some _ -> go (i + 1)
    in
    go 0
  in
  let env =
    {
      Exec.mem;
      prog;
      chk_free = (fun () -> spawning && Option.is_some (free_slot ()));
      spawn =
        (fun ~src:_ ~fn ~blk ~live_in ->
          if not spawning then false
          else
            match free_slot () with
            | None -> false
            | Some i ->
              let th = Thread.create ~id:(1 + i) in
              Thread.reset_for_spawn th ~fn ~blk ~live_in
                ~rand_state:0x2545F4914F6CDD1DL;
              specs.(i) <- Some th;
              incr spawns;
              true);
      output = (fun v -> outputs := v :: !outputs);
      ev_addr = 0L;
    }
  in
  let step_thread th =
    match hook with
    | None -> Exec.step env th
    | Some h ->
      Exec.normalize_pc prog th;
      let iref = Ssp_ir.Iref.make th.Thread.fn th.Thread.blk th.Thread.ins in
      let op = Exec.instr_at prog th in
      let ev = Exec.step env th in
      h env th iref op ev;
      ev
  in
  let watchdog = 1_000_000 in
  let rec loop () =
    if not main.Thread.active then ()
    else if main.Thread.instrs >= max_instrs then
      failwith "Funcsim.run: main thread exceeded max_instrs"
    else begin
      (* Main thread: a burst of instructions, then speculative threads get
         a proportional burst (coarse interleaving). *)
      let burst = 64 in
      let i = ref 0 in
      while !i < burst && main.Thread.active do
        ignore (step_thread main);
        incr i
      done;
      if spawning then
        Array.iteri
          (fun si slot ->
            match slot with
            | None -> ()
            | Some th ->
              let j = ref 0 in
              while !j < burst && th.Thread.active do
                ignore (step_thread th);
                incr spec_instrs;
                incr j;
                if th.Thread.instrs > watchdog then th.Thread.active <- false
              done;
              if not th.Thread.active then specs.(si) <- None)
          specs;
      loop ()
    end
  in
  loop ();
  {
    outputs = List.rev !outputs;
    instrs = main.Thread.instrs;
    spec_instrs = !spec_instrs;
    spawns = !spawns;
  }
