(* Predecoded flat instruction stream for the functional fast-forward
   interpreter.

   The boxed {!Ssp_isa.Op.t} representation costs the hot loop a chain of
   dependent heap loads per instruction (blocks array -> block record ->
   ops array -> constructor block -> argument fields). Decoding each
   function once into flat [int array]s turns the fetch into two contiguous
   array reads and the dispatch into an integer switch.

   Word layout (63-bit OCaml int):

     bits  0..5   opcode
     bits  6..12  d   (destination register, or store source)
     bits 13..19  a   (first source / base register)
     bits 20..26  b   (second source register)
     bits 27..62  imm (signed: memory offset, branch target block index,
                       callee index into [Layout.by_index], or index into
                       [imms] for 64-bit immediates)

   Opcode map — the interpreter in {!Smt.fast_forward} matches these as
   literal patterns, so the two files must change together (the sampling
   tests pin them: sampled and full runs must produce identical outputs):

      0 nop            1 movi d,imms[imm]   2 mov d,a
      3..12  alu  d,a,b     (add sub mul div rem and or xor shl shr)
     13..22  alui d,a,imms[imm]              (same order)
     23..28  cmp  d,a,b     (eq ne lt le gt ge)
     29..34  cmpi d,a,imms[imm]              (same order)
     35..38  load  d,[a+imm]   (widths 1 2 4 8)
     39..42  store [a+imm],d   (widths 1 2 4 8; source in d field)
     43 lfetch [a+imm]    44 br imm       45 brnz a,imm   46 brz a,imm
     47 call imm          48 ret          49 halt         50 kill
     51 chk imm           52 rand d       53 slow

   [slow] marks the rare ops the interpreter executes through
   {!Exec.step_op} on the boxed form (icall, spawn, lib.st/ld, alloc,
   print — and any op whose static target did not resolve, preserving the
   original execution-time error behavior). *)

type t = {
  code : int array array;  (* per block: one packed word per instruction *)
  imms : int64 array;  (* 64-bit immediate pool, shared per function *)
  n_save : int;
      (* how many stacked registers (from [Reg.first_stacked]) this
         function's code mentions: every register it can read or write is
         below that prefix, so a call made FROM this function only needs to
         save/restore that many — the rest can never be observed by the
         code that resumes after the return *)
}

let imm_bits = 36
let imm_mask = (1 lsl imm_bits) - 1
let opc_slow = 53

let enc ?(d = 0) ?(a = 0) ?(b = 0) ?(imm = 0) opc =
  opc lor (d lsl 6) lor (a lsl 13) lor (b lsl 20)
  lor ((imm land imm_mask) lsl 27)

let alu_code : Ssp_isa.Op.alu -> int = function
  | Add -> 0
  | Sub -> 1
  | Mul -> 2
  | Div -> 3
  | Rem -> 4
  | And -> 5
  | Or -> 6
  | Xor -> 7
  | Shl -> 8
  | Shr -> 9

let cmp_code : Ssp_isa.Op.cmp -> int = function
  | Eq -> 0
  | Ne -> 1
  | Lt -> 2
  | Le -> 3
  | Gt -> 4
  | Ge -> 5

let width_code : Ssp_isa.Op.width -> int = function
  | W1 -> 0
  | W2 -> 1
  | W4 -> 2
  | W8 -> 3

(* [func_index] resolves a callee name to its index in the program's
   function table, or -1 when unknown (the call then decodes as [slow] and
   fails at execution time exactly as the boxed interpreter would). *)
let decode_func ~func_index (f : Ssp_ir.Prog.func) =
  let imms = ref [] and n_imm = ref 0 in
  let imm64 v =
    let k = !n_imm in
    imms := v :: !imms;
    incr n_imm;
    k
  in
  let blk_idx l =
    match Ssp_ir.Prog.block_index f l with
    | i -> i
    | exception _ -> -1
  in
  let code =
    Array.map
      (fun (b : Ssp_ir.Prog.block) ->
        Array.map
          (fun (op : Ssp_isa.Op.t) ->
            match op with
            | Nop -> enc 0
            | Movi (d, i) -> enc 1 ~d ~imm:(imm64 i)
            | Mov (d, s) -> enc 2 ~d ~a:s
            | Alu (o, d, a, b) -> enc (3 + alu_code o) ~d ~a ~b
            | Alui (o, d, a, i) -> enc (13 + alu_code o) ~d ~a ~imm:(imm64 i)
            | Cmp (o, d, a, b) -> enc (23 + cmp_code o) ~d ~a ~b
            | Cmpi (o, d, a, i) -> enc (29 + cmp_code o) ~d ~a ~imm:(imm64 i)
            | Load (w, d, b, off) -> enc (35 + width_code w) ~d ~a:b ~imm:off
            | Store (w, s, b, off) ->
              enc (39 + width_code w) ~d:s ~a:b ~imm:off
            | Lfetch (b, off) -> enc 43 ~a:b ~imm:off
            | Br l ->
              let t = blk_idx l in
              if t < 0 then enc opc_slow else enc 44 ~imm:t
            | Brnz (s, l) ->
              let t = blk_idx l in
              if t < 0 then enc opc_slow else enc 45 ~a:s ~imm:t
            | Brz (s, l) ->
              let t = blk_idx l in
              if t < 0 then enc opc_slow else enc 46 ~a:s ~imm:t
            | Call (callee, _) ->
              let fi = func_index callee in
              if fi < 0 then enc opc_slow else enc 47 ~imm:fi
            | Ret -> enc 48
            | Halt -> enc 49
            | Kill -> enc 50
            | Chk_c l ->
              let t = blk_idx l in
              if t < 0 then enc opc_slow else enc 51 ~imm:t
            | Rand d -> enc 52 ~d
            | Icall _ | Spawn _ | Lib_st _ | Lib_ld _ | Alloc _ | Print _ ->
              enc opc_slow)
          b.ops)
      f.blocks
  in
  let max_reg = ref 0 in
  Array.iter
    (fun (b : Ssp_ir.Prog.block) ->
      Array.iter
        (fun op ->
          List.iter
            (fun r -> if r > !max_reg then max_reg := r)
            (Ssp_isa.Op.defs op);
          List.iter
            (fun r -> if r > !max_reg then max_reg := r)
            (Ssp_isa.Op.uses op))
        b.ops)
    f.blocks;
  let n_save = max 0 (!max_reg - Ssp_isa.Reg.first_stacked + 1) in
  { code; imms = Array.of_list (List.rev !imms); n_save }

let empty = { code = [||]; imms = [||]; n_save = 0 }
