(** Predecoded flat instruction stream for the fast-forward interpreter.

    One packed [int] word per instruction (opcode + register fields +
    signed immediate), 64-bit immediates in a per-function pool. The word
    format and opcode numbering are documented in [decode.ml]; the
    interpreter in {!Smt.fast_forward} matches the opcodes as literal
    patterns, so the two must change together. *)

type t = {
  code : int array array;  (** per block: one packed word per instruction *)
  imms : int64 array;  (** 64-bit immediate pool, indexed by [imm] field *)
  n_save : int;
      (** stacked-register prefix this function's code mentions; calls made
          from it save/restore only that many (see decode.ml) *)
}

val opc_slow : int
(** Opcode of ops the interpreter defers to {!Exec.step_op} (boxed form). *)

val decode_func : func_index:(string -> int) -> Ssp_ir.Prog.func -> t
(** [func_index] maps a callee name to its index in the program's function
    table ([Layout.by_index] order), or -1 when unknown — the call then
    decodes as [slow], preserving execution-time error behavior. *)

val empty : t
(** Placeholder for dummy layout entries. *)
