(** Byte-addressable simulated memory, paged and zero-initialized, with the
    bump allocator backing the [Alloc] instruction. Little-endian. *)

type t

val create : unit -> t

val read : t -> int64 -> int -> int64
(** [read m addr bytes] with [bytes] in {1,2,4,8}; zero-extends except for
    8-byte reads. *)

val write : t -> int64 -> int -> int64 -> unit

val read_i : t -> int -> int -> int64
(** [read] with the address already truncated to the native-int 62-bit
    address space — the decoded fast-forward loop computes addresses in
    int arithmetic to avoid int64 boxing. *)

val write_i : t -> int -> int -> int64 -> unit

val alloc : t -> int64 -> int64
(** Bump-allocate the given number of bytes (8-byte aligned); returns the
    base address. *)

val heap_used : t -> int64
