open Ssp_isa
open Ssp_machine
module T = Ssp_telemetry.Telemetry

(* Reservation-station pressure tracking: a ring buffer counting dispatched
   instructions whose execution starts at a future cycle. *)
let rs_horizon = 4096

(* The per-thread ROB is a preallocated ring of completion cycles in
   program order (dispatch refuses to exceed [rob_entries], so the ring
   never overflows). *)
type othread = {
  ctx : Smt.context;
  rob : int array;  (* completion cycles, program order *)
  mutable rob_head : int;
  mutable rob_n : int;
  future_starts : int array;
  mutable waiting : int;  (* dispatched but not yet started *)
  mutable retired_this_cycle : int;
  mutable rob_max : int;  (* max completion among in-flight entries *)
}

let run ?attrib ?sampling (cfg : Config.t) (prog : Ssp_ir.Prog.t) =
  T.with_span "sim.ooo" @@ fun () ->
  let m = Smt.create ?attrib cfg prog in
  let stats = m.Smt.stats in
  let now = ref 0 in
  let stepping = ref m.Smt.ctxs.(0) in
  let env =
    {
      Exec.mem = m.Smt.mem;
      prog;
      chk_free = (fun () -> Smt.chk_allowed m ~now:!now !stepping);
      spawn =
        (fun ~src ~fn ~blk ~live_in ->
          (* Injected chained-spawn breakage: a speculative thread's spawn
             silently fails, cutting the chain. *)
          if
            (!stepping).Smt.thread.Thread.speculative
            && Ssp_fault.Fault.fire Smt.site_chain_break
          then false
          else Smt.try_spawn m ~now:!now ~src ~fn ~blk ~live_in);
      output = (fun v -> Stats.push_output stats v);
      ev_addr = 0L;
    }
  in
  let rob_cap = max 1 cfg.Config.rob_entries in
  let oths =
    Array.map
      (fun ctx ->
        {
          ctx;
          rob = Array.make rob_cap 0;
          rob_head = 0;
          rob_n = 0;
          future_starts = Array.make rs_horizon 0;
          waiting = 0;
          retired_this_cycle = 0;
          rob_max = 0;
        })
      m.Smt.ctxs
  in
  (* Scratch for allocation-free operand queries. *)
  let ubuf = Array.make Op.scratch_regs 0 in
  let dbuf = Array.make Op.scratch_regs 0 in
  (* Sampled-simulation bookkeeping. *)
  let detail_left = ref max_int in
  let ff_total = ref 0 in
  let est_extra = ref 0.0 in
  (* Local (per-window) CPI extrapolation with per-window detailed
     warming — see Inorder. *)
  let win_cycles0 = ref 0 in
  let win_instrs0 = ref 0 in
  let measuring = ref false in
  let jst = ref Smt.jitter_seed in
  (* Centered extrapolation — see Inorder. *)
  let pending_k = ref 0 in
  let prev_cpi = ref 0.0 in
  (match sampling with
  | Some s -> detail_left := s.Smt.detail_window
  | None -> ());
  (* Shared memory ports: per-cycle usage ring (cycle-tagged), so a port
     reserved for a distant future cycle never blocks an earlier one. *)
  let port_ring = 8192 in
  let port_tag = Array.make port_ring (-1) in
  let port_cnt = Array.make port_ring 0 in
  let acquire_port start =
    let c = ref (max start !now) in
    let found = ref (-1) in
    while !found < 0 do
      let i = !c mod port_ring in
      if port_tag.(i) <> !c then begin
        port_tag.(i) <- !c;
        port_cnt.(i) <- 0
      end;
      if port_cnt.(i) < cfg.Config.mem_ports then begin
        port_cnt.(i) <- port_cnt.(i) + 1;
        found := !c
      end
      else incr c
    done;
    !found
  in
  let begin_cycle ot =
    let slot = !now mod rs_horizon in
    ot.waiting <- ot.waiting - ot.future_starts.(slot);
    ot.future_starts.(slot) <- 0;
    ot.retired_this_cycle <- 0
  in
  let retire ot =
    let n = ref 0 in
    let continue_ = ref true in
    while !continue_ && !n < cfg.Config.retire_width && ot.rob_n > 0 do
      if ot.rob.(ot.rob_head) <= !now then begin
        ot.rob_head <- (ot.rob_head + 1) mod rob_cap;
        ot.rob_n <- ot.rob_n - 1;
        incr n
      end
      else continue_ := false
    done;
    if ot.rob_n = 0 then ot.rob_max <- !now;
    ot.retired_this_cycle <- !n
  in
  (* Dispatch one instruction of the thread; false = dispatch must stop. *)
  let dispatch_one ot =
    let ctx = ot.ctx in
    stepping := ctx;
    let th = ctx.Smt.thread in
    if not th.Thread.active then false
    else if ot.rob_n >= cfg.Config.rob_entries then false
    else begin
      Exec.normalize_pc prog th;
      let e = Smt.layout_of m ctx in
      let blk0 = th.Thread.blk and ins0 = th.Thread.ins in
      let pcid = e.Layout.block_base.(blk0) + ins0 in
      let op = e.Layout.func.Ssp_ir.Prog.blocks.(blk0).ops.(ins0) in
      let nu = Op.uses_into op ubuf in
      let ready_at = ref !now in
      for i = 0 to nu - 1 do
        if ctx.Smt.reg_ready.(ubuf.(i)) > !ready_at then
          ready_at := ctx.Smt.reg_ready.(ubuf.(i))
      done;
      let ready_at = !ready_at in
      if ready_at > !now && ot.waiting >= cfg.Config.rs_entries then false
      else if ready_at - !now >= rs_horizon then false
      else begin
        let is_cond =
          match op with Op.Brnz _ | Op.Brz _ -> true | _ -> false
        in
        let predicted =
          is_cond && Bpred.predict m.Smt.bp ~thread:th.Thread.id ~pc:pcid
        in
        let ev = Exec.step env th in
        if th.Thread.id = 0 then begin
          stats.Stats.main_instrs <- stats.Stats.main_instrs + 1;
          decr detail_left
        end
        else stats.Stats.spec_instrs <- stats.Stats.spec_instrs + 1;
        let base_latency = max 1 (Latency.of_op op) in
        let complete = ref (ready_at + base_latency) in
        (match ev with
        | Exec.Ev_load ->
          let start = acquire_port ready_at in
          let o = Smt.demand_access m ~now:start ~ctx ~pc:pcid env.Exec.ev_addr in
          complete := o.Hierarchy.ready
        | Exec.Ev_store -> (
          let start = acquire_port ready_at in
          (match m.Smt.attrib with
          | None ->
            ignore
              (Hierarchy.demand m.Smt.hier ~now:start ~low_priority:false
                 env.Exec.ev_addr)
          | Some _ ->
            ignore
              (Hierarchy.access m.Smt.hier ~now:start
                 ~demand_main:(th.Thread.id = 0) env.Exec.ev_addr));
          complete := start + 1)
        | Exec.Ev_prefetch -> (
          stats.Stats.prefetches <- stats.Stats.prefetches + 1;
          let start = acquire_port ready_at in
          (match m.Smt.attrib with
          | None ->
            ignore (Hierarchy.prefetch m.Smt.hier ~now:start env.Exec.ev_addr)
          | Some _ ->
            let iref = Layout.iref_of m.Smt.lay pcid in
            ignore
              (Hierarchy.access m.Smt.hier ~now:start ~prefetch:true
                 ?pf_tag:(Smt.pf_tag_of m ctx iref) env.Exec.ev_addr));
          complete := start + 1)
        | Exec.Ev_branch_taken | Exec.Ev_branch_not_taken ->
          let taken = ev = Exec.Ev_branch_taken in
          if is_cond then begin
            Bpred.update m.Smt.bp ~thread:th.Thread.id ~pc:pcid ~taken;
            if predicted <> taken then begin
              stats.Stats.mispredicts <- stats.Stats.mispredicts + 1;
              (* Redirect when the branch resolves. *)
              ctx.Smt.redirect_until <- !complete + cfg.Config.front_end_penalty
            end
            else if taken && not (Bpred.btb_lookup m.Smt.bp ~pc:pcid) then begin
              Bpred.btb_insert m.Smt.bp ~pc:pcid;
              ctx.Smt.redirect_until <- !now + 2
            end
          end
          else if not (Bpred.btb_lookup m.Smt.bp ~pc:pcid) then begin
            Bpred.btb_insert m.Smt.bp ~pc:pcid;
            ctx.Smt.redirect_until <- !now + 1
          end
        | Exec.Ev_chk_fired ->
          stats.Stats.chk_fired <- stats.Stats.chk_fired + 1;
          if cfg.Config.spawn_flush then begin
            (* Spawning happens at retirement: flush costs the front-end
               refill plus draining the in-flight window (§4.4.1). *)
            let drain = ot.rob_n / max 1 cfg.Config.retire_width in
            ctx.Smt.redirect_until <-
              !now + cfg.Config.front_end_penalty + drain
          end
        | Exec.Ev_chk_nofire -> ()
        | Exec.Ev_call | Exec.Ev_ret -> ctx.Smt.redirect_until <- !now + 1
        | Exec.Ev_halt | Exec.Ev_kill ->
          if th.Thread.speculative then
            Smt.note_thread_end m ctx ~now:!now ~watchdog:false
        | Exec.Ev_spawned | Exec.Ev_spawn_denied | Exec.Ev_lib | Exec.Ev_plain
          ->
          ());
        (match ev with
        | Exec.Ev_lib -> complete := ready_at + cfg.Config.lib_latency
        | _ -> ());
        let nd = Op.defs_into op dbuf in
        for i = 0 to nd - 1 do
          ctx.Smt.reg_ready.(dbuf.(i)) <- !complete
        done;
        ot.rob.((ot.rob_head + ot.rob_n) mod rob_cap) <- !complete;
        ot.rob_n <- ot.rob_n + 1;
        ot.rob_max <- max ot.rob_max !complete;
        (* Spawning happens at the retirement stage (§2.1): the child
           context cannot start before everything ahead of the spawn in
           this thread's window has retired. *)
        (match ev with
        | Exec.Ev_spawned when m.Smt.last_spawned >= 0 ->
          let child = m.Smt.ctxs.(m.Smt.last_spawned) in
          let retire_at = max !now ot.rob_max in
          child.Smt.redirect_until <-
            max child.Smt.redirect_until
              (retire_at + cfg.Config.spawn_latency + cfg.Config.lib_latency)
        | _ -> ());
        if ready_at > !now then begin
          ot.waiting <- ot.waiting + 1;
          ot.future_starts.(ready_at mod rs_horizon) <-
            ot.future_starts.(ready_at mod rs_horizon) + 1
        end;
        Smt.watchdog_check m ~now:!now ctx;
        (* Stop dispatching past a redirect or thread end. *)
        th.Thread.active && ctx.Smt.redirect_until <= !now
      end
    end
  in
  (* Per-interval telemetry: retire rate and demand misses over time. *)
  let tel_interval = 8192 in
  let tel_last_instrs = ref 0 in
  let tel_last_misses = ref 0 in
  let tel_ipc = T.series "sim.ooo.interval_ipc" in
  let tel_miss = T.series "sim.ooo.interval_l1d_misses" in
  let tel_tick () =
    if T.is_enabled () && !now mod tel_interval = 0 then begin
      let mi = stats.Stats.main_instrs in
      let ms = Cache.stats_misses (Hierarchy.l1d m.Smt.hier) in
      T.sample tel_ipc ~x:(float_of_int !now)
        ~y:
          (float_of_int (mi - !tel_last_instrs) /. float_of_int tel_interval);
      T.sample tel_miss ~x:(float_of_int !now)
        ~y:(float_of_int (ms - !tel_last_misses));
      tel_last_instrs := mi;
      tel_last_misses := ms
    end
  in
  let main = oths.(0) in
  let running = ref true in
  (* The per-cycle helpers are hoisted out of the main loop (budget passed
     through a scratch ref) so the steady-state cycle allocates nothing. *)
  (* Don't hand dispatch slots to threads that cannot accept work
     (ROB full or reservation stations saturated). *)
  let eligible (c : Smt.context) =
    let ot = oths.(c.Smt.thread.Thread.id) in
    c.Smt.thread.Thread.active
    && c.Smt.redirect_until <= !now
    && ot.rob_n < cfg.Config.rob_entries
    && ot.waiting < cfg.Config.rs_entries
  in
  let dispatch_budget = ref 0 in
  let dispatch_chosen (c : Smt.context) =
    let ot = oths.(c.Smt.thread.Thread.id) in
    let budget = !dispatch_budget in
    let k = ref 0 in
    let go = ref true in
    while !go && !k < budget do
      go := dispatch_one ot;
      incr k
    done
  in
  while !running do
    if !now > cfg.Config.max_cycles then failwith "Ooo.run: exceeded max_cycles";
    Array.iter begin_cycle oths;
    Array.iter retire oths;
    let nsel = Smt.select_threads m ~eligible in
    dispatch_budget :=
      (if nsel = 1 then cfg.Config.issue_bundles * 3 else 3);
    for i = 0 to nsel - 1 do
      dispatch_chosen m.Smt.sel.(i)
    done;
    (* Figure 10 accounting: execution is "active" when the main thread
       retired something this cycle. *)
    let rank = Smt.outstanding_rank main.ctx ~now:!now in
    let active = main.retired_this_cycle > 0 in
    let cat =
      if active then if rank > 0 then Stats.Cat_cache_exec else Stats.Cat_exec
      else
        match rank with
        | 4 -> Stats.Cat_l3
        | 3 -> Stats.Cat_l2
        | 2 -> Stats.Cat_l1
        | _ -> Stats.Cat_other
    in
    Stats.add_category stats cat;
    incr now;
    tel_tick ();
    stats.Stats.cycles <- !now;
    (* Sampled mode: after the detailed window's instruction budget is
       spent, fast-forward with functional warming and extrapolate the
       skipped cycles from the detailed cycles-per-instruction so far. *)
    (match sampling with
    | Some s ->
      if
        (not !measuring)
        && s.Smt.detail_window - !detail_left >= s.Smt.detail_window / 3
      then begin
        win_cycles0 := !now;
        win_instrs0 := stats.Stats.main_instrs - !ff_total;
        measuring := true
      end;
      if !detail_left <= 0 && main.ctx.Smt.thread.Thread.active then begin
        let det_instrs =
          stats.Stats.main_instrs - !ff_total - !win_instrs0
        in
        let det_cycles = !now - !win_cycles0 in
        let cpi_w =
          if det_instrs > 0 then
            float_of_int det_cycles /. float_of_int det_instrs
          else !prev_cpi
        in
        if !pending_k > 0 then
          est_extra :=
            !est_extra
            +. (float_of_int !pending_k *. ((!prev_cpi +. cpi_w) /. 2.0));
        let k =
          Smt.fast_forward m env ~now:!now
            ~instrs:(Smt.ff_jitter jst ~window:s.Smt.ff_window)
        in
        ff_total := !ff_total + k;
        stats.Stats.main_instrs <- stats.Stats.main_instrs + k;
        pending_k := k;
        prev_cpi := cpi_w;
        measuring := false;
        detail_left := s.Smt.detail_window
      end
    | None -> ());
    (* End when the main thread has halted and drained its window. *)
    if (not main.ctx.Smt.thread.Thread.active) && main.rob_n = 0 then
      running := false
  done;
  (* Settle attribution: speculative threads still alive at program end,
     then prefetches never demanded. *)
  Array.iter
    (fun c -> Smt.note_thread_end m c ~now:!now ~watchdog:false)
    m.Smt.ctxs;
  (match attrib with Some a -> Attrib.finalize a | None -> ());
  if !ff_total > 0 then begin
    if !pending_k > 0 then
      est_extra := !est_extra +. (float_of_int !pending_k *. !prev_cpi);
    stats.Stats.cycles <- !now + int_of_float (Float.round !est_extra);
    (* Cycle categories are only counted during detailed windows;
       extrapolate them by the same factor as cycles so the printed
       breakdown stays a per-cycle distribution. *)
    let k = float_of_int stats.Stats.cycles /. float_of_int (max 1 !now) in
    Array.iteri
      (fun i c ->
        stats.Stats.categories.(i) <-
          int_of_float (Float.round (float_of_int c *. k)))
      stats.Stats.categories
  end;
  Stats.finish ~irefs:m.Smt.lay.Layout.irefs stats
