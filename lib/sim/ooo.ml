open Ssp_isa
open Ssp_machine
module T = Ssp_telemetry.Telemetry

(* Reservation-station pressure tracking: a ring buffer counting dispatched
   instructions whose execution starts at a future cycle. *)
let rs_horizon = 4096

type othread = {
  ctx : Smt.context;
  rob : int Queue.t;  (* completion cycles, program order *)
  future_starts : int array;
  mutable waiting : int;  (* dispatched but not yet started *)
  mutable retired_this_cycle : int;
  mutable rob_max : int;  (* max completion among in-flight entries *)
}

let run ?attrib (cfg : Config.t) (prog : Ssp_ir.Prog.t) =
  T.with_span "sim.ooo" @@ fun () ->
  let m = Smt.create ?attrib cfg prog in
  let stats = m.Smt.stats in
  let now = ref 0 in
  let stepping = ref m.Smt.ctxs.(0) in
  let env =
    {
      Exec.mem = m.Smt.mem;
      prog;
      chk_free = (fun () -> Smt.chk_allowed m ~now:!now !stepping);
      spawn =
        (fun ~src ~fn ~blk ~live_in ->
          (* Injected chained-spawn breakage: a speculative thread's spawn
             silently fails, cutting the chain. *)
          if
            (!stepping).Smt.thread.Thread.speculative
            && Ssp_fault.Fault.fire Smt.site_chain_break
          then false
          else Smt.try_spawn m ~now:!now ~src ~fn ~blk ~live_in);
      output = (fun v -> stats.Stats.outputs <- v :: stats.Stats.outputs);
    }
  in
  let oths =
    Array.map
      (fun ctx ->
        {
          ctx;
          rob = Queue.create ();
          future_starts = Array.make rs_horizon 0;
          waiting = 0;
          retired_this_cycle = 0;
          rob_max = 0;
        })
      m.Smt.ctxs
  in
  (* Shared memory ports: per-cycle usage ring (cycle-tagged), so a port
     reserved for a distant future cycle never blocks an earlier one. *)
  let port_ring = 8192 in
  let port_tag = Array.make port_ring (-1) in
  let port_cnt = Array.make port_ring 0 in
  let acquire_port start =
    let c = ref (max start !now) in
    let found = ref (-1) in
    while !found < 0 do
      let i = !c mod port_ring in
      if port_tag.(i) <> !c then begin
        port_tag.(i) <- !c;
        port_cnt.(i) <- 0
      end;
      if port_cnt.(i) < cfg.Config.mem_ports then begin
        port_cnt.(i) <- port_cnt.(i) + 1;
        found := !c
      end
      else incr c
    done;
    !found
  in
  let begin_cycle ot =
    let slot = !now mod rs_horizon in
    ot.waiting <- ot.waiting - ot.future_starts.(slot);
    ot.future_starts.(slot) <- 0;
    ot.retired_this_cycle <- 0
  in
  let retire ot =
    let n = ref 0 in
    let continue_ = ref true in
    while !continue_ && !n < cfg.Config.retire_width
          && not (Queue.is_empty ot.rob) do
      if Queue.peek ot.rob <= !now then begin
        ignore (Queue.pop ot.rob);
        incr n
      end
      else continue_ := false
    done;
    if Queue.is_empty ot.rob then ot.rob_max <- !now;
    ot.retired_this_cycle <- !n
  in
  (* Dispatch one instruction of the thread; false = dispatch must stop. *)
  let dispatch_one ot =
    let ctx = ot.ctx in
    stepping := ctx;
    let th = ctx.Smt.thread in
    if not th.Thread.active then false
    else if Queue.length ot.rob >= cfg.Config.rob_entries then false
    else begin
      Exec.normalize_pc prog th;
      let iref = Ssp_ir.Iref.make th.Thread.fn th.Thread.blk th.Thread.ins in
      let op = Exec.instr_at prog th in
      let ready_at =
        List.fold_left
          (fun acc r -> max acc ctx.Smt.reg_ready.(r))
          !now (Op.uses op)
      in
      if ready_at > !now && ot.waiting >= cfg.Config.rs_entries then false
      else if ready_at - !now >= rs_horizon then false
      else begin
        let pcid =
          Smt.pc_id m.Smt.pcs ~fn:th.Thread.fn ~blk:th.Thread.blk
            ~ins:th.Thread.ins
        in
        let predicted =
          match op with
          | Op.Brnz _ | Op.Brz _ ->
            Some (Bpred.predict m.Smt.bp ~thread:th.Thread.id ~pc:pcid)
          | _ -> None
        in
        let ev = Exec.step env th in
        if th.Thread.id = 0 then
          stats.Stats.main_instrs <- stats.Stats.main_instrs + 1
        else stats.Stats.spec_instrs <- stats.Stats.spec_instrs + 1;
        let base_latency = max 1 (Latency.of_op op) in
        let complete = ref (ready_at + base_latency) in
        (match ev with
        | Exec.Ev_load { addr; _ } ->
          let start = acquire_port ready_at in
          let o = Smt.demand_access m ~now:start ~ctx ~iref addr in
          complete := o.Hierarchy.ready
        | Exec.Ev_store { addr; _ } ->
          let start = acquire_port ready_at in
          ignore
            (Hierarchy.access m.Smt.hier ~now:start
               ~demand_main:(th.Thread.id = 0) addr);
          complete := start + 1
        | Exec.Ev_prefetch addr ->
          stats.Stats.prefetches <- stats.Stats.prefetches + 1;
          let start = acquire_port ready_at in
          ignore
            (Hierarchy.access m.Smt.hier ~now:start ~prefetch:true
               ?pf_tag:(Smt.pf_tag_of m ctx iref) addr);
          complete := start + 1
        | Exec.Ev_branch { taken } -> (
          match predicted with
          | Some p ->
            Bpred.update m.Smt.bp ~thread:th.Thread.id ~pc:pcid ~taken;
            if p <> taken then begin
              stats.Stats.mispredicts <- stats.Stats.mispredicts + 1;
              (* Redirect when the branch resolves. *)
              ctx.Smt.redirect_until <-
                !complete + cfg.Config.front_end_penalty
            end
            else if taken && not (Bpred.btb_lookup m.Smt.bp ~pc:pcid) then begin
              Bpred.btb_insert m.Smt.bp ~pc:pcid;
              ctx.Smt.redirect_until <- !now + 2
            end
          | None ->
            if not (Bpred.btb_lookup m.Smt.bp ~pc:pcid) then begin
              Bpred.btb_insert m.Smt.bp ~pc:pcid;
              ctx.Smt.redirect_until <- !now + 1
            end)
        | Exec.Ev_chk { fired } ->
          if fired then begin
            stats.Stats.chk_fired <- stats.Stats.chk_fired + 1;
            if cfg.Config.spawn_flush then begin
              (* Spawning happens at retirement: flush costs the front-end
                 refill plus draining the in-flight window (§4.4.1). *)
              (* The recovery refetches everything that was in flight. *)
              let drain =
                Queue.length ot.rob / max 1 cfg.Config.retire_width
              in
              ctx.Smt.redirect_until <-
                !now + cfg.Config.front_end_penalty + drain
            end
          end
        | Exec.Ev_call | Exec.Ev_ret -> ctx.Smt.redirect_until <- !now + 1
        | Exec.Ev_halt | Exec.Ev_kill ->
          if th.Thread.speculative then
            Smt.note_thread_end m ctx ~now:!now ~watchdog:false
        | Exec.Ev_spawn _ | Exec.Ev_lib | Exec.Ev_plain -> ());
        (match ev with
        | Exec.Ev_lib -> complete := ready_at + cfg.Config.lib_latency
        | _ -> ());
        List.iter
          (fun r -> ctx.Smt.reg_ready.(r) <- !complete)
          (Op.defs op);
        Queue.push !complete ot.rob;
        ot.rob_max <- max ot.rob_max !complete;
        (* Spawning happens at the retirement stage (§2.1): the child
           context cannot start before everything ahead of the spawn in
           this thread's window has retired. *)
        (match ev with
        | Exec.Ev_spawn { accepted = true } when m.Smt.last_spawned >= 0 ->
          let child = m.Smt.ctxs.(m.Smt.last_spawned) in
          let retire_at = max !now ot.rob_max in
          child.Smt.redirect_until <-
            max child.Smt.redirect_until
              (retire_at + cfg.Config.spawn_latency + cfg.Config.lib_latency)
        | _ -> ());
        if ready_at > !now then begin
          ot.waiting <- ot.waiting + 1;
          ot.future_starts.(ready_at mod rs_horizon) <-
            ot.future_starts.(ready_at mod rs_horizon) + 1
        end;
        Smt.watchdog_check m ~now:!now ctx;
        (* Stop dispatching past a redirect or thread end. *)
        th.Thread.active && ctx.Smt.redirect_until <= !now
      end
    end
  in
  (* Per-interval telemetry: retire rate and demand misses over time. *)
  let tel_interval = 8192 in
  let tel_last_instrs = ref 0 in
  let tel_last_misses = ref 0 in
  let tel_ipc = T.series "sim.ooo.interval_ipc" in
  let tel_miss = T.series "sim.ooo.interval_l1d_misses" in
  let tel_tick () =
    if T.is_enabled () && !now mod tel_interval = 0 then begin
      let mi = stats.Stats.main_instrs in
      let ms = Cache.stats_misses (Hierarchy.l1d m.Smt.hier) in
      T.sample tel_ipc ~x:(float_of_int !now)
        ~y:
          (float_of_int (mi - !tel_last_instrs) /. float_of_int tel_interval);
      T.sample tel_miss ~x:(float_of_int !now)
        ~y:(float_of_int (ms - !tel_last_misses));
      tel_last_instrs := mi;
      tel_last_misses := ms
    end
  in
  let main = oths.(0) in
  let running = ref true in
  (* The per-cycle helpers are hoisted out of the main loop (budget passed
     through a scratch ref) so the steady-state cycle allocates nothing. *)
  (* Don't hand dispatch slots to threads that cannot accept work
     (ROB full or reservation stations saturated). *)
  let eligible (c : Smt.context) =
    let ot = oths.(c.Smt.thread.Thread.id) in
    c.Smt.thread.Thread.active
    && c.Smt.redirect_until <= !now
    && Queue.length ot.rob < cfg.Config.rob_entries
    && ot.waiting < cfg.Config.rs_entries
  in
  let dispatch_budget = ref 0 in
  let dispatch_chosen (c : Smt.context) =
    let ot = oths.(c.Smt.thread.Thread.id) in
    let budget = !dispatch_budget in
    let k = ref 0 in
    let go = ref true in
    while !go && !k < budget do
      go := dispatch_one ot;
      incr k
    done
  in
  while !running do
    if !now > cfg.Config.max_cycles then failwith "Ooo.run: exceeded max_cycles";
    Array.iter begin_cycle oths;
    Array.iter retire oths;
    let chosen = Smt.select_threads m ~eligible in
    dispatch_budget :=
      (match chosen with
      | [ _ ] -> cfg.Config.issue_bundles * 3
      | _ -> 3);
    List.iter dispatch_chosen chosen;
    (* Figure 10 accounting: execution is "active" when the main thread
       retired something this cycle. *)
    let outstanding = Smt.outstanding_level main.ctx ~now:!now in
    let active = main.retired_this_cycle > 0 in
    let cat =
      match (active, outstanding) with
      | true, Some _ -> Stats.Cat_cache_exec
      | true, None -> Stats.Cat_exec
      | false, Some Hierarchy.Mem -> Stats.Cat_l3
      | false, Some Hierarchy.L3 -> Stats.Cat_l2
      | false, Some Hierarchy.L2 -> Stats.Cat_l1
      | false, Some Hierarchy.L1 | false, None -> Stats.Cat_other
    in
    Stats.add_category stats cat;
    incr now;
    tel_tick ();
    stats.Stats.cycles <- !now;
    (* End when the main thread has halted and drained its window. *)
    if (not main.ctx.Smt.thread.Thread.active) && Queue.is_empty main.rob then
      running := false
  done;
  (* Settle attribution: speculative threads still alive at program end,
     then prefetches never demanded. *)
  Array.iter
    (fun c -> Smt.note_thread_end m c ~now:!now ~watchdog:false)
    m.Smt.ctxs;
  (match attrib with Some a -> Attrib.finalize a | None -> ());
  Stats.finish stats
