(** Functional semantics of a single instruction.

    [step] performs all architectural effects (registers, memory, program
    counter, frames) and reports what happened so the timing models can
    account latency. Timing-directed decisions — whether [Chk_c] finds a
    free context, whether [Spawn] succeeds — are delegated to the [env]
    callbacks; the functional simulator and the cycle simulators plug in
    different policies.

    Speculative threads never write memory or allocate: stores and [Alloc]
    in a speculative context are executed as nops (the tool excludes them
    from slices anyway; the machine enforces it, §2). Loads in speculative
    threads never fault (unmapped memory reads as zero, as everywhere). *)

type env = {
  mem : Memory.t;
  prog : Ssp_ir.Prog.t;
  chk_free : unit -> bool;
      (** does a free hardware context exist right now? *)
  spawn : src:Ssp_ir.Iref.t -> fn:string -> blk:int -> live_in:int64 array -> bool;
      (** try to bind a free context; false = ignored. [src] is the
          spawning [Spawn] instruction (for attribution). *)
  output : int64 -> unit;  (** observable output of [Print] *)
  mutable ev_addr : int64;
      (** effective address of the most recent [Ev_load]/[Ev_store]/
          [Ev_prefetch]; undefined after other events *)
}

(** All constructors are constant (immediate values): the per-instruction
    hot path allocates nothing to report its event. Addresses travel in
    [env.ev_addr]. *)
type event =
  | Ev_plain
  | Ev_load  (** address in [env.ev_addr] *)
  | Ev_store  (** address in [env.ev_addr] *)
  | Ev_prefetch  (** address in [env.ev_addr] *)
  | Ev_branch_taken
  | Ev_branch_not_taken
  | Ev_call
  | Ev_ret
  | Ev_halt
  | Ev_kill
  | Ev_chk_fired
  | Ev_chk_nofire
  | Ev_spawned
  | Ev_spawn_denied
  | Ev_lib  (** live-in buffer access *)

val step : env -> Thread.t -> event
(** Execute the instruction at the thread's pc and advance the pc. The
    thread must be active and its pc valid ([blk]/[ins] in range); a pc one
    past the last instruction of a block falls through to the next block
    first. *)

val step_op : env -> Thread.t -> Ssp_ir.Prog.func -> Ssp_isa.Op.t -> event
(** [step] without the pc normalization and instruction fetch: the caller
    passes the thread's current function and the instruction at its
    (already normalized) pc. The cycle models and the fast-forward loop
    fetch the instruction anyway for their own bookkeeping; this avoids
    doing it twice per instruction. *)

val func_of : Ssp_ir.Prog.t -> Thread.t -> Ssp_ir.Prog.func
(** The thread's current function, memoized in the thread (physical
    equality on [fn]); allocation-free on the hit path. *)

val instr_at : Ssp_ir.Prog.t -> Thread.t -> Ssp_isa.Op.t
(** The instruction the thread will execute next (after fall-through
    normalization). *)

val normalize_pc : Ssp_ir.Prog.t -> Thread.t -> unit
(** Apply fall-through: while [ins] is past the end of the current block,
    move to the next block in layout. *)
