let page_bits = 16
let page_size = 1 lsl page_bits

type t = {
  pages : (int, Bytes.t) Hashtbl.t;
  mutable brk : int64;  (** next free heap address *)
  mutable last_id : int;  (** 1-entry page cache *)
  mutable last_page : Bytes.t;
}

let create () =
  let p0 = Bytes.make page_size '\000' in
  let pages = Hashtbl.create 256 in
  Hashtbl.replace pages 0 p0;
  { pages; brk = Ssp_ir.Prog.heap_base; last_id = 0; last_page = p0 }

let page t id =
  if id = t.last_id then t.last_page
  else begin
    let p =
      match Hashtbl.find_opt t.pages id with
      | Some p -> p
      | None ->
        let p = Bytes.make page_size '\000' in
        Hashtbl.replace t.pages id p;
        p
    in
    t.last_id <- id;
    t.last_page <- p;
    p
  end

(* [read_i]/[write_i] take the address as a native int (the address space
   is 62-bit: [Int64.to_int addr land max_int] everywhere) — the decoded
   fast-forward loop computes addresses in int arithmetic and skips the
   int64 boxing entirely. *)
let read_i t a bytes =
  let a = a land max_int in
  let off = a land (page_size - 1) in
  if off + bytes <= page_size then begin
    let p = page t (a lsr page_bits) in
    match bytes with
    | 1 -> Int64.of_int (Char.code (Bytes.unsafe_get p off))
    | 2 -> Int64.of_int (Bytes.get_uint16_le p off)
    | 4 -> Int64.logand (Int64.of_int32 (Bytes.get_int32_le p off)) 0xffffffffL
    | 8 -> Bytes.get_int64_le p off
    | _ -> invalid_arg "Memory.read: width"
  end
  else begin
    (* Page-crossing access: assemble byte by byte. *)
    let rec go i acc =
      if i < 0 then acc
      else
        let b = a + i in
        let p = page t (b lsr page_bits) in
        let v = Char.code (Bytes.unsafe_get p (b land (page_size - 1))) in
        go (i - 1) Int64.(logor (shift_left acc 8) (of_int v))
    in
    go (bytes - 1) 0L
  end

let read t addr bytes = read_i t (Int64.to_int addr) bytes

let write_i t a bytes v =
  let a = a land max_int in
  let off = a land (page_size - 1) in
  if off + bytes <= page_size then begin
    let p = page t (a lsr page_bits) in
    match bytes with
    | 1 -> Bytes.unsafe_set p off (Char.unsafe_chr (Int64.to_int v land 0xff))
    | 2 -> Bytes.set_uint16_le p off (Int64.to_int v land 0xffff)
    | 4 -> Bytes.set_int32_le p off (Int64.to_int32 v)
    | 8 -> Bytes.set_int64_le p off v
    | _ -> invalid_arg "Memory.write: width"
  end
  else
    for i = 0 to bytes - 1 do
      let b = a + i in
      let p = page t (b lsr page_bits) in
      Bytes.unsafe_set p
        (b land (page_size - 1))
        (Char.unsafe_chr (Int64.to_int (Int64.shift_right_logical v (8 * i)) land 0xff))
    done

let write t addr bytes v = write_i t (Int64.to_int addr) bytes v

let alloc t size =
  let size = Int64.logand (Int64.add size 7L) (Int64.lognot 7L) in
  let base = t.brk in
  t.brk <- Int64.add t.brk size;
  base

let heap_used t = Int64.sub t.brk Ssp_ir.Prog.heap_base
