(** The out-of-order research Itanium model: 16 pipeline stages (four extra
    front-end stages over the in-order model), per-thread 255-entry reorder
    buffer and 18-entry reservation station, two shared memory ports,
    in-order retirement.

    Instructions dispatch along the correct path (values resolve at
    dispatch) while timing follows the dataflow: an instruction starts when
    its operands and a needed memory port are ready, completes after its
    latency, and retires in order. Dispatch stalls when the ROB is full or
    when too many dispatched instructions are still waiting to start
    (reservation-station pressure) — the window limits that leave
    long-range misses for SSP to cover (§4.4.1). [chk.c] fires at
    retirement: the flush costs the front-end penalty plus draining the
    ROB. *)

val run :
  ?attrib:Attrib.t ->
  ?sampling:Smt.sampling ->
  Ssp_machine.Config.t ->
  Ssp_ir.Prog.t ->
  Stats.t
(** [attrib] attaches prefetch-lifecycle attribution; recording is passive
    and never changes cycle counts or outputs.

    [sampling] enables sampled simulation (see {!Inorder.run}): detailed
    windows alternate with fast-forwarded functionally-warmed ones, and
    [cycles] is extrapolated from the detailed-window IPC. Outputs are
    byte-identical to a full run. *)
