module T = Ssp_telemetry.Telemetry

type t = {
  sets : int;
  ways : int;
  line_bits : int;
  tags : int64 array;  (* sets * ways, -1 = invalid *)
  lru : int array;  (* higher = more recent *)
  mutable clock : int;
  mutable accesses : int;
  mutable misses : int;
  tel : (T.counter * T.counter) option;  (* hits, misses *)
}

let create ?name (g : Ssp_machine.Config.cache_geom) =
  let line_bits =
    int_of_float (Float.round (Float.log2 (float_of_int g.line_bytes)))
  in
  let lines = g.size_bytes / g.line_bytes in
  let sets = max 1 (lines / g.ways) in
  {
    sets;
    ways = g.ways;
    line_bits;
    tags = Array.make (sets * g.ways) (-1L);
    lru = Array.make (sets * g.ways) 0;
    clock = 0;
    accesses = 0;
    misses = 0;
    tel =
      (match name with
      | Some n -> Some (T.counter (n ^ ".hits"), T.counter (n ^ ".misses"))
      | None -> None);
  }

let line_of t addr = Int64.shift_right_logical addr t.line_bits

let set_of t line =
  (Int64.to_int line land max_int) mod t.sets

let find t addr =
  let line = line_of t addr in
  let s = set_of t line in
  let base = s * t.ways in
  let rec go w =
    if w >= t.ways then None
    else if Int64.equal t.tags.(base + w) line then Some (base + w)
    else go (w + 1)
  in
  go 0

let probe t addr = Option.is_some (find t addr)

let touch t addr =
  match find t addr with
  | Some i ->
    t.clock <- t.clock + 1;
    t.lru.(i) <- t.clock
  | None -> ()

let install t addr =
  match find t addr with
  | Some i ->
    t.clock <- t.clock + 1;
    t.lru.(i) <- t.clock
  | None ->
    let line = line_of t addr in
    let s = set_of t line in
    let base = s * t.ways in
    let victim = ref base in
    for w = 1 to t.ways - 1 do
      if t.lru.(base + w) < t.lru.(!victim) then victim := base + w
    done;
    t.clock <- t.clock + 1;
    t.tags.(!victim) <- line;
    t.lru.(!victim) <- t.clock

let access t addr =
  t.accesses <- t.accesses + 1;
  match find t addr with
  | Some i ->
    t.clock <- t.clock + 1;
    t.lru.(i) <- t.clock;
    (match t.tel with Some (h, _) -> T.incr h | None -> ());
    true
  | None ->
    t.misses <- t.misses + 1;
    (match t.tel with Some (_, m) -> T.incr m | None -> ());
    false

let line_addr t addr =
  Int64.shift_left (line_of t addr) t.line_bits

let stats_accesses t = t.accesses
let stats_misses t = t.misses

let reset_stats t =
  t.accesses <- 0;
  t.misses <- 0
