module T = Ssp_telemetry.Telemetry

type t = {
  sets : int;
  set_mask : int;
      (* [sets - 1] when [sets] is a power of two (the common geometry),
         letting set selection be a single [land]; [-1] otherwise, falling
         back to [mod] so odd set counts keep their exact behavior *)
  ways : int;
  line_bits : int;
  tags : int array;  (* sets * ways, -1 = invalid; line numbers as native
                        ints — the address space is 62-bit (Memory masks
                        with [land max_int]), so probes avoid int64 boxing
                        and compare immediates *)
  lru : int array;  (* higher = more recent *)
  mutable clock : int;
  mutable accesses : int;
  mutable misses : int;
  tel : (T.counter * T.counter) option;  (* hits, misses *)
}

let create ?name (g : Ssp_machine.Config.cache_geom) =
  let line_bits =
    int_of_float (Float.round (Float.log2 (float_of_int g.line_bytes)))
  in
  let lines = g.size_bytes / g.line_bytes in
  let sets = max 1 (lines / g.ways) in
  {
    sets;
    set_mask = (if sets land (sets - 1) = 0 then sets - 1 else -1);
    ways = g.ways;
    line_bits;
    tags = Array.make (sets * g.ways) (-1);
    lru = Array.make (sets * g.ways) 0;
    clock = 0;
    accesses = 0;
    misses = 0;
    tel =
      (match name with
      | Some n -> Some (T.counter (n ^ ".hits"), T.counter (n ^ ".misses"))
      | None -> None);
  }

let line_of_i t a = (a land max_int) lsr t.line_bits
let line_of t addr = line_of_i t (Int64.to_int addr)

let set_of t line =
  if t.set_mask >= 0 then line land t.set_mask else line mod t.sets

(* Index of the way holding [addr]'s line, or -1 on a miss. A top-level
   scan with explicit parameters: the probe loop allocates nothing (this
   runs once or more per simulated cycle, and a local closure would
   allocate per call). *)
let rec scan_ways tags line lim i =
  if i >= lim then -1
  else if Array.unsafe_get tags i = line then i
  else scan_ways tags line lim (i + 1)

let find_idx t addr =
  let line = line_of t addr in
  let s = set_of t line in
  let base = s * t.ways in
  scan_ways t.tags line (base + t.ways) base

let probe t addr = find_idx t addr >= 0

let touch t addr =
  let i = find_idx t addr in
  if i >= 0 then begin
    t.clock <- t.clock + 1;
    t.lru.(i) <- t.clock
  end

let install t addr =
  let i = find_idx t addr in
  if i >= 0 then begin
    t.clock <- t.clock + 1;
    t.lru.(i) <- t.clock
  end
  else begin
    let line = line_of t addr in
    let s = set_of t line in
    let base = s * t.ways in
    let victim = ref base in
    for w = 1 to t.ways - 1 do
      if t.lru.(base + w) < t.lru.(!victim) then victim := base + w
    done;
    t.clock <- t.clock + 1;
    t.tags.(!victim) <- line;
    t.lru.(!victim) <- t.clock
  end

let access t addr =
  t.accesses <- t.accesses + 1;
  let i = find_idx t addr in
  if i >= 0 then begin
    t.clock <- t.clock + 1;
    t.lru.(i) <- t.clock;
    (match t.tel with Some (h, _) -> T.incr h | None -> ());
    true
  end
  else begin
    t.misses <- t.misses + 1;
    (match t.tel with Some (_, m) -> T.incr m | None -> ());
    false
  end

(* [access] and, on a miss, [install] in one set scan — the functional-
   warming hot path. State effects match access-then-install exactly up to
   LRU clock values (a hit is touched once instead of twice; relative
   recency order, tags, and hit/miss counts are identical). *)
let warm_access_i t a =
  t.accesses <- t.accesses + 1;
  let line = line_of_i t a in
  let s = set_of t line in
  let base = s * t.ways in
  let lim = base + t.ways in
  let tags = t.tags and lru = t.lru in
  (* One pass over the set: find the line and track the LRU victim at the
     same time, so a miss needs no second scan. *)
  let hit = ref (-1) in
  let victim = ref base in
  let vlru = ref max_int in
  let i = ref base in
  while !hit < 0 && !i < lim do
    if Array.unsafe_get tags !i = line then hit := !i
    else begin
      let l = Array.unsafe_get lru !i in
      if l < !vlru then begin
        vlru := l;
        victim := !i
      end;
      incr i
    end
  done;
  t.clock <- t.clock + 1;
  if !hit >= 0 then begin
    lru.(!hit) <- t.clock;
    (match t.tel with Some (h, _) -> T.incr h | None -> ());
    true
  end
  else begin
    t.misses <- t.misses + 1;
    (match t.tel with Some (_, m) -> T.incr m | None -> ());
    tags.(!victim) <- line;
    lru.(!victim) <- t.clock;
    false
  end

let warm_access t addr = warm_access_i t (Int64.to_int addr)

let line_addr t addr =
  Int64.shift_left (Int64.of_int (line_of t addr)) t.line_bits

let line_bits t = t.line_bits

let stats_accesses t = t.accesses
let stats_misses t = t.misses

let reset_stats t =
  t.accesses <- 0;
  t.misses <- 0
