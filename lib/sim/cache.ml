module T = Ssp_telemetry.Telemetry

type t = {
  sets : int;
  set_mask : int;
      (* [sets - 1] when [sets] is a power of two (the common geometry),
         letting set selection be a single [land]; [-1] otherwise, falling
         back to [mod] so odd set counts keep their exact behavior *)
  ways : int;
  line_bits : int;
  tags : int64 array;  (* sets * ways, -1 = invalid *)
  lru : int array;  (* higher = more recent *)
  mutable clock : int;
  mutable accesses : int;
  mutable misses : int;
  tel : (T.counter * T.counter) option;  (* hits, misses *)
}

let create ?name (g : Ssp_machine.Config.cache_geom) =
  let line_bits =
    int_of_float (Float.round (Float.log2 (float_of_int g.line_bytes)))
  in
  let lines = g.size_bytes / g.line_bytes in
  let sets = max 1 (lines / g.ways) in
  {
    sets;
    set_mask = (if sets land (sets - 1) = 0 then sets - 1 else -1);
    ways = g.ways;
    line_bits;
    tags = Array.make (sets * g.ways) (-1L);
    lru = Array.make (sets * g.ways) 0;
    clock = 0;
    accesses = 0;
    misses = 0;
    tel =
      (match name with
      | Some n -> Some (T.counter (n ^ ".hits"), T.counter (n ^ ".misses"))
      | None -> None);
  }

let line_of t addr = Int64.shift_right_logical addr t.line_bits

let set_of t line =
  if t.set_mask >= 0 then Int64.to_int line land t.set_mask
  else (Int64.to_int line land max_int) mod t.sets

(* Index of the way holding [addr]'s line, or -1 on a miss. Returning an
   int keeps the probe loop allocation-free (this runs once or more per
   simulated cycle). *)
let find_idx t addr =
  let line = line_of t addr in
  let s = set_of t line in
  let base = s * t.ways in
  let lim = base + t.ways in
  let rec go i =
    if i >= lim then -1
    else if Int64.equal (Array.unsafe_get t.tags i) line then i
    else go (i + 1)
  in
  go base

let probe t addr = find_idx t addr >= 0

let touch t addr =
  let i = find_idx t addr in
  if i >= 0 then begin
    t.clock <- t.clock + 1;
    t.lru.(i) <- t.clock
  end

let install t addr =
  let i = find_idx t addr in
  if i >= 0 then begin
    t.clock <- t.clock + 1;
    t.lru.(i) <- t.clock
  end
  else begin
    let line = line_of t addr in
    let s = set_of t line in
    let base = s * t.ways in
    let victim = ref base in
    for w = 1 to t.ways - 1 do
      if t.lru.(base + w) < t.lru.(!victim) then victim := base + w
    done;
    t.clock <- t.clock + 1;
    t.tags.(!victim) <- line;
    t.lru.(!victim) <- t.clock
  end

let access t addr =
  t.accesses <- t.accesses + 1;
  let i = find_idx t addr in
  if i >= 0 then begin
    t.clock <- t.clock + 1;
    t.lru.(i) <- t.clock;
    (match t.tel with Some (h, _) -> T.incr h | None -> ());
    true
  end
  else begin
    t.misses <- t.misses + 1;
    (match t.tel with Some (_, m) -> T.incr m | None -> ());
    false
  end

let line_addr t addr =
  Int64.shift_left (line_of t addr) t.line_bits

let stats_accesses t = t.accesses
let stats_misses t = t.misses

let reset_stats t =
  t.accesses <- 0;
  t.misses <- 0
