(** Instructions of the virtual research-Itanium ISA.

    The ISA is the representation the post-pass tool adapts: it matches the
    simulated hardware instruction-for-instruction (the paper operates on a
    compiler IR with the same property). Besides the usual integer/memory/
    control operations it contains the speculative-precomputation extensions
    of the paper: [Chk_c] (the trigger check instruction), [Spawn], [Kill],
    the live-in buffer accessors [Lib_st]/[Lib_ld], and [Lfetch] (prefetch).

    Labels are local to the enclosing function. *)

type label = string

type alu = Add | Sub | Mul | Div | Rem | And | Or | Xor | Shl | Shr
(** Integer ALU operations. [Div]/[Rem] by zero yield zero (no faults in
    speculative threads; the functional simulator uses the same rule so main
    and speculative semantics agree). *)

type cmp = Eq | Ne | Lt | Le | Gt | Ge
(** Signed comparisons producing 0 or 1. *)

type width = W1 | W2 | W4 | W8
(** Memory access widths in bytes. Loads zero-extend except [W8]. *)

type t =
  | Nop
  | Movi of Reg.t * int64                 (** [dst <- imm] *)
  | Mov of Reg.t * Reg.t                  (** [dst <- src] *)
  | Alu of alu * Reg.t * Reg.t * Reg.t    (** [dst <- src1 op src2] *)
  | Alui of alu * Reg.t * Reg.t * int64   (** [dst <- src op imm] *)
  | Cmp of cmp * Reg.t * Reg.t * Reg.t    (** [dst <- src1 rel src2] *)
  | Cmpi of cmp * Reg.t * Reg.t * int64   (** [dst <- src rel imm] *)
  | Load of width * Reg.t * Reg.t * int   (** [dst <- mem[base + off]] *)
  | Store of width * Reg.t * Reg.t * int  (** [mem[base + off] <- src] *)
  | Lfetch of Reg.t * int                 (** prefetch line of [base + off] *)
  | Br of label                           (** unconditional branch *)
  | Brnz of Reg.t * label                 (** branch if [src <> 0] *)
  | Brz of Reg.t * label                  (** branch if [src = 0] *)
  | Call of string * int                  (** direct call, [nargs] in r8.. *)
  | Icall of Reg.t * int                  (** indirect call via code id *)
  | Ret
  | Halt                                  (** terminate the program *)
  | Chk_c of label                        (** SSP trigger: if a hardware
      context is free, raise the lightweight exception whose recovery code is
      the stub block at [label]; otherwise behave as a nop *)
  | Spawn of string * label               (** bind a free context to
      [(function, label)], passing the live-in buffer; ignored if none free *)
  | Kill                                  (** thread_kill_self *)
  | Lib_st of int * Reg.t                 (** live-in buffer[slot] <- src *)
  | Lib_ld of Reg.t * int                 (** dst <- live-in buffer[slot] *)
  | Alloc of Reg.t * Reg.t                (** [dst <- bump-allocate src bytes] *)
  | Print of Reg.t                        (** print integer (observable output) *)
  | Rand of Reg.t                         (** [dst <- next deterministic PRN] *)

val width_bytes : width -> int

val defs : t -> Reg.t list
(** Registers written by the instruction. Calls clobber the whole static
    argument partition (r8–r15). Writes to r0 are dropped. *)

val uses : t -> Reg.t list
(** Registers read by the instruction. A call of arity [n] reads its [n]
    argument registers; [Ret] reads the return-value register. *)

val scratch_regs : int
(** Upper bound on the register count either [uses_into] or [defs_into] can
    write (a scratch array of this length always fits). *)

val uses_into : t -> Reg.t array -> int
(** Allocation-free [uses]: writes the used registers (same order as [uses])
    into the caller-owned scratch array and returns the count. *)

val defs_into : t -> Reg.t array -> int
(** Allocation-free [defs]: writes the defined registers (same order as
    [defs]) into the caller-owned scratch array and returns the count. *)

val is_control : t -> bool
(** Branches, calls, returns, halt — instructions that end a bundle. *)

val is_terminator : t -> bool
(** Instructions after which control never falls through:
    [Br], [Ret], [Halt], [Kill]. *)

val is_load : t -> bool
val is_store : t -> bool

val branch_targets : t -> label list
(** Labels this instruction may transfer control to within its function
    (excludes calls and spawns). *)

val alu_eval : alu -> int64 -> int64 -> int64
val cmp_eval : cmp -> int64 -> int64 -> bool

val pp : Format.formatter -> t -> unit
val to_string : t -> string
