type label = string
type alu = Add | Sub | Mul | Div | Rem | And | Or | Xor | Shl | Shr
type cmp = Eq | Ne | Lt | Le | Gt | Ge
type width = W1 | W2 | W4 | W8

type t =
  | Nop
  | Movi of Reg.t * int64
  | Mov of Reg.t * Reg.t
  | Alu of alu * Reg.t * Reg.t * Reg.t
  | Alui of alu * Reg.t * Reg.t * int64
  | Cmp of cmp * Reg.t * Reg.t * Reg.t
  | Cmpi of cmp * Reg.t * Reg.t * int64
  | Load of width * Reg.t * Reg.t * int
  | Store of width * Reg.t * Reg.t * int
  | Lfetch of Reg.t * int
  | Br of label
  | Brnz of Reg.t * label
  | Brz of Reg.t * label
  | Call of string * int
  | Icall of Reg.t * int
  | Ret
  | Halt
  | Chk_c of label
  | Spawn of string * label
  | Kill
  | Lib_st of int * Reg.t
  | Lib_ld of Reg.t * int
  | Alloc of Reg.t * Reg.t
  | Print of Reg.t
  | Rand of Reg.t

let width_bytes = function W1 -> 1 | W2 -> 2 | W4 -> 4 | W8 -> 8

(* r0 is hardwired to zero: a write to it defines nothing. *)
let def1 d = if d = Reg.zero then [] else [ d ]

let clobbered_by_call =
  (* Calls clobber the static argument partition r8..r15. *)
  List.init Reg.max_args (fun i -> Reg.arg i)

let defs = function
  | Nop | Lfetch _ | Br _ | Brnz _ | Brz _ | Ret | Halt | Chk_c _ | Spawn _
  | Kill | Store _ | Lib_st _ | Print _ ->
    []
  | Movi (d, _)
  | Mov (d, _)
  | Alu (_, d, _, _)
  | Alui (_, d, _, _)
  | Cmp (_, d, _, _)
  | Cmpi (_, d, _, _)
  | Load (_, d, _, _)
  | Lib_ld (d, _)
  | Alloc (d, _)
  | Rand d ->
    def1 d
  | Call (_, _) | Icall (_, _) -> clobbered_by_call

let use1 s = if s = Reg.zero then [] else [ s ]
let use2 a b = use1 a @ use1 b

let args_of_arity n = List.init (min n Reg.max_args) (fun i -> Reg.arg i)

let uses = function
  | Nop | Movi _ | Br _ | Halt | Chk_c _ | Spawn _ | Kill | Lib_ld _ -> []
  | Mov (_, s) | Brnz (s, _) | Brz (s, _) | Lib_st (_, s) | Alloc (_, s)
  | Print s ->
    use1 s
  | Rand _ -> []
  | Alu (_, _, a, b) | Cmp (_, _, a, b) -> use2 a b
  | Alui (_, _, a, _) | Cmpi (_, _, a, _) -> use1 a
  | Load (_, _, b, _) | Lfetch (b, _) -> use1 b
  | Store (_, s, b, _) -> use2 s b
  | Call (_, n) -> args_of_arity n
  | Icall (r, n) -> use1 r @ args_of_arity n
  | Ret -> [ Reg.ret ]

(* Allocation-free variants for the cycle simulators' hot loops: write the
   registers into a caller-owned scratch array (length >= scratch_regs) and
   return the count, in the same order as [uses]/[defs]. *)
let scratch_regs = 1 + Reg.max_args

let set1 buf n r =
  if r = Reg.zero then n
  else begin
    Array.unsafe_set buf n r;
    n + 1
  end

let uses_into op buf =
  match op with
  | Nop | Movi _ | Br _ | Halt | Chk_c _ | Spawn _ | Kill | Lib_ld _ | Rand _
    ->
    0
  | Mov (_, s) | Brnz (s, _) | Brz (s, _) | Lib_st (_, s) | Alloc (_, s)
  | Print s ->
    set1 buf 0 s
  | Alu (_, _, a, b) | Cmp (_, _, a, b) -> set1 buf (set1 buf 0 a) b
  | Alui (_, _, a, _) | Cmpi (_, _, a, _) -> set1 buf 0 a
  | Load (_, _, b, _) | Lfetch (b, _) -> set1 buf 0 b
  | Store (_, s, b, _) -> set1 buf (set1 buf 0 s) b
  | Call (_, n) ->
    let k = min n Reg.max_args in
    for i = 0 to k - 1 do
      buf.(i) <- Reg.arg i
    done;
    k
  | Icall (r, n) ->
    let base = set1 buf 0 r in
    let k = min n Reg.max_args in
    for i = 0 to k - 1 do
      buf.(base + i) <- Reg.arg i
    done;
    base + k
  | Ret ->
    buf.(0) <- Reg.ret;
    1

let defs_into op buf =
  match op with
  | Nop | Lfetch _ | Br _ | Brnz _ | Brz _ | Ret | Halt | Chk_c _ | Spawn _
  | Kill | Store _ | Lib_st _ | Print _ ->
    0
  | Movi (d, _)
  | Mov (d, _)
  | Alu (_, d, _, _)
  | Alui (_, d, _, _)
  | Cmp (_, d, _, _)
  | Cmpi (_, d, _, _)
  | Load (_, d, _, _)
  | Lib_ld (d, _)
  | Alloc (d, _)
  | Rand d ->
    set1 buf 0 d
  | Call (_, _) | Icall (_, _) ->
    for i = 0 to Reg.max_args - 1 do
      buf.(i) <- Reg.arg i
    done;
    Reg.max_args

let is_control = function
  | Br _ | Brnz _ | Brz _ | Call _ | Icall _ | Ret | Halt | Chk_c _ | Spawn _
  | Kill ->
    true
  | Nop | Movi _ | Mov _ | Alu _ | Alui _ | Cmp _ | Cmpi _ | Load _ | Store _
  | Lfetch _ | Lib_st _ | Lib_ld _ | Alloc _ | Print _ | Rand _ ->
    false

let is_terminator = function
  | Br _ | Ret | Halt | Kill -> true
  | Nop | Movi _ | Mov _ | Alu _ | Alui _ | Cmp _ | Cmpi _ | Load _ | Store _
  | Lfetch _ | Brnz _ | Brz _ | Call _ | Icall _ | Chk_c _ | Spawn _ | Lib_st _
  | Lib_ld _ | Alloc _ | Print _ | Rand _ ->
    false

let is_load = function
  | Load _ -> true
  | _ -> false

let is_store = function
  | Store _ -> true
  | _ -> false

let branch_targets = function
  | Br l | Brnz (_, l) | Brz (_, l) -> [ l ]
  | Chk_c _ -> [] (* recovery stubs are not normal control flow *)
  | _ -> []

let alu_eval op a b =
  match op with
  | Add -> Int64.add a b
  | Sub -> Int64.sub a b
  | Mul -> Int64.mul a b
  | Div -> if Int64.equal b 0L then 0L else Int64.div a b
  | Rem -> if Int64.equal b 0L then 0L else Int64.rem a b
  | And -> Int64.logand a b
  | Or -> Int64.logor a b
  | Xor -> Int64.logxor a b
  | Shl -> Int64.shift_left a (Int64.to_int b land 63)
  | Shr -> Int64.shift_right a (Int64.to_int b land 63)

let cmp_eval op a b =
  match op with
  | Eq -> Int64.equal a b
  | Ne -> not (Int64.equal a b)
  | Lt -> Int64.compare a b < 0
  | Le -> Int64.compare a b <= 0
  | Gt -> Int64.compare a b > 0
  | Ge -> Int64.compare a b >= 0

let alu_name = function
  | Add -> "add"
  | Sub -> "sub"
  | Mul -> "mul"
  | Div -> "div"
  | Rem -> "rem"
  | And -> "and"
  | Or -> "or"
  | Xor -> "xor"
  | Shl -> "shl"
  | Shr -> "shr"

let cmp_name = function
  | Eq -> "eq"
  | Ne -> "ne"
  | Lt -> "lt"
  | Le -> "le"
  | Gt -> "gt"
  | Ge -> "ge"

let width_name = function W1 -> "1" | W2 -> "2" | W4 -> "4" | W8 -> "8"

let pp ppf op =
  let r = Reg.pp in
  match op with
  | Nop -> Format.fprintf ppf "nop"
  | Movi (d, i) -> Format.fprintf ppf "movi %a, %Ld" r d i
  | Mov (d, s) -> Format.fprintf ppf "mov %a, %a" r d r s
  | Alu (o, d, a, b) ->
    Format.fprintf ppf "%s %a, %a, %a" (alu_name o) r d r a r b
  | Alui (o, d, a, i) ->
    Format.fprintf ppf "%si %a, %a, %Ld" (alu_name o) r d r a i
  | Cmp (o, d, a, b) ->
    Format.fprintf ppf "cmp.%s %a, %a, %a" (cmp_name o) r d r a r b
  | Cmpi (o, d, a, i) ->
    Format.fprintf ppf "cmpi.%s %a, %a, %Ld" (cmp_name o) r d r a i
  | Load (w, d, b, off) ->
    Format.fprintf ppf "ld%s %a, [%a%+d]" (width_name w) r d r b off
  | Store (w, s, b, off) ->
    Format.fprintf ppf "st%s [%a%+d], %a" (width_name w) r b off r s
  | Lfetch (b, off) -> Format.fprintf ppf "lfetch [%a%+d]" r b off
  | Br l -> Format.fprintf ppf "br %s" l
  | Brnz (s, l) -> Format.fprintf ppf "brnz %a, %s" r s l
  | Brz (s, l) -> Format.fprintf ppf "brz %a, %s" r s l
  | Call (f, n) -> Format.fprintf ppf "call %s/%d" f n
  | Icall (s, n) -> Format.fprintf ppf "icall %a/%d" r s n
  | Ret -> Format.fprintf ppf "ret"
  | Halt -> Format.fprintf ppf "halt"
  | Chk_c l -> Format.fprintf ppf "chk.c %s" l
  | Spawn (f, l) -> Format.fprintf ppf "spawn %s:%s" f l
  | Kill -> Format.fprintf ppf "kill"
  | Lib_st (slot, s) -> Format.fprintf ppf "lib.st #%d, %a" slot r s
  | Lib_ld (d, slot) -> Format.fprintf ppf "lib.ld %a, #%d" r d slot
  | Alloc (d, s) -> Format.fprintf ppf "alloc %a, %a" r d r s
  | Print s -> Format.fprintf ppf "print %a" r s
  | Rand d -> Format.fprintf ppf "rand %a" r d

let to_string op = Format.asprintf "%a" pp op
