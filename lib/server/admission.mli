(** Per-tenant admission queues with deficit-round-robin fairness.

    The serve loop enqueues each admitted work request under its
    declaring tenant and drains at most [max_batch] per round via
    {!select}; DRR guarantees every active tenant the same per-round
    share regardless of how deep any one tenant's queue is. Not
    thread-safe: owned by the single select loop. *)

type 'a t

val create : ?quantum:int -> unit -> 'a t
(** [quantum] (default 1) credits earned per tenant per DRR visit; one
    request costs one credit. Raises [Invalid_argument] if [< 1]. *)

val enqueue : 'a t -> tenant:string -> 'a -> unit

val backlog : 'a t -> int
(** Total queued items across tenants — what the saturation bound
    ([max_queue]) is checked against. *)

val tenants : 'a t -> int
(** Number of tenants with queued work. *)

val select : 'a t -> max:int -> (string * 'a) list
(** Dequeue up to [max] items in deficit-round-robin order. The
    rotation persists across calls, so service resumes with the tenant
    after the last one served. *)

val drain : 'a t -> (string * 'a) list
(** Remove and return everything (shutdown: reply to stragglers rather
    than dropping them silently). *)
