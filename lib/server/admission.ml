(* Admission control and multi-tenant fairness for the serve loop.

   Work requests are queued per tenant; each serve round drains at most
   [max] of them, chosen by deficit round-robin over the active tenants.
   Every tenant earns [quantum] credits per visit and spends one per
   request, so a tenant that floods the daemon fills only its own queue
   and gets the same per-round share as everyone else — a hot tenant
   cannot starve the fleet, only itself. The caller bounds the total
   backlog and converts overflow into retry-after rejections before
   anything reaches these queues. *)

type 'a t = {
  quantum : int;
  queues : (string, 'a Queue.t) Hashtbl.t;
  deficits : (string, int) Hashtbl.t;
  rotation : string Queue.t; (* active tenants, next-to-serve first *)
  mutable backlog : int;
}

let create ?(quantum = 1) () =
  if quantum < 1 then invalid_arg "Admission.create: quantum must be positive";
  {
    quantum;
    queues = Hashtbl.create 8;
    deficits = Hashtbl.create 8;
    rotation = Queue.create ();
    backlog = 0;
  }

let backlog t = t.backlog
let tenants t = Hashtbl.length t.queues

let enqueue t ~tenant item =
  let q =
    match Hashtbl.find_opt t.queues tenant with
    | Some q -> q
    | None ->
      let q = Queue.create () in
      Hashtbl.replace t.queues tenant q;
      Hashtbl.replace t.deficits tenant 0;
      Queue.push tenant t.rotation;
      q
  in
  Queue.push item q;
  t.backlog <- t.backlog + 1

(* Up to [max] items in DRR order. Each visited tenant's deficit grows
   by [quantum] and is capped at its queue length (credit for absent
   work must not accrue); it then dequeues min(deficit, room) items.
   Tenants drained empty leave the rotation; the rest rotate to the
   back, so the next round resumes where this one stopped. *)
let select t ~max =
  let out = ref [] in
  let n = ref 0 in
  while !n < max && t.backlog > 0 do
    let tenant = Queue.pop t.rotation in
    match Hashtbl.find_opt t.queues tenant with
    | None -> ()
    | Some q ->
      let deficit =
        min
          ((try Hashtbl.find t.deficits tenant with Not_found -> 0)
          + t.quantum)
          (Queue.length q)
      in
      let take = min deficit (max - !n) in
      for _ = 1 to take do
        out := (tenant, Queue.pop q) :: !out;
        incr n;
        t.backlog <- t.backlog - 1
      done;
      if Queue.is_empty q then begin
        Hashtbl.remove t.queues tenant;
        Hashtbl.remove t.deficits tenant
      end
      else begin
        Hashtbl.replace t.deficits tenant (deficit - take);
        Queue.push tenant t.rotation
      end
  done;
  List.rev !out

(* Drain everything (shutdown paths: every queued request still gets a
   structured reply instead of silence). *)
let drain t =
  let out = ref [] in
  Hashtbl.iter
    (fun tenant q -> Queue.iter (fun item -> out := (tenant, item) :: !out) q)
    t.queues;
  Hashtbl.reset t.queues;
  Hashtbl.reset t.deficits;
  Queue.clear t.rotation;
  t.backlog <- 0;
  List.rev !out
