(* Wire protocol: 4-byte big-endian length framing, then a magic +
   version + tag + Bin-encoded body. Shares the binary primitives with
   the artifact store so the two layers cannot drift apart. *)

module Bin = Ssp_store.Store.Bin

let proto_version = 5
let min_proto_version = 2
let default_max_frame = 8 * 1024 * 1024
let req_magic = "SSPQ"
let resp_magic = "SSPR"
let default_tenant = "anon"

let malformed what = Ssp_ir.Error.raise_error ~pass:"proto" what

type program_ref = Workload of string | Source of string

(* Trace context rides in a v3 envelope ahead of the request tag, so the
   request variants themselves (and every construction site) are
   untouched. An empty trace id on the wire means "untraced". *)
type trace_ctx = { trace_id : string; span_id : int }

(* Per-hop latency breakdown stamped into v3 response envelopes by each
   process a traced request crosses. *)
type hop = { hop_node : string; hop_stage : string; hop_ms : float }

(* v4 request envelope, riding after the trace fields.

   [re_deadline_ms] is the client-minted end-to-end budget *remaining*
   at send time: 0. means no deadline, negative means already expired
   (senders may stamp an expired budget rather than suppress the
   request so the receiver can account the shed). Each hop re-stamps
   the remainder before forwarding, which is what replaces independent
   per-hop timeouts.

   [re_artifacts] is the router's replication ask: [artifacts_none]
   for plain clients, [artifacts_on_miss] when the primary should
   attach freshly-computed artifacts for write-through,
   [artifacts_always] when a failover target should attach them even
   on a hit so the router can read-repair the primary. *)
type req_env = {
  re_trace : trace_ctx option;
  re_deadline_ms : float;
  re_artifacts : int;
}

let artifacts_none = 0
let artifacts_on_miss = 1
let artifacts_always = 2

let no_env = { re_trace = None; re_deadline_ms = 0.; re_artifacts = 0 }

type request =
  | Adapt of {
      prog : program_ref;
      scale : int;
      pipeline : string;
      tenant : string;
    }
  | Sim of {
      prog : program_ref;
      scale : int;
      pipeline : string;
      ssp : bool;
      tenant : string;
    }
  | Stats
  | Shutdown
  | Stats_snapshot
  | Put_blob of { key : string; blob : string }
  | Ping
  | Feedback of {
      prog : program_ref;
      scale : int;
      pipeline : string;
      tenant : string;
      blob : string; (* sealed attribution report (Ssp_feedback) *)
    }

let tenant_of = function
  | Adapt { tenant; _ } | Sim { tenant; _ } | Feedback { tenant; _ } -> tenant
  | Stats | Shutdown | Stats_snapshot | Put_blob _ | Ping -> "-"

type error_info = { pass : string; what : string; injected : bool }

type response =
  | Adapted of { report : string; asm : string; cache : string }
  | Simmed of { stats : string }
  | Stats_reply of { summary : string }
  | Ok_reply
  | Busy_reply of { retry_after_s : float }
  | Snapshot_reply of { snapshot : string }
  | Deadline_exceeded of { stage : string; budget_ms : float; elapsed_ms : float }
  | Error_reply of error_info

(* ---- body codecs ---- *)

let w_program_ref b = function
  | Workload name ->
    Bin.w_u8 b 0;
    Bin.w_str b name
  | Source text ->
    Bin.w_u8 b 1;
    Bin.w_str b text

let r_program_ref r =
  match Bin.r_u8 r with
  | 0 -> Workload (Bin.r_str r)
  | 1 -> Source (Bin.r_str r)
  | t -> malformed (Printf.sprintf "unknown program-ref tag %d" t)

(* Envelopes. v3 inserts trace fields (requests) / a hop list
   (responses) between the version byte and the body tag; v4 appends
   the deadline budget + artifact ask (requests) / the replicated
   artifact list (responses) after them. v2 and v3 payloads decode
   exactly as before, so old peers interoperate. *)

let encode magic envelope emit =
  let b = Bin.writer () in
  Bin.w_str b magic;
  Bin.w_u8 b proto_version;
  envelope b;
  emit b;
  Bin.contents b

let decode magic payload envelope k =
  let r = Bin.reader payload in
  let m = Bin.r_str r in
  if not (String.equal m magic) then malformed "bad payload magic";
  let v = Bin.r_u8 r in
  if v < min_proto_version || v > proto_version then
    malformed (Printf.sprintf "protocol version %d (want %d-%d)" v
                 min_proto_version proto_version);
  let env = envelope r v in
  let x = k r in
  Bin.expect_end r;
  (x, env)

let w_trace b = function
  | None ->
    Bin.w_str b "";
    Bin.w_int b 0
  | Some { trace_id; span_id } ->
    Bin.w_str b trace_id;
    Bin.w_int b span_id

let r_trace r v =
  if v < 3 then None
  else begin
    let trace_id = Bin.r_str r in
    let span_id = Bin.r_int r in
    if String.equal trace_id "" then None else Some { trace_id; span_id }
  end

let w_hops b hops =
  Bin.w_int b (List.length hops);
  List.iter
    (fun { hop_node; hop_stage; hop_ms } ->
      Bin.w_str b hop_node;
      Bin.w_str b hop_stage;
      Bin.w_float b hop_ms)
    hops

let r_hops r v =
  if v < 3 then []
  else begin
    let n = Bin.r_int r in
    if n < 0 || n > 4096 then malformed (Printf.sprintf "implausible hop count %d" n);
    List.init n (fun _ ->
        let hop_node = Bin.r_str r in
        let hop_stage = Bin.r_str r in
        let hop_ms = Bin.r_float r in
        { hop_node; hop_stage; hop_ms })
  end

let w_artifacts b artifacts =
  Bin.w_int b (List.length artifacts);
  List.iter
    (fun (key, blob) ->
      Bin.w_str b key;
      Bin.w_str b blob)
    artifacts

let r_artifacts r v =
  if v < 4 then []
  else begin
    let n = Bin.r_int r in
    if n < 0 || n > 64 then
      malformed (Printf.sprintf "implausible artifact count %d" n);
    List.init n (fun _ ->
        let key = Bin.r_str r in
        let blob = Bin.r_str r in
        (key, blob))
  end

let encode_request ?trace ?(deadline_ms = 0.) ?(artifacts = artifacts_none) req
    =
  encode req_magic
    (fun b ->
      w_trace b trace;
      Bin.w_float b deadline_ms;
      Bin.w_u8 b artifacts)
    (fun b ->
      match req with
      | Adapt { prog; scale; pipeline; tenant } ->
        Bin.w_u8 b 1;
        w_program_ref b prog;
        Bin.w_int b scale;
        Bin.w_str b pipeline;
        Bin.w_str b tenant
      | Sim { prog; scale; pipeline; ssp; tenant } ->
        Bin.w_u8 b 2;
        w_program_ref b prog;
        Bin.w_int b scale;
        Bin.w_str b pipeline;
        Bin.w_bool b ssp;
        Bin.w_str b tenant
      | Stats -> Bin.w_u8 b 3
      | Shutdown -> Bin.w_u8 b 4
      | Stats_snapshot -> Bin.w_u8 b 5
      | Put_blob { key; blob } ->
        Bin.w_u8 b 6;
        Bin.w_str b key;
        Bin.w_str b blob
      | Ping -> Bin.w_u8 b 7
      | Feedback { prog; scale; pipeline; tenant; blob } ->
        (* New in v5. The workload identity rides beside the blob so the
           router can place the report on the key's primary shard with
           the same affinity hash Adapt/Sim use. *)
        Bin.w_u8 b 8;
        w_program_ref b prog;
        Bin.w_int b scale;
        Bin.w_str b pipeline;
        Bin.w_str b tenant;
        Bin.w_str b blob)

let r_req_env r v =
  let re_trace = r_trace r v in
  if v < 4 then { no_env with re_trace }
  else begin
    let re_deadline_ms = Bin.r_float r in
    let re_artifacts = Bin.r_u8 r in
    if re_artifacts > artifacts_always then
      malformed (Printf.sprintf "unknown artifact ask %d" re_artifacts);
    { re_trace; re_deadline_ms; re_artifacts }
  end

let decode_request_env payload =
  decode req_magic payload r_req_env (fun r ->
      match Bin.r_u8 r with
      | 1 ->
        let prog = r_program_ref r in
        let scale = Bin.r_int r in
        let pipeline = Bin.r_str r in
        let tenant = Bin.r_str r in
        Adapt { prog; scale; pipeline; tenant }
      | 2 ->
        let prog = r_program_ref r in
        let scale = Bin.r_int r in
        let pipeline = Bin.r_str r in
        let ssp = Bin.r_bool r in
        let tenant = Bin.r_str r in
        Sim { prog; scale; pipeline; ssp; tenant }
      | 3 -> Stats
      | 4 -> Shutdown
      | 5 -> Stats_snapshot
      | 6 ->
        let key = Bin.r_str r in
        let blob = Bin.r_str r in
        Put_blob { key; blob }
      | 7 -> Ping
      | 8 ->
        let prog = r_program_ref r in
        let scale = Bin.r_int r in
        let pipeline = Bin.r_str r in
        let tenant = Bin.r_str r in
        let blob = Bin.r_str r in
        Feedback { prog; scale; pipeline; tenant; blob }
      | t -> malformed (Printf.sprintf "unknown request tag %d" t))

let decode_request_traced payload =
  let req, env = decode_request_env payload in
  (req, env.re_trace)

let decode_request payload = fst (decode_request_env payload)

let encode_response ?(hops = []) ?(artifacts = []) resp =
  encode resp_magic
    (fun b ->
      w_hops b hops;
      w_artifacts b artifacts)
    (fun b ->
      match resp with
      | Adapted { report; asm; cache } ->
        Bin.w_u8 b 1;
        Bin.w_str b report;
        Bin.w_str b asm;
        Bin.w_str b cache
      | Simmed { stats } ->
        Bin.w_u8 b 2;
        Bin.w_str b stats
      | Stats_reply { summary } ->
        Bin.w_u8 b 3;
        Bin.w_str b summary
      | Ok_reply -> Bin.w_u8 b 4
      | Busy_reply { retry_after_s } ->
        Bin.w_u8 b 5;
        Bin.w_float b retry_after_s
      | Snapshot_reply { snapshot } ->
        Bin.w_u8 b 6;
        Bin.w_str b snapshot
      | Deadline_exceeded { stage; budget_ms; elapsed_ms } ->
        Bin.w_u8 b 7;
        Bin.w_str b stage;
        Bin.w_float b budget_ms;
        Bin.w_float b elapsed_ms
      | Error_reply { pass; what; injected } ->
        Bin.w_u8 b 255;
        Bin.w_str b pass;
        Bin.w_str b what;
        Bin.w_bool b injected)

let decode_response_env payload =
  let resp, (hops, artifacts) =
    decode resp_magic payload
      (fun r v ->
        let hops = r_hops r v in
        let artifacts = r_artifacts r v in
        (hops, artifacts))
      (fun r ->
          match Bin.r_u8 r with
      | 1 ->
        let report = Bin.r_str r in
        let asm = Bin.r_str r in
        let cache = Bin.r_str r in
        Adapted { report; asm; cache }
      | 2 -> Simmed { stats = Bin.r_str r }
      | 3 -> Stats_reply { summary = Bin.r_str r }
      | 4 -> Ok_reply
      | 5 -> Busy_reply { retry_after_s = Bin.r_float r }
      | 6 -> Snapshot_reply { snapshot = Bin.r_str r }
      | 7 ->
        let stage = Bin.r_str r in
        let budget_ms = Bin.r_float r in
        let elapsed_ms = Bin.r_float r in
        Deadline_exceeded { stage; budget_ms; elapsed_ms }
      | 255 ->
        let pass = Bin.r_str r in
        let what = Bin.r_str r in
        let injected = Bin.r_bool r in
        Error_reply { pass; what; injected }
      | t -> malformed (Printf.sprintf "unknown response tag %d" t))
  in
  (resp, hops, artifacts)

let decode_response_hops payload =
  let resp, hops, _ = decode_response_env payload in
  (resp, hops)

let decode_response payload =
  let resp, _, _ = decode_response_env payload in
  resp

(* ---- framing ---- *)

let frame payload =
  let n = String.length payload in
  let b = Buffer.create (n + 4) in
  Buffer.add_int32_be b (Int32.of_int n);
  Buffer.add_string b payload;
  Buffer.contents b

let write_all fd s =
  let n = String.length s in
  let b = Bytes.of_string s in
  let off = ref 0 in
  while !off < n do
    let w = Unix.write fd b !off (n - !off) in
    if w = 0 then malformed "short write";
    off := !off + w
  done

let write_frame fd payload = write_all fd (frame payload)

let read_exact fd n ~eof_ok =
  let b = Bytes.create n in
  let off = ref 0 in
  let eof = ref false in
  while !off < n && not !eof do
    match Unix.read fd b !off (n - !off) with
    | 0 -> eof := true
    | k -> off := !off + k
  done;
  if !eof then
    if !off = 0 && eof_ok then None else malformed "truncated frame"
  else Some (Bytes.to_string b)

let read_frame ?(max_frame = default_max_frame) fd =
  match read_exact fd 4 ~eof_ok:true with
  | None -> None
  | Some hdr ->
    let n = Int32.to_int (String.get_int32_be hdr 0) in
    if n < 0 || n > max_frame then
      malformed (Printf.sprintf "frame of %d bytes exceeds limit %d" n max_frame);
    if n = 0 then Some ""
    else (
      match read_exact fd n ~eof_ok:false with
      | Some payload -> Some payload
      | None -> malformed "truncated frame")
