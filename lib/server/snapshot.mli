(** Versioned binary telemetry snapshot — the payload of
    {!Proto.Snapshot_reply}.

    A shard captures its live telemetry (counters, gauges, distribution
    and histogram summaries, dropped-event count) into a [t]; the router
    fans a {!Proto.request.Stats_snapshot} out to every live shard and
    {!merge}s the replies: histograms merge bucket-wise (the fixed
    layout in {!Ssp_telemetry.Telemetry} makes the merge exact),
    counters add, and backpressure/integrity counters (evictions,
    corrupt entries, retry-after rejections) additionally stay
    attributed per shard under [shard.<node>.<name>]. *)

module T = Ssp_telemetry.Telemetry

type t = {
  node : string;  (** who captured this (["host:port"], ["router"], …) *)
  counters : (string * int) list;  (** sorted by name *)
  gauges : (string * float) list;
      (** point-in-time values (queue depth, cache bytes, shard
          liveness) — never summed on merge, always shard-prefixed *)
  dists : (string * T.dist_summary) list;
  hists : (string * T.hist_summary) list;
  events_dropped : int;
}

val capture : ?node:string -> ?gauges:(string * float) list -> unit -> t
(** Snapshot the process-wide telemetry state ({!T.report} plus
    caller-supplied gauges). Cheap enough to answer inline on the serve
    loop. *)

val encode : t -> string
(** Binary encoding (magic ["SSPS"], version 1, via
    {!Ssp_store.Store.Bin}). *)

val decode : string -> t
(** Raises [Ssp_ir.Error.Error] (pass ["snapshot"]) on malformed input,
    including a histogram whose bucket layout differs from this build's
    — merging across layouts would be silently wrong. *)

val merge : ?node:string -> t list -> t
(** Merge snapshots into one cluster view (default [node] is
    ["cluster"]). Counters add; [per-shard] counters (see above) are
    also kept under [shard.<node>.<name>]; gauges are kept per shard
    only; dists merge exactly via carried sum-of-squares; hists merge
    bucket-wise; [events_dropped] adds. *)

val pp : Format.formatter -> t -> unit
(** Stats table: counters, gauges, dists, histogram quantiles. *)

val to_json : t -> string
