(** Blocking client for the adaptation daemon and the cluster router:
    connect (Unix socket or TCP), send one framed request, read the
    framed response, close. *)

type addr = Unix_sock of string | Tcp of string * int

val pp_addr : addr -> string
(** ["path"] or ["host:port"], for diagnostics. *)

val request_addr :
  ?max_frame:int -> ?timeout_s:float -> addr -> Proto.request -> Proto.response
(** One request/response exchange. Raises [Unix.Unix_error] when the
    endpoint cannot be reached and [Ssp_ir.Error.Error] (pass ["proto"])
    when the reply is malformed or the connection dies mid-reply. TCP
    connections set [TCP_NODELAY]. [timeout_s] arms [SO_RCVTIMEO] /
    [SO_SNDTIMEO] so a peer that accepts but never replies raises
    [EAGAIN] instead of hanging the caller. *)

val request_hops :
  ?max_frame:int ->
  ?timeout_s:float ->
  ?trace:Proto.trace_ctx ->
  ?deadline_ms:float ->
  addr ->
  Proto.request ->
  Proto.response * Proto.hop list
(** {!request_addr} that also propagates a trace context into the v3
    request envelope and returns the per-hop latency breakdown stamped
    into the reply (empty from untraced peers and v2 servers).
    [deadline_ms] (> 0) stamps the remaining end-to-end budget into the
    v4 envelope and caps the socket timeout at the budget — with a
    deadline in play there is no independent per-hop timeout. *)

val request_env :
  ?max_frame:int ->
  ?timeout_s:float ->
  ?trace:Proto.trace_ctx ->
  ?deadline_ms:float ->
  ?artifacts:int ->
  addr ->
  Proto.request ->
  Proto.response * Proto.hop list * (string * string) list
(** The full v4 exchange: additionally sets the envelope's artifact ask
    ({!Proto.artifacts_on_miss} / {!Proto.artifacts_always}) and
    returns the artifact [(key, blob)] list the shard attached — the
    router's write-through/read-repair source. *)

val request : ?max_frame:int -> socket:string -> Proto.request -> Proto.response
(** [request_addr] over a Unix-domain socket (the pre-cluster API). *)

val request_retry :
  ?max_frame:int ->
  ?attempts:int ->
  ?base_delay_s:float ->
  ?max_delay_s:float ->
  ?on_wait:(reason:string -> delay_s:float -> unit) ->
  ?deadline_s:float ->
  addr ->
  Proto.request ->
  Proto.response
(** {!request_addr} with capped jittered backoff, safe because requests
    are idempotent. Retries up to [attempts] (default 5) extra times on
    (a) transient connect/write failures — refused or reset connections,
    [EPIPE], a daemon socket not there yet — with exponential backoff
    from [base_delay_s] (default 0.05 s), and (b) {!Proto.Busy_reply}
    admission rejections, honoring the server's retry-after hint. Every
    delay is capped at [max_delay_s] (default 2 s) and jittered by
    x[0.5, 1.5); [on_wait] is called before each sleep (CLI progress
    messages). When attempts run out the last [Busy_reply] is returned
    (or the last exception re-raised) so the caller sees the true
    outcome. Non-transient errors and structured [Error_reply]s are
    never retried.

    [deadline_s] mints an end-to-end budget covering {e all} attempts
    and backoff sleeps: each attempt stamps the remaining budget into
    its envelope, and once it runs out the call returns a local
    {!Proto.response.Deadline_exceeded} (stage ["client"]) without
    touching the wire. *)

val request_retry_hops :
  ?max_frame:int ->
  ?attempts:int ->
  ?base_delay_s:float ->
  ?max_delay_s:float ->
  ?on_wait:(reason:string -> delay_s:float -> unit) ->
  ?trace:Proto.trace_ctx ->
  ?deadline_s:float ->
  addr ->
  Proto.request ->
  Proto.response * Proto.hop list
(** {!request_retry} + trace propagation + the reply's hop list, as in
    {!request_hops}. *)
