(** Blocking client for the adaptation daemon: connect, send one framed
    request, read the framed response, close. *)

val request :
  ?max_frame:int -> socket:string -> Proto.request -> Proto.response
(** Raises [Unix.Unix_error] when the socket cannot be reached and
    [Ssp_ir.Error.Error] (pass ["proto"]) when the server's reply is
    malformed or the connection dies mid-reply. *)
