(** The adaptation daemon: a Unix-domain-socket service front-ending the
    post-pass pipeline.

    One [serve] call binds the socket and runs a single-threaded
    [Unix.select] accept/read loop. Complete request frames collected in
    one loop round form a batch; work requests ([Adapt]/[Sim]) fan out
    across a long-lived {!Ssp_parallel.Pool} (created once at start-up,
    shut down at exit), so concurrent clients share the domain pool
    instead of forking pipelines. Adapt requests go through the
    content-addressed store ({!Ssp_store.Store.run_cached} /
    [cached_profile]) when a cache is configured, so a repeated request
    is a disk lookup, not a recompute.

    Robustness: every per-request failure — unknown workload, source
    that does not compile, a malformed or oversized frame, an injected
    fault — becomes a structured {!Proto.response.Error_reply}; client
    misbehaviour (mid-request disconnect, a partial frame left to rot
    past the timeout, a peer that stops draining its reply) closes that
    connection only. Connection sockets are non-blocking with replies
    buffered per connection, so no single peer can stall the loop. The
    daemon itself stops only on a [Shutdown] request. *)

type config = {
  socket : string;  (** Unix-domain socket path (unlinked on exit) *)
  jobs : int;  (** domain-pool width for batched work requests *)
  cache : Ssp_store.Store.Cache.t option;
      (** [None] disables the artifact store ([cache = "off"] replies) *)
  max_frame : int;  (** per-frame byte limit, {!Proto.default_max_frame} *)
  timeout_s : float;
      (** per-request budget: a request still queued (or a partial frame
          still unfinished) after this many seconds gets a structured
          timeout error instead of service *)
}

val default_config : socket:string -> config
(** [jobs = 2], a cache in {!Ssp_store.Store.Cache.default_dir},
    [max_frame = Proto.default_max_frame], [timeout_s = 60.]. *)

val serve : config -> unit
(** Bind, listen and serve until a [Shutdown] request (blocking). Raises
    [Unix.Unix_error] if the socket cannot be bound. Telemetry (when
    enabled): [server.requests], [server.errors], [server.cache_hit],
    [server.batches], a [server.queue_depth] series sampled per batch,
    and a [server.request] span per served request. *)
