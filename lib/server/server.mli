(** The adaptation daemon: a socket service front-ending the post-pass
    pipeline — one shard of the cluster (see {!Ssp_cluster}).

    One [serve] call binds its listeners — a Unix-domain socket, a TCP
    endpoint, or both, speaking the same framed protocol — and runs a
    single-threaded [Unix.select] accept/read loop. Complete request
    frames go through admission control: when the backlog has reached
    [max_queue] the request is answered immediately with
    {!Proto.response.Busy_reply} (retry-after backpressure, which
    well-behaved clients honor with jittered backoff); otherwise it is
    queued under its declaring tenant. Each round drains at most
    [max_batch] requests, chosen by deficit-round-robin over the active
    tenants ({!Admission}), and fans them across a long-lived
    {!Ssp_parallel.Pool} — so concurrent clients share the domain pool
    and one hot tenant cannot starve the rest. Adapt requests go through
    the content-addressed store ({!Ssp_store.Store.run_cached} /
    [cached_profile]) when a cache is configured, so a repeated request
    is a disk lookup, not a recompute.

    Robustness: every per-request failure — unknown workload, source
    that does not compile, a malformed or oversized frame, an injected
    fault — becomes a structured {!Proto.response.Error_reply}; client
    misbehaviour (mid-request disconnect, a partial frame left to rot
    past the timeout, a peer that stops draining its reply) closes that
    connection only. Connection sockets are non-blocking with replies
    buffered per connection, so no single peer can stall the loop. The
    daemon itself stops only on a [Shutdown] request, at which point any
    still-queued work is answered with a structured error rather than
    dropped. *)

type config = {
  socket : string option;
      (** Unix-domain socket path (unlinked on exit), if any *)
  tcp : (string * int) option;
      (** TCP [host, port] to bind alongside it; port 0 binds an
          ephemeral port (reported through [serve]'s [ready]) *)
  jobs : int;  (** domain-pool width for batched work requests *)
  cache : Ssp_store.Store.Cache.t option;
      (** [None] disables the artifact store ([cache = "off"] replies) *)
  max_frame : int;  (** per-frame byte limit, {!Proto.default_max_frame} *)
  timeout_s : float;
      (** per-request budget: a request still queued (or a partial frame
          still unfinished) after this many seconds gets a structured
          timeout error instead of service *)
  max_batch : int;
      (** admission: at most this many work requests fan out per round *)
  max_queue : int;
      (** admission: total backlog bound; arrivals beyond it get
          [Busy_reply] (a [max_queue] of 0 rejects all work — useful to
          drain or to exercise the retry path) *)
  retry_after_s : float;
      (** the retry-after hint carried by [Busy_reply] *)
  tune : bool;
      (** closed-loop tuning: when set, an uploaded attribution report
          that pushes its workload's aggregate past the confidence
          thresholds triggers a deterministic {!Ssp_feedback.Feedback}
          tuning round and publishes the next artifact version; when
          unset the daemon only persists and aggregates (an operator
          runs [sspc tune] offline) *)
}

val default_config : socket:string -> config
(** Unix socket only, [jobs = 2], a cache in
    {!Ssp_store.Store.Cache.default_dir}, [max_frame =
    Proto.default_max_frame], [timeout_s = 60.], [max_batch = 32],
    [max_queue = 256], [retry_after_s = 0.2], [tune = false]. *)

val serve : ?ready:(tcp_port:int option -> unit) -> config -> unit
(** Bind, listen and serve until a [Shutdown] request (blocking).
    [ready] is called once, after every listener is bound, with the
    actual TCP port (useful with port 0). Raises [Unix.Unix_error] if a
    listener cannot be bound and [Ssp_ir.Error.Error] if neither
    endpoint is configured. Telemetry (when enabled): [server.requests],
    [server.errors], [server.rejected], [server.cache_hit],
    [server.batches], per-tenant [server.tenant.<t>.requests] /
    [.served] / [.rejected], a [server.queue_depth] series sampled per
    batch, and a [server.request] span per served request. *)
