let request ?max_frame ~socket req =
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Fun.protect ~finally:(fun () ->
      try Unix.close fd with Unix.Unix_error _ -> ())
  @@ fun () ->
  Unix.connect fd (Unix.ADDR_UNIX socket);
  Proto.write_frame fd (Proto.encode_request req);
  match Proto.read_frame ?max_frame fd with
  | Some payload -> Proto.decode_response payload
  | None ->
    Ssp_ir.Error.raise_error ~pass:"proto"
      "server closed the connection without replying"
