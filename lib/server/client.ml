type addr = Unix_sock of string | Tcp of string * int

let pp_addr = function
  | Unix_sock path -> path
  | Tcp (host, port) -> Printf.sprintf "%s:%d" host port

let connect addr =
  match addr with
  | Unix_sock path ->
    let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    (match Unix.connect fd (Unix.ADDR_UNIX path) with
    | () -> fd
    | exception e ->
      (try Unix.close fd with Unix.Unix_error _ -> ());
      raise e)
  | Tcp (host, port) ->
    let ip =
      match Unix.inet_addr_of_string host with
      | a -> a
      | exception Failure _ -> (
        match Unix.gethostbyname host with
        | { Unix.h_addr_list = addrs; _ } when Array.length addrs > 0 ->
          addrs.(0)
        | _ | (exception Not_found) ->
          Ssp_ir.Error.raise_error ~pass:"proto"
            ("cannot resolve host " ^ host))
    in
    let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
    (match
       Unix.setsockopt fd Unix.TCP_NODELAY true;
       Unix.connect fd (Unix.ADDR_INET (ip, port))
     with
    | () -> fd
    | exception e ->
      (try Unix.close fd with Unix.Unix_error _ -> ());
      raise e)

let request_env ?max_frame ?timeout_s ?trace ?(deadline_ms = 0.) ?artifacts
    addr req =
  let fd = connect addr in
  Fun.protect ~finally:(fun () ->
      try Unix.close fd with Unix.Unix_error _ -> ())
  @@ fun () ->
  (* When the request carries a deadline budget, the socket timeout is
     the budget: the per-hop timeout collapses into the end-to-end
     deadline instead of living an independent life. *)
  let timeout_s =
    if deadline_ms > 0. then
      Some
        (match timeout_s with
        | Some t when t > 0. -> Float.min t (deadline_ms /. 1000.)
        | _ -> deadline_ms /. 1000.)
    else timeout_s
  in
  (match timeout_s with
  | Some t when t > 0. -> (
    (* A peer that accepts but never replies surfaces as EAGAIN instead
       of a hung client (the router treats it as a dead shard). *)
    try
      Unix.setsockopt_float fd Unix.SO_RCVTIMEO t;
      Unix.setsockopt_float fd Unix.SO_SNDTIMEO t
    with Unix.Unix_error _ -> ())
  | _ -> ());
  Proto.write_frame fd (Proto.encode_request ?trace ~deadline_ms ?artifacts req);
  match Proto.read_frame ?max_frame fd with
  | Some payload -> Proto.decode_response_env payload
  | None ->
    Ssp_ir.Error.raise_error ~pass:"proto"
      "server closed the connection without replying"

let request_hops ?max_frame ?timeout_s ?trace ?deadline_ms addr req =
  let resp, hops, _ =
    request_env ?max_frame ?timeout_s ?trace ?deadline_ms addr req
  in
  (resp, hops)

let request_addr ?max_frame ?timeout_s addr req =
  fst (request_hops ?max_frame ?timeout_s addr req)

let request ?max_frame ~socket req = request_addr ?max_frame (Unix_sock socket) req

(* ---- transient-failure retry with capped jittered backoff ---- *)

(* A daemon restarting, a listen backlog overflowing, or a router
   failing over produces exactly these: the connection is refused or
   dies before a reply. Retrying them is safe because every request is
   idempotent (pure computation + content-addressed cache). *)
let transient_error = function
  | Unix.ECONNREFUSED | Unix.ECONNRESET | Unix.EPIPE | Unix.ENOENT
  | Unix.ENETUNREACH | Unix.EHOSTUNREACH | Unix.ETIMEDOUT | Unix.EAGAIN
  | Unix.EINTR ->
    true
  | _ -> false

(* Deciding to wait is deterministic; only the jitter draws randomness,
   so retries from a fleet of clients spread out instead of thundering
   back in lockstep. *)
let jittered d = d *. (0.5 +. Random.float 1.0)

let request_retry_hops ?max_frame ?(attempts = 5) ?(base_delay_s = 0.05)
    ?(max_delay_s = 2.0) ?on_wait ?trace ?deadline_s addr req =
  let t_start = Unix.gettimeofday () in
  (* The client mints the end-to-end budget; every attempt (and every
     backoff sleep) spends it. A budget that runs out mid-retry becomes
     a local structured shed — the server's time is not worth burning on
     a reply nobody is waiting for. *)
  let remaining_ms () =
    match deadline_s with
    | None -> None
    | Some s -> Some ((s *. 1000.) -. ((Unix.gettimeofday () -. t_start) *. 1000.))
  in
  let expired stage =
    ( Proto.Deadline_exceeded
        {
          stage;
          budget_ms = Option.value ~default:0. deadline_s *. 1000.;
          elapsed_ms = (Unix.gettimeofday () -. t_start) *. 1000.;
        },
      [] )
  in
  let wait reason d =
    let d = jittered (Float.min max_delay_s (Float.max 0.001 d)) in
    (match on_wait with Some f -> f ~reason ~delay_s:d | None -> ());
    Unix.sleepf d
  in
  let rec go k =
    match remaining_ms () with
    | Some ms when ms <= 0. -> expired "client"
    | rem -> (
      let deadline_ms = Option.value ~default:0. rem in
      match request_hops ?max_frame ?trace ~deadline_ms addr req with
      | Proto.Busy_reply { retry_after_s }, _ when k < attempts ->
        (* Admission backpressure: honor the server's retry-after hint. *)
        wait "server saturated" (Float.max retry_after_s base_delay_s);
        go (k + 1)
      | resp -> resp
      | exception Unix.Unix_error (e, _, _)
        when k < attempts && transient_error e ->
        wait (Unix.error_message e) (base_delay_s *. (2. ** float_of_int k));
        go (k + 1))
  in
  go 0

let request_retry ?max_frame ?attempts ?base_delay_s ?max_delay_s ?on_wait
    ?deadline_s addr req =
  fst
    (request_retry_hops ?max_frame ?attempts ?base_delay_s ?max_delay_s
       ?on_wait ?deadline_s addr req)
