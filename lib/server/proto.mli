(** Wire protocol of the adaptation service.

    Length-prefixed framing (4-byte big-endian frame length, then the
    frame payload) over a Unix-domain stream socket. Each payload starts
    with a direction magic (["SSPQ"] request / ["SSPR"] response) and a
    protocol version byte, then a {!Ssp_store.Store.Bin}-encoded body.
    Decoders raise structured {!Ssp_ir.Error.Error}s (pass ["proto"]) on
    anything malformed — a bad frame becomes an error reply, never a dead
    connection or a crash. *)

val proto_version : int
(** Version written by this build (5): v4 adds the deadline budget and
    artifact ask to request envelopes and the replicated-artifact list
    to response envelopes; v5 adds the {!request.Feedback} request
    (attribution-report upload). Envelopes are unchanged from v4, so v4
    payloads decode exactly as before. *)

val min_proto_version : int
(** Oldest version still accepted by decoders (2): v2 payloads carry no
    trace envelope and decode to an untraced request / hop-less
    response; v3 payloads carry no deadline or artifacts. *)

val default_max_frame : int
(** Frames larger than this are rejected (8 MiB). *)

val default_tenant : string
(** Tenant name used when a client does not declare one (["anon"]). *)

type program_ref =
  | Workload of string  (** a named suite workload, compiled server-side *)
  | Source of string  (** mini-C source text shipped in the request *)

type trace_ctx = { trace_id : string; span_id : int }
(** Distributed-trace context minted by the client and propagated in the
    v3 request envelope; [span_id] is the sender's span, i.e. the
    receiver's parent span. An empty [trace_id] never appears here — it
    encodes "untraced" on the wire. *)

type hop = { hop_node : string; hop_stage : string; hop_ms : float }
(** One entry of the per-hop latency breakdown stamped into a v3
    response envelope ([hop_node] e.g. ["shard 127.0.0.1:7301"],
    [hop_stage] e.g. ["queue"], ["store.lookup"], ["serialize"]). *)

type req_env = {
  re_trace : trace_ctx option;
  re_deadline_ms : float;
      (** the end-to-end budget *remaining* at send time: [0.] means no
          deadline, negative means already expired (stamped rather than
          suppressed so the receiver accounts the shed). Each hop
          re-stamps the remainder before forwarding. *)
  re_artifacts : int;
      (** replication ask: {!artifacts_none}, {!artifacts_on_miss}
          (attach freshly-computed artifacts for write-through) or
          {!artifacts_always} (attach even on a hit, for read-repair) *)
}
(** The v4 request envelope. v2/v3 payloads decode to {!no_env} plus
    whatever trace they carried. *)

val artifacts_none : int
val artifacts_on_miss : int
val artifacts_always : int

val no_env : req_env
(** No trace, no deadline, no artifact ask. *)

type request =
  | Adapt of {
      prog : program_ref;
      scale : int;
      pipeline : string;
      tenant : string;
    }
      (** run the post-pass; reply carries the report and the adapted
          binary as assembly text *)
  | Sim of {
      prog : program_ref;
      scale : int;
      pipeline : string;
      ssp : bool;
      tenant : string;
    }
      (** cycle simulation, optionally adapting first *)
  | Stats  (** the server's telemetry summary *)
  | Shutdown  (** acknowledge, then stop serving *)
  | Stats_snapshot
      (** a versioned binary telemetry snapshot (see {!Snapshot}); the
          router fans this out to every live shard and merges *)
  | Put_blob of { key : string; blob : string }
      (** replica write: store a sealed artifact blob under [key]. The
          receiver verifies the envelope ({!Ssp_store.Store.blob_ok})
          and the key's shape before touching its cache; answered
          inline (no admission) with [Ok_reply] or a structured
          error. *)
  | Ping
      (** cheap liveness probe ([Ok_reply]), used by the router's
          circuit breaker to half-open a quarantined shard without
          risking real traffic *)
  | Feedback of {
      prog : program_ref;
      scale : int;
      pipeline : string;
      tenant : string;
      blob : string;
    }
      (** new in v5: upload a sealed attribution report
          ([Ssp_feedback.encode_report]) from a client's simulated run.
          The workload identity rides beside the blob so the router can
          forward the report to the key's primary shard with the same
          affinity hash Adapt/Sim use. The server verifies the blob's
          envelope and kind (a wrong-kind blob is a structured error),
          persists it, and folds it into the workload's aggregate. *)

val tenant_of : request -> string
(** The declaring tenant of a work request; ["-"] for control requests
    (which bypass admission control). *)

type error_info = { pass : string; what : string; injected : bool }

type response =
  | Adapted of { report : string; asm : string; cache : string }
      (** [cache] is ["hit"], ["miss"] or ["off"] *)
  | Simmed of { stats : string }
  | Stats_reply of { summary : string }
  | Ok_reply
  | Busy_reply of { retry_after_s : float }
      (** admission control: the shard's queue is saturated; retry after
          (roughly) this many seconds — clients add jitter *)
  | Snapshot_reply of { snapshot : string }
      (** {!Snapshot.encode}d binary telemetry snapshot *)
  | Deadline_exceeded of {
      stage : string;
          (** where the budget ran out: ["client"], ["router"],
              ["admission"], ["compute"] or ["serialize"] *)
      budget_ms : float;  (** the budget as stamped on arrival *)
      elapsed_ms : float;  (** time burned at that node before the shed *)
    }
      (** structured deadline shed: the request's end-to-end budget
          expired before (or while) serving it. Never retried — the
          client's time is gone either way. *)
  | Error_reply of error_info

val encode_request :
  ?trace:trace_ctx -> ?deadline_ms:float -> ?artifacts:int -> request -> string
(** [deadline_ms] (default 0 = none) and [artifacts] (default
    {!artifacts_none}) populate the v4 envelope; see {!req_env}. *)

val decode_request : string -> request

val decode_request_traced : string -> request * trace_ctx option
(** Like {!decode_request} but also returns the trace envelope ([None]
    for v2 payloads and untraced v3+ requests). *)

val decode_request_env : string -> request * req_env
(** Like {!decode_request} but returns the whole v4 envelope
    ({!no_env}-filled for older payloads). *)

val encode_response : ?hops:hop list -> ?artifacts:(string * string) list ->
  response -> string
(** [artifacts] is the replicated-artifact list a shard attaches when
    the request's {!req_env.re_artifacts} asked for it: the cache
    [(key, sealed blob)] pairs the reply was built from, which the
    router writes through to the replica. *)

val decode_response : string -> response

val decode_response_hops : string -> response * hop list
(** Like {!decode_response} but also returns the per-hop latency
    breakdown ([[]] for v2 payloads and untraced replies). *)

val decode_response_env :
  string -> response * hop list * (string * string) list
(** Hops plus the attached artifact list ([[]] below v4). *)

val frame : string -> string
(** Prefix a payload with its 4-byte big-endian length. *)

val write_frame : Unix.file_descr -> string -> unit
(** Write [frame payload] fully (blocking). *)

val read_frame : ?max_frame:int -> Unix.file_descr -> string option
(** Read one complete frame (blocking). [None] on clean EOF before any
    byte; raises [Ssp_ir.Error.Error] (pass ["proto"]) on a truncated
    frame or one larger than [max_frame]. *)
