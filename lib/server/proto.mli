(** Wire protocol of the adaptation service.

    Length-prefixed framing (4-byte big-endian frame length, then the
    frame payload) over a Unix-domain stream socket. Each payload starts
    with a direction magic (["SSPQ"] request / ["SSPR"] response) and a
    protocol version byte, then a {!Ssp_store.Store.Bin}-encoded body.
    Decoders raise structured {!Ssp_ir.Error.Error}s (pass ["proto"]) on
    anything malformed — a bad frame becomes an error reply, never a dead
    connection or a crash. *)

val proto_version : int

val default_max_frame : int
(** Frames larger than this are rejected (8 MiB). *)

val default_tenant : string
(** Tenant name used when a client does not declare one (["anon"]). *)

type program_ref =
  | Workload of string  (** a named suite workload, compiled server-side *)
  | Source of string  (** mini-C source text shipped in the request *)

type request =
  | Adapt of {
      prog : program_ref;
      scale : int;
      pipeline : string;
      tenant : string;
    }
      (** run the post-pass; reply carries the report and the adapted
          binary as assembly text *)
  | Sim of {
      prog : program_ref;
      scale : int;
      pipeline : string;
      ssp : bool;
      tenant : string;
    }
      (** cycle simulation, optionally adapting first *)
  | Stats  (** the server's telemetry summary *)
  | Shutdown  (** acknowledge, then stop serving *)

val tenant_of : request -> string
(** The declaring tenant of a work request; ["-"] for control requests
    (which bypass admission control). *)

type error_info = { pass : string; what : string; injected : bool }

type response =
  | Adapted of { report : string; asm : string; cache : string }
      (** [cache] is ["hit"], ["miss"] or ["off"] *)
  | Simmed of { stats : string }
  | Stats_reply of { summary : string }
  | Ok_reply
  | Busy_reply of { retry_after_s : float }
      (** admission control: the shard's queue is saturated; retry after
          (roughly) this many seconds — clients add jitter *)
  | Error_reply of error_info

val encode_request : request -> string
val decode_request : string -> request
val encode_response : response -> string
val decode_response : string -> response

val frame : string -> string
(** Prefix a payload with its 4-byte big-endian length. *)

val write_frame : Unix.file_descr -> string -> unit
(** Write [frame payload] fully (blocking). *)

val read_frame : ?max_frame:int -> Unix.file_descr -> string option
(** Read one complete frame (blocking). [None] on clean EOF before any
    byte; raises [Ssp_ir.Error.Error] (pass ["proto"]) on a truncated
    frame or one larger than [max_frame]. *)
