(** Wire protocol of the adaptation service.

    Length-prefixed framing (4-byte big-endian frame length, then the
    frame payload) over a Unix-domain stream socket. Each payload starts
    with a direction magic (["SSPQ"] request / ["SSPR"] response) and a
    protocol version byte, then a {!Ssp_store.Store.Bin}-encoded body.
    Decoders raise structured {!Ssp_ir.Error.Error}s (pass ["proto"]) on
    anything malformed — a bad frame becomes an error reply, never a dead
    connection or a crash. *)

val proto_version : int
(** Version written by this build (3). *)

val min_proto_version : int
(** Oldest version still accepted by decoders (2): v2 payloads carry no
    trace envelope and decode to an untraced request / hop-less
    response. *)

val default_max_frame : int
(** Frames larger than this are rejected (8 MiB). *)

val default_tenant : string
(** Tenant name used when a client does not declare one (["anon"]). *)

type program_ref =
  | Workload of string  (** a named suite workload, compiled server-side *)
  | Source of string  (** mini-C source text shipped in the request *)

type trace_ctx = { trace_id : string; span_id : int }
(** Distributed-trace context minted by the client and propagated in the
    v3 request envelope; [span_id] is the sender's span, i.e. the
    receiver's parent span. An empty [trace_id] never appears here — it
    encodes "untraced" on the wire. *)

type hop = { hop_node : string; hop_stage : string; hop_ms : float }
(** One entry of the per-hop latency breakdown stamped into a v3
    response envelope ([hop_node] e.g. ["shard 127.0.0.1:7301"],
    [hop_stage] e.g. ["queue"], ["store.lookup"], ["serialize"]). *)

type request =
  | Adapt of {
      prog : program_ref;
      scale : int;
      pipeline : string;
      tenant : string;
    }
      (** run the post-pass; reply carries the report and the adapted
          binary as assembly text *)
  | Sim of {
      prog : program_ref;
      scale : int;
      pipeline : string;
      ssp : bool;
      tenant : string;
    }
      (** cycle simulation, optionally adapting first *)
  | Stats  (** the server's telemetry summary *)
  | Shutdown  (** acknowledge, then stop serving *)
  | Stats_snapshot
      (** a versioned binary telemetry snapshot (see {!Snapshot}); the
          router fans this out to every live shard and merges *)

val tenant_of : request -> string
(** The declaring tenant of a work request; ["-"] for control requests
    (which bypass admission control). *)

type error_info = { pass : string; what : string; injected : bool }

type response =
  | Adapted of { report : string; asm : string; cache : string }
      (** [cache] is ["hit"], ["miss"] or ["off"] *)
  | Simmed of { stats : string }
  | Stats_reply of { summary : string }
  | Ok_reply
  | Busy_reply of { retry_after_s : float }
      (** admission control: the shard's queue is saturated; retry after
          (roughly) this many seconds — clients add jitter *)
  | Snapshot_reply of { snapshot : string }
      (** {!Snapshot.encode}d binary telemetry snapshot *)
  | Error_reply of error_info

val encode_request : ?trace:trace_ctx -> request -> string
val decode_request : string -> request

val decode_request_traced : string -> request * trace_ctx option
(** Like {!decode_request} but also returns the trace envelope ([None]
    for v2 payloads and untraced v3 requests). *)

val encode_response : ?hops:hop list -> response -> string
val decode_response : string -> response

val decode_response_hops : string -> response * hop list
(** Like {!decode_response} but also returns the per-hop latency
    breakdown ([[]] for v2 payloads and untraced replies). *)

val frame : string -> string
(** Prefix a payload with its 4-byte big-endian length. *)

val write_frame : Unix.file_descr -> string -> unit
(** Write [frame payload] fully (blocking). *)

val read_frame : ?max_frame:int -> Unix.file_descr -> string option
(** Read one complete frame (blocking). [None] on clean EOF before any
    byte; raises [Ssp_ir.Error.Error] (pass ["proto"]) on a truncated
    frame or one larger than [max_frame]. *)
