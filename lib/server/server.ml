module T = Ssp_telemetry.Telemetry
module Store = Ssp_store.Store
module Feedback = Ssp_feedback.Feedback
module F = Ssp_fault.Fault

(* Deadline stamp skew: the budget is minted on the client's clock and
   spent on ours. This site simulates a skewed stamp (the budget reads
   as already expired on arrival) so tests and chaos campaigns can drive
   the admission shed path deterministically. *)
let deadline_skew = F.site "server.deadline_skew"

type config = {
  socket : string option;
  tcp : (string * int) option;
  jobs : int;
  cache : Store.Cache.t option;
  max_frame : int;
  timeout_s : float;
  max_batch : int;
  max_queue : int;
  retry_after_s : float;
  tune : bool;
}

let default_config ~socket =
  {
    socket = Some socket;
    tcp = None;
    jobs = 2;
    cache = Some (Store.Cache.open_dir (Store.Cache.default_dir ()));
    max_frame = Proto.default_max_frame;
    timeout_s = 60.;
    max_batch = 32;
    max_queue = 256;
    retry_after_s = 0.2;
    tune = false;
  }

let resolve_host host =
  match Unix.inet_addr_of_string host with
  | addr -> addr
  | exception Failure _ -> (
    match Unix.gethostbyname host with
    | { Unix.h_addr_list = addrs; _ } when Array.length addrs > 0 -> addrs.(0)
    | _ | (exception Not_found) ->
      Ssp_ir.Error.raise_error ~pass:"server" ("cannot resolve host " ^ host))

(* ---- request execution (runs on pool workers; must never raise) ---- *)

let config_of_pipeline = function
  | "ooo" -> Ssp_machine.Config.out_of_order
  | _ -> Ssp_machine.Config.in_order

let compile_ref prog_ref scale =
  match prog_ref with
  | Proto.Workload name -> (
    match Ssp_workloads.Suite.find name with
    | w -> Ssp_minic.Frontend.compile (w.Ssp_workloads.Workload.source scale)
    | exception Not_found ->
      Ssp_ir.Error.raise_error ~pass:"server" ("unknown workload " ^ name))
  | Proto.Source text -> Ssp_minic.Frontend.compile text

let cache_status = function `Hit -> "hit" | `Miss -> "miss" | `Off -> "off"

(* Feedback-plane shared state: pool workers ingest and tune
   concurrently, so the aggregate read-modify-write is serialized here.
   The refs are cheap process-local gauges for telemetry snapshots —
   walking the store to recount them on every snapshot would make
   [stats --cluster] O(cache). *)
let feedback_mu = Mutex.create ()
let feedback_last_report_s = ref 0.
let feedback_version_max = ref 0
let feedback_rounds = ref 0

(* The published tuning state for a workload, if any: version 0 (or no
   aggregate at all) serves the untuned artifact under the original
   cache key; any later version serves the immutable version-stamped
   artifact the tuner published. *)
let tuning_of cache ~config prog profile =
  match cache with
  | None -> None
  | Some cache -> (
    let key =
      Feedback.aggregate_key ~config ~knobs:Ssp.Adapt.default_knobs prog
        profile
    in
    match Store.Cache.get cache key ~decode:Feedback.decode_aggregate with
    | Some agg when agg.Feedback.ag_version > 0 ->
      Some (agg.Feedback.ag_version, agg.Feedback.ag_overrides)
    | Some _ | None -> None)

(* Profile + adapt through the store. The reported status is the adapt
   lookup's: that is the expensive artifact, and the one whose hit makes
   the reply byte-identical-but-fast. The profile rides back so the
   caller can re-derive the artifact cache keys for replication. *)
let adapted_for cache ~config prog =
  let profile, _ = Store.cached_profile ?cache ~config prog in
  let tuning = tuning_of cache ~config prog profile in
  let result, status = Store.run_cached ?cache ?tuning ~config prog profile in
  (result, cache_status status, profile, tuning)

(* The (key, sealed blob) pairs an adapt reply was built from, read
   straight back off the cache — what the router writes through to the
   replica shard. Missing entries (no cache, eviction racing us) just
   drop out: replication is best-effort by design. *)
let artifacts_of cache ~config ~status ~ask ~tuning prog profile =
  match cache with
  | Some cache
    when ask = Proto.artifacts_always
         || (ask = Proto.artifacts_on_miss && String.equal status "miss") ->
    let tuning_key =
      Option.map
        (fun (v, ov) -> (v, Ssp.Adapt.overrides_string ov))
        tuning
    in
    List.filter_map
      (fun key ->
        Option.map (fun blob -> (key, blob)) (Store.Cache.find cache key))
      [
        Store.profile_key ~config prog;
        Store.adapted_key ?tuning:tuning_key ~config prog profile;
      ]
  | _ -> []

let error_reply (e : Ssp_ir.Error.info) =
  T.count "server.errors" 1;
  Proto.Error_reply
    { pass = e.Ssp_ir.Error.pass;
      what = Ssp_ir.Error.to_string e;
      injected = e.Ssp_ir.Error.injected }

let plain_error pass what =
  T.count "server.errors" 1;
  Proto.Error_reply { pass; what; injected = false }

let handle_env cfg ~ask req =
  try
    match req with
    | Proto.Adapt { prog; scale; pipeline; tenant = _ } ->
      let config = config_of_pipeline pipeline in
      let prog = compile_ref prog scale in
      let result, status, profile, tuning = adapted_for cfg.cache ~config prog in
      if String.equal status "hit" then T.count "server.cache_hit" 1;
      let artifacts =
        artifacts_of cfg.cache ~config ~status ~ask ~tuning prog profile
      in
      ( Proto.Adapted
          {
            report =
              Format.asprintf "%a@." Ssp.Report.pp result.Ssp.Adapt.report;
            asm = Format.asprintf "%a@." Ssp_ir.Asm.print result.Ssp.Adapt.prog;
            cache = status;
          },
        artifacts )
    | Proto.Sim { prog; scale; pipeline; ssp; tenant = _ } ->
      let config = config_of_pipeline pipeline in
      let prog = compile_ref prog scale in
      let prog =
        if ssp then
          let result, _, _, _ = adapted_for cfg.cache ~config prog in
          result.Ssp.Adapt.prog
        else prog
      in
      let stats =
        match config.Ssp_machine.Config.pipeline with
        | Ssp_machine.Config.In_order -> Ssp_sim.Inorder.run config prog
        | Ssp_machine.Config.Out_of_order -> Ssp_sim.Ooo.run config prog
      in
      (Proto.Simmed { stats = Format.asprintf "%a@." Ssp_sim.Stats.pp stats }, [])
    | Proto.Feedback { prog = _; scale = _; pipeline = _; tenant = _; blob }
      -> (
      (* Attribution upload. The sealed blob carries its own workload
         identity (the request's copy exists for router affinity); a
         blob of any other kind — or one that fails the envelope — is a
         structured error, never a crash. *)
      match Store.blob_kind blob with
      | None -> (plain_error "feedback" "blob failed its envelope check", [])
      | Some k when k <> Store.kind_feedback_report ->
        ( plain_error "feedback"
            (Printf.sprintf "expected a %s blob, got %s"
               (Store.kind_name Store.kind_feedback_report)
               (Store.kind_name k)),
          [] )
      | Some _ -> (
        let rep = Feedback.decode_report blob in
        T.count "server.feedback.reports" 1;
        match cfg.cache with
        | None ->
          (* Cache-off deployment: nothing to persist or tune against;
             acknowledge so fire-and-forget uploaders stay happy. *)
          (Proto.Ok_reply, [])
        | Some cache ->
          let config = config_of_pipeline rep.Feedback.fr_pipeline in
          let prog =
            Feedback.compile_id rep.Feedback.fr_prog
              ~scale:rep.Feedback.fr_scale
          in
          Store.Cache.put cache (Feedback.report_store_key blob) blob;
          let profile, _ = Store.cached_profile ~cache ~config prog in
          let knobs = Ssp.Adapt.default_knobs in
          let key = Feedback.aggregate_key ~config ~knobs prog profile in
          Mutex.protect feedback_mu (fun () ->
              let live =
                match
                  Store.Cache.get cache key
                    ~decode:Feedback.decode_aggregate
                with
                | Some a -> a
                | None -> Feedback.empty_aggregate
              in
              let was_stale = live.Feedback.ag_stale in
              let live = Feedback.ingest live rep in
              if live.Feedback.ag_stale > was_stale then
                T.count "server.feedback.stale" 1;
              Store.Cache.put cache key (Feedback.encode_aggregate live);
              feedback_last_report_s := live.Feedback.ag_last_report_s;
              if
                cfg.tune
                && live.Feedback.ag_reports >= Feedback.default_min_reports
              then begin
                let reports =
                  Feedback.reports_in_store cache
                  |> List.filter_map (fun (_, r) ->
                         if
                           r.Feedback.fr_prog = rep.Feedback.fr_prog
                           && r.Feedback.fr_scale = rep.Feedback.fr_scale
                           && String.equal r.Feedback.fr_pipeline
                                rep.Feedback.fr_pipeline
                         then Some r
                         else None)
                in
                match
                  Feedback.tune_reports ~cache ~config prog profile reports
                with
                | Some t ->
                  T.count "server.feedback.tuned" 1;
                  incr feedback_rounds;
                  if t.Feedback.td_aggregate.Feedback.ag_version
                     > !feedback_version_max
                  then
                    feedback_version_max :=
                      t.Feedback.td_aggregate.Feedback.ag_version
                | None -> ()
              end);
          (Proto.Ok_reply, [])))
    | Proto.Stats | Proto.Shutdown | Proto.Stats_snapshot | Proto.Put_blob _
    | Proto.Ping ->
      (* Control requests are answered inline by the loop. *)
      (plain_error "server" "control request routed to a worker", [])
  with
  | Ssp_ir.Error.Error e -> (error_reply e, [])
  | Ssp_minic.Frontend.Error msg -> (plain_error "frontend" msg, [])
  | Ssp_ir.Asm.Error (msg, line) ->
    (plain_error "asm" (Printf.sprintf "%s (line %d)" msg line), [])
  | Failure msg | Invalid_argument msg -> (plain_error "server" msg, [])
  | Stack_overflow -> (plain_error "server" "stack overflow", [])
  | e -> (plain_error "server" (Printexc.to_string e), [])

let handle cfg req = fst (handle_env cfg ~ask:Proto.artifacts_none req)
let _ = handle

(* Replica-write keys index the filesystem; only the digest shape the
   cache itself mints is allowed through. *)
let valid_blob_key key =
  let n = String.length key in
  n > 0 && n <= 64
  && String.for_all
       (fun ch -> (ch >= '0' && ch <= '9') || (ch >= 'a' && ch <= 'f'))
       key

(* ---- connection state ---- *)

type conn = {
  fd : Unix.file_descr;  (** non-blocking *)
  inbuf : Buffer.t;  (** bytes received, not yet framed *)
  mutable inpos : int;  (** consumed prefix of [inbuf] *)
  mutable out : string;  (** encoded replies the socket has not taken *)
  mutable outpos : int;  (** flushed prefix of [out] *)
  mutable last : float;  (** last activity, for stalled-peer timeouts *)
  mutable closing : bool;  (** stop reading; close once [out] drains *)
  mutable dead : bool;
      (** fd closed; queued requests must not reply into a recycled fd *)
}

let in_pending c = Buffer.length c.inbuf - c.inpos
let out_pending c = String.length c.out - c.outpos

(* Greedily split complete frames off [c.inbuf]. Chunks accumulate in
   the buffer and only complete frames are materialized, so reassembling
   a frame that arrives in N reads costs O(frame), not O(N x frame).
   Returns the payloads plus a protocol error if the next frame declares
   an illegal length. *)
let pop_frames max_frame c =
  let frames = ref [] in
  let err = ref None in
  let continue = ref true in
  while !continue do
    let avail = in_pending c in
    if avail < 4 then continue := false
    else begin
      let n = Int32.to_int (String.get_int32_be (Buffer.sub c.inbuf c.inpos 4) 0) in
      if n < 0 || n > max_frame then begin
        err :=
          Some (Printf.sprintf "frame of %d bytes exceeds limit %d" n max_frame);
        continue := false
      end
      else if avail < 4 + n then continue := false
      else begin
        frames := Buffer.sub c.inbuf (c.inpos + 4) n :: !frames;
        c.inpos <- c.inpos + 4 + n
      end
    end
  done;
  (* Reclaim the consumed prefix: free when fully drained, compact when
     the dead prefix dominates a large buffer. *)
  if c.inpos > 0 then
    if c.inpos = Buffer.length c.inbuf then begin
      Buffer.clear c.inbuf;
      c.inpos <- 0
    end
    else if c.inpos > 65536 && c.inpos > Buffer.length c.inbuf / 2 then begin
      let rest = Buffer.sub c.inbuf c.inpos (in_pending c) in
      Buffer.clear c.inbuf;
      Buffer.add_string c.inbuf rest;
      c.inpos <- 0
    end;
  (List.rev !frames, !err)

(* Push as much of [c.out] as the (non-blocking) socket will take right
   now. A full socket buffer parks the rest for select's write set; a
   dead peer marks the connection closing. Never blocks, never raises. *)
let flush_out c =
  (try
     while out_pending c > 0 do
       let w = Unix.write_substring c.fd c.out c.outpos (out_pending c) in
       if w = 0 then raise Exit;
       c.outpos <- c.outpos + w;
       c.last <- Unix.gettimeofday ()
     done
   with
  | Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _)
  | Exit ->
    ()
  | Unix.Unix_error _ ->
    c.outpos <- 0;
    c.out <- "";
    c.closing <- true);
  if out_pending c = 0 then begin
    c.out <- "";
    c.outpos <- 0
  end

let serve ?ready cfg =
  (match Sys.os_type with
  | "Unix" -> Sys.set_signal Sys.sigpipe Sys.Signal_ignore
  | _ -> ());
  if cfg.socket = None && cfg.tcp = None then
    Ssp_ir.Error.raise_error ~pass:"server"
      "serve needs a unix socket, a TCP endpoint, or both";
  (* Unix-domain listener (optional). *)
  let unix_fd =
    match cfg.socket with
    | None -> None
    | Some path ->
      (try Unix.unlink path with Unix.Unix_error _ -> ());
      let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
      Unix.bind fd (Unix.ADDR_UNIX path);
      Unix.listen fd 16;
      Some fd
  in
  (* TCP listener (optional) alongside it: same framing, same protocol.
     Port 0 binds an ephemeral port; [ready] reports the bound one. *)
  let tcp_fd, tcp_port =
    match cfg.tcp with
    | None -> (None, None)
    | Some (host, port) -> (
      let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
      (try
         Unix.setsockopt fd Unix.SO_REUSEADDR true;
         Unix.bind fd (Unix.ADDR_INET (resolve_host host, port));
         Unix.listen fd 64
       with e ->
         (try Unix.close fd with Unix.Unix_error _ -> ());
         (match unix_fd with
         | Some u -> ( try Unix.close u with Unix.Unix_error _ -> ())
         | None -> ());
         raise e);
      match Unix.getsockname fd with
      | Unix.ADDR_INET (_, p) -> (Some fd, Some p)
      | _ -> (Some fd, Some port))
  in
  let listeners = List.filter_map Fun.id [ unix_fd; tcp_fd ] in
  (* How this shard names itself in trace hops and snapshots — the TCP
     endpoint when there is one (what the router calls it), else the
     socket path. *)
  let node_name =
    match (cfg.tcp, tcp_port) with
    | Some (host, _), Some p -> host ^ ":" ^ string_of_int p
    | _ -> ( match cfg.socket with Some path -> path | None -> "server")
  in
  (match ready with Some f -> f ~tcp_port | None -> ());
  let pool = Ssp_parallel.Pool.create ~jobs:(max 1 cfg.jobs) in
  let conns : (Unix.file_descr, conn) Hashtbl.t = Hashtbl.create 8 in
  let adm : (conn * Proto.request * Proto.req_env * float) Admission.t =
    Admission.create ()
  in
  let running = ref true in
  let depth_series = T.series "server.queue_depth" in
  let batch_no = ref 0 in
  let close_conn c =
    Hashtbl.remove conns c.fd;
    c.dead <- true;
    try Unix.close c.fd with Unix.Unix_error _ -> ()
  in
  (* Queue a reply and opportunistically flush. Writes are non-blocking:
     a peer that stops draining parks its bytes in [c.out] (drained via
     select's write set, dropped after the timeout) — it can lose its
     own connection, but never stall the loop. *)
  let send ?(hops = []) ?(artifacts = []) c resp =
    if c.dead then ()
    else
      match Proto.frame (Proto.encode_response ~hops ~artifacts resp) with
      | framed ->
      if out_pending c = 0 then begin
        c.out <- framed;
        c.outpos <- 0
      end
      else begin
        c.out <- String.sub c.out c.outpos (out_pending c) ^ framed;
        c.outpos <- 0
      end;
      flush_out c
    | exception _ -> c.closing <- true
  in
  let chunk = Bytes.create 65536 in
  let finally () =
    (* Best-effort drain of queued replies (notably Shutdown's ack)
       before the fds go away; bounded, so a dead peer can't hold up
       exit. *)
    let deadline = Unix.gettimeofday () +. 2.0 in
    let rec drain () =
      let waiting =
        Hashtbl.fold
          (fun fd c acc -> if out_pending c > 0 then (fd, c) :: acc else acc)
          conns []
      in
      if waiting <> [] && Unix.gettimeofday () < deadline then begin
        (match Unix.select [] (List.map fst waiting) [] 0.2 with
        | _, ws, _ ->
          List.iter (fun (fd, c) -> if List.mem fd ws then flush_out c) waiting
        | exception Unix.Unix_error _ -> ());
        drain ()
      end
    in
    drain ();
    Ssp_parallel.Pool.shutdown pool;
    Hashtbl.iter (fun _ c -> try Unix.close c.fd with Unix.Unix_error _ -> ())
      conns;
    Hashtbl.reset conns;
    List.iter
      (fun fd -> try Unix.close fd with Unix.Unix_error _ -> ())
      listeners;
    match cfg.socket with
    | Some path -> ( try Unix.unlink path with Unix.Unix_error _ -> ())
    | None -> ()
  in
  Fun.protect ~finally @@ fun () ->
  while !running do
    let rfds =
      listeners
      @ Hashtbl.fold
          (fun fd c acc -> if c.closing then acc else fd :: acc)
          conns []
    in
    let wfds =
      Hashtbl.fold
        (fun fd c acc -> if out_pending c > 0 then fd :: acc else acc)
        conns []
    in
    (* With admitted work still queued, poll instead of parking: the
       next batch should start as soon as this round's replies are
       queued, not a select-tick later. *)
    let tick = if Admission.backlog adm > 0 then 0.0 else 1.0 in
    let readable, writable =
      match Unix.select rfds wfds [] tick with
      | r, w, _ -> (r, w)
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> ([], [])
    in
    List.iter
      (fun fd ->
        match Hashtbl.find_opt conns fd with
        | Some c -> flush_out c
        | None -> ())
      writable;
    let now = Unix.gettimeofday () in
    let batch = ref [] in
    List.iter
      (fun fd ->
        if List.memq fd listeners then begin
          match Unix.accept fd with
          | afd, _ ->
            Unix.set_nonblock afd;
            (* Warm hits are small request/reply exchanges; Nagle would
               serialize them against delayed ACKs on the TCP path. *)
            if Some fd = tcp_fd then
              (try Unix.setsockopt afd Unix.TCP_NODELAY true
               with Unix.Unix_error _ -> ());
            Hashtbl.replace conns afd
              {
                fd = afd;
                inbuf = Buffer.create 256;
                inpos = 0;
                out = "";
                outpos = 0;
                last = now;
                closing = false;
                dead = false;
              }
          | exception Unix.Unix_error _ -> ()
        end
        else
          match Hashtbl.find_opt conns fd with
          | None -> ()
          | Some c when c.closing -> ()
          | Some c -> (
            match Unix.read fd chunk 0 (Bytes.length chunk) with
            | 0 ->
              (* EOF. Any half-received frame is a mid-request disconnect;
                 there is nobody left to send an error to. *)
              close_conn c
            | k ->
              c.last <- now;
              Buffer.add_subbytes c.inbuf chunk 0 k;
              let frames, err = pop_frames cfg.max_frame c in
              List.iter
                (fun payload ->
                  (* Anything a hostile payload makes the decoder raise —
                     structured or not — is an error reply, never a dead
                     connection or a dead loop. *)
                  match Proto.decode_request_env payload with
                  | req, env -> batch := (c, req, env, now) :: !batch
                  | exception Ssp_ir.Error.Error e ->
                    send c (error_reply e);
                    c.closing <- true
                  | exception e ->
                    send c (plain_error "proto" (Printexc.to_string e));
                    c.closing <- true)
                frames;
              (match err with
              | Some what ->
                send c (plain_error "proto" what);
                c.closing <- true
              | None -> ())
            | exception
                Unix.Unix_error
                  ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _) ->
              ()
            | exception Unix.Unix_error _ -> close_conn c))
      readable;
    (* Partial frames that stopped growing get a structured timeout; a
       closing peer that stops draining its reply forfeits it. *)
    Hashtbl.iter
      (fun _ c ->
        if
          (not c.closing)
          && in_pending c > 0
          && now -. c.last > cfg.timeout_s
        then begin
          send c (plain_error "server" "request timed out (incomplete frame)");
          c.closing <- true
        end;
        if c.closing && out_pending c > 0 && now -. c.last > cfg.timeout_s
        then begin
          c.out <- "";
          c.outpos <- 0
        end)
      conns;
    (* Control requests are cheap and answered inline; work requests go
       through admission: reject with retry-after when the queue is
       saturated, otherwise queue under the declaring tenant. *)
    List.iter
      (fun (c, req, env, t0) ->
        match req with
        | Proto.Stats ->
          T.count "server.requests" 1;
          send c
            (Proto.Stats_reply
               { summary = Format.asprintf "%a" T.pp_summary (T.report ()) })
        | Proto.Stats_snapshot ->
          T.count "server.requests" 1;
          let gauges =
            ("server.queue_depth", float_of_int (Admission.backlog adm))
            :: ( "feedback.last_report_age_s",
                 if !feedback_last_report_s > 0. then
                   now -. !feedback_last_report_s
                 else -1. )
            :: ("feedback.version_max", float_of_int !feedback_version_max)
            :: ("feedback.rounds", float_of_int !feedback_rounds)
            ::
            (match cfg.cache with
            | None -> []
            | Some cache ->
              [
                ( "store.entries",
                  float_of_int (Store.Cache.entry_count cache) );
                ("store.bytes", float_of_int (Store.Cache.size_bytes cache));
                ( "store.evictions",
                  float_of_int (Store.Cache.evictions cache) );
              ])
          in
          let snap = Snapshot.capture ~node:node_name ~gauges () in
          send c (Proto.Snapshot_reply { snapshot = Snapshot.encode snap })
        | Proto.Shutdown ->
          T.count "server.requests" 1;
          send c Proto.Ok_reply;
          running := false
        | Proto.Ping ->
          T.count "server.requests" 1;
          send c Proto.Ok_reply
        | Proto.Put_blob { key; blob } -> (
          (* Replica write-through from the router: cheap disk I/O,
             answered inline like the other control requests so it can
             never queue behind (or be shed by) the work plane. The
             blob's sealed envelope and the key's digest shape are both
             verified before anything touches the cache — a replica can
             only ever store bytes that decode clean. *)
          T.count "server.requests" 1;
          match cfg.cache with
          | None ->
            send c (plain_error "server" "replica write without a cache")
          | Some cache ->
            if not (valid_blob_key key) then begin
              T.count "server.replica.rejected" 1;
              send c (plain_error "store" "replica key is not a cache digest")
            end
            else if not (Store.blob_ok blob) then begin
              T.count "server.replica.rejected" 1;
              send c
                (plain_error "store" "replica blob failed integrity check")
            end
            else begin
              Store.Cache.put cache key blob;
              T.count "server.replica.puts" 1;
              send c Proto.Ok_reply
            end)
        | Proto.Adapt _ | Proto.Sim _ | Proto.Feedback _ ->
          let tenant = Proto.tenant_of req in
          let d = env.Proto.re_deadline_ms in
          (* Admission shed: a budget that arrives expired (or reads as
             expired under injected stamp skew) is refused before it
             can burn queue slots or compute — the structured reply
             tells the client where its time went. *)
          let dl_expired = d < 0. || (d <> 0. && F.fire deadline_skew) in
          if dl_expired then begin
            T.count "server.deadline.shed_admission" 1;
            T.count ("server.tenant." ^ tenant ^ ".deadline_shed") 1;
            send c
              (Proto.Deadline_exceeded
                 { stage = "admission"; budget_ms = d; elapsed_ms = 0. })
          end
          else if Admission.backlog adm >= cfg.max_queue then begin
            T.count "server.rejected" 1;
            T.count ("server.tenant." ^ tenant ^ ".rejected") 1;
            send c (Proto.Busy_reply { retry_after_s = cfg.retry_after_s })
          end
          else begin
            T.count ("server.tenant." ^ tenant ^ ".requests") 1;
            if d > 0. then T.record_hist "server.deadline.slack_ms" d;
            Admission.enqueue adm ~tenant (c, req, env, t0)
          end)
      (List.rev !batch);
    (* On shutdown, every still-queued request gets a structured error
       instead of silence. *)
    if not !running then
      List.iter
        (fun (_, (c, _, _, _)) ->
          send c (plain_error "server" "server shutting down"))
        (Admission.drain adm);
    (* One bounded, tenant-fair batch across the pool per round. *)
    let work = Admission.select adm ~max:cfg.max_batch in
    if work <> [] then begin
      incr batch_no;
      T.count "server.batches" 1;
      T.sample depth_series ~x:(float_of_int !batch_no)
        ~y:(float_of_int (List.length work + Admission.backlog adm));
      let round_t0 = Unix.gettimeofday () in
      let replies =
        Ssp_parallel.Pool.map pool
          (fun (tenant, (c, req, env, t0)) ->
            let trace = env.Proto.re_trace in
            (* With a deadline in play the end-to-end budget *is* the
               queue/compute bound; the legacy per-hop [timeout_s] only
               governs budget-less requests. *)
            let deadline_at =
              if env.Proto.re_deadline_ms > 0. then
                Some (t0 +. (env.Proto.re_deadline_ms /. 1000.))
              else None
            in
            let deadline_reply stage =
              T.count ("server.deadline.shed_" ^ stage) 1;
              ( Proto.Deadline_exceeded
                  {
                    stage;
                    budget_ms = env.Proto.re_deadline_ms;
                    elapsed_ms = (Unix.gettimeofday () -. t0) *. 1000.;
                  },
                [],
                [] )
            in
            if c.dead then (plain_error "server" "client went away", [], [])
            else if
              match deadline_at with
              | Some dl -> Unix.gettimeofday () > dl
              | None -> false
            then
              (* Re-check before compute: the budget died in the queue;
                 shedding here is what keeps doomed work off the pool. *)
              deadline_reply "compute"
            else if
              deadline_at = None && Unix.gettimeofday () -. t0 > cfg.timeout_s
            then (plain_error "server" "request timed out in queue", [], [])
            else begin
              (* Timings are taken whenever the request is traced, even
                 with local telemetry off: the client paid for the trace
                 and gets real hop numbers either way. *)
              let timed = !T.enabled || trace <> None in
              let ts = if timed then Unix.gettimeofday () else 0. in
              let queue_ms = if timed then (ts -. t0) *. 1000. else 0. in
              if timed then begin
                T.record_hist "server.queue_wait_ms" queue_ms;
                ignore (Store.take_lookup_ms ())
              end;
              let run () =
                T.with_span "server.request" (fun () ->
                    handle_env cfg ~ask:env.Proto.re_artifacts req)
              in
              let (resp, artifacts), spans =
                match trace with
                | Some tc ->
                  T.count ("trace." ^ tc.Proto.trace_id) 1;
                  T.capture_spans run
                | None -> (run (), [])
              in
              let service_ms =
                if timed then (Unix.gettimeofday () -. ts) *. 1000. else 0.
              in
              let lookup_ms = if timed then Store.take_lookup_ms () else 0. in
              if timed then begin
                T.record_hist "server.service_ms" service_ms;
                T.record_hist
                  ("server.tenant." ^ tenant ^ ".service_ms")
                  service_ms
              end;
              (* Re-check before serialize: the compute is sunk cost,
                 but shipping a reply (and its artifacts) to a client
                 that stopped waiting only burns wire and framing. *)
              if
                match deadline_at with
                | Some dl -> Unix.gettimeofday () > dl
                | None -> false
              then deadline_reply "serialize"
              else
              match trace with
              | None -> (resp, [], artifacts)
              | Some _ ->
                (* The reply is encoded once more when sent; measuring a
                   throwaway encode here is the only way to get the
                   serialize cost INTO the hop list it reports. *)
                let tser = Unix.gettimeofday () in
                ignore (Proto.encode_response resp);
                let serialize_ms = (Unix.gettimeofday () -. tser) *. 1000. in
                let hop stage ms =
                  { Proto.hop_node = node_name; hop_stage = stage; hop_ms = ms }
                in
                (* Pass/sim spans ride along as nested detail (stage
                   "span:<path>"); the disjoint stages queue / compute /
                   serialize are the ones that sum to this shard's share
                   of the client-observed latency. *)
                let rec flat prefix acc (sp : T.span) =
                  if List.length acc >= 256 then acc
                  else begin
                    let path =
                      if prefix = "" then sp.T.sp_name
                      else prefix ^ "/" ^ sp.T.sp_name
                    in
                    let acc = hop ("span:" ^ path) sp.T.ms :: acc in
                    List.fold_left (flat path) acc sp.T.children
                  end
                in
                let span_hops = List.rev (List.fold_left (flat "") [] spans) in
                let hops =
                  hop "queue" queue_ms
                  :: hop "store.lookup" lookup_ms
                  :: hop "compute" (Float.max 0. (service_ms -. lookup_ms))
                  :: hop "serialize" serialize_ms
                  :: span_hops
                in
                (resp, hops, artifacts)
            end)
          work
      in
      List.iter2
        (fun (tenant, (c, _, _, _)) (resp, hops, artifacts) ->
          T.count "server.requests" 1;
          (* A worker-stage deadline shed is an answered request, but
             not a served one: the per-tenant split must let an operator
             tell useful work from doomed work. *)
          (match resp with
          | Proto.Deadline_exceeded _ ->
            T.count ("server.tenant." ^ tenant ^ ".deadline_shed") 1
          | _ -> T.count ("server.tenant." ^ tenant ^ ".served") 1);
          send ~hops ~artifacts c resp)
        work replies;
      T.record_hist "server.round_ms"
        ((Unix.gettimeofday () -. round_t0) *. 1000.)
    end;
    (* Sweep closing connections whose replies have drained (outside any
       Hashtbl.iter). Undrained ones stay for select's write set until
       they flush or time out above. *)
    let doomed =
      Hashtbl.fold
        (fun _ c acc ->
          if c.closing && out_pending c = 0 then c :: acc else acc)
        conns []
    in
    List.iter close_conn doomed
  done
