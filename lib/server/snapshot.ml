(* Versioned binary telemetry snapshot: what a shard hands back for a
   Stats_snapshot request, and what the router merges across shards.
   Lives here (not in lib/telemetry) because the codec reuses the
   store's Bin primitives and telemetry must stay dependency-free. *)

module T = Ssp_telemetry.Telemetry
module Bin = Ssp_store.Store.Bin

let magic = "SSPS"
let version = 1
let malformed what = Ssp_ir.Error.raise_error ~pass:"snapshot" what

type t = {
  node : string;
  counters : (string * int) list;
  gauges : (string * float) list;
  dists : (string * T.dist_summary) list;
  hists : (string * T.hist_summary) list;
  events_dropped : int;
}

let capture ?(node = "") ?(gauges = []) () =
  let r = T.report () in
  {
    node;
    counters = r.T.r_counters;
    gauges = List.sort (fun (a, _) (b, _) -> String.compare a b) gauges;
    dists = r.T.r_dists;
    hists = r.T.r_hists;
    events_dropped = T.events_dropped_count ();
  }

(* ---- codec ---- *)

let max_entries = 1 lsl 20

let w_list b xs emit =
  let n = List.length xs in
  Bin.w_int b n;
  List.iter (emit b) xs

let r_list r what read =
  let n = Bin.r_int r in
  if n < 0 || n > max_entries then
    malformed (Printf.sprintf "implausible %s count %d" what n);
  List.init n (fun _ -> read r)

let encode t =
  let b = Bin.writer () in
  Bin.w_str b magic;
  Bin.w_u8 b version;
  Bin.w_str b t.node;
  w_list b t.counters (fun b (name, v) ->
      Bin.w_str b name;
      Bin.w_int b v);
  w_list b t.gauges (fun b (name, v) ->
      Bin.w_str b name;
      Bin.w_float b v);
  w_list b t.dists (fun b (name, d) ->
      Bin.w_str b name;
      Bin.w_int b d.T.ds_n;
      Bin.w_float b d.T.ds_sum;
      Bin.w_float b d.T.ds_min;
      Bin.w_float b d.T.ds_max;
      Bin.w_float b d.T.ds_sumsq);
  w_list b t.hists (fun b (name, h) ->
      Bin.w_str b name;
      Bin.w_int b h.T.hs_n;
      Bin.w_float b h.T.hs_sum;
      Bin.w_float b h.T.hs_min;
      Bin.w_float b h.T.hs_max;
      Bin.w_int b (Array.length h.T.hs_counts);
      Array.iter (Bin.w_int b) h.T.hs_counts);
  Bin.w_int b t.events_dropped;
  Bin.contents b

let decode payload =
  let r = Bin.reader payload in
  let m = Bin.r_str r in
  if not (String.equal m magic) then malformed "bad snapshot magic";
  let v = Bin.r_u8 r in
  if v <> version then
    malformed (Printf.sprintf "snapshot version %d (want %d)" v version);
  let node = Bin.r_str r in
  let counters =
    r_list r "counter" (fun r ->
        let name = Bin.r_str r in
        (name, Bin.r_int r))
  in
  let gauges =
    r_list r "gauge" (fun r ->
        let name = Bin.r_str r in
        (name, Bin.r_float r))
  in
  let dists =
    r_list r "dist" (fun r ->
        let name = Bin.r_str r in
        let ds_n = Bin.r_int r in
        let ds_sum = Bin.r_float r in
        let ds_min = Bin.r_float r in
        let ds_max = Bin.r_float r in
        let ds_sumsq = Bin.r_float r in
        let ds_mean = if ds_n = 0 then 0. else ds_sum /. float_of_int ds_n in
        let ds_stddev =
          if ds_n = 0 then 0.
          else
            sqrt
              (Float.max 0.
                 ((ds_sumsq /. float_of_int ds_n) -. (ds_mean *. ds_mean)))
        in
        (name, { T.ds_n; ds_sum; ds_min; ds_max; ds_mean; ds_stddev; ds_sumsq }))
  in
  let hists =
    r_list r "hist" (fun r ->
        let name = Bin.r_str r in
        let hs_n = Bin.r_int r in
        let hs_sum = Bin.r_float r in
        let hs_min = Bin.r_float r in
        let hs_max = Bin.r_float r in
        let nbuckets = Bin.r_int r in
        if nbuckets <> T.hist_bucket_count then
          malformed
            (Printf.sprintf "histogram layout %d buckets (want %d)" nbuckets
               T.hist_bucket_count);
        let hs_counts = Array.init nbuckets (fun _ -> Bin.r_int r) in
        (name, { T.hs_n; hs_sum; hs_min; hs_max; hs_counts }))
  in
  let events_dropped = Bin.r_int r in
  Bin.expect_end r;
  { node; counters; gauges; dists; hists; events_dropped }

(* ---- cluster merge ---- *)

(* Backpressure / integrity counters stay attributed: knowing WHICH
   shard evicted, rejected or saw corrupt entries is the point of
   collecting them. They contribute to the cluster-wide sum too, under
   their plain name. *)
let per_shard_counter name =
  String.equal name "store.evict"
  || String.equal name "store.corrupt"
  || String.equal name "server.rejected"
  ||
  (String.length name > 14
  && String.equal (String.sub name 0 14) "server.tenant."
  && String.length name > 9
  && String.equal (String.sub name (String.length name - 9) 9) ".rejected")

let shard_key node name = "shard." ^ node ^ "." ^ name

let merge ?(node = "cluster") snaps =
  let counters = Hashtbl.create 64 in
  let gauges = Hashtbl.create 16 in
  let dists = Hashtbl.create 32 in
  let hists = Hashtbl.create 32 in
  let dropped = ref 0 in
  let bump tbl merge_v name v =
    match Hashtbl.find_opt tbl name with
    | None -> Hashtbl.replace tbl name v
    | Some prev -> Hashtbl.replace tbl name (merge_v prev v)
  in
  List.iter
    (fun s ->
      dropped := !dropped + s.events_dropped;
      List.iter
        (fun (name, v) ->
          bump counters ( + ) name v;
          if per_shard_counter name && s.node <> "" then
            bump counters ( + ) (shard_key s.node name) v)
        s.counters;
      List.iter
        (fun (name, v) ->
          (* Gauges the router already attributed (shard.<node>.up) keep
             their key; prefixing again would nest "shard." twice. *)
          let key =
            if
              s.node = ""
              || String.length name >= 6
                 && String.equal (String.sub name 0 6) "shard."
            then name
            else shard_key s.node name
          in
          bump gauges (fun _ v -> v) key v)
        s.gauges;
      List.iter (fun (name, d) -> bump dists T.merge_dist_summary name d) s.dists;
      List.iter (fun (name, h) -> bump hists T.merge_hist_summary name h) s.hists)
    snaps;
  let sorted tbl =
    Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl []
    |> List.sort (fun (a, _) (b, _) -> String.compare a b)
  in
  {
    node;
    counters = sorted counters;
    gauges = sorted gauges;
    dists = sorted dists;
    hists = sorted hists;
    events_dropped = !dropped;
  }

(* ---- rendering ---- *)

let pp ppf t =
  Format.fprintf ppf "@[<v>";
  Format.fprintf ppf "node: %s@," (if t.node = "" then "-" else t.node);
  if t.counters <> [] then begin
    Format.fprintf ppf "counters:@,";
    List.iter
      (fun (name, v) -> Format.fprintf ppf "  %-44s %12d@," name v)
      t.counters
  end;
  if t.gauges <> [] then begin
    Format.fprintf ppf "gauges:@,";
    List.iter
      (fun (name, v) -> Format.fprintf ppf "  %-44s %12.2f@," name v)
      t.gauges
  end;
  if t.dists <> [] then begin
    Format.fprintf ppf "distributions:@,";
    Format.fprintf ppf "  %-34s %8s %10s %10s %10s@," "" "n" "mean" "min" "max";
    List.iter
      (fun (name, d) ->
        Format.fprintf ppf "  %-34s %8d %10.2f %10.2f %10.2f@," name d.T.ds_n
          d.T.ds_mean d.T.ds_min d.T.ds_max)
      t.dists
  end;
  if t.hists <> [] then begin
    Format.fprintf ppf "histograms (ms):@,";
    Format.fprintf ppf "  %-34s %8s %9s %9s %9s %9s %9s@," "" "n" "p50" "p90"
      "p99" "p999" "max";
    List.iter
      (fun (name, h) ->
        Format.fprintf ppf "  %-34s %8d %9.3f %9.3f %9.3f %9.3f %9.3f@," name
          h.T.hs_n
          (T.hist_quantile h 0.5)
          (T.hist_quantile h 0.9)
          (T.hist_quantile h 0.99)
          (T.hist_quantile h 0.999)
          h.T.hs_max)
      t.hists
  end;
  if t.events_dropped > 0 then
    Format.fprintf ppf "events dropped: %d@," t.events_dropped;
  Format.fprintf ppf "@]"

let buf_json_str b s =
  Buffer.add_char b '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.add_char b '"'

let buf_json_float b v =
  if Float.is_integer v && Float.abs v < 1e15 then
    Buffer.add_string b (Printf.sprintf "%.1f" v)
  else if Float.is_finite v then Buffer.add_string b (Printf.sprintf "%.6g" v)
  else Buffer.add_string b "null"

let to_json t =
  let b = Buffer.create 4096 in
  let fields sep xs emit =
    List.iteri
      (fun i x ->
        if i > 0 then Buffer.add_char b sep;
        emit x)
      xs
  in
  Buffer.add_string b "{\"node\":";
  buf_json_str b t.node;
  Buffer.add_string b ",\"counters\":{";
  fields ',' t.counters (fun (name, v) ->
      buf_json_str b name;
      Buffer.add_char b ':';
      Buffer.add_string b (string_of_int v));
  Buffer.add_string b "},\"gauges\":{";
  fields ',' t.gauges (fun (name, v) ->
      buf_json_str b name;
      Buffer.add_char b ':';
      buf_json_float b v);
  Buffer.add_string b "},\"dists\":{";
  fields ',' t.dists (fun (name, d) ->
      buf_json_str b name;
      Buffer.add_string b ":{\"n\":";
      Buffer.add_string b (string_of_int d.T.ds_n);
      Buffer.add_string b ",\"mean\":";
      buf_json_float b d.T.ds_mean;
      Buffer.add_string b ",\"min\":";
      buf_json_float b d.T.ds_min;
      Buffer.add_string b ",\"max\":";
      buf_json_float b d.T.ds_max;
      Buffer.add_string b ",\"stddev\":";
      buf_json_float b d.T.ds_stddev;
      Buffer.add_char b '}');
  Buffer.add_string b "},\"hists\":{";
  fields ',' t.hists (fun (name, h) ->
      buf_json_str b name;
      Buffer.add_string b ":{\"n\":";
      Buffer.add_string b (string_of_int h.T.hs_n);
      Buffer.add_string b ",\"mean\":";
      buf_json_float b (T.hist_mean h);
      List.iter
        (fun (label, q) ->
          Buffer.add_string b ",\"";
          Buffer.add_string b label;
          Buffer.add_string b "\":";
          buf_json_float b (T.hist_quantile h q))
        [ ("p50", 0.5); ("p90", 0.9); ("p99", 0.99); ("p999", 0.999) ];
      Buffer.add_string b ",\"min\":";
      buf_json_float b h.T.hs_min;
      Buffer.add_string b ",\"max\":";
      buf_json_float b h.T.hs_max;
      Buffer.add_char b '}');
  Buffer.add_string b "},\"events_dropped\":";
  Buffer.add_string b (string_of_int t.events_dropped);
  Buffer.add_char b '}';
  Buffer.contents b
