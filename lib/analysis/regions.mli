(** The region graph: a hierarchical program representation whose nodes are
    procedures and loops, with edges from callers to callees and from outer
    scopes to inner scopes (§3.1.1). Region-based slicing walks it from the
    innermost region containing a delinquent load outward until the slack is
    large enough.

    The paper also lists "loop body" as a region; here a loop and its body
    cover the same block set, and the distinction is carried by the
    precomputation model chosen for the region (basic SP targets the loop
    body, chaining SP the loop). *)

type region =
  | Proc of string
  | Loop of string * int  (** function name, loop id within it *)

type t

val compute : Ssp_ir.Prog.t -> t

val prog : t -> Ssp_ir.Prog.t

val cfg_of : t -> string -> Cfg.t
val loops_of : t -> string -> Loops.t
val depgraph_of : t -> string -> Depgraph.t
(** Whole-function dependence graph, memoized. *)

val reaching_of : t -> string -> Reaching.t

val innermost_at : t -> Ssp_ir.Iref.t -> region
(** Innermost region containing the instruction: its innermost loop, or its
    procedure when it is not inside any loop. *)

val parent : t -> region -> region option
(** Enclosing region within the same function ([None] for a [Proc];
    crossing to callers is the tool's decision, made with profile data). *)

val func_of : region -> string

val blocks_of : t -> region -> int list
(** Block indices the region covers. *)

val in_region : t -> region -> int -> bool
(** O(1) membership of a block in the region, via bitsets precomputed at
    [compute] time (the slicer's hot path; [blocks_of] is O(blocks)). *)

val freeze : t -> unit
(** Force every memoized per-function artifact ([depgraph_of],
    [reaching_of], …). Afterwards the structure is read-only and safe to
    share across domains; the memoizing accessors themselves are not safe
    to race on a cold entry. *)

val loop_of : t -> region -> Loops.loop option

val depth : t -> region -> int
(** Nesting depth within the function: [Proc] = 0, outermost loop = 1, … *)

val pp : Format.formatter -> region -> unit
