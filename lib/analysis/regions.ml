type region = Proc of string | Loop of string * int

type per_func = {
  cfg : Cfg.t;
  loops : Loops.t;
  loop_members : (int, Bytes.t) Hashtbl.t;
      (* loop id -> block-membership bitset ('\001' = in body), built
         eagerly so region-membership tests are O(1) and read-only *)
  mutable dg : Depgraph.t option;
  mutable reach : Reaching.t option;
}

type t = { prog : Ssp_ir.Prog.t; by_func : (string, per_func) Hashtbl.t }

let prog t = t.prog

let compute (prog : Ssp_ir.Prog.t) =
  let by_func = Hashtbl.create 16 in
  List.iter
    (fun (f : Ssp_ir.Prog.func) ->
      let cfg = Cfg.of_func f in
      let dom = Dom.compute cfg.Cfg.graph ~entry:0 in
      let loops = Loops.compute cfg dom in
      let loop_members = Hashtbl.create 8 in
      List.iter
        (fun (l : Loops.loop) ->
          let m = Bytes.make (Cfg.n_blocks cfg) '\000' in
          List.iter (fun b -> Bytes.set m b '\001') l.Loops.body;
          Hashtbl.replace loop_members l.Loops.id m)
        (Loops.all loops);
      Hashtbl.replace by_func f.name
        { cfg; loops; loop_members; dg = None; reach = None })
    (Ssp_ir.Prog.funcs_in_order prog);
  { prog; by_func }

let pf t fn =
  match Hashtbl.find_opt t.by_func fn with
  | Some x -> x
  | None -> invalid_arg (Printf.sprintf "Regions: unknown function %s" fn)

let cfg_of t fn = (pf t fn).cfg
let loops_of t fn = (pf t fn).loops

let depgraph_of t fn =
  let p = pf t fn in
  match p.dg with
  | Some dg -> dg
  | None ->
    let dg = Depgraph.of_func p.cfg in
    p.dg <- Some dg;
    dg

let reaching_of t fn =
  let p = pf t fn in
  match p.reach with
  | Some r -> r
  | None ->
    let r = Reaching.compute p.cfg in
    p.reach <- Some r;
    r

(* Force every lazily memoized per-function artifact. After [freeze] the
   structure is never written again, so it can be shared read-only across
   domains (the parallel adaptation pipeline calls this before fanning
   out; the memoizing accessors above are not thread-safe on a cold
   entry). *)
let freeze t =
  Hashtbl.iter
    (fun fn _ ->
      ignore (depgraph_of t fn);
      ignore (reaching_of t fn))
    t.by_func

let innermost_at t (i : Ssp_ir.Iref.t) =
  let p = pf t i.fn in
  match Loops.innermost_at p.loops i.blk with
  | Some l -> Loop (i.fn, l.Loops.id)
  | None -> Proc i.fn

let parent t = function
  | Proc _ -> None
  | Loop (fn, id) -> (
    let p = pf t fn in
    let l = Loops.find p.loops id in
    match l.Loops.parent with
    | Some pid -> Some (Loop (fn, pid))
    | None -> Some (Proc fn))

let func_of = function Proc fn -> fn | Loop (fn, _) -> fn

let blocks_of t = function
  | Proc fn ->
    let p = pf t fn in
    List.init (Cfg.n_blocks p.cfg) Fun.id
  | Loop (fn, id) ->
    let p = pf t fn in
    (Loops.find p.loops id).Loops.body

let loop_of t = function
  | Proc _ -> None
  | Loop (fn, id) -> Some (Loops.find (pf t fn).loops id)

let in_region t region blk =
  match region with
  | Proc fn -> blk >= 0 && blk < Cfg.n_blocks (pf t fn).cfg
  | Loop (fn, id) ->
    let m = Hashtbl.find (pf t fn).loop_members id in
    blk >= 0 && blk < Bytes.length m && Bytes.get m blk = '\001'

let depth t = function
  | Proc _ -> 0
  | Loop (fn, id) -> (Loops.find (pf t fn).loops id).Loops.depth

let pp ppf = function
  | Proc fn -> Format.fprintf ppf "proc(%s)" fn
  | Loop (fn, id) -> Format.fprintf ppf "loop(%s,%d)" fn id
