(** Consistent-hash ring with virtual nodes.

    Maps string keys to shard names with stable affinity: the placement
    is a pure function of (membership, vnodes) via MD5, so every process
    computes the same map, and membership changes move only the keys
    whose owning arc changed (~1/N per joined or departed shard). Used
    by the router to pin each request key — derived from the same
    program/profile hashes that key the content-addressed store — to the
    shard whose warm cache holds it. *)

type t

val create : ?vnodes:int -> string list -> t
(** [create ~vnodes nodes] builds the ring; [vnodes] (default 128)
    points per node. Duplicate node names are collapsed; node order is
    irrelevant. Raises [Invalid_argument] if [vnodes < 1]. *)

val nodes : t -> string list
(** Current membership, sorted. *)

val vnodes : t -> int
val is_empty : t -> bool

val add : t -> string -> t
val remove : t -> string -> t

val hash_key : string -> int64
(** Position of a key on the 64-bit circle (first 8 bytes of its MD5). *)

val lookup : t -> string -> string option
(** Owning node for a key; [None] on an empty ring. *)

val successors : t -> string -> string list
(** All distinct nodes in ring order starting at the key's owner — the
    stable failover sequence for that key. Head = [lookup]. *)
