(* Consistent-hash ring with virtual nodes.

   Every shard contributes [vnodes] points on a 64-bit circle; a key is
   served by the first point at or clockwise after its own hash. The
   placement depends only on (node names, vnodes) through MD5, so every
   process that builds a ring from the same membership computes the same
   key -> shard map — the property the router, clients and offline tools
   all rely on. Adding or removing one shard moves only the keys whose
   owning arc changed (about 1/N of them); everything else stays put,
   which is what keeps the per-shard warm caches hot across membership
   changes. *)

type t = {
  vnodes : int;
  points : (int64 * string) array; (* sorted ascending, unsigned *)
  nodes : string list; (* sorted, distinct *)
}

(* First 8 bytes of the MD5 as the position on the circle. MD5 is
   overkill cryptographically but it is the digest the store already
   standardizes on, it is seedless (deterministic across processes), and
   its diffusion is more than enough for balance. *)
let hash_key key = String.get_int64_be (Digest.string key) 0
let point_of node i = hash_key (Printf.sprintf "%s\x00vnode:%d" node i)

let compare_points (a, na) (b, nb) =
  match Int64.unsigned_compare a b with
  | 0 -> String.compare na nb
  | c -> c

let create ?(vnodes = 128) nodes =
  if vnodes < 1 then invalid_arg "Ring.create: vnodes must be positive";
  let nodes = List.sort_uniq String.compare nodes in
  let points =
    List.concat_map
      (fun n -> List.init vnodes (fun i -> (point_of n i, n)))
      nodes
    |> Array.of_list
  in
  Array.sort compare_points points;
  { vnodes; points; nodes }

let nodes t = t.nodes
let vnodes t = t.vnodes
let is_empty t = t.nodes = []
let add t node = create ~vnodes:t.vnodes (node :: t.nodes)

let remove t node =
  create ~vnodes:t.vnodes
    (List.filter (fun n -> not (String.equal n node)) t.nodes)

(* Index of the first point at or clockwise after [h] (wrapping). *)
let owner_index t h =
  let n = Array.length t.points in
  let lo = ref 0 and hi = ref n in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    let p, _ = t.points.(mid) in
    if Int64.unsigned_compare p h < 0 then lo := mid + 1 else hi := mid
  done;
  if !lo = n then 0 else !lo

let lookup t key =
  if is_empty t then None
  else
    let _, node = t.points.(owner_index t (hash_key key)) in
    Some node

(* All distinct nodes in ring order starting at the key's owner: the
   failover walk. The first element is [lookup]'s answer; a request that
   cannot reach it retries down this list, so every key has a stable,
   process-independent failover sequence. *)
let successors t key =
  if is_empty t then []
  else begin
    let n = Array.length t.points in
    let start = owner_index t (hash_key key) in
    let seen = Hashtbl.create 8 in
    let out = ref [] in
    let i = ref 0 in
    while !i < n && Hashtbl.length seen < List.length t.nodes do
      let _, node = t.points.((start + !i) mod n) in
      if not (Hashtbl.mem seen node) then begin
        Hashtbl.add seen node ();
        out := node :: !out
      end;
      incr i
    done;
    List.rev !out
  end
