(* The cluster router: a thin process that owns no pipeline state, only
   the consistent-hash ring, the per-shard circuit breakers, and the
   hinted-handoff buffer.

   Each client request is keyed by the identity that also keys the
   shards' content-addressed caches (program x scale x pipeline — the
   cheap, router-computable proxy for hash(program) x hash(profile),
   since profiles are a deterministic function of program and config),
   and forwarded to the key's shard over TCP. A shard that cannot be
   reached, dies mid-reply, or times out trips its breaker and the
   request retries on the ring's next live node — safe, because requests
   are idempotent: any shard computes the same bytes, the failover only
   costs the warm cache. When no shard answers, the client gets a
   structured degraded-mode error naming every attempt — degraded is
   never wrong, and never a hang.

   Replication (factor 2): the primary's reply to an adapt miss carries
   the artifacts it just published, and the router writes them through
   to the ring successor — so killing the primary mid-campaign degrades
   to a *warm* hit on the replica, not a cold recompute. A failover
   reply carries artifacts unconditionally so the router can read-repair
   the primary once it returns; while a replication target is down its
   blobs park in a bounded hinted-handoff buffer, flushed when the
   breaker closes.

   Breakers: a failed shard is quarantined with capped exponential
   backoff and decorrelated jitter (a flapping shard is not hammered in
   lockstep by every router thread), and re-admitted only after a cheap
   Ping probe succeeds — half-open probing risks a probe, never real
   traffic.

   Deadlines: the router spends the request's remaining budget, not its
   own timeout — each shard attempt is stamped (and socket-bounded) with
   what is left, and a budget that runs out mid-failover becomes a
   structured Deadline_exceeded instead of more doomed attempts.

   Busy replies are NOT failed over: admission backpressure means the
   key's home shard is saturated, and spilling its traffic onto
   neighbours would defeat both the fairness accounting and the cache
   affinity. The client honors the retry-after instead.

   Concurrency: one blocking thread per client connection (routing is
   pure I/O; the select-loop machinery of the shards would buy nothing
   here), one prober thread, mutex-guarded breaker/hint tables, and
   per-request shard connections. *)

module T = Ssp_telemetry.Telemetry
module Proto = Ssp_server.Proto
module Client = Ssp_server.Client
module Snapshot = Ssp_server.Snapshot
module F = Ssp_fault.Fault

(* Replica-write failure injection: a fired write-through counts as
   failed and parks its blobs as hints, exercising the handoff path
   without needing a real network fault. *)
let replica_write_fault = F.site "cluster.replica_write"

type config = {
  socket : string option;
  tcp : (string * int) option;
  shards : (string * int) list;
  vnodes : int;
  max_frame : int;
  quarantine_s : float;
  quarantine_max_s : float;
  probe_interval_s : float;
  shard_timeout_s : float;
  replicate : bool;
  hints_max : int;
}

let default_config ~shards =
  {
    socket = None;
    tcp = None;
    shards;
    vnodes = 128;
    max_frame = Proto.default_max_frame;
    quarantine_s = 2.0;
    quarantine_max_s = 30.0;
    probe_interval_s = 0.25;
    shard_timeout_s = 120.0;
    replicate = true;
    hints_max = 256;
  }

let node_of_shard (host, port) = Printf.sprintf "%s:%d" host port

(* Decorrelated jitter (capped): the next penalty is drawn uniformly
   from [base, min cap (3 * prev)], so consecutive failures grow the
   quarantine geometrically while independent routers (and threads)
   decorrelate instead of re-probing a flapping shard in lockstep.
   [u] is the uniform draw in [0, 1); pure for testability. *)
let next_backoff ~base ~cap ~prev u =
  let base = Float.max 0.001 base in
  let cap = Float.max base cap in
  let prev = Float.max base prev in
  let hi = Float.min cap (prev *. 3.) in
  Float.min cap (base +. ((hi -. base) *. u))

(* Stable affinity key of a work request: identical requests (and the
   adapt/sim pair over the same program) land on the same shard, whose
   warm cache therefore stays hot for its key range. Control requests
   are answered by the router itself. *)
let affinity_key = function
  | Proto.Adapt { prog; scale; pipeline; tenant = _ }
  | Proto.Sim { prog; scale; pipeline; ssp = _; tenant = _ }
  | Proto.Feedback { prog; scale; pipeline; tenant = _; blob = _ } ->
    let prog_part =
      match prog with
      | Proto.Workload name -> "workload\x00" ^ name
      | Proto.Source text -> "source\x00" ^ Digest.string text
    in
    Some
      (Digest.to_hex
         (Digest.string
            (Printf.sprintf "%s\x00%d\x00%s" prog_part scale pipeline)))
  | Proto.Stats | Proto.Shutdown | Proto.Stats_snapshot | Proto.Put_blob _
  | Proto.Ping ->
    None

let error_reply (e : Ssp_ir.Error.info) =
  Proto.Error_reply
    {
      pass = e.Ssp_ir.Error.pass;
      what = Ssp_ir.Error.to_string e;
      injected = e.Ssp_ir.Error.injected;
    }

(* Per-shard breaker state. [failures = 0] is closed (healthy);
   otherwise the shard is quarantined until a probe succeeds —
   [open_until] only gates when the prober may next try. *)
type breaker = {
  mutable failures : int;
  mutable open_until : float;
  mutable backoff_s : float;
  mutable probing : bool;
}

let serve ?ready cfg =
  (match Sys.os_type with
  | "Unix" -> Sys.set_signal Sys.sigpipe Sys.Signal_ignore
  | _ -> ());
  if cfg.shards = [] then
    Ssp_ir.Error.raise_error ~pass:"router" "router needs at least one shard";
  if cfg.socket = None && cfg.tcp = None then
    Ssp_ir.Error.raise_error ~pass:"router"
      "router needs a unix socket, a TCP endpoint, or both";
  let addr_of_node =
    List.map (fun s -> (node_of_shard s, s)) cfg.shards
  in
  let ring = Ring.create ~vnodes:cfg.vnodes (List.map fst addr_of_node) in
  (* ---- breaker + hinted-handoff state (one mutex guards both) ---- *)
  let health_mu = Mutex.create () in
  let breakers : (string, breaker) Hashtbl.t = Hashtbl.create 8 in
  let hints : (string, (string * string) list) Hashtbl.t = Hashtbl.create 8 in
  let hints_count = ref 0 in
  let locked f =
    Mutex.lock health_mu;
    Fun.protect ~finally:(fun () -> Mutex.unlock health_mu) f
  in
  let breaker_of node =
    match Hashtbl.find_opt breakers node with
    | Some b -> b
    | None ->
      let b = { failures = 0; open_until = 0.; backoff_s = 0.; probing = false } in
      Hashtbl.replace breakers node b;
      b
  in
  let quarantined node =
    locked (fun () ->
        match Hashtbl.find_opt breakers node with
        | Some b -> b.failures > 0
        | None -> false)
  in
  let mark_dead node =
    locked (fun () ->
        let b = breaker_of node in
        b.failures <- b.failures + 1;
        b.backoff_s <-
          next_backoff ~base:cfg.quarantine_s ~cap:cfg.quarantine_max_s
            ~prev:b.backoff_s (Random.float 1.);
        b.open_until <- Unix.gettimeofday () +. b.backoff_s;
        T.count "router.breaker.open" 1)
  in
  let stash_hint node kv =
    locked (fun () ->
        if !hints_count < cfg.hints_max then begin
          let old = Option.value ~default:[] (Hashtbl.find_opt hints node) in
          Hashtbl.replace hints node (kv :: old);
          incr hints_count;
          T.count "router.hinted_handoff.stored" 1
        end
        else T.count "router.hinted_handoff.dropped" 1)
  in
  let take_hints node =
    locked (fun () ->
        match Hashtbl.find_opt hints node with
        | None -> []
        | Some kvs ->
          Hashtbl.remove hints node;
          hints_count := !hints_count - List.length kvs;
          List.rev kvs)
  in
  let put_blob node (key, blob) =
    let host, port = List.assoc node addr_of_node in
    match
      Client.request_addr ~max_frame:cfg.max_frame
        ~timeout_s:(Float.min 5.0 cfg.shard_timeout_s)
        (Client.Tcp (host, port))
        (Proto.Put_blob { key; blob })
    with
    | Proto.Ok_reply -> true
    | _ -> false
    | exception _ -> false
  in
  (* Closing a breaker flushes the hinted handoffs parked for the node;
     a flush failure re-stashes the rest and re-opens the breaker. *)
  let rec mark_live node =
    let was_dead =
      locked (fun () ->
          match Hashtbl.find_opt breakers node with
          | Some b when b.failures > 0 ->
            b.failures <- 0;
            b.open_until <- 0.;
            b.backoff_s <- 0.;
            true
          | _ -> false)
    in
    if was_dead then begin
      T.count "router.breaker.close" 1;
      flush_hints node
    end
  and flush_hints node =
    match take_hints node with
    | [] -> ()
    | kvs ->
      let rec deliver = function
        | [] -> ()
        | kv :: rest ->
          if put_blob node kv then begin
            T.count "router.hinted_handoff.flushed" 1;
            deliver rest
          end
          else begin
            List.iter (stash_hint node) (kv :: rest);
            mark_dead node
          end
      in
      deliver kvs
  in
  (* Write an adapt result through to the rest of the replica set
     (primary = ring owner, replica = next distinct node). A reply
     served by a non-primary carries artifacts for the primary too —
     that is the read-repair path backfilling it after an outage. *)
  let replicate ~candidates ~served artifacts =
    if cfg.replicate && artifacts <> [] then begin
      let replica_set =
        match candidates with p :: r :: _ -> [ p; r ] | l -> l
      in
      List.iter
        (fun target ->
          if not (String.equal target served) then begin
            let repair =
              match candidates with
              | primary :: _ -> String.equal target primary
              | [] -> false
            in
            if F.fire replica_write_fault then begin
              T.count "router.replicate.failed" 1;
              List.iter (stash_hint target) artifacts
            end
            else if quarantined target then
              List.iter (stash_hint target) artifacts
            else begin
              let t0 = Unix.gettimeofday () in
              let rec deliver = function
                | [] ->
                  T.count "router.replicate.ok" 1;
                  if repair then T.count "router.read_repair" 1;
                  T.record_hist "router.replicate_ms"
                    ((Unix.gettimeofday () -. t0) *. 1000.)
                | kv :: rest ->
                  if put_blob target kv then deliver rest
                  else begin
                    T.count "router.replicate.failed" 1;
                    mark_dead target;
                    List.iter (stash_hint target) (kv :: rest)
                  end
              in
              deliver artifacts
            end
          end)
        replica_set
    end
  in
  let route ~env ~t_in req key =
    let candidates = Ring.successors ring key in
    let fresh, stale = List.partition (fun n -> not (quarantined n)) candidates in
    let plan = fresh @ stale in
    let budget = env.Proto.re_deadline_ms in
    let remaining_ms () =
      if budget = 0. then None
      else Some (budget -. ((Unix.gettimeofday () -. t_in) *. 1000.))
    in
    let trace = env.Proto.re_trace in
    let failures = ref [] in
    let rec attempt idx = function
      | [] ->
        T.count "router.degraded" 1;
        ( Proto.Error_reply
            {
              pass = "router";
              what =
                Printf.sprintf "degraded: no live shard for this request; %s"
                  (String.concat "; " (List.rev !failures));
              injected = false;
            },
          [] )
      | node :: rest -> (
        match remaining_ms () with
        | Some ms when ms <= 0. ->
          (* The budget died on the way (or during a failed attempt):
             decrementing per hop is what stops a doomed request from
             burning another shard's CPU. *)
          T.count "router.deadline.shed" 1;
          ( Proto.Deadline_exceeded
              {
                stage = "router";
                budget_ms = budget;
                elapsed_ms = (Unix.gettimeofday () -. t_in) *. 1000.;
              },
            [] )
        | rem -> (
          let host, port = List.assoc node addr_of_node in
          let deadline_ms = Option.value ~default:0. rem in
          let timeout_s =
            match rem with
            | Some ms -> ms /. 1000.
            | None -> cfg.shard_timeout_s
          in
          (* The primary only attaches artifacts it just computed
             (write-through); a failover target attaches them even on a
             hit so the primary can be read-repaired. *)
          let artifacts_ask =
            if not cfg.replicate then Proto.artifacts_none
            else if idx = 0 then Proto.artifacts_on_miss
            else Proto.artifacts_always
          in
          let t0 = Unix.gettimeofday () in
          match
            Client.request_env ~max_frame:cfg.max_frame ~timeout_s ?trace
              ~deadline_ms ~artifacts:artifacts_ask
              (Client.Tcp (host, port))
              req
          with
          | resp, shard_hops, artifacts ->
            mark_live node;
            let fwd_ms = (Unix.gettimeofday () -. t0) *. 1000. in
            T.record_hist "router.forward_ms" fwd_ms;
            T.count ("router.shard." ^ node ^ ".requests") 1;
            if idx > 0 then T.count "router.failover" 1;
            (match resp with
            | Proto.Busy_reply _ -> T.count "router.busy" 1
            | _ -> ());
            replicate ~candidates ~served:node artifacts;
            let hops =
              if trace = None then []
              else
                (* The router's forward time wraps the shard's hops; the
                   gap between them is connect + wire + shard frame I/O,
                   which the stitched trace shows as router overhead. *)
                {
                  Proto.hop_node = "router";
                  hop_stage = "forward";
                  hop_ms = fwd_ms;
                }
                :: shard_hops
            in
            (resp, hops)
          | exception e ->
            let why =
              match e with
              | Unix.Unix_error (ue, _, _) -> Unix.error_message ue
              | Ssp_ir.Error.Error err -> Ssp_ir.Error.to_string err
              | e -> Printexc.to_string e
            in
            mark_dead node;
            T.count ("router.shard." ^ node ^ ".failed") 1;
            failures := Printf.sprintf "%s (%s)" node why :: !failures;
            attempt (idx + 1) rest))
    in
    attempt 0 plan
  in
  (* ---- listeners ---- *)
  let unix_fd =
    match cfg.socket with
    | None -> None
    | Some path ->
      (try Unix.unlink path with Unix.Unix_error _ -> ());
      let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
      Unix.bind fd (Unix.ADDR_UNIX path);
      Unix.listen fd 64;
      Some fd
  in
  let tcp_fd, tcp_port =
    match cfg.tcp with
    | None -> (None, None)
    | Some (host, port) -> (
      let ip =
        match Unix.inet_addr_of_string host with
        | a -> a
        | exception Failure _ -> (
          match Unix.gethostbyname host with
          | { Unix.h_addr_list = addrs; _ } when Array.length addrs > 0 ->
            addrs.(0)
          | _ | (exception Not_found) ->
            Ssp_ir.Error.raise_error ~pass:"router"
              ("cannot resolve host " ^ host))
      in
      let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
      Unix.setsockopt fd Unix.SO_REUSEADDR true;
      Unix.bind fd (Unix.ADDR_INET (ip, port));
      Unix.listen fd 64;
      match Unix.getsockname fd with
      | Unix.ADDR_INET (_, p) -> (Some fd, Some p)
      | _ -> (Some fd, Some port))
  in
  let listeners = List.filter_map Fun.id [ unix_fd; tcp_fd ] in
  (match ready with Some f -> f ~tcp_port | None -> ());
  let running = Atomic.make true in
  let conns_mu = Mutex.create () in
  let conns : (Unix.file_descr, unit) Hashtbl.t = Hashtbl.create 16 in
  let conn_threads : Thread.t list ref = ref [] in
  (* Blocked threads cannot be woken by closing their fd out from under
     them (and the fd number could be recycled by a concurrent connect),
     so [stop] only flips the flag: every loop select-ticks on it and
     winds down within a tick. The listeners are closed by [serve]
     itself once the acceptors have joined. *)
  let stop () = Atomic.set running false in
  (* Half-open probing: one prober thread (not every request thread)
     pings quarantined shards whose backoff has expired. Success closes
     the breaker — and flushes its hinted handoffs — before any real
     traffic is risked; failure re-opens it with a longer backoff. *)
  let prober () =
    while Atomic.get running do
      Thread.delay cfg.probe_interval_s;
      let due =
        locked (fun () ->
            let now = Unix.gettimeofday () in
            Hashtbl.fold
              (fun node b acc ->
                if b.failures > 0 && now >= b.open_until && not b.probing
                then begin
                  b.probing <- true;
                  node :: acc
                end
                else acc)
              breakers [])
      in
      List.iter
        (fun node ->
          T.count "router.breaker.probe" 1;
          let host, port = List.assoc node addr_of_node in
          let ok =
            match
              Client.request_addr ~max_frame:cfg.max_frame
                ~timeout_s:(Float.min 2.0 cfg.shard_timeout_s)
                (Client.Tcp (host, port))
                Proto.Ping
            with
            | Proto.Ok_reply -> true
            | _ -> false
            | exception _ -> false
          in
          locked (fun () -> (breaker_of node).probing <- false);
          if ok then begin
            T.count "router.breaker.probe_ok" 1;
            mark_live node
          end
          else begin
            T.count "router.breaker.probe_failed" 1;
            mark_dead node
          end)
        due
    done
  in
  let prober_t = Thread.create prober () in
  let handle ~env req =
    match req with
    | Proto.Stats ->
      T.count "router.requests" 1;
      (`Reply
         ( Proto.Stats_reply
             { summary = Format.asprintf "%a" T.pp_summary (T.report ()) },
           [] ))
    | Proto.Ping ->
      T.count "router.requests" 1;
      `Reply (Proto.Ok_reply, [])
    | Proto.Put_blob _ ->
      T.count "router.requests" 1;
      `Reply
        ( Proto.Error_reply
            {
              pass = "router";
              what = "router owns no store; replica writes go to shards";
              injected = false;
            },
          [] )
    | Proto.Stats_snapshot ->
      (* The aggregated stats plane: fan the snapshot request out to
         every shard on the ring, merge what answers (histograms
         bucket-wise — exact, by the fixed layout — counters summed,
         backpressure counters additionally kept per shard) and fold in
         the router's own counters plus a liveness gauge per shard. *)
      T.count "router.requests" 1;
      let shard_snaps =
        List.map
          (fun (node, (host, port)) ->
            match
              Client.request_addr ~max_frame:cfg.max_frame
                ~timeout_s:cfg.shard_timeout_s
                (Client.Tcp (host, port))
                Proto.Stats_snapshot
            with
            | Proto.Snapshot_reply { snapshot } -> (
              match Snapshot.decode snapshot with
              | s ->
                mark_live node;
                (node, Some s)
              | exception _ -> (node, None))
            | _ -> (node, None)
            | exception _ ->
              mark_dead node;
              (node, None))
          addr_of_node
      in
      let ups =
        List.map
          (fun (node, s) ->
            ("shard." ^ node ^ ".up", if s = None then 0. else 1.))
          shard_snaps
      in
      let own = Snapshot.capture ~node:"router" ~gauges:ups () in
      let merged =
        Snapshot.merge (own :: List.filter_map snd shard_snaps)
      in
      `Reply
        (Proto.Snapshot_reply { snapshot = Snapshot.encode merged }, [])
    | Proto.Shutdown ->
      T.count "router.requests" 1;
      `Shutdown
    | Proto.Adapt _ | Proto.Sim _ | Proto.Feedback _ ->
      (* Feedback rides the same affinity hash as the adapt/sim pair, so
         a workload's attribution reports land on the shard whose cache
         holds (and re-tunes) that workload's artifacts. *)
      T.count "router.requests" 1;
      (match env.Proto.re_trace with
      | Some tc -> T.count ("trace." ^ tc.Proto.trace_id) 1
      | None -> ());
      let tenant = Proto.tenant_of req in
      T.count ("router.tenant." ^ tenant ^ ".requests") 1;
      let key = Option.get (affinity_key req) in
      `Reply (route ~env ~t_in:(Unix.gettimeofday ()) req key)
  in
  let conn_loop fd =
    let closed = ref false in
    let close () =
      if not !closed then begin
        closed := true;
        Mutex.lock conns_mu;
        Hashtbl.remove conns fd;
        Mutex.unlock conns_mu;
        try Unix.close fd with Unix.Unix_error _ -> ()
      end
    in
    let send ?(hops = []) resp =
      Proto.write_frame fd (Proto.encode_response ~hops resp)
    in
    (* Park in select, not read: a quiet connection must not pin this
       thread past shutdown, and read_frame only runs once bytes are
       already there (so it cannot block on an idle peer). *)
    let rec wait_readable () =
      if not (Atomic.get running) then false
      else
        match Unix.select [ fd ] [] [] 0.25 with
        | [], _, _ -> wait_readable ()
        | _ -> true
        | exception Unix.Unix_error (Unix.EINTR, _, _) -> wait_readable ()
    in
    (try
       let continue = ref true in
       while !continue do
         if not (wait_readable ()) then continue := false
         else
         match Proto.read_frame ~max_frame:cfg.max_frame fd with
         | None -> continue := false
         | Some payload -> (
           match Proto.decode_request_env payload with
           | req, env -> (
             match handle ~env req with
             | `Reply (resp, hops) -> send ~hops resp
             | `Shutdown ->
               send Proto.Ok_reply;
               stop ();
               continue := false)
           | exception Ssp_ir.Error.Error e ->
             (* A hostile payload gets a structured reply, then loses
                its connection (framing state is untrustworthy). *)
             send (error_reply e);
             continue := false
           | exception e ->
             send
               (Proto.Error_reply
                  {
                    pass = "proto";
                    what = Printexc.to_string e;
                    injected = false;
                  });
             continue := false)
       done
     with
    | Unix.Unix_error _ | Ssp_ir.Error.Error _ -> ()
    | Sys_error _ -> ());
    close ()
  in
  let accept_loop lfd =
    let continue = ref true in
    while !continue && Atomic.get running do
      match Unix.select [ lfd ] [] [] 0.25 with
      | [], _, _ -> ()
      | _ -> (
        match Unix.accept lfd with
        | afd, _ ->
          (try Unix.setsockopt afd Unix.TCP_NODELAY true
           with Unix.Unix_error _ | Invalid_argument _ -> ());
          Mutex.lock conns_mu;
          Hashtbl.replace conns afd ();
          conn_threads := Thread.create conn_loop afd :: !conn_threads;
          Mutex.unlock conns_mu
        | exception Unix.Unix_error (Unix.EINTR, _, _) -> ())
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
      | exception Unix.Unix_error _ -> continue := false
    done
  in
  let acceptors = List.map (fun lfd -> Thread.create accept_loop lfd) listeners in
  List.iter Thread.join acceptors;
  (* stop() has run and the acceptors are gone; conn threads notice the
     flag within one select tick, the prober within one probe tick. *)
  Thread.join prober_t;
  Mutex.lock conns_mu;
  let threads = !conn_threads in
  Mutex.unlock conns_mu;
  List.iter Thread.join threads;
  List.iter (fun fd -> try Unix.close fd with Unix.Unix_error _ -> ()) listeners;
  match cfg.socket with
  | Some path -> ( try Unix.unlink path with Unix.Unix_error _ -> ())
  | None -> ()
