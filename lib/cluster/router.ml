(* The cluster router: a thin process that owns no pipeline state, only
   the consistent-hash ring and the health table.

   Each client request is keyed by the identity that also keys the
   shards' content-addressed caches (program x scale x pipeline — the
   cheap, router-computable proxy for hash(program) x hash(profile),
   since profiles are a deterministic function of program and config),
   and forwarded to the key's shard over TCP. A shard that cannot be
   reached, dies mid-reply, or times out is quarantined and the request
   retries on the ring's next live node — safe, because requests are
   idempotent: any shard computes the same bytes, the failover only
   costs the warm cache. When no shard answers, the client gets a
   structured degraded-mode error naming every attempt — degraded is
   never wrong, and never a hang.

   Busy replies are NOT failed over: admission backpressure means the
   key's home shard is saturated, and spilling its traffic onto
   neighbours would defeat both the fairness accounting and the cache
   affinity. The client honors the retry-after instead.

   Concurrency: one blocking thread per client connection (routing is
   pure I/O; the select-loop machinery of the shards would buy nothing
   here), a mutex-guarded health table, and per-request shard
   connections. *)

module T = Ssp_telemetry.Telemetry
module Proto = Ssp_server.Proto
module Client = Ssp_server.Client
module Snapshot = Ssp_server.Snapshot

type config = {
  socket : string option;
  tcp : (string * int) option;
  shards : (string * int) list;
  vnodes : int;
  max_frame : int;
  quarantine_s : float;
  shard_timeout_s : float;
}

let default_config ~shards =
  {
    socket = None;
    tcp = None;
    shards;
    vnodes = 128;
    max_frame = Proto.default_max_frame;
    quarantine_s = 2.0;
    shard_timeout_s = 120.0;
  }

let node_of_shard (host, port) = Printf.sprintf "%s:%d" host port

(* Stable affinity key of a work request: identical requests (and the
   adapt/sim pair over the same program) land on the same shard, whose
   warm cache therefore stays hot for its key range. Control requests
   are answered by the router itself. *)
let affinity_key = function
  | Proto.Adapt { prog; scale; pipeline; tenant = _ }
  | Proto.Sim { prog; scale; pipeline; ssp = _; tenant = _ } ->
    let prog_part =
      match prog with
      | Proto.Workload name -> "workload\x00" ^ name
      | Proto.Source text -> "source\x00" ^ Digest.string text
    in
    Some
      (Digest.to_hex
         (Digest.string
            (Printf.sprintf "%s\x00%d\x00%s" prog_part scale pipeline)))
  | Proto.Stats | Proto.Shutdown | Proto.Stats_snapshot -> None

let error_reply (e : Ssp_ir.Error.info) =
  Proto.Error_reply
    {
      pass = e.Ssp_ir.Error.pass;
      what = Ssp_ir.Error.to_string e;
      injected = e.Ssp_ir.Error.injected;
    }

let serve ?ready cfg =
  (match Sys.os_type with
  | "Unix" -> Sys.set_signal Sys.sigpipe Sys.Signal_ignore
  | _ -> ());
  if cfg.shards = [] then
    Ssp_ir.Error.raise_error ~pass:"router" "router needs at least one shard";
  if cfg.socket = None && cfg.tcp = None then
    Ssp_ir.Error.raise_error ~pass:"router"
      "router needs a unix socket, a TCP endpoint, or both";
  let addr_of_node =
    List.map (fun s -> (node_of_shard s, s)) cfg.shards
  in
  let ring = Ring.create ~vnodes:cfg.vnodes (List.map fst addr_of_node) in
  (* dead_until per node; a quarantined shard is skipped while fresh
     alternatives exist but still probed as a last resort (it may have
     recovered, and trying beats a certain degraded reply). *)
  let health : (string, float) Hashtbl.t = Hashtbl.create 8 in
  let health_mu = Mutex.create () in
  let quarantined node =
    Mutex.lock health_mu;
    let r =
      match Hashtbl.find_opt health node with
      | Some until -> Unix.gettimeofday () < until
      | None -> false
    in
    Mutex.unlock health_mu;
    r
  in
  let mark_dead node =
    Mutex.lock health_mu;
    Hashtbl.replace health node (Unix.gettimeofday () +. cfg.quarantine_s);
    Mutex.unlock health_mu
  in
  let mark_live node =
    Mutex.lock health_mu;
    Hashtbl.remove health node;
    Mutex.unlock health_mu
  in
  let route ?trace req key =
    let candidates = Ring.successors ring key in
    let fresh, stale = List.partition (fun n -> not (quarantined n)) candidates in
    let plan = fresh @ stale in
    let failures = ref [] in
    let rec attempt idx = function
      | [] ->
        T.count "router.degraded" 1;
        ( Proto.Error_reply
            {
              pass = "router";
              what =
                Printf.sprintf "degraded: no live shard for this request; %s"
                  (String.concat "; " (List.rev !failures));
              injected = false;
            },
          [] )
      | node :: rest -> (
        let host, port = List.assoc node addr_of_node in
        let t0 = Unix.gettimeofday () in
        match
          Client.request_hops ~max_frame:cfg.max_frame
            ~timeout_s:cfg.shard_timeout_s ?trace
            (Client.Tcp (host, port))
            req
        with
        | resp, shard_hops ->
          mark_live node;
          let fwd_ms = (Unix.gettimeofday () -. t0) *. 1000. in
          T.record_hist "router.forward_ms" fwd_ms;
          T.count ("router.shard." ^ node ^ ".requests") 1;
          if idx > 0 then T.count "router.failover" 1;
          (match resp with
          | Proto.Busy_reply _ -> T.count "router.busy" 1
          | _ -> ());
          let hops =
            if trace = None then []
            else
              (* The router's forward time wraps the shard's hops; the
                 gap between them is connect + wire + shard frame I/O,
                 which the stitched trace shows as router overhead. *)
              {
                Proto.hop_node = "router";
                hop_stage = "forward";
                hop_ms = fwd_ms;
              }
              :: shard_hops
          in
          (resp, hops)
        | exception e ->
          let why =
            match e with
            | Unix.Unix_error (ue, _, _) -> Unix.error_message ue
            | Ssp_ir.Error.Error err -> Ssp_ir.Error.to_string err
            | e -> Printexc.to_string e
          in
          mark_dead node;
          T.count ("router.shard." ^ node ^ ".failed") 1;
          failures := Printf.sprintf "%s (%s)" node why :: !failures;
          attempt (idx + 1) rest)
    in
    attempt 0 plan
  in
  (* ---- listeners ---- *)
  let unix_fd =
    match cfg.socket with
    | None -> None
    | Some path ->
      (try Unix.unlink path with Unix.Unix_error _ -> ());
      let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
      Unix.bind fd (Unix.ADDR_UNIX path);
      Unix.listen fd 64;
      Some fd
  in
  let tcp_fd, tcp_port =
    match cfg.tcp with
    | None -> (None, None)
    | Some (host, port) -> (
      let ip =
        match Unix.inet_addr_of_string host with
        | a -> a
        | exception Failure _ -> (
          match Unix.gethostbyname host with
          | { Unix.h_addr_list = addrs; _ } when Array.length addrs > 0 ->
            addrs.(0)
          | _ | (exception Not_found) ->
            Ssp_ir.Error.raise_error ~pass:"router"
              ("cannot resolve host " ^ host))
      in
      let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
      Unix.setsockopt fd Unix.SO_REUSEADDR true;
      Unix.bind fd (Unix.ADDR_INET (ip, port));
      Unix.listen fd 64;
      match Unix.getsockname fd with
      | Unix.ADDR_INET (_, p) -> (Some fd, Some p)
      | _ -> (Some fd, Some port))
  in
  let listeners = List.filter_map Fun.id [ unix_fd; tcp_fd ] in
  (match ready with Some f -> f ~tcp_port | None -> ());
  let running = Atomic.make true in
  let conns_mu = Mutex.create () in
  let conns : (Unix.file_descr, unit) Hashtbl.t = Hashtbl.create 16 in
  let conn_threads : Thread.t list ref = ref [] in
  (* Blocked threads cannot be woken by closing their fd out from under
     them (and the fd number could be recycled by a concurrent connect),
     so [stop] only flips the flag: every loop select-ticks on it and
     winds down within a tick. The listeners are closed by [serve]
     itself once the acceptors have joined. *)
  let stop () = Atomic.set running false in
  let handle ?trace req =
    match req with
    | Proto.Stats ->
      T.count "router.requests" 1;
      (`Reply
         ( Proto.Stats_reply
             { summary = Format.asprintf "%a" T.pp_summary (T.report ()) },
           [] ))
    | Proto.Stats_snapshot ->
      (* The aggregated stats plane: fan the snapshot request out to
         every shard on the ring, merge what answers (histograms
         bucket-wise — exact, by the fixed layout — counters summed,
         backpressure counters additionally kept per shard) and fold in
         the router's own counters plus a liveness gauge per shard. *)
      T.count "router.requests" 1;
      let shard_snaps =
        List.map
          (fun (node, (host, port)) ->
            match
              Client.request_addr ~max_frame:cfg.max_frame
                ~timeout_s:cfg.shard_timeout_s
                (Client.Tcp (host, port))
                Proto.Stats_snapshot
            with
            | Proto.Snapshot_reply { snapshot } -> (
              match Snapshot.decode snapshot with
              | s ->
                mark_live node;
                (node, Some s)
              | exception _ -> (node, None))
            | _ -> (node, None)
            | exception _ ->
              mark_dead node;
              (node, None))
          addr_of_node
      in
      let ups =
        List.map
          (fun (node, s) ->
            ("shard." ^ node ^ ".up", if s = None then 0. else 1.))
          shard_snaps
      in
      let own = Snapshot.capture ~node:"router" ~gauges:ups () in
      let merged =
        Snapshot.merge (own :: List.filter_map snd shard_snaps)
      in
      `Reply
        (Proto.Snapshot_reply { snapshot = Snapshot.encode merged }, [])
    | Proto.Shutdown ->
      T.count "router.requests" 1;
      `Shutdown
    | Proto.Adapt _ | Proto.Sim _ ->
      T.count "router.requests" 1;
      (match trace with
      | Some tc -> T.count ("trace." ^ tc.Proto.trace_id) 1
      | None -> ());
      let tenant = Proto.tenant_of req in
      T.count ("router.tenant." ^ tenant ^ ".requests") 1;
      let key = Option.get (affinity_key req) in
      `Reply (route ?trace req key)
  in
  let conn_loop fd =
    let closed = ref false in
    let close () =
      if not !closed then begin
        closed := true;
        Mutex.lock conns_mu;
        Hashtbl.remove conns fd;
        Mutex.unlock conns_mu;
        try Unix.close fd with Unix.Unix_error _ -> ()
      end
    in
    let send ?(hops = []) resp =
      Proto.write_frame fd (Proto.encode_response ~hops resp)
    in
    (* Park in select, not read: a quiet connection must not pin this
       thread past shutdown, and read_frame only runs once bytes are
       already there (so it cannot block on an idle peer). *)
    let rec wait_readable () =
      if not (Atomic.get running) then false
      else
        match Unix.select [ fd ] [] [] 0.25 with
        | [], _, _ -> wait_readable ()
        | _ -> true
        | exception Unix.Unix_error (Unix.EINTR, _, _) -> wait_readable ()
    in
    (try
       let continue = ref true in
       while !continue do
         if not (wait_readable ()) then continue := false
         else
         match Proto.read_frame ~max_frame:cfg.max_frame fd with
         | None -> continue := false
         | Some payload -> (
           match Proto.decode_request_traced payload with
           | req, trace -> (
             match handle ?trace req with
             | `Reply (resp, hops) -> send ~hops resp
             | `Shutdown ->
               send Proto.Ok_reply;
               stop ();
               continue := false)
           | exception Ssp_ir.Error.Error e ->
             (* A hostile payload gets a structured reply, then loses
                its connection (framing state is untrustworthy). *)
             send (error_reply e);
             continue := false
           | exception e ->
             send
               (Proto.Error_reply
                  {
                    pass = "proto";
                    what = Printexc.to_string e;
                    injected = false;
                  });
             continue := false)
       done
     with
    | Unix.Unix_error _ | Ssp_ir.Error.Error _ -> ()
    | Sys_error _ -> ());
    close ()
  in
  let accept_loop lfd =
    let continue = ref true in
    while !continue && Atomic.get running do
      match Unix.select [ lfd ] [] [] 0.25 with
      | [], _, _ -> ()
      | _ -> (
        match Unix.accept lfd with
        | afd, _ ->
          (try Unix.setsockopt afd Unix.TCP_NODELAY true
           with Unix.Unix_error _ | Invalid_argument _ -> ());
          Mutex.lock conns_mu;
          Hashtbl.replace conns afd ();
          conn_threads := Thread.create conn_loop afd :: !conn_threads;
          Mutex.unlock conns_mu
        | exception Unix.Unix_error (Unix.EINTR, _, _) -> ())
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
      | exception Unix.Unix_error _ -> continue := false
    done
  in
  let acceptors = List.map (fun lfd -> Thread.create accept_loop lfd) listeners in
  List.iter Thread.join acceptors;
  (* stop() has run and the acceptors are gone; conn threads notice the
     flag within one select tick. *)
  Mutex.lock conns_mu;
  let threads = !conn_threads in
  Mutex.unlock conns_mu;
  List.iter Thread.join threads;
  List.iter (fun fd -> try Unix.close fd with Unix.Unix_error _ -> ()) listeners;
  match cfg.socket with
  | Some path -> ( try Unix.unlink path with Unix.Unix_error _ -> ())
  | None -> ()
