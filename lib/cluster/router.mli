(** The cluster router: fans client requests across N shard daemons
    ({!Ssp_server.Server.serve} with a TCP listener) placed on a
    consistent-hash {!Ring}.

    Placement: every work request carries a stable affinity key —
    program identity x scale x pipeline, the same identity that keys
    the shards' content-addressed caches — so repeated requests (and
    the adapt/sim pair over one program) hit the same shard's warm
    cache. [Stats], [Ping] and [Shutdown] are control requests answered
    by the router itself.

    Replication (factor 2): with [replicate] on, the primary's reply to
    an adapt miss carries the artifacts it just published and the router
    writes them through to the ring successor — killing the primary
    mid-campaign degrades to a {e warm} hit on the replica, not a cold
    recompute. Failover replies carry artifacts unconditionally so the
    router read-repairs the primary once it returns; blobs aimed at a
    quarantined node park in a bounded hinted-handoff buffer, flushed
    when its breaker closes.

    Circuit breakers: a failed shard is quarantined with capped
    exponential backoff and decorrelated jitter ({!next_backoff}), and
    re-admitted only after a cheap [Ping] probe succeeds — half-open
    probing risks a probe, never real traffic.

    Deadlines: a request arriving with a v4 deadline budget spends that
    budget, not the router's own timeout. Each shard attempt is stamped
    (and socket-bounded) with the remainder; an exhausted budget becomes
    a structured [Deadline_exceeded] (stage ["router"]) instead of more
    doomed attempts.

    Degraded mode, never wrong bytes: when every shard has failed the
    client gets a structured [Error_reply] (pass ["router"]) naming each
    attempt. {!Ssp_server.Proto.response.Busy_reply} is backpressure,
    not failure: it is forwarded to the client un-failed-over so
    admission control and cache affinity keep their meaning. *)

type config = {
  socket : string option;  (** Unix-domain listener (unlinked on exit) *)
  tcp : (string * int) option;
      (** TCP listener; port 0 binds ephemeral (reported via [ready]) *)
  shards : (string * int) list;  (** the shard TCP endpoints *)
  vnodes : int;  (** virtual nodes per shard on the ring *)
  max_frame : int;  (** per-frame byte limit on both sides *)
  quarantine_s : float;
      (** breaker backoff {e base}: the first quarantine after a failure
          is roughly this long, growing per consecutive failure *)
  quarantine_max_s : float;  (** breaker backoff cap *)
  probe_interval_s : float;
      (** how often the prober thread scans for quarantined shards whose
          backoff expired and pings them *)
  shard_timeout_s : float;
      (** socket timeout per shard exchange when the request carries no
          deadline; a shard that accepts but never replies counts as
          dead instead of hanging the client *)
  replicate : bool;
      (** write adapt artifacts through to the ring successor (and
          read-repair a recovered primary) *)
  hints_max : int;
      (** total (key, blob) pairs the hinted-handoff buffer may hold
          across all nodes; overflow is dropped (and counted) — hints
          are an availability optimisation, not a durability promise *)
}

val default_config : shards:(string * int) list -> config
(** No listeners bound (set [socket] and/or [tcp]), [vnodes = 128],
    [max_frame = Proto.default_max_frame], [quarantine_s = 2.],
    [quarantine_max_s = 30.], [probe_interval_s = 0.25],
    [shard_timeout_s = 120.], [replicate = true], [hints_max = 256]. *)

val node_of_shard : string * int -> string
(** The ring node id of a shard endpoint: ["host:port"]. *)

val next_backoff : base:float -> cap:float -> prev:float -> float -> float
(** [next_backoff ~base ~cap ~prev u] is the breaker's next quarantine
    length: decorrelated jitter, drawn uniformly (by [u] in [0, 1))
    from [[base, min cap (3 * prev)]] — geometric growth across
    consecutive failures, decorrelated across threads and routers.
    Pure; exposed for tests. *)

val affinity_key : Ssp_server.Proto.request -> string option
(** The placement key of a work request ([None] for control requests).
    Deterministic across processes; deliberately ignores the [ssp]
    flag and the tenant so all variants of one program co-locate. *)

val serve : ?ready:(tcp_port:int option -> unit) -> config -> unit
(** Bind the router's listeners and serve until a [Shutdown] request
    (blocking). [ready] fires once all listeners are bound. Raises
    [Ssp_ir.Error.Error] when no listener or no shard is configured,
    [Unix.Unix_error] when a listener cannot be bound. Telemetry (when
    enabled): [router.requests], [router.failover], [router.busy],
    [router.degraded], [router.deadline.shed], per-shard
    [router.shard.<node>.requests] / [.failed], per-tenant
    [router.tenant.<t>.requests]; replication:
    [router.replicate.ok] / [.failed], [router.read_repair],
    [router.hinted_handoff.stored] / [.flushed] / [.dropped], hist
    [router.replicate_ms]; breaker: [router.breaker.open] / [.close] /
    [.probe] / [.probe_ok] / [.probe_failed]. *)
