(** The cluster router: fans client requests across N shard daemons
    ({!Ssp_server.Server.serve} with a TCP listener) placed on a
    consistent-hash {!Ring}.

    Placement: every work request carries a stable affinity key —
    program identity x scale x pipeline, the same identity that keys
    the shards' content-addressed caches — so repeated requests (and
    the adapt/sim pair over one program) hit the same shard's warm
    cache. [Stats] and [Shutdown] are control requests answered by the
    router itself.

    Degraded mode, never wrong bytes: a shard that cannot be reached
    (or times out mid-reply) is quarantined for [quarantine_s] and the
    request retries on the ring's next live node — safe because
    requests are idempotent, the failover only costs cache warmth.
    Only when every shard has failed does the client get a structured
    [Error_reply] (pass ["router"]) naming each attempt.
    {!Ssp_server.Proto.response.Busy_reply} is backpressure, not
    failure: it is forwarded to the client un-failed-over so admission
    control and cache affinity keep their meaning. *)

type config = {
  socket : string option;  (** Unix-domain listener (unlinked on exit) *)
  tcp : (string * int) option;
      (** TCP listener; port 0 binds ephemeral (reported via [ready]) *)
  shards : (string * int) list;  (** the shard TCP endpoints *)
  vnodes : int;  (** virtual nodes per shard on the ring *)
  max_frame : int;  (** per-frame byte limit on both sides *)
  quarantine_s : float;
      (** how long a failed shard is skipped while alternatives exist *)
  shard_timeout_s : float;
      (** socket timeout per shard exchange; a shard that accepts but
          never replies counts as dead instead of hanging the client *)
}

val default_config : shards:(string * int) list -> config
(** No listeners bound (set [socket] and/or [tcp]), [vnodes = 128],
    [max_frame = Proto.default_max_frame], [quarantine_s = 2.],
    [shard_timeout_s = 120.]. *)

val node_of_shard : string * int -> string
(** The ring node id of a shard endpoint: ["host:port"]. *)

val affinity_key : Ssp_server.Proto.request -> string option
(** The placement key of a work request ([None] for control requests).
    Deterministic across processes; deliberately ignores the [ssp]
    flag and the tenant so all variants of one program co-locate. *)

val serve : ?ready:(tcp_port:int option -> unit) -> config -> unit
(** Bind the router's listeners and serve until a [Shutdown] request
    (blocking). [ready] fires once all listeners are bound. Raises
    [Ssp_ir.Error.Error] when no listener or no shard is configured,
    [Unix.Unix_error] when a listener cannot be bound. Telemetry (when
    enabled): [router.requests], [router.failover], [router.busy],
    [router.degraded], per-shard [router.shard.<node>.requests] /
    [.failed], per-tenant [router.tenant.<t>.requests]. *)
