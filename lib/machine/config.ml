type pipeline = In_order | Out_of_order

type cache_geom = {
  size_bytes : int;
  ways : int;
  line_bytes : int;
  latency : int;
}

type memory_mode =
  | Normal
  | Perfect_memory
  | Perfect_delinquent of Ssp_ir.Iref.Set.t

type t = {
  pipeline : pipeline;
  n_contexts : int;
  fetch_bundles : int;
  fetch_threads : int;
  issue_bundles : int;
  issue_threads : int;
  int_units : int;
  mem_ports : int;
  br_units : int;
  expansion_queue_bundles : int;
  rob_entries : int;
  rs_entries : int;
  retire_width : int;
  front_end_penalty : int;
  l1 : cache_geom;
  l2 : cache_geom;
  l3 : cache_geom;
  mem_latency : int;
  fill_buffer_entries : int;
  gshare_entries : int;
  btb_entries : int;
  btb_ways : int;
  spawn_flush : bool;
  chk_min_free : int;
  chk_refractory : int;
  lib_latency : int;
  spawn_latency : int;
  memory_mode : memory_mode;
  spec_watchdog : int;
  max_cycles : int;
}

let kb n = n * 1024

let in_order =
  {
    pipeline = In_order;
    n_contexts = 4;
    fetch_bundles = 2;
    fetch_threads = 2;
    issue_bundles = 2;
    issue_threads = 2;
    int_units = 4;
    mem_ports = 2;
    br_units = 3;
    expansion_queue_bundles = 16;
    rob_entries = 0;
    rs_entries = 0;
    retire_width = 6;
    (* 12-stage pipeline: mispredict redirect refills most of the front
       end. *)
    front_end_penalty = 9;
    l1 = { size_bytes = kb 16; ways = 4; line_bytes = 64; latency = 2 };
    l2 = { size_bytes = kb 256; ways = 4; line_bytes = 64; latency = 14 };
    l3 = { size_bytes = kb 3072; ways = 12; line_bytes = 64; latency = 30 };
    mem_latency = 230;
    fill_buffer_entries = 16;
    gshare_entries = 2048;
    btb_entries = 256;
    btb_ways = 4;
    spawn_flush = true;
    chk_min_free = 1;
    chk_refractory = 64;
    lib_latency = 2;
    spawn_latency = 4;
    memory_mode = Normal;
    spec_watchdog = 200_000;
    max_cycles = 2_000_000_000;
  }

let out_of_order =
  {
    in_order with
    pipeline = Out_of_order;
    (* Four additional front-end stages for renaming and scheduling. *)
    front_end_penalty = 13;
    rob_entries = 255;
    rs_entries = 18;
    retire_width = 6;
    expansion_queue_bundles = 16;
  }

let with_memory_mode t m = { t with memory_mode = m }

let scale_caches t factor =
  let sc (g : cache_geom) =
    let size = max (g.ways * g.line_bytes) (g.size_bytes / factor) in
    { g with size_bytes = size }
  in
  { t with l1 = sc t.l1; l2 = sc t.l2; l3 = sc t.l3 }

(* Canonical identity string: every field that can change simulation or
   adaptation behaviour, in a fixed order. Content-addressed caching keys
   on this, so two configs fingerprint equal iff they are the same
   machine. *)
let fingerprint t =
  let geom (g : cache_geom) =
    Printf.sprintf "%d/%d/%d/%d" g.size_bytes g.ways g.line_bytes g.latency
  in
  let mm =
    match t.memory_mode with
    | Normal -> "normal"
    | Perfect_memory -> "perfect"
    | Perfect_delinquent s ->
      "perfect-delinquent:"
      ^ String.concat ","
          (List.map Ssp_ir.Iref.to_string (Ssp_ir.Iref.Set.elements s))
  in
  Printf.sprintf
    "%s|ctx=%d|fetch=%d/%d|issue=%d/%d|units=%d/%d/%d|eq=%d|rob=%d|rs=%d|\
     retire=%d|fep=%d|l1=%s|l2=%s|l3=%s|mem=%d|fill=%d|gshare=%d|btb=%d/%d|\
     spawnflush=%b|chkfree=%d|chkrefr=%d|lib=%d|spawn=%d|watchdog=%d|\
     maxcyc=%d|mm=%s"
    (match t.pipeline with In_order -> "inorder" | Out_of_order -> "ooo")
    t.n_contexts t.fetch_bundles t.fetch_threads t.issue_bundles
    t.issue_threads t.int_units t.mem_ports t.br_units
    t.expansion_queue_bundles t.rob_entries t.rs_entries t.retire_width
    t.front_end_penalty (geom t.l1) (geom t.l2) (geom t.l3) t.mem_latency
    t.fill_buffer_entries t.gshare_entries t.btb_entries t.btb_ways
    t.spawn_flush t.chk_min_free t.chk_refractory t.lib_latency
    t.spawn_latency t.spec_watchdog t.max_cycles mm

let pp ppf t =
  let pipe =
    match t.pipeline with
    | In_order -> "In-order: 12-stage pipeline"
    | Out_of_order -> "OOO: 16-stage pipeline"
  in
  Format.fprintf ppf
    "@[<v>Threading      SMT processor with %d hardware thread contexts@,\
     Pipelining     %s@,\
     Fetch/cycle    %d bundles from 1 thread or 1 each from %d threads@,\
     Issue/cycle    %d bundles from 1 thread or 1 each from %d threads@,\
     Funct. units   %d int units, %d branch units, %d memory ports@,\
     Window         %s@,\
     L1 (sep I&D)   %dKB each, %d-way, %d-cycle latency@,\
     L2 (shared)    %dKB, %d-way, %d-cycle latency@,\
     L3 (shared)    %dKB, %d-way, %d-cycle latency@,\
     Fill buffer    %d entries; all caches have %d-byte lines@,\
     Memory         %d-cycle latency@,\
     Branch pred.   %d-entry GSHARE, %d-entry %d-way BTB@]"
    t.n_contexts pipe t.fetch_bundles t.fetch_threads t.issue_bundles
    t.issue_threads t.int_units t.br_units t.mem_ports
    (match t.pipeline with
    | In_order ->
      Printf.sprintf "per-thread %d-bundle expansion queue"
        t.expansion_queue_bundles
    | Out_of_order ->
      Printf.sprintf "per-thread %d-entry ROB, %d-entry reservation station"
        t.rob_entries t.rs_entries)
    (t.l1.size_bytes / 1024) t.l1.ways t.l1.latency (t.l2.size_bytes / 1024)
    t.l2.ways t.l2.latency (t.l3.size_bytes / 1024) t.l3.ways t.l3.latency
    t.fill_buffer_entries t.l1.line_bytes t.mem_latency t.gshare_entries
    t.btb_entries t.btb_ways
