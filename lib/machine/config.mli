(** The two research Itanium machine models of Table 1.

    Both are SMT with four hardware thread contexts, fetching and issuing
    two bundles per cycle from one thread or one bundle each from two
    threads. The in-order model has a 12-stage pipeline and per-thread
    16-bundle expansion queues; the OOO model has four extra front-end
    stages, a per-thread 255-entry reorder buffer and an 18-entry
    reservation station. The memory hierarchy is shared: 16 KB 4-way L1
    (2 cycles), 256 KB 4-way L2 (14 cycles), 3 MB 12-way L3 (30 cycles),
    64-byte lines, a 16-entry fill buffer, and 230-cycle memory. *)

type pipeline = In_order | Out_of_order

type cache_geom = {
  size_bytes : int;
  ways : int;
  line_bytes : int;
  latency : int;  (** load-to-use latency when hitting at this level *)
}

type memory_mode =
  | Normal
  | Perfect_memory  (** every load hits L1 (Figure 2, first bar) *)
  | Perfect_delinquent of Ssp_ir.Iref.Set.t
      (** the given static loads always hit L1 (Figure 2, second bar) *)

type t = {
  pipeline : pipeline;
  n_contexts : int;
  fetch_bundles : int;  (** total bundles fetched per cycle *)
  fetch_threads : int;  (** max threads sharing fetch in one cycle *)
  issue_bundles : int;
  issue_threads : int;
  int_units : int;
  mem_ports : int;
  br_units : int;
  expansion_queue_bundles : int;  (** in-order front-end queue, per thread *)
  rob_entries : int;  (** OOO *)
  rs_entries : int;  (** OOO *)
  retire_width : int;  (** OOO, instructions per cycle *)
  front_end_penalty : int;
      (** cycles of fetch bubble after a mispredicted branch or a pipeline
          flush (derived from the 12- vs 16-stage depth) *)
  l1 : cache_geom;
  l2 : cache_geom;
  l3 : cache_geom;
  mem_latency : int;
  fill_buffer_entries : int;
  gshare_entries : int;
  btb_entries : int;
  btb_ways : int;
  spawn_flush : bool;
      (** thread spawning incurs an exception-like pipeline flush in the
          triggering thread (no special hardware support, §4.4.1) *)
  chk_min_free : int;
      (** [chk.c] fires only when at least this many hardware contexts are
          free (1 = the paper's semantics; higher values suppress duplicate
          chain re-seeds) *)
  chk_refractory : int;
      (** minimum cycles between two [chk.c] firings of the same thread —
          the "judicious application" of §4.4.1 that keeps the
          exception-like flush cost bounded *)
  lib_latency : int;  (** live-in buffer access latency *)
  spawn_latency : int;  (** context-allocation latency of [spawn] *)
  memory_mode : memory_mode;
  spec_watchdog : int;
      (** max dynamic instructions per speculative thread before it is
          reclaimed *)
  max_cycles : int;  (** simulation safety net *)
}

val in_order : t
val out_of_order : t

val with_memory_mode : t -> memory_mode -> t

val scale_caches : t -> int -> t
(** Divide every cache size by the factor (for fast tests; geometry kept
    legal). *)

val fingerprint : t -> string
(** Canonical identity string covering every behaviour-affecting field;
    two configs fingerprint equal iff they describe the same machine.
    Content-addressed caching ({!Ssp_store}) keys adapted artifacts on
    it. *)

val pp : Format.formatter -> t -> unit
(** Renders the Table 1 parameter block. *)
