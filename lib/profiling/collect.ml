open Ssp_isa
module T = Ssp_telemetry.Telemetry

let collect ?(config = Ssp_machine.Config.in_order) ?max_instrs prog =
  T.with_span "profile" @@ fun () ->
  let profile = Profile.create () in
  let hierarchy = Ssp_sim.Hierarchy.create ~tprefix:"profile" config in
  let clock = ref 0 in
  (* Pre-size the block counters. *)
  List.iter
    (fun (f : Ssp_ir.Prog.func) ->
      Hashtbl.replace profile.Profile.blocks f.name
        (Array.make (Array.length f.blocks) 0))
    (Ssp_ir.Prog.funcs_in_order prog);
  let bump_block (i : Ssp_ir.Iref.t) =
    if i.ins = 0 then
      match Hashtbl.find_opt profile.Profile.blocks i.fn with
      | Some arr when i.blk < Array.length arr ->
        arr.(i.blk) <- arr.(i.blk) + 1
      | Some _ | None -> ()
  in
  let record_load iref addr =
    incr clock;
    let o = Ssp_sim.Hierarchy.access hierarchy ~now:!clock addr in
    let s =
      match Ssp_ir.Iref.Tbl.find_opt profile.Profile.loads iref with
      | Some s -> s
      | None ->
        let s =
          {
            Profile.accesses = 0;
            l1_hits = 0;
            l2_hits = 0;
            l3_hits = 0;
            mem_hits = 0;
            partial_hits = 0;
            miss_cycles = 0;
          }
        in
        Ssp_ir.Iref.Tbl.replace profile.Profile.loads iref s;
        s
    in
    s.Profile.accesses <- s.Profile.accesses + 1;
    (match o.Ssp_sim.Hierarchy.level with
    | Ssp_sim.Hierarchy.L1 -> s.Profile.l1_hits <- s.Profile.l1_hits + 1
    | Ssp_sim.Hierarchy.L2 -> s.Profile.l2_hits <- s.Profile.l2_hits + 1
    | Ssp_sim.Hierarchy.L3 -> s.Profile.l3_hits <- s.Profile.l3_hits + 1
    | Ssp_sim.Hierarchy.Mem -> s.Profile.mem_hits <- s.Profile.mem_hits + 1);
    if o.Ssp_sim.Hierarchy.partial then
      s.Profile.partial_hits <- s.Profile.partial_hits + 1;
    let beyond_l1 =
      max 0
        (o.Ssp_sim.Hierarchy.ready - !clock
        - config.Ssp_machine.Config.l1.Ssp_machine.Config.latency)
    in
    s.Profile.miss_cycles <- s.Profile.miss_cycles + beyond_l1
  in
  let record_branch iref taken =
    let s =
      match Ssp_ir.Iref.Tbl.find_opt profile.Profile.branches iref with
      | Some s -> s
      | None ->
        let s = { Profile.taken = 0; not_taken = 0 } in
        Ssp_ir.Iref.Tbl.replace profile.Profile.branches iref s;
        s
    in
    if taken then s.Profile.taken <- s.Profile.taken + 1
    else s.Profile.not_taken <- s.Profile.not_taken + 1
  in
  let record_call iref callee =
    let tbl =
      match Ssp_ir.Iref.Tbl.find_opt profile.Profile.calls iref with
      | Some t -> t
      | None ->
        let t = Hashtbl.create 4 in
        Ssp_ir.Iref.Tbl.replace profile.Profile.calls iref t;
        t
    in
    Hashtbl.replace tbl callee
      (1 + Option.value ~default:0 (Hashtbl.find_opt tbl callee))
  in
  let hook (env : Ssp_sim.Exec.env) (th : Ssp_sim.Thread.t) iref op ev =
    incr clock;
    profile.Profile.total_instrs <- profile.Profile.total_instrs + 1;
    bump_block iref;
    match ev with
    | Ssp_sim.Exec.Ev_load -> record_load iref env.Ssp_sim.Exec.ev_addr
    | Ssp_sim.Exec.Ev_store ->
      (* Stores touch the hierarchy (write-allocate) but are not load
         candidates. *)
      incr clock;
      ignore
        (Ssp_sim.Hierarchy.access hierarchy ~now:!clock
           env.Ssp_sim.Exec.ev_addr)
    | Ssp_sim.Exec.Ev_branch_taken | Ssp_sim.Exec.Ev_branch_not_taken -> (
      match op with
      | Op.Brnz _ | Op.Brz _ ->
        record_branch iref (ev = Ssp_sim.Exec.Ev_branch_taken)
      | Op.Br _ | _ -> ())
    | Ssp_sim.Exec.Ev_call ->
      (* The thread has already entered the callee. *)
      record_call iref th.Ssp_sim.Thread.fn
    | Ssp_sim.Exec.Ev_plain | Ssp_sim.Exec.Ev_prefetch | Ssp_sim.Exec.Ev_ret
    | Ssp_sim.Exec.Ev_halt | Ssp_sim.Exec.Ev_kill
    | Ssp_sim.Exec.Ev_chk_fired | Ssp_sim.Exec.Ev_chk_nofire
    | Ssp_sim.Exec.Ev_spawned | Ssp_sim.Exec.Ev_spawn_denied
    | Ssp_sim.Exec.Ev_lib ->
      ()
  in
  ignore (Ssp_sim.Funcsim.run ?max_instrs ~hook prog);
  if T.is_enabled () then
    T.count "profile.instrs" profile.Profile.total_instrs;
  profile
