(* Content-addressed artifact store: canonical binary codecs for the
   pipeline's durable artifacts inside a versioned, hash-sealed envelope,
   plus the on-disk cache and the cache-aware pipeline fast paths.

   Canonical means: hash-table contents are emitted in sorted key order
   and programs travel as their assembly text (the one serialization the
   repo already guarantees round-trips structurally). Decode -> encode is
   therefore byte-identical, which is what lets a blob's digest double as
   the artifact's identity. *)

module Iref = Ssp_ir.Iref
module Profile = Ssp_profiling.Profile
module T = Ssp_telemetry.Telemetry
module F = Ssp_fault.Fault

let format_version = 1
let magic = "SSPA"

let corrupt what = Ssp_ir.Error.raise_error ~pass:"store" what

(* ---- binary primitives ---- *)

module Bin = struct
  type writer = Buffer.t

  let writer () = Buffer.create 1024
  let contents = Buffer.contents
  let w_u8 b v = Buffer.add_uint8 b (v land 0xff)
  let w_int b v = Buffer.add_int64_be b (Int64.of_int v)
  let w_bool b v = w_u8 b (if v then 1 else 0)
  let w_float b f = Buffer.add_int64_be b (Int64.bits_of_float f)

  let w_str b s =
    w_int b (String.length s);
    Buffer.add_string b s

  type reader = { data : string; mutable pos : int }

  let reader data = { data; pos = 0 }

  (* Overflow-safe: lengths come off the wire, so [r.pos + n] may wrap
     for a hostile [n] near [max_int]. Compare against the remaining
     byte count instead. *)
  let need r n =
    if n < 0 || n > String.length r.data - r.pos then
      corrupt "payload truncated"

  let r_u8 r =
    need r 1;
    let v = Char.code r.data.[r.pos] in
    r.pos <- r.pos + 1;
    v

  let r_int r =
    need r 8;
    let v = Int64.to_int (String.get_int64_be r.data r.pos) in
    r.pos <- r.pos + 8;
    v

  let r_bool r =
    match r_u8 r with
    | 0 -> false
    | 1 -> true
    | _ -> corrupt "malformed boolean"

  let r_float r =
    need r 8;
    let v = Int64.float_of_bits (String.get_int64_be r.data r.pos) in
    r.pos <- r.pos + 8;
    v

  let r_str r =
    let n = r_int r in
    if n < 0 then corrupt "negative string length";
    need r n;
    let s = String.sub r.data r.pos n in
    r.pos <- r.pos + n;
    s

  let at_end r = r.pos = String.length r.data
  let expect_end r = if not (at_end r) then corrupt "trailing bytes in payload"
end

(* ---- envelope: magic | version | kind | payload length | payload | md5 ---- *)

let header_len = 4 + 2 + 1 + 8
let digest_len = 16

let kind_feedback_report = 5
let kind_feedback_aggregate = 6

let kind_name = function
  | 1 -> "program"
  | 2 -> "profile"
  | 3 -> "report"
  | 4 -> "adapted"
  | 5 -> "feedback report"
  | 6 -> "feedback aggregate"
  | _ -> "unknown"

let seal ~kind payload =
  let b = Buffer.create (String.length payload + header_len + digest_len) in
  Buffer.add_string b magic;
  Buffer.add_uint16_be b format_version;
  Buffer.add_uint8 b kind;
  Buffer.add_int64_be b (Int64.of_int (String.length payload));
  Buffer.add_string b payload;
  let body = Buffer.contents b in
  body ^ Digest.string body

(* Validate the whole envelope (magic, version, length, digest) without
   committing to an artifact kind — the shared core of [unseal] and of
   kind-agnostic integrity checks ([fsck], replica-write validation). *)
let unseal_any blob =
  let len = String.length blob in
  if len < header_len + digest_len then corrupt "blob truncated";
  if not (String.equal (String.sub blob 0 4) magic) then corrupt "bad magic";
  let ver = (Char.code blob.[4] lsl 8) lor Char.code blob.[5] in
  if ver <> format_version then
    corrupt (Printf.sprintf "format version %d (want %d)" ver format_version);
  let k = Char.code blob.[6] in
  let plen = Int64.to_int (String.get_int64_be blob 7) in
  if plen < 0 || plen <> len - header_len - digest_len then
    corrupt "payload length mismatch";
  let body = String.sub blob 0 (len - digest_len) in
  let dig = String.sub blob (len - digest_len) digest_len in
  if not (String.equal (Digest.string body) dig) then
    corrupt "content hash mismatch";
  (k, String.sub blob header_len plen)

let unseal ~kind blob =
  let k, payload = unseal_any blob in
  if k <> kind then
    corrupt
      (Printf.sprintf "artifact kind %s (want %s)" (kind_name k)
         (kind_name kind));
  payload

let blob_kind blob =
  match unseal_any blob with
  | k, _ -> Some k
  | exception Ssp_ir.Error.Error _ -> None

let blob_ok blob = blob_kind blob <> None

(* Generic sealing for payloads whose codecs live outside this module
   (the feedback plane's reports and aggregates): same envelope, same
   integrity guarantees, caller-owned payload format. *)
let seal_kind ~kind payload = seal ~kind payload
let unseal_kind ~kind blob = unseal ~kind blob

(* ---- iref / common sub-codecs ---- *)

let w_iref b (i : Iref.t) =
  Bin.w_str b i.Iref.fn;
  Bin.w_int b i.Iref.blk;
  Bin.w_int b i.Iref.ins

let r_iref r =
  let fn = Bin.r_str r in
  let blk = Bin.r_int r in
  let ins = Bin.r_int r in
  Iref.make fn blk ins

let w_list b xs emit =
  Bin.w_int b (List.length xs);
  List.iter (emit b) xs

let remaining (r : Bin.reader) = String.length r.Bin.data - r.Bin.pos

let r_list r read =
  let n = Bin.r_int r in
  (* Every element consumes at least one byte, so a count beyond the
     remaining payload can only be corruption — reject it before
     allocating anything proportional to it. *)
  if n < 0 || n > remaining r then corrupt "implausible list length";
  List.init n (fun _ -> read r)

(* ---- program ----

   The payload is the assembly text: the repo's one canonical program
   serialization, validated on parse, and stable under print -> parse ->
   print. *)

let encode_program p = seal ~kind:1 (Ssp_ir.Asm.to_string p)

let decode_program blob =
  let text = unseal ~kind:1 blob in
  match Ssp_ir.Asm.parse text with
  | p -> p
  | exception Ssp_ir.Asm.Error (msg, line) ->
    corrupt (Printf.sprintf "embedded program rejected: %s (line %d)" msg line)

(* ---- profile ---- *)

let sorted_tbl tbl fold cmp =
  fold (fun k v acc -> (k, v) :: acc) tbl [] |> List.sort (fun (a, _) (b, _) -> cmp a b)

let profile_payload (p : Profile.t) =
  let b = Bin.writer () in
  let blocks =
    sorted_tbl p.Profile.blocks
      (fun f tbl acc -> Hashtbl.fold f tbl acc)
      String.compare
  in
  w_list b blocks (fun b (fn, arr) ->
      Bin.w_str b fn;
      Bin.w_int b (Array.length arr);
      Array.iter (Bin.w_int b) arr);
  let branches =
    sorted_tbl p.Profile.branches
      (fun f tbl acc -> Iref.Tbl.fold f tbl acc)
      Iref.compare
  in
  w_list b branches (fun b (i, (s : Profile.branch_stats)) ->
      w_iref b i;
      Bin.w_int b s.Profile.taken;
      Bin.w_int b s.Profile.not_taken);
  let loads =
    sorted_tbl p.Profile.loads
      (fun f tbl acc -> Iref.Tbl.fold f tbl acc)
      Iref.compare
  in
  w_list b loads (fun b (i, (s : Profile.load_stats)) ->
      w_iref b i;
      Bin.w_int b s.Profile.accesses;
      Bin.w_int b s.Profile.l1_hits;
      Bin.w_int b s.Profile.l2_hits;
      Bin.w_int b s.Profile.l3_hits;
      Bin.w_int b s.Profile.mem_hits;
      Bin.w_int b s.Profile.partial_hits;
      Bin.w_int b s.Profile.miss_cycles);
  let calls =
    sorted_tbl p.Profile.calls
      (fun f tbl acc -> Iref.Tbl.fold f tbl acc)
      Iref.compare
  in
  w_list b calls (fun b (i, tbl) ->
      w_iref b i;
      let callees =
        sorted_tbl tbl (fun f t acc -> Hashtbl.fold f t acc) String.compare
      in
      w_list b callees (fun b (callee, n) ->
          Bin.w_str b callee;
          Bin.w_int b n));
  Bin.w_int b p.Profile.total_instrs;
  Bin.contents b

let encode_profile p = seal ~kind:2 (profile_payload p)

let profile_of_payload payload =
  let r = Bin.reader payload in
  let p = Profile.create () in
  List.iter
    (fun (fn, arr) -> Hashtbl.replace p.Profile.blocks fn arr)
    (r_list r (fun r ->
         let fn = Bin.r_str r in
         let n = Bin.r_int r in
         (* 8 bytes per counter; [Array.init] allocates up front, so
            bound the count by the payload actually present. *)
         if n < 0 || n > remaining r / 8 then corrupt "implausible block count";
         (fn, Array.init n (fun _ -> Bin.r_int r))));
  List.iter
    (fun (i, s) -> Iref.Tbl.replace p.Profile.branches i s)
    (r_list r (fun r ->
         let i = r_iref r in
         let taken = Bin.r_int r in
         let not_taken = Bin.r_int r in
         (i, { Profile.taken; not_taken })));
  List.iter
    (fun (i, s) -> Iref.Tbl.replace p.Profile.loads i s)
    (r_list r (fun r ->
         let i = r_iref r in
         let accesses = Bin.r_int r in
         let l1_hits = Bin.r_int r in
         let l2_hits = Bin.r_int r in
         let l3_hits = Bin.r_int r in
         let mem_hits = Bin.r_int r in
         let partial_hits = Bin.r_int r in
         let miss_cycles = Bin.r_int r in
         ( i,
           {
             Profile.accesses;
             l1_hits;
             l2_hits;
             l3_hits;
             mem_hits;
             partial_hits;
             miss_cycles;
           } )));
  List.iter
    (fun (i, tbl) -> Iref.Tbl.replace p.Profile.calls i tbl)
    (r_list r (fun r ->
         let i = r_iref r in
         let callees =
           r_list r (fun r ->
               let callee = Bin.r_str r in
               let n = Bin.r_int r in
               (callee, n))
         in
         let tbl = Hashtbl.create (max 4 (List.length callees)) in
         List.iter (fun (c, n) -> Hashtbl.replace tbl c n) callees;
         (i, tbl)));
  p.Profile.total_instrs <- Bin.r_int r;
  Bin.expect_end r;
  p

let decode_profile blob = profile_of_payload (unseal ~kind:2 blob)

(* ---- report ---- *)

let report_payload_into b (t : Ssp.Report.t) =
  w_list b t.Ssp.Report.slices (fun b (s : Ssp.Report.slice_info) ->
      Bin.w_str b s.Ssp.Report.fn;
      Bin.w_str b s.Ssp.Report.region;
      Bin.w_str b s.Ssp.Report.model;
      Bin.w_int b s.Ssp.Report.size;
      Bin.w_int b s.Ssp.Report.live_ins;
      Bin.w_bool b s.Ssp.Report.interprocedural;
      Bin.w_int b s.Ssp.Report.targets;
      Bin.w_int b s.Ssp.Report.triggers;
      Bin.w_int b s.Ssp.Report.trips;
      Bin.w_int b s.Ssp.Report.slack1;
      Bin.w_float b s.Ssp.Report.available_ilp;
      Bin.w_str b s.Ssp.Report.spawn_condition);
  w_list b t.Ssp.Report.diagnostics (fun b (d : Ssp.Report.diag) ->
      Bin.w_str b d.Ssp.Report.load;
      Bin.w_str b d.Ssp.Report.stage;
      Bin.w_str b d.Ssp.Report.action;
      Bin.w_str b d.Ssp.Report.detail);
  Bin.w_int b t.Ssp.Report.n_delinquent;
  Bin.w_float b t.Ssp.Report.coverage

let report_of_reader r =
  let slices =
    r_list r (fun r ->
        let fn = Bin.r_str r in
        let region = Bin.r_str r in
        let model = Bin.r_str r in
        let size = Bin.r_int r in
        let live_ins = Bin.r_int r in
        let interprocedural = Bin.r_bool r in
        let targets = Bin.r_int r in
        let triggers = Bin.r_int r in
        let trips = Bin.r_int r in
        let slack1 = Bin.r_int r in
        let available_ilp = Bin.r_float r in
        let spawn_condition = Bin.r_str r in
        {
          Ssp.Report.fn;
          region;
          model;
          size;
          live_ins;
          interprocedural;
          targets;
          triggers;
          trips;
          slack1;
          available_ilp;
          spawn_condition;
        })
  in
  let diagnostics =
    r_list r (fun r ->
        let load = Bin.r_str r in
        let stage = Bin.r_str r in
        let action = Bin.r_str r in
        let detail = Bin.r_str r in
        { Ssp.Report.load; stage; action; detail })
  in
  let n_delinquent = Bin.r_int r in
  let coverage = Bin.r_float r in
  { Ssp.Report.slices; n_delinquent; coverage; diagnostics }

let encode_report t =
  let b = Bin.writer () in
  report_payload_into b t;
  seal ~kind:3 (Bin.contents b)

let decode_report blob =
  let r = Bin.reader (unseal ~kind:3 blob) in
  let t = report_of_reader r in
  Bin.expect_end r;
  t

(* ---- adapted result ---- *)

type adapted = {
  prog : Ssp_ir.Prog.t;
  report : Ssp.Report.t;
  prefetch_map : Iref.t Iref.Map.t;
}

let encode_adapted a =
  let b = Bin.writer () in
  Bin.w_str b (Ssp_ir.Asm.to_string a.prog);
  report_payload_into b a.report;
  (* Map bindings are already sorted by key. *)
  w_list b (Iref.Map.bindings a.prefetch_map) (fun b (site, load) ->
      w_iref b site;
      w_iref b load);
  seal ~kind:4 (Bin.contents b)

let decode_adapted blob =
  let r = Bin.reader (unseal ~kind:4 blob) in
  let text = Bin.r_str r in
  let prog =
    match Ssp_ir.Asm.parse text with
    | p -> p
    | exception Ssp_ir.Asm.Error (msg, line) ->
      corrupt
        (Printf.sprintf "embedded adapted program rejected: %s (line %d)" msg
           line)
  in
  let report = report_of_reader r in
  let prefetch_map =
    List.fold_left
      (fun acc (site, load) -> Iref.Map.add site load acc)
      Iref.Map.empty
      (r_list r (fun r ->
           let site = r_iref r in
           let load = r_iref r in
           (site, load)))
  in
  Bin.expect_end r;
  { prog; report; prefetch_map }

(* ---- content hashes and cache keys ---- *)

let hash_program p = Digest.to_hex (Digest.string (Ssp_ir.Asm.to_string p))
let hash_profile p = Digest.to_hex (Digest.string (profile_payload p))
let cache_key parts = Digest.to_hex (Digest.string (String.concat "\x00" parts))

(* ---- on-disk cache ---- *)

(* Cache-lookup wall clock accumulated per domain: the serving layer
   attributes a request's store time to its trace hop by draining this
   after running the request on a pool worker, with no timing plumbed
   through the pipeline's return types. *)
let lookup_ms_key = Domain.DLS.new_key (fun () -> ref 0.)

let add_lookup_ms ms =
  let r = Domain.DLS.get lookup_ms_key in
  r := !r +. ms

let take_lookup_ms () =
  let r = Domain.DLS.get lookup_ms_key in
  let v = !r in
  r := 0.;
  v

(* Crash-injection sites simulating kill -9 at each step of [Cache.put]:
   the writer stops dead (tmp just created / half written / fully
   written but unrenamed) and the orphan stays behind, exactly as a
   killed process would leave it. The crash-recovery tests assert the
   published invariant: an unrenamed tmp is invisible to [find], the
   sweep reclaims it, and no reader ever sees partial bytes. *)
let crash_tmp_open = F.site "store.put.crash_tmp_open"
let crash_partial_write = F.site "store.put.crash_partial_write"
let crash_pre_rename = F.site "store.put.crash_pre_rename"

module Cache = struct
  (* [evictions] is atomic because [put] (and so [evict]) runs on pool
     domains when the server fans a batch out. *)
  type t = { dir : string; max_bytes : int; evictions : int Atomic.t }

  let default_dir () =
    match Sys.getenv_opt "SSPC_CACHE_DIR" with
    | Some d when d <> "" -> d
    | _ -> (
      match Sys.getenv_opt "XDG_CACHE_HOME" with
      | Some d when d <> "" -> Filename.concat d "sspc"
      | _ ->
        let home = Option.value ~default:"." (Sys.getenv_opt "HOME") in
        Filename.concat (Filename.concat home ".cache") "sspc")

  let rec mkdir_p dir =
    if not (Sys.file_exists dir) then begin
      mkdir_p (Filename.dirname dir);
      try Unix.mkdir dir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
    end

  let tmp_prefix = ".tmp."

  let is_tmp name =
    String.length name >= String.length tmp_prefix
    && String.equal (String.sub name 0 (String.length tmp_prefix)) tmp_prefix

  let default_sweep_grace_s = 600.

  (* Reclaim orphaned [.tmp.*] files left by crashed writers. The grace
     period protects in-flight writes from other processes: a live
     writer's tmp file is younger than any reasonable grace, a crashed
     one only gets older. *)
  let sweep ?(grace_s = default_sweep_grace_s) t =
    match Sys.readdir t.dir with
    | exception Sys_error _ -> 0
    | names ->
      let now = Unix.gettimeofday () in
      Array.fold_left
        (fun acc name ->
          if is_tmp name then begin
            let p = Filename.concat t.dir name in
            match Unix.stat p with
            | st
              when st.Unix.st_kind = Unix.S_REG
                   && now -. st.Unix.st_mtime >= grace_s -> (
              match Sys.remove p with
              | () ->
                T.count "store.sweep" 1;
                acc + 1
              | exception Sys_error _ -> acc)
            | _ -> acc
            | exception Unix.Unix_error _ -> acc
          end
          else acc)
        0 names

  let open_dir ?(max_bytes = 256 * 1024 * 1024)
      ?(sweep_grace_s = default_sweep_grace_s) dir =
    mkdir_p dir;
    let t = { dir; max_bytes = max 0 max_bytes; evictions = Atomic.make 0 } in
    ignore (sweep ~grace_s:sweep_grace_s t);
    t

  let dir t = t.dir
  let evictions t = Atomic.get t.evictions
  let path t key = Filename.concat t.dir (key ^ ".blob")

  let entries t =
    match Sys.readdir t.dir with
    | exception Sys_error _ -> []
    | names ->
      Array.to_list names
      |> List.filter_map (fun name ->
             if Filename.check_suffix name ".blob" then
               let p = Filename.concat t.dir name in
               match Unix.stat p with
               | st when st.Unix.st_kind = Unix.S_REG ->
                 Some (p, st.Unix.st_size, st.Unix.st_mtime)
               | _ | (exception Unix.Unix_error _) -> None
             else None)

  let size_bytes t = List.fold_left (fun acc (_, sz, _) -> acc + sz) 0 (entries t)
  let entry_count t = List.length (entries t)

  (* Every cached key, for offline scans (the feedback tuner walks the
     store for persisted reports). Order is unspecified. *)
  let keys t =
    List.map
      (fun (p, _, _) -> Filename.chop_suffix (Filename.basename p) ".blob")
      (entries t)

  let touch p =
    try Unix.utimes p 0.0 0.0 (* both zero: set atime/mtime to now *)
    with Unix.Unix_error _ -> ()

  let find t key =
    let p = path t key in
    match open_in_bin p with
    | exception Sys_error _ -> None
    | ic -> (
      (* The entry can shrink or vanish between the length query and the
         read (concurrent evict/replace from another process or domain);
         per the corrupt-entry-is-a-miss policy that is a miss, not an
         exception for the caller. *)
      match
        Fun.protect
          ~finally:(fun () -> close_in_noerr ic)
          (fun () -> really_input_string ic (in_channel_length ic))
      with
      | blob ->
        touch p;
        Some blob
      | exception (End_of_file | Sys_error _) -> None)

  let remove t key = try Sys.remove (path t key) with Sys_error _ -> ()

  (* Oldest-mtime-first eviction until the total fits the cap. *)
  let evict t =
    let es = entries t in
    let total = List.fold_left (fun acc (_, sz, _) -> acc + sz) 0 es in
    if total > t.max_bytes then begin
      let oldest_first =
        List.sort (fun (_, _, a) (_, _, b) -> compare a b) es
      in
      let excess = ref (total - t.max_bytes) in
      List.iter
        (fun (p, sz, _) ->
          if !excess > 0 then begin
            (try Sys.remove p with Sys_error _ -> ());
            excess := !excess - sz;
            Atomic.incr t.evictions;
            T.count "store.evict" 1
          end)
        oldest_first
    end

  (* Distinguishes concurrent writers of the same key inside one
     process (pool domains missing together): pid alone is not unique. *)
  let tmp_seq = Atomic.make 0

  let put t key blob =
    let tput = if !T.enabled then Unix.gettimeofday () else 0. in
    let tmp =
      Filename.concat t.dir
        (Printf.sprintf "%s%d.%d.%s" tmp_prefix (Unix.getpid ())
           (Atomic.fetch_and_add tmp_seq 1) key)
    in
    (try
       let oc = open_out_bin tmp in
       if F.fire crash_tmp_open then close_out_noerr oc
       else begin
         let crashed =
           Fun.protect
             ~finally:(fun () -> close_out_noerr oc)
             (fun () ->
               if F.fire crash_partial_write then begin
                 output_string oc
                   (String.sub blob 0 (String.length blob / 2));
                 true
               end
               else begin
                 output_string oc blob;
                 F.fire crash_pre_rename
               end)
         in
         if not crashed then begin
           Unix.rename tmp (path t key);
           T.count "store.put" 1
         end
       end
     with Sys_error _ | Unix.Unix_error _ ->
       (try Sys.remove tmp with Sys_error _ -> ()));
    evict t;
    if !T.enabled then
      T.record_hist "store.put_ms" ((Unix.gettimeofday () -. tput) *. 1000.)

  let get t key ~decode =
    let t0 = if !T.enabled then Unix.gettimeofday () else 0. in
    let r =
      match find t key with
      | None ->
        T.count "store.miss" 1;
        None
      | Some blob -> (
        match decode blob with
        | v ->
          T.count "store.hit" 1;
          Some v
        | exception Ssp_ir.Error.Error _ ->
          T.count "store.corrupt" 1;
          remove t key;
          None)
    in
    if !T.enabled then begin
      let ms = (Unix.gettimeofday () -. t0) *. 1000. in
      T.record_hist "store.get_ms" ms;
      add_lookup_ms ms
    end;
    r

  type fsck_report = {
    scanned : int;
    valid : int;
    corrupt_removed : int;
    tmp_removed : int;
    valid_bytes : int;
  }

  (* Offline verify/GC: every [.blob] must be a whole, digest-clean
     envelope (of any artifact kind); anything else is deleted — the
     same corrupt-entry-is-a-miss policy [get] applies lazily, applied
     eagerly to the whole directory. Orphaned tmp files are swept with
     the caller's grace (default 0: fsck is explicit, nothing in flight
     deserves protection). *)
  let fsck ?(grace_s = 0.) t =
    let tmp_removed = sweep ~grace_s t in
    let scanned = ref 0 in
    let valid = ref 0 in
    let corrupt_removed = ref 0 in
    let valid_bytes = ref 0 in
    List.iter
      (fun (p, sz, _) ->
        incr scanned;
        let ok =
          match open_in_bin p with
          | exception Sys_error _ -> false
          | ic -> (
            match
              Fun.protect
                ~finally:(fun () -> close_in_noerr ic)
                (fun () -> really_input_string ic (in_channel_length ic))
            with
            | blob -> blob_ok blob
            | exception (End_of_file | Sys_error _) -> false)
        in
        if ok then begin
          incr valid;
          valid_bytes := !valid_bytes + sz
        end
        else begin
          (try Sys.remove p with Sys_error _ -> ());
          incr corrupt_removed;
          T.count "store.fsck.corrupt" 1
        end)
      (entries t);
    {
      scanned = !scanned;
      valid = !valid;
      corrupt_removed = !corrupt_removed;
      tmp_removed;
      valid_bytes = !valid_bytes;
    }
end

(* ---- cache-aware pipeline fast paths ---- *)

(* The two cache-key recipes, exported so the serving layer can name the
   artifacts a request produced (replication ships them by key). *)
let profile_key ~config prog =
  cache_key
    [
      "profile";
      string_of_int format_version;
      hash_program prog;
      Ssp_machine.Config.fingerprint config;
    ]

let adapted_key ?(knobs = Ssp.Adapt.default_knobs) ?tuning ~config prog
    profile =
  let parts =
    [
      "adapted";
      string_of_int format_version;
      hash_program prog;
      hash_profile profile;
      Ssp_machine.Config.fingerprint config;
      Ssp.Adapt.knobs_string knobs;
    ]
  in
  (* Tuned artifacts live under their own version-stamped keys: version
     0 (untuned) keeps the historical key unchanged, and every published
     version keeps its key forever — the tuner only ever writes under a
     fresh version, never over an old one. *)
  let parts =
    match tuning with
    | Some (version, overrides) when version > 0 ->
      parts @ [ "tuned"; string_of_int version; overrides ]
    | _ -> parts
  in
  cache_key parts

let cached_profile ?cache ?(config = Ssp_machine.Config.in_order) prog =
  match cache with
  | None -> (Ssp_profiling.Collect.collect ~config prog, `Off)
  | Some c -> (
    let key = profile_key ~config prog in
    match Cache.get c key ~decode:decode_profile with
    | Some p -> (p, `Hit)
    | None ->
      let p = Ssp_profiling.Collect.collect ~config prog in
      Cache.put c key (encode_profile p);
      (p, `Miss))

let run_cached ?cache ?(jobs = 1) ?(knobs = Ssp.Adapt.default_knobs) ?tuning
    ~config prog profile =
  let overrides =
    match tuning with
    | Some (_, o) -> Some o
    | None -> None
  in
  let tuning_key =
    Option.map (fun (v, o) -> (v, Ssp.Adapt.overrides_string o)) tuning
  in
  match cache with
  | None ->
    (Ssp.Adapt.run_knobs ~jobs ?overrides ~knobs ~config prog profile, `Off)
  | Some c -> (
    let key = adapted_key ~knobs ?tuning:tuning_key ~config prog profile in
    match
      T.with_span "store.lookup" (fun () ->
          Cache.get c key ~decode:decode_adapted)
    with
    | Some a ->
      let delinquent =
        Ssp.Delinquent.identify ~coverage:knobs.Ssp.Adapt.coverage prog profile
      in
      ( {
          Ssp.Adapt.prog = a.prog;
          report = a.report;
          delinquent;
          choices = [];
          prefetch_map = a.prefetch_map;
        },
        `Hit )
    | None ->
      let r =
        Ssp.Adapt.run_knobs ~jobs ?overrides ~knobs ~config prog profile
      in
      Cache.put c key
        (encode_adapted
           {
             prog = r.Ssp.Adapt.prog;
             report = r.Ssp.Adapt.report;
             prefetch_map = r.Ssp.Adapt.prefetch_map;
           });
      (r, `Miss))
