(** Content-addressed artifact store.

    Versioned, integrity-checked binary serialization for the pipeline's
    three durable artifacts — programs ({!Ssp_ir.Prog.t}), profiles
    ({!Ssp_profiling.Profile.t}) and adaptation results (adapted program +
    {!Ssp.Report.t} + prefetch map) — plus an on-disk content-addressed
    cache keyed by [hash(program) x hash(profile) x canonicalized adapt
    configuration].

    Every blob is an envelope: 4-byte magic, format version, artifact
    kind, payload length, payload, and an MD5 content hash over
    everything before it. Decoding verifies all of them and raises a
    structured {!Ssp_ir.Error.Error} (pass ["store"]) on any mismatch, so
    a truncated or bit-flipped blob is always rejected, never
    misinterpreted. Encoding is canonical (hash-table contents are
    emitted in sorted order), so serialize -> deserialize -> serialize is
    byte-identical — the property the cache keys rely on.

    The cache publishes atomically (write to a dot-temporary in the same
    directory, then rename), caps its total size LRU-by-mtime, and treats
    a corrupt entry as a miss: the entry is deleted, the
    [store.corrupt] telemetry counter is bumped, and the caller
    recomputes. *)

val format_version : int
(** Bumped whenever any payload encoding changes; part of every envelope
    and of every cache key, so stale-format entries simply miss. *)

(** Low-level binary reader/writer used by every codec (and by the wire
    protocol of {!Ssp_server}). Integers are 8-byte big-endian, strings
    length-prefixed, floats bit-exact via their IEEE-754 image. Readers
    raise [Ssp_ir.Error.Error] (pass ["store"]) on underflow. *)
module Bin : sig
  type writer

  val writer : unit -> writer
  val contents : writer -> string
  val w_u8 : writer -> int -> unit
  val w_int : writer -> int -> unit
  val w_bool : writer -> bool -> unit
  val w_float : writer -> float -> unit
  val w_str : writer -> string -> unit

  type reader

  val reader : string -> reader
  val r_u8 : reader -> int
  val r_int : reader -> int
  val r_bool : reader -> bool
  val r_float : reader -> float
  val r_str : reader -> string
  val at_end : reader -> bool
  val expect_end : reader -> unit
  (** Raises if trailing bytes remain (catches mis-framed payloads). *)
end

(** {1 Artifact codecs} *)

val encode_program : Ssp_ir.Prog.t -> string
val decode_program : string -> Ssp_ir.Prog.t

val encode_profile : Ssp_profiling.Profile.t -> string
val decode_profile : string -> Ssp_profiling.Profile.t

val encode_report : Ssp.Report.t -> string
val decode_report : string -> Ssp.Report.t

type adapted = {
  prog : Ssp_ir.Prog.t;  (** the adapted binary *)
  report : Ssp.Report.t;
  prefetch_map : Ssp_ir.Iref.t Ssp_ir.Iref.Map.t;
}
(** The cacheable part of an {!Ssp.Adapt.result}: everything a served
    [adapt] or [sim] needs. (Selection-stage [choices] are not
    serialized; a cache hit carries an empty choice list.) *)

val encode_adapted : adapted -> string
val decode_adapted : string -> adapted

(** {1 Content hashes and cache keys} *)

val hash_program : Ssp_ir.Prog.t -> string
(** Hex digest of the program's canonical serialization. *)

val hash_profile : Ssp_profiling.Profile.t -> string

val cache_key : string list -> string
(** Hex digest of the joined key parts (order-sensitive). *)

val profile_key : config:Ssp_machine.Config.t -> Ssp_ir.Prog.t -> string
(** The cache key {!cached_profile} stores a profile under
    ([hash(program) x fingerprint(config)] plus the format version).
    Exported so the serving layer can name the artifact a request
    produced — cluster replication ships blobs by key. *)

val adapted_key :
  ?knobs:Ssp.Adapt.knobs ->
  ?tuning:int * string ->
  config:Ssp_machine.Config.t ->
  Ssp_ir.Prog.t ->
  Ssp_profiling.Profile.t ->
  string
(** The cache key {!run_cached} stores an adaptation result under.
    [tuning] is [(version, Adapt.overrides_string overrides)] for a
    feedback-tuned artifact: version 0 is the untuned key (unchanged
    from before tuning existed), and each published version keys its
    own immutable entry — the tuner never overwrites an old version. *)

val blob_kind : string -> int option
(** Artifact kind of a sealed blob after verifying the whole envelope
    (magic, format version, payload length, content hash) — [None] if
    any check fails. Kind-agnostic: accepts every artifact kind. *)

val blob_ok : string -> bool
(** [blob_kind blob <> None]: whole-envelope integrity, used to vet
    replica writes before they touch the cache. *)

val kind_name : int -> string
(** Human name of an artifact kind (["unknown"] for unassigned codes). *)

val kind_feedback_report : int
(** Envelope kind of a feedback attribution report ([Ssp_feedback]). *)

val kind_feedback_aggregate : int
(** Envelope kind of a per-workload feedback aggregate. *)

val seal_kind : kind:int -> string -> string
(** Seal a payload whose codec lives outside this module (the feedback
    plane) in the standard envelope. *)

val unseal_kind : kind:int -> string -> string
(** Verify the whole envelope and the expected kind; raises the usual
    structured [store] error otherwise. *)

(** {1 On-disk content-addressed cache} *)

val take_lookup_ms : unit -> float
(** Drain the calling domain's accumulated {!Cache.get} wall-clock
    (milliseconds; only accumulates while telemetry is enabled). The
    serving layer uses this to attribute a traced request's cache-lookup
    time to its per-hop latency breakdown. *)

module Cache : sig
  type t

  val default_dir : unit -> string
  (** [$SSPC_CACHE_DIR], else [$XDG_CACHE_HOME/sspc], else
      [~/.cache/sspc]. *)

  val open_dir : ?max_bytes:int -> ?sweep_grace_s:float -> string -> t
  (** Creates the directory (and parents) if missing. [max_bytes]
      (default 256 MiB) caps the total size of cached blobs; the
      least-recently-used entries (by mtime; hits touch) are evicted
      after each [put]. Opening also runs {!sweep} with
      [sweep_grace_s] (default 600 s), so orphans left by crashed
      writers stop leaking into the byte budget at the next startup. *)

  val dir : t -> string

  val sweep : ?grace_s:float -> t -> int
  (** Delete orphaned [.tmp.*] files older than [grace_s] (default
      600 s) and return how many were removed. The grace period keeps
      the sweep from racing a live writer in another process: an
      in-flight tmp file is always younger than the grace, a crashed
      writer's only ever gets older. Counted under [store.sweep]. *)

  val find : t -> string -> string option
  (** Raw blob by key; touches the entry's mtime on hit. No integrity
      check — use {!get}. *)

  val put : t -> string -> string -> unit
  (** Atomic write-then-rename publication, then LRU eviction. I/O
      errors are swallowed (the cache is best-effort; computation never
      fails because the cache is unwritable). *)

  val remove : t -> string -> unit

  val get : t -> string -> decode:(string -> 'a) -> 'a option
  (** {!find} + decode. A blob the decoder rejects is deleted and
      counted under the [store.corrupt] telemetry counter, and the call
      returns [None] — corruption is indistinguishable from a miss.
      Bumps [store.hit] / [store.miss] accordingly. *)

  val size_bytes : t -> int
  (** Total bytes of cached blobs currently on disk. *)

  val entry_count : t -> int

  val keys : t -> string list
  (** Every cached key (unspecified order) — offline scans, e.g. the
      feedback tuner walking a store for persisted reports. *)

  val evictions : t -> int
  (** Entries this handle has evicted under cache pressure since
      [open_dir] — the in-process view of the [store.evict] telemetry
      counter, visible in 'sspc stats' / 'sspc client stats' next to
      [store.corrupt] so cache pressure is observable even when a run
      did not ask for a trace. *)

  type fsck_report = {
    scanned : int;  (** [.blob] entries examined *)
    valid : int;  (** entries whose envelope verified clean *)
    corrupt_removed : int;  (** truncated/bit-flipped entries deleted *)
    tmp_removed : int;  (** orphaned [.tmp.*] files deleted *)
    valid_bytes : int;  (** total size of the surviving entries *)
  }

  val fsck : ?grace_s:float -> t -> fsck_report
  (** Offline verify/GC (the engine behind [sspc fsck]): checks every
      entry's sealed envelope — magic, format version, payload length,
      content hash — deletes anything that fails (eagerly applying the
      corrupt-entry-is-a-miss policy {!get} applies lazily), and sweeps
      orphaned tmp files with [grace_s] (default 0: fsck is explicit).
      A store that a writer was kill -9'd into is clean after one fsck:
      unrenamed tmp files go away and no partial entry survives,
      because publication is atomic-rename. Corrupt deletions are
      counted under [store.fsck.corrupt]. *)
end

(** {1 Cache-aware pipeline fast paths} *)

val cached_profile :
  ?cache:Cache.t ->
  ?config:Ssp_machine.Config.t ->
  Ssp_ir.Prog.t ->
  Ssp_profiling.Profile.t * [ `Hit | `Miss | `Off ]
(** {!Ssp_profiling.Collect.collect}, memoized by
    [hash(program) x config]. Profiling runs the whole program on the
    functional simulator, so for a long-lived service this is the
    dominant cost a warm cache removes. *)

val run_cached :
  ?cache:Cache.t ->
  ?jobs:int ->
  ?knobs:Ssp.Adapt.knobs ->
  ?tuning:int * Ssp.Adapt.overrides ->
  config:Ssp_machine.Config.t ->
  Ssp_ir.Prog.t ->
  Ssp_profiling.Profile.t ->
  Ssp.Adapt.result * [ `Hit | `Miss | `Off ]
(** {!Ssp.Adapt.run}, memoized by
    [hash(program) x hash(profile) x fingerprint(config) x knobs]. On a
    hit the adapted program, report and prefetch map are decoded from
    the store ([result.choices] is empty; the delinquent-load set is
    re-identified, which is cheap); the adapted program is byte-identical
    to what the cold run produced. On a miss the result is computed and
    published. [`Off] means no cache was supplied.

    [tuning:(version, overrides)] computes/serves the feedback-tuned
    artifact for that version: the overrides are passed to
    {!Ssp.Adapt.run} and the entry is keyed under the version-stamped
    {!adapted_key}, so tuned and untuned artifacts coexist and old
    versions stay immutable. *)
