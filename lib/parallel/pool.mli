(** A fixed-size domain pool with per-worker work-stealing deques.

    The pool exists so the tool's embarrassingly parallel layers — the
    per-delinquent-load slice/schedule/trigger pipeline and the
    workload × config simulation grid — can fan out across OCaml 5
    domains while keeping their outputs byte-identical to a sequential
    run:

    - {b Deterministic ordering}: [map] and [map_reduce] always deliver
      results in input order, regardless of which domain ran which task
      or in what order tasks finished.
    - {b Per-task exception capture}: a task that raises does not tear
      down the pool or the sibling tasks; the exception (with its
      backtrace) is re-raised in the caller once the batch has drained,
      and when several tasks raise, the one with the lowest input index
      wins — again matching what a sequential left-to-right run would
      have raised first.
    - {b Sequential fallback}: a pool created with [jobs <= 1] spawns no
      domains at all; [map] degrades to [List.map] on the caller's
      domain, so [jobs:1] is not merely "parallelism with one worker"
      but the exact sequential code path.

    Scheduling is work stealing: each worker owns a deque, takes its own
    work LIFO from the bottom, and steals FIFO from the top of a sibling
    when empty. Batches are pre-split round-robin so the common
    regular-grid case needs no stealing at all. The caller's domain
    participates as worker 0, so [create ~jobs:n] spawns [n - 1]
    domains. *)

type t

val create : jobs:int -> t
(** A pool executing up to [max 1 jobs] tasks concurrently ([jobs - 1]
    spawned domains plus the calling domain). Cheap for [jobs <= 1]. *)

val shutdown : t -> unit
(** Join the worker domains. Idempotent; the pool must be idle. *)

val with_pool : jobs:int -> (t -> 'a) -> 'a
(** [create], run, and [shutdown] (also on exception). *)

val jobs : t -> int
(** The concurrency the pool was created with (>= 1). *)

val default_jobs : unit -> int
(** [SSP_JOBS] when set and positive, else
    [Domain.recommended_domain_count ()]. *)

val map : t -> ('a -> 'b) -> 'a list -> 'b list
(** Like [List.map], with the calls distributed over the pool. Results
    are in input order; exceptions are re-raised lowest-index first. *)

val map_array : t -> ('a -> 'b) -> 'a array -> 'b array
(** [map] over arrays. *)

val mapi : t -> (int -> 'a -> 'b) -> 'a list -> 'b list
(** [map] passing each task its input index. *)

val map_reduce : t -> map:('a -> 'b) -> reduce:('b -> 'b -> 'b) -> 'b -> 'a list -> 'b
(** [map] then fold the results left-to-right in input order:
    [reduce (... (reduce init r0) ...) rn] — deterministic even for
    non-commutative [reduce]. *)

val run : t -> (unit -> unit) list -> unit
(** Execute side-effecting thunks, all of them even if some raise;
    re-raises the lowest-index exception after the batch drains. *)
