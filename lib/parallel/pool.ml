(* Fixed-size domain pool with per-worker work-stealing deques.

   One batch runs at a time ([map] and friends are not reentrant: a task
   must not submit to the pool it runs on). A batch is pre-split
   round-robin across the workers' deques; each worker drains its own
   deque LIFO from the bottom and, when empty, steals FIFO from the top
   of a sibling, so an unlucky split (one worker handed all the slow
   tasks) still balances. Tasks never enqueue more tasks, which keeps the
   deques fixed-capacity per batch and lets an empty sweep double as the
   batch-exit condition for workers.

   Determinism: tasks write into a per-batch results array at their input
   index; the caller re-assembles (and re-raises the lowest-index
   exception) after the batch drains, so scheduling order never shows in
   the output. *)

type deque = {
  lock : Mutex.t;
  mutable tasks : (unit -> unit) array;  (* this worker's slice of the batch *)
  mutable top : int;  (* steal end: next index a thief takes *)
  mutable bot : int;  (* owner end: one past the last remaining task *)
}

let deque_create () =
  { lock = Mutex.create (); tasks = [||]; top = 0; bot = 0 }

let deque_fill d tasks =
  Mutex.lock d.lock;
  d.tasks <- tasks;
  d.top <- 0;
  d.bot <- Array.length tasks;
  Mutex.unlock d.lock

(* Owner end (LIFO). *)
let deque_pop d =
  Mutex.lock d.lock;
  let t =
    if d.top < d.bot then begin
      d.bot <- d.bot - 1;
      Some d.tasks.(d.bot)
    end
    else None
  in
  Mutex.unlock d.lock;
  t

(* Thief end (FIFO). *)
let deque_steal d =
  Mutex.lock d.lock;
  let t =
    if d.top < d.bot then begin
      let x = d.tasks.(d.top) in
      d.top <- d.top + 1;
      Some x
    end
    else None
  in
  Mutex.unlock d.lock;
  t

type t = {
  njobs : int;
  deques : deque array;  (* index 0 = the calling domain *)
  mutable domains : unit Domain.t list;
  m : Mutex.t;
  work_ready : Condition.t;  (* a new batch generation, or stop *)
  batch_done : Condition.t;  (* remaining reached zero *)
  mutable generation : int;
  mutable stop : bool;
  remaining : int Atomic.t;
}

let jobs t = t.njobs

let default_jobs () =
  match Sys.getenv_opt "SSP_JOBS" with
  | Some s -> (
    match int_of_string_opt (String.trim s) with
    | Some n when n > 0 -> n
    | _ -> Domain.recommended_domain_count ())
  | None -> Domain.recommended_domain_count ()

let exec pool task =
  task ();
  (* The finisher wakes the caller; tasks themselves never raise (they are
     wrapped to capture exceptions into the results array). *)
  if Atomic.fetch_and_add pool.remaining (-1) = 1 then begin
    Mutex.lock pool.m;
    Condition.broadcast pool.batch_done;
    Mutex.unlock pool.m
  end

(* Drain: own deque first, then round-robin steal sweeps. A full empty
   sweep means the batch holds no more unstarted tasks (tasks never spawn
   tasks), so the worker can leave the batch. *)
let scavenge pool wid =
  let n = pool.njobs in
  let continue_ = ref true in
  while !continue_ do
    match deque_pop pool.deques.(wid) with
    | Some task -> exec pool task
    | None ->
      let stolen = ref None in
      let k = ref 1 in
      while !stolen = None && !k < n do
        stolen := deque_steal pool.deques.((wid + !k) mod n);
        incr k
      done;
      (match !stolen with
      | Some task -> exec pool task
      | None -> continue_ := false)
  done

let worker pool wid =
  let last_gen = ref 0 in
  let running = ref true in
  while !running do
    Mutex.lock pool.m;
    while (not pool.stop) && pool.generation = !last_gen do
      Condition.wait pool.work_ready pool.m
    done;
    let stop = pool.stop in
    last_gen := pool.generation;
    Mutex.unlock pool.m;
    if stop then running := false else scavenge pool wid
  done

let create ~jobs =
  let njobs = max 1 jobs in
  let pool =
    {
      njobs;
      deques = Array.init njobs (fun _ -> deque_create ());
      domains = [];
      m = Mutex.create ();
      work_ready = Condition.create ();
      batch_done = Condition.create ();
      generation = 0;
      stop = false;
      remaining = Atomic.make 0;
    }
  in
  if njobs > 1 then
    pool.domains <-
      List.init (njobs - 1) (fun i ->
          Domain.spawn (fun () -> worker pool (i + 1)));
  pool

let shutdown pool =
  Mutex.lock pool.m;
  pool.stop <- true;
  Condition.broadcast pool.work_ready;
  Mutex.unlock pool.m;
  List.iter Domain.join pool.domains;
  pool.domains <- []

let with_pool ~jobs f =
  let pool = create ~jobs in
  Fun.protect ~finally:(fun () -> shutdown pool) (fun () -> f pool)

type 'b slot = Pending | Done of 'b | Raised of exn * Printexc.raw_backtrace

let run_batch pool (tasks : (unit -> unit) array) =
  let n = Array.length tasks in
  if n > 0 then begin
    (* Round-robin pre-split: task i sits in deque (i mod njobs), and the
       per-deque slices preserve relative order for FIFO thieves. *)
    let per = Array.make pool.njobs [] in
    for i = n - 1 downto 0 do
      let w = i mod pool.njobs in
      per.(w) <- tasks.(i) :: per.(w)
    done;
    Atomic.set pool.remaining n;
    Array.iteri (fun w ts -> deque_fill pool.deques.(w) (Array.of_list ts)) per;
    Mutex.lock pool.m;
    pool.generation <- pool.generation + 1;
    Condition.broadcast pool.work_ready;
    Mutex.unlock pool.m;
    (* The caller is worker 0. *)
    scavenge pool 0;
    Mutex.lock pool.m;
    while Atomic.get pool.remaining > 0 do
      Condition.wait pool.batch_done pool.m
    done;
    Mutex.unlock pool.m
  end

let map_array pool f xs =
  let n = Array.length xs in
  if pool.njobs <= 1 || pool.domains = [] || n <= 1 then Array.map f xs
  else begin
    let results = Array.make n Pending in
    let task i () =
      match f xs.(i) with
      | v -> results.(i) <- Done v
      | exception e ->
        results.(i) <- Raised (e, Printexc.get_raw_backtrace ())
    in
    run_batch pool (Array.init n task);
    Array.map
      (function
        | Done v -> v
        | Raised (e, bt) -> Printexc.raise_with_backtrace e bt
        | Pending -> assert false)
      results
  end

let map pool f xs = Array.to_list (map_array pool f (Array.of_list xs))

let mapi pool f xs =
  let xs = Array.of_list xs in
  Array.to_list (map_array pool (fun (i, x) -> f i x) (Array.mapi (fun i x -> (i, x)) xs))

let map_reduce pool ~map:f ~reduce init xs =
  List.fold_left reduce init (map pool f xs)

let run pool thunks =
  (* All thunks execute even when some raise; surface the lowest-index
     failure afterwards, like a sequential left-to-right run would. *)
  let outcomes = map pool (fun t -> try Ok (t ()) with e -> Error (e, Printexc.get_raw_backtrace ())) thunks in
  List.iter
    (function Ok () | Error _ -> ())
    outcomes;
  match List.find_opt (function Error _ -> true | Ok () -> false) outcomes with
  | Some (Error (e, bt)) -> Printexc.raise_with_backtrace e bt
  | _ -> ()
