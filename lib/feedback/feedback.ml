module T = Ssp_telemetry.Telemetry
module Store = Ssp_store.Store
module Bin = Store.Bin
module Iref = Ssp_ir.Iref

let err what = Ssp_ir.Error.raise_error ~pass:"feedback" what

type prog_id = Named of string | Inline of string

type load_stat = {
  fl_load : Iref.t;
  fl_issued : int;
  fl_useful : int;
  fl_late : int;
  fl_early_evicted : int;
  fl_redundant : int;
  fl_dropped : int;
  fl_unused : int;
  fl_demand_accesses : int;
  fl_demand_hits : int;
  fl_lead_hist : T.hist_summary;
}

type report = {
  fr_prog : prog_id;
  fr_scale : int;
  fr_pipeline : string;
  fr_version : int;
  fr_cycles : int;
  fr_loads : load_stat list;
}

let report_of_attrib ~prog ~scale ~pipeline ~version ~cycles
    (s : Ssp_sim.Attrib.summary) =
  let loads =
    List.map
      (fun (l : Ssp_sim.Attrib.load_summary) ->
        {
          fl_load = l.ls_load;
          fl_issued = l.ls_issued;
          fl_useful = l.ls_useful;
          fl_late = l.ls_late;
          fl_early_evicted = l.ls_early_evicted;
          fl_redundant = l.ls_redundant;
          fl_dropped = l.ls_dropped;
          fl_unused = l.ls_unused;
          fl_demand_accesses = l.ls_demand_accesses;
          fl_demand_hits = l.ls_demand_hits;
          fl_lead_hist = l.ls_lead_hist;
        })
      s.Ssp_sim.Attrib.loads
  in
  (* Canonical load order: the digest store key relies on identical runs
     serializing identically. *)
  let loads =
    List.sort (fun a b -> Iref.compare a.fl_load b.fl_load) loads
  in
  {
    fr_prog = prog;
    fr_scale = scale;
    fr_pipeline = pipeline;
    fr_version = version;
    fr_cycles = cycles;
    fr_loads = loads;
  }

(* ---- codecs ---- *)

let w_iref b (i : Iref.t) =
  Bin.w_str b i.Iref.fn;
  Bin.w_int b i.Iref.blk;
  Bin.w_int b i.Iref.ins

let r_iref r =
  let fn = Bin.r_str r in
  let blk = Bin.r_int r in
  let ins = Bin.r_int r in
  Iref.make fn blk ins

let w_hist b (h : T.hist_summary) =
  Bin.w_int b h.T.hs_n;
  Bin.w_float b h.T.hs_sum;
  Bin.w_float b h.T.hs_min;
  Bin.w_float b h.T.hs_max;
  Bin.w_int b (Array.length h.T.hs_counts);
  Array.iter (Bin.w_int b) h.T.hs_counts

let r_hist r =
  let hs_n = Bin.r_int r in
  let hs_sum = Bin.r_float r in
  let hs_min = Bin.r_float r in
  let hs_max = Bin.r_float r in
  let n = Bin.r_int r in
  if n <> T.hist_bucket_count then err "histogram bucket layout mismatch";
  let hs_counts = Array.init n (fun _ -> Bin.r_int r) in
  { T.hs_n; hs_sum; hs_min; hs_max; hs_counts }

let w_prog_id b = function
  | Named n ->
    Bin.w_u8 b 1;
    Bin.w_str b n
  | Inline src ->
    Bin.w_u8 b 2;
    Bin.w_str b src

let r_prog_id r =
  match Bin.r_u8 r with
  | 1 -> Named (Bin.r_str r)
  | 2 -> Inline (Bin.r_str r)
  | k -> err (Printf.sprintf "unknown program-identity tag %d" k)

let w_load_stat b l =
  w_iref b l.fl_load;
  Bin.w_int b l.fl_issued;
  Bin.w_int b l.fl_useful;
  Bin.w_int b l.fl_late;
  Bin.w_int b l.fl_early_evicted;
  Bin.w_int b l.fl_redundant;
  Bin.w_int b l.fl_dropped;
  Bin.w_int b l.fl_unused;
  Bin.w_int b l.fl_demand_accesses;
  Bin.w_int b l.fl_demand_hits;
  w_hist b l.fl_lead_hist

let r_load_stat r =
  let fl_load = r_iref r in
  let fl_issued = Bin.r_int r in
  let fl_useful = Bin.r_int r in
  let fl_late = Bin.r_int r in
  let fl_early_evicted = Bin.r_int r in
  let fl_redundant = Bin.r_int r in
  let fl_dropped = Bin.r_int r in
  let fl_unused = Bin.r_int r in
  let fl_demand_accesses = Bin.r_int r in
  let fl_demand_hits = Bin.r_int r in
  let fl_lead_hist = r_hist r in
  {
    fl_load;
    fl_issued;
    fl_useful;
    fl_late;
    fl_early_evicted;
    fl_redundant;
    fl_dropped;
    fl_unused;
    fl_demand_accesses;
    fl_demand_hits;
    fl_lead_hist;
  }

let encode_report rep =
  let b = Bin.writer () in
  w_prog_id b rep.fr_prog;
  Bin.w_int b rep.fr_scale;
  Bin.w_str b rep.fr_pipeline;
  Bin.w_int b rep.fr_version;
  Bin.w_int b rep.fr_cycles;
  Bin.w_int b (List.length rep.fr_loads);
  List.iter (w_load_stat b) rep.fr_loads;
  Store.seal_kind ~kind:Store.kind_feedback_report (Bin.contents b)

let decode_report blob =
  let r = Bin.reader (Store.unseal_kind ~kind:Store.kind_feedback_report blob) in
  let fr_prog = r_prog_id r in
  let fr_scale = Bin.r_int r in
  let fr_pipeline = Bin.r_str r in
  let fr_version = Bin.r_int r in
  let fr_cycles = Bin.r_int r in
  let n = Bin.r_int r in
  let fr_loads = List.init n (fun _ -> r_load_stat r) in
  Bin.expect_end r;
  { fr_prog; fr_scale; fr_pipeline; fr_version; fr_cycles; fr_loads }

let report_store_key blob = Store.cache_key [ "feedback-report"; blob ]

(* ---- aggregation ---- *)

type agg_load = {
  al_issued : float;
  al_useful : float;
  al_late : float;
  al_early_evicted : float;
  al_redundant : float;
  al_dropped : float;
  al_unused : float;
  al_demand_accesses : float;
  al_demand_hits : float;
  al_lead_hist : T.hist_summary;
}

type aggregate = {
  ag_version : int;
  ag_overrides : Ssp.Adapt.overrides;
  ag_last_action : string;
  ag_reports : int;
  ag_total_reports : int;
  ag_stale : int;
  ag_last_report_s : float;
  ag_cycles : float;
  ag_loads : agg_load Iref.Map.t;
}

let empty_aggregate =
  {
    ag_version = 0;
    ag_overrides = Ssp.Adapt.no_overrides;
    ag_last_action = "";
    ag_reports = 0;
    ag_total_reports = 0;
    ag_stale = 0;
    ag_last_report_s = 0.;
    ag_cycles = 0.;
    ag_loads = Iref.Map.empty;
  }

let default_decay = 0.9

let empty_agg_load () =
  {
    al_issued = 0.;
    al_useful = 0.;
    al_late = 0.;
    al_early_evicted = 0.;
    al_redundant = 0.;
    al_dropped = 0.;
    al_unused = 0.;
    al_demand_accesses = 0.;
    al_demand_hits = 0.;
    al_lead_hist = T.empty_hist_summary ();
  }

let decay_load d a =
  {
    a with
    al_issued = a.al_issued *. d;
    al_useful = a.al_useful *. d;
    al_late = a.al_late *. d;
    al_early_evicted = a.al_early_evicted *. d;
    al_redundant = a.al_redundant *. d;
    al_dropped = a.al_dropped *. d;
    al_unused = a.al_unused *. d;
    al_demand_accesses = a.al_demand_accesses *. d;
    al_demand_hits = a.al_demand_hits *. d;
  }

let merge_load a (l : load_stat) =
  let f = float_of_int in
  {
    al_issued = a.al_issued +. f l.fl_issued;
    al_useful = a.al_useful +. f l.fl_useful;
    al_late = a.al_late +. f l.fl_late;
    al_early_evicted = a.al_early_evicted +. f l.fl_early_evicted;
    al_redundant = a.al_redundant +. f l.fl_redundant;
    al_dropped = a.al_dropped +. f l.fl_dropped;
    al_unused = a.al_unused +. f l.fl_unused;
    al_demand_accesses = a.al_demand_accesses +. f l.fl_demand_accesses;
    al_demand_hits = a.al_demand_hits +. f l.fl_demand_hits;
    al_lead_hist = T.merge_hist_summary a.al_lead_hist l.fl_lead_hist;
  }

let ingest ?now ?(decay = default_decay) agg rep =
  let now = match now with Some t -> t | None -> Unix.gettimeofday () in
  if rep.fr_version <> agg.ag_version then
    {
      agg with
      ag_stale = agg.ag_stale + 1;
      ag_total_reports = agg.ag_total_reports + 1;
      ag_last_report_s = now;
    }
  else
    (* Decay everything first (including loads absent from this report),
       then add the fresh counts — ratios are decay-invariant. *)
    let loads = Iref.Map.map (decay_load decay) agg.ag_loads in
    let loads =
      List.fold_left
        (fun m l ->
          let cur =
            match Iref.Map.find_opt l.fl_load m with
            | Some a -> a
            | None -> empty_agg_load ()
          in
          Iref.Map.add l.fl_load (merge_load cur l) m)
        loads rep.fr_loads
    in
    {
      agg with
      ag_reports = agg.ag_reports + 1;
      ag_total_reports = agg.ag_total_reports + 1;
      ag_last_report_s = now;
      ag_cycles = (agg.ag_cycles *. decay) +. float_of_int rep.fr_cycles;
      ag_loads = loads;
    }

let fold_reports ?now ?decay agg reports =
  List.fold_left (fun a r -> ingest ?now ?decay a r) agg reports

let reset_loads agg =
  { agg with ag_reports = 0; ag_cycles = 0.; ag_loads = Iref.Map.empty }

let encode_aggregate agg =
  let b = Bin.writer () in
  Bin.w_int b agg.ag_version;
  let ov = Iref.Map.bindings agg.ag_overrides in
  Bin.w_int b (List.length ov);
  List.iter
    (fun (iref, (lk : Ssp.Adapt.load_knob)) ->
      w_iref b iref;
      Bin.w_bool b lk.Ssp.Adapt.lk_skip;
      Bin.w_u8 b
        (match lk.Ssp.Adapt.lk_model with
        | `Keep -> 0
        | `Basic -> 1
        | `Chaining -> 2);
      Bin.w_int b lk.Ssp.Adapt.lk_unroll)
    ov;
  Bin.w_str b agg.ag_last_action;
  Bin.w_int b agg.ag_reports;
  Bin.w_int b agg.ag_total_reports;
  Bin.w_int b agg.ag_stale;
  Bin.w_float b agg.ag_last_report_s;
  Bin.w_float b agg.ag_cycles;
  let loads = Iref.Map.bindings agg.ag_loads in
  Bin.w_int b (List.length loads);
  List.iter
    (fun (iref, a) ->
      w_iref b iref;
      Bin.w_float b a.al_issued;
      Bin.w_float b a.al_useful;
      Bin.w_float b a.al_late;
      Bin.w_float b a.al_early_evicted;
      Bin.w_float b a.al_redundant;
      Bin.w_float b a.al_dropped;
      Bin.w_float b a.al_unused;
      Bin.w_float b a.al_demand_accesses;
      Bin.w_float b a.al_demand_hits;
      w_hist b a.al_lead_hist)
    loads;
  Store.seal_kind ~kind:Store.kind_feedback_aggregate (Bin.contents b)

let decode_aggregate blob =
  let r =
    Bin.reader (Store.unseal_kind ~kind:Store.kind_feedback_aggregate blob)
  in
  let ag_version = Bin.r_int r in
  let nov = Bin.r_int r in
  let ag_overrides =
    List.init nov (fun _ ->
        let iref = r_iref r in
        let lk_skip = Bin.r_bool r in
        let lk_model =
          match Bin.r_u8 r with
          | 0 -> `Keep
          | 1 -> `Basic
          | 2 -> `Chaining
          | k -> err (Printf.sprintf "unknown model tag %d" k)
        in
        let lk_unroll = Bin.r_int r in
        (iref, { Ssp.Adapt.lk_skip; lk_model; lk_unroll }))
    |> List.to_seq |> Iref.Map.of_seq
  in
  let ag_last_action = Bin.r_str r in
  let ag_reports = Bin.r_int r in
  let ag_total_reports = Bin.r_int r in
  let ag_stale = Bin.r_int r in
  let ag_last_report_s = Bin.r_float r in
  let ag_cycles = Bin.r_float r in
  let nl = Bin.r_int r in
  let ag_loads =
    List.init nl (fun _ ->
        let iref = r_iref r in
        let al_issued = Bin.r_float r in
        let al_useful = Bin.r_float r in
        let al_late = Bin.r_float r in
        let al_early_evicted = Bin.r_float r in
        let al_redundant = Bin.r_float r in
        let al_dropped = Bin.r_float r in
        let al_unused = Bin.r_float r in
        let al_demand_accesses = Bin.r_float r in
        let al_demand_hits = Bin.r_float r in
        let al_lead_hist = r_hist r in
        ( iref,
          {
            al_issued;
            al_useful;
            al_late;
            al_early_evicted;
            al_redundant;
            al_dropped;
            al_unused;
            al_demand_accesses;
            al_demand_hits;
            al_lead_hist;
          } ))
    |> List.to_seq |> Iref.Map.of_seq
  in
  Bin.expect_end r;
  {
    ag_version;
    ag_overrides;
    ag_last_action;
    ag_reports;
    ag_total_reports;
    ag_stale;
    ag_last_report_s;
    ag_cycles;
    ag_loads;
  }

let aggregate_key ~config ~knobs prog profile =
  Store.cache_key
    [
      "feedback";
      string_of_int Store.format_version;
      Store.hash_program prog;
      Store.hash_profile profile;
      Ssp_machine.Config.fingerprint config;
      Ssp.Adapt.knobs_string knobs;
    ]

(* ---- derived ratios ---- *)

let frac num den = if den <= 0. then 0. else num /. den

(* Attribution counts issued / redundant / dropped disjointly: a
   prefetch squashed because its line was already present is "redundant"
   and never "issued". Ratios therefore run over all attempts. *)
let attempts a = a.al_issued +. a.al_redundant +. a.al_dropped
let redundant_frac a = frac a.al_redundant (attempts a)
let late_frac a = frac a.al_late (a.al_useful +. a.al_late)
let accuracy a = frac a.al_useful (attempts a)

let coverage_frac a =
  let misses = a.al_demand_accesses -. a.al_demand_hits in
  frac (a.al_useful +. a.al_late) (misses +. a.al_useful +. a.al_late)

let timeliness a = frac a.al_useful (a.al_useful +. a.al_late)

(* ---- tuning ---- *)

type action = { act_load : Iref.t; act_what : string; act_why : string }

let action_to_string a =
  Printf.sprintf "%s: %s (%s)" (Iref.to_string a.act_load) a.act_what a.act_why

let default_min_reports = 3
let default_min_samples = 16.
let unroll_cap = 8

(* One monotone step for one load. The knob lattice is
   Keep < Chaining < Basic < skip on the model axis (rightward moves
   only) and strictly-increasing unroll up to [unroll_cap] — finite, so
   repeated planning always reaches a fixed point. *)
let step_load ~knobs (cur : Ssp.Adapt.load_knob) a :
    (Ssp.Adapt.load_knob * string * string) option =
  let rf = redundant_frac a in
  let lf = late_frac a in
  if cur.Ssp.Adapt.lk_skip then None (* skip is absorbing *)
  else if rf >= 0.8 then
    (* Mostly redundant: step toward skip. A load already demoted to the
       basic model that still prefetches present lines gets dropped. *)
    let why = Printf.sprintf "redundant %.0f%% of issues" (100. *. rf) in
    match cur.Ssp.Adapt.lk_model with
    | `Basic -> Some ({ cur with Ssp.Adapt.lk_skip = true }, "skip", why)
    | `Keep | `Chaining ->
      Some ({ cur with Ssp.Adapt.lk_model = `Basic }, "model=basic", why)
  else if rf >= 0.5 then
    match cur.Ssp.Adapt.lk_model with
    | `Keep | `Chaining ->
      Some
        ( { cur with Ssp.Adapt.lk_model = `Basic },
          "model=basic",
          Printf.sprintf "redundant %.0f%% of issues" (100. *. rf) )
    | `Basic -> None
  else if lf >= 0.5 && rf < 0.3 then
    (* Chronically late and not wasteful: run further ahead — promote to
       the chaining model first (Adapt clamps the promotion by the
       load's degradation-ladder ceiling), then widen the lookahead. *)
    let why = Printf.sprintf "late %.0f%% of covered uses" (100. *. lf) in
    match cur.Ssp.Adapt.lk_model with
    | `Keep -> Some ({ cur with Ssp.Adapt.lk_model = `Chaining }, "model=chaining", why)
    | `Chaining | `Basic ->
      let base =
        if cur.Ssp.Adapt.lk_unroll > 0 then cur.Ssp.Adapt.lk_unroll
        else max 1 knobs.Ssp.Adapt.unroll
      in
      let next = min unroll_cap (base * 2) in
      if next > base || cur.Ssp.Adapt.lk_unroll = 0 then
        Some
          ( { cur with Ssp.Adapt.lk_unroll = next },
            Printf.sprintf "unroll=%d" next,
            why )
      else None
  else None

let plan ?(min_reports = default_min_reports)
    ?(min_samples = default_min_samples) ~knobs agg =
  if agg.ag_reports < min_reports then (agg.ag_overrides, [])
  else
    Iref.Map.fold
      (fun load a (ov, actions) ->
        if attempts a < min_samples then (ov, actions)
        else
          let cur =
            match Iref.Map.find_opt load ov with
            | Some k -> k
            | None -> Ssp.Adapt.keep_knob
          in
          match step_load ~knobs cur a with
          | None -> (ov, actions)
          | Some (knob, what, why) ->
            ( Iref.Map.add load knob ov,
              { act_load = load; act_what = what; act_why = why } :: actions ))
      agg.ag_loads
      (agg.ag_overrides, [])
    |> fun (ov, actions) -> (ov, List.rev actions)

let publish ?now agg ~overrides ~actions =
  let now = match now with Some t -> t | None -> Unix.gettimeofday () in
  let summary =
    Printf.sprintf "v%d: %s" (agg.ag_version + 1)
      (String.concat "; " (List.map action_to_string actions))
  in
  reset_loads
    {
      agg with
      ag_version = agg.ag_version + 1;
      ag_overrides = overrides;
      ag_last_action = summary;
      ag_last_report_s = (if agg.ag_last_report_s > 0. then agg.ag_last_report_s else now);
    }

type tuned = {
  td_aggregate : aggregate;
  td_actions : action list;
  td_result : Ssp.Adapt.result;
  td_status : [ `Hit | `Miss | `Off ];
}

let tune_reports ?cache ?now ?min_reports ?min_samples
    ?(knobs = Ssp.Adapt.default_knobs) ~config prog profile reports =
  let key = aggregate_key ~config ~knobs prog profile in
  let live =
    match cache with
    | Some c -> (
      match Store.Cache.get c key ~decode:decode_aggregate with
      | Some a -> a
      | None -> empty_aggregate)
    | None -> empty_aggregate
  in
  (* Deterministic decision input: rebuild from the persisted report
     set in canonical (encoded-bytes) order, ignoring the live
     arrival-order accumulation. Same store contents => same plan =>
     byte-identical published artifact, daemon-side or offline. *)
  let reports =
    List.sort
      (fun a b -> String.compare (encode_report a) (encode_report b))
      reports
  in
  let agg = fold_reports ?now (reset_loads live) reports in
  let overrides, actions = plan ?min_reports ?min_samples ~knobs agg in
  if actions = [] then None
  else
    let pub = publish ?now agg ~overrides ~actions in
    let result, status =
      Store.run_cached ?cache ~knobs
        ~tuning:(pub.ag_version, overrides)
        ~config prog profile
    in
    (match cache with
    | Some c -> Store.Cache.put c key (encode_aggregate pub)
    | None -> ());
    Some
      { td_aggregate = pub; td_actions = actions; td_result = result;
        td_status = status }

(* ---- offline store walking ---- *)

let reports_in_store cache =
  Store.Cache.keys cache
  |> List.filter_map (fun key ->
         match Store.Cache.find cache key with
         | None -> None
         | Some blob ->
           if Store.blob_kind blob = Some Store.kind_feedback_report then
             match decode_report blob with
             | rep -> Some (key, rep)
             | exception _ -> None
           else None)
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let config_of_pipeline = function
  | "ooo" -> Ssp_machine.Config.out_of_order
  | _ -> Ssp_machine.Config.in_order

let compile_id id ~scale =
  match id with
  | Named name -> (
    match Ssp_workloads.Suite.find name with
    | w -> Ssp_minic.Frontend.compile (w.Ssp_workloads.Workload.source scale)
    | exception Not_found -> err ("unknown workload " ^ name))
  | Inline src -> Ssp_minic.Frontend.compile src

type store_tune = {
  st_prog : prog_id;
  st_scale : int;
  st_pipeline : string;
  st_reports : int;
  st_aggregate : aggregate;
  st_tuned : tuned option;
}

let tune_store ?now ?min_reports ?min_samples ?knobs cache =
  let groups = Hashtbl.create 7 in
  List.iter
    (fun (_, rep) ->
      let id = (rep.fr_prog, rep.fr_scale, rep.fr_pipeline) in
      Hashtbl.replace groups id
        (rep :: (try Hashtbl.find groups id with Not_found -> [])))
    (reports_in_store cache);
  Hashtbl.fold (fun id reps acc -> (id, reps) :: acc) groups []
  |> List.sort compare
  |> List.map (fun ((id, scale, pipeline), reps) ->
         let config = config_of_pipeline pipeline in
         let prog = compile_id id ~scale in
         let profile, _ = Store.cached_profile ~cache ~config prog in
         let tuned =
           tune_reports ~cache ?now ?min_reports ?min_samples ?knobs ~config
             prog profile reps
         in
         let aggregate =
           match tuned with
           | Some t -> t.td_aggregate
           | None -> (
             let key =
               aggregate_key ~config
                 ~knobs:(Option.value knobs ~default:Ssp.Adapt.default_knobs)
                 prog profile
             in
             match Store.Cache.get cache key ~decode:decode_aggregate with
             | Some a -> a
             | None -> fold_reports ?now empty_aggregate reps)
         in
         {
           st_prog = id;
           st_scale = scale;
           st_pipeline = pipeline;
           st_reports = List.length reps;
           st_aggregate = aggregate;
           st_tuned = tuned;
         })
