(** Closed-loop feedback plane: attribution upload, aggregation, tuning.

    Clients that simulate an adapted binary with prefetch-lifecycle
    attribution ({!Ssp_sim.Attrib}) serialize the per-delinquent-load
    outcome counts and lead-time histograms into a versioned {!report}
    artifact and upload it (proto v5 [Feedback] request). The serving
    side persists every report in the content-addressed store, folds it
    into a per-workload decayed {!aggregate}, and — once the aggregate
    crosses confidence thresholds — re-runs the post-pass with adjusted
    per-load knobs ({!Ssp.Adapt.overrides}) and publishes the result
    under a bumped tuning version. Published versions are immutable:
    each one keys its own store entry, so a version-N artifact fetched
    yesterday is byte-identical today.

    Tuning is deterministic: the tuner's decision input is rebuilt from
    the persisted report set (sorted canonically), never from the live
    arrival-order aggregate, so an offline [sspc tune] over a copied
    store publishes byte-identical artifacts to the daemon's own round.

    The knob policy is a finite monotone lattice — per load,
    [Keep < Chaining < Basic < skip] and unroll only grows (capped) — so
    repeated tuning always reaches a fixed point and never oscillates. *)

type prog_id =
  | Named of string  (** a suite workload, recompilable by name *)
  | Inline of string
      (** full mini-C source text, so an offline tuner can recompile the
          exact program the report measured *)

type load_stat = {
  fl_load : Ssp_ir.Iref.t;
  fl_issued : int;
  fl_useful : int;
  fl_late : int;
  fl_early_evicted : int;
  fl_redundant : int;
  fl_dropped : int;
  fl_unused : int;
  fl_demand_accesses : int;
  fl_demand_hits : int;
  fl_lead_hist : Ssp_telemetry.Telemetry.hist_summary;
      (** lead-time distribution of useful fills, telemetry bucket
          layout — merges exactly across reports *)
}
(** One delinquent load's attribution counts from a single run; mirrors
    {!Ssp_sim.Attrib.load_summary}. *)

type report = {
  fr_prog : prog_id;
  fr_scale : int;
  fr_pipeline : string;  (** ["inorder"] or ["ooo"] *)
  fr_version : int;
      (** tuning version of the adapted artifact the run executed (0 =
          untuned); reports from other versions than the aggregate's
          current one are counted stale, never merged *)
  fr_cycles : int;  (** main-thread simulated cycles *)
  fr_loads : load_stat list;
}
(** The uploadable attribution artifact. *)

val report_of_attrib :
  prog:prog_id ->
  scale:int ->
  pipeline:string ->
  version:int ->
  cycles:int ->
  Ssp_sim.Attrib.summary ->
  report

val encode_report : report -> string
(** Sealed store blob ({!Ssp_store.Store.kind_feedback_report});
    canonical — identical runs produce byte-identical blobs, so the
    digest store key dedups them. *)

val decode_report : string -> report
(** Verifies envelope and kind; raises a structured [Ssp_ir.Error.Error]
    (pass ["feedback"]) on anything malformed. *)

val report_store_key : string -> string
(** Store key a sealed report blob is persisted under (digest of the
    blob itself — content-addressed, duplicate uploads coalesce). *)

(** {1 Aggregation} *)

type agg_load = {
  al_issued : float;
  al_useful : float;
  al_late : float;
  al_early_evicted : float;
  al_redundant : float;
  al_dropped : float;
  al_unused : float;
  al_demand_accesses : float;
  al_demand_hits : float;
  al_lead_hist : Ssp_telemetry.Telemetry.hist_summary;
}
(** Decayed accumulation of one load's counts across reports. Scalars
    decay multiplicatively per merged report (ratios are unaffected);
    the lead histogram merges exactly, bucket-wise. *)

type aggregate = {
  ag_version : int;  (** current published tuning version (0 = untuned) *)
  ag_overrides : Ssp.Adapt.overrides;
      (** the per-load knobs version [ag_version] was built with *)
  ag_last_action : string;  (** human summary of the last tuning round *)
  ag_reports : int;  (** reports merged at the current version *)
  ag_total_reports : int;  (** every report ever seen, any version *)
  ag_stale : int;  (** reports rejected for carrying another version *)
  ag_last_report_s : float;  (** wall clock of the last report seen *)
  ag_cycles : float;  (** decayed sum of merged reports' cycle counts *)
  ag_loads : agg_load Ssp_ir.Iref.Map.t;
}

val empty_aggregate : aggregate

val default_decay : float
(** Per-report multiplicative decay applied to scalar accumulators. *)

val ingest : ?now:float -> ?decay:float -> aggregate -> report -> aggregate
(** Fold one report in. A report whose [fr_version] differs from
    [ag_version] only bumps [ag_stale] / [ag_total_reports]. [now]
    defaults to the wall clock. *)

val fold_reports :
  ?now:float -> ?decay:float -> aggregate -> report list -> aggregate
(** {!ingest} each report in the given order. *)

val reset_loads : aggregate -> aggregate
(** Drop the per-load accumulation (and merged-report count) while
    keeping the published state — version, overrides, last action,
    lifetime counters. What {!publish} does to start the next epoch, and
    what the tuner does before rebuilding its decision input from the
    persisted report set. *)

val encode_aggregate : aggregate -> string
(** Sealed store blob ({!Ssp_store.Store.kind_feedback_aggregate}). *)

val decode_aggregate : string -> aggregate

val aggregate_key :
  config:Ssp_machine.Config.t ->
  knobs:Ssp.Adapt.knobs ->
  Ssp_ir.Prog.t ->
  Ssp_profiling.Profile.t ->
  string
(** Store key of the per-(program, profile, config, knobs) aggregate. *)

(** {2 Derived per-load ratios} (guarded against empty accumulators) *)

val attempts : agg_load -> float
(** issued + redundant + dropped — every prefetch the slices tried. *)

val redundant_frac : agg_load -> float
(** redundant / attempts, where attempts = issued + redundant + dropped
    (attribution counts the three disjointly — a prefetch squashed
    because its line was already present is redundant, never issued). *)

val late_frac : agg_load -> float
(** late / (useful + late) — the chronically-late signal. *)

val accuracy : agg_load -> float
(** useful / attempts. *)

val coverage_frac : agg_load -> float
(** (useful + late) / would-be misses. *)

val timeliness : agg_load -> float
(** useful / (useful + late). *)

(** {1 Tuning} *)

type action = {
  act_load : Ssp_ir.Iref.t;
  act_what : string;  (** e.g. ["skip"], ["model=chaining"], ["unroll=8"] *)
  act_why : string;  (** the triggering signal, with its measured value *)
}
(** One entry of a tuning round's structured diff ([sspc tune
    --explain]). *)

val action_to_string : action -> string

val default_min_reports : int
val default_min_samples : float

val plan :
  ?min_reports:int ->
  ?min_samples:float ->
  knobs:Ssp.Adapt.knobs ->
  aggregate ->
  Ssp.Adapt.overrides * action list
(** Decide the next override map from an aggregate. No decision is made
    below [min_reports] merged reports, and no per-load decision below
    [min_samples] (decayed) attempted prefetches. An empty action list
    means the returned overrides equal the aggregate's — a fixed point;
    callers must not bump the version. Moves are monotone in the knob
    lattice: mostly-redundant loads step toward [skip] (absorbing),
    chronically-late ones promote basic→chaining (still clamped by the
    load's degradation-ladder ceiling inside [Adapt]) and then widen
    lookahead, never past the cap. *)

val publish :
  ?now:float ->
  aggregate ->
  overrides:Ssp.Adapt.overrides ->
  actions:action list ->
  aggregate
(** Bump the version, install the overrides, record the action summary
    and start a fresh accumulation epoch ({!reset_loads}). *)

type tuned = {
  td_aggregate : aggregate;  (** post-publish *)
  td_actions : action list;
  td_result : Ssp.Adapt.result;  (** the newly published artifact *)
  td_status : [ `Hit | `Miss | `Off ];
}

val tune_reports :
  ?cache:Ssp_store.Store.Cache.t ->
  ?now:float ->
  ?min_reports:int ->
  ?min_samples:float ->
  ?knobs:Ssp.Adapt.knobs ->
  config:Ssp_machine.Config.t ->
  Ssp_ir.Prog.t ->
  Ssp_profiling.Profile.t ->
  report list ->
  tuned option
(** One deterministic tuning round. Loads the live aggregate (for the
    published version/overrides), rebuilds the decision input from the
    given persisted reports (canonically sorted internally, so caller
    order is irrelevant), plans, and — if the plan is non-empty —
    publishes version N+1: re-runs the post-pass with the new overrides
    via {!Ssp_store.Store.run_cached} under the version-stamped key and
    persists the fresh aggregate. [None] when the plan is empty (fixed
    point or below confidence). *)

(** {1 Offline store walking} ([sspc tune STORE]) *)

val reports_in_store :
  Ssp_store.Store.Cache.t -> (string * report) list
(** Every persisted feedback report, as [(store key, report)], sorted by
    key. Blobs of other kinds and undecodable blobs are skipped. *)

val config_of_pipeline : string -> Ssp_machine.Config.t
(** ["ooo"] is the out-of-order machine; anything else in-order — the
    same mapping the serving layer applies. *)

val compile_id : prog_id -> scale:int -> Ssp_ir.Prog.t
(** Recompile a report's program identity ([Named] via the workload
    suite, [Inline] from the shipped source). *)

type store_tune = {
  st_prog : prog_id;
  st_scale : int;
  st_pipeline : string;
  st_reports : int;  (** persisted reports found for this workload *)
  st_aggregate : aggregate;  (** post-round (published or unchanged) *)
  st_tuned : tuned option;  (** [None] = no action for this workload *)
}

val tune_store :
  ?now:float ->
  ?min_reports:int ->
  ?min_samples:float ->
  ?knobs:Ssp.Adapt.knobs ->
  Ssp_store.Store.Cache.t ->
  store_tune list
(** Walk a store: group persisted reports by workload identity,
    recompile and re-profile each (through the same store), and run one
    {!tune_reports} round per workload. Workloads are processed in
    canonical identity order. *)
