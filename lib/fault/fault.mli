(** Deterministic, seed-driven fault injection.

    Instrumented code registers named {e sites} with {!site} and asks
    {!fire} whether to inject at each opportunity.  A {e plan} (seed +
    per-site probability/limit) is installed for the dynamic extent of a
    campaign with {!with_plan}; with no plan installed every query is a
    single ref read, so production runs pay nothing.

    Decisions are pure functions of [(seed, site name, key)].  Callers
    that can key a decision by a stable identity (e.g. a delinquent
    load's [Iref.hash]) get decisions independent of evaluation order —
    in particular identical across the sequential and domain-pool
    adaptation paths.  Unkeyed queries consume a per-site counter
    stream, which is deterministic for single-threaded callers such as
    the simulators. *)

type site

val site : string -> site
(** [site name] interns [name] in the global registry (idempotent,
    thread-safe).  Call at module init so the registry lists every site
    even before any plan runs. *)

val site_name : site -> string

val all_sites : unit -> site list
(** Every registered site, in registration order. *)

(** {1 Plans} *)

type spec = { prob : float; limit : int option }

val spec : ?limit:int -> float -> spec

type plan

val make : seed:int -> (string * spec) list -> plan

val install : plan -> unit
val clear : unit -> unit

val with_plan : plan -> (unit -> 'a) -> 'a
(** Install [plan] for the duration of the callback (cleared on exit,
    including exceptional exit).  Plans are ambient global state: run
    campaigns sequentially, not concurrently. *)

val active : unit -> bool
(** Whether any plan is currently installed. *)

val fire : ?key:int -> site -> bool
(** Should this site inject now?  Always [false] with no plan installed
    or when the site has no spec in the plan.  With [key], the decision
    depends only on [(seed, site, key)]; without it, on the per-site
    query counter. Firing stops once the site's [limit] is reached. *)

(** {1 Reporting} *)

type count = { site : string; queried : int; fired : int }

val counts : plan -> count list
(** Per-site query/fire totals for sites named in the plan, sorted by
    site name. *)

val fired_total : plan -> int

(** {1 Spec parsing} *)

val parse_specs : string -> ((string * spec) list, string) result
(** Parse a ["site=prob,site=prob:limit,..."] list, as accepted by
    [sspc chaos --faults].  Probabilities must lie in [[0,1]]. *)
