(* Deterministic, seed-driven fault injection.

   Every place in the adaptation pipeline or the simulator that can be
   perturbed registers a *site* (a stable string name) and asks the
   ambient *plan* whether to fire at each opportunity.  Decisions are
   pure functions of (plan seed, site name, key), so a campaign replays
   identically across runs and — when callers key decisions by stable
   identifiers such as a load's [Iref.hash] — identically across the
   jobs=1 and jobs>1 adaptation paths.

   With no plan installed (the default) every query is a single ref read
   plus a match, mirroring the telemetry subsystem's off-cost discipline:
   production runs pay nothing. *)

module T = Ssp_telemetry.Telemetry

(* ---------- site registry ---------- *)

type site = { id : int; name : string }

let registry : (string, site) Hashtbl.t = Hashtbl.create 32
let reg_order : site list ref = ref []
let reg_mutex = Mutex.create ()

let site name =
  Mutex.protect reg_mutex (fun () ->
      match Hashtbl.find_opt registry name with
      | Some s -> s
      | None ->
        let s = { id = Hashtbl.length registry; name } in
        Hashtbl.replace registry name s;
        reg_order := s :: !reg_order;
        s)

let site_name s = s.name
let all_sites () = List.rev !reg_order

(* ---------- plans ---------- *)

type spec = { prob : float; limit : int option }

let spec ?limit prob = { prob; limit }

type stats = {
  mutable queried : int;
  mutable fired : int;
  mutable stream : int;  (* per-site decision counter for unkeyed queries *)
}

type plan = {
  seed : int;
  specs : (string * spec) list;
  by_site : (int, spec * stats) Hashtbl.t;  (* site id -> config *)
  plan_mutex : Mutex.t;
}

let make ~seed specs =
  let p =
    {
      seed;
      specs;
      by_site = Hashtbl.create 16;
      plan_mutex = Mutex.create ();
    }
  in
  List.iter
    (fun (name, sp) ->
      let s = site name in
      Hashtbl.replace p.by_site s.id
        (sp, { queried = 0; fired = 0; stream = 0 }))
    specs;
  p

(* Ambient plan.  Installed before the pipeline runs; domain-pool workers
   are spawned afterwards, so Domain.spawn's happens-before makes the
   plan visible without further synchronisation. *)
let current : plan option ref = ref None
let install p = current := Some p
let clear () = current := None

let with_plan p f =
  install p;
  Fun.protect ~finally:clear f

(* ---------- deterministic decision function ---------- *)

(* splitmix64 finalizer: cheap, well-mixed; good enough to turn
   (seed, site, key) into an independent uniform draw. *)
let mix64 z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30))
      0xbf58476d1ce4e5b9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27))
      0x94d049bb133111ebL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let draw ~seed ~salt ~key =
  let z =
    mix64
      (Int64.logxor
         (mix64 (Int64.of_int (seed lxor (salt * 0x9e3779b9))))
         (Int64.of_int key))
  in
  (* top 53 bits -> [0,1) *)
  Int64.to_float (Int64.shift_right_logical z 11) *. (1.0 /. 9007199254740992.0)

(* Salt each site by a stable hash of its *name* (not its registration
   id) so decisions don't depend on registration order. *)
let salt_of s = Hashtbl.hash s.name

(* Should site [s] fire now?  [key] ties the decision to a stable
   identity (e.g. a delinquent load); without it the decision stream is
   indexed by a per-site counter — fine for the single-threaded
   simulator, not for parallel adaptation. *)
let fire ?key s =
  match !current with
  | None -> false
  | Some p -> (
    match Hashtbl.find_opt p.by_site s.id with
    | None -> false
    | Some (sp, st) ->
      Mutex.protect p.plan_mutex (fun () ->
          st.queried <- st.queried + 1;
          let k =
            match key with
            | Some k -> k
            | None ->
              let k = st.stream in
              st.stream <- st.stream + 1;
              k
          in
          let over_limit =
            match sp.limit with Some l -> st.fired >= l | None -> false
          in
          let hit =
            (not over_limit) && draw ~seed:p.seed ~salt:(salt_of s) ~key:k < sp.prob
          in
          if hit then begin
            st.fired <- st.fired + 1;
            T.count ("fault." ^ s.name) 1
          end;
          hit))

let active () = !current <> None

(* ---------- reporting ---------- *)

type count = { site : string; queried : int; fired : int }

let counts p =
  Hashtbl.fold
    (fun id ((_, st) : spec * stats) acc ->
      let name =
        match
          List.find_opt (fun s -> s.id = id) !reg_order
        with
        | Some s -> s.name
        | None -> Printf.sprintf "site#%d" id
      in
      { site = name; queried = st.queried; fired = st.fired } :: acc)
    p.by_site []
  |> List.sort (fun a b -> compare a.site b.site)

let fired_total p =
  List.fold_left (fun acc c -> acc + c.fired) 0 (counts p)

(* ---------- spec parsing: "site=p" / "site=p:limit" lists ---------- *)

let parse_spec_item item =
  match String.index_opt item '=' with
  | None -> Error (Printf.sprintf "bad fault spec %S (want site=prob)" item)
  | Some i -> (
    let name = String.sub item 0 i in
    let rest = String.sub item (i + 1) (String.length item - i - 1) in
    let prob_s, limit =
      match String.index_opt rest ':' with
      | None -> (rest, None)
      | Some j ->
        ( String.sub rest 0 j,
          int_of_string_opt (String.sub rest (j + 1) (String.length rest - j - 1))
        )
    in
    if name = "" then Error (Printf.sprintf "bad fault spec %S (empty site)" item)
    else
      match float_of_string_opt prob_s with
      | Some p when p >= 0.0 && p <= 1.0 -> Ok (name, { prob = p; limit })
      | _ ->
        Error
          (Printf.sprintf "bad fault spec %S (probability must be in [0,1])"
             item))

let parse_specs s =
  let items =
    String.split_on_char ',' s |> List.map String.trim
    |> List.filter (fun x -> x <> "")
  in
  let rec go acc = function
    | [] -> Ok (List.rev acc)
    | it :: rest -> (
      match parse_spec_item it with
      | Ok sp -> go (sp :: acc) rest
      | Error e -> Error e)
  in
  go [] items
