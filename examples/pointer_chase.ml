(* Anatomy of a chaining slice: the paper's Figure 3 / Figure 5 walkthrough
   on the mcf arc-pricing loop.

     dune exec examples/pointer_chase.exe

   Shows the dependence analysis a human would read off the disassembly:
   the slice of the delinquent load's address, its SCC partition into
   critical and non-critical sub-slices, the spawn condition, the slack
   arithmetic, the generated do-across prefetching loop — and finally what
   the simulator's prefetch-lifecycle attribution says those prefetches
   actually did (`sspc explain` gives the same join from the CLI). *)

let () =
  let w = Ssp_workloads.Suite.find "mcf" in
  let prog = Ssp_workloads.Workload.program w ~scale:8 in
  let profile = Ssp_profiling.Collect.collect prog in
  let regions = Ssp_analysis.Regions.compute prog in
  let config = Ssp_machine.Config.in_order in

  (* The delinquent loads of the pricing loop. *)
  let d = Ssp.Delinquent.identify prog profile in
  Format.printf "%a@.@." Ssp.Delinquent.pp d;

  let load = List.hd d.Ssp.Delinquent.loads in
  let region = Ssp_analysis.Regions.innermost_at regions load.Ssp.Delinquent.iref in
  Format.printf "innermost region of the hottest load: %a@.@."
    Ssp_analysis.Regions.pp region;

  (* Slice it (Figure 3b). *)
  let slice =
    match Ssp.Slicer.slice_region regions profile ~region load with
    | Some s -> s
    | None -> failwith "no slice"
  in
  Format.printf "%a@." (Ssp.Slice.pp prog) slice;

  (* Schedule it (Figure 5). *)
  let entries, trips =
    Ssp.Select.trips_of regions profile region slice.Ssp.Slice.fn
  in
  let sched = Ssp.Schedule.build regions profile config ~trips slice in
  Format.printf
    "@.schedule: %d critical + %d non-critical instrs, rotation %d, %d \
     loop-carried edges, available ILP %.2f@."
    (List.length sched.Ssp.Schedule.order_critical)
    (List.length sched.Ssp.Schedule.order_non_critical)
    sched.Ssp.Schedule.rotation sched.Ssp.Schedule.loop_carried_edges
    sched.Ssp.Schedule.available_ilp;
  Format.printf "spawn condition: %s@."
    (match sched.Ssp.Schedule.spawn_cond with
    | Ssp.Schedule.Cond _ -> "computed from the loop-continue branch"
    | Ssp.Schedule.Predicted { depth } ->
      Printf.sprintf "predicted (chain depth bound %d)" depth);
  Format.printf
    "heights: region %d, critical %d, slice %d; copy+spawn %d@."
    sched.Ssp.Schedule.height_region sched.Ssp.Schedule.height_critical
    sched.Ssp.Schedule.height_slice sched.Ssp.Schedule.copy_spawn_latency;
  Format.printf
    "slack_csp(i) = (%d - %d - %d) * i: %d, %d, %d, ... for i = 1, 2, 3@."
    sched.Ssp.Schedule.height_region sched.Ssp.Schedule.height_critical
    sched.Ssp.Schedule.copy_spawn_latency
    (Ssp.Schedule.slack_csp sched 1)
    (Ssp.Schedule.slack_csp sched 2)
    (Ssp.Schedule.slack_csp sched 3);
  Format.printf "slack_bsp(1) = %d; trips ~ %d per entry (%d entries)@.@."
    (Ssp.Schedule.slack_bsp sched 1)
    trips entries;

  (* Generate and show the speculative-thread code (Figure 5b). *)
  let result = Ssp.Adapt.run ~config prog profile in
  let f = Ssp_ir.Prog.find_func result.Ssp.Adapt.prog "primal_bea_mpp" in
  Format.printf "generated blocks of primal_bea_mpp (stub, slice, resume):@.";
  Array.iter
    (fun (b : Ssp_ir.Prog.block) ->
      if
        String.length b.Ssp_ir.Prog.label >= 4
        && String.sub b.Ssp_ir.Prog.label 0 4 = "ssp_"
      then begin
        Format.printf "%s:@." b.Ssp_ir.Prog.label;
        Array.iter
          (fun op -> Format.printf "  %s@." (Ssp_isa.Op.to_string op))
          b.Ssp_ir.Prog.ops
      end)
    f.Ssp_ir.Prog.blocks;

  (* Did it work? Attach prefetch-lifecycle attribution to a simulation of
     the adapted binary: every speculative prefetch is tagged with the
     delinquent load it precomputes and classified against the main
     thread's demand stream. *)
  let attrib =
    Ssp_sim.Attrib.create ~prefetch_map:result.Ssp.Adapt.prefetch_map ()
  in
  let stats = Ssp_sim.Inorder.run ~attrib config result.Ssp.Adapt.prog in
  let s = Ssp_sim.Attrib.summary attrib in
  Format.printf "@.attribution after %d simulated cycles:@."
    stats.Ssp_sim.Stats.cycles;
  List.iter
    (fun (l : Ssp_sim.Attrib.load_summary) ->
      Format.printf
        "  %-22s issued %6d  useful %6d  late %5d  coverage %5.1f%%  \
         accuracy %5.1f%%  timeliness %5.1f%%@."
        (Ssp_ir.Iref.to_string l.Ssp_sim.Attrib.ls_load)
        l.Ssp_sim.Attrib.ls_issued l.Ssp_sim.Attrib.ls_useful
        l.Ssp_sim.Attrib.ls_late
        (100. *. l.Ssp_sim.Attrib.ls_coverage)
        (100. *. l.Ssp_sim.Attrib.ls_accuracy)
        (100. *. l.Ssp_sim.Attrib.ls_timeliness))
    s.Ssp_sim.Attrib.loads;
  let th = s.Ssp_sim.Attrib.threads in
  Format.printf
    "  speculative threads: %d spawned (%d denied), watchdog kills %d, \
     mean lifetime %.0f cycles@."
    th.Ssp_sim.Attrib.th_spawns th.Ssp_sim.Attrib.th_denied
    th.Ssp_sim.Attrib.th_watchdog_kills th.Ssp_sim.Attrib.th_mean_lifetime
