(* Regenerates every table and figure of the paper's evaluation, then runs
   Bechamel micro-benchmarks of the tool's own algorithms.

   Usage: main.exe [--quick] [--jobs N] [--trace OUT.JSON] [--json BENCH.JSON]
                   [--check-perf] [--update-baseline] [--baseline PATH]
                   [table1] [fig2] [table2] [fig8] [fig9] [fig10]
                   [hand] [ablate] [perf] [scaling] [serving] [cluster]
                   [telemetry] [simspeed] [feedback] [micro]
   With no selection, everything except [scaling], [serving], [cluster],
   [telemetry], [simspeed] and [feedback] runs in paper order.
   [--quick] switches to small working sets and scaled-down caches (same
   shapes, seconds instead of minutes). [--jobs N] runs the heavy
   simulation/adaptation work across N domains (outputs are identical to
   --jobs 1 by construction). [--trace OUT.JSON] enables the telemetry
   subsystem and dumps the structured run report behind the numbers.
   [--json BENCH.JSON] makes the [perf] section write its numbers
   (per-workload baseline vs. adapted cycles, L1d miss rates, prefetch
   coverage / accuracy / timeliness) as machine-readable JSON — and the
   [scaling] section its jobs=1 vs jobs=N wall-clock comparison (the
   BENCH_3 artifact), which also re-checks that parallel output is
   byte-identical to sequential and exits non-zero if not — and the
   [serving] section its daemon cold/warm adapt latency and warm
   requests/sec — and the [cluster] section its router-vs-direct warm-hit
   latency and 1-vs-2-shard throughput (the BENCH_6 artifact) — and the
   [telemetry] section its instrumentation-on vs -off compute overhead
   (the BENCH_7 artifact) — and the [simspeed] section its raw simulator
   throughput vs. the committed bench/simspeed_baseline.json, its
   allocation probe, and its sampled-vs-full speedup/accuracy table (the
   BENCH_8 artifact; [--update-simspeed] re-records that baseline) — and
   the [feedback] section its report-upload overhead on the warm serving
   path plus tuned-vs-untuned simulated cycles on mcf/em3d after the
   closed loop reaches its fixed point (the BENCH_9 artifact).
   [--check-perf] is a regression gate: it times the jobs=1 pipeline and
   sim phases under --quick (median of 3 runs after a discarded warmup)
   and fails (exit 1) if either regressed more than 25% against the
   committed baseline ([--baseline PATH], default
   bench/perf_baseline.json), or if the telemetry-on run costs more than
   1.5x the telemetry-off run; [--update-baseline] re-records the
   baseline. *)

let ppf = Format.std_formatter

let section title =
  Format.fprintf ppf "@.==== %s ====@.@." title

let wall f =
  let t0 = Unix.gettimeofday () in
  f ();
  Format.fprintf ppf "@.[%.1fs]@." (Unix.gettimeofday () -. t0)

(* ---- perf: machine-readable baseline-vs-adapted summary ---- *)

(* One attributed in-order run per workload: cycles, main-thread L1d miss
   rate, and the aggregate prefetch classification.  Printed as a table
   and, with [--json PATH], written as JSON for CI artifacts. *)

type perf_row = {
  p_name : string;
  p_base_cycles : int;
  p_ssp_cycles : int;
  p_base_l1d_miss : float;
  p_ssp_l1d_miss : float;
  p_issued : int;
  p_useful : int;
  p_late : int;
  p_early_evicted : int;
  p_redundant : int;
  p_dropped : int;
  p_unused : int;
  p_coverage : float;
  p_accuracy : float;
  p_timeliness : float;
  p_spawns : int;
  p_denied : int;
  p_watchdog_kills : int;
}

let perf_row ~setting (w : Ssp_workloads.Workload.t) =
  let a =
    Ssp_harness.Experiment.attributed_run ~setting
      ~pipeline:Ssp_machine.Config.In_order w
  in
  let open Ssp_harness.Experiment in
  let sum f = List.fold_left (fun acc l -> acc + f l) 0 a.a_attrib.Ssp_sim.Attrib.loads in
  let issued = sum (fun l -> l.Ssp_sim.Attrib.ls_issued) in
  let useful = sum (fun l -> l.Ssp_sim.Attrib.ls_useful) in
  let late = sum (fun l -> l.Ssp_sim.Attrib.ls_late) in
  let early = sum (fun l -> l.Ssp_sim.Attrib.ls_early_evicted) in
  let redundant = sum (fun l -> l.Ssp_sim.Attrib.ls_redundant) in
  let dropped = sum (fun l -> l.Ssp_sim.Attrib.ls_dropped) in
  let unused = sum (fun l -> l.Ssp_sim.Attrib.ls_unused) in
  let misses =
    sum (fun l -> l.Ssp_sim.Attrib.ls_demand_accesses - l.Ssp_sim.Attrib.ls_demand_hits)
  in
  let ratio n d = if d = 0 then 0. else float_of_int n /. float_of_int d in
  let th = a.a_attrib.Ssp_sim.Attrib.threads in
  {
    p_name = a.a_name;
    p_base_cycles = a.a_base.Ssp_sim.Stats.cycles;
    p_ssp_cycles = a.a_ssp.Ssp_sim.Stats.cycles;
    p_base_l1d_miss = l1d_miss_rate a.a_base;
    p_ssp_l1d_miss = l1d_miss_rate a.a_ssp;
    p_issued = issued;
    p_useful = useful;
    p_late = late;
    p_early_evicted = early;
    p_redundant = redundant;
    p_dropped = dropped;
    p_unused = unused;
    p_coverage = ratio (useful + late) (misses + useful);
    p_accuracy = ratio useful (issued + redundant + dropped);
    p_timeliness = ratio useful (useful + late);
    p_spawns = th.Ssp_sim.Attrib.th_spawns;
    p_denied = th.Ssp_sim.Attrib.th_denied;
    p_watchdog_kills = th.Ssp_sim.Attrib.th_watchdog_kills;
  }

let perf_json ~setting rows =
  let b = Buffer.create 4096 in
  Buffer.add_string b
    (Printf.sprintf "{\"setting\":\"%s\",\"scale\":%d,\"cache_divisor\":%d,"
       setting.Ssp_harness.Experiment.label
       setting.Ssp_harness.Experiment.scale
       setting.Ssp_harness.Experiment.cache_divisor);
  Buffer.add_string b "\"workloads\":[";
  List.iteri
    (fun i r ->
      if i > 0 then Buffer.add_char b ',';
      Buffer.add_string b
        (Printf.sprintf
           "{\"name\":\"%s\",\"baseline_cycles\":%d,\"adapted_cycles\":%d,\
            \"speedup\":%.4f,\"baseline_l1d_miss_rate\":%.6f,\
            \"adapted_l1d_miss_rate\":%.6f,\"prefetches\":{\"issued\":%d,\
            \"useful\":%d,\"late\":%d,\"early_evicted\":%d,\"redundant\":%d,\
            \"dropped\":%d,\"unused\":%d},\"coverage\":%.6f,\
            \"accuracy\":%.6f,\"timeliness\":%.6f,\"threads\":{\"spawns\":%d,\
            \"denied\":%d,\"watchdog_kills\":%d}}"
           r.p_name r.p_base_cycles r.p_ssp_cycles
           (float_of_int r.p_base_cycles /. float_of_int (max 1 r.p_ssp_cycles))
           r.p_base_l1d_miss r.p_ssp_l1d_miss r.p_issued r.p_useful r.p_late
           r.p_early_evicted r.p_redundant r.p_dropped r.p_unused r.p_coverage
           r.p_accuracy r.p_timeliness r.p_spawns r.p_denied r.p_watchdog_kills))
    rows;
  Buffer.add_string b "]}";
  Buffer.contents b

let perf ~setting ~jobs ~json () =
  let rows =
    if jobs <= 1 then List.map (perf_row ~setting) Ssp_workloads.Suite.all
    else
      Ssp_parallel.Pool.with_pool ~jobs (fun pool ->
          Ssp_parallel.Pool.map pool (perf_row ~setting)
            Ssp_workloads.Suite.all)
  in
  Format.fprintf ppf
    "%-12s %12s %12s %8s %8s %8s   %s@." "workload" "base cyc" "ssp cyc"
    "speedup" "cover" "accur" "useful/late/early/redund/drop";
  List.iter
    (fun r ->
      Format.fprintf ppf
        "%-12s %12d %12d %7.2fx %7.1f%% %7.1f%%   %d/%d/%d/%d/%d@." r.p_name
        r.p_base_cycles r.p_ssp_cycles
        (float_of_int r.p_base_cycles /. float_of_int (max 1 r.p_ssp_cycles))
        (100. *. r.p_coverage) (100. *. r.p_accuracy) r.p_useful r.p_late
        r.p_early_evicted r.p_redundant r.p_dropped)
    rows;
  match json with
  | None -> ()
  | Some path ->
    let oc = open_out path in
    output_string oc (perf_json ~setting rows);
    output_char oc '\n';
    close_out oc;
    Format.fprintf ppf "@.perf JSON written to %s@." path

(* ---- scaling: jobs=1 vs jobs=N wall clock + byte-identity check ---- *)

let time f =
  let t0 = Unix.gettimeofday () in
  let r = f () in
  (r, Unix.gettimeofday () -. t0)

(* The two phases the parallel engine accelerates, measured end to end
   over the whole suite: the adaptation pipeline (per-delinquent-load
   fan-out inside [Adapt.run]) and the simulation grid (one machine per
   point). Returns the phase results so callers can compare renderings. *)
let scaling_phases ~setting ~jobs =
  let open Ssp_harness.Experiment in
  let cfg = config_for setting Ssp_machine.Config.In_order in
  let inputs =
    List.map
      (fun (w : Ssp_workloads.Workload.t) ->
        let prog =
          Ssp_workloads.Workload.program w ~scale:setting.scale
        in
        let profile = Ssp_profiling.Collect.collect ~config:cfg prog in
        (prog, profile))
      Ssp_workloads.Suite.all
  in
  let adapted, pipeline_s =
    time (fun () ->
        List.map
          (fun (prog, profile) ->
            Ssp.Adapt.run ~jobs ~config:cfg prog profile)
          inputs)
  in
  let points =
    List.concat_map
      (fun ((prog, _), (r : Ssp.Adapt.result)) -> [ prog; r.Ssp.Adapt.prog ])
      (List.combine inputs adapted)
  in
  let stats, sim_s =
    time (fun () ->
        if jobs <= 1 then List.map (fun p -> Ssp_sim.Inorder.run cfg p) points
        else
          Ssp_parallel.Pool.with_pool ~jobs (fun pool ->
              Ssp_parallel.Pool.map pool
                (fun p -> Ssp_sim.Inorder.run cfg p)
                points))
  in
  (adapted, stats, pipeline_s, sim_s)

let render_result (r : Ssp.Adapt.result) =
  Format.asprintf "%a@.%a" Ssp_ir.Prog.pp r.Ssp.Adapt.prog Ssp.Report.pp
    r.Ssp.Adapt.report

let render_stats (s : Ssp_sim.Stats.t) =
  Format.asprintf "%a" Ssp_sim.Stats.pp s

let scaling ~setting ~jobs ~json () =
  let jobs = max 2 jobs in
  let a1, s1, pipe1, sim1 = scaling_phases ~setting ~jobs:1 in
  let an, sn, pipen, simn = scaling_phases ~setting ~jobs in
  let identical =
    List.for_all2
      (fun a b -> String.equal (render_result a) (render_result b))
      a1 an
    && List.for_all2
         (fun a b -> String.equal (render_stats a) (render_stats b))
         s1 sn
  in
  Format.fprintf ppf "%-22s %10s %10s %8s@." "phase" "jobs=1 (s)"
    (Printf.sprintf "jobs=%d (s)" jobs)
    "speedup";
  Format.fprintf ppf "%-22s %10.2f %10.2f %7.2fx@." "adaptation pipeline"
    pipe1 pipen
    (pipe1 /. Float.max 1e-9 pipen);
  Format.fprintf ppf "%-22s %10.2f %10.2f %7.2fx@." "simulation grid" sim1
    simn
    (sim1 /. Float.max 1e-9 simn);
  Format.fprintf ppf "@.parallel output byte-identical to sequential: %b@."
    identical;
  (match json with
  | None -> ()
  | Some path ->
    let oc = open_out path in
    Printf.fprintf oc
      "{\"setting\":\"%s\",\"jobs\":%d,\"identical\":%b,\
       \"pipeline\":{\"jobs1_s\":%.4f,\"jobsN_s\":%.4f,\"speedup\":%.3f},\
       \"sim\":{\"jobs1_s\":%.4f,\"jobsN_s\":%.4f,\"speedup\":%.3f}}\n"
      setting.Ssp_harness.Experiment.label jobs identical pipe1 pipen
      (pipe1 /. Float.max 1e-9 pipen)
      sim1 simn
      (sim1 /. Float.max 1e-9 simn);
    close_out oc;
    Format.fprintf ppf "@.scaling JSON written to %s@." path);
  if not identical then begin
    Format.fprintf ppf
      "@.FAIL: jobs=%d output diverges from the sequential run@." jobs;
    exit 1
  end

(* ---- serving: daemon cold/warm latency and warm throughput ---- *)

(* Host the daemon in-process on a thread, time one cold and one warm
   'adapt mcf' (the warm one must be a cache hit), then measure warm
   requests/sec with two client threads against a jobs=2 pool. Uses the
   test scale: serving latency is about the store, not the working set. *)
let serving ~json () =
  let dir = Filename.temp_dir "sspc_bench_serving" "" in
  let socket = Filename.concat dir "d.sock" in
  let cfg =
    {
      Ssp_server.Server.socket = Some socket;
      tcp = None;
      jobs = 2;
      cache =
        Some (Ssp_store.Store.Cache.open_dir (Filename.concat dir "cache"));
      max_frame = Ssp_server.Proto.default_max_frame;
      timeout_s = 300.;
      max_batch = 32;
      max_queue = 256;
      retry_after_s = 0.2;
      tune = false;
    }
  in
  let th = Thread.create Ssp_server.Server.serve cfg in
  let rec wait tries =
    if tries = 0 then failwith "serving bench: daemon never came up";
    let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    match Unix.connect fd (Unix.ADDR_UNIX socket) with
    | () -> Unix.close fd
    | exception Unix.Unix_error _ ->
      Unix.close fd;
      Thread.delay 0.05;
      wait (tries - 1)
  in
  wait 100;
  let scale = Ssp_workloads.Suite.test_scale in
  let adapt name =
    match
      Ssp_server.Client.request ~socket
        (Ssp_server.Proto.Adapt
           { prog = Ssp_server.Proto.Workload name; scale;
             pipeline = "inorder";
             tenant = Ssp_server.Proto.default_tenant })
    with
    | Ssp_server.Proto.Adapted { cache; _ } -> cache
    | Ssp_server.Proto.Error_reply { pass; what; _ } ->
      failwith (Printf.sprintf "serving bench: server error [%s]: %s" pass what)
    | _ -> failwith "serving bench: unexpected reply"
  in
  let cold_status, cold_s = time (fun () -> adapt "mcf") in
  let warm_status, warm_s = time (fun () -> adapt "mcf") in
  ignore (adapt "em3d");
  let n_requests = 40 in
  let (), total_s =
    time (fun () ->
        let clients =
          List.init 2 (fun i ->
              Thread.create
                (fun () ->
                  for k = 1 to n_requests / 2 do
                    ignore (adapt (if (i + k) mod 2 = 0 then "mcf" else "em3d"))
                  done)
                ())
        in
        List.iter Thread.join clients)
  in
  let rps = float_of_int n_requests /. total_s in
  (match Ssp_server.Client.request ~socket Ssp_server.Proto.Shutdown with
  | Ssp_server.Proto.Ok_reply -> ()
  | _ -> failwith "serving bench: shutdown not acknowledged");
  Thread.join th;
  Format.fprintf ppf "%-34s %8.3fs  (cache %s)@." "cold adapt mcf" cold_s
    cold_status;
  Format.fprintf ppf "%-34s %8.3fs  (cache %s, %.1fx faster)@."
    "warm adapt mcf" warm_s warm_status
    (cold_s /. Float.max 1e-9 warm_s);
  Format.fprintf ppf "%-34s %8.1f req/s  (%d warm requests, jobs=2)@."
    "warm throughput" rps n_requests;
  match json with
  | None -> ()
  | Some path ->
    let oc = open_out path in
    Printf.fprintf oc
      "{\"section\":\"serving\",\"jobs\":2,\"cold\":{\"seconds\":%.4f,\
       \"cache\":\"%s\"},\"warm\":{\"seconds\":%.4f,\"cache\":\"%s\"},\
       \"warm_speedup\":%.3f,\"throughput\":{\"requests\":%d,\
       \"seconds\":%.4f,\"rps\":%.2f}}\n"
      cold_s cold_status warm_s warm_status
      (cold_s /. Float.max 1e-9 warm_s)
      n_requests total_s rps;
    close_out oc;
    Format.fprintf ppf "@.serving JSON written to %s@." path

(* ---- feedback: upload overhead and tuned-vs-untuned cycles ---- *)

(* Two questions about the closed loop (BENCH_9): what does uploading an
   attribution report add to a warm serving path, and what does a tuning
   round buy in simulated cycles once the tuner reaches its fixed point
   on mcf and em3d. *)
let feedback_bench ~json () =
  let module Fb = Ssp_feedback.Feedback in
  (* Upload overhead: warm daemon, tune off; time warm adapts alone,
     then adapt+upload pairs. *)
  let dir = Filename.temp_dir "sspc_bench_feedback" "" in
  let socket = Filename.concat dir "d.sock" in
  let cfg =
    {
      Ssp_server.Server.socket = Some socket;
      tcp = None;
      jobs = 2;
      cache =
        Some (Ssp_store.Store.Cache.open_dir (Filename.concat dir "cache"));
      max_frame = Ssp_server.Proto.default_max_frame;
      timeout_s = 300.;
      max_batch = 32;
      max_queue = 256;
      retry_after_s = 0.2;
      tune = false;
    }
  in
  let th = Thread.create Ssp_server.Server.serve cfg in
  let rec wait tries =
    if tries = 0 then failwith "feedback bench: daemon never came up";
    let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    match Unix.connect fd (Unix.ADDR_UNIX socket) with
    | () -> Unix.close fd
    | exception Unix.Unix_error _ ->
      Unix.close fd;
      Thread.delay 0.05;
      wait (tries - 1)
  in
  wait 100;
  let scale = Ssp_workloads.Suite.test_scale in
  let adapt () =
    match
      Ssp_server.Client.request ~socket
        (Ssp_server.Proto.Adapt
           { prog = Ssp_server.Proto.Workload "em3d"; scale;
             pipeline = "inorder";
             tenant = Ssp_server.Proto.default_tenant })
    with
    | Ssp_server.Proto.Adapted _ -> ()
    | Ssp_server.Proto.Error_reply { pass; what; _ } ->
      failwith
        (Printf.sprintf "feedback bench: server error [%s]: %s" pass what)
    | _ -> failwith "feedback bench: unexpected reply"
  in
  let report i =
    (* A realistic small report; distinct cycles defeat the store's
       content-addressed dedup so every upload pays the full path. *)
    {
      Fb.fr_prog = Fb.Named "em3d";
      fr_scale = scale;
      fr_pipeline = "inorder";
      fr_version = 0;
      fr_cycles = 100_000 + i;
      fr_loads =
        [
          {
            Fb.fl_load = Ssp_ir.Iref.make "bench" 0 0;
            fl_issued = 900;
            fl_useful = 700;
            fl_late = 100;
            fl_early_evicted = 40;
            fl_redundant = 60;
            fl_dropped = 0;
            fl_unused = 100;
            fl_demand_accesses = 2000;
            fl_demand_hits = 1200;
            fl_lead_hist = Ssp_telemetry.Telemetry.empty_hist_summary ();
          };
        ];
    }
  in
  let upload i =
    match
      Ssp_server.Client.request ~socket
        (Ssp_server.Proto.Feedback
           { prog = Ssp_server.Proto.Workload "em3d"; scale;
             pipeline = "inorder";
             tenant = Ssp_server.Proto.default_tenant;
             blob = Fb.encode_report (report i) })
    with
    | Ssp_server.Proto.Ok_reply -> ()
    | Ssp_server.Proto.Error_reply { pass; what; _ } ->
      failwith
        (Printf.sprintf "feedback bench: upload error [%s]: %s" pass what)
    | _ -> failwith "feedback bench: unexpected upload reply"
  in
  adapt ();
  (* warm the store *)
  upload 0;
  (* warm the profile/compile path the ingest takes *)
  let n = 30 in
  let (), plain_s = time (fun () -> for _ = 1 to n do adapt () done) in
  let (), paired_s =
    time (fun () ->
        for i = 1 to n do
          adapt ();
          upload i
        done)
  in
  (match Ssp_server.Client.request ~socket Ssp_server.Proto.Shutdown with
  | Ssp_server.Proto.Ok_reply -> ()
  | _ -> failwith "feedback bench: shutdown not acknowledged");
  Thread.join th;
  let per_upload_ms = (paired_s -. plain_s) /. float_of_int n *. 1e3 in
  let overhead = (paired_s -. plain_s) /. Float.max 1e-9 plain_s in
  Format.fprintf ppf "%-34s %8.3fs  (%d warm adapts)@." "warm path, no uploads"
    plain_s n;
  Format.fprintf ppf "%-34s %8.3fs  (+%.2f ms/upload, %+.1f%%)@."
    "warm path + report uploads" paired_s per_upload_ms (100. *. overhead);
  (* Tuned vs untuned: run the offline loop to its fixed point, then
     compare simulated cycles and redundant prefetches. *)
  let tuned_vs_untuned name =
    let config = Ssp_machine.Config.in_order in
    let prog =
      Ssp_workloads.Workload.program (Ssp_workloads.Suite.find name) ~scale:2
    in
    let profile = Ssp_profiling.Collect.collect ~config prog in
    let simulate (result : Ssp.Adapt.result) =
      let attrib =
        Ssp_sim.Attrib.create ~prefetch_map:result.Ssp.Adapt.prefetch_map ()
      in
      let stats = Ssp_sim.Inorder.run ~attrib config result.Ssp.Adapt.prog in
      let summary = Ssp_sim.Attrib.summary attrib in
      let redundant =
        List.fold_left
          (fun acc (l : Ssp_sim.Attrib.load_summary) -> acc + l.ls_redundant)
          0 summary.Ssp_sim.Attrib.loads
      in
      (stats.Ssp_sim.Stats.cycles, redundant, summary)
    in
    let cache =
      Ssp_store.Store.Cache.open_dir
        (Filename.concat dir ("tune-" ^ name))
    in
    let r0, _ = Ssp_store.Store.run_cached ~cache ~config prog profile in
    let cycles0, red0, sum0 = simulate r0 in
    let mk version cycles summary =
      Fb.report_of_attrib ~prog:(Fb.Named name) ~scale:2 ~pipeline:"inorder"
        ~version ~cycles summary
    in
    let rec converge reports best n =
      if n > 6 then best
      else
        match
          Fb.tune_reports ~cache ~now:50. ~min_reports:1 ~config prog profile
            reports
        with
        | None -> best
        | Some t ->
          let v = t.Fb.td_aggregate.Fb.ag_version in
          let cycles, red, summary = simulate t.Fb.td_result in
          converge (mk v cycles summary :: reports) (v, cycles, red) (n + 1)
    in
    let versions, cycles_t, red_t =
      converge [ mk 0 cycles0 sum0 ] (0, cycles0, red0) 0
    in
    Format.fprintf ppf
      "%-34s %8d -> %d cycles  (redundant %d -> %d, %d round%s)@."
      (name ^ " tuned vs untuned") cycles0 cycles_t red0 red_t versions
      (if versions = 1 then "" else "s");
    (name, cycles0, cycles_t, red0, red_t, versions)
  in
  let rows = List.map tuned_vs_untuned [ "mcf"; "em3d" ] in
  match json with
  | None -> ()
  | Some path ->
    let oc = open_out path in
    Printf.fprintf oc
      "{\"section\":\"feedback\",\"upload\":{\"warm_requests\":%d,\
       \"plain_s\":%.4f,\"paired_s\":%.4f,\"per_upload_ms\":%.4f,\
       \"overhead\":%.4f},\"workloads\":[%s]}\n"
      n plain_s paired_s per_upload_ms overhead
      (String.concat ","
         (List.map
            (fun (name, c0, ct, r0, rt, v) ->
              Printf.sprintf
                "{\"name\":\"%s\",\"untuned_cycles\":%d,\"tuned_cycles\":%d,\
                 \"untuned_redundant\":%d,\"tuned_redundant\":%d,\
                 \"versions\":%d}"
                name c0 ct r0 rt v)
            rows));
    close_out oc;
    Format.fprintf ppf "@.feedback JSON written to %s@." path

(* ---- cluster: router overhead and 1-vs-2-shard throughput ---- *)

(* Host 1- and 2-shard TCP clusters fully in-process: shard daemons on
   ephemeral TCP ports (their own caches), routers on Unix sockets. The
   interesting numbers are (a) what the extra router hop costs on a warm
   hit against talking to the owning shard directly, and (b) how warm
   requests/sec scale going from one shard to two. *)
let cluster ~json () =
  let dir = Filename.temp_dir "sspc_bench_cluster" "" in
  let scale = Ssp_workloads.Suite.test_scale in
  let start_shard ?(jobs = 2) i =
    let port = ref None in
    let cfg =
      {
        Ssp_server.Server.socket = None;
        tcp = Some ("127.0.0.1", 0);
        jobs;
        cache =
          Some
            (Ssp_store.Store.Cache.open_dir
               (Filename.concat dir (Printf.sprintf "cache%d" i)));
        max_frame = Ssp_server.Proto.default_max_frame;
        timeout_s = 300.;
        max_batch = 32;
        max_queue = 256;
        retry_after_s = 0.2;
        tune = false;
      }
    in
    let th =
      Thread.create
        (fun () ->
          Ssp_server.Server.serve
            ~ready:(fun ~tcp_port -> port := tcp_port)
            cfg)
        ()
    in
    let rec wait tries =
      if tries = 0 then failwith "cluster bench: shard never came up";
      match !port with
      | Some p -> p
      | None ->
        Thread.delay 0.01;
        wait (tries - 1)
    in
    (th, wait 500)
  in
  let start_router ?(replicate = true) name shards =
    let socket = Filename.concat dir (name ^ ".sock") in
    let cfg =
      {
        (Ssp_cluster.Router.default_config ~shards) with
        Ssp_cluster.Router.socket = Some socket;
        replicate;
      }
    in
    let up = ref false in
    let th =
      Thread.create
        (fun () ->
          Ssp_cluster.Router.serve ~ready:(fun ~tcp_port:_ -> up := true) cfg)
        ()
    in
    let rec wait tries =
      if tries = 0 then failwith "cluster bench: router never came up"
      else if not !up then begin
        Thread.delay 0.01;
        wait (tries - 1)
      end
    in
    wait 500;
    (th, socket)
  in
  let adapt addr name =
    match
      Ssp_server.Client.request_addr addr
        (Ssp_server.Proto.Adapt
           { prog = Ssp_server.Proto.Workload name; scale;
             pipeline = "inorder";
             tenant = Ssp_server.Proto.default_tenant })
    with
    | Ssp_server.Proto.Adapted { cache; _ } -> cache
    | Ssp_server.Proto.Error_reply { pass; what; _ } ->
      failwith (Printf.sprintf "cluster bench: server error [%s]: %s" pass what)
    | _ -> failwith "cluster bench: unexpected reply"
  in
  let shutdown addr =
    match Ssp_server.Client.request_addr addr Ssp_server.Proto.Shutdown with
    | Ssp_server.Proto.Ok_reply -> ()
    | _ -> failwith "cluster bench: shutdown not acknowledged"
  in
  let th1, p1 = start_shard 1 in
  let th2, p2 = start_shard 2 in
  let shards2 = [ ("127.0.0.1", p1); ("127.0.0.1", p2) ] in
  let r1_th, r1_sock = start_router "router1" [ ("127.0.0.1", p1) ] in
  let r2_th, r2_sock = start_router "router2" shards2 in
  let r1 = Ssp_server.Client.Unix_sock r1_sock in
  let r2 = Ssp_server.Client.Unix_sock r2_sock in
  (* Warm both workloads through both routers (each warms the shard the
     key lands on; router1's single shard holds both keys). *)
  List.iter
    (fun name ->
      ignore (adapt r1 name);
      ignore (adapt r2 name))
    [ "mcf"; "em3d" ];
  (* Direct warm-hit target: the shard the 2-shard ring places mcf on —
     computed, not guessed, from the same ring the router uses. *)
  let owner_of name =
    let ring =
      Ssp_cluster.Ring.create
        (List.map Ssp_cluster.Router.node_of_shard shards2)
    in
    let req =
      Ssp_server.Proto.Adapt
        { prog = Ssp_server.Proto.Workload name; scale; pipeline = "inorder";
          tenant = Ssp_server.Proto.default_tenant }
    in
    let key = Option.get (Ssp_cluster.Router.affinity_key req) in
    match Ssp_cluster.Ring.lookup ring key with
    | Some node ->
      List.find (fun s -> Ssp_cluster.Router.node_of_shard s = node) shards2
    | None -> failwith "cluster bench: empty ring"
  in
  let owner_host, owner_port = owner_of "mcf" in
  let direct = Ssp_server.Client.Tcp (owner_host, owner_port) in
  let reps = 20 in
  let avg addr =
    let _, s =
      time (fun () ->
          for _ = 1 to reps do
            if not (String.equal (adapt addr "mcf") "hit") then
              failwith "cluster bench: expected a warm hit"
          done)
    in
    s /. float_of_int reps
  in
  let direct_s = avg direct in
  let routed_s = avg r2 in
  let throughput addr =
    let n_requests = 40 in
    let (), total_s =
      time (fun () ->
          let clients =
            List.init 2 (fun i ->
                Thread.create
                  (fun () ->
                    for k = 1 to n_requests / 2 do
                      ignore
                        (adapt addr (if (i + k) mod 2 = 0 then "mcf" else "em3d"))
                    done)
                  ())
          in
          List.iter Thread.join clients)
    in
    float_of_int n_requests /. total_s
  in
  let rps1 = throughput r1 in
  let rps2 = throughput r2 in
  shutdown r1;
  shutdown r2;
  shutdown (Ssp_server.Client.Tcp ("127.0.0.1", p1));
  shutdown (Ssp_server.Client.Tcp ("127.0.0.1", p2));
  List.iter Thread.join [ r1_th; r2_th; th1; th2 ];
  (* Replication write-through cost on the cold path: the same cold
     adapt through a replicating 2-shard cluster vs one with
     replication off — fresh shards each, so both compute exactly once
     and the delta is the synchronous Put_blob to the successor. *)
  let cold_adapt_s ~replicate idx =
    let tha, pa = start_shard (10 + (2 * idx)) in
    let thb, pb = start_shard (11 + (2 * idx)) in
    let shards = [ ("127.0.0.1", pa); ("127.0.0.1", pb) ] in
    let r_th, r_sock =
      start_router ~replicate (Printf.sprintf "router_repl%d" idx) shards
    in
    let router = Ssp_server.Client.Unix_sock r_sock in
    let (), s = time (fun () -> ignore (adapt router "mst")) in
    shutdown router;
    shutdown (Ssp_server.Client.Tcp ("127.0.0.1", pa));
    shutdown (Ssp_server.Client.Tcp ("127.0.0.1", pb));
    List.iter Thread.join [ r_th; tha; thb ];
    s
  in
  let cold_repl_s = cold_adapt_s ~replicate:true 0 in
  let cold_norepl_s = cold_adapt_s ~replicate:false 1 in
  (* Deadline shedding under saturation: a jobs=1 shard takes a burst of
     already-expired budgets (shed at admission), tight budgets (shed at
     compute once the queue eats them), and unbounded requests (served);
     the split is read back through the snapshot plane, the same way an
     operator would. *)
  let module T = Ssp_telemetry.Telemetry in
  let module Snapshot = Ssp_server.Snapshot in
  let t_was = !T.enabled in
  T.set_enabled true;
  let th_d, p_d = start_shard ~jobs:1 20 in
  let shard_d = Ssp_server.Client.Tcp ("127.0.0.1", p_d) in
  let snapshot_counter name =
    match Ssp_server.Client.request_addr shard_d Ssp_server.Proto.Stats_snapshot with
    | Ssp_server.Proto.Snapshot_reply { snapshot } ->
      Option.value ~default:0
        (List.assoc_opt name (Snapshot.decode snapshot).Snapshot.counters)
    | _ -> failwith "cluster bench: expected a snapshot"
  in
  let shed_counters =
    [
      "server.deadline.shed_admission"; "server.deadline.shed_compute";
      "server.deadline.shed_serialize"; "server.tenant.anon.served";
    ]
  in
  let before = List.map snapshot_counter shed_counters in
  (* A tight budget caps the socket timeout too, so the client may give
     up (EAGAIN) before the structured shed reply arrives — that is the
     deadline working; the server-side counters are what we read. *)
  let fire deadline_ms name =
    match
      Ssp_server.Client.request_env ~deadline_ms shard_d
        (Ssp_server.Proto.Adapt
           { prog = Ssp_server.Proto.Workload name; scale;
             pipeline = "inorder"; tenant = Ssp_server.Proto.default_tenant })
    with
    | _ -> ()
    | exception Unix.Unix_error _ -> ()
    | exception Ssp_ir.Error.Error _ -> ()
  in
  for _ = 1 to 5 do fire (-1.) "mcf" done;
  for _ = 1 to 5 do fire 0.5 "health" done;
  for _ = 1 to 5 do fire 0. "mcf" done;
  let after = List.map snapshot_counter shed_counters in
  let shed_admission, shed_compute, shed_serialize, served =
    match List.map2 ( - ) after before with
    | [ a; c; z; s ] -> (a, c, z, s)
    | _ -> (0, 0, 0, 0)
  in
  shutdown shard_d;
  Thread.join th_d;
  T.set_enabled t_was;
  Format.fprintf ppf "%-34s %8.3f ms@." "warm hit, direct to owning shard"
    (direct_s *. 1e3);
  Format.fprintf ppf "%-34s %8.3f ms  (%.2fx direct)@."
    "warm hit, via router" (routed_s *. 1e3)
    (routed_s /. Float.max 1e-9 direct_s);
  Format.fprintf ppf "%-34s %8.1f req/s@." "warm throughput, 1 shard" rps1;
  Format.fprintf ppf "%-34s %8.1f req/s  (%.2fx)@."
    "warm throughput, 2 shards" rps2
    (rps2 /. Float.max 1e-9 rps1);
  Format.fprintf ppf "%-34s %8.3f ms@." "cold adapt, replication off"
    (cold_norepl_s *. 1e3);
  Format.fprintf ppf "%-34s %8.3f ms  (%.2fx)@." "cold adapt, replication on"
    (cold_repl_s *. 1e3)
    (cold_repl_s /. Float.max 1e-9 cold_norepl_s);
  Format.fprintf ppf
    "%-34s %8d admission / %d compute / %d serialize / %d served@."
    "deadline shed (15 requests)" shed_admission shed_compute shed_serialize
    served;
  match json with
  | None -> ()
  | Some path ->
    let oc = open_out path in
    Printf.fprintf oc
      "{\"section\":\"cluster\",\"warm_hit\":{\"direct_s\":%.6f,\
       \"routed_s\":%.6f,\"router_overhead\":%.3f},\
       \"throughput\":{\"shards1_rps\":%.2f,\"shards2_rps\":%.2f,\
       \"scaling\":%.3f},\
       \"replication\":{\"cold_repl_s\":%.6f,\"cold_norepl_s\":%.6f,\
       \"overhead\":%.3f},\
       \"deadline\":{\"shed_admission\":%d,\"shed_compute\":%d,\
       \"shed_serialize\":%d,\"served\":%d}}\n"
      direct_s routed_s
      (routed_s /. Float.max 1e-9 direct_s)
      rps1 rps2
      (rps2 /. Float.max 1e-9 rps1)
      cold_repl_s cold_norepl_s
      (cold_repl_s /. Float.max 1e-9 cold_norepl_s)
      shed_admission shed_compute shed_serialize served;
    close_out oc;
    Format.fprintf ppf "@.cluster JSON written to %s@." path

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let json_float s key =
  let pat = "\"" ^ key ^ "\":" in
  let n = String.length s and m = String.length pat in
  let rec find i =
    if i + m > n then None
    else if String.equal (String.sub s i m) pat then Some (i + m)
    else find (i + 1)
  in
  match find 0 with
  | None -> None
  | Some i ->
    let j = ref i in
    while
      !j < n
      && (match s.[!j] with
         | '0' .. '9' | '.' | '-' | '+' | 'e' | 'E' -> true
         | _ -> false)
    do
      incr j
    done;
    float_of_string_opt (String.sub s i (!j - i))

(* ---- simspeed: raw simulator throughput (BENCH_8) ---- *)

(* Cycles/second of the full-detail cycle cores, measured end to end on
   compiled workloads (no adaptation — this times the simulator itself).
   Each timed number is the median of 3 runs after one discarded warmup
   run, the same discipline as --check-perf. The committed
   bench/simspeed_baseline.json pins the pre-overhaul numbers so the
   section can report the speedup of the flat-array cores against them. *)

let median3 f =
  ignore (f ()) (* warmup: page in code, warm allocator *);
  let xs = List.sort compare [ f (); f (); f () ] in
  List.nth xs 1

let simspeed_workloads = [ "mcf"; "em3d" ]

let simspeed_point ~setting ~core =
  let open Ssp_harness.Experiment in
  let pipeline =
    match core with
    | `Inorder -> Ssp_machine.Config.In_order
    | `Ooo -> Ssp_machine.Config.Out_of_order
  in
  let cfg = config_for setting pipeline in
  let progs =
    List.map
      (fun name ->
        Ssp_workloads.Workload.program
          (Ssp_workloads.Suite.find name)
          ~scale:setting.scale)
      simspeed_workloads
  in
  let run () =
    let cycles = ref 0 in
    let t0 = Unix.gettimeofday () in
    List.iter
      (fun p ->
        let s =
          match core with
          | `Inorder -> Ssp_sim.Inorder.run cfg p
          | `Ooo -> Ssp_sim.Ooo.run cfg p
        in
        cycles := !cycles + s.Ssp_sim.Stats.cycles)
      progs;
    let dt = Unix.gettimeofday () -. t0 in
    (!cycles, dt)
  in
  let cycles, dt = median3 run in
  float_of_int cycles /. Float.max 1e-9 dt /. 1e6

(* Minor-heap words allocated per simulated cycle on a full-detail run.
   The core loops themselves are allocation-free (pooled threads/frames,
   flat arrays, no per-cycle closures); what remains — around 4 words
   per cycle — is Int64 temporaries from executing the boxed ops in the
   detailed path. The number is a tripwire: reintroducing a per-cycle
   closure, queue, or list shows up as a multiple of it. *)
let alloc_probe ~setting ~core =
  let open Ssp_harness.Experiment in
  let pipeline, run =
    match core with
    | `Inorder -> (Ssp_machine.Config.In_order, Ssp_sim.Inorder.run ?attrib:None ?sampling:None)
    | `Ooo -> (Ssp_machine.Config.Out_of_order, Ssp_sim.Ooo.run ?attrib:None ?sampling:None)
  in
  let cfg = config_for setting pipeline in
  let prog =
    Ssp_workloads.Workload.program
      (Ssp_workloads.Suite.find "mcf")
      ~scale:setting.scale
  in
  ignore (run cfg prog) (* warm the memo pools; measure steady state *);
  let w0 = Gc.minor_words () in
  let s = run cfg prog in
  let dw = Gc.minor_words () -. w0 in
  dw /. float_of_int (max 1 s.Ssp_sim.Stats.cycles)

let simspeed_bench ~json () =
  let open Ssp_harness.Experiment in
  (* Full-detail throughput at the quick setting — the geometry the
     committed baseline was recorded with. *)
  let setting = quick in
  let io = simspeed_point ~setting ~core:`Inorder in
  let oo = simspeed_point ~setting ~core:`Ooo in
  let base =
    match read_file "bench/simspeed_baseline.json" with
    | exception Sys_error _ -> None
    | s -> (
      match (json_float s "inorder_mcps", json_float s "ooo_mcps") with
      | Some a, Some b -> Some (a, b)
      | _ -> None)
  in
  Format.fprintf ppf "full-detail throughput (quick, median of 3):@.";
  let ratio measured b = measured /. Float.max 1e-9 b in
  (match base with
  | Some (bio, boo) ->
    Format.fprintf ppf "  inorder %6.2f Mcyc/s  (baseline %5.2f, %4.2fx)@." io
      bio (ratio io bio);
    Format.fprintf ppf "  ooo     %6.2f Mcyc/s  (baseline %5.2f, %4.2fx)@." oo
      boo (ratio oo boo)
  | None ->
    Format.fprintf ppf
      "  inorder %6.2f Mcyc/s, ooo %6.2f Mcyc/s (no baseline file)@." io oo);
  let aw_io = alloc_probe ~setting ~core:`Inorder in
  let aw_oo = alloc_probe ~setting ~core:`Ooo in
  Format.fprintf ppf
    "  allocation: %.3f minor words/cycle inorder, %.3f ooo@." aw_io aw_oo;
  (* Sampled mode: full vs sampled wall clock and IPC error, every suite
     workload on both cores. A larger scale than quick so the
     detail/fast-forward alternation has room to amortize — the regime
     sampling exists for. The speedup is the median of 3 full/sampled
     ratio measurements (the shortest runs are a fraction of a second,
     where a single sample is at the mercy of the scheduler); the IPC
     error needs no repetition, both runs are deterministic. *)
  let sset = { quick with scale = 8; label = "simspeed" } in
  let sampling = Ssp_sim.Smt.default_sampling in
  Format.fprintf ppf
    "sampled mode (scale %d, windows %d:%d detail:ff):@." sset.scale
    sampling.Ssp_sim.Smt.detail_window sampling.Ssp_sim.Smt.ff_window;
  let rows =
    List.concat_map
      (fun (pn, pipeline, core) ->
        let cfg = config_for sset pipeline in
        let run ?sampling p =
          match core with
          | `Inorder -> Ssp_sim.Inorder.run ?sampling cfg p
          | `Ooo -> Ssp_sim.Ooo.run ?sampling cfg p
        in
        List.map
          (fun (w : Ssp_workloads.Workload.t) ->
            let prog = Ssp_workloads.Workload.program w ~scale:sset.scale in
            let measure () =
              let full, full_s = time (fun () -> run prog) in
              let samp, samp_s = time (fun () -> run ~sampling prog) in
              (full_s /. Float.max 1e-9 samp_s, full_s, samp_s, full, samp)
            in
            let m1 = measure () and m2 = measure () and m3 = measure () in
            let speedup, full_s, samp_s, full, samp =
              match
                List.sort
                  (fun (a, _, _, _, _) (b, _, _, _, _) -> compare a b)
                  [ m1; m2; m3 ]
              with
              | [ _; m; _ ] -> m
              | _ -> assert false
            in
            let ipc_err =
              (Ssp_sim.Stats.ipc samp -. Ssp_sim.Stats.ipc full)
              /. Ssp_sim.Stats.ipc full
            in
            Format.fprintf ppf
              "  %-8s %-10s full %6.2fs  sampled %5.2fs  %5.1fx  ipc err \
               %+5.2f%%@."
              pn w.Ssp_workloads.Workload.name full_s samp_s speedup
              (100. *. ipc_err);
            (pn, w.Ssp_workloads.Workload.name, speedup, ipc_err))
          Ssp_workloads.Suite.all)
      [
        ("inorder", Ssp_machine.Config.In_order, `Inorder);
        ("ooo", Ssp_machine.Config.Out_of_order, `Ooo);
      ]
  in
  let geomean xs =
    exp (List.fold_left (fun a x -> a +. log x) 0. xs
         /. float_of_int (List.length xs))
  in
  let speedups = List.map (fun (_, _, s, _) -> s) rows in
  let worst_err =
    List.fold_left (fun a (_, _, _, e) -> Float.max a (Float.abs e)) 0. rows
  in
  Format.fprintf ppf
    "  sampled speedup: %.1fx geomean, %.1fx min;  worst |ipc err| %.2f%%@."
    (geomean speedups)
    (List.fold_left Float.min infinity speedups)
    (100. *. worst_err);
  match json with
  | None -> ()
  | Some path ->
    let oc = open_out path in
    Printf.fprintf oc
      "{\"section\":\"simspeed\",\"full_detail\":{\"inorder_mcps\":%.4f,\
       \"ooo_mcps\":%.4f%s},\"alloc_words_per_cycle\":{\"inorder\":%.4f,\
       \"ooo\":%.4f},\"sampled\":[%s]}\n"
      io oo
      (match base with
      | Some (bio, boo) ->
        Printf.sprintf
          ",\"baseline_inorder_mcps\":%.4f,\"baseline_ooo_mcps\":%.4f,\
           \"ratio_inorder\":%.4f,\"ratio_ooo\":%.4f"
          bio boo (ratio io bio) (ratio oo boo)
      | None -> "")
      aw_io aw_oo
      (String.concat ","
         (List.map
            (fun (pn, wn, s, e) ->
              Printf.sprintf
                "{\"core\":\"%s\",\"workload\":\"%s\",\"speedup\":%.4f,\
                 \"ipc_err\":%.6f}"
                pn wn s e)
            rows));
    close_out oc;
    Format.fprintf ppf "json written to %s@." path

let simspeed_update ~baseline_path () =
  let setting = Ssp_harness.Experiment.quick in
  let io = simspeed_point ~setting ~core:`Inorder in
  let oo = simspeed_point ~setting ~core:`Ooo in
  let oc = open_out baseline_path in
  Printf.fprintf oc
    "{\"setting\":\"quick\",\"inorder_mcps\":%.4f,\"ooo_mcps\":%.4f}\n" io oo;
  close_out oc;
  Format.fprintf ppf "inorder %.2f Mcyc/s, ooo %.2f Mcyc/s@." io oo;
  Format.fprintf ppf "simspeed baseline written to %s@." baseline_path

(* ---- telemetry overhead (BENCH_7) ---- *)

(* The serving plane leaves telemetry on in production (spans, counters,
   and the log-bucketed latency histograms), so its overhead on the
   compute path is a first-class number: the same
   compile -> profile -> adapt -> simulate chain for one workload, with
   instrumentation off and then on. *)
let telemetry_phase ~setting () =
  let open Ssp_harness.Experiment in
  let cfg = config_for setting Ssp_machine.Config.In_order in
  let w = Ssp_workloads.Suite.find "mcf" in
  let prog = Ssp_workloads.Workload.program w ~scale:setting.scale in
  let _, s =
    time (fun () ->
        let profile = Ssp_profiling.Collect.collect ~config:cfg prog in
        let r = Ssp.Adapt.run ~config:cfg prog profile in
        Ssp_sim.Inorder.run cfg r.Ssp.Adapt.prog)
  in
  s

let telemetry_overhead () =
  let module T = Ssp_telemetry.Telemetry in
  let setting = Ssp_harness.Experiment.quick in
  let was = !T.enabled in
  T.set_enabled false;
  let off_s = telemetry_phase ~setting () in
  T.set_enabled true;
  T.reset ();
  let on_s = telemetry_phase ~setting () in
  T.reset ();
  T.set_enabled was;
  (off_s, on_s)

let telemetry_bench ~json () =
  let off_s, on_s = telemetry_overhead () in
  let overhead = on_s /. Float.max 1e-9 off_s in
  Format.fprintf ppf "%-36s %9.3fs@." "pipeline+sim (mcf), telemetry off"
    off_s;
  Format.fprintf ppf "%-36s %9.3fs@." "pipeline+sim (mcf), telemetry on" on_s;
  Format.fprintf ppf "%-36s %8.2fx@." "overhead" overhead;
  match json with
  | None -> ()
  | Some path ->
    let oc = open_out path in
    Printf.fprintf oc
      "{\"section\":\"telemetry\",\"off_s\":%.6f,\"on_s\":%.6f,\"overhead\":%.4f}\n"
      off_s on_s overhead;
    close_out oc;
    Format.fprintf ppf "json written to %s@." path

(* ---- --check-perf: jobs=1 wall-clock regression gate ---- *)

let check_perf ~update ~baseline_path () =
  let setting = Ssp_harness.Experiment.quick in
  (* Median of 3 timed runs after one discarded warmup run: the warmup
     pages in code and warms the allocator, the median shrugs off a
     one-off scheduler hiccup — the gate flakes far less than a single
     sample would. *)
  let pipeline_s, sim_s =
    ignore (scaling_phases ~setting ~jobs:1);
    let runs =
      List.init 3 (fun _ ->
          let _, _, p, s = scaling_phases ~setting ~jobs:1 in
          (p, s))
    in
    let med f = List.nth (List.sort compare (List.map f runs)) 1 in
    (med fst, med snd)
  in
  Format.fprintf ppf
    "jobs=1 wall clock (quick, median of 3): pipeline %.2fs, sim %.2fs@."
    pipeline_s sim_s;
  if update then begin
    let oc = open_out baseline_path in
    Printf.fprintf oc
      "{\"setting\":\"quick\",\"pipeline_s\":%.4f,\"sim_s\":%.4f}\n"
      pipeline_s sim_s;
    close_out oc;
    Format.fprintf ppf "baseline written to %s@." baseline_path
  end
  else begin
    match read_file baseline_path with
    | exception Sys_error msg ->
      Format.fprintf ppf
        "no baseline (%s); run with --update-baseline to record one@." msg;
      exit 1
    | s ->
      let check phase measured =
        match json_float s phase with
        | None ->
          Format.fprintf ppf "baseline %s: missing key %s@." baseline_path
            phase;
          true
        | Some base ->
          (* 25% relative budget plus a small absolute grace so sub-second
             phases don't flake on timer noise. *)
          let limit = (base *. 1.25) +. 0.5 in
          let bad = measured > limit in
          Format.fprintf ppf "%-12s %.2fs vs baseline %.2fs (limit %.2fs)%s@."
            phase measured base limit
            (if bad then "  REGRESSED" else "");
          bad
      in
      let bad1 = check "pipeline_s" pipeline_s in
      let bad2 = check "sim_s" sim_s in
      (* Telemetry overhead is gated relative to the same run (no
         baseline key needed): instrumentation must stay cheap enough
         to leave on in production. *)
      let off_s, on_s = telemetry_overhead () in
      let limit = (off_s *. 1.5) +. 0.25 in
      let bad3 = on_s > limit in
      Format.fprintf ppf
        "%-12s on %.2fs vs off %.2fs (limit %.2fs)%s@." "telemetry" on_s
        off_s limit
        (if bad3 then "  REGRESSED" else "");
      if bad1 || bad2 || bad3 then begin
        Format.fprintf ppf
          "@.FAIL: wall-clock regression over 25%% against %s@." baseline_path;
        exit 1
      end
      else Format.fprintf ppf "@.perf check OK (within 25%% of baseline)@."
  end

(* ---- Bechamel micro-benchmarks of the tool's algorithms ---- *)

let micro () =
  let open Bechamel in
  let mcf_prog = Ssp_workloads.(Workload.program (Suite.find "mcf") ~scale:2) in
  let profile = Ssp_profiling.Collect.collect mcf_prog in
  let regions = Ssp_analysis.Regions.compute mcf_prog in
  let callgraph = Ssp_analysis.Callgraph.compute mcf_prog in
  let delinquent = Ssp.Delinquent.identify mcf_prog profile in
  let load = List.hd delinquent.Ssp.Delinquent.loads in
  let region = Ssp_analysis.Regions.innermost_at regions load.Ssp.Delinquent.iref in
  let slice =
    match Ssp.Slicer.slice_region regions profile ~region load with
    | Some s -> s
    | None -> failwith "no slice"
  in
  let cfg = Ssp_machine.Config.in_order in
  let small_cfg = Ssp_machine.Config.scale_caches cfg 64 in
  let src = (Ssp_workloads.Suite.find "mcf").Ssp_workloads.Workload.source 1 in
  let tiny = Ssp_workloads.(Workload.program (Suite.find "mcf") ~scale:1) in
  let rng = Random.State.make [| 42 |] in
  let random_graph =
    let n = 256 in
    Ssp_analysis.Digraph.make ~n
      (List.init (n * 4) (fun _ ->
           (Random.State.int rng n, Random.State.int rng n)))
  in
  let tests =
    [
      Test.make ~name:"frontend: compile mcf"
        (Staged.stage (fun () -> Ssp_minic.Frontend.compile src));
      Test.make ~name:"analysis: regions+depgraph"
        (Staged.stage (fun () ->
             let r = Ssp_analysis.Regions.compute mcf_prog in
             Ssp_analysis.Regions.depgraph_of r "primal_bea_mpp"));
      Test.make ~name:"analysis: tarjan scc 256n/1024e"
        (Staged.stage (fun () -> Ssp_analysis.Digraph.tarjan_scc random_graph));
      Test.make ~name:"tool: slice delinquent load"
        (Staged.stage (fun () ->
             Ssp.Slicer.slice_region regions profile ~region load));
      Test.make ~name:"tool: schedule slice"
        (Staged.stage (fun () ->
             Ssp.Schedule.build regions profile cfg ~trips:1000 slice));
      Test.make ~name:"tool: full adaptation"
        (Staged.stage (fun () ->
             Ssp.Select.choose regions callgraph profile cfg load));
      Test.make ~name:"sim: functional (mcf scale 1)"
        (Staged.stage (fun () -> Ssp_sim.Funcsim.run tiny));
      Test.make ~name:"sim: in-order cycle (mcf scale 1)"
        (Staged.stage (fun () -> Ssp_sim.Inorder.run small_cfg tiny));
      Test.make ~name:"sim: ooo cycle (mcf scale 1)"
        (Staged.stage (fun () ->
             Ssp_sim.Ooo.run
               (Ssp_machine.Config.scale_caches
                  Ssp_machine.Config.out_of_order 64)
               tiny));
    ]
  in
  let benchmark test =
    let ols =
      Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
    in
    let instances = Toolkit.Instance.[ monotonic_clock ] in
    let cfg_b =
      Benchmark.cfg ~limit:200 ~quota:(Time.second 0.8) ~kde:(Some 10) ()
    in
    let raw = Benchmark.all cfg_b instances test in
    Analyze.all ols Toolkit.Instance.monotonic_clock raw
  in
  section "Micro-benchmarks (Bechamel, monotonic clock)";
  List.iter
    (fun test ->
      let results = benchmark test in
      Hashtbl.iter
        (fun name ols ->
          match Bechamel.Analyze.OLS.estimates ols with
          | Some [ est ] ->
            let pretty =
              if est > 1e9 then Printf.sprintf "%8.2f s " (est /. 1e9)
              else if est > 1e6 then Printf.sprintf "%8.2f ms" (est /. 1e6)
              else if est > 1e3 then Printf.sprintf "%8.2f us" (est /. 1e3)
              else Printf.sprintf "%8.0f ns" est
            in
            Format.fprintf ppf "%-40s %s/run@." name pretty
          | _ -> Format.fprintf ppf "%-40s (no estimate)@." name)
        results)
    tests

let () =
  let args = Array.to_list Sys.argv |> List.tl in
  let quick = List.mem "--quick" args in
  let rec split_opt name = function
    | a :: path :: rest when a = name -> (Some path, rest)
    | a :: rest ->
      let t, others = split_opt name rest in
      (t, a :: others)
    | [] -> (None, [])
  in
  let trace, args = split_opt "--trace" args in
  let json, args = split_opt "--json" args in
  let jobs_s, args = split_opt "--jobs" args in
  let baseline, args = split_opt "--baseline" args in
  let jobs =
    match jobs_s with
    | None -> 1
    | Some s -> (
      match int_of_string_opt s with
      | Some n when n >= 1 -> n
      | _ ->
        prerr_endline "bench: --jobs expects a positive integer";
        exit 2)
  in
  let baseline_path =
    Option.value baseline ~default:"bench/perf_baseline.json"
  in
  (match trace with
  | Some _ -> Ssp_telemetry.Telemetry.set_enabled true
  | None -> ());
  let wanted =
    List.filter
      (fun a ->
        a <> "--quick" && a <> "--check-perf" && a <> "--update-baseline"
        && a <> "--update-simspeed")
      args
  in
  if List.mem "--update-simspeed" args then begin
    simspeed_update ~baseline_path:"bench/simspeed_baseline.json" ();
    exit 0
  end;
  if List.mem "--check-perf" args || List.mem "--update-baseline" args then begin
    check_perf
      ~update:(List.mem "--update-baseline" args)
      ~baseline_path ();
    exit 0
  end;
  let setting =
    if quick then Ssp_harness.Experiment.quick
    else Ssp_harness.Experiment.reference
  in
  let run name f =
    if wanted = [] || List.mem name wanted then begin
      section name;
      wall f
    end
  in
  Format.fprintf ppf "SSP post-pass reproduction — %s setting (scale %d, caches /%d)@."
    setting.Ssp_harness.Experiment.label setting.Ssp_harness.Experiment.scale
    setting.Ssp_harness.Experiment.cache_divisor;
  if jobs > 1 then
    Format.fprintf ppf "parallel engine: %d jobs@." jobs;
  (* With a pool available, fill the per-(workload, setting) memo up front
     so the figure/table sections below render from cache hits. *)
  let memo_sections = [ "table2"; "fig2"; "fig8"; "fig9"; "fig10" ] in
  if
    jobs > 1
    && (wanted = [] || List.exists (fun s -> List.mem s memo_sections) wanted)
  then
    Ssp_harness.Experiment.prime ~setting ~jobs Ssp_workloads.Suite.all;
  run "table1" (fun () -> Ssp_harness.Figures.table1 ppf ());
  run "table2" (fun () -> Ssp_harness.Figures.table2 ~setting ppf ());
  run "fig2" (fun () -> Ssp_harness.Figures.fig2 ~setting ppf ());
  run "fig8" (fun () -> Ssp_harness.Figures.fig8 ~setting ppf ());
  run "fig9" (fun () -> Ssp_harness.Figures.fig9 ~setting ppf ());
  run "fig10" (fun () -> Ssp_harness.Figures.fig10 ~setting ppf ());
  run "hand" (fun () -> Ssp_harness.Hand_vs_auto.print ~setting ppf ());
  run "ablate" (fun () -> Ssp_harness.Ablation.print ~setting ~jobs ppf ());
  run "perf" (perf ~setting ~jobs ~json);
  (* The scaling comparison re-runs the suite twice; it only runs when
     asked for explicitly. *)
  if List.mem "scaling" wanted then begin
    section "scaling";
    wall (scaling ~setting ~jobs ~json)
  end;
  (* The serving bench hosts a daemon in-process; like scaling, it only
     runs when asked for explicitly. *)
  if List.mem "serving" wanted then begin
    section "serving";
    wall (serving ~json)
  end;
  (* Same deal for the cluster bench: 4 in-process daemons is not free. *)
  if List.mem "cluster" wanted then begin
    section "cluster";
    wall (cluster ~json)
  end;
  (* Telemetry-overhead bench (BENCH_7): explicit-only, it runs the
     compute chain twice. *)
  if List.mem "telemetry" wanted then begin
    section "telemetry";
    wall (telemetry_bench ~json)
  end;
  (* Simulator-throughput bench (BENCH_8): explicit-only, it runs the
     whole suite full-detail and sampled on both cores. *)
  if List.mem "simspeed" wanted then begin
    section "simspeed";
    wall (simspeed_bench ~json)
  end;
  (* Closed-loop feedback bench (BENCH_9): explicit-only, it hosts a
     daemon and runs tuning loops to their fixed points. *)
  if List.mem "feedback" wanted then begin
    section "feedback";
    wall (feedback_bench ~json)
  end;
  run "micro" micro;
  (match trace with
  | Some path ->
    Ssp_telemetry.Telemetry.write_json path (Ssp_telemetry.Telemetry.report ());
    Format.fprintf ppf "telemetry report written to %s@." path
  | None -> ());
  Format.fprintf ppf "@."
