(* Regenerates every table and figure of the paper's evaluation, then runs
   Bechamel micro-benchmarks of the tool's own algorithms.

   Usage: main.exe [--quick] [--trace OUT.JSON] [table1] [fig2] [table2]
                   [fig8] [fig9] [fig10] [hand] [ablate] [micro]
   With no selection, everything runs in paper order. [--quick] switches to
   small working sets and scaled-down caches (same shapes, seconds instead
   of minutes). [--trace OUT.JSON] enables the telemetry subsystem and dumps
   the structured run report behind the numbers. *)

let ppf = Format.std_formatter

let section title =
  Format.fprintf ppf "@.==== %s ====@.@." title

let wall f =
  let t0 = Unix.gettimeofday () in
  f ();
  Format.fprintf ppf "@.[%.1fs]@." (Unix.gettimeofday () -. t0)

(* ---- Bechamel micro-benchmarks of the tool's algorithms ---- *)

let micro () =
  let open Bechamel in
  let mcf_prog = Ssp_workloads.(Workload.program (Suite.find "mcf") ~scale:2) in
  let profile = Ssp_profiling.Collect.collect mcf_prog in
  let regions = Ssp_analysis.Regions.compute mcf_prog in
  let callgraph = Ssp_analysis.Callgraph.compute mcf_prog in
  let delinquent = Ssp.Delinquent.identify mcf_prog profile in
  let load = List.hd delinquent.Ssp.Delinquent.loads in
  let region = Ssp_analysis.Regions.innermost_at regions load.Ssp.Delinquent.iref in
  let slice =
    match Ssp.Slicer.slice_region regions profile ~region load with
    | Some s -> s
    | None -> failwith "no slice"
  in
  let cfg = Ssp_machine.Config.in_order in
  let small_cfg = Ssp_machine.Config.scale_caches cfg 64 in
  let src = (Ssp_workloads.Suite.find "mcf").Ssp_workloads.Workload.source 1 in
  let tiny = Ssp_workloads.(Workload.program (Suite.find "mcf") ~scale:1) in
  let rng = Random.State.make [| 42 |] in
  let random_graph =
    let n = 256 in
    Ssp_analysis.Digraph.make ~n
      (List.init (n * 4) (fun _ ->
           (Random.State.int rng n, Random.State.int rng n)))
  in
  let tests =
    [
      Test.make ~name:"frontend: compile mcf"
        (Staged.stage (fun () -> Ssp_minic.Frontend.compile src));
      Test.make ~name:"analysis: regions+depgraph"
        (Staged.stage (fun () ->
             let r = Ssp_analysis.Regions.compute mcf_prog in
             Ssp_analysis.Regions.depgraph_of r "primal_bea_mpp"));
      Test.make ~name:"analysis: tarjan scc 256n/1024e"
        (Staged.stage (fun () -> Ssp_analysis.Digraph.tarjan_scc random_graph));
      Test.make ~name:"tool: slice delinquent load"
        (Staged.stage (fun () ->
             Ssp.Slicer.slice_region regions profile ~region load));
      Test.make ~name:"tool: schedule slice"
        (Staged.stage (fun () ->
             Ssp.Schedule.build regions profile cfg ~trips:1000 slice));
      Test.make ~name:"tool: full adaptation"
        (Staged.stage (fun () ->
             Ssp.Select.choose regions callgraph profile cfg load));
      Test.make ~name:"sim: functional (mcf scale 1)"
        (Staged.stage (fun () -> Ssp_sim.Funcsim.run tiny));
      Test.make ~name:"sim: in-order cycle (mcf scale 1)"
        (Staged.stage (fun () -> Ssp_sim.Inorder.run small_cfg tiny));
      Test.make ~name:"sim: ooo cycle (mcf scale 1)"
        (Staged.stage (fun () ->
             Ssp_sim.Ooo.run
               (Ssp_machine.Config.scale_caches
                  Ssp_machine.Config.out_of_order 64)
               tiny));
    ]
  in
  let benchmark test =
    let ols =
      Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
    in
    let instances = Toolkit.Instance.[ monotonic_clock ] in
    let cfg_b =
      Benchmark.cfg ~limit:200 ~quota:(Time.second 0.8) ~kde:(Some 10) ()
    in
    let raw = Benchmark.all cfg_b instances test in
    Analyze.all ols Toolkit.Instance.monotonic_clock raw
  in
  section "Micro-benchmarks (Bechamel, monotonic clock)";
  List.iter
    (fun test ->
      let results = benchmark test in
      Hashtbl.iter
        (fun name ols ->
          match Bechamel.Analyze.OLS.estimates ols with
          | Some [ est ] ->
            let pretty =
              if est > 1e9 then Printf.sprintf "%8.2f s " (est /. 1e9)
              else if est > 1e6 then Printf.sprintf "%8.2f ms" (est /. 1e6)
              else if est > 1e3 then Printf.sprintf "%8.2f us" (est /. 1e3)
              else Printf.sprintf "%8.0f ns" est
            in
            Format.fprintf ppf "%-40s %s/run@." name pretty
          | _ -> Format.fprintf ppf "%-40s (no estimate)@." name)
        results)
    tests

let () =
  let args = Array.to_list Sys.argv |> List.tl in
  let quick = List.mem "--quick" args in
  let rec split_trace = function
    | "--trace" :: path :: rest -> (Some path, rest)
    | a :: rest ->
      let t, others = split_trace rest in
      (t, a :: others)
    | [] -> (None, [])
  in
  let trace, args = split_trace args in
  (match trace with
  | Some _ -> Ssp_telemetry.Telemetry.set_enabled true
  | None -> ());
  let wanted = List.filter (fun a -> a <> "--quick") args in
  let setting =
    if quick then Ssp_harness.Experiment.quick
    else Ssp_harness.Experiment.reference
  in
  let run name f =
    if wanted = [] || List.mem name wanted then begin
      section name;
      wall f
    end
  in
  Format.fprintf ppf "SSP post-pass reproduction — %s setting (scale %d, caches /%d)@."
    setting.Ssp_harness.Experiment.label setting.Ssp_harness.Experiment.scale
    setting.Ssp_harness.Experiment.cache_divisor;
  run "table1" (fun () -> Ssp_harness.Figures.table1 ppf ());
  run "table2" (fun () -> Ssp_harness.Figures.table2 ~setting ppf ());
  run "fig2" (fun () -> Ssp_harness.Figures.fig2 ~setting ppf ());
  run "fig8" (fun () -> Ssp_harness.Figures.fig8 ~setting ppf ());
  run "fig9" (fun () -> Ssp_harness.Figures.fig9 ~setting ppf ());
  run "fig10" (fun () -> Ssp_harness.Figures.fig10 ~setting ppf ());
  run "hand" (fun () -> Ssp_harness.Hand_vs_auto.print ~setting ppf ());
  run "ablate" (fun () -> Ssp_harness.Ablation.print ~setting ppf ());
  run "micro" micro;
  (match trace with
  | Some path ->
    Ssp_telemetry.Telemetry.write_json path (Ssp_telemetry.Telemetry.report ());
    Format.fprintf ppf "telemetry report written to %s@." path
  | None -> ());
  Format.fprintf ppf "@."
