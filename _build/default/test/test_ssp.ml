open Ssp_isa

(* The Figure 3 fixture: the mcf pricing loop. *)
let mcf_like scale =
  Printf.sprintf
    "struct node_t { int potential; int pad; }\n\
     struct arc_t { int cost; node_t* tail; int ident; int pad; }\n\
     arc_t* arcs;\n\
     node_t* nodes;\n\
     int main() {\n\
    \  int narcs = %d;\n\
    \  int nnodes = %d;\n\
    \  nodes = newarray(node_t, nnodes);\n\
    \  for (int i = 0; i < nnodes; i = i + 1) { node_t* n = nodes + i; \
     n->potential = i; }\n\
    \  arcs = newarray(arc_t, narcs);\n\
    \  for (int i = 0; i < narcs; i = i + 1) { arc_t* a = arcs + i; a->cost \
     = i; a->tail = nodes + rand() %% nnodes; a->ident = 1; }\n\
    \  int s = 0;\n\
    \  arc_t* arc = arcs;\n\
    \  arc_t* stop = arcs + narcs;\n\
    \  while (arc < stop) { s = s + arc->tail->potential; arc = arc + 1; }\n\
    \  print_int(s);\n\
    \  return 0;\n\
     }"
    (3000 * scale) (4000 * scale)

let compile_and_profile src =
  let prog = Ssp_minic.Frontend.compile src in
  (* Profile with scaled-down caches: the fixtures are test-sized, and the
     selector (rightly) refuses slices whose loads mostly hit L2. *)
  let profile =
    Ssp_profiling.Collect.collect
      ~config:(Ssp_machine.Config.scale_caches Ssp_machine.Config.in_order 32)
      prog
  in
  (prog, profile)

let test_delinquent_identification () =
  let prog, profile = compile_and_profile (mcf_like 2) in
  let d = Ssp.Delinquent.identify ~coverage:0.9 prog profile in
  Alcotest.(check bool) "found delinquent loads" true
    (d.Ssp.Delinquent.loads <> []);
  Alcotest.(check bool) "coverage reached" true (d.Ssp.Delinquent.covered >= 0.85);
  (* the pointer-chase load must be among them *)
  Alcotest.(check bool) "loads are in main" true
    (List.for_all
       (fun (l : Ssp.Delinquent.load) ->
         String.equal l.Ssp.Delinquent.iref.Ssp_ir.Iref.fn "main")
       d.Ssp.Delinquent.loads)

let slice_one src =
  (* Pick the delinquent load whose slice contains the pointer chase (the
     tail->potential load): the arc->tail load's own slice is the pure
     induction arithmetic. *)
  let prog, profile = compile_and_profile src in
  let d = Ssp.Delinquent.identify prog profile in
  let regions = Ssp_analysis.Regions.compute prog in
  let slices =
    List.filter_map
      (fun (load : Ssp.Delinquent.load) ->
        let region =
          Ssp_analysis.Regions.innermost_at regions load.Ssp.Delinquent.iref
        in
        match Ssp.Slicer.slice_region regions profile ~region load with
        | Some s -> Some (load, s)
        | None -> None)
      d.Ssp.Delinquent.loads
  in
  let with_chase =
    List.find_opt
      (fun (_, (s : Ssp.Slice.t)) ->
        Ssp_ir.Iref.Set.exists
          (fun i -> Op.is_load (Ssp_ir.Prog.instr prog i))
          s.Ssp.Slice.instrs)
      slices
  in
  match (with_chase, slices) with
  | Some (load, s), _ | None, (load, s) :: _ -> (prog, profile, regions, load, s)
  | None, [] -> Alcotest.fail "expected a slice"

let test_slice_contents () =
  let prog, _profile, _regions, load, s = slice_one (mcf_like 2) in
  (* The slice contains only replayable instructions: no stores, calls,
     allocs. *)
  Ssp_ir.Iref.Set.iter
    (fun i ->
      let op = Ssp_ir.Prog.instr prog i in
      Alcotest.(check bool)
        (Printf.sprintf "replayable %s" (Op.to_string op))
        true
        (match op with
        | Op.Movi _ | Op.Mov _ | Op.Alu _ | Op.Alui _ | Op.Cmp _ | Op.Cmpi _
        | Op.Load _ ->
          true
        | _ -> false))
    s.Ssp.Slice.instrs;
  Alcotest.(check bool) "slice is small" true (Ssp.Slice.size s <= 20);
  Alcotest.(check bool) "live-ins bounded" true
    (List.length s.Ssp.Slice.live_ins <= 6);
  (* the induction (arc) must be recognized as a recurrence *)
  Alcotest.(check bool) "has a recurrence live-in" true
    (List.exists (fun (l : Ssp.Slice.live_in) -> l.Ssp.Slice.recurrence)
       s.Ssp.Slice.live_ins);
  ignore load

let test_slice_respects_region () =
  (* Slicing the same load at proc level gives a superset of the loop
     slice's live-in resolution: the loop slice may not contain defs outside
     the loop. *)
  let prog, profile, regions, load, s = slice_one (mcf_like 2) in
  ignore prog;
  let loop_blocks =
    Ssp_analysis.Regions.blocks_of regions s.Ssp.Slice.region
  in
  Ssp_ir.Iref.Set.iter
    (fun (i : Ssp_ir.Iref.t) ->
      Alcotest.(check bool) "slice member inside region" true
        (List.mem i.Ssp_ir.Iref.blk loop_blocks))
    s.Ssp.Slice.instrs;
  ignore profile;
  ignore load

let test_schedule_partition () =
  let _prog, profile, regions, _load, s = slice_one (mcf_like 2) in
  let cfg = Ssp_machine.Config.in_order in
  let sched = Ssp.Schedule.build regions profile cfg ~trips:1000 s in
  (* mcf's induction forms a dependence cycle: critical sub-slice is
     non-empty, and the pointer loads are non-critical. *)
  Alcotest.(check bool) "critical non-empty" true
    (sched.Ssp.Schedule.order_critical <> []);
  Alcotest.(check bool) "partition covers the slice exactly" true
    (List.length sched.Ssp.Schedule.order_critical
     + List.length sched.Ssp.Schedule.order_non_critical
    = Ssp.Slice.size s
    && List.for_all
         (fun i ->
           not
             (List.exists (Ssp_ir.Iref.equal i)
                sched.Ssp.Schedule.order_critical))
         sched.Ssp.Schedule.order_non_critical);
  Alcotest.(check bool) "slice contains the pointer chase" true
    (List.exists
       (fun i -> Op.is_load (Ssp_ir.Prog.instr _prog i))
       (sched.Ssp.Schedule.order_critical
       @ sched.Ssp.Schedule.order_non_critical));
  (* heights are consistent *)
  Alcotest.(check bool) "critical height <= slice height" true
    (sched.Ssp.Schedule.height_critical <= sched.Ssp.Schedule.height_slice);
  Alcotest.(check bool) "slice height <= region height" true
    (sched.Ssp.Schedule.height_slice <= sched.Ssp.Schedule.height_region);
  (* slack grows linearly *)
  Alcotest.(check int) "slack csp linear"
    (2 * Ssp.Schedule.slack_csp sched 1)
    (Ssp.Schedule.slack_csp sched 2);
  (* low ILP in pointer chains, as the paper observes *)
  Alcotest.(check bool) "available ILP is modest" true
    (sched.Ssp.Schedule.available_ilp < 8.0)

let test_schedule_order_legality () =
  (* In the scheduled order, no instruction may read a register defined by a
     later critical/non-critical instruction through an intra-iteration
     dependence. We approximate: within order_critical, defs precede uses
     for slice-internal deps that are not loop-carried. *)
  let prog, profile, regions, _load, s = slice_one (mcf_like 2) in
  let cfg = Ssp_machine.Config.in_order in
  let sched = Ssp.Schedule.build regions profile cfg ~trips:1000 s in
  let order =
    sched.Ssp.Schedule.order_critical @ sched.Ssp.Schedule.order_non_critical
  in
  let pos = Hashtbl.create 16 in
  List.iteri (fun i x -> Hashtbl.replace pos x i) order;
  let reach = Ssp_analysis.Regions.reaching_of regions "main" in
  let ok = ref true in
  List.iter
    (fun use ->
      let op = Ssp_ir.Prog.instr prog use in
      List.iter
        (fun r ->
          List.iter
            (fun (d : Ssp_analysis.Reaching.def) ->
              match Hashtbl.find_opt pos d.Ssp_analysis.Reaching.site with
              | Some dp ->
                let up = Hashtbl.find pos use in
                if dp > up then begin
                  (* must be loop-carried to be legal *)
                  let intra =
                    Ssp_analysis.Reaching.defs_without_back_edges reach ~use r
                  in
                  if
                    List.exists
                      (fun (i : Ssp_analysis.Reaching.def) ->
                        Ssp_ir.Iref.equal i.Ssp_analysis.Reaching.site
                          d.Ssp_analysis.Reaching.site)
                      intra
                  then ok := false
                end
              | None -> ())
            (Ssp_analysis.Reaching.reaching_defs reach ~use r))
        (Op.uses op))
    order;
  Alcotest.(check bool) "no intra-iteration dep violated" true !ok

let adapt src =
  let prog, profile = compile_and_profile src in
  (prog, Ssp.Adapt.run ~config:Ssp_machine.Config.in_order prog profile)

let test_adapt_structure () =
  let original, result = adapt (mcf_like 2) in
  let adapted = result.Ssp.Adapt.prog in
  (* validation already ran in codegen; spot-check the Figure 7 layout *)
  let count_op p =
    let n = ref 0 in
    Ssp_ir.Prog.iter_instrs adapted (fun _ op -> if p op then incr n);
    !n
  in
  Alcotest.(check bool) "has chk.c" true
    (count_op (function Op.Chk_c _ -> true | _ -> false) > 0);
  Alcotest.(check bool) "has spawns" true
    (count_op (function Op.Spawn _ -> true | _ -> false) > 0);
  Alcotest.(check bool) "has kill" true
    (count_op (function Op.Kill -> true | _ -> false) > 0);
  Alcotest.(check bool) "has prefetch or value-used load" true
    (count_op (function Op.Lfetch _ -> true | _ -> false) > 0
    || List.exists
         (fun (c : Ssp.Select.choice) ->
           List.exists
             (fun (t : Ssp.Slice.target) -> t.Ssp.Slice.value_used)
             c.Ssp.Select.schedule.Ssp.Schedule.slice.Ssp.Slice.targets)
         result.Ssp.Adapt.choices);
  (* the original program is untouched *)
  let chk_in_original = ref 0 in
  Ssp_ir.Prog.iter_instrs original (fun _ op ->
      match op with Op.Chk_c _ -> incr chk_in_original | _ -> ());
  Alcotest.(check int) "original untouched" 0 !chk_in_original

let test_adapt_differential () =
  (* The key §2 property: the adapted binary computes exactly what the
     original computes — with spawning disabled (chk.c as nop) and with
     speculative threads running. *)
  let original, result = adapt (mcf_like 1) in
  let adapted = result.Ssp.Adapt.prog in
  let base = Ssp_sim.Funcsim.run original in
  let quiet = Ssp_sim.Funcsim.run ~spawning:false adapted in
  let live = Ssp_sim.Funcsim.run ~spawning:true adapted in
  Alcotest.(check (list int64)) "outputs equal (spawning off)"
    base.Ssp_sim.Funcsim.outputs quiet.Ssp_sim.Funcsim.outputs;
  Alcotest.(check (list int64)) "outputs equal (spawning on)"
    base.Ssp_sim.Funcsim.outputs live.Ssp_sim.Funcsim.outputs;
  Alcotest.(check bool) "speculative threads actually ran" true
    (live.Ssp_sim.Funcsim.spawns > 0)

let test_trigger_dominance () =
  let _original, result = adapt (mcf_like 2) in
  ignore result;
  let prog, profile = compile_and_profile (mcf_like 2) in
  let regions = Ssp_analysis.Regions.compute prog in
  let callgraph = Ssp_analysis.Callgraph.compute prog in
  let d = Ssp.Delinquent.identify prog profile in
  List.iter
    (fun load ->
      match
        Ssp.Select.choose regions callgraph profile
          Ssp_machine.Config.in_order load
      with
      | None -> ()
      | Some c ->
        List.iter
          (fun tr ->
            Alcotest.(check bool) "trigger dominates load" true
              (Ssp.Trigger.dominates_load regions tr load.Ssp.Delinquent.iref))
          c.Ssp.Select.triggers)
    d.Ssp.Delinquent.loads

let test_report_table2 () =
  let _original, result = adapt (mcf_like 2) in
  let n, interproc, avg_size, avg_live = Ssp.Report.table2_row result.Ssp.Adapt.report in
  Alcotest.(check bool) "at least one slice" true (n >= 1);
  Alcotest.(check bool) "interproc <= n" true (interproc <= n);
  Alcotest.(check bool) "sizes positive" true (avg_size > 0.0);
  Alcotest.(check bool) "live-ins positive" true (avg_live > 0.0)

let test_interprocedural_binding () =
  (* A recursive tree walk: the slice of t->left's address lives in the
     whole-procedure region with the parameter as only live-in, so it binds
     at the call sites. *)
  let src =
    "struct tree { int value; tree* left; tree* right; }\n\
     tree* build(int d) { tree* t = new tree; t->value = 1; if (d > 0) { \
     t->left = build(d - 1); t->right = build(d - 1); } else { t->left = \
     null; t->right = null; } return t; }\n\
     int total(tree* t) { if (t == null) { return 0; } return t->value + \
     total(t->left) + total(t->right); }\n\
     int main() { tree* r = build(13); int s = 0; for (int i = 0; i < 2; i \
     = i + 1) { s = s + total(r); } print_int(s); return 0; }"
  in
  let prog = Ssp_minic.Frontend.compile src in
  (* Profile with scaled-down caches so the tree is memory-bound, as the
     reference working sets are: the selector rightly rejects SSP when the
     trigger flush costs more than the prefetch saves. *)
  let profile =
    Ssp_profiling.Collect.collect
      ~config:(Ssp_machine.Config.scale_caches Ssp_machine.Config.in_order 64)
      prog
  in
  let regions = Ssp_analysis.Regions.compute prog in
  let callgraph = Ssp_analysis.Callgraph.compute prog in
  let d = Ssp.Delinquent.identify prog profile in
  let interproc = ref false in
  List.iter
    (fun load ->
      match
        Ssp.Select.choose regions callgraph profile
          Ssp_machine.Config.in_order load
      with
      | Some c
        when c.Ssp.Select.schedule.Ssp.Schedule.slice.Ssp.Slice
             .interprocedural ->
        interproc := true;
        Alcotest.(check bool) "call-site triggers" true
          (List.for_all
             (fun (t : Ssp.Trigger.t) -> t.Ssp.Trigger.kind = Ssp.Trigger.Call_site)
             c.Ssp.Select.triggers)
      | Some _ | None -> ())
    d.Ssp.Delinquent.loads;
  Alcotest.(check bool) "at least one interprocedural slice" true !interproc

let test_adapt_differential_tree () =
  let src =
    "struct tree { int value; tree* left; tree* right; }\n\
     tree* build(int d) { tree* t = new tree; t->value = 1; if (d > 0) { \
     t->left = build(d - 1); t->right = build(d - 1); } else { t->left = \
     null; t->right = null; } return t; }\n\
     int total(tree* t) { if (t == null) { return 0; } return t->value + \
     total(t->left) + total(t->right); }\n\
     int main() { tree* r = build(11); print_int(total(r)); return 0; }"
  in
  let prog, profile = compile_and_profile src in
  let result = Ssp.Adapt.run ~config:Ssp_machine.Config.in_order prog profile in
  let base = Ssp_sim.Funcsim.run prog in
  let live = Ssp_sim.Funcsim.run ~spawning:true result.Ssp.Adapt.prog in
  Alcotest.(check (list int64)) "tree outputs equal"
    base.Ssp_sim.Funcsim.outputs live.Ssp_sim.Funcsim.outputs

let suite =
  [
    Alcotest.test_case "delinquent identification" `Quick
      test_delinquent_identification;
    Alcotest.test_case "slice contents" `Quick test_slice_contents;
    Alcotest.test_case "slice respects region" `Quick test_slice_respects_region;
    Alcotest.test_case "schedule partition" `Quick test_schedule_partition;
    Alcotest.test_case "schedule order legality" `Quick
      test_schedule_order_legality;
    Alcotest.test_case "adapt structure" `Quick test_adapt_structure;
    Alcotest.test_case "adapt differential (mcf)" `Quick test_adapt_differential;
    Alcotest.test_case "trigger dominance" `Quick test_trigger_dominance;
    Alcotest.test_case "report table 2" `Quick test_report_table2;
    Alcotest.test_case "interprocedural binding" `Quick
      test_interprocedural_binding;
    Alcotest.test_case "adapt differential (tree)" `Quick
      test_adapt_differential_tree;
  ]

(* ---------- min-cut trigger placement ---------- *)

let test_mincut_diamond () =
  (* A loop whose body splits into a hot and a cold path before reaching the
     delinquent access: the min cut must cross only frequent edges and
     separate entry from the load block. *)
  let src =
    "struct node { int value; node* next; }\n\
     int main() {\n\
    \  node* head = null;\n\
    \  for (int i = 0; i < 4000; i = i + 1) { node* n = new node; n->value \
     = i; n->next = head; head = n; }\n\
    \  int s = 0;\n\
    \  node* p = head;\n\
    \  while (p != null) { if (p->value % 64 == 0) { s = s + 1; } else { s \
     = s + p->value; } p = p->next; }\n\
    \  print_int(s);\n\
    \  return 0;\n\
     }"
  in
  let prog, profile = compile_and_profile src in
  let d = Ssp.Delinquent.identify prog profile in
  let load = List.hd d.Ssp.Delinquent.loads in
  let regions = Ssp_analysis.Regions.compute prog in
  let cfg = Ssp_analysis.Regions.cfg_of regions "main" in
  let cut =
    Ssp.Mincut.min_cut cfg profile ~sink:load.Ssp.Delinquent.iref.Ssp_ir.Iref.blk ()
  in
  Alcotest.(check bool) "cut is non-empty" true (cut <> []);
  (* Removing the cut edges must disconnect the load from the entry on the
     frequent subgraph. *)
  let n = Ssp_analysis.Cfg.n_blocks cfg in
  let seen = Array.make n false in
  let rec go b =
    if not seen.(b) then begin
      seen.(b) <- true;
      List.iter
        (fun s ->
          if
            not
              (List.exists
                 (fun (e : Ssp.Mincut.cut_edge) ->
                   e.Ssp.Mincut.src = b && e.Ssp.Mincut.dst = s)
                 cut)
          then go s)
        (Ssp_analysis.Cfg.succ cfg b)
    end
  in
  go 0;
  Alcotest.(check bool) "cut separates entry from the load" false
    seen.(load.Ssp.Delinquent.iref.Ssp_ir.Iref.blk)

(* ---------- hand adaptation ---------- *)

let test_hand_adaptations_preserve_semantics () =
  List.iter
    (fun name ->
      let w = Ssp_workloads.Suite.find name in
      let prog = Ssp_workloads.Workload.program w ~scale:1 in
      let profile = Ssp_profiling.Collect.collect prog in
      match
        Ssp.Hand.adapt ~workload:name ~config:Ssp_machine.Config.in_order
          prog profile
      with
      | None -> Alcotest.failf "no hand adaptation for %s" name
      | Some r ->
        let base = Ssp_sim.Funcsim.run prog in
        let live = Ssp_sim.Funcsim.run ~spawning:true r.Ssp.Adapt.prog in
        Alcotest.(check (list int64))
          (name ^ " hand outputs unchanged")
          base.Ssp_sim.Funcsim.outputs live.Ssp_sim.Funcsim.outputs)
    [ "mcf"; "health" ];
  Alcotest.(check bool) "no hand version for em3d" true
    (let w = Ssp_workloads.Suite.find "em3d" in
     let prog = Ssp_workloads.Workload.program w ~scale:1 in
     let profile = Ssp_profiling.Collect.collect prog in
     Ssp.Hand.adapt ~workload:"em3d" ~config:Ssp_machine.Config.in_order prog
       profile
     = None)

(* ---------- unrolled slices ---------- *)

let test_unroll_preserves_semantics_and_prefetches_more () =
  let prog, profile = compile_and_profile (mcf_like 2) in
  let cfg = Ssp_machine.Config.scale_caches Ssp_machine.Config.in_order 16 in
  let r1 = Ssp.Adapt.run ~config:cfg prog profile in
  let r4 = Ssp.Adapt.run ~unroll:4 ~config:cfg prog profile in
  let base = Ssp_sim.Funcsim.run prog in
  let live = Ssp_sim.Funcsim.run ~spawning:true r4.Ssp.Adapt.prog in
  Alcotest.(check (list int64)) "unrolled outputs unchanged"
    base.Ssp_sim.Funcsim.outputs live.Ssp_sim.Funcsim.outputs;
  let s1 = Ssp_sim.Inorder.run cfg r1.Ssp.Adapt.prog in
  let s4 = Ssp_sim.Inorder.run cfg r4.Ssp.Adapt.prog in
  Alcotest.(check bool) "unroll covers more per spawn" true
    (s4.Ssp_sim.Stats.spawns = 0
    || s4.Ssp_sim.Stats.prefetches / max 1 s4.Ssp_sim.Stats.spawns
       > s1.Ssp_sim.Stats.prefetches / max 1 s1.Ssp_sim.Stats.spawns)

let suite =
  suite
  @ [
      Alcotest.test_case "min-cut trigger placement" `Quick test_mincut_diamond;
      Alcotest.test_case "hand adaptations preserve semantics" `Slow
        test_hand_adaptations_preserve_semantics;
      Alcotest.test_case "unrolled slices" `Slow
        test_unroll_preserves_semantics_and_prefetches_more;
    ]

(* ---------- randomized differential testing ----------

   Generate random well-typed pointer kernels, adapt them, and require the
   adapted binary to be observationally equivalent to the original under
   the functional simulator (speculative threads running) and the in-order
   cycle model. This exercises slicing/scheduling/codegen over many shapes:
   array-of-pointer scans, linked-list walks, guards, strides, nested
   arithmetic. *)

type rand_kernel = {
  n : int;
  stride : int;
  guard_mod : int;  (* 0 = no guard *)
  extra_ops : int;
  use_list : bool;
  passes : int;
}

let kernel_source k =
  let guard_open, guard_close =
    if k.guard_mod > 0 then
      ( Printf.sprintf "if (r->f0 %% %d != 0) {" k.guard_mod,
        "}" )
    else ("", "")
  in
  let extra =
    String.concat "\n"
      (List.init k.extra_ops (fun i ->
           Printf.sprintf "      acc = acc + ((r->f1 * %d) >> %d);"
             (3 + i) (1 + (i mod 3))))
  in
  let walk =
    if k.use_list then
      Printf.sprintf
        {|
  rec* p = head;
  while (p != null) {
    rec* r = p;
    %s
    acc = acc + r->f0;
%s
    %s
    p = p->link;
  }
|}
        guard_open extra guard_close
    else
      Printf.sprintf
        {|
  for (int i = 0; i < n; i = i + %d) {
    rec* r = table[i];
    %s
    acc = acc + r->f0;
%s
    %s
  }
|}
        k.stride guard_open extra guard_close
  in
  Printf.sprintf
    {|
struct rec { int f0; int f1; rec* link; }
rec** table;
rec* head;
int n;

void build() {
  n = %d;
  table = newarray(rec*, n);
  rec* arena = newarray(rec, n);
  head = null;
  for (int i = 0; i < n; i = i + 1) {
    rec* r = arena + rand() %% n;
    r->f0 = i %% 13;
    r->f1 = i %% 7;
    table[i] = r;
  }
  for (int i = 0; i < n; i = i + 1) {
    rec* c = new rec;
    c->f0 = i %% 11;
    c->f1 = i %% 5;
    c->link = head;
    head = c;
  }
}

int kernel() {
  int acc = 0;
%s
  return acc;
}

int main() {
  build();
  int total = 0;
  for (int pass = 0; pass < %d; pass = pass + 1) {
    total = total + kernel();
  }
  print_int(total);
  return 0;
}
|}
    k.n walk k.passes

let kernel_gen =
  QCheck.Gen.(
    map
      (fun (n, stride, guard_mod, extra_ops, use_list) ->
        {
          n = 500 + (n * 250);
          stride = 1 + stride;
          guard_mod = (if guard_mod = 0 then 0 else guard_mod + 1);
          extra_ops;
          use_list;
          passes = 2;
        })
      (tup5 (0 -- 6) (0 -- 3) (0 -- 4) (0 -- 3) bool))

let prop_random_adaptation =
  QCheck.Test.make ~name:"adapted random kernels are equivalent" ~count:15
    (QCheck.make kernel_gen) (fun k ->
      let src = kernel_source k in
      let prog = Ssp_minic.Frontend.compile src in
      let cfg =
        Ssp_machine.Config.scale_caches Ssp_machine.Config.in_order 32
      in
      let profile = Ssp_profiling.Collect.collect ~config:cfg prog in
      let result = Ssp.Adapt.run ~config:cfg prog profile in
      let base = Ssp_sim.Funcsim.run prog in
      let quiet = Ssp_sim.Funcsim.run ~spawning:false result.Ssp.Adapt.prog in
      let live = Ssp_sim.Funcsim.run ~spawning:true result.Ssp.Adapt.prog in
      let cyc_base = Ssp_sim.Inorder.run cfg prog in
      let cyc_ssp = Ssp_sim.Inorder.run cfg result.Ssp.Adapt.prog in
      base.Ssp_sim.Funcsim.outputs = quiet.Ssp_sim.Funcsim.outputs
      && base.Ssp_sim.Funcsim.outputs = live.Ssp_sim.Funcsim.outputs
      && cyc_base.Ssp_sim.Stats.outputs = base.Ssp_sim.Funcsim.outputs
      && cyc_ssp.Ssp_sim.Stats.outputs = base.Ssp_sim.Funcsim.outputs)

let suite = suite @ [ QCheck_alcotest.to_alcotest prop_random_adaptation ]
