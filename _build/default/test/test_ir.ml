open Ssp_isa
open Ssp_ir

let a8 = Reg.arg 0

(* fact(n) = n <= 1 ? 1 : n * fact(n-1), the classic recursion exercise for
   the register stack. *)
let fact_func () =
  let b = Builder.create ~name:"fact" ~nparams:1 () in
  let n = Builder.fresh_reg b in
  let t = Builder.fresh_reg b in
  let r = Builder.fresh_reg b in
  Builder.start_block b "entry";
  Builder.emit b (Op.Mov (n, a8));
  Builder.emit b (Op.Cmpi (Op.Le, t, n, 1L));
  Builder.emit b (Op.Brnz (t, "base"));
  Builder.start_block b "rec";
  Builder.emit b (Op.Alui (Op.Sub, a8, n, 1L));
  Builder.emit b (Op.Call ("fact", 1));
  Builder.emit b (Op.Mov (r, a8));
  Builder.emit b (Op.Alu (Op.Mul, a8, n, r));
  Builder.emit b (Op.Ret);
  Builder.start_block b "base";
  Builder.emit b (Op.Movi (a8, 1L));
  Builder.emit b (Op.Ret);
  Builder.finish b

let main_calls_fact n =
  Builder.func_of_blocks ~name:"main" ~nparams:0
    [
      ( "entry",
        [
          Op.Movi (a8, Int64.of_int n);
          Op.Call ("fact", 1);
          Op.Print a8;
          Op.Halt;
        ] );
    ]

let fact_prog n =
  let p = Prog.create ~entry:"main" in
  Prog.add_func p (main_calls_fact n);
  Prog.add_func p (fact_func ());
  p

let test_builder_layout () =
  let f = fact_func () in
  Alcotest.(check int) "three blocks" 3 (Array.length f.Prog.blocks);
  Alcotest.(check string) "entry first" "entry" f.Prog.blocks.(0).Prog.label;
  Alcotest.(check int) "block_index" 2 (Prog.block_index f "base")

let test_validate_ok () =
  let p = fact_prog 5 in
  match Validate.check p with
  | Ok () -> ()
  | Error es ->
    Alcotest.failf "unexpected errors: %s"
      (String.concat "; "
         (List.map (fun e -> Format.asprintf "%a" Validate.pp_error e) es))

let test_validate_catches () =
  (* Unresolved label. *)
  let f =
    Builder.func_of_blocks ~name:"main" ~nparams:0
      [ ("entry", [ Op.Br "nowhere" ]) ]
  in
  let p = Prog.create ~entry:"main" in
  Prog.add_func p f;
  (match Validate.check p with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "expected unresolved-label error");
  (* Missing terminator in last block. *)
  let f2 =
    Builder.func_of_blocks ~name:"main" ~nparams:0 [ ("entry", [ Op.Nop ]) ]
  in
  let p2 = Prog.create ~entry:"main" in
  Prog.add_func p2 f2;
  (match Validate.check p2 with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "expected fallthrough error");
  (* Call to an undefined function. *)
  let f3 =
    Builder.func_of_blocks ~name:"main" ~nparams:0
      [ ("entry", [ Op.Call ("ghost", 0); Op.Halt ]) ]
  in
  let p3 = Prog.create ~entry:"main" in
  Prog.add_func p3 f3;
  match Validate.check p3 with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "expected undefined-callee error"

let test_iref_and_addr () =
  let f = fact_func () in
  let r = Iref.make "fact" 1 2 in
  Alcotest.(check int) "addr linearizes" 5 (Prog.addr_of f r);
  Alcotest.(check bool) "iref order" true (Iref.compare (Iref.make "a" 0 0) r < 0)

let test_instr_lookup () =
  let p = fact_prog 3 in
  match Prog.instr p (Iref.make "main" 0 1) with
  | Op.Call ("fact", 1) -> ()
  | op -> Alcotest.failf "unexpected instr %s" (Op.to_string op)

let suite =
  [
    Alcotest.test_case "builder layout" `Quick test_builder_layout;
    Alcotest.test_case "validate accepts fact" `Quick test_validate_ok;
    Alcotest.test_case "validate catches errors" `Quick test_validate_catches;
    Alcotest.test_case "iref addressing" `Quick test_iref_and_addr;
    Alcotest.test_case "instruction lookup" `Quick test_instr_lookup;
  ]

(* Shared with other test modules. *)
let fact_program = fact_prog

(* ---------- assembler round-trip ---------- *)

let structurally_equal (a : Prog.t) (b : Prog.t) =
  let fa = Prog.funcs_in_order a and fb = Prog.funcs_in_order b in
  List.length fa = List.length fb
  && a.Prog.entry = b.Prog.entry
  && a.Prog.data_bytes = b.Prog.data_bytes
  && List.for_all2
       (fun (x : Prog.func) (y : Prog.func) ->
         x.Prog.name = y.Prog.name
         && x.Prog.nparams = y.Prog.nparams
         && x.Prog.code_id = y.Prog.code_id
         && Array.length x.Prog.blocks = Array.length y.Prog.blocks
         && Array.for_all2
              (fun (bx : Prog.block) (by : Prog.block) ->
                bx.Prog.label = by.Prog.label && bx.Prog.ops = by.Prog.ops)
              x.Prog.blocks y.Prog.blocks)
       fa fb

let test_asm_roundtrip_fact () =
  let p = fact_prog 5 in
  let text = Asm.to_string p in
  let p' = Asm.parse text in
  Alcotest.(check bool) "round trip" true (structurally_equal p p');
  (* and it still runs *)
  let r = Ssp_sim.Funcsim.run p' in
  Alcotest.(check (list int64)) "5! = 120" [ 120L ] r.Ssp_sim.Funcsim.outputs

let test_asm_parse_op () =
  let cases =
    [
      "movi r32, -5";
      "add r40, r41, r42";
      "subi r40, r41, 7";
      "cmp.lt r33, r34, r32";
      "cmpi.ge r33, r34, 100";
      "ld8 r36, [r34+0]";
      "st4 [r33-8], r32";
      "lfetch [r38+24]";
      "brnz r33, somewhere";
      "call fact/1";
      "icall r5/2";
      "chk.c stub_1";
      "spawn main:slice_1";
      "lib.st #3, r38";
      "lib.ld r32, #0";
      "alloc r32, r33";
      "kill";
      "halt";
    ]
  in
  List.iter
    (fun s ->
      let op = Asm.parse_op s in
      (* printing the parsed op must re-parse to the same op *)
      let s' = Ssp_isa.Op.to_string op in
      Alcotest.(check bool)
        (Printf.sprintf "print/parse fixpoint for %S" s)
        true
        (Asm.parse_op s' = op))
    cases

let test_asm_errors () =
  let bad =
    [
      "bogus r1, r2";
      "movi r999, 5";
      "ld8 r36, r34";
      "call fact";
      "lib.st 3, r38";
    ]
  in
  List.iter
    (fun s ->
      Alcotest.(check bool)
        (Printf.sprintf "rejects %S" s)
        true
        (match Asm.parse_op s with
        | _ -> false
        | exception Asm.Error _ -> true))
    bad;
  (* whole-program errors *)
  Alcotest.(check bool) "missing entry" true
    (match Asm.parse "func f/0 @1 {\nentry:\n  halt\n}" with
    | _ -> false
    | exception Asm.Error _ -> true)

let suite =
  suite
  @ [
      Alcotest.test_case "asm round-trip (fact)" `Quick test_asm_roundtrip_fact;
      Alcotest.test_case "asm op print/parse fixpoint" `Quick test_asm_parse_op;
      Alcotest.test_case "asm rejects malformed input" `Quick test_asm_errors;
    ]
