open Ssp_analysis

(* ---------- Digraph ---------- *)

let diamond () =
  (* 0 -> 1, 0 -> 2, 1 -> 3, 2 -> 3 *)
  Digraph.make ~n:4 [ (0, 1); (0, 2); (1, 3); (2, 3) ]

let test_rpo () =
  let g = diamond () in
  let order = Digraph.rpo g ~entry:0 in
  Alcotest.(check int) "all reachable" 4 (Array.length order);
  Alcotest.(check int) "entry first" 0 order.(0);
  Alcotest.(check int) "exit last" 3 order.(3)

let test_topo_and_longest () =
  let g = diamond () in
  (match Digraph.topo_order g with
  | [ 0; _; _; 3 ] -> ()
  | o -> Alcotest.failf "bad topo %s" (String.concat "," (List.map string_of_int o)));
  let h = Digraph.longest_path g ~node_weight:(fun v -> v + 1) in
  (* longest from 0: 0 -> 2 -> 3 with weights 1 + 3 + 4 = 8 *)
  Alcotest.(check int) "height of 0" 8 h.(0);
  let cyclic = Digraph.make ~n:2 [ (0, 1); (1, 0) ] in
  Alcotest.(check bool) "topo rejects cycles" true
    (match Digraph.topo_order cyclic with
    | _ -> false
    | exception Invalid_argument _ -> true)

(* qcheck: Tarjan SCC vs naive reachability-based computation. *)
let random_graph_gen =
  QCheck.Gen.(
    sized_size (2 -- 12) (fun n ->
        list_size (0 -- (n * 2)) (pair (0 -- (n - 1)) (0 -- (n - 1)))
        >|= fun edges -> (max 1 n, edges)))

let naive_scc n edges =
  let reach = Array.make_matrix n n false in
  for i = 0 to n - 1 do
    reach.(i).(i) <- true
  done;
  List.iter (fun (a, b) -> reach.(a).(b) <- true) edges;
  for k = 0 to n - 1 do
    for i = 0 to n - 1 do
      for j = 0 to n - 1 do
        if reach.(i).(k) && reach.(k).(j) then reach.(i).(j) <- true
      done
    done
  done;
  (* two nodes share a component iff they reach each other *)
  Array.init n (fun i ->
      List.filter (fun j -> reach.(i).(j) && reach.(j).(i)) (List.init n Fun.id))

let prop_scc =
  QCheck.Test.make ~name:"tarjan matches naive SCC" ~count:200
    (QCheck.make random_graph_gen) (fun (n, edges) ->
      let g = Digraph.make ~n edges in
      let comps = Digraph.tarjan_scc g in
      let mine = Digraph.scc_of comps ~n in
      let naive = naive_scc n edges in
      List.for_all
        (fun i ->
          List.for_all
            (fun j -> (mine.(i) = mine.(j)) = List.mem j naive.(i))
            (List.init n Fun.id))
        (List.init n Fun.id))

(* ---------- Dominators ---------- *)

let naive_dominates n edges entry a b =
  (* a dominates b iff removing a disconnects b from entry (or a = b). *)
  if a = b then true
  else begin
    let adj = Array.make n [] in
    List.iter
      (fun (x, y) -> if x <> a && y <> a then adj.(x) <- y :: adj.(x))
      edges;
    let seen = Array.make n false in
    let rec go v =
      if (not seen.(v)) && v <> a then begin
        seen.(v) <- true;
        List.iter go adj.(v)
      end
    in
    if entry <> a then go entry;
    not seen.(b)
  end

let prop_dominators =
  QCheck.Test.make ~name:"CHK dominators match naive definition" ~count:200
    (QCheck.make random_graph_gen) (fun (n, edges) ->
      let g = Digraph.make ~n edges in
      let dom = Dom.compute g ~entry:0 in
      let reach = Digraph.reachable g ~from:0 in
      List.for_all
        (fun a ->
          List.for_all
            (fun b ->
              if not (reach.(a) && reach.(b)) then true
              else Dom.dominates dom a b = naive_dominates n edges 0 a b)
            (List.init n Fun.id))
        (List.init n Fun.id))

(* ---------- CFG / loops / control deps on a real function ---------- *)

let loopy_func () =
  (* while (i < n) { if (i % 2) a else b; i++ } *)
  Ssp_minic.Frontend.compile
    "int main() { int s = 0; int i = 0; int n = 10; while (i < n) { if (i % \
     2 == 0) { s = s + i; } else { s = s - i; } i = i + 1; } print_int(s); \
     return 0; }"

let test_cfg_loops () =
  let prog = loopy_func () in
  let f = Ssp_ir.Prog.find_func prog "main" in
  let cfg = Cfg.of_func f in
  let dom = Dom.compute cfg.Cfg.graph ~entry:0 in
  let loops = Loops.compute cfg dom in
  Alcotest.(check int) "one loop" 1 (List.length (Loops.all loops));
  let l = List.hd (Loops.all loops) in
  Alcotest.(check bool) "header in body" true (List.mem l.Loops.header l.Loops.body);
  Alcotest.(check bool) "has back edge" true (l.Loops.back_edges <> []);
  Alcotest.(check int) "depth 1" 1 l.Loops.depth;
  (* every block of the body is dominated by the header *)
  Alcotest.(check bool) "header dominates body" true
    (List.for_all (fun b -> Dom.dominates dom l.Loops.header b) l.Loops.body)

let test_nested_loops () =
  let prog =
    Ssp_minic.Frontend.compile
      "int main() { int s = 0; for (int i = 0; i < 4; i = i + 1) { for (int \
       j = 0; j < 4; j = j + 1) { s = s + i * j; } } print_int(s); return \
       0; }"
  in
  let f = Ssp_ir.Prog.find_func prog "main" in
  let cfg = Cfg.of_func f in
  let dom = Dom.compute cfg.Cfg.graph ~entry:0 in
  let loops = Loops.compute cfg dom in
  Alcotest.(check int) "two loops" 2 (List.length (Loops.all loops));
  let depths = List.map (fun l -> l.Loops.depth) (Loops.all loops) in
  Alcotest.(check (list int)) "nesting depths" [ 1; 2 ] (List.sort compare depths);
  let inner = List.find (fun l -> l.Loops.depth = 2) (Loops.all loops) in
  (match inner.Loops.parent with
  | Some p ->
    Alcotest.(check int) "parent is the outer loop" 1
      (Loops.find loops p).Loops.depth
  | None -> Alcotest.fail "inner loop has no parent")

let test_ctrldep () =
  let prog = loopy_func () in
  let f = Ssp_ir.Prog.find_func prog "main" in
  let cfg = Cfg.of_func f in
  let cd = Ctrldep.compute cfg in
  (* Some block must be control dependent on the loop-exit branch block. *)
  let any =
    List.exists
      (fun b -> Ctrldep.controllers cd b <> [])
      (List.init (Cfg.n_blocks cfg) Fun.id)
  in
  Alcotest.(check bool) "control dependences exist" true any

(* ---------- Reaching definitions ---------- *)

let test_reaching () =
  let open Ssp_isa in
  (* entry: r40 <- 1; brnz r41, other; fall: r40 <- 2; br join;
     other: nop; join: use r40 *)
  let f =
    Ssp_ir.Builder.func_of_blocks ~name:"main" ~nparams:1
      [
        ("entry", [ Op.Movi (40, 1L); Op.Brnz (Reg.arg 0, "other") ]);
        ("fall", [ Op.Movi (40, 2L); Op.Br "join" ]);
        ("other", [ Op.Nop ]);
        ("join", [ Op.Mov (42, 40); Op.Halt ]);
      ]
  in
  let cfg = Cfg.of_func f in
  let reach = Reaching.compute cfg in
  let use = Ssp_ir.Iref.make "main" 3 0 in
  let defs = Reaching.reaching_defs reach ~use 40 in
  Alcotest.(check int) "two defs reach the join" 2 (List.length defs);
  (* the parameter reaches its use *)
  let use_param = Ssp_ir.Iref.make "main" 0 1 in
  let pdefs = Reaching.reaching_defs reach ~use:use_param (Reg.arg 0) in
  Alcotest.(check bool) "parameter pseudo-def" true
    (List.exists (fun (d : Reaching.def) -> d.Reaching.site.Ssp_ir.Iref.ins = -1) pdefs)

let test_reaching_loop_carried () =
  let open Ssp_isa in
  (* loop: r40 <- r40 + 1, conditional back edge; the use of r40 sees both
     the init (intra on first entry) and the loop def (around back edge). *)
  let f =
    Ssp_ir.Builder.func_of_blocks ~name:"main" ~nparams:0
      [
        ("entry", [ Op.Movi (40, 0L) ]);
        ( "loop",
          [
            Op.Alui (Op.Add, 40, 40, 1L);
            Op.Cmpi (Op.Lt, 41, 40, 10L);
            Op.Brnz (41, "loop");
          ] );
        ("exit", [ Op.Halt ]);
      ]
  in
  let cfg = Cfg.of_func f in
  let reach = Reaching.compute cfg in
  let use = Ssp_ir.Iref.make "main" 1 0 in
  let all = Reaching.reaching_defs reach ~use 40 in
  let intra = Reaching.defs_without_back_edges reach ~use 40 in
  Alcotest.(check int) "both defs reach" 2 (List.length all);
  Alcotest.(check int) "only init reaches intra-iteration" 1 (List.length intra);
  let only = List.hd intra in
  Alcotest.(check int) "the intra def is the init" 0 only.Reaching.site.Ssp_ir.Iref.blk

(* ---------- Call graph ---------- *)

let test_callgraph () =
  let prog =
    Ssp_minic.Frontend.compile
      "int g(int x) { if (x <= 0) { return 0; } return g(x - 1) + 1; }\n\
       int f(int x) { return g(x); }\n\
       int main() { print_int(f(3)); return 0; }"
  in
  let cg = Callgraph.compute prog in
  Alcotest.(check bool) "g recursive" true (Callgraph.is_recursive cg "g");
  Alcotest.(check bool) "f not recursive" false (Callgraph.is_recursive cg "f");
  Alcotest.(check int) "f has one callee" 1 (List.length (Callgraph.callees cg "f"));
  Alcotest.(check int) "g called from f and itself" 2
    (List.length (Callgraph.callers cg "g"))

(* ---------- Regions ---------- *)

let test_regions () =
  let prog = loopy_func () in
  let regions = Regions.compute prog in
  let f = Ssp_ir.Prog.find_func prog "main" in
  (* find a load/any instruction inside the loop: use the loop header *)
  let loops = Regions.loops_of regions "main" in
  let l = List.hd (Loops.all loops) in
  let iref = Ssp_ir.Iref.make "main" l.Loops.header 0 in
  (match Regions.innermost_at regions iref with
  | Regions.Loop ("main", _) -> ()
  | r -> Alcotest.failf "expected loop region, got %s" (Format.asprintf "%a" Regions.pp r));
  let entry = Ssp_ir.Iref.make "main" 0 0 in
  (match Regions.innermost_at regions entry with
  | Regions.Proc "main" -> ()
  | r -> Alcotest.failf "expected proc region, got %s" (Format.asprintf "%a" Regions.pp r));
  (* parent of the loop region is the proc *)
  (match Regions.parent regions (Regions.Loop ("main", l.Loops.id)) with
  | Some (Regions.Proc "main") -> ()
  | _ -> Alcotest.fail "loop's parent should be the proc");
  Alcotest.(check int) "proc covers all blocks"
    (Array.length f.Ssp_ir.Prog.blocks)
    (List.length (Regions.blocks_of regions (Regions.Proc "main")))

let suite =
  [
    Alcotest.test_case "rpo" `Quick test_rpo;
    Alcotest.test_case "topo and longest path" `Quick test_topo_and_longest;
    QCheck_alcotest.to_alcotest prop_scc;
    QCheck_alcotest.to_alcotest prop_dominators;
    Alcotest.test_case "cfg and natural loops" `Quick test_cfg_loops;
    Alcotest.test_case "nested loops" `Quick test_nested_loops;
    Alcotest.test_case "control dependence" `Quick test_ctrldep;
    Alcotest.test_case "reaching definitions" `Quick test_reaching;
    Alcotest.test_case "loop-carried classification" `Quick
      test_reaching_loop_carried;
    Alcotest.test_case "call graph" `Quick test_callgraph;
    Alcotest.test_case "region graph" `Quick test_regions;
  ]

(* ---------- post-dominators & control dependence ---------- *)

(* naive: a post-dominates b iff removing a disconnects b from every exit. *)
let naive_postdominates n edges exits a b =
  if a = b then true
  else begin
    let adj = Array.make n [] in
    List.iter
      (fun (x, y) -> if x <> a && y <> a then adj.(x) <- y :: adj.(x))
      edges;
    let seen = Array.make n false in
    let rec go v =
      if (not seen.(v)) && v <> a then begin
        seen.(v) <- true;
        List.iter go adj.(v)
      end
    in
    if b <> a then go b;
    not (List.exists (fun e -> seen.(e) || e = b) (List.filter (fun e -> e <> a) exits))
    |> fun cut -> cut || not (List.exists (fun e -> seen.(e)) exits || List.mem b exits)
  end

let prop_postdominators =
  QCheck.Test.make ~name:"post-dominators match naive definition" ~count:150
    (QCheck.make random_graph_gen) (fun (n, edges) ->
      let g = Digraph.make ~n edges in
      (* exits: nodes with no successors; if none, pick node n-1 *)
      let exits =
        let outs = Array.make n 0 in
        List.iter (fun (a, _) -> outs.(a) <- outs.(a) + 1) edges;
        let e = List.filter (fun v -> outs.(v) = 0) (List.init n Fun.id) in
        if e = [] then [ n - 1 ] else e
      in
      let pdom = Dom.compute_post g ~exits in
      (* check against naive on nodes that can reach an exit *)
      let reaches_exit = Array.make n false in
      let radj = Array.make n [] in
      List.iter (fun (a, b) -> radj.(b) <- a :: radj.(b)) edges;
      let rec mark v =
        if not reaches_exit.(v) then begin
          reaches_exit.(v) <- true;
          List.iter mark radj.(v)
        end
      in
      List.iter mark exits;
      List.for_all
        (fun a ->
          List.for_all
            (fun b ->
              if not (reaches_exit.(a) && reaches_exit.(b)) then true
              else
                let mine = Dom.dominates pdom a b in
                (* naive: every path from b to an exit passes through a *)
                let adj = Array.make n [] in
                List.iter
                  (fun (x, y) -> if x <> a then adj.(x) <- y :: adj.(x))
                  edges;
                let seen = Array.make n false in
                let rec go v =
                  if (not seen.(v)) && v <> a then begin
                    seen.(v) <- true;
                    List.iter go adj.(v)
                  end
                in
                if b <> a then go b;
                let naive =
                  a = b
                  || not (List.exists (fun e -> e <> a && seen.(e)) exits)
                in
                mine = naive)
            (List.init n Fun.id))
        (List.init n Fun.id))

let test_ctrldep_if_then_else () =
  (* if (c) { A } else { B }; C — A and B control-dependent on the branch
     block, C not. *)
  let prog =
    Ssp_minic.Frontend.compile
      "int main() { int c = rand() % 2; int x = 0; if (c == 1) { x = 1; } \
       else { x = 2; } print_int(x); return 0; }"
  in
  let f = Ssp_ir.Prog.find_func prog "main" in
  let cfg = Cfg.of_func f in
  let cd = Ctrldep.compute cfg in
  (* find the branch block: the one whose terminator is conditional *)
  let branch_block = ref (-1) in
  Array.iteri
    (fun i (b : Ssp_ir.Prog.block) ->
      let n = Array.length b.Ssp_ir.Prog.ops in
      if n > 0 then
        match b.Ssp_ir.Prog.ops.(n - 1) with
        | Ssp_isa.Op.Brz _ | Ssp_isa.Op.Brnz _ ->
          if !branch_block = -1 then branch_block := i
        | _ -> ())
    f.Ssp_ir.Prog.blocks;
  Alcotest.(check bool) "found a branch" true (!branch_block >= 0);
  let controlled =
    List.filter
      (fun b -> List.mem !branch_block (Ctrldep.controllers cd b))
      (List.init (Cfg.n_blocks cfg) Fun.id)
  in
  Alcotest.(check bool) "branch controls at least two blocks" true
    (List.length controlled >= 2)

let suite =
  suite
  @ [
      QCheck_alcotest.to_alcotest prop_postdominators;
      Alcotest.test_case "control dependence if/then/else" `Quick
        test_ctrldep_if_then_else;
    ]
