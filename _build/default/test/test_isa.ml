open Ssp_isa

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let test_reg_conventions () =
  check_int "zero" 0 Reg.zero;
  check_int "sp" 1 Reg.sp;
  check_int "arg0" 8 (Reg.arg 0);
  check_int "arg7" 15 (Reg.arg 7);
  check_bool "arg out of range" true
    (try
       ignore (Reg.arg 8);
       false
     with Invalid_argument _ -> true);
  check_bool "r32 stacked" true (Reg.is_stacked 32);
  check_bool "r31 static" true (Reg.is_static 31);
  check_bool "r128 invalid" false (Reg.is_valid 128)

let test_defs_uses () =
  let open Op in
  Alcotest.(check (list int)) "alu defs" [ 40 ] (defs (Alu (Add, 40, 41, 42)));
  Alcotest.(check (list int)) "alu uses" [ 41; 42 ] (uses (Alu (Add, 40, 41, 42)));
  Alcotest.(check (list int)) "r0 write dropped" [] (defs (Movi (0, 5L)));
  Alcotest.(check (list int)) "r0 read dropped" [] (uses (Mov (40, 0)));
  Alcotest.(check (list int)) "store defs nothing" [] (defs (Store (W8, 40, 41, 0)));
  Alcotest.(check (list int)) "store uses" [ 40; 41 ] (uses (Store (W8, 40, 41, 0)));
  Alcotest.(check (list int)) "call clobbers args" [ 8; 9; 10; 11; 12; 13; 14; 15 ]
    (defs (Call ("f", 2)));
  Alcotest.(check (list int)) "call uses its args" [ 8; 9 ] (uses (Call ("f", 2)));
  Alcotest.(check (list int)) "ret uses r8" [ 8 ] (uses Ret);
  Alcotest.(check (list int)) "lib.ld defs" [ 40 ] (defs (Lib_ld (40, 0)))

let test_classification () =
  let open Op in
  check_bool "br is control" true (is_control (Br "x"));
  check_bool "br is terminator" true (is_terminator (Br "x"));
  check_bool "brnz not terminator" false (is_terminator (Brnz (40, "x")));
  check_bool "call control, not terminator" true
    (is_control (Call ("f", 0)) && not (is_terminator (Call ("f", 0))));
  check_bool "load" true (is_load (Load (W8, 40, 41, 0)));
  check_bool "chk.c no branch targets" true (branch_targets (Chk_c "s") = [])

let test_eval () =
  let open Op in
  Alcotest.(check int64) "add" 7L (alu_eval Add 3L 4L);
  Alcotest.(check int64) "div0" 0L (alu_eval Div 3L 0L);
  Alcotest.(check int64) "shl" 8L (alu_eval Shl 1L 3L);
  Alcotest.(check int64) "shr sign" (-1L) (alu_eval Shr (-2L) 1L);
  check_bool "lt signed" true (cmp_eval Lt (-1L) 0L);
  check_bool "ge" true (cmp_eval Ge 5L 5L)

let test_bundles () =
  let open Op in
  let ops = [| Nop; Nop; Nop; Nop |] in
  let bs = Bundle.of_block ops in
  check_int "two bundles" 2 (List.length bs);
  (match bs with
  | [ a; b ] ->
    check_int "first len" 3 a.Bundle.len;
    check_int "second len" 1 b.Bundle.len
  | _ -> Alcotest.fail "expected 2 bundles");
  (* A branch ends its bundle early. *)
  let ops = [| Nop; Br "x"; Nop |] in
  (match Bundle.of_block ops with
  | [ a; b ] ->
    check_int "branch bundle len" 2 a.Bundle.len;
    check_int "tail" 1 b.Bundle.len
  | _ -> Alcotest.fail "expected 2 bundles");
  check_int "empty block" 0 (Bundle.count_of_block [||])

let prop_bundle_cover =
  QCheck.Test.make ~name:"bundles cover the block exactly once" ~count:200
    QCheck.(list_of_size Gen.(0 -- 40) (QCheck.make (QCheck.Gen.oneofl
      Op.[ Nop; Movi (40, 1L); Br "x"; Ret; Load (W8, 40, 41, 0) ])))
    (fun ops ->
      let arr = Array.of_list ops in
      let bs = Bundle.of_block arr in
      let covered = List.fold_left (fun acc b -> acc + b.Bundle.len) 0 bs in
      let contiguous =
        let rec go pos = function
          | [] -> pos = Array.length arr
          | b :: rest -> b.Bundle.start = pos && go (pos + b.Bundle.len) rest
        in
        go 0 bs
      in
      covered = Array.length arr && contiguous
      && List.for_all (fun b -> b.Bundle.len >= 1 && b.Bundle.len <= 3) bs)

let suite =
  [
    Alcotest.test_case "register conventions" `Quick test_reg_conventions;
    Alcotest.test_case "defs and uses" `Quick test_defs_uses;
    Alcotest.test_case "classification" `Quick test_classification;
    Alcotest.test_case "evaluation" `Quick test_eval;
    Alcotest.test_case "bundle formation" `Quick test_bundles;
    QCheck_alcotest.to_alcotest prop_bundle_cover;
  ]
