(* End-to-end: compile -> profile -> adapt -> cycle-simulate, on scaled-down
   cache geometries so tests stay fast while preserving the paper's shape
   (in-order benefits from SSP; OOO benefits less; SSP reduces deep-level
   miss cycles). *)

let small_caches cfg = Ssp_machine.Config.scale_caches cfg 64

let run_both workload scale =
  let w = Ssp_workloads.Suite.find workload in
  let prog = Ssp_workloads.Workload.program w ~scale in
  let cfg = small_caches Ssp_machine.Config.in_order in
  let profile = Ssp_profiling.Collect.collect ~config:cfg prog in
  let result = Ssp.Adapt.run ~config:cfg prog profile in
  let base = Ssp_sim.Inorder.run cfg prog in
  let ssp = Ssp_sim.Inorder.run cfg result.Ssp.Adapt.prog in
  (base, ssp, result)

let test_inorder_ssp_speeds_up_mcf () =
  let base, ssp, result = run_both "mcf" 2 in
  Alcotest.(check (list int64)) "same outputs under the cycle model"
    base.Ssp_sim.Stats.outputs ssp.Ssp_sim.Stats.outputs;
  Alcotest.(check bool) "slices were generated" true
    (result.Ssp.Adapt.choices <> []);
  Alcotest.(check bool) "speculative threads spawned" true
    (ssp.Ssp_sim.Stats.spawns > 0);
  let speedup =
    float_of_int base.Ssp_sim.Stats.cycles /. float_of_int ssp.Ssp_sim.Stats.cycles
  in
  Alcotest.(check bool)
    (Printf.sprintf "in-order SSP speedup %.3f > 1.02" speedup)
    true (speedup > 1.02)

let test_ssp_reduces_deep_misses () =
  let base, ssp, _ = run_both "mcf" 2 in
  let deep (s : Ssp_sim.Stats.t) =
    s.Ssp_sim.Stats.categories.(Ssp_sim.Stats.category_index Ssp_sim.Stats.Cat_l3)
    + s.Ssp_sim.Stats.categories.(Ssp_sim.Stats.category_index Ssp_sim.Stats.Cat_l2)
  in
  Alcotest.(check bool) "L2+L3 stall cycles shrink" true (deep ssp < deep base)

let test_perfect_modes_bound () =
  (* perfect-memory must beat perfect-delinquent must beat the baseline. *)
  let w = Ssp_workloads.Suite.find "mcf" in
  let prog = Ssp_workloads.Workload.program w ~scale:2 in
  let cfg = small_caches Ssp_machine.Config.in_order in
  let profile = Ssp_profiling.Collect.collect prog in
  let d = Ssp.Delinquent.identify prog profile in
  let base = Ssp_sim.Inorder.run cfg prog in
  let pmem =
    Ssp_sim.Inorder.run
      (Ssp_machine.Config.with_memory_mode cfg Ssp_machine.Config.Perfect_memory)
      prog
  in
  let pdel =
    Ssp_sim.Inorder.run
      (Ssp_machine.Config.with_memory_mode cfg
         (Ssp_machine.Config.Perfect_delinquent (Ssp.Delinquent.set d)))
      prog
  in
  Alcotest.(check bool) "perfect memory fastest" true
    (pmem.Ssp_sim.Stats.cycles <= pdel.Ssp_sim.Stats.cycles);
  Alcotest.(check bool) "perfect delinquent beats baseline" true
    (pdel.Ssp_sim.Stats.cycles < base.Ssp_sim.Stats.cycles);
  Alcotest.(check (list int64)) "outputs stable" base.Ssp_sim.Stats.outputs
    pmem.Ssp_sim.Stats.outputs

let test_ooo_beats_inorder_baseline () =
  let w = Ssp_workloads.Suite.find "mcf" in
  let prog = Ssp_workloads.Workload.program w ~scale:2 in
  let io = Ssp_sim.Inorder.run (small_caches Ssp_machine.Config.in_order) prog in
  let ooo =
    Ssp_sim.Ooo.run (small_caches Ssp_machine.Config.out_of_order) prog
  in
  Alcotest.(check (list int64)) "same outputs" io.Ssp_sim.Stats.outputs
    ooo.Ssp_sim.Stats.outputs;
  Alcotest.(check bool)
    (Printf.sprintf "OOO (%d) faster than in-order (%d)"
       ooo.Ssp_sim.Stats.cycles io.Ssp_sim.Stats.cycles)
    true
    (ooo.Ssp_sim.Stats.cycles < io.Ssp_sim.Stats.cycles)

let test_ssp_helps_both_pipelines () =
  (* SSP must pay off on the in-order model (the paper's headline) and must
     not hurt the OOO model. (In the paper OOO gains are smaller than
     in-order gains; our OOO model's 18-entry reservation station limits its
     own memory-level parallelism more than the authors' machine, so helper
     threads buy it comparatively more — see EXPERIMENTS.md.) *)
  let w = Ssp_workloads.Suite.find "mcf" in
  let prog = Ssp_workloads.Workload.program w ~scale:2 in
  let io_cfg = small_caches Ssp_machine.Config.in_order in
  let ooo_cfg = small_caches Ssp_machine.Config.out_of_order in
  let profile = Ssp_profiling.Collect.collect ~config:io_cfg prog in
  let adapted_io = (Ssp.Adapt.run ~config:io_cfg prog profile).Ssp.Adapt.prog in
  let adapted_ooo = (Ssp.Adapt.run ~config:ooo_cfg prog profile).Ssp.Adapt.prog in
  let io = Ssp_sim.Inorder.run io_cfg prog in
  let io_ssp = Ssp_sim.Inorder.run io_cfg adapted_io in
  let ooo = Ssp_sim.Ooo.run ooo_cfg prog in
  let ooo_ssp = Ssp_sim.Ooo.run ooo_cfg adapted_ooo in
  let s_io = float_of_int io.Ssp_sim.Stats.cycles /. float_of_int io_ssp.Ssp_sim.Stats.cycles in
  let s_ooo = float_of_int ooo.Ssp_sim.Stats.cycles /. float_of_int ooo_ssp.Ssp_sim.Stats.cycles in
  Alcotest.(check bool)
    (Printf.sprintf "in-order gain %.3f > 1.02" s_io)
    true (s_io > 1.02);
  Alcotest.(check bool)
    (Printf.sprintf "ooo gain %.3f >= 0.97" s_ooo)
    true (s_ooo >= 0.97)

let test_spec_threads_never_store () =
  (* Machine-level enforcement: run an adapted binary and check memory
     behaviour by comparing final outputs across many workloads. *)
  List.iter
    (fun name ->
      let w = Ssp_workloads.Suite.find name in
      let prog = Ssp_workloads.Workload.program w ~scale:1 in
      let profile = Ssp_profiling.Collect.collect prog in
      let r = Ssp.Adapt.run ~config:Ssp_machine.Config.in_order prog profile in
      let base = Ssp_sim.Funcsim.run prog in
      let live = Ssp_sim.Funcsim.run ~spawning:true r.Ssp.Adapt.prog in
      Alcotest.(check (list int64))
        (name ^ " outputs unchanged")
        base.Ssp_sim.Funcsim.outputs live.Ssp_sim.Funcsim.outputs)
    [ "mcf"; "em3d"; "health"; "treeadd.df"; "treeadd.bf"; "vpr"; "mst" ]

let suite =
  [
    Alcotest.test_case "in-order SSP speeds up mcf" `Slow
      test_inorder_ssp_speeds_up_mcf;
    Alcotest.test_case "SSP reduces deep miss cycles" `Slow
      test_ssp_reduces_deep_misses;
    Alcotest.test_case "perfect-memory bounds" `Slow test_perfect_modes_bound;
    Alcotest.test_case "OOO beats in-order baseline" `Slow
      test_ooo_beats_inorder_baseline;
    Alcotest.test_case "SSP helps both pipelines" `Slow
      test_ssp_helps_both_pipelines;
    Alcotest.test_case "adapted binaries preserve semantics (all workloads)"
      `Slow test_spec_threads_never_store;
  ]

(* ---------- harness smoke (micro setting) ---------- *)

let micro_setting =
  { Ssp_harness.Experiment.scale = 1; cache_divisor = 64; label = "micro" }

let test_harness_runs_and_is_consistent () =
  let w = Ssp_workloads.Suite.find "mcf" in
  let r = Ssp_harness.Experiment.run_benchmark ~setting:micro_setting w in
  (* consistency assertions the figures rely on *)
  Alcotest.(check bool) "perfect memory is the fastest in-order config" true
    (r.Ssp_harness.Experiment.io_pmem.Ssp_sim.Stats.cycles
    <= r.Ssp_harness.Experiment.io_base.Ssp_sim.Stats.cycles);
  Alcotest.(check bool) "perfect delinquent within perfect memory and base" true
    (r.Ssp_harness.Experiment.io_pmem.Ssp_sim.Stats.cycles
     <= r.Ssp_harness.Experiment.io_pdel.Ssp_sim.Stats.cycles
    && r.Ssp_harness.Experiment.io_pdel.Ssp_sim.Stats.cycles
       <= r.Ssp_harness.Experiment.io_base.Ssp_sim.Stats.cycles);
  (* memoization: second call must hit the cache (same physical result) *)
  let r2 = Ssp_harness.Experiment.run_benchmark ~setting:micro_setting w in
  Alcotest.(check bool) "memoized" true (r == r2)

let test_table_renderer () =
  let out =
    Format.asprintf "%a"
      (fun ppf () ->
        Ssp_harness.Render.table ppf ~header:[ "a"; "bb" ]
          [ [ "1"; "2" ]; [ "333"; "4" ] ])
      ()
  in
  Alcotest.(check bool) "contains rows" true
    (String.length out > 0
    && String.split_on_char '\n' out |> List.length >= 4);
  Alcotest.(check string) "bar" "#####" (Ssp_harness.Render.bar 0.5 ~max:1.0 ~width:10);
  Alcotest.(check string) "bar clamps" "##########"
    (Ssp_harness.Render.bar 9.9 ~max:1.0 ~width:10)

let suite =
  suite
  @ [
      Alcotest.test_case "harness consistency (micro)" `Slow
        test_harness_runs_and_is_consistent;
      Alcotest.test_case "table renderer" `Quick test_table_renderer;
    ]
