open Ssp_minic

let run_and_outputs src =
  let prog = Frontend.compile src in
  (Ssp_sim.Funcsim.run prog).Ssp_sim.Funcsim.outputs

let check_outputs name src expected =
  Alcotest.(check (list int64)) name expected (run_and_outputs src)

let test_arith () =
  check_outputs "arith"
    "int main() { print_int(2 + 3 * 4); print_int((2 + 3) * 4); print_int(7 \
     / 2); print_int(7 % 2); print_int(1 << 5); print_int(-8 >> 2); return \
     0; }"
    [ 14L; 20L; 3L; 1L; 32L; -2L ]

let test_logic () =
  check_outputs "short circuit"
    "int die() { print_int(666); return 1; }\n\
     int main() { if (0 && die()) { print_int(1); } if (1 || die()) { \
     print_int(2); } print_int(1 && 2); print_int(!5); return 0; }"
    [ 2L; 1L; 0L ]

let test_control_flow () =
  check_outputs "loops and break/continue"
    "int main() { int s = 0; for (int i = 0; i < 10; i = i + 1) { if (i == \
     3) { continue; } if (i == 7) { break; } s = s + i; } print_int(s); int \
     j = 0; while (j < 5) { j = j + 1; } print_int(j); return 0; }"
    [ 18L; 5L ]

let test_recursion () =
  check_outputs "fibonacci"
    "int fib(int n) { if (n <= 1) { return n; } return fib(n - 1) + fib(n - \
     2); }\n\
     int main() { print_int(fib(15)); return 0; }"
    [ 610L ]

let test_structs_and_lists () =
  check_outputs "linked list"
    "struct node { int value; node* next; }\n\
     int sum(node* l) { int s = 0; while (l != null) { s = s + l->value; l \
     = l->next; } return s; }\n\
     int main() { node* head = null; for (int i = 1; i <= 10; i = i + 1) { \
     node* n = new node; n->value = i; n->next = head; head = n; } \
     print_int(sum(head)); return 0; }"
    [ 55L ]

let test_arrays () =
  check_outputs "heap arrays"
    "int main() { int* a = newarray(int, 10); for (int i = 0; i < 10; i = i \
     + 1) { a[i] = i * i; } int s = 0; for (int i = 0; i < 10; i = i + 1) { \
     s = s + a[i]; } print_int(s); return 0; }"
    [ 285L ]

let test_globals () =
  check_outputs "globals and global arrays"
    "int counter;\n\
     int table[4];\n\
     void bump() { counter = counter + 1; }\n\
     int main() { bump(); bump(); bump(); print_int(counter); table[2] = \
     42; print_int(table[2]); int* p = table; print_int(p[2]); return 0; }"
    [ 3L; 42L; 42L ]

let test_pointer_arith () =
  check_outputs "struct pointer arithmetic"
    "struct pair { int a; int b; }\n\
     int main() { pair* ps = newarray(pair, 4); pair* p = ps + 2; p->a = 7; \
     p->b = 9; pair* q = ps + 2; print_int(q->a + q->b); \
     print_int(sizeof(pair)); return 0; }"
    [ 16L; 16L ]

let test_fnptr () =
  check_outputs "indirect calls"
    "int double_it(int x) { return x * 2; }\n\
     int triple_it(int x) { return x * 3; }\n\
     int apply(fnptr f, int x) { return f(x); }\n\
     int main() { print_int(apply(&double_it, 21)); \
     print_int(apply(&triple_it, 5)); return 0; }"
    [ 42L; 15L ]

let test_tree () =
  check_outputs "binary tree build + dfs sum"
    "struct tree { int value; tree* left; tree* right; }\n\
     tree* build(int depth) { tree* t = new tree; t->value = 1; if (depth > \
     0) { t->left = build(depth - 1); t->right = build(depth - 1); } else { \
     t->left = null; t->right = null; } return t; }\n\
     int total(tree* t) { if (t == null) { return 0; } return t->value + \
     total(t->left) + total(t->right); }\n\
     int main() { print_int(total(build(6))); return 0; }"
    [ 127L ]

let test_rand_deterministic () =
  let src =
    "int main() { print_int(rand() % 1000); print_int(rand() % 1000); \
     return 0; }"
  in
  let a = run_and_outputs src in
  let b = run_and_outputs src in
  Alcotest.(check (list int64)) "deterministic prng" a b;
  Alcotest.(check bool) "values in range" true
    (List.for_all
       (fun v -> Int64.compare v 0L >= 0 && Int64.compare v 1000L < 0)
       a)

let expect_frontend_error name src =
  Alcotest.test_case name `Quick (fun () ->
      match Frontend.compile src with
      | _ -> Alcotest.failf "%s: expected a frontend error" name
      | exception Frontend.Error _ -> ())

let error_cases =
  [
    expect_frontend_error "unbound variable" "int main() { return x; }";
    expect_frontend_error "bad field"
      "struct s { int a; } int main() { s* p = new s; return p->b; }";
    expect_frontend_error "arity mismatch"
      "int f(int a, int b) { return a; } int main() { return f(1); }";
    expect_frontend_error "assigning int to pointer"
      "struct s { int a; } int main() { s* p = 5; return 0; }";
    expect_frontend_error "void as value"
      "void f() { return; } int main() { return f(); }";
    expect_frontend_error "break outside loop"
      "int main() { break; return 0; }";
    expect_frontend_error "unterminated comment" "int main() { /* oops ";
    expect_frontend_error "syntax error" "int main() { int = 4; }";
    expect_frontend_error "struct by value"
      "struct s { int a; } int main() { s x; return 0; }";
    expect_frontend_error "redeclaration"
      "int main() { int x = 1; int x = 2; return x; }";
    expect_frontend_error "no main" "int f() { return 1; }";
  ]

let suite =
  [
    Alcotest.test_case "arithmetic" `Quick test_arith;
    Alcotest.test_case "short-circuit logic" `Quick test_logic;
    Alcotest.test_case "control flow" `Quick test_control_flow;
    Alcotest.test_case "recursion" `Quick test_recursion;
    Alcotest.test_case "structs and lists" `Quick test_structs_and_lists;
    Alcotest.test_case "arrays" `Quick test_arrays;
    Alcotest.test_case "globals" `Quick test_globals;
    Alcotest.test_case "pointer arithmetic" `Quick test_pointer_arith;
    Alcotest.test_case "function pointers" `Quick test_fnptr;
    Alcotest.test_case "trees" `Quick test_tree;
    Alcotest.test_case "rand determinism" `Quick test_rand_deterministic;
  ]
  @ error_cases
