open Ssp_workloads

let compile_and_run w scale =
  let prog = Workload.program w ~scale in
  Ssp_sim.Funcsim.run prog

let test_compiles_and_runs (w : Workload.t) () =
  let r = compile_and_run w Suite.test_scale in
  Alcotest.(check int) "one checksum printed" 1
    (List.length r.Ssp_sim.Funcsim.outputs);
  Alcotest.(check bool) "did real work" true (r.Ssp_sim.Funcsim.instrs > 10_000)

let test_deterministic () =
  let w = Suite.find "mcf" in
  let a = compile_and_run w Suite.test_scale in
  let b = compile_and_run w Suite.test_scale in
  Alcotest.(check (list int64)) "same checksum" a.Ssp_sim.Funcsim.outputs
    b.Ssp_sim.Funcsim.outputs

let test_scales_grow () =
  let w = Suite.find "em3d" in
  let small = compile_and_run w 1 in
  let big = compile_and_run w 4 in
  Alcotest.(check bool) "bigger scale, more work" true
    (big.Ssp_sim.Funcsim.instrs > small.Ssp_sim.Funcsim.instrs)

let test_find () =
  Alcotest.(check int) "seven workloads" 7 (List.length Suite.all);
  Alcotest.(check string) "find by name" "health"
    (Suite.find "health").Workload.name;
  Alcotest.(check bool) "unknown name" true
    (match Suite.find "nope" with
    | _ -> false
    | exception Not_found -> true)

let suite =
  List.map
    (fun (w : Workload.t) ->
      Alcotest.test_case
        (Printf.sprintf "%s compiles and runs" w.Workload.name)
        `Quick (test_compiles_and_runs w))
    Suite.all
  @ [
      Alcotest.test_case "determinism" `Quick test_deterministic;
      Alcotest.test_case "scaling" `Quick test_scales_grow;
      Alcotest.test_case "suite lookup" `Quick test_find;
    ]
