test/test_ir.ml: Alcotest Array Asm Builder Format Int64 Iref List Op Printf Prog Reg Ssp_ir Ssp_isa Ssp_sim String Validate
