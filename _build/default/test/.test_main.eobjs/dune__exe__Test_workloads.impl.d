test/test_workloads.ml: Alcotest List Printf Ssp_sim Ssp_workloads Suite Workload
