test/test_main.ml: Alcotest Test_analysis Test_integration Test_ir Test_isa Test_minic Test_profiling Test_sim Test_ssp Test_workloads
