test/test_minic.ml: Alcotest Frontend Int64 List Ssp_minic Ssp_sim
