test/test_sim.ml: Alcotest Array Bpred Builder Cache Funcsim Hashtbl Hierarchy Int64 List Memory Op Option Prog QCheck QCheck_alcotest Ssp_ir Ssp_isa Ssp_machine Ssp_sim Test_ir
