test/test_integration.ml: Alcotest Array Format List Printf Ssp Ssp_harness Ssp_machine Ssp_profiling Ssp_sim Ssp_workloads String
