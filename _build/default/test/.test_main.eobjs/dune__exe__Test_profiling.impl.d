test/test_profiling.ml: Alcotest Collect Hashtbl List Profile Ssp_ir Ssp_machine Ssp_minic Ssp_profiling String
