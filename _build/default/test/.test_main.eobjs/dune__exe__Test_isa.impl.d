test/test_isa.ml: Alcotest Array Bundle Gen List Op QCheck QCheck_alcotest Reg Ssp_isa
