test/test_analysis.ml: Alcotest Array Callgraph Cfg Ctrldep Digraph Dom Format Fun List Loops Op QCheck QCheck_alcotest Reaching Reg Regions Ssp_analysis Ssp_ir Ssp_isa Ssp_minic String
