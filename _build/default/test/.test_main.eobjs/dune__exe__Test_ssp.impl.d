test/test_ssp.ml: Alcotest Array Hashtbl List Op Printf QCheck QCheck_alcotest Ssp Ssp_analysis Ssp_ir Ssp_isa Ssp_machine Ssp_minic Ssp_profiling Ssp_sim Ssp_workloads String
