open Ssp_profiling

let pointer_program =
  "struct node { int value; node* next; }\n\
   int walk(node* l) { int s = 0; while (l != null) { s = s + l->value; l = \
   l->next; } return s; }\n\
   int main() { node* head = null; for (int i = 0; i < 2000; i = i + 1) { \
   node* n = new node; n->value = i; n->next = head; head = n; } int s = 0; \
   for (int r = 0; r < 3; r = r + 1) { s = s + walk(head); } print_int(s); \
   return 0; }"

let profile_of src = Collect.collect (Ssp_minic.Frontend.compile src)

let test_block_freqs () =
  let prog = Ssp_minic.Frontend.compile pointer_program in
  let p = Collect.collect prog in
  Alcotest.(check int) "main entry once" 1 (Profile.block_freq p "main" 0);
  Alcotest.(check int) "walk called three times" 3 (Profile.block_freq p "walk" 0);
  Alcotest.(check bool) "instrs counted" true (p.Profile.total_instrs > 10_000)

let test_branch_bias () =
  let p = profile_of pointer_program in
  (* Some branch must be strongly biased (the list-walk loop). *)
  let found = ref false in
  Ssp_ir.Iref.Tbl.iter
    (fun _ b ->
      let r = Profile.taken_ratio b in
      if b.Profile.taken + b.Profile.not_taken > 1000 && (r > 0.9 || r < 0.1)
      then found := true)
    p.Profile.branches;
  Alcotest.(check bool) "hot biased branch found" true !found

let test_load_stats () =
  let p = profile_of pointer_program in
  (* The walk loop's loads execute 3 * 2000 times each. *)
  let hot =
    Ssp_ir.Iref.Tbl.fold
      (fun (i : Ssp_ir.Iref.t) (s : Profile.load_stats) acc ->
        if String.equal i.Ssp_ir.Iref.fn "walk" && s.Profile.accesses >= 6000
        then s :: acc
        else acc)
      p.Profile.loads []
  in
  Alcotest.(check int) "two hot loads in walk" 2 (List.length hot);
  List.iter
    (fun (s : Profile.load_stats) ->
      Alcotest.(check int) "level counts total to accesses" s.Profile.accesses
        (s.Profile.l1_hits + s.Profile.l2_hits + s.Profile.l3_hits
        + s.Profile.mem_hits))
    hot

let test_call_profile () =
  let p = profile_of pointer_program in
  (match Profile.dominant_call_site p ~callee:"walk" with
  | Some site -> Alcotest.(check string) "walk called from main" "main" site.Ssp_ir.Iref.fn
  | None -> Alcotest.fail "no call site for walk");
  Alcotest.(check bool) "no call site for absent callee" true
    (Profile.dominant_call_site p ~callee:"nothing" = None)

let test_indirect_call_profile () =
  let p =
    profile_of
      "int inc(int x) { return x + 1; }\n\
       int dec(int x) { return x - 1; }\n\
       int main() { fnptr f = &inc; int s = 0; for (int i = 0; i < 10; i = \
       i + 1) { if (i % 2 == 0) { f = &inc; } else { f = &dec; } s = f(s); \
       } print_int(s); return 0; }"
  in
  (* The indirect call site must record both dynamic targets. *)
  let multi =
    Ssp_ir.Iref.Tbl.fold
      (fun _ tbl acc -> max acc (Hashtbl.length tbl))
      p.Profile.calls 0
  in
  Alcotest.(check int) "dynamic call graph captured both targets" 2 multi

let test_avg_latency_and_executed () =
  let p = profile_of pointer_program in
  let cfg = Ssp_machine.Config.in_order in
  (* An unknown load gets the L1 latency. *)
  let ghost = Ssp_ir.Iref.make "nowhere" 0 0 in
  Alcotest.(check int) "default latency" 2 (Profile.avg_load_latency p cfg ghost);
  Alcotest.(check bool) "executed blocks" true
    (Profile.executed p (Ssp_ir.Iref.make "walk" 0 0));
  Alcotest.(check bool) "miss cycles accumulate" true (Profile.total_miss_cycles p > 0)

let suite =
  [
    Alcotest.test_case "block frequencies" `Quick test_block_freqs;
    Alcotest.test_case "branch bias" `Quick test_branch_bias;
    Alcotest.test_case "per-load cache stats" `Quick test_load_stats;
    Alcotest.test_case "call profile" `Quick test_call_profile;
    Alcotest.test_case "indirect call targets" `Quick test_indirect_call_profile;
    Alcotest.test_case "latency annotation" `Quick test_avg_latency_and_executed;
  ]
