(** Dominators and post-dominators (Cooper–Harvey–Kennedy iterative
    algorithm). *)

type t
(** A dominator tree over the nodes of a digraph. *)

val compute : Digraph.t -> entry:int -> t
(** Immediate dominators of every node reachable from [entry]. *)

val compute_post : Digraph.t -> exits:int list -> t
(** Post-dominators: dominators of the reversed graph from a virtual exit
    node connected to every node in [exits]. The virtual node is
    {!virtual_exit}. *)

val idom : t -> int -> int option
(** Immediate dominator; [None] for the root or unreachable nodes. *)

val dominates : t -> int -> int -> bool
(** [dominates t a b]: every path from the root to [b] goes through [a]
    (reflexive). False when either node is unreachable. *)

val children : t -> int -> int list
(** Children in the dominator tree. *)

val reachable : t -> int -> bool

val virtual_exit : t -> int
(** For post-dominator trees: the index of the virtual exit node (equal to
    the number of real nodes). For dominator trees: the root. *)
