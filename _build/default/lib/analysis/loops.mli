(** Natural loops and the loop-nesting forest.

    A back edge is an edge [t -> h] where [h] dominates [t]; the natural
    loop of [h] is the set of blocks that can reach some back-edge source
    without passing through [h]. Loops sharing a header are merged. *)

type loop = {
  id : int;
  header : int;  (** header block index *)
  body : int list;  (** all blocks of the loop, including the header *)
  back_edges : (int * int) list;  (** the [t -> h] edges *)
  parent : int option;  (** id of the innermost enclosing loop *)
  depth : int;  (** nesting depth, outermost = 1 *)
}

type t

val compute : Cfg.t -> Dom.t -> t
val all : t -> loop list
val find : t -> int -> loop
(** Loop by id. *)

val innermost_at : t -> int -> loop option
(** The innermost loop containing the block, if any. *)

val in_loop : t -> loop -> int -> bool
(** Membership of a block in a loop's body. *)

val preheaders : Cfg.t -> loop -> int list
(** Predecessors of the header from outside the loop. *)
