open Ssp_isa

type kind = Data | Control

type edge = {
  src : Ssp_ir.Iref.t;
  dst : Ssp_ir.Iref.t;
  kind : kind;
  loop_carried : bool;
}

type t = {
  cfg : Cfg.t;
  edges : edge list;
  preds : edge list Ssp_ir.Iref.Tbl.t;
  succs : edge list Ssp_ir.Iref.Tbl.t;
}

let index_edges cfg edges =
  let preds = Ssp_ir.Iref.Tbl.create 64 in
  let succs = Ssp_ir.Iref.Tbl.create 64 in
  let push tbl key e =
    Ssp_ir.Iref.Tbl.replace tbl key
      (e :: Option.value ~default:[] (Ssp_ir.Iref.Tbl.find_opt tbl key))
  in
  List.iter
    (fun e ->
      push preds e.dst e;
      push succs e.src e)
    edges;
  { cfg; edges; preds; succs }

let of_func (cfg : Cfg.t) =
  let f = cfg.Cfg.func in
  let reach = Reaching.compute cfg in
  let cd = Ctrldep.compute cfg in
  let edges = ref [] in
  Array.iteri
    (fun bi (b : Ssp_ir.Prog.block) ->
      let ctrl = Ctrldep.controller_instrs cd cfg bi in
      Array.iteri
        (fun ii op ->
          let use = Ssp_ir.Iref.make f.name bi ii in
          List.iter
            (fun r ->
              List.iter
                (fun (d : Reaching.def) ->
                  (* Parameter pseudo-defs have no source instruction. *)
                  if d.Reaching.site.Ssp_ir.Iref.ins >= 0 then
                    edges :=
                      {
                        src = d.Reaching.site;
                        dst = use;
                        kind = Data;
                        loop_carried = false;
                      }
                      :: !edges)
                (Reaching.reaching_defs reach ~use r))
            (Op.uses op);
          List.iter
            (fun branch ->
              if not (Ssp_ir.Iref.equal branch use) then
                edges :=
                  { src = branch; dst = use; kind = Control; loop_carried = false }
                  :: !edges)
            ctrl)
        b.ops)
    f.blocks;
  index_edges cfg (List.rev !edges)

let restrict_to_loop t loops loop reach =
  let in_body (r : Ssp_ir.Iref.t) = Loops.in_loop loops loop r.blk in
  let back_srcs = List.map fst loop.Loops.back_edges in
  let classify e =
    match e.kind with
    | Control ->
      (* A control dep from a back-edge branch governs the next iteration. *)
      { e with loop_carried = List.mem e.src.Ssp_ir.Iref.blk back_srcs }
    | Data ->
      let op = t.cfg.Cfg.func.blocks.(e.dst.Ssp_ir.Iref.blk).ops.(e.dst.Ssp_ir.Iref.ins) in
      (* Which register does this edge carry? The def site defines it; find
         the registers used by dst that the src defines. *)
      let src_op =
        t.cfg.Cfg.func.blocks.(e.src.Ssp_ir.Iref.blk).ops.(e.src.Ssp_ir.Iref.ins)
      in
      let carried_regs =
        List.filter (fun r -> List.mem r (Op.defs src_op)) (Op.uses op)
      in
      let intra_only r =
        List.exists
          (fun (d : Reaching.def) -> Ssp_ir.Iref.equal d.Reaching.site e.src)
          (Reaching.defs_without_back_edges reach ~use:e.dst r)
      in
      (* Loop-carried iff the value flows only around a back edge for every
         register the edge carries. *)
      let lc = not (List.exists intra_only carried_regs) in
      { e with loop_carried = lc }
  in
  let edges =
    List.filter_map
      (fun e ->
        if in_body e.src && in_body e.dst then Some (classify e) else None)
      t.edges
  in
  index_edges t.cfg edges

let deps_of t i =
  Option.value ~default:[] (Ssp_ir.Iref.Tbl.find_opt t.preds i)

let uses_of t i =
  Option.value ~default:[] (Ssp_ir.Iref.Tbl.find_opt t.succs i)
