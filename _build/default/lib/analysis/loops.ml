type loop = {
  id : int;
  header : int;
  body : int list;
  back_edges : (int * int) list;
  parent : int option;
  depth : int;
}

type t = { loops : loop array; inner : loop option array }

module IS = Set.Make (Int)

let compute (cfg : Cfg.t) dom =
  let n = Cfg.n_blocks cfg in
  (* Collect back edges grouped by header. *)
  let by_header = Hashtbl.create 8 in
  for v = 0 to n - 1 do
    List.iter
      (fun s ->
        if Dom.dominates dom s v then
          Hashtbl.replace by_header s
            ((v, s) :: (Option.value ~default:[] (Hashtbl.find_opt by_header s))))
      (Cfg.succ cfg v)
  done;
  let headers = Hashtbl.fold (fun h _ acc -> h :: acc) by_header [] in
  let headers = List.sort compare headers in
  let bodies =
    List.map
      (fun h ->
        let back_edges = List.rev (Hashtbl.find by_header h) in
        (* Backward reachability from back-edge sources, stopping at h. *)
        let body = ref (IS.singleton h) in
        let rec go v =
          if not (IS.mem v !body) then begin
            body := IS.add v !body;
            List.iter go (Cfg.pred cfg v)
          end
        in
        List.iter (fun (t, _) -> go t) back_edges;
        (h, !body, back_edges))
      headers
  in
  (* Nesting: loop A encloses B iff A's body contains B's header and A≠B.
     The innermost enclosing loop is the one with the smallest body. *)
  let arr = Array.of_list bodies in
  let m = Array.length arr in
  let parent_of i =
    let _, _body_i, _ = arr.(i) in
    let hi, _, _ = arr.(i) in
    let best = ref None in
    for j = 0 to m - 1 do
      if j <> i then begin
        let _, body_j, _ = arr.(j) in
        let _, body_i, _ = arr.(i) in
        if IS.mem hi body_j && not (IS.equal body_i body_j) && IS.subset body_i body_j
        then
          match !best with
          | None -> best := Some j
          | Some k ->
            let _, body_k, _ = arr.(k) in
            if IS.cardinal body_j < IS.cardinal body_k then best := Some j
      end
    done;
    !best
  in
  let parents = Array.init m parent_of in
  let rec depth_of i =
    match parents.(i) with None -> 1 | Some p -> 1 + depth_of p
  in
  let loops =
    Array.init m (fun i ->
        let header, body, back_edges = arr.(i) in
        {
          id = i;
          header;
          body = IS.elements body;
          back_edges;
          parent = parents.(i);
          depth = depth_of i;
        })
  in
  (* Innermost loop per block = deepest loop whose body contains it. *)
  let inner = Array.make n None in
  Array.iter
    (fun l ->
      List.iter
        (fun b ->
          match inner.(b) with
          | None -> inner.(b) <- Some l
          | Some l' -> if l.depth > l'.depth then inner.(b) <- Some l)
        l.body)
    loops;
  { loops; inner }

let all t = Array.to_list t.loops
let find t id = t.loops.(id)
let innermost_at t b = t.inner.(b)
let in_loop _t l b = List.mem b l.body

let preheaders cfg l =
  List.filter (fun p -> not (List.mem p l.body)) (Cfg.pred cfg l.header)
