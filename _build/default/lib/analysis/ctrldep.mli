(** Control dependence (Ferrante–Ottenstein–Warren).

    Block [b] is control dependent on block [a] when [a] has a successor
    from which [b] is always reached (i.e. [b] post-dominates it) while [b]
    does not post-dominate [a] itself — [a]'s branch decides whether [b]
    executes. *)

type t

val compute : Cfg.t -> t

val controllers : t -> int -> int list
(** Blocks whose branch the given block is control dependent on. *)

val controller_instrs : t -> Cfg.t -> int -> Ssp_ir.Iref.t list
(** The terminator instructions of the controlling blocks (the branch
    instructions a sliced instruction in this block depends on). *)
