open Ssp_isa

type t = {
  callees : (string, (Ssp_ir.Iref.t * string) list) Hashtbl.t;
  callers : (string, (Ssp_ir.Iref.t * string) list) Hashtbl.t;
  sites : (Ssp_ir.Iref.t * string) list;
  recursive : (string, unit) Hashtbl.t;
}

let compute (p : Ssp_ir.Prog.t) =
  let callees = Hashtbl.create 16 and callers = Hashtbl.create 16 in
  let sites = ref [] in
  let push tbl key v =
    Hashtbl.replace tbl key
      (v :: Option.value ~default:[] (Hashtbl.find_opt tbl key))
  in
  Ssp_ir.Prog.iter_instrs p (fun iref op ->
      match op with
      | Op.Call (callee, _) ->
        push callees iref.Ssp_ir.Iref.fn (iref, callee);
        push callers callee (iref, iref.Ssp_ir.Iref.fn);
        sites := (iref, callee) :: !sites
      | _ -> ());
  Hashtbl.iter (fun k v -> Hashtbl.replace callees k (List.rev v)) callees;
  Hashtbl.iter (fun k v -> Hashtbl.replace callers k (List.rev v)) callers;
  (* Recursion: SCCs of the function-level graph. *)
  let names = List.map (fun (f : Ssp_ir.Prog.func) -> f.name)
      (Ssp_ir.Prog.funcs_in_order p)
  in
  let index = Hashtbl.create 16 in
  List.iteri (fun i n -> Hashtbl.replace index n i) names;
  let edges =
    List.filter_map
      (fun (site, callee) ->
        match Hashtbl.find_opt index callee with
        | Some ci -> Some (Hashtbl.find index site.Ssp_ir.Iref.fn, ci)
        | None -> None)
      !sites
  in
  let g = Digraph.make ~n:(List.length names) edges in
  let comps = Digraph.tarjan_scc g in
  let recursive = Hashtbl.create 8 in
  let name_arr = Array.of_list names in
  Array.iter
    (fun comp ->
      match comp with
      | [ v ] ->
        if List.mem v g.Digraph.succ.(v) then
          Hashtbl.replace recursive name_arr.(v) ()
      | vs -> List.iter (fun v -> Hashtbl.replace recursive name_arr.(v) ()) vs)
    comps;
  { callees; callers; sites = List.rev !sites; recursive }

let callees t f = Option.value ~default:[] (Hashtbl.find_opt t.callees f)
let callers t f = Option.value ~default:[] (Hashtbl.find_opt t.callers f)
let call_sites t = t.sites
let is_recursive t f = Hashtbl.mem t.recursive f
