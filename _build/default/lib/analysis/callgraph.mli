(** Static call graph (direct calls). Indirect call targets come from the
    dynamic call-graph profile and are merged in by the tool's speculative
    slicing phase. *)

type t

val compute : Ssp_ir.Prog.t -> t

val callees : t -> string -> (Ssp_ir.Iref.t * string) list
(** Call sites within the function and the callee each targets. *)

val callers : t -> string -> (Ssp_ir.Iref.t * string) list
(** Call sites targeting the function and the caller each lives in. *)

val call_sites : t -> (Ssp_ir.Iref.t * string) list
(** All direct call sites in the program, with their callee. *)

val is_recursive : t -> string -> bool
(** Whether the function participates in a call-graph cycle (including
    self-recursion). *)
