open Ssp_isa

type t = { func : Ssp_ir.Prog.func; graph : Digraph.t; exits : int list }

let of_func (f : Ssp_ir.Prog.func) =
  let n = Array.length f.blocks in
  let idx = Hashtbl.create n in
  Array.iteri (fun i (b : Ssp_ir.Prog.block) -> Hashtbl.replace idx b.label i)
    f.blocks;
  let edges = ref [] in
  let exits = ref [] in
  Array.iteri
    (fun i (b : Ssp_ir.Prog.block) ->
      let nops = Array.length b.ops in
      let add_target l = edges := (i, Hashtbl.find idx l) :: !edges in
      let fallthrough () = if i + 1 < n then edges := (i, i + 1) :: !edges in
      if nops = 0 then fallthrough ()
      else
        match b.ops.(nops - 1) with
        | Op.Br l -> add_target l
        | Op.Brnz (_, l) | Op.Brz (_, l) ->
          add_target l;
          fallthrough ()
        | Op.Ret | Op.Halt | Op.Kill -> exits := i :: !exits
        | _ -> fallthrough ())
    f.blocks;
  (* Also collect taken edges of conditional branches that are not in last
     position: the builder never produces those, but appended slice blocks
     written by hand might; treat any branch instruction as an edge source. *)
  Array.iteri
    (fun i (b : Ssp_ir.Prog.block) ->
      let nops = Array.length b.ops in
      Array.iteri
        (fun j op ->
          if j < nops - 1 then
            List.iter
              (fun l -> edges := (i, Hashtbl.find idx l) :: !edges)
              (Op.branch_targets op))
        b.ops)
    f.blocks;
  let graph = Digraph.make ~n (List.rev !edges) in
  { func = f; graph; exits = List.rev !exits }

let succ t i = t.graph.Digraph.succ.(i)
let pred t i = t.graph.Digraph.pred.(i)
let n_blocks t = t.graph.Digraph.n

let block_of_label t l =
  let n = n_blocks t in
  let rec go i =
    if i >= n then raise Not_found
    else if String.equal t.func.blocks.(i).label l then i
    else go (i + 1)
  in
  go 0

let terminator t i =
  let ops = t.func.blocks.(i).ops in
  let n = Array.length ops in
  if n = 0 then None else Some ops.(n - 1)
