(** The intra-procedural dependence graph over instructions: true (register)
    data dependences from definitions to uses, and control dependences from
    branch instructions to the instructions they control.

    Edges are classified as intra-iteration or loop-carried with respect to
    a given loop: a def that reaches a use only through the loop's back edge
    is loop-carried. Loop-carried anti and output dependences are never
    materialized — the tool ignores them (§3.1), and slice code generation
    renames registers so they cannot bite. *)

type kind = Data | Control

type edge = {
  src : Ssp_ir.Iref.t;  (** the def / the controlling branch *)
  dst : Ssp_ir.Iref.t;  (** the use / the controlled instruction *)
  kind : kind;
  loop_carried : bool;
      (** meaningful when both endpoints lie in the loop the graph was
          restricted to; always false for whole-function graphs *)
}

type t = {
  cfg : Cfg.t;
  edges : edge list;
  preds : edge list Ssp_ir.Iref.Tbl.t;  (** incoming, keyed by [dst] *)
  succs : edge list Ssp_ir.Iref.Tbl.t;  (** outgoing, keyed by [src] *)
}

val of_func : Cfg.t -> t
(** Whole-function dependence graph (no loop-carried classification). *)

val restrict_to_loop : t -> Loops.t -> Loops.loop -> Reaching.t -> t
(** Keep only edges between instructions of the loop's body and classify
    each data edge as loop-carried or intra-iteration. Control edges whose
    source is a back-edge branch of the loop are loop-carried. *)

val deps_of : t -> Ssp_ir.Iref.t -> edge list
(** Incoming edges: what the instruction depends on. *)

val uses_of : t -> Ssp_ir.Iref.t -> edge list
(** Outgoing edges: what depends on the instruction. *)
