type region = Proc of string | Loop of string * int

type per_func = {
  cfg : Cfg.t;
  loops : Loops.t;
  mutable dg : Depgraph.t option;
  mutable reach : Reaching.t option;
}

type t = { prog : Ssp_ir.Prog.t; by_func : (string, per_func) Hashtbl.t }

let prog t = t.prog

let compute (prog : Ssp_ir.Prog.t) =
  let by_func = Hashtbl.create 16 in
  List.iter
    (fun (f : Ssp_ir.Prog.func) ->
      let cfg = Cfg.of_func f in
      let dom = Dom.compute cfg.Cfg.graph ~entry:0 in
      let loops = Loops.compute cfg dom in
      Hashtbl.replace by_func f.name { cfg; loops; dg = None; reach = None })
    (Ssp_ir.Prog.funcs_in_order prog);
  { prog; by_func }

let pf t fn =
  match Hashtbl.find_opt t.by_func fn with
  | Some x -> x
  | None -> invalid_arg (Printf.sprintf "Regions: unknown function %s" fn)

let cfg_of t fn = (pf t fn).cfg
let loops_of t fn = (pf t fn).loops

let depgraph_of t fn =
  let p = pf t fn in
  match p.dg with
  | Some dg -> dg
  | None ->
    let dg = Depgraph.of_func p.cfg in
    p.dg <- Some dg;
    dg

let reaching_of t fn =
  let p = pf t fn in
  match p.reach with
  | Some r -> r
  | None ->
    let r = Reaching.compute p.cfg in
    p.reach <- Some r;
    r

let innermost_at t (i : Ssp_ir.Iref.t) =
  let p = pf t i.fn in
  match Loops.innermost_at p.loops i.blk with
  | Some l -> Loop (i.fn, l.Loops.id)
  | None -> Proc i.fn

let parent t = function
  | Proc _ -> None
  | Loop (fn, id) -> (
    let p = pf t fn in
    let l = Loops.find p.loops id in
    match l.Loops.parent with
    | Some pid -> Some (Loop (fn, pid))
    | None -> Some (Proc fn))

let func_of = function Proc fn -> fn | Loop (fn, _) -> fn

let blocks_of t = function
  | Proc fn ->
    let p = pf t fn in
    List.init (Cfg.n_blocks p.cfg) Fun.id
  | Loop (fn, id) ->
    let p = pf t fn in
    (Loops.find p.loops id).Loops.body

let loop_of t = function
  | Proc _ -> None
  | Loop (fn, id) -> Some (Loops.find (pf t fn).loops id)

let depth t = function
  | Proc _ -> 0
  | Loop (fn, id) -> (Loops.find (pf t fn).loops id).Loops.depth

let pp ppf = function
  | Proc fn -> Format.fprintf ppf "proc(%s)" fn
  | Loop (fn, id) -> Format.fprintf ppf "loop(%s,%d)" fn id
