(** Directed graphs over dense integer nodes, with the traversals the
    analyses need: reverse postorder, Tarjan strongly connected components,
    topological order, and longest (critical) paths on DAGs. *)

type t = { n : int; succ : int list array; pred : int list array }

val make : n:int -> (int * int) list -> t
(** Build from an edge list. Duplicate edges are kept (harmless for the
    clients here). *)

val add_edge : t -> int -> int -> unit

val rpo : t -> entry:int -> int array
(** Reverse postorder of the nodes reachable from [entry] (entry first). *)

val reachable : t -> from:int -> bool array

val tarjan_scc : t -> int list array
(** Strongly connected components in reverse topological order of the
    condensation (i.e. a component appears before any component that can
    reach it). Every node appears in exactly one component. *)

val scc_of : int list array -> n:int -> int array
(** [scc_of comps ~n] maps each node to its component index. *)

val topo_order : t -> int list
(** Topological order of a DAG. Raises [Invalid_argument] on a cycle. *)

val longest_path :
  t -> node_weight:(int -> int) -> int array
(** For a DAG: [h.(v)] = maximum over paths starting at [v] of the sum of
    node weights along the path (including [v] itself) — the dependence
    height used by the scheduling heuristics. Raises on cycles. *)
