type t = { deps : int list array }

let compute (cfg : Cfg.t) =
  let n = Cfg.n_blocks cfg in
  let pdom = Dom.compute_post cfg.Cfg.graph ~exits:cfg.Cfg.exits in
  let vexit = n in
  let deps = Array.make n [] in
  for a = 0 to n - 1 do
    List.iter
      (fun b ->
        (* Walk the post-dominator tree from b up to (excluding) ipdom(a). *)
        let stop =
          match Dom.idom pdom a with Some d -> d | None -> vexit
        in
        let rec walk r =
          if r <> stop && r <> vexit then begin
            deps.(r) <- a :: deps.(r);
            match Dom.idom pdom r with
            | Some r' -> walk r'
            | None -> ()
          end
        in
        if not (Dom.dominates pdom b a) then walk b)
      (Cfg.succ cfg a)
  done;
  Array.iteri (fun i l -> deps.(i) <- List.sort_uniq compare l) deps;
  { deps }

let controllers t b = t.deps.(b)

let controller_instrs t cfg b =
  List.filter_map
    (fun a ->
      let ops = cfg.Cfg.func.blocks.(a).ops in
      let n = Array.length ops in
      if n = 0 then None
      else Some (Ssp_ir.Iref.make cfg.Cfg.func.name a (n - 1)))
    (controllers t b)
