type t = { n : int; succ : int list array; pred : int list array }

let make ~n edges =
  let g = { n; succ = Array.make n []; pred = Array.make n [] } in
  List.iter
    (fun (a, b) ->
      g.succ.(a) <- b :: g.succ.(a);
      g.pred.(b) <- a :: g.pred.(b))
    edges;
  (* Restore insertion order; clients rely on deterministic traversals. *)
  Array.iteri (fun i l -> g.succ.(i) <- List.rev l) g.succ;
  Array.iteri (fun i l -> g.pred.(i) <- List.rev l) g.pred;
  g

let add_edge g a b =
  g.succ.(a) <- g.succ.(a) @ [ b ];
  g.pred.(b) <- g.pred.(b) @ [ a ]

let rpo g ~entry =
  let seen = Array.make g.n false in
  let post = ref [] in
  (* Iterative DFS with an explicit stack of (node, remaining successors). *)
  let stack = ref [ (entry, ref g.succ.(entry)) ] in
  seen.(entry) <- true;
  while !stack <> [] do
    match !stack with
    | [] -> ()
    | (v, rest) :: tl -> (
      match !rest with
      | [] ->
        post := v :: !post;
        stack := tl
      | s :: more ->
        rest := more;
        if not seen.(s) then begin
          seen.(s) <- true;
          stack := (s, ref g.succ.(s)) :: !stack
        end)
  done;
  Array.of_list !post

let reachable g ~from =
  let seen = Array.make g.n false in
  let rec go v =
    if not seen.(v) then begin
      seen.(v) <- true;
      List.iter go g.succ.(v)
    end
  in
  go from;
  seen

let tarjan_scc g =
  let index = Array.make g.n (-1) in
  let lowlink = Array.make g.n 0 in
  let on_stack = Array.make g.n false in
  let stack = ref [] in
  let next = ref 0 in
  let comps = ref [] in
  (* Iterative Tarjan to survive deep graphs. Frame: node, successor cursor. *)
  let rec strongconnect v =
    index.(v) <- !next;
    lowlink.(v) <- !next;
    incr next;
    stack := v :: !stack;
    on_stack.(v) <- true;
    List.iter
      (fun w ->
        if index.(w) = -1 then begin
          strongconnect w;
          lowlink.(v) <- min lowlink.(v) lowlink.(w)
        end
        else if on_stack.(w) then lowlink.(v) <- min lowlink.(v) index.(w))
      g.succ.(v);
    if lowlink.(v) = index.(v) then begin
      let rec pop acc =
        match !stack with
        | [] -> acc
        | w :: tl ->
          stack := tl;
          on_stack.(w) <- false;
          if w = v then w :: acc else pop (w :: acc)
      in
      comps := pop [] :: !comps
    end
  in
  for v = 0 to g.n - 1 do
    if index.(v) = -1 then strongconnect v
  done;
  (* Tarjan emits components in reverse topological order already when
     collected in discovery order; we accumulated with [::] so reverse. *)
  Array.of_list (List.rev !comps)

let scc_of comps ~n =
  let m = Array.make n (-1) in
  Array.iteri (fun ci nodes -> List.iter (fun v -> m.(v) <- ci) nodes) comps;
  m

let topo_order g =
  let indeg = Array.make g.n 0 in
  Array.iter (List.iter (fun s -> indeg.(s) <- indeg.(s) + 1)) g.succ;
  let q = Queue.create () in
  Array.iteri (fun v d -> if d = 0 then Queue.add v q) indeg;
  let out = ref [] in
  let count = ref 0 in
  while not (Queue.is_empty q) do
    let v = Queue.pop q in
    incr count;
    out := v :: !out;
    List.iter
      (fun s ->
        indeg.(s) <- indeg.(s) - 1;
        if indeg.(s) = 0 then Queue.add s q)
      g.succ.(v)
  done;
  if !count <> g.n then invalid_arg "Digraph.topo_order: graph has a cycle";
  List.rev !out

let longest_path g ~node_weight =
  let order = topo_order g in
  let h = Array.make g.n 0 in
  (* Process in reverse topological order so successors are final. *)
  List.iter
    (fun v ->
      let best = List.fold_left (fun acc s -> max acc h.(s)) 0 g.succ.(v) in
      h.(v) <- node_weight v + best)
    (List.rev order);
  h
