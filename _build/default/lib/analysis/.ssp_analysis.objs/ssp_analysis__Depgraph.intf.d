lib/analysis/depgraph.mli: Cfg Loops Reaching Ssp_ir
