lib/analysis/regions.mli: Cfg Depgraph Format Loops Reaching Ssp_ir
