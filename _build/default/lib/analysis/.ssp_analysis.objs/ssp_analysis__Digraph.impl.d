lib/analysis/digraph.ml: Array List Queue
