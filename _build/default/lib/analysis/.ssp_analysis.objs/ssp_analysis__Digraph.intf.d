lib/analysis/digraph.mli:
