lib/analysis/dom.ml: Array Digraph List
