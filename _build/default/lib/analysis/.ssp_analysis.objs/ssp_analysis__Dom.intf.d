lib/analysis/dom.mli: Digraph
