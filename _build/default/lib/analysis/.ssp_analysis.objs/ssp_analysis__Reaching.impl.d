lib/analysis/reaching.ml: Array Cfg Dom Hashtbl Int List Op Reg Set Ssp_ir Ssp_isa
