lib/analysis/loops.ml: Array Cfg Dom Hashtbl Int List Option Set
