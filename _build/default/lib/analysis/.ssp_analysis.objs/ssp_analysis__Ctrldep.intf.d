lib/analysis/ctrldep.mli: Cfg Ssp_ir
