lib/analysis/callgraph.ml: Array Digraph Hashtbl List Op Option Ssp_ir Ssp_isa
