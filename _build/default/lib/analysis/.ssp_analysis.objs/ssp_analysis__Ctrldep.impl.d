lib/analysis/ctrldep.ml: Array Cfg Dom List Ssp_ir
