lib/analysis/reaching.mli: Cfg Ssp_ir Ssp_isa
