lib/analysis/callgraph.mli: Ssp_ir
