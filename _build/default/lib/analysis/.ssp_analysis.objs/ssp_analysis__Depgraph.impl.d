lib/analysis/depgraph.ml: Array Cfg Ctrldep List Loops Op Option Reaching Ssp_ir Ssp_isa
