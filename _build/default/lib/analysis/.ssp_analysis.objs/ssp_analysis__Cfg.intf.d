lib/analysis/cfg.mli: Digraph Ssp_ir Ssp_isa
