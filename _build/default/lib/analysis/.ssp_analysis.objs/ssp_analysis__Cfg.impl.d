lib/analysis/cfg.ml: Array Digraph Hashtbl List Op Ssp_ir Ssp_isa String
