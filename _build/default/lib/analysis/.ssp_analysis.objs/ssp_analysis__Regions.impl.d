lib/analysis/regions.ml: Cfg Depgraph Dom Format Fun Hashtbl List Loops Printf Reaching Ssp_ir
