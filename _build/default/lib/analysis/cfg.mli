(** Control-flow graph of a function, at basic-block granularity.

    Nodes are block indices in layout order (entry = 0). A block falls
    through to the next block in layout unless its last instruction is a
    terminator; conditional branches contribute both the taken edge and the
    fall-through edge. [Chk_c] recovery stubs and [Spawn] targets are not
    normal control flow and contribute no edges. *)

type t = {
  func : Ssp_ir.Prog.func;
  graph : Digraph.t;  (** block-level successor/predecessor graph *)
  exits : int list;  (** blocks ending in [Ret], [Halt] or [Kill] *)
}

val of_func : Ssp_ir.Prog.func -> t

val succ : t -> int -> int list
val pred : t -> int -> int list
val n_blocks : t -> int

val block_of_label : t -> string -> int
(** Raises [Not_found]. *)

val terminator : t -> int -> Ssp_isa.Op.t option
(** Last instruction of the block, if any. *)
