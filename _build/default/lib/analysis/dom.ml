type t = {
  idom : int array;  (* -1 = root or unreachable *)
  rpo_num : int array;  (* -1 = unreachable *)
  root : int;
  kids : int list array;
  (* Preorder interval labelling of the dominator tree for O(1) queries. *)
  tin : int array;
  tout : int array;
}

let build_tree n idom root rpo_num =
  let kids = Array.make n [] in
  Array.iteri
    (fun v d -> if d >= 0 && v <> root then kids.(d) <- v :: kids.(d))
    idom;
  Array.iteri (fun i l -> kids.(i) <- List.rev l) kids;
  let tin = Array.make n (-1) and tout = Array.make n (-1) in
  let clock = ref 0 in
  let rec dfs v =
    tin.(v) <- !clock;
    incr clock;
    List.iter dfs kids.(v);
    tout.(v) <- !clock;
    incr clock
  in
  dfs root;
  { idom; rpo_num; root; kids; tin; tout }

let compute_on n ~succ:_ ~pred ~order ~root =
  let rpo_num = Array.make n (-1) in
  Array.iteri (fun i v -> rpo_num.(v) <- i) order;
  let idom = Array.make n (-1) in
  idom.(root) <- root;
  let intersect a b =
    let a = ref a and b = ref b in
    while !a <> !b do
      while rpo_num.(!a) > rpo_num.(!b) do
        a := idom.(!a)
      done;
      while rpo_num.(!b) > rpo_num.(!a) do
        b := idom.(!b)
      done
    done;
    !a
  in
  let changed = ref true in
  while !changed do
    changed := false;
    Array.iter
      (fun v ->
        if v <> root then begin
          let new_idom =
            List.fold_left
              (fun acc p ->
                if rpo_num.(p) = -1 || idom.(p) = -1 then acc
                else match acc with None -> Some p | Some a -> Some (intersect p a))
              None (pred v)
          in
          match new_idom with
          | None -> ()
          | Some d ->
            if idom.(v) <> d then begin
              idom.(v) <- d;
              changed := true
            end
        end)
      order
  done;
  idom.(root) <- -1;
  (idom, rpo_num)

let compute (g : Digraph.t) ~entry =
  let order = Digraph.rpo g ~entry in
  let idom, rpo_num =
    compute_on g.Digraph.n
      ~succ:(fun v -> g.Digraph.succ.(v))
      ~pred:(fun v -> g.Digraph.pred.(v))
      ~order ~root:entry
  in
  build_tree g.Digraph.n idom entry rpo_num

let compute_post (g : Digraph.t) ~exits =
  (* Reverse graph with a virtual exit node at index n. *)
  let n = g.Digraph.n + 1 in
  let vexit = g.Digraph.n in
  let succ = Array.make n [] and pred = Array.make n [] in
  for v = 0 to g.Digraph.n - 1 do
    succ.(v) <- g.Digraph.pred.(v);
    pred.(v) <- g.Digraph.succ.(v)
  done;
  succ.(vexit) <- exits;
  List.iter (fun e -> pred.(e) <- vexit :: pred.(e)) exits;
  let rg = { Digraph.n; succ; pred } in
  let order = Digraph.rpo rg ~entry:vexit in
  let idom, rpo_num =
    compute_on n
      ~succ:(fun v -> succ.(v))
      ~pred:(fun v -> pred.(v))
      ~order ~root:vexit
  in
  build_tree n idom vexit rpo_num

let idom t v = if t.idom.(v) = -1 then None else Some t.idom.(v)
let reachable t v = t.rpo_num.(v) <> -1 || v = t.root

let dominates t a b =
  reachable t a && reachable t b && t.tin.(a) <= t.tin.(b)
  && t.tout.(b) <= t.tout.(a)
  && t.tin.(a) >= 0 && t.tin.(b) >= 0

let children t v = t.kids.(v)
let virtual_exit t = t.root
