(** Reaching definitions at register granularity, and the def–use chains the
    dependence graph is built from.

    Definition sites are register-writing instructions plus two implicit
    kinds: function parameters (defined at entry) and call-site clobbers
    (already explicit in {!Ssp_isa.Op.defs}). *)

type def = { site : Ssp_ir.Iref.t; reg : Ssp_isa.Reg.t }

type t

val compute : Cfg.t -> t

val reaching_defs : t -> use:Ssp_ir.Iref.t -> Ssp_isa.Reg.t -> def list
(** Definitions of the register that may reach the given instruction
    (before it executes). A parameter register live-in to the function is
    reported as a def at the entry instruction position with [ins = -1]. *)

val defs_without_back_edges : t -> use:Ssp_ir.Iref.t -> Ssp_isa.Reg.t -> def list
(** Same, but computed on the CFG with loop back edges removed: reaching
    definitions within the current iteration only. A def that reaches a use
    in [reaching_defs] but not here flows only around a back edge — a
    loop-carried dependence. *)
