open Ssp_isa

type def = { site : Ssp_ir.Iref.t; reg : Reg.t }

module IS = Set.Make (Int)

(* Per variant (with and without back edges) we store, per block, the set of
   def indices reaching block entry. Defs are numbered densely. *)
type variant = { in_sets : IS.t array }

type t = {
  cfg : Cfg.t;
  defs : def array;  (* numbered def sites *)
  defs_of_reg : int list array;  (* reg -> def indices *)
  full : variant;
  no_back : variant;
}

let number_defs (cfg : Cfg.t) =
  let f = cfg.Cfg.func in
  let defs = ref [] in
  let count = ref 0 in
  (* Parameters are defined "at entry": pseudo-site blk 0, ins -1. *)
  for i = 0 to f.nparams - 1 do
    defs := { site = Ssp_ir.Iref.make f.name 0 (-1); reg = Reg.arg i } :: !defs;
    incr count
  done;
  Array.iteri
    (fun bi (b : Ssp_ir.Prog.block) ->
      Array.iteri
        (fun ii op ->
          List.iter
            (fun r ->
              defs :=
                { site = Ssp_ir.Iref.make f.name bi ii; reg = r } :: !defs;
              incr count)
            (Op.defs op))
        b.ops)
    f.blocks;
  Array.of_list (List.rev !defs)

let solve (cfg : Cfg.t) defs defs_of_reg ~drop_edges =
  let f = cfg.Cfg.func in
  let n = Cfg.n_blocks cfg in
  (* gen/kill per block. gen = last def of each register in the block;
     kill = all other defs of registers defined in the block. *)
  let def_index = Hashtbl.create 64 in
  Array.iteri
    (fun i d -> Hashtbl.replace def_index (d.site, d.reg) i)
    defs;
  let gen = Array.make n IS.empty and kill = Array.make n IS.empty in
  for bi = 0 to n - 1 do
    let b = f.blocks.(bi) in
    let last_def = Hashtbl.create 8 in
    Array.iteri
      (fun ii op ->
        List.iter
          (fun r ->
            Hashtbl.replace last_def r (Ssp_ir.Iref.make f.name bi ii))
          (Op.defs op))
      b.ops;
    Hashtbl.iter
      (fun r site ->
        let di = Hashtbl.find def_index (site, r) in
        gen.(bi) <- IS.add di gen.(bi);
        List.iter
          (fun other -> if other <> di then kill.(bi) <- IS.add other kill.(bi))
          defs_of_reg.(r))
      last_def
  done;
  let pred bi =
    List.filter
      (fun p -> not (List.mem (p, bi) drop_edges))
      (Cfg.pred cfg bi)
  in
  (* Parameter pseudo-defs (site ins = -1) are live-in to the entry block. *)
  let param_defs = ref IS.empty in
  Array.iteri
    (fun i (d : def) ->
      if d.site.Ssp_ir.Iref.ins = -1 then param_defs := IS.add i !param_defs)
    defs;
  let in_sets = Array.make n IS.empty in
  let out_sets = Array.make n IS.empty in
  let changed = ref true in
  while !changed do
    changed := false;
    for bi = 0 to n - 1 do
      let inb =
        List.fold_left (fun acc p -> IS.union acc out_sets.(p))
          (if bi = 0 then !param_defs else IS.empty)
          (pred bi)
      in
      let outb = IS.union gen.(bi) (IS.diff inb kill.(bi)) in
      if not (IS.equal inb in_sets.(bi)) || not (IS.equal outb out_sets.(bi))
      then begin
        in_sets.(bi) <- inb;
        out_sets.(bi) <- outb;
        changed := true
      end
    done
  done;
  { in_sets }

let back_edges_of (cfg : Cfg.t) =
  let dom = Dom.compute cfg.Cfg.graph ~entry:0 in
  let edges = ref [] in
  for v = 0 to Cfg.n_blocks cfg - 1 do
    List.iter
      (fun s -> if Dom.dominates dom s v then edges := (v, s) :: !edges)
      (Cfg.succ cfg v)
  done;
  !edges

let compute cfg =
  let defs = number_defs cfg in
  let defs_of_reg = Array.make Reg.count [] in
  Array.iteri
    (fun i d -> defs_of_reg.(d.reg) <- i :: defs_of_reg.(d.reg))
    defs;
  Array.iteri (fun r l -> defs_of_reg.(r) <- List.rev l) defs_of_reg;
  let full = solve cfg defs defs_of_reg ~drop_edges:[] in
  let no_back = solve cfg defs defs_of_reg ~drop_edges:(back_edges_of cfg) in
  { cfg; defs; defs_of_reg; full; no_back }

let query t variant ~(use : Ssp_ir.Iref.t) reg =
  let f = t.cfg.Cfg.func in
  let bi = use.Ssp_ir.Iref.blk in
  (* Walk the block from its entry, updating the last def of [reg], to find
     what reaches this instruction locally; otherwise fall back to IN. *)
  let local = ref None in
  let b = f.blocks.(bi) in
  for ii = 0 to use.Ssp_ir.Iref.ins - 1 do
    if List.mem reg (Op.defs b.ops.(ii)) then
      local := Some (Ssp_ir.Iref.make f.name bi ii)
  done;
  match !local with
  | Some site -> [ { site; reg } ]
  | None ->
    IS.fold
      (fun di acc ->
        let d = t.defs.(di) in
        if d.reg = reg then d :: acc else acc)
      variant.in_sets.(bi) []
    |> List.rev

let reaching_defs t ~use reg = query t t.full ~use reg
let defs_without_back_edges t ~use reg = query t t.no_back ~use reg
