open Ssp_analysis

type cut_edge = { src : int; dst : int; freq : int }

(* Profiled frequency of a CFG edge, reconstructed from block frequencies
   and branch direction counts. *)
let edge_freq (cfg : Cfg.t) profile ~src ~dst =
  let fn = cfg.Cfg.func.Ssp_ir.Prog.name in
  let bfreq b = Ssp_profiling.Profile.block_freq profile fn b in
  let ops = cfg.Cfg.func.Ssp_ir.Prog.blocks.(src).Ssp_ir.Prog.ops in
  let n = Array.length ops in
  if n = 0 then bfreq src
  else
    let last = Ssp_ir.Iref.make fn src (n - 1) in
    match ops.(n - 1) with
    | Ssp_isa.Op.Br _ -> bfreq src
    | Ssp_isa.Op.Brnz (_, l) | Ssp_isa.Op.Brz (_, l) -> (
      let target = Cfg.block_of_label cfg l in
      match Ssp_profiling.Profile.branch_bias profile last with
      | Some b ->
        if target = dst && dst <> src + 1 then b.Ssp_profiling.Profile.taken
        else if dst = src + 1 && target <> dst then
          b.Ssp_profiling.Profile.not_taken
        else bfreq src (* degenerate: both successors coincide *)
      | None -> 0)
    | _ -> bfreq src (* fall-through *)

(* Edmonds–Karp max flow on the block graph. Capacities are edge
   frequencies (+1 so zero-frequency edges on the frequent subgraph still
   carry unit capacity). *)
let min_cut (cfg : Cfg.t) profile ?(min_freq = 1) ~sink () =
  let n = Cfg.n_blocks cfg in
  let cap = Hashtbl.create 64 in
  let adj = Array.make n [] in
  let add_edge u v c =
    if not (Hashtbl.mem cap (u, v)) then begin
      Hashtbl.replace cap (u, v) c;
      if not (Hashtbl.mem cap (v, u)) then Hashtbl.replace cap (v, u) 0;
      adj.(u) <- v :: adj.(u);
      adj.(v) <- u :: adj.(v)
    end
  in
  for u = 0 to n - 1 do
    List.iter
      (fun v ->
        let f = edge_freq cfg profile ~src:u ~dst:v in
        if f >= min_freq then add_edge u v f)
      (Cfg.succ cfg u)
  done;
  if sink = 0 then []
  else begin
    let residual u v = Option.value ~default:0 (Hashtbl.find_opt cap (u, v)) in
    let bfs () =
      let parent = Array.make n (-1) in
      parent.(0) <- 0;
      let q = Queue.create () in
      Queue.add 0 q;
      let found = ref false in
      while (not !found) && not (Queue.is_empty q) do
        let u = Queue.pop q in
        List.iter
          (fun v ->
            if parent.(v) = -1 && residual u v > 0 then begin
              parent.(v) <- u;
              if v = sink then found := true else Queue.add v q
            end)
          adj.(u)
      done;
      if !found then Some parent else None
    in
    let rec loop () =
      match bfs () with
      | None -> ()
      | Some parent ->
        (* bottleneck along the path *)
        let rec path v acc =
          if v = 0 then acc else path parent.(v) ((parent.(v), v) :: acc)
        in
        let p = path sink [] in
        let bottleneck =
          List.fold_left (fun acc (u, v) -> min acc (residual u v)) max_int p
        in
        List.iter
          (fun (u, v) ->
            Hashtbl.replace cap (u, v) (residual u v - bottleneck);
            Hashtbl.replace cap (v, u) (residual v u + bottleneck))
          p;
        loop ()
    in
    loop ();
    (* Min cut: edges from the source-reachable side to the rest. *)
    let reach = Array.make n false in
    reach.(0) <- true;
    let q = Queue.create () in
    Queue.add 0 q;
    while not (Queue.is_empty q) do
      let u = Queue.pop q in
      List.iter
        (fun v ->
          if (not reach.(v)) && residual u v > 0 then begin
            reach.(v) <- true;
            Queue.add v q
          end)
        adj.(u)
    done;
    let cut = ref [] in
    for u = 0 to n - 1 do
      if reach.(u) then
        List.iter
          (fun v ->
            let f = edge_freq cfg profile ~src:u ~dst:v in
            if f >= min_freq && not reach.(v) then
              cut := { src = u; dst = v; freq = f } :: !cut)
          (Cfg.succ cfg u)
    done;
    List.rev !cut
  end

let triggers_of_cut fn cut =
  List.map
    (fun e -> { Trigger.fn; blk = e.dst; pos = 0; kind = Trigger.Preheader })
    cut
  |> List.sort_uniq compare

let dynamic_cost profile fn triggers =
  List.fold_left
    (fun acc (t : Trigger.t) ->
      acc + Ssp_profiling.Profile.block_freq profile fn t.Trigger.blk)
    0 triggers
