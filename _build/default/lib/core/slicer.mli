(** Backward program slicing for speculative precomputation (§3.1).

    [slice_region] computes the slice of a delinquent load's address within
    one region (the region-based slicing of §3.1.1: the driver grows the
    region outward until the slack suffices). The traversal follows true
    register data dependences backward; it stops and records a live-in at:
    - definitions outside the region (loop invariants, values computed
      before the region);
    - function parameters;
    - non-sliceable producers — calls, allocations, random numbers:
      instructions a speculative thread must not re-execute. A live-in cut
      at a producer {e inside} a loop region forces per-iteration (basic)
      triggering, which the selector honours.

    Speculative slicing (§3.1.2) prunes definitions in never-executed
    blocks (block profiling) and ignores intra-region control dependences —
    guarded address computations are hoisted speculatively, which is safe
    because p-slices contain no stores and cannot fault. The loop's own
    continuation condition is handled by the scheduler (spawn condition or
    condition prediction), not here.

    Loop-carried classification: a live-in whose defining instructions are
    slice members reached around the loop's back edge is a {e recurrence}
    (the value the chaining thread passes to its successor). *)

val max_slice_size : int
(** Slices larger than this are rejected ("to avoid a slice becoming too
    big that often leads to wrong address calculations", §3.4.1). *)

val slice_region :
  Ssp_analysis.Regions.t ->
  Ssp_profiling.Profile.t ->
  region:Ssp_analysis.Regions.region ->
  Delinquent.load ->
  Slice.t option
(** [None] when the load's address is a constant, the slice exceeds
    {!max_slice_size}, or the load lies outside the region. *)

val bind_at_callers :
  Ssp_analysis.Regions.t ->
  Ssp_analysis.Callgraph.t ->
  Ssp_profiling.Profile.t ->
  Slice.t ->
  (Slice.t * Ssp_ir.Iref.t list) option
(** Context-sensitive upward binding (§3.1's [contextmap]): when every
    live-in of a whole-procedure slice is a formal parameter, the live-ins
    can be bound to the actuals at the call sites of the host function and
    the triggers placed there — an interprocedural slice. Returns the
    re-marked slice and the call sites (including recursive ones). *)
