lib/core/hand.mli: Adapt Ssp_ir Ssp_machine Ssp_profiling
