lib/core/adapt.ml: Callgraph Codegen Delinquent Format List Regions Report Schedule Select Slice Ssp_analysis Ssp_ir String Trigger
