lib/core/delinquent.ml: Format List Op Reg Ssp_ir Ssp_isa Ssp_profiling
