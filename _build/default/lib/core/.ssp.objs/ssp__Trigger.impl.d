lib/core/trigger.ml: Cfg Dom List Loops Regions Slice Ssp_analysis Ssp_ir String
