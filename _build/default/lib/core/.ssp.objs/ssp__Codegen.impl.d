lib/core/codegen.ml: Array Format Hashtbl Int64 List Op Printf Reg Schedule Select Slice Ssp_analysis Ssp_ir Ssp_isa Ssp_sim String Trigger
