lib/core/slicer.ml: Callgraph Delinquent Hashtbl Int List Op Option Reaching Reg Regions Set Slice Ssp_analysis Ssp_ir Ssp_isa Ssp_profiling Ssp_sim String
