lib/core/codegen.mli: Select Ssp_ir Ssp_isa Ssp_machine
