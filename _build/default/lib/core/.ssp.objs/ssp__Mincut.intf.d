lib/core/mincut.mli: Ssp_analysis Ssp_profiling Trigger
