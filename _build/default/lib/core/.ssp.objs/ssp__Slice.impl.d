lib/core/slice.ml: Format List Ssp_analysis Ssp_ir Ssp_isa
