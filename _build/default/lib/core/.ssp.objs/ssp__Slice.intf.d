lib/core/slice.mli: Format Ssp_analysis Ssp_ir Ssp_isa
