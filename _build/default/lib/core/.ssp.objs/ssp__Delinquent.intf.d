lib/core/delinquent.mli: Format Ssp_ir Ssp_isa Ssp_profiling
