lib/core/slicer.mli: Delinquent Slice Ssp_analysis Ssp_ir Ssp_profiling
