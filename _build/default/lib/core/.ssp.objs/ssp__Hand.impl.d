lib/core/hand.ml: Adapt Codegen Hashtbl List Op Reg Select Ssp_analysis Ssp_ir Ssp_isa
