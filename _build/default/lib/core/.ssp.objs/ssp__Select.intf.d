lib/core/select.mli: Delinquent Schedule Ssp_analysis Ssp_machine Ssp_profiling Trigger
