lib/core/select.ml: Delinquent List Loops Regions Schedule Slice Slicer Ssp_analysis Ssp_ir Ssp_machine Ssp_profiling String Trigger
