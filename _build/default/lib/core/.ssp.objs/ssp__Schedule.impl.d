lib/core/schedule.ml: Array Cfg Digraph Fun Hashtbl List Loops Op Reaching Reg Regions Slice Ssp_analysis Ssp_ir Ssp_isa Ssp_machine Ssp_profiling String
