lib/core/schedule.mli: Slice Ssp_analysis Ssp_ir Ssp_isa Ssp_machine Ssp_profiling
