lib/core/adapt.mli: Delinquent Report Select Ssp_ir Ssp_machine Ssp_profiling
