lib/core/mincut.ml: Array Cfg Hashtbl List Option Queue Ssp_analysis Ssp_ir Ssp_isa Ssp_profiling Trigger
