lib/core/trigger.mli: Slice Ssp_analysis Ssp_ir
