(** Scheduling the slice into an execution slice (§3.2).

    For a loop region the slice is turned into the do-across prefetching
    loop of Figure 5:

    - {b dependence reduction} (§3.2.1.1): loop rotation picks the iteration
      boundary that converts the most backward loop-carried dependences into
      intra-iteration ones without creating new ones; condition prediction
      replaces a spawn condition that is expensive to precompute with a
      profile-derived chain-depth bound (over-spawning is safe: requests
      without a free context are ignored);
    - {b graph partitioning} (§3.2.1.2.1): Tarjan SCCs over the slice's
      dependence graph; the {e critical sub-slice} is the backward
      intra-iteration closure of the values the next chaining thread needs
      (the non-degenerate SCCs and their feeders) and is scheduled before
      the spawn point; the remaining degenerate SCCs form the
      {e non-critical sub-slice} after it;
    - {b list scheduling} (§3.2.1.2.2): forward cycle scheduling with
      maximum cumulative cost (dependence height with profiled load
      latencies); ties broken by lower original instruction address.

    The module also computes the heights the slack formulas of §3.2.1.2.2 /
    §3.2.2 need, and the available-ILP diagnostic of Cooper et al. that
    justifies the height heuristic. *)

type spawn_condition =
  | Cond of {
      extra : Ssp_ir.Iref.t list;  (** condition instrs not already in slice *)
      reg : Ssp_isa.Reg.t;  (** continue-condition register *)
      spawn_if_nonzero : bool;
    }
  | Predicted of { depth : int }  (** chain-depth bound *)

type inner_loop = {
  loop_id : int;  (** a loop strictly inside the slice's region *)
  body : Ssp_ir.Iref.t list;  (** slice instrs of the loop, scheduled *)
  pre : Ssp_ir.Iref.t list;  (** slice instrs outside it, scheduled *)
  carried : Ssp_isa.Reg.t list;
      (** registers carried around the inner loop's back edge by the slice *)
  cond : spawn_condition;  (** the inner loop's continue condition *)
  trips : int;  (** profiled iterations per entry *)
}
(** A slice that spans an inner loop of its region (the health pattern:
    a whole-procedure slice containing the patient-list walk). Code
    generation preserves the loop so one speculative thread prefetches the
    entire traversal, which is what the paper's interprocedural slices do. *)

type t = {
  slice : Slice.t;
  order_critical : Ssp_ir.Iref.t list;  (** scheduled order *)
  order_non_critical : Ssp_ir.Iref.t list;
  spawn_cond : spawn_condition;
  recurrence_regs : Ssp_isa.Reg.t list;
  height_region : int;  (** dependence height of one region iteration *)
  height_critical : int;
  height_slice : int;
  copy_spawn_latency : int;
  rotation : int;  (** chosen boundary offset in the slice's layout order *)
  loop_carried_edges : int;  (** after rotation *)
  available_ilp : float;
  inner : inner_loop option;
}

val build :
  Ssp_analysis.Regions.t ->
  Ssp_profiling.Profile.t ->
  Ssp_machine.Config.t ->
  trips:int ->
  Slice.t ->
  t

val slack_csp : t -> int -> int
(** [slack_csp t i] = (height(region) − height(critical) − copy/spawn) · i,
    clamped at 0. *)

val slack_bsp : t -> int -> int
(** [slack_bsp t i] = (height(region) − height(slice)) · i, clamped. *)
