(** Hand adaptation (§4.5).

    Wang et al. hand-adapted mcf and health for speculative precomputation;
    the paper compares the automatic tool against those binaries on the
    same simulator. These are our renditions of the hand-tuned versions,
    built with the same low-level rewriting as the tool but using the
    tricks the tool does not attempt:

    - {b mcf}: each chaining thread precomputes {e four} consecutive arc
      iterations (the tool targets one iteration per thread, §3.2.1), so a
      chain of the same number of hardware contexts covers four times the
      prefetch distance with a quarter of the spawn overhead;
    - {b health}: an additional interprocedural slice with one level of the
      recursion inlined by hand — at every call site of [simulate] a
      speculative thread prefetches the four child villages and the heads
      of their patient lists, on top of the tool's own list-walk slices
      (the paper attributes the hand version's advantage exactly to this
      inlining, §4.4.1/§4.5). *)

val adapt :
  workload:string ->
  config:Ssp_machine.Config.t ->
  Ssp_ir.Prog.t ->
  Ssp_profiling.Profile.t ->
  Adapt.result option
(** [None] for workloads without a hand-adapted version. *)
