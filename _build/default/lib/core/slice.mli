(** Precomputation slices (p-slices).

    A slice is the set of instructions of one region that compute the
    addresses of one or more delinquent loads, together with its live-in
    cut: values the slice consumes but does not compute. A live-in arises
    from a definition outside the region, a function parameter, or a
    non-sliceable producer (a call result, an allocation, a random number —
    instructions a speculative thread must not re-execute). The paper's
    rule that p-slices contain no stores is enforced structurally: stores
    are never sliceable. *)

type live_in = {
  orig_reg : Ssp_isa.Reg.t;  (** register in the host function's frame *)
  def_sites : Ssp_ir.Iref.t list;
      (** the producing instructions (empty for parameters/invariants
          defined before the region) *)
  recurrence : bool;
      (** carried from iteration to iteration by the slice itself *)
}

type target = {
  load : Ssp_ir.Iref.t;
  addr_reg : Ssp_isa.Reg.t;
  offset : int;
  value_used : bool;
      (** the loaded value itself feeds the slice (pointer-chase
          recurrence): keep the load, no separate prefetch needed *)
}

type t = {
  fn : string;
  region : Ssp_analysis.Regions.region;
  targets : target list;
  instrs : Ssp_ir.Iref.Set.t;
  live_ins : live_in list;
  interprocedural : bool;
      (** live-ins are bound at call sites of [fn] rather than inside it *)
}

val size : t -> int
val shares_instrs : t -> t -> bool
val merge : t -> t -> t
(** Union of two slices over the same region. *)

val pp : Ssp_ir.Prog.t -> Format.formatter -> t -> unit
