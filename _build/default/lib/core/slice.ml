type live_in = {
  orig_reg : Ssp_isa.Reg.t;
  def_sites : Ssp_ir.Iref.t list;
  recurrence : bool;
}

type target = {
  load : Ssp_ir.Iref.t;
  addr_reg : Ssp_isa.Reg.t;
  offset : int;
  value_used : bool;
}

type t = {
  fn : string;
  region : Ssp_analysis.Regions.region;
  targets : target list;
  instrs : Ssp_ir.Iref.Set.t;
  live_ins : live_in list;
  interprocedural : bool;
}

let size t = Ssp_ir.Iref.Set.cardinal t.instrs

let shares_instrs a b =
  not (Ssp_ir.Iref.Set.is_empty (Ssp_ir.Iref.Set.inter a.instrs b.instrs))

let merge a b =
  let instrs = Ssp_ir.Iref.Set.union a.instrs b.instrs in
  let targets =
    a.targets
    @ List.filter
        (fun t ->
          not
            (List.exists
               (fun t' -> Ssp_ir.Iref.equal t'.load t.load)
               a.targets))
        b.targets
  in
  (* A target whose load became a member of the merged slice is fetched by
     executing it — no separate prefetch needed. *)
  let targets =
    List.map
      (fun t ->
        { t with value_used = t.value_used || Ssp_ir.Iref.Set.mem t.load instrs })
      targets
  in
  let live_ins =
    a.live_ins
    @ List.filter
        (fun l ->
          not (List.exists (fun l' -> l'.orig_reg = l.orig_reg) a.live_ins))
        b.live_ins
  in
  {
    a with
    targets;
    instrs;
    live_ins;
    interprocedural = a.interprocedural || b.interprocedural;
  }

let pp prog ppf t =
  Format.fprintf ppf "@[<v>slice in %a (%s%s): %d instrs, %d live-ins@,"
    Ssp_analysis.Regions.pp t.region t.fn
    (if t.interprocedural then ", interprocedural" else "")
    (size t) (List.length t.live_ins);
  List.iter
    (fun tg ->
      Format.fprintf ppf "  target %a%s@," Ssp_ir.Iref.pp tg.load
        (if tg.value_used then " (value used)" else ""))
    t.targets;
  Ssp_ir.Iref.Set.iter
    (fun i ->
      Format.fprintf ppf "  %a: %s@," Ssp_ir.Iref.pp i
        (Ssp_isa.Op.to_string (Ssp_ir.Prog.instr prog i)))
    t.instrs;
  List.iter
    (fun l ->
      Format.fprintf ppf "  live-in %a%s@," Ssp_isa.Reg.pp l.orig_reg
        (if l.recurrence then " (recurrence)" else ""))
    t.live_ins;
  Format.fprintf ppf "@]"
