(** Optimal trigger placement as a minimum cut (§3.3).

    The paper observes that, with infrequent edges filtered out, the optimal
    trigger set minimizes Σᵢ fᵢ·cᵢ over cut sets of the CFG separating the
    function entry from the delinquent load — a max-flow/min-cut problem
    with frequency-weighted capacities [12]. The production placement is
    the conservative dominator walk of {!Trigger}; this module implements
    the optimal formulation (Edmonds–Karp, fine for CFG-sized graphs) so
    the two can be compared (the ablation benches report the dynamic
    trigger counts of both).

    Edges executed fewer than [min_freq] times are filtered out before the
    cut is computed, as in the paper; paths through them never trigger. *)

type cut_edge = {
  src : int;  (** block index *)
  dst : int;
  freq : int;  (** profiled executions of the edge *)
}

val min_cut :
  Ssp_analysis.Cfg.t ->
  Ssp_profiling.Profile.t ->
  ?min_freq:int ->
  sink:int ->
  unit ->
  cut_edge list
(** Minimum-weight edge cut between block 0 and [sink] under profiled edge
    frequencies. Returns [] when the sink is unreachable through frequent
    edges. *)

val triggers_of_cut : string -> cut_edge list -> Trigger.t list
(** A trigger at the head of each cut edge's destination block. *)

val dynamic_cost :
  Ssp_profiling.Profile.t -> string -> Trigger.t list -> int
(** Σ block frequency over the trigger blocks: how often the main thread
    executes the trigger instructions. *)
