(** Trigger placement (§3.3).

    Triggers form a cut set on the CFG over the paths reaching the
    delinquent loads. Placement is the paper's conservative dominator-based
    strategy: the trigger goes right after the instruction producing the
    last live-in; with no in-region producer it rises to the region
    boundary — the loop preheaders for chaining SP (which dominate the
    loads), the loop body entry for basic SP, or the call sites of the host
    function for interprocedural slices. The optimal max-flow min-cut
    formulation is in {!Mincut} and compared as an ablation. *)

type kind = Preheader | Body | Call_site

type t = { fn : string; blk : int; pos : int; kind : kind }
(** Insert the [chk.c] in function [fn], block [blk], before the
    instruction currently at [pos]. *)

val for_chaining :
  Ssp_analysis.Regions.t -> Slice.t -> t list
(** One trigger per preheader of the slice's loop. *)

val for_basic : Ssp_analysis.Regions.t -> Slice.t -> t list
(** One trigger inside the loop body (or at function entry for procedure
    regions), after the last in-region live-in producer. *)

val for_call_sites : Ssp_ir.Iref.t list -> t list

val dominates_load :
  Ssp_analysis.Regions.t -> t -> Ssp_ir.Iref.t -> bool
(** Sanity check used by tests: the trigger's block control-dominates the
    delinquent load's block (or is a call site of its function). *)
