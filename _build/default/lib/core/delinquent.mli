(** Delinquent-load identification (§2.2, §3.1).

    For many programs a small number of static loads causes the vast
    majority of cache misses. Using the cache profile, loads are ranked by
    total miss cycles and the smallest prefix covering at least the
    requested fraction (the paper uses 90 %) is selected. Loads whose
    misses are negligible in absolute terms are never selected. *)

type load = {
  iref : Ssp_ir.Iref.t;
  addr_reg : Ssp_isa.Reg.t;  (** base register of the address *)
  offset : int;
  miss_cycles : int;
  accesses : int;
  miss_ratio : float;  (** fraction of accesses missing L1 *)
}

type t = { loads : load list; covered : float; total_miss_cycles : int }

val identify :
  ?coverage:float -> Ssp_ir.Prog.t -> Ssp_profiling.Profile.t -> t
(** [coverage] defaults to 0.9. *)

val set : t -> Ssp_ir.Iref.Set.t
(** The selected loads as a set (for [Perfect_delinquent] runs). *)

val pp : Format.formatter -> t -> unit
