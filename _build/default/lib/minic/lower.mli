(** Lowering mini-C to the virtual ISA.

    Conventions produced:
    - each named local (and each parameter, copied out of r8..) lives in a
      dedicated stacked register for the whole function;
    - expression temporaries come from a recycled stacked-register pool;
    - arguments are fully evaluated into temporaries before being moved
      into the argument registers (calls clobber r8–r15);
    - [main] is the entry function and terminates with [Halt];
    - globals live in the data segment at {!Ssp_ir.Prog.data_base}. *)

exception Error of string * Ast.pos

val program : Typecheck.env -> Ast.program -> Ssp_ir.Prog.t
(** Lower a checked program. The result passes {!Ssp_ir.Validate.check}. *)
