lib/minic/lexer.ml: Ast Format Int64 List Printf String
