lib/minic/lower.ml: Ast Format Hashtbl Int64 List Op Option Reg Ssp_ir Ssp_isa String Typecheck
