lib/minic/lower.mli: Ast Ssp_ir Typecheck
