lib/minic/frontend.ml: Ast Format Lexer List Lower Parser Printf Ssp_ir String Typecheck
