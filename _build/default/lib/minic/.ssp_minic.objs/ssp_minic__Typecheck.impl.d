lib/minic/typecheck.ml: Ast Format Hashtbl List Option Printf Ssp_isa String
