lib/minic/parser.ml: Ast Format Hashtbl Int64 Lexer List String
