lib/minic/lexer.mli: Ast Format
