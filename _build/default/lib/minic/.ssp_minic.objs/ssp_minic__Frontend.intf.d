lib/minic/frontend.mli: Ssp_ir Typecheck
