(** Type checking for mini-C.

    The checker is the single implementation of the typing rules; the
    lowering pass queries it for subexpression types rather than
    re-deriving them. Pointer arithmetic is element-scaled (adding an
    integer to a [T*] advances by whole elements, like C), every scalar
    occupies 8 bytes, and [null] is compatible with every pointer type. *)

exception Error of string * Ast.pos

type env

val build_env : Ast.program -> env
(** Collects structs, globals and functions; rejects duplicates, unknown
    field types, and parameter counts beyond the 8 argument registers. *)

val check_program : Ast.program -> env
(** [build_env] plus a full check of every function body. *)

val sizeof_struct : env -> string -> int
val field_offset : env -> string -> string -> int * Ast.ty
(** Byte offset and type of a field. Raises [Not_found]. *)

val elem_size : env -> Ast.ty -> int
(** Size of the pointee of a pointer type (what pointer arithmetic and
    indexing scale by). *)

val find_func : env -> string -> Ast.func_def option
val find_global : env -> string -> Ast.global_def option
val global_offset : env -> string -> int
(** Byte offset of a global in the data segment. *)

val data_segment_bytes : env -> int

val compatible : Ast.ty -> Ast.ty -> bool
(** Assignment/comparison compatibility. *)

val type_of_expr :
  env -> vars:(string -> Ast.ty option) -> Ast.expr -> Ast.ty
(** Type of an expression given a local-variable environment; raises
    {!Error} on ill-typed input. A void call has no value: using one in
    expression position is an error; [check_stmt] special-cases call
    statements. *)
