type token =
  | INT of int64
  | IDENT of string
  | KW of string
  | PUNCT of string
  | EOF

type lexed = { tok : token; pos : Ast.pos }

exception Error of string * Ast.pos

let keywords =
  [
    "int"; "struct"; "fnptr"; "if"; "else"; "while"; "for"; "return";
    "break"; "continue"; "new"; "newarray"; "null"; "sizeof"; "void";
  ]

let is_ident_start c = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'
let is_ident_char c = is_ident_start c || (c >= '0' && c <= '9')
let is_digit c = c >= '0' && c <= '9'

let tokenize src =
  let n = String.length src in
  let line = ref 1 and col = ref 1 in
  let i = ref 0 in
  let out = ref [] in
  let pos () = { Ast.line = !line; col = !col } in
  let advance () =
    if !i < n then begin
      if src.[!i] = '\n' then begin
        incr line;
        col := 1
      end
      else incr col;
      incr i
    end
  in
  let peek k = if !i + k < n then Some src.[!i + k] else None in
  let cur () = peek 0 in
  let emit tok p = out := { tok; pos = p } :: !out in
  let rec skip_ws () =
    match cur () with
    | Some (' ' | '\t' | '\r' | '\n') ->
      advance ();
      skip_ws ()
    | Some '/' when peek 1 = Some '/' ->
      while cur () <> None && cur () <> Some '\n' do
        advance ()
      done;
      skip_ws ()
    | Some '/' when peek 1 = Some '*' ->
      let p = pos () in
      advance ();
      advance ();
      let rec close () =
        match cur () with
        | None -> raise (Error ("unterminated comment", p))
        | Some '*' when peek 1 = Some '/' ->
          advance ();
          advance ()
        | Some _ ->
          advance ();
          close ()
      in
      close ();
      skip_ws ()
    | _ -> ()
  in
  let two_char = [ "=="; "!="; "<="; ">="; "&&"; "||"; "<<"; ">>"; "->" ] in
  while
    skip_ws ();
    !i < n
  do
    let p = pos () in
    match cur () with
    | None -> ()
    | Some c when is_digit c ->
      let start = !i in
      while (match cur () with Some c -> is_digit c | None -> false) do
        advance ()
      done;
      let s = String.sub src start (!i - start) in
      emit (INT (Int64.of_string s)) p
    | Some c when is_ident_start c ->
      let start = !i in
      while (match cur () with Some c -> is_ident_char c | None -> false) do
        advance ()
      done;
      let s = String.sub src start (!i - start) in
      if List.mem s keywords then emit (KW s) p else emit (IDENT s) p
    | Some c -> (
      let pair =
        match peek 1 with
        | Some c2 ->
          let s = Printf.sprintf "%c%c" c c2 in
          if List.mem s two_char then Some s else None
        | None -> None
      in
      match pair with
      | Some s ->
        advance ();
        advance ();
        emit (PUNCT s) p
      | None -> (
        match c with
        | '+' | '-' | '*' | '/' | '%' | '&' | '|' | '^' | '<' | '>' | '='
        | '!' | '(' | ')' | '{' | '}' | '[' | ']' | ';' | ',' | '.' ->
          advance ();
          emit (PUNCT (String.make 1 c)) p
        | _ -> raise (Error (Printf.sprintf "unexpected character %C" c, p))))
  done;
  emit EOF (pos ());
  List.rev !out

let pp_token ppf = function
  | INT i -> Format.fprintf ppf "%Ld" i
  | IDENT s -> Format.fprintf ppf "identifier %s" s
  | KW s -> Format.fprintf ppf "keyword %s" s
  | PUNCT s -> Format.fprintf ppf "'%s'" s
  | EOF -> Format.fprintf ppf "end of input"
