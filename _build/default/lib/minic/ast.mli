(** Abstract syntax of mini-C, the source language the benchmark kernels are
    written in.

    The language is a small C subset tailored to pointer-intensive kernels:
    64-bit integers, pointers to named structs / to int / to function
    ([fnptr]), heap allocation ([new S], [newarray(T, n)]), global scalars
    and arrays, recursion, short-circuit logic, and the intrinsics
    [print_int] and [rand]. Every scalar, field and array element occupies
    8 bytes, so [sizeof(struct s)] = 8 × field count. *)

type pos = { line : int; col : int }

type ty =
  | Tint
  | Tptr of ty  (** [T*]; the element type governs pointer arithmetic *)
  | Tstruct of string  (** only ever appears under [Tptr] *)
  | Tfnptr
  | Tnull  (** type of the [null] literal, compatible with any pointer *)

type binop =
  | Add | Sub | Mul | Div | Rem
  | Band | Bor | Bxor | Shl | Shr
  | Eq | Ne | Lt | Le | Gt | Ge
  | Land | Lor  (** short-circuit *)

type unop = Neg | Not

type expr = { desc : expr_desc; pos : pos }

and expr_desc =
  | Int of int64
  | Null
  | Var of string
  | Unary of unop * expr
  | Binary of binop * expr * expr
  | Field of expr * string  (** [p->f] *)
  | Index of expr * expr  (** [a[i]] *)
  | Deref of expr  (** [*p] *)
  | Addr_of_func of string  (** [&f] *)
  | Addr_of_global of string  (** [&g]; also how global arrays decay *)
  | Call of string * expr list  (** direct call or intrinsic *)
  | Call_ptr of expr * expr list  (** call through an fnptr expression *)
  | New of string  (** [new S] *)
  | New_array of ty * expr  (** [newarray(T, n)] *)
  | Sizeof of string  (** [sizeof(S)], in bytes *)

type lvalue =
  | Lvar of string
  | Lfield of expr * string
  | Lindex of expr * expr
  | Lderef of expr

type stmt = { sdesc : stmt_desc; spos : pos }

and stmt_desc =
  | Decl of ty * string * expr option
  | Assign of lvalue * expr
  | If of expr * stmt list * stmt list
  | While of expr * stmt list
  | For of stmt option * expr * stmt option * stmt list
  | Return of expr option
  | Break
  | Continue
  | Expr of expr
  | Block of stmt list

type struct_def = { sname : string; fields : (string * ty) list }

type global_def = {
  gname : string;
  gty : ty;
  gsize : int;  (** element count; 1 for scalars, N for [int g[N]] *)
}

type func_def = {
  fname : string;
  params : (string * ty) list;
  ret : ty option;  (** [None] = void *)
  body : stmt list;
  fpos : pos;
}

type program = {
  structs : struct_def list;
  globals : global_def list;
  funcs : func_def list;
}

val pp_ty : Format.formatter -> ty -> unit
