(** Hand-written lexer for mini-C. *)

type token =
  | INT of int64
  | IDENT of string
  | KW of string  (** keywords: int, struct, fnptr, if, else, while, for,
      return, break, continue, new, newarray, null, sizeof *)
  | PUNCT of string  (** operators and delimiters *)
  | EOF

type lexed = { tok : token; pos : Ast.pos }

exception Error of string * Ast.pos

val tokenize : string -> lexed list
(** Raises {!Error} on malformed input (bad characters, unterminated
    comments). Comments are [// ...] and [/* ... */]. *)

val pp_token : Format.formatter -> token -> unit
