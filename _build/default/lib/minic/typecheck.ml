exception Error of string * Ast.pos

let err pos fmt = Format.kasprintf (fun m -> raise (Error (m, pos))) fmt

type env = {
  structs : (string, (string * Ast.ty * int) list) Hashtbl.t;
  globals : (string, Ast.global_def * int) Hashtbl.t;  (* def, byte offset *)
  funcs : (string, Ast.func_def) Hashtbl.t;
  mutable data_bytes : int;
}

let word = 8
let no_pos = { Ast.line = 0; col = 0 }

let build_env (p : Ast.program) =
  let env =
    {
      structs = Hashtbl.create 16;
      globals = Hashtbl.create 16;
      funcs = Hashtbl.create 16;
      data_bytes = 0;
    }
  in
  List.iter
    (fun (s : Ast.struct_def) ->
      if Hashtbl.mem env.structs s.sname then
        err no_pos "duplicate struct %s" s.sname;
      let fields =
        List.mapi (fun i (name, ty) -> (name, ty, i * word)) s.fields
      in
      (* Reject duplicate field names. *)
      List.iteri
        (fun i (n, _, _) ->
          List.iteri
            (fun j (n', _, _) ->
              if i < j && String.equal n n' then
                err no_pos "struct %s: duplicate field %s" s.sname n)
            fields)
        fields;
      Hashtbl.replace env.structs s.sname fields)
    p.structs;
  List.iter
    (fun (g : Ast.global_def) ->
      if Hashtbl.mem env.globals g.gname then
        err no_pos "duplicate global %s" g.gname;
      Hashtbl.replace env.globals g.gname (g, env.data_bytes);
      env.data_bytes <- env.data_bytes + (word * max 1 g.gsize))
    p.globals;
  List.iter
    (fun (f : Ast.func_def) ->
      if Hashtbl.mem env.funcs f.fname then
        err f.fpos "duplicate function %s" f.fname;
      if List.length f.params > Ssp_isa.Reg.max_args then
        err f.fpos "function %s: more than %d parameters" f.fname
          Ssp_isa.Reg.max_args;
      Hashtbl.replace env.funcs f.fname f)
    p.funcs;
  env

let sizeof_struct env s =
  match Hashtbl.find_opt env.structs s with
  | Some fields -> word * List.length fields
  | None -> invalid_arg (Printf.sprintf "sizeof_struct: unknown struct %s" s)

let field_offset env s f =
  match Hashtbl.find_opt env.structs s with
  | None -> raise Not_found
  | Some fields ->
    let rec go = function
      | [] -> raise Not_found
      | (name, ty, off) :: rest ->
        if String.equal name f then (off, ty) else go rest
    in
    go fields

let elem_size env = function
  | Ast.Tptr (Ast.Tstruct s) -> sizeof_struct env s
  | Ast.Tptr _ -> word
  | t ->
    invalid_arg
      (Format.asprintf "elem_size: not a pointer type (%a)" Ast.pp_ty t)

let find_func env name = Hashtbl.find_opt env.funcs name
let find_global env name = Option.map fst (Hashtbl.find_opt env.globals name)

let global_offset env name =
  match Hashtbl.find_opt env.globals name with
  | Some (_, off) -> off
  | None -> invalid_arg (Printf.sprintf "global_offset: unknown global %s" name)

let data_segment_bytes env = env.data_bytes

let rec compatible a b =
  match (a, b) with
  | Ast.Tint, Ast.Tint -> true
  | Ast.Tfnptr, Ast.Tfnptr -> true
  | Ast.Tnull, (Ast.Tptr _ | Ast.Tnull | Ast.Tfnptr) -> true
  | (Ast.Tptr _ | Ast.Tfnptr), Ast.Tnull -> true
  | Ast.Tptr x, Ast.Tptr y -> compatible_pointee x y
  | _ -> false

and compatible_pointee x y =
  match (x, y) with
  | Ast.Tstruct a, Ast.Tstruct b -> String.equal a b
  | _ -> compatible x y

let is_intrinsic = function "print_int" | "rand" -> true | _ -> false

let rec type_of_expr env ~vars (e : Ast.expr) =
  let pos = e.pos in
  match e.desc with
  | Ast.Int _ -> Ast.Tint
  | Ast.Null -> Ast.Tnull
  | Ast.Var name -> (
    match vars name with
    | Some t -> t
    | None -> (
      match find_global env name with
      | Some g ->
        if g.Ast.gsize > 1 then Ast.Tptr g.Ast.gty (* arrays decay *)
        else g.Ast.gty
      | None -> err pos "unbound variable %s" name))
  | Ast.Unary (Ast.Neg, a) | Ast.Unary (Ast.Not, a) ->
    let t = type_of_expr env ~vars a in
    if t <> Ast.Tint then err pos "unary operator expects int, got %a" Ast.pp_ty t;
    Ast.Tint
  | Ast.Binary (op, a, b) -> (
    let ta = type_of_expr env ~vars a in
    let tb = type_of_expr env ~vars b in
    match op with
    | Ast.Add | Ast.Sub -> (
      match (ta, tb) with
      | Ast.Tint, Ast.Tint -> Ast.Tint
      | Ast.Tptr _, Ast.Tint -> ta
      | Ast.Tint, Ast.Tptr _ when op = Ast.Add -> tb
      | _ ->
        err pos "cannot apply %s to %a and %a"
          (if op = Ast.Add then "+" else "-")
          Ast.pp_ty ta Ast.pp_ty tb)
    | Ast.Mul | Ast.Div | Ast.Rem | Ast.Band | Ast.Bor | Ast.Bxor | Ast.Shl
    | Ast.Shr ->
      if ta <> Ast.Tint || tb <> Ast.Tint then
        err pos "arithmetic expects int operands";
      Ast.Tint
    | Ast.Eq | Ast.Ne | Ast.Lt | Ast.Le | Ast.Gt | Ast.Ge ->
      if not (compatible ta tb) then
        err pos "cannot compare %a with %a" Ast.pp_ty ta Ast.pp_ty tb;
      Ast.Tint
    | Ast.Land | Ast.Lor ->
      if ta <> Ast.Tint || tb <> Ast.Tint then
        err pos "logical operators expect int";
      Ast.Tint)
  | Ast.Field (b, f) -> (
    match type_of_expr env ~vars b with
    | Ast.Tptr (Ast.Tstruct s) -> (
      match field_offset env s f with
      | _, ty -> ty
      | exception Not_found -> err pos "struct %s has no field %s" s f)
    | t -> err pos "-> applied to non-struct-pointer %a" Ast.pp_ty t)
  | Ast.Index (b, i) -> (
    let ti = type_of_expr env ~vars i in
    if ti <> Ast.Tint then err pos "array index must be int";
    match type_of_expr env ~vars b with
    | Ast.Tptr (Ast.Tstruct s) ->
      err pos
        "indexing an array of struct %s yields a struct value; use pointer \
         arithmetic and -> instead"
        s
    | Ast.Tptr t -> t
    | t -> err pos "indexing a non-pointer %a" Ast.pp_ty t)
  | Ast.Deref b -> (
    match type_of_expr env ~vars b with
    | Ast.Tptr (Ast.Tstruct s) -> err pos "cannot load struct %s by value" s
    | Ast.Tptr t -> t
    | t -> err pos "dereferencing a non-pointer %a" Ast.pp_ty t)
  | Ast.Addr_of_func name | Ast.Addr_of_global name -> (
    match find_func env name with
    | Some _ -> Ast.Tfnptr
    | None -> (
      match find_global env name with
      | Some g -> Ast.Tptr g.Ast.gty
      | None -> err pos "&%s: no such function or global" name))
  | Ast.Call ("print_int", args) -> (
    match args with
    | [ a ] ->
      let t = type_of_expr env ~vars a in
      if not (compatible t Ast.Tint) then err pos "print_int expects an int";
      err pos "print_int has no value; use it as a statement"
    | _ -> err pos "print_int expects one argument")
  | Ast.Call ("rand", args) ->
    if args <> [] then err pos "rand expects no arguments";
    Ast.Tint
  | Ast.Call (name, args) -> (
    (* A variable of type fnptr shadows a function of the same name. *)
    match vars name with
    | Some Ast.Tfnptr ->
      type_of_expr env ~vars
        { e with desc = Ast.Call_ptr ({ e with desc = Ast.Var name }, args) }
    | Some t -> err pos "calling %s of non-function type %a" name Ast.pp_ty t
    | None -> (
      match find_func env name with
      | None -> err pos "call to undefined function %s" name
      | Some f ->
        if List.length args <> List.length f.Ast.params then
          err pos "%s expects %d arguments, got %d" name
            (List.length f.Ast.params) (List.length args);
        List.iter2
          (fun arg (pname, pty) ->
            let t = type_of_expr env ~vars arg in
            if not (compatible t pty) then
              err pos "argument %s of %s: expected %a, got %a" pname name
                Ast.pp_ty pty Ast.pp_ty t)
          args f.Ast.params;
        (match f.Ast.ret with
        | Some t -> t
        | None -> err pos "void call %s used as a value" name)))
  | Ast.Call_ptr (fe, args) ->
    let tf = type_of_expr env ~vars fe in
    if tf <> Ast.Tfnptr then err pos "indirect call through non-fnptr";
    List.iter (fun a -> ignore (type_of_expr env ~vars a)) args;
    (* Indirect calls are unchecked beyond arity bounds; they return int. *)
    if List.length args > Ssp_isa.Reg.max_args then
      err pos "too many arguments in indirect call";
    Ast.Tint
  | Ast.New s ->
    if not (Hashtbl.mem env.structs s) then err pos "new of unknown struct %s" s;
    Ast.Tptr (Ast.Tstruct s)
  | Ast.New_array (t, n) ->
    let tn = type_of_expr env ~vars n in
    if tn <> Ast.Tint then err pos "newarray length must be int";
    Ast.Tptr t
  | Ast.Sizeof s ->
    if not (Hashtbl.mem env.structs s) then err pos "sizeof unknown struct %s" s;
    Ast.Tint

type scope = { mutable vars : (string * Ast.ty) list }

let rec check_stmt env fdef scope ~in_loop (s : Ast.stmt) =
  let pos = s.spos in
  let vars name = List.assoc_opt name scope.vars in
  match s.sdesc with
  | Ast.Decl (t, name, init) ->
    if List.mem_assoc name scope.vars then
      err pos "redeclaration of %s (shadowing is not supported)" name;
    (match init with
    | None -> ()
    | Some e ->
      let te = type_of_expr env ~vars e in
      if not (compatible t te) then
        err pos "initializing %s : %a with %a" name Ast.pp_ty t Ast.pp_ty te);
    scope.vars <- (name, t) :: scope.vars
  | Ast.Assign (lv, e) ->
    let tl =
      match lv with
      | Ast.Lvar name -> (
        match vars name with
        | Some t -> t
        | None -> (
          match find_global env name with
          | Some g when g.Ast.gsize = 1 -> g.Ast.gty
          | Some _ -> err pos "cannot assign to array %s" name
          | None -> err pos "unbound variable %s" name))
      | Ast.Lfield (b, f) ->
        type_of_expr env ~vars { Ast.desc = Ast.Field (b, f); pos }
      | Ast.Lindex (b, i) ->
        type_of_expr env ~vars { Ast.desc = Ast.Index (b, i); pos }
      | Ast.Lderef b -> type_of_expr env ~vars { Ast.desc = Ast.Deref b; pos }
    in
    let te = type_of_expr env ~vars e in
    if not (compatible tl te) then
      err pos "assigning %a into %a" Ast.pp_ty te Ast.pp_ty tl
  | Ast.If (c, a, b) ->
    let tc = type_of_expr env ~vars c in
    if tc <> Ast.Tint then err pos "if condition must be int";
    check_block env fdef scope ~in_loop a;
    check_block env fdef scope ~in_loop b
  | Ast.While (c, body) ->
    let tc = type_of_expr env ~vars c in
    if tc <> Ast.Tint then err pos "while condition must be int";
    check_block env fdef scope ~in_loop:true body
  | Ast.For (init, c, step, body) ->
    let saved = scope.vars in
    Option.iter (check_stmt env fdef scope ~in_loop) init;
    let vars name = List.assoc_opt name scope.vars in
    let tc = type_of_expr env ~vars c in
    if tc <> Ast.Tint then err pos "for condition must be int";
    check_block env fdef scope ~in_loop:true body;
    Option.iter (check_stmt env fdef scope ~in_loop:true) step;
    scope.vars <- saved
  | Ast.Return None ->
    if fdef.Ast.ret <> None then err pos "missing return value"
  | Ast.Return (Some e) -> (
    let te = type_of_expr env ~vars e in
    match fdef.Ast.ret with
    | None -> err pos "returning a value from void function"
    | Some t ->
      if not (compatible t te) then
        err pos "return type mismatch: expected %a, got %a" Ast.pp_ty t
          Ast.pp_ty te)
  | Ast.Break | Ast.Continue ->
    if not in_loop then err pos "break/continue outside a loop"
  | Ast.Expr e -> (
    (* Statement position permits void calls and discards values. *)
    match e.Ast.desc with
    | Ast.Call ("print_int", [ a ]) ->
      let t = type_of_expr env ~vars a in
      if not (compatible t Ast.Tint) then err pos "print_int expects an int"
    | Ast.Call (name, args) when not (is_intrinsic name) -> (
      match (vars name, find_func env name) with
      | Some Ast.Tfnptr, _ -> ignore (type_of_expr env ~vars e)
      | _, Some f when f.Ast.ret = None ->
        if List.length args <> List.length f.Ast.params then
          err pos "%s expects %d arguments" name (List.length f.Ast.params);
        List.iter2
          (fun arg (_, pty) ->
            let t = type_of_expr env ~vars arg in
            if not (compatible t pty) then err pos "argument type mismatch")
          args f.Ast.params
      | _ -> ignore (type_of_expr env ~vars e))
    | _ -> ignore (type_of_expr env ~vars e))
  | Ast.Block body -> check_block env fdef scope ~in_loop body

and check_block env fdef scope ~in_loop body =
  let saved = scope.vars in
  List.iter (check_stmt env fdef scope ~in_loop) body;
  scope.vars <- saved

let check_program p =
  let env = build_env p in
  List.iter
    (fun (f : Ast.func_def) ->
      let scope = { vars = List.map (fun (n, t) -> (n, t)) f.params } in
      check_block env f scope ~in_loop:false f.body)
    p.Ast.funcs;
  (match Hashtbl.find_opt env.funcs "main" with
  | Some _ -> ()
  | None -> err no_pos "no main function");
  env
