type pos = { line : int; col : int }

type ty = Tint | Tptr of ty | Tstruct of string | Tfnptr | Tnull

type binop =
  | Add | Sub | Mul | Div | Rem
  | Band | Bor | Bxor | Shl | Shr
  | Eq | Ne | Lt | Le | Gt | Ge
  | Land | Lor

type unop = Neg | Not

type expr = { desc : expr_desc; pos : pos }

and expr_desc =
  | Int of int64
  | Null
  | Var of string
  | Unary of unop * expr
  | Binary of binop * expr * expr
  | Field of expr * string
  | Index of expr * expr
  | Deref of expr
  | Addr_of_func of string
  | Addr_of_global of string
  | Call of string * expr list
  | Call_ptr of expr * expr list
  | New of string
  | New_array of ty * expr
  | Sizeof of string

type lvalue =
  | Lvar of string
  | Lfield of expr * string
  | Lindex of expr * expr
  | Lderef of expr

type stmt = { sdesc : stmt_desc; spos : pos }

and stmt_desc =
  | Decl of ty * string * expr option
  | Assign of lvalue * expr
  | If of expr * stmt list * stmt list
  | While of expr * stmt list
  | For of stmt option * expr * stmt option * stmt list
  | Return of expr option
  | Break
  | Continue
  | Expr of expr
  | Block of stmt list

type struct_def = { sname : string; fields : (string * ty) list }
type global_def = { gname : string; gty : ty; gsize : int }

type func_def = {
  fname : string;
  params : (string * ty) list;
  ret : ty option;
  body : stmt list;
  fpos : pos;
}

type program = {
  structs : struct_def list;
  globals : global_def list;
  funcs : func_def list;
}

let rec pp_ty ppf = function
  | Tint -> Format.pp_print_string ppf "int"
  | Tptr t -> Format.fprintf ppf "%a*" pp_ty t
  | Tstruct s -> Format.pp_print_string ppf s
  | Tfnptr -> Format.pp_print_string ppf "fnptr"
  | Tnull -> Format.pp_print_string ppf "null"
