open Ssp_isa

exception Error of string * Ast.pos

let err pos fmt = Format.kasprintf (fun m -> raise (Error (m, pos))) fmt
let word = 8

type ctx = {
  env : Typecheck.env;
  b : Ssp_ir.Builder.t;
  mutable vars : (string * (Reg.t * Ast.ty)) list;
  mutable temps : Reg.t list;  (* free pool *)
  mutable loop_stack : (string * string) list;  (* (continue, break) labels *)
  is_main : bool;
  code_ids : (string, int) Hashtbl.t;
}

let alloc_temp c =
  match c.temps with
  | r :: rest ->
    c.temps <- rest;
    r
  | [] -> Ssp_ir.Builder.fresh_reg c.b

let free_temp c r = c.temps <- r :: c.temps
let free_if c (r, owned) = if owned then free_temp c r

let var_types c name =
  match List.assoc_opt name c.vars with Some (_, t) -> Some t | None -> None

let type_of c e = Typecheck.type_of_expr c.env ~vars:(var_types c) e

(* Compile [e] into a register. The boolean says whether the caller owns the
   register (a temp to free) or not (a variable's home register). *)
let rec compile_expr c (e : Ast.expr) : Reg.t * bool =
  let pos = e.Ast.pos in
  let emit = Ssp_ir.Builder.emit c.b in
  match e.Ast.desc with
  | Ast.Int i ->
    let t = alloc_temp c in
    emit (Op.Movi (t, i));
    (t, true)
  | Ast.Null ->
    let t = alloc_temp c in
    emit (Op.Movi (t, 0L));
    (t, true)
  | Ast.Var name -> (
    match List.assoc_opt name c.vars with
    | Some (r, _) -> (r, false)
    | None -> (
      match Typecheck.find_global c.env name with
      | Some g ->
        let addr =
          Int64.add Ssp_ir.Prog.data_base
            (Int64.of_int (Typecheck.global_offset c.env name))
        in
        let t = alloc_temp c in
        if g.Ast.gsize > 1 then emit (Op.Movi (t, addr)) (* array decays *)
        else begin
          let a = alloc_temp c in
          emit (Op.Movi (a, addr));
          emit (Op.Load (Op.W8, t, a, 0));
          free_temp c a
        end;
        (t, true)
      | None -> err pos "unbound variable %s" name))
  | Ast.Unary (Ast.Neg, a) ->
    let ra, oa = compile_expr c a in
    let t = alloc_temp c in
    emit (Op.Alu (Op.Sub, t, Reg.zero, ra));
    free_if c (ra, oa);
    (t, true)
  | Ast.Unary (Ast.Not, a) ->
    let ra, oa = compile_expr c a in
    let t = alloc_temp c in
    emit (Op.Cmpi (Op.Eq, t, ra, 0L));
    free_if c (ra, oa);
    (t, true)
  | Ast.Binary ((Ast.Land | Ast.Lor) as op, a, b) ->
    (* Short circuit: t = a; if (t decides) skip b. *)
    let t = alloc_temp c in
    let skip = Ssp_ir.Builder.fresh_label c.b "sc" in
    let ra, oa = compile_expr c a in
    emit (Op.Cmpi (Op.Ne, t, ra, 0L));
    free_if c (ra, oa);
    (match op with
    | Ast.Land -> emit (Op.Brz (t, skip))
    | Ast.Lor -> emit (Op.Brnz (t, skip))
    | _ -> assert false);
    let rb, ob = compile_expr c b in
    emit (Op.Cmpi (Op.Ne, t, rb, 0L));
    free_if c (rb, ob);
    Ssp_ir.Builder.start_block c.b skip;
    (t, true)
  | Ast.Binary (op, a, b) -> (
    let ta = type_of c a and tb = type_of c b in
    let scaled_int ptr_ty (r, owned) =
      (* Scale an integer operand of pointer arithmetic by element size. *)
      let s = Typecheck.elem_size c.env ptr_ty in
      let t = alloc_temp c in
      if s = word then emit (Op.Alui (Op.Shl, t, r, 3L))
      else begin
        emit (Op.Alui (Op.Mul, t, r, Int64.of_int s))
      end;
      free_if c (r, owned);
      (t, true)
    in
    let alu kind =
      let (ra, oa), (rb, ob) =
        match (op, ta, tb) with
        | (Ast.Add | Ast.Sub), Ast.Tptr _, Ast.Tint ->
          let a' = compile_expr c a in
          let b' = scaled_int ta (compile_expr c b) in
          (a', b')
        | Ast.Add, Ast.Tint, Ast.Tptr _ ->
          let a' = scaled_int tb (compile_expr c a) in
          let b' = compile_expr c b in
          (a', b')
        | _ -> (compile_expr c a, compile_expr c b)
      in
      let t = alloc_temp c in
      emit (Op.Alu (kind, t, ra, rb));
      free_if c (ra, oa);
      free_if c (rb, ob);
      (t, true)
    in
    let cmp kind =
      let ra, oa = compile_expr c a in
      let rb, ob = compile_expr c b in
      let t = alloc_temp c in
      emit (Op.Cmp (kind, t, ra, rb));
      free_if c (ra, oa);
      free_if c (rb, ob);
      (t, true)
    in
    match op with
    | Ast.Add -> alu Op.Add
    | Ast.Sub -> alu Op.Sub
    | Ast.Mul -> alu Op.Mul
    | Ast.Div -> alu Op.Div
    | Ast.Rem -> alu Op.Rem
    | Ast.Band -> alu Op.And
    | Ast.Bor -> alu Op.Or
    | Ast.Bxor -> alu Op.Xor
    | Ast.Shl -> alu Op.Shl
    | Ast.Shr -> alu Op.Shr
    | Ast.Eq -> cmp Op.Eq
    | Ast.Ne -> cmp Op.Ne
    | Ast.Lt -> cmp Op.Lt
    | Ast.Le -> cmp Op.Le
    | Ast.Gt -> cmp Op.Gt
    | Ast.Ge -> cmp Op.Ge
    | Ast.Land | Ast.Lor -> assert false)
  | Ast.Field (b, f) -> (
    match type_of c b with
    | Ast.Tptr (Ast.Tstruct s) ->
      let off, _ = Typecheck.field_offset c.env s f in
      let rb, ob = compile_expr c b in
      let t = alloc_temp c in
      emit (Op.Load (Op.W8, t, rb, off));
      free_if c (rb, ob);
      (t, true)
    | t -> err pos "-> on %a" Ast.pp_ty t)
  | Ast.Index (b, i) ->
    let addr, owned = compile_addr_index c b i in
    let t = alloc_temp c in
    emit (Op.Load (Op.W8, t, addr, 0));
    free_if c (addr, owned);
    (t, true)
  | Ast.Deref b ->
    let rb, ob = compile_expr c b in
    let t = alloc_temp c in
    emit (Op.Load (Op.W8, t, rb, 0));
    free_if c (rb, ob);
    (t, true)
  | Ast.Addr_of_func name | Ast.Addr_of_global name -> (
    match Hashtbl.find_opt c.code_ids name with
    | Some id ->
      let t = alloc_temp c in
      emit (Op.Movi (t, Int64.of_int id));
      (t, true)
    | None -> (
      match Typecheck.find_global c.env name with
      | Some _ ->
        let addr =
          Int64.add Ssp_ir.Prog.data_base
            (Int64.of_int (Typecheck.global_offset c.env name))
        in
        let t = alloc_temp c in
        emit (Op.Movi (t, addr));
        (t, true)
      | None -> err pos "&%s unresolved" name))
  | Ast.Call ("rand", []) ->
    let t = alloc_temp c in
    emit (Op.Rand t);
    (t, true)
  | Ast.Call (name, args) -> (
    match var_types c name with
    | Some Ast.Tfnptr ->
      compile_expr c
        { e with Ast.desc = Ast.Call_ptr ({ e with Ast.desc = Ast.Var name }, args) }
    | _ ->
      compile_call c ~callee:(`Direct name) args)
  | Ast.Call_ptr (fe, args) ->
    let rf, of_ = compile_expr c fe in
    let res = compile_call c ~callee:(`Indirect rf) args in
    free_if c (rf, of_);
    res
  | Ast.New s ->
    let size = Typecheck.sizeof_struct c.env s in
    let sz = alloc_temp c in
    emit (Op.Movi (sz, Int64.of_int size));
    let t = alloc_temp c in
    emit (Op.Alloc (t, sz));
    free_temp c sz;
    (t, true)
  | Ast.New_array (ty, n) ->
    let es =
      match ty with
      | Ast.Tstruct s -> Typecheck.sizeof_struct c.env s
      | _ -> word
    in
    let rn, on = compile_expr c n in
    let sz = alloc_temp c in
    emit (Op.Alui (Op.Mul, sz, rn, Int64.of_int es));
    free_if c (rn, on);
    let t = alloc_temp c in
    emit (Op.Alloc (t, sz));
    free_temp c sz;
    (t, true)
  | Ast.Sizeof s ->
    let t = alloc_temp c in
    emit (Op.Movi (t, Int64.of_int (Typecheck.sizeof_struct c.env s)));
    (t, true)

and compile_addr_index c b i =
  (* Address of b[i] where elements are scalars (8 bytes). *)
  let emit = Ssp_ir.Builder.emit c.b in
  let rb, ob = compile_expr c b in
  match i.Ast.desc with
  | Ast.Int k ->
    (* Constant index folds into the load/store offset... but offsets are
       ints in instructions; compute an addressed temp anyway for uniform
       handling, folding the scaling. *)
    let t = alloc_temp c in
    emit (Op.Alui (Op.Add, t, rb, Int64.mul k 8L));
    free_if c (rb, ob);
    (t, true)
  | _ ->
    let ri, oi = compile_expr c i in
    let off = alloc_temp c in
    emit (Op.Alui (Op.Shl, off, ri, 3L));
    free_if c (ri, oi);
    let t = alloc_temp c in
    emit (Op.Alu (Op.Add, t, rb, off));
    free_temp c off;
    free_if c (rb, ob);
    (t, true)

and compile_call c ~callee args =
  let emit = Ssp_ir.Builder.emit c.b in
  let n = List.length args in
  (* Evaluate all arguments into temporaries first: argument expressions may
     themselves contain calls that clobber r8-r15. *)
  let temps = List.map (fun a -> compile_expr c a) args in
  List.iteri (fun i (r, _) -> emit (Op.Mov (Reg.arg i, r))) temps;
  List.iter (free_if c) temps;
  (match callee with
  | `Direct name -> emit (Op.Call (name, n))
  | `Indirect r -> emit (Op.Icall (r, n)));
  let t = alloc_temp c in
  emit (Op.Mov (t, Reg.ret));
  (t, true)

let compile_cond_branch c e ~if_false =
  let r, o = compile_expr c e in
  Ssp_ir.Builder.emit c.b (Op.Brz (r, if_false));
  free_if c (r, o)

let rec compile_stmt c (s : Ast.stmt) =
  let emit = Ssp_ir.Builder.emit c.b in
  let pos = s.Ast.spos in
  match s.Ast.sdesc with
  | Ast.Decl (t, name, init) ->
    let home = Ssp_ir.Builder.fresh_reg c.b in
    (match init with
    | None -> emit (Op.Movi (home, 0L))
    | Some e ->
      let r, o = compile_expr c e in
      emit (Op.Mov (home, r));
      free_if c (r, o));
    c.vars <- (name, (home, t)) :: c.vars
  | Ast.Assign (lv, e) -> (
    match lv with
    | Ast.Lvar name -> (
      match List.assoc_opt name c.vars with
      | Some (home, _) ->
        let r, o = compile_expr c e in
        emit (Op.Mov (home, r));
        free_if c (r, o)
      | None -> (
        match Typecheck.find_global c.env name with
        | Some _ ->
          let addr =
            Int64.add Ssp_ir.Prog.data_base
              (Int64.of_int (Typecheck.global_offset c.env name))
          in
          let r, o = compile_expr c e in
          let a = alloc_temp c in
          emit (Op.Movi (a, addr));
          emit (Op.Store (Op.W8, r, a, 0));
          free_temp c a;
          free_if c (r, o)
        | None -> err pos "unbound variable %s" name))
    | Ast.Lfield (b, f) -> (
      match type_of c b with
      | Ast.Tptr (Ast.Tstruct sname) ->
        let off, _ = Typecheck.field_offset c.env sname f in
        let r, o = compile_expr c e in
        let rb, ob = compile_expr c b in
        emit (Op.Store (Op.W8, r, rb, off));
        free_if c (rb, ob);
        free_if c (r, o)
      | t -> err pos "-> on %a" Ast.pp_ty t)
    | Ast.Lindex (b, i) ->
      let r, o = compile_expr c e in
      let addr, oa = compile_addr_index c b i in
      emit (Op.Store (Op.W8, r, addr, 0));
      free_if c (addr, oa);
      free_if c (r, o)
    | Ast.Lderef b ->
      let r, o = compile_expr c e in
      let rb, ob = compile_expr c b in
      emit (Op.Store (Op.W8, r, rb, 0));
      free_if c (rb, ob);
      free_if c (r, o))
  | Ast.If (cond, then_, else_) ->
    let lelse = Ssp_ir.Builder.fresh_label c.b "else" in
    let lend = Ssp_ir.Builder.fresh_label c.b "endif" in
    compile_cond_branch c cond ~if_false:lelse;
    compile_block c then_;
    emit (Op.Br lend);
    Ssp_ir.Builder.start_block c.b lelse;
    compile_block c else_;
    Ssp_ir.Builder.start_block c.b lend
  | Ast.While (cond, body) ->
    let lhead = Ssp_ir.Builder.fresh_label c.b "while" in
    let lend = Ssp_ir.Builder.fresh_label c.b "wend" in
    emit (Op.Br lhead);
    Ssp_ir.Builder.start_block c.b lhead;
    compile_cond_branch c cond ~if_false:lend;
    c.loop_stack <- (lhead, lend) :: c.loop_stack;
    compile_block c body;
    c.loop_stack <- List.tl c.loop_stack;
    emit (Op.Br lhead);
    Ssp_ir.Builder.start_block c.b lend
  | Ast.For (init, cond, step, body) ->
    let saved_vars = c.vars in
    Option.iter (compile_stmt c) init;
    let lhead = Ssp_ir.Builder.fresh_label c.b "for" in
    let lstep = Ssp_ir.Builder.fresh_label c.b "fstep" in
    let lend = Ssp_ir.Builder.fresh_label c.b "fend" in
    emit (Op.Br lhead);
    Ssp_ir.Builder.start_block c.b lhead;
    compile_cond_branch c cond ~if_false:lend;
    c.loop_stack <- (lstep, lend) :: c.loop_stack;
    compile_block c body;
    c.loop_stack <- List.tl c.loop_stack;
    emit (Op.Br lstep);
    Ssp_ir.Builder.start_block c.b lstep;
    Option.iter (compile_stmt c) step;
    emit (Op.Br lhead);
    Ssp_ir.Builder.start_block c.b lend;
    c.vars <- saved_vars
  | Ast.Return None ->
    if c.is_main then emit Op.Halt else emit Op.Ret;
    let dead = Ssp_ir.Builder.fresh_label c.b "dead" in
    Ssp_ir.Builder.start_block c.b dead
  | Ast.Return (Some e) ->
    let r, o = compile_expr c e in
    emit (Op.Mov (Reg.ret, r));
    free_if c (r, o);
    if c.is_main then emit Op.Halt else emit Op.Ret;
    let dead = Ssp_ir.Builder.fresh_label c.b "dead" in
    Ssp_ir.Builder.start_block c.b dead
  | Ast.Break -> (
    match c.loop_stack with
    | (_, brk) :: _ ->
      emit (Op.Br brk);
      Ssp_ir.Builder.start_block c.b (Ssp_ir.Builder.fresh_label c.b "dead")
    | [] -> err pos "break outside loop")
  | Ast.Continue -> (
    match c.loop_stack with
    | (cont, _) :: _ ->
      emit (Op.Br cont);
      Ssp_ir.Builder.start_block c.b (Ssp_ir.Builder.fresh_label c.b "dead")
    | [] -> err pos "continue outside loop")
  | Ast.Expr e -> (
    match e.Ast.desc with
    | Ast.Call ("print_int", [ a ]) ->
      let r, o = compile_expr c a in
      emit (Op.Print r);
      free_if c (r, o)
    | Ast.Call (name, args) when var_types c name = None
                                 && Typecheck.find_func c.env name <> None
                                 && (Typecheck.find_func c.env name
                                     |> Option.get)
                                      .Ast.ret
                                    = None ->
      (* Void call: no result temp. *)
      let temps = List.map (fun a -> compile_expr c a) args in
      List.iteri (fun i (r, _) -> emit (Op.Mov (Reg.arg i, r))) temps;
      List.iter (free_if c) temps;
      emit (Op.Call (name, List.length args))
    | _ ->
      let r, o = compile_expr c e in
      free_if c (r, o))
  | Ast.Block body -> compile_block c body

and compile_block c body =
  let saved = c.vars in
  List.iter (compile_stmt c) body;
  c.vars <- saved

let lower_func env code_ids (f : Ast.func_def) =
  let is_main = String.equal f.Ast.fname "main" in
  let b =
    Ssp_ir.Builder.create
      ~code_id:(Hashtbl.find code_ids f.Ast.fname)
      ~name:f.Ast.fname
      ~nparams:(List.length f.Ast.params)
      ()
  in
  let c =
    { env; b; vars = []; temps = []; loop_stack = []; is_main; code_ids }
  in
  Ssp_ir.Builder.start_block b "entry";
  (* Copy parameters out of the argument registers into stacked homes. *)
  List.iteri
    (fun i (name, ty) ->
      let home = Ssp_ir.Builder.fresh_reg b in
      Ssp_ir.Builder.emit b (Op.Mov (home, Reg.arg i));
      c.vars <- (name, (home, ty)) :: c.vars)
    f.Ast.params;
  compile_block c f.Ast.body;
  (* Seal the function: falling off the end returns/halts. *)
  (if is_main then Ssp_ir.Builder.emit b Op.Halt
   else begin
     Ssp_ir.Builder.emit b (Op.Movi (Reg.ret, 0L));
     Ssp_ir.Builder.emit b Op.Ret
   end);
  Ssp_ir.Builder.finish b

let program env (p : Ast.program) =
  let prog = Ssp_ir.Prog.create ~entry:"main" in
  let code_ids = Hashtbl.create 16 in
  List.iteri
    (fun i (f : Ast.func_def) -> Hashtbl.replace code_ids f.Ast.fname (i + 1))
    p.Ast.funcs;
  List.iter
    (fun f -> Ssp_ir.Prog.add_func prog (lower_func env code_ids f))
    p.Ast.funcs;
  prog.Ssp_ir.Prog.data_bytes <- Typecheck.data_segment_bytes env;
  prog
