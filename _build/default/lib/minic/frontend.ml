exception Error of string

let render msg (pos : Ast.pos) =
  Printf.sprintf "%d:%d: %s" pos.Ast.line pos.Ast.col msg

let compile_checked src =
  try
    let ast = Parser.parse src in
    let env = Typecheck.check_program ast in
    let prog = Lower.program env ast in
    (match Ssp_ir.Validate.check prog with
    | Ok () -> ()
    | Error es ->
      let msg =
        String.concat "; "
          (List.map (fun e -> Format.asprintf "%a" Ssp_ir.Validate.pp_error e) es)
      in
      raise (Error ("lowered program invalid: " ^ msg)));
    (env, prog)
  with
  | Lexer.Error (m, p) -> raise (Error (render ("lexical error: " ^ m) p))
  | Parser.Error (m, p) -> raise (Error (render ("syntax error: " ^ m) p))
  | Typecheck.Error (m, p) -> raise (Error (render ("type error: " ^ m) p))
  | Lower.Error (m, p) -> raise (Error (render ("lowering error: " ^ m) p))

let compile src = snd (compile_checked src)
