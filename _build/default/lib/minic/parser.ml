exception Error of string * Ast.pos

type state = { mutable toks : Lexer.lexed list }

let peek st =
  match st.toks with
  | [] -> { Lexer.tok = Lexer.EOF; pos = { Ast.line = 0; col = 0 } }
  | t :: _ -> t

let advance st = match st.toks with [] -> () | _ :: tl -> st.toks <- tl

let next st =
  let t = peek st in
  advance st;
  t

let fail st fmt =
  let p = (peek st).Lexer.pos in
  Format.kasprintf (fun m -> raise (Error (m, p))) fmt

let expect_punct st s =
  match (peek st).Lexer.tok with
  | Lexer.PUNCT p when String.equal p s -> advance st
  | t -> fail st "expected '%s', found %a" s Lexer.pp_token t

let expect_kw st s =
  match (peek st).Lexer.tok with
  | Lexer.KW k when String.equal k s -> advance st
  | t -> fail st "expected keyword %s, found %a" s Lexer.pp_token t

let expect_ident st =
  match (peek st).Lexer.tok with
  | Lexer.IDENT s ->
    advance st;
    s
  | t -> fail st "expected identifier, found %a" Lexer.pp_token t

let is_punct st s =
  match (peek st).Lexer.tok with
  | Lexer.PUNCT p -> String.equal p s
  | _ -> false

let is_kw st s =
  match (peek st).Lexer.tok with
  | Lexer.KW k -> String.equal k s
  | _ -> false

(* A type starts with "int", "fnptr" or a struct name followed by '*'.
   Whether an IDENT starts a type needs the struct environment; the parser
   collects struct names as it sees their definitions. *)
let parse_base_ty st structs =
  match (peek st).Lexer.tok with
  | Lexer.KW "int" ->
    advance st;
    Ast.Tint
  | Lexer.KW "fnptr" ->
    advance st;
    Ast.Tfnptr
  | Lexer.IDENT s when Hashtbl.mem structs s ->
    advance st;
    Ast.Tstruct s
  | t -> fail st "expected a type, found %a" Lexer.pp_token t

(* [newarray(pair, n)] names a bare struct as element type; everywhere else
   a struct is only legal under at least one [*]. *)
let parse_ty_allow_struct st structs =
  let base = parse_base_ty st structs in
  let rec stars t =
    if is_punct st "*" then begin
      advance st;
      stars (Ast.Tptr t)
    end
    else t
  in
  stars base

let parse_ty st structs =
  let t = parse_ty_allow_struct st structs in
  (match t with
  | Ast.Tstruct s ->
    fail st "struct %s can only be used through a pointer" s
  | _ -> ());
  t

let starts_type st structs =
  match (peek st).Lexer.tok with
  | Lexer.KW ("int" | "fnptr") -> true
  | Lexer.IDENT s -> (
    (* A struct name starts a type only when followed by '*'. *)
    Hashtbl.mem structs s
    &&
    match st.toks with
    | _ :: { Lexer.tok = Lexer.PUNCT "*"; _ } :: _ -> true
    | _ -> false)
  | _ -> false

let rec parse_expr st structs = parse_lor st structs

and parse_lor st structs =
  let rec go acc =
    if is_punct st "||" then begin
      let p = (peek st).Lexer.pos in
      advance st;
      let rhs = parse_land st structs in
      go { Ast.desc = Ast.Binary (Ast.Lor, acc, rhs); pos = p }
    end
    else acc
  in
  go (parse_land st structs)

and parse_land st structs =
  let rec go acc =
    if is_punct st "&&" then begin
      let p = (peek st).Lexer.pos in
      advance st;
      let rhs = parse_bits st structs in
      go { Ast.desc = Ast.Binary (Ast.Land, acc, rhs); pos = p }
    end
    else acc
  in
  go (parse_bits st structs)

and parse_bits st structs =
  let op_of = function
    | "&" -> Some Ast.Band
    | "|" -> Some Ast.Bor
    | "^" -> Some Ast.Bxor
    | _ -> None
  in
  let rec go acc =
    match (peek st).Lexer.tok with
    | Lexer.PUNCT s -> (
      match op_of s with
      | Some op ->
        let p = (peek st).Lexer.pos in
        advance st;
        let rhs = parse_cmp st structs in
        go { Ast.desc = Ast.Binary (op, acc, rhs); pos = p }
      | None -> acc)
    | _ -> acc
  in
  go (parse_cmp st structs)

and parse_cmp st structs =
  let op_of = function
    | "==" -> Some Ast.Eq
    | "!=" -> Some Ast.Ne
    | "<" -> Some Ast.Lt
    | "<=" -> Some Ast.Le
    | ">" -> Some Ast.Gt
    | ">=" -> Some Ast.Ge
    | _ -> None
  in
  let rec go acc =
    match (peek st).Lexer.tok with
    | Lexer.PUNCT s -> (
      match op_of s with
      | Some op ->
        let p = (peek st).Lexer.pos in
        advance st;
        let rhs = parse_shift st structs in
        go { Ast.desc = Ast.Binary (op, acc, rhs); pos = p }
      | None -> acc)
    | _ -> acc
  in
  go (parse_shift st structs)

and parse_shift st structs =
  let op_of = function
    | "<<" -> Some Ast.Shl
    | ">>" -> Some Ast.Shr
    | _ -> None
  in
  let rec go acc =
    match (peek st).Lexer.tok with
    | Lexer.PUNCT s -> (
      match op_of s with
      | Some op ->
        let p = (peek st).Lexer.pos in
        advance st;
        let rhs = parse_add st structs in
        go { Ast.desc = Ast.Binary (op, acc, rhs); pos = p }
      | None -> acc)
    | _ -> acc
  in
  go (parse_add st structs)

and parse_add st structs =
  let op_of = function
    | "+" -> Some Ast.Add
    | "-" -> Some Ast.Sub
    | _ -> None
  in
  let rec go acc =
    match (peek st).Lexer.tok with
    | Lexer.PUNCT s -> (
      match op_of s with
      | Some op ->
        let p = (peek st).Lexer.pos in
        advance st;
        let rhs = parse_mul st structs in
        go { Ast.desc = Ast.Binary (op, acc, rhs); pos = p }
      | None -> acc)
    | _ -> acc
  in
  go (parse_mul st structs)

and parse_mul st structs =
  let op_of = function
    | "*" -> Some Ast.Mul
    | "/" -> Some Ast.Div
    | "%" -> Some Ast.Rem
    | _ -> None
  in
  let rec go acc =
    match (peek st).Lexer.tok with
    | Lexer.PUNCT s -> (
      match op_of s with
      | Some op ->
        let p = (peek st).Lexer.pos in
        advance st;
        let rhs = parse_unary st structs in
        go { Ast.desc = Ast.Binary (op, acc, rhs); pos = p }
      | None -> acc)
    | _ -> acc
  in
  go (parse_unary st structs)

and parse_unary st structs =
  let p = (peek st).Lexer.pos in
  match (peek st).Lexer.tok with
  | Lexer.PUNCT "-" ->
    advance st;
    { Ast.desc = Ast.Unary (Ast.Neg, parse_unary st structs); pos = p }
  | Lexer.PUNCT "!" ->
    advance st;
    { Ast.desc = Ast.Unary (Ast.Not, parse_unary st structs); pos = p }
  | Lexer.PUNCT "*" ->
    advance st;
    { Ast.desc = Ast.Deref (parse_unary st structs); pos = p }
  | Lexer.PUNCT "&" ->
    advance st;
    let name = expect_ident st in
    (* Resolution between function and global happens in the typechecker;
       syntactically both are [&name]. *)
    { Ast.desc = Ast.Addr_of_func name; pos = p }
  | _ -> parse_postfix st structs

and parse_postfix st structs =
  let e = parse_primary st structs in
  let rec go e =
    let p = (peek st).Lexer.pos in
    if is_punct st "->" then begin
      advance st;
      let f = expect_ident st in
      go { Ast.desc = Ast.Field (e, f); pos = p }
    end
    else if is_punct st "[" then begin
      advance st;
      let idx = parse_expr st structs in
      expect_punct st "]";
      go { Ast.desc = Ast.Index (e, idx); pos = p }
    end
    else e
  in
  go e

and parse_args st structs =
  expect_punct st "(";
  if is_punct st ")" then begin
    advance st;
    []
  end
  else begin
    let rec go acc =
      let e = parse_expr st structs in
      if is_punct st "," then begin
        advance st;
        go (e :: acc)
      end
      else begin
        expect_punct st ")";
        List.rev (e :: acc)
      end
    in
    go []
  end

and parse_primary st structs =
  let { Lexer.tok; pos = p } = peek st in
  match tok with
  | Lexer.INT i ->
    advance st;
    { Ast.desc = Ast.Int i; pos = p }
  | Lexer.KW "null" ->
    advance st;
    { Ast.desc = Ast.Null; pos = p }
  | Lexer.KW "new" ->
    advance st;
    let s = expect_ident st in
    { Ast.desc = Ast.New s; pos = p }
  | Lexer.KW "newarray" ->
    advance st;
    expect_punct st "(";
    let t = parse_ty_allow_struct st structs in
    expect_punct st ",";
    let n = parse_expr st structs in
    expect_punct st ")";
    { Ast.desc = Ast.New_array (t, n); pos = p }
  | Lexer.KW "sizeof" ->
    advance st;
    expect_punct st "(";
    let s = expect_ident st in
    expect_punct st ")";
    { Ast.desc = Ast.Sizeof s; pos = p }
  | Lexer.IDENT name -> (
    advance st;
    if is_punct st "(" then
      let args = parse_args st structs in
      { Ast.desc = Ast.Call (name, args); pos = p }
    else { Ast.desc = Ast.Var name; pos = p })
  | Lexer.PUNCT "(" ->
    advance st;
    let e = parse_expr st structs in
    expect_punct st ")";
    e
  | t -> fail st "expected an expression, found %a" Lexer.pp_token t

let rec parse_stmt st structs =
  let { Lexer.tok; pos = p } = peek st in
  let mk sdesc = { Ast.sdesc; spos = p } in
  match tok with
  | Lexer.PUNCT "{" ->
    advance st;
    let body = parse_stmts st structs in
    expect_punct st "}";
    mk (Ast.Block body)
  | Lexer.KW "if" ->
    advance st;
    expect_punct st "(";
    let c = parse_expr st structs in
    expect_punct st ")";
    let then_ = parse_stmt_block st structs in
    let else_ =
      if is_kw st "else" then begin
        advance st;
        parse_stmt_block st structs
      end
      else []
    in
    mk (Ast.If (c, then_, else_))
  | Lexer.KW "while" ->
    advance st;
    expect_punct st "(";
    let c = parse_expr st structs in
    expect_punct st ")";
    let body = parse_stmt_block st structs in
    mk (Ast.While (c, body))
  | Lexer.KW "for" ->
    advance st;
    expect_punct st "(";
    let init =
      if is_punct st ";" then None else Some (parse_simple_stmt st structs)
    in
    expect_punct st ";";
    let cond = parse_expr st structs in
    expect_punct st ";";
    let step =
      if is_punct st ")" then None else Some (parse_simple_stmt st structs)
    in
    expect_punct st ")";
    let body = parse_stmt_block st structs in
    mk (Ast.For (init, cond, step, body))
  | Lexer.KW "return" ->
    advance st;
    if is_punct st ";" then begin
      advance st;
      mk (Ast.Return None)
    end
    else begin
      let e = parse_expr st structs in
      expect_punct st ";";
      mk (Ast.Return (Some e))
    end
  | Lexer.KW "break" ->
    advance st;
    expect_punct st ";";
    mk Ast.Break
  | Lexer.KW "continue" ->
    advance st;
    expect_punct st ";";
    mk Ast.Continue
  | _ ->
    let s = parse_simple_stmt st structs in
    expect_punct st ";";
    s

(* A declaration, assignment or expression statement — without the trailing
   semicolon (shared with for-headers). *)
and parse_simple_stmt st structs =
  let p = (peek st).Lexer.pos in
  let mk sdesc = { Ast.sdesc; spos = p } in
  if starts_type st structs then begin
    let t = parse_ty st structs in
    let name = expect_ident st in
    if is_punct st "=" then begin
      advance st;
      let e = parse_expr st structs in
      mk (Ast.Decl (t, name, Some e))
    end
    else mk (Ast.Decl (t, name, None))
  end
  else begin
    let e = parse_expr st structs in
    if is_punct st "=" then begin
      advance st;
      let rhs = parse_expr st structs in
      let lv =
        match e.Ast.desc with
        | Ast.Var v -> Ast.Lvar v
        | Ast.Field (b, f) -> Ast.Lfield (b, f)
        | Ast.Index (b, i) -> Ast.Lindex (b, i)
        | Ast.Deref b -> Ast.Lderef b
        | _ -> raise (Error ("invalid assignment target", p))
      in
      mk (Ast.Assign (lv, rhs))
    end
    else mk (Ast.Expr e)
  end

and parse_stmt_block st structs =
  if is_punct st "{" then begin
    advance st;
    let body = parse_stmts st structs in
    expect_punct st "}";
    body
  end
  else [ parse_stmt st structs ]

and parse_stmts st structs =
  let rec go acc =
    if is_punct st "}" then List.rev acc
    else go (parse_stmt st structs :: acc)
  in
  go []

let parse_struct st structs =
  expect_kw st "struct";
  let sname = expect_ident st in
  Hashtbl.replace structs sname ();
  expect_punct st "{";
  let rec fields acc =
    if is_punct st "}" then begin
      advance st;
      List.rev acc
    end
    else begin
      let t = parse_ty st structs in
      let name = expect_ident st in
      expect_punct st ";";
      fields ((name, t) :: acc)
    end
  in
  let fields = fields [] in
  if is_punct st ";" then advance st;
  { Ast.sname; fields }

let parse_program src =
  let st = { toks = Lexer.tokenize src } in
  let structs = Hashtbl.create 16 in
  let sdefs = ref [] and globals = ref [] and funcs = ref [] in
  let rec go () =
    match (peek st).Lexer.tok with
    | Lexer.EOF -> ()
    | Lexer.KW "struct" ->
      sdefs := parse_struct st structs :: !sdefs;
      go ()
    | _ ->
      let p = (peek st).Lexer.pos in
      let ret =
        if is_kw st "void" then begin
          advance st;
          None
        end
        else Some (parse_ty st structs)
      in
      let name = expect_ident st in
      if is_punct st "(" then begin
        (* function *)
        advance st;
        let params =
          if is_punct st ")" then begin
            advance st;
            []
          end
          else begin
            let rec go acc =
              let t = parse_ty st structs in
              let n = expect_ident st in
              if is_punct st "," then begin
                advance st;
                go ((n, t) :: acc)
              end
              else begin
                expect_punct st ")";
                List.rev ((n, t) :: acc)
              end
            in
            go []
          end
        in
        expect_punct st "{";
        let body = parse_stmts st structs in
        expect_punct st "}";
        funcs := { Ast.fname = name; params; ret; body; fpos = p } :: !funcs
      end
      else begin
        (* global *)
        let gty = match ret with Some t -> t | None -> fail st "void global" in
        let gsize =
          if is_punct st "[" then begin
            advance st;
            match (next st).Lexer.tok with
            | Lexer.INT n ->
              expect_punct st "]";
              Int64.to_int n
            | t -> fail st "expected array size, found %a" Lexer.pp_token t
          end
          else 1
        in
        expect_punct st ";";
        globals := { Ast.gname = name; gty; gsize } :: !globals
      end;
      go ()
  in
  go ();
  {
    Ast.structs = List.rev !sdefs;
    globals = List.rev !globals;
    funcs = List.rev !funcs;
  }

let parse = parse_program

let parse_expr_string src =
  let st = { toks = Lexer.tokenize src } in
  parse_expr st (Hashtbl.create 0)
