(** Recursive-descent parser for mini-C.

    Grammar sketch (precedence climbing for expressions, lowest first:
    [||], [&&], bitwise, comparison, shift, additive, multiplicative,
    unary, postfix):

    {v
    program   ::= (struct_def | global | func)*
    struct_def::= "struct" IDENT "{" (type IDENT ";")* "}" [";"]
    global    ::= type IDENT ("[" INT "]")? ";"
    func      ::= (type | "void") IDENT "(" params ")" block
    stmt      ::= decl | assign | if | while | for | return
                | "break" ";" | "continue" ";" | expr ";" | block
    v}

    Types are [int], [fnptr], [IDENT] (a struct name — only usable under
    [*]) followed by any number of [*]. *)

exception Error of string * Ast.pos

val parse : string -> Ast.program
(** Raises {!Error} (or {!Lexer.Error}) on malformed input. *)

val parse_expr_string : string -> Ast.expr
(** Entry point for tests. *)
