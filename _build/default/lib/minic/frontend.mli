(** One-call frontend: source text → validated ISA program. *)

exception Error of string
(** Any frontend failure (lexing, parsing, typing, lowering, validation),
    with a rendered position. *)

val compile : string -> Ssp_ir.Prog.t
(** Parse, typecheck, lower and validate. *)

val compile_checked : string -> Typecheck.env * Ssp_ir.Prog.t
(** Same, also returning the typing environment. *)
