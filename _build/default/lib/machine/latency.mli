(** Execution latencies of non-memory instructions, used both by the cycle
    simulators and by the tool's scheduling heuristics ("the machine model
    provides latency estimates for other instructions", §3.2.1). *)

val of_op : Ssp_isa.Op.t -> int
(** Latency in cycles, excluding memory access time (loads report 0 here;
    their latency is the cache access outcome). *)

val default_load : Config.t -> int
(** Latency assumed for a load with no cache profile information
    (an L1 hit). *)
