open Ssp_isa

let of_op = function
  | Op.Nop | Op.Movi _ | Op.Mov _ | Op.Cmp _ | Op.Cmpi _ -> 1
  | Op.Alu (op, _, _, _) | Op.Alui (op, _, _, _) -> (
    match op with
    | Op.Mul -> 3
    | Op.Div | Op.Rem -> 12
    | Op.Add | Op.Sub | Op.And | Op.Or | Op.Xor | Op.Shl | Op.Shr -> 1)
  | Op.Load _ -> 0 (* determined by the cache access *)
  | Op.Store _ | Op.Lfetch _ -> 1
  | Op.Br _ | Op.Brnz _ | Op.Brz _ -> 1
  | Op.Call _ | Op.Icall _ | Op.Ret -> 2
  | Op.Halt | Op.Kill -> 1
  | Op.Chk_c _ -> 1
  | Op.Spawn _ -> 1 (* plus Config.spawn_latency charged by the machine *)
  | Op.Lib_st _ | Op.Lib_ld _ -> 2
  | Op.Alloc _ -> 2
  | Op.Print _ -> 1
  | Op.Rand _ -> 1

let default_load (c : Config.t) = c.Config.l1.Config.latency
