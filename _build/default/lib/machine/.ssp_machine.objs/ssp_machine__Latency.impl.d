lib/machine/latency.ml: Config Op Ssp_isa
