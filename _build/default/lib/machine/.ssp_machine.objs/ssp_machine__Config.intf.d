lib/machine/config.mli: Format Ssp_ir
