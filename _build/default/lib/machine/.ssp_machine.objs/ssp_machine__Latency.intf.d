lib/machine/latency.mli: Config Ssp_isa
