lib/machine/config.ml: Format Printf Ssp_ir
