type t = int

let zero = 0
let sp = 1
let ret = 8
let max_args = 8

let arg i =
  if i < 0 || i >= max_args then invalid_arg "Reg.arg: index out of range";
  8 + i

let first_stacked = 32
let count = 128
let is_valid r = r >= 0 && r < count
let is_stacked r = r >= first_stacked && r < count
let is_static r = r >= 0 && r < first_stacked
let pp ppf r = Format.fprintf ppf "r%d" r
let to_string r = Printf.sprintf "r%d" r
