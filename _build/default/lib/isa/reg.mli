(** Registers of the virtual research-Itanium ISA.

    The machine has 128 integer registers per thread context, split like
    Itanium into a static and a stacked partition:

    - [r0] always reads as zero and ignores writes;
    - [r1] is the stack pointer by software convention;
    - [r2]–[r15] are static scratch registers; [r8]–[r15] pass procedure
      arguments and [r8] carries the return value (they are clobbered by
      calls);
    - [r32]–[r127] are stacked: each call activates a fresh frame of them,
      restored on return (modeling the Itanium register stack engine). *)

type t = int
(** A register number in [0, 127]. *)

val zero : t
(** [r0], hardwired to zero. *)

val sp : t
(** [r1], the stack pointer. *)

val arg : int -> t
(** [arg i] is the register carrying the [i]-th procedure argument
    (0-based); [arg 0 = r8]. Raises [Invalid_argument] if [i >= 8]. *)

val ret : t
(** [r8], the return-value register. *)

val max_args : int
(** Number of argument registers (8). *)

val first_stacked : t
(** [r32], the first stacked register. *)

val count : int
(** Total number of registers (128). *)

val is_stacked : t -> bool
(** Whether the register belongs to the stacked partition. *)

val is_static : t -> bool
(** Whether the register belongs to the static partition (includes r0, sp). *)

val is_valid : t -> bool
(** Whether the number is within [0, count). *)

val pp : Format.formatter -> t -> unit
(** Prints as [rN]. *)

val to_string : t -> string
