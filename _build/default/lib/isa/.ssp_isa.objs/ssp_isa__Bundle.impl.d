lib/isa/bundle.ml: Array List Op
