lib/isa/bundle.mli: Op
