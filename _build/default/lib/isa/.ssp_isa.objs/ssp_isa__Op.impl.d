lib/isa/op.ml: Format Int64 List Reg
