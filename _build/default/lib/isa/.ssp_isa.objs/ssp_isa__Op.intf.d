lib/isa/op.mli: Format Reg
