type t = { start : int; len : int }

let capacity = 3

let of_block ops =
  let n = Array.length ops in
  let rec go start acc =
    if start >= n then List.rev acc
    else
      let rec extent i =
        if i - start >= capacity || i >= n then i
        else if Op.is_control ops.(i) then i + 1
        else extent (i + 1)
      in
      let stop = extent start in
      go stop ({ start; len = stop - start } :: acc)
  in
  go 0 []

let count_of_block ops = List.length (of_block ops)
