(** Instruction bundles.

    Like Itanium, the fetch and issue units of the modeled machine operate on
    bundles of up to three instructions. Bundle boundaries are purely a
    front-end bandwidth notion here (no template restrictions): the layout
    pass chops each basic block into maximal bundles, ending a bundle early
    at control-transfer instructions. *)

type t = { start : int; len : int }
(** A bundle covering instructions [start .. start+len-1] of its block, with
    [1 <= len <= capacity]. *)

val capacity : int
(** Maximum instructions per bundle (3). *)

val of_block : Op.t array -> t list
(** Chop a block's instruction sequence into bundles. Control instructions
    terminate their bundle. An empty block yields no bundles. *)

val count_of_block : Op.t array -> int
(** [List.length (of_block ops)] without building the list. *)
