open Ssp_isa

exception Error of string * int

let err line fmt = Format.kasprintf (fun m -> raise (Error (m, line))) fmt

(* ---------- printing ---------- *)

let print ppf (p : Prog.t) =
  Format.fprintf ppf "@[<v>; ssp virtual-ISA assembly@,entry %s@,data %d@,@,"
    p.Prog.entry p.Prog.data_bytes;
  List.iter
    (fun (f : Prog.func) ->
      Format.fprintf ppf "func %s/%d @@%d {@," f.Prog.name f.Prog.nparams
        f.Prog.code_id;
      Array.iter
        (fun (b : Prog.block) ->
          Format.fprintf ppf "%s:@," b.Prog.label;
          Array.iter (fun op -> Format.fprintf ppf "  %a@," Op.pp op) b.Prog.ops)
        f.Prog.blocks;
      Format.fprintf ppf "}@,@,")
    (Prog.funcs_in_order p);
  Format.fprintf ppf "@]"

let to_string p = Format.asprintf "%a" print p

(* ---------- parsing ---------- *)

let strip_comment s =
  match String.index_opt s ';' with
  | Some i -> String.sub s 0 i
  | None -> s

let tokens_of s =
  (* split on spaces, commas and brackets, keeping "[reg+off]" forms whole *)
  String.split_on_char ' ' s
  |> List.concat_map (String.split_on_char '\t')
  |> List.map (fun t ->
         String.concat ""
           (String.split_on_char ',' t |> List.filter (fun x -> x <> "")))
  |> List.filter (fun t -> t <> "")

let parse_reg line t =
  let fail () = err line "expected a register, found %S" t in
  if String.length t < 2 || t.[0] <> 'r' then fail ()
  else
    match int_of_string_opt (String.sub t 1 (String.length t - 1)) with
    | Some r when Reg.is_valid r -> r
    | Some _ | None -> fail ()

let parse_imm line t =
  match Int64.of_string_opt t with
  | Some v -> v
  | None -> err line "expected an integer, found %S" t

let parse_slot line t =
  if String.length t >= 2 && t.[0] = '#' then
    match int_of_string_opt (String.sub t 1 (String.length t - 1)) with
    | Some s -> s
    | None -> err line "expected a buffer slot, found %S" t
  else err line "expected a buffer slot, found %S" t

(* "[rN+OFF]" or "[rN-OFF]" *)
let parse_mem line t =
  let n = String.length t in
  if n < 4 || t.[0] <> '[' || t.[n - 1] <> ']' then
    err line "expected a memory operand, found %S" t
  else begin
    let inner = String.sub t 1 (n - 2) in
    let split_at i =
      (String.sub inner 0 i, String.sub inner i (String.length inner - i))
    in
    let rec find i =
      if i >= String.length inner then
        err line "expected base+offset in %S" t
      else if (inner.[i] = '+' || inner.[i] = '-') && i > 0 then split_at i
      else find (i + 1)
    in
    let base_s, off_s = find 0 in
    let base = parse_reg line base_s in
    match int_of_string_opt off_s with
    | Some off -> (base, off)
    | None -> err line "expected an offset, found %S" off_s
  end

(* "name/arity" *)
let parse_callee line t =
  match String.index_opt t '/' with
  | None -> err line "expected callee/arity, found %S" t
  | Some i -> (
    let name = String.sub t 0 i in
    match int_of_string_opt (String.sub t (i + 1) (String.length t - i - 1)) with
    | Some n -> (name, n)
    | None -> err line "expected an arity in %S" t)

(* "fn:label" *)
let parse_spawn_target line t =
  match String.index_opt t ':' with
  | None -> err line "expected fn:label, found %S" t
  | Some i ->
    (String.sub t 0 i, String.sub t (i + 1) (String.length t - i - 1))

let alu_of_name = function
  | "add" -> Some Op.Add
  | "sub" -> Some Op.Sub
  | "mul" -> Some Op.Mul
  | "div" -> Some Op.Div
  | "rem" -> Some Op.Rem
  | "and" -> Some Op.And
  | "or" -> Some Op.Or
  | "xor" -> Some Op.Xor
  | "shl" -> Some Op.Shl
  | "shr" -> Some Op.Shr
  | _ -> None

let cmp_of_name = function
  | "eq" -> Some Op.Eq
  | "ne" -> Some Op.Ne
  | "lt" -> Some Op.Lt
  | "le" -> Some Op.Le
  | "gt" -> Some Op.Gt
  | "ge" -> Some Op.Ge
  | _ -> None

let width_of_suffix line = function
  | "1" -> Op.W1
  | "2" -> Op.W2
  | "4" -> Op.W4
  | "8" -> Op.W8
  | s -> err line "bad access width %S" s

let parse_op_line line toks =
  let reg = parse_reg line and imm = parse_imm line in
  match toks with
  | [ "nop" ] -> Op.Nop
  | [ "movi"; d; i ] -> Op.Movi (reg d, imm i)
  | [ "mov"; d; s ] -> Op.Mov (reg d, reg s)
  | [ "ret" ] -> Op.Ret
  | [ "halt" ] -> Op.Halt
  | [ "kill" ] -> Op.Kill
  | [ "br"; l ] -> Op.Br l
  | [ "brnz"; s; l ] -> Op.Brnz (reg s, l)
  | [ "brz"; s; l ] -> Op.Brz (reg s, l)
  | [ "call"; c ] ->
    let name, n = parse_callee line c in
    Op.Call (name, n)
  | [ "icall"; c ] ->
    let r, n = parse_callee line c in
    Op.Icall (reg r, n)
  | [ "chk.c"; l ] -> Op.Chk_c l
  | [ "spawn"; t ] ->
    let fn, l = parse_spawn_target line t in
    Op.Spawn (fn, l)
  | [ "lib.st"; slot; s ] -> Op.Lib_st (parse_slot line slot, reg s)
  | [ "lib.ld"; d; slot ] -> Op.Lib_ld (reg d, parse_slot line slot)
  | [ "alloc"; d; s ] -> Op.Alloc (reg d, reg s)
  | [ "print"; s ] -> Op.Print (reg s)
  | [ "rand"; d ] -> Op.Rand (reg d)
  | [ "lfetch"; m ] ->
    let b, off = parse_mem line m in
    Op.Lfetch (b, off)
  | [ mnem; a; b ] when String.length mnem = 3 && String.sub mnem 0 2 = "ld" ->
    let w = width_of_suffix line (String.sub mnem 2 1) in
    let base, off = parse_mem line b in
    Op.Load (w, reg a, base, off)
  | [ mnem; a; b ] when String.length mnem = 3 && String.sub mnem 0 2 = "st" ->
    let w = width_of_suffix line (String.sub mnem 2 1) in
    let base, off = parse_mem line a in
    Op.Store (w, reg b, base, off)
  | [ mnem; d; a; b ] when String.length mnem >= 5
                           && String.sub mnem 0 4 = "cmp." -> (
    match cmp_of_name (String.sub mnem 4 (String.length mnem - 4)) with
    | Some c -> Op.Cmp (c, reg d, reg a, reg b)
    | None -> err line "unknown comparison %S" mnem)
  | [ mnem; d; a; b ] when String.length mnem >= 6
                           && String.sub mnem 0 5 = "cmpi." -> (
    match cmp_of_name (String.sub mnem 5 (String.length mnem - 5)) with
    | Some c -> Op.Cmpi (c, reg d, reg a, imm b)
    | None -> err line "unknown comparison %S" mnem)
  | [ mnem; d; a; b ] -> (
    (* alu or alui: "add" vs "addi" *)
    match alu_of_name mnem with
    | Some o -> Op.Alu (o, reg d, reg a, reg b)
    | None ->
      let n = String.length mnem in
      if n >= 2 && mnem.[n - 1] = 'i' then
        match alu_of_name (String.sub mnem 0 (n - 1)) with
        | Some o -> Op.Alui (o, reg d, reg a, imm b)
        | None -> err line "unknown mnemonic %S" mnem
      else err line "unknown mnemonic %S" mnem)
  | mnem :: _ -> err line "cannot parse instruction %S" mnem
  | [] -> err line "empty instruction"

let parse_op s =
  match tokens_of (strip_comment s) with
  | [] -> err 0 "empty instruction"
  | toks -> parse_op_line 0 toks

type pstate = {
  mutable entry : string option;
  mutable data : int;
  mutable funcs : Prog.func list;  (* reversed *)
  (* current function *)
  mutable cur : (string * int * int) option;  (* name, nparams, code_id *)
  mutable blocks : (string * Op.t list) list;  (* reversed, ops reversed *)
}

let parse src =
  let st = { entry = None; data = 0; funcs = []; cur = None; blocks = [] } in
  let finish_func line =
    match st.cur with
    | None -> err line "'}' without an open function"
    | Some (name, nparams, code_id) ->
      let blocks =
        List.rev_map
          (fun (label, ops) ->
            { Prog.label; ops = Array.of_list (List.rev ops) })
          st.blocks
      in
      st.funcs <-
        { Prog.name; nparams; blocks = Array.of_list blocks; code_id }
        :: st.funcs;
      st.cur <- None;
      st.blocks <- []
  in
  let lines = String.split_on_char '\n' src in
  List.iteri
    (fun i raw ->
      let line = i + 1 in
      let s = String.trim (strip_comment raw) in
      if s = "" then ()
      else if st.cur = None then begin
        match tokens_of s with
        | [ "entry"; e ] -> st.entry <- Some e
        | [ "data"; d ] -> (
          match int_of_string_opt d with
          | Some n -> st.data <- n
          | None -> err line "bad data size %S" d)
        | [ "func"; sig_; at; "{" ] -> (
          let name, nparams = parse_callee line sig_ in
          match
            if String.length at > 1 && at.[0] = '@' then
              int_of_string_opt (String.sub at 1 (String.length at - 1))
            else None
          with
          | Some id -> st.cur <- Some (name, nparams, id)
          | None -> err line "expected @code_id, found %S" at)
        | _ -> err line "expected entry/data/func, found %S" s
      end
      else if s = "}" then finish_func line
      else if String.length s > 1 && s.[String.length s - 1] = ':' then
        st.blocks <- (String.sub s 0 (String.length s - 1), []) :: st.blocks
      else begin
        match st.blocks with
        | [] -> err line "instruction before any label"
        | (label, ops) :: rest ->
          let op = parse_op_line line (tokens_of s) in
          st.blocks <- (label, op :: ops) :: rest
      end)
    lines;
  (match st.cur with
  | Some _ -> err (List.length lines) "unterminated function"
  | None -> ());
  let entry =
    match st.entry with
    | Some e -> e
    | None -> err 1 "no entry directive"
  in
  let prog = Prog.create ~entry in
  List.iter (Prog.add_func prog) (List.rev st.funcs);
  prog.Prog.data_bytes <- st.data;
  (match Validate.check prog with
  | Ok () -> ()
  | Error es ->
    let msg =
      String.concat "; "
        (List.map (fun e -> Format.asprintf "%a" Validate.pp_error e) es)
    in
    raise (Error ("invalid program: " ^ msg, 0)));
  prog
