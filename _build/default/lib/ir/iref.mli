(** Stable references to individual instructions.

    An instruction is identified by its position: function name, block index
    in layout order, instruction index within the block. All analyses and the
    post-pass tool key dependence-graph nodes, profile records and slice
    members on these references, so the program must not be restructured
    between analysis and use (the tool only appends blocks and replaces
    single instructions in place, preserving positions — exactly the paper's
    "replace a nop with chk.c and append the slice after the function"). *)

type t = { fn : string; blk : int; ins : int }

val make : string -> int -> int -> t
val compare : t -> t -> int
val equal : t -> t -> bool
val hash : t -> int
val pp : Format.formatter -> t -> unit
val to_string : t -> string

module Set : Set.S with type elt = t
module Map : Map.S with type key = t
module Tbl : Hashtbl.S with type key = t
