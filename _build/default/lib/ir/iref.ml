type t = { fn : string; blk : int; ins : int }

let make fn blk ins = { fn; blk; ins }

let compare a b =
  let c = String.compare a.fn b.fn in
  if c <> 0 then c
  else
    let c = Int.compare a.blk b.blk in
    if c <> 0 then c else Int.compare a.ins b.ins

let equal a b = compare a b = 0
let hash a = Hashtbl.hash (a.fn, a.blk, a.ins)
let pp ppf a = Format.fprintf ppf "%s.%d.%d" a.fn a.blk a.ins
let to_string a = Format.asprintf "%a" pp a

module Ord = struct
  type nonrec t = t

  let compare = compare
end

module Set = Set.Make (Ord)
module Map = Map.Make (Ord)

module Tbl = Hashtbl.Make (struct
  type nonrec t = t

  let equal = equal
  let hash = hash
end)
