(** Program representation: blocks, functions, whole programs.

    This is the "binary" the post-pass tool reads and adapts: functions are
    arrays of basic blocks in layout order; a block falls through to the next
    block in layout unless its last instruction is a terminator. Blocks carry
    mutable instruction arrays so the tool can replace a [Nop] with a
    [Chk_c] in place, and functions carry mutable block arrays so slice and
    stub blocks can be appended after the function body (the Figure 7
    layout), without disturbing existing {!Iref.t} positions. *)

type block = {
  label : Ssp_isa.Op.label;  (** unique within the function *)
  mutable ops : Ssp_isa.Op.t array;
}

type func = {
  name : string;
  nparams : int;  (** arguments, passed in r8.. *)
  mutable blocks : block array;  (** layout order; entry is [blocks.(0)] *)
  code_id : int;  (** small integer "address" for indirect calls *)
}

type t = {
  funcs : (string, func) Hashtbl.t;
  mutable func_order : string list;  (** layout order of functions *)
  entry : string;
  mutable data_bytes : int;
      (** size of the zero-initialized data segment mapped at
          {!data_base} *)
}

val data_base : int64
(** Base address of the data segment (globals). *)

val heap_base : int64
(** Base address of the bump-allocated heap. *)

val stack_base : int64
(** Initial stack pointer (stack grows down). *)

val create : entry:string -> t
val add_func : t -> func -> unit
val find_func : t -> string -> func
val func_by_code_id : t -> int -> func option
val funcs_in_order : t -> func list

val block_index : func -> Ssp_isa.Op.label -> int
(** Index in layout order of the block carrying the label.
    Raises [Not_found]. *)

val instr : t -> Iref.t -> Ssp_isa.Op.t
(** The instruction an {!Iref.t} denotes. *)

val iter_instrs : t -> (Iref.t -> Ssp_isa.Op.t -> unit) -> unit
(** Iterate over every instruction of every function in layout order. *)

val instr_count : t -> int

val addr_of : func -> Iref.t -> int
(** Linearized position of an instruction within its function — the
    "instruction address" used for scheduling tie-breaks. *)

val pp_func : Format.formatter -> func -> unit
val pp : Format.formatter -> t -> unit

val copy : t -> t
(** Deep copy (blocks and instruction arrays are fresh); adaptation
    mutates programs in place, so experiments copy first. *)
