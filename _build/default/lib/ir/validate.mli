(** Structural validation of programs.

    Checks performed:
    - the entry function exists and every [Call]/[Spawn] target resolves;
    - every branch label resolves within its function;
    - block labels are unique within each function;
    - the last block of a function ends with a terminator (no falling off);
    - register numbers are in range;
    - [Chk_c] recovery labels resolve and the referenced stub blocks end in
      a branch back into the function (recovery code must resume);
    - speculative slice regions contain no [Store] (checked separately by
      the tool; here only ISA-level well-formedness is enforced). *)

type error = { where : Iref.t option; message : string }

val pp_error : Format.formatter -> error -> unit

val check : Prog.t -> (unit, error list) result
(** All structural errors found, or [Ok ()]. *)

val check_exn : Prog.t -> unit
(** Raises [Invalid_argument] with a rendered error list. *)
