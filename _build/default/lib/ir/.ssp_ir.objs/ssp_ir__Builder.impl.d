lib/ir/builder.ml: Array Hashtbl List Printf Prog Ssp_isa
