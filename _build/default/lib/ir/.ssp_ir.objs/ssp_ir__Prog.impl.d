lib/ir/prog.ml: Array Format Hashtbl Iref List Printf Ssp_isa String
