lib/ir/validate.ml: Array Format Hashtbl Iref List Op Prog Reg Ssp_isa
