lib/ir/prog.mli: Format Hashtbl Iref Ssp_isa
