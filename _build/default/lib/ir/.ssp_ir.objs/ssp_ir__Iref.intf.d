lib/ir/iref.mli: Format Hashtbl Map Set
