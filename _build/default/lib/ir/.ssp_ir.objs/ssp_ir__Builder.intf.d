lib/ir/builder.mli: Prog Ssp_isa
