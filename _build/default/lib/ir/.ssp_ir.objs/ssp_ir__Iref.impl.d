lib/ir/iref.ml: Format Hashtbl Int Map Set String
