lib/ir/asm.ml: Array Format Int64 List Op Prog Reg Ssp_isa String Validate
