lib/ir/asm.mli: Format Prog Ssp_isa
