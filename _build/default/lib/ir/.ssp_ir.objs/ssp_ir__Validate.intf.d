lib/ir/validate.mli: Format Iref Prog
