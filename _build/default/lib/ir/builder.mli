(** Imperative construction of functions and programs.

    A function builder hands out fresh stacked registers and fresh labels,
    accumulates instructions into the current block, and produces a
    {!Prog.func} on [finish]. Blocks are emitted in creation order, which is
    the layout order of the final function. *)

type t

val create : ?code_id:int -> name:string -> nparams:int -> unit -> t

val fresh_reg : t -> Ssp_isa.Reg.t
(** Next unused stacked register. Raises [Failure] when the stacked
    partition (96 registers) is exhausted. *)

val fresh_label : t -> string -> Ssp_isa.Op.label
(** A label unique within the function, with the given stem. *)

val start_block : t -> Ssp_isa.Op.label -> unit
(** Begin a new block with the given label. The previous block is sealed; if
    its last instruction is not a terminator, control falls through. *)

val emit : t -> Ssp_isa.Op.t -> unit
(** Append an instruction to the current block. *)

val current_label : t -> Ssp_isa.Op.label

val finish : t -> Prog.func
(** Seal and return the function. The entry block is the first one started
    (or ["entry"], created implicitly if [emit] is called first). *)

val func_of_blocks :
  ?code_id:int ->
  name:string ->
  nparams:int ->
  (Ssp_isa.Op.label * Ssp_isa.Op.t list) list ->
  Prog.func
(** Convenience: build a function directly from labeled instruction lists. *)
