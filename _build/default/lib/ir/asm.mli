(** Textual assembly for the virtual ISA.

    [print] renders a whole program in the same mnemonic syntax the
    instruction printer uses; [parse] reads it back. The format round-trips
    ([parse (to_string p)] is structurally identical to [p]), so adapted
    binaries can be saved, inspected, hand-edited and re-run:

    {v
    ; comment
    entry main
    data 40

    func main/0 @1 {
    entry:
      movi r32, 8000
      st8 [r33+0], r32
      call build/0
      chk.c ssp_stub_1
      halt
    }
    v} *)

exception Error of string * int  (** message, 1-based line *)

val print : Format.formatter -> Prog.t -> unit
val to_string : Prog.t -> string

val parse : string -> Prog.t
(** Raises {!Error} on malformed input. The result is validated with
    {!Validate.check}. *)

val parse_op : string -> Ssp_isa.Op.t
(** A single instruction line (for tests and tooling); raises {!Error}. *)
