open Ssp_isa

type error = { where : Iref.t option; message : string }

let pp_error ppf e =
  match e.where with
  | Some r -> Format.fprintf ppf "%a: %s" Iref.pp r e.message
  | None -> Format.fprintf ppf "%s" e.message

let check (p : Prog.t) =
  let errs = ref [] in
  let err ?where fmt =
    Format.kasprintf (fun message -> errs := { where; message } :: !errs) fmt
  in
  (match Hashtbl.find_opt p.funcs p.entry with
  | Some _ -> ()
  | None -> err "entry function %s not defined" p.entry);
  List.iter
    (fun (f : Prog.func) ->
      let labels = Hashtbl.create 16 in
      Array.iter
        (fun (b : Prog.block) ->
          if Hashtbl.mem labels b.label then
            err "function %s: duplicate label %s" f.name b.label
          else Hashtbl.replace labels b.label ())
        f.blocks;
      let resolve where l =
        if not (Hashtbl.mem labels l) then
          err ~where "function %s: unresolved label %s" f.name l
      in
      Array.iteri
        (fun bi (b : Prog.block) ->
          Array.iteri
            (fun ii op ->
              let where = Iref.make f.name bi ii in
              List.iter (resolve where) (Op.branch_targets op);
              (match op with
              | Op.Call (callee, n) ->
                if n > Reg.max_args then
                  err ~where "call arity %d exceeds %d" n Reg.max_args;
                if not (Hashtbl.mem p.funcs callee) then
                  err ~where "call to undefined function %s" callee
              | Op.Icall (_, n) ->
                if n > Reg.max_args then
                  err ~where "call arity %d exceeds %d" n Reg.max_args
              | Op.Spawn (fn, l) -> (
                match Hashtbl.find_opt p.funcs fn with
                | None -> err ~where "spawn of undefined function %s" fn
                | Some tf -> (
                  match Prog.block_index tf l with
                  | _ -> ()
                  | exception Not_found ->
                    err ~where "spawn label %s not in %s" l fn))
              | Op.Chk_c l -> resolve where l
              | _ -> ());
              let check_reg r =
                if not (Reg.is_valid r) then
                  err ~where "register %d out of range" r
              in
              List.iter check_reg (Op.defs op);
              List.iter check_reg (Op.uses op))
            b.ops)
        f.blocks;
      (* The last block must not fall off the end of the function. *)
      let nb = Array.length f.blocks in
      if nb > 0 then begin
        let last = f.blocks.(nb - 1) in
        let n = Array.length last.ops in
        if n = 0 || not (Op.is_terminator last.ops.(n - 1)) then
          err "function %s: last block %s falls through past the function"
            f.name last.label
      end
      else err "function %s has no blocks" f.name)
    (Prog.funcs_in_order p);
  match List.rev !errs with [] -> Ok () | es -> Error es

let check_exn p =
  match check p with
  | Ok () -> ()
  | Error es ->
    let msg =
      Format.asprintf "@[<v>%a@]"
        (Format.pp_print_list pp_error)
        es
    in
    invalid_arg ("Validate.check_exn:\n" ^ msg)
