(** A benchmark workload: a mini-C program with a size knob.

    [scale] multiplies the working set; [scale = 100] is the reference size
    used by the paper-reproduction benches (working sets past the 3 MB L3),
    smaller values give fast tests. Every workload prints a checksum so
    adapted binaries can be differentially tested against originals. *)

type t = {
  name : string;
  description : string;
  source : int -> string;  (** mini-C source at a given scale *)
  delinquent_hint : string list;
      (** function names whose loads are expected to dominate misses (used
          only by tests as a sanity check, never by the tool) *)
}

val program : t -> scale:int -> Ssp_ir.Prog.t
(** Compile the workload at the given scale. *)
