type t = {
  name : string;
  description : string;
  source : int -> string;
  delinquent_hint : string list;
}

let program t ~scale = Ssp_minic.Frontend.compile (t.source scale)
