(* The treeadd kernels (Olden): sum the values of a balanced binary tree.
   Two traversal orders, as in the paper: depth-first recursion
   (treeadd.df) and breadth-first with an explicit queue (treeadd.bf).
   Nodes are allocated with randomized padding so parent and children do
   not share cache lines systematically. *)

let common_build =
  {|
struct tree { int value; tree* left; tree* right; }

int pad_sink;

void pad() {
  // Fragment the heap so tree links defeat spatial locality.
  int k = rand() % 4;
  if (k > 0) {
    int* junk = newarray(int, k * 3);
    junk[0] = 1;
    pad_sink = pad_sink + junk[0];
  }
}

tree* build(int depth) {
  tree* t = new tree;
  pad();
  t->value = 1;
  if (depth > 0) {
    t->left = build(depth - 1);
    t->right = build(depth - 1);
  } else {
    t->left = null;
    t->right = null;
  }
  return t;
}
|}

let df_source scale =
  (* depth 10 + log2(scale): scale=100 → depth 16, 131071 nodes. *)
  let depth = min 21 (12 + int_of_float (Float.log2 (float_of_int (max 1 scale)))) in
  Printf.sprintf
    {|
// treeadd.df: depth-first sum of a balanced binary tree.
%s
int treeadd(tree* t) {
  if (t == null) { return 0; }
  return t->value + treeadd(t->left) + treeadd(t->right);
}

int main() {
  tree* root = build(%d);
  int s = 0;
  for (int pass = 0; pass < 2; pass = pass + 1) {
    s = s + treeadd(root);
  }
  print_int(s);
  return 0;
}
|}
    common_build depth

let bf_source scale =
  let depth = min 21 (12 + int_of_float (Float.log2 (float_of_int (max 1 scale)))) in
  Printf.sprintf
    {|
// treeadd.bf: breadth-first sum using an explicit ring-buffer queue.
%s
int treeadd_bf(tree* root, int capacity) {
  tree** queue = newarray(tree*, capacity);
  int head = 0;
  int tail = 0;
  queue[tail] = root;
  tail = tail + 1;
  int s = 0;
  while (head != tail) {
    tree* t = queue[head];
    head = (head + 1) %% capacity;
    s = s + t->value;
    if (t->left != null) {
      queue[tail] = t->left;
      tail = (tail + 1) %% capacity;
    }
    if (t->right != null) {
      queue[tail] = t->right;
      tail = (tail + 1) %% capacity;
    }
  }
  return s;
}

int main() {
  int depth = %d;
  tree* root = build(depth);
  int capacity = (2 << depth) + 8;
  int s = 0;
  for (int pass = 0; pass < 2; pass = pass + 1) {
    s = s + treeadd_bf(root, capacity);
  }
  print_int(s);
  return 0;
}
|}
    common_build depth

let df =
  {
    Workload.name = "treeadd.df";
    description = "depth-first balanced-tree sum (Olden treeadd)";
    source = df_source;
    delinquent_hint = [ "treeadd" ];
  }

let bf =
  {
    Workload.name = "treeadd.bf";
    description = "breadth-first balanced-tree sum (Olden treeadd variant)";
    source = bf_source;
    delinquent_hint = [ "treeadd_bf" ];
  }
