(* The health kernel: a hierarchy of villages (4-ary tree), each holding a
   linked list of patients. The simulation recursively visits every village
   and walks its patient list, updating each patient — the list-walk loads
   (patient->time, patient->next) are the delinquent loads. Patients are
   allocated with randomized interleaving across villages so consecutive
   list elements are far apart in memory. *)

let source scale =
  (* 4-ary village tree of depth 5 (1365 villages); the patient-list
     lengths carry the scale so the working set grows linearly. *)
  let depth = if scale >= 8 then 5 else 4 in
  let patients = max 2 (3 * scale) in
  Printf.sprintf
    {|
// health: hierarchical health-care simulation (Olden health kernel).
struct patient { int time; int units; int severity; patient* next; }
struct village {
  village* child0; village* child1; village* child2; village* child3;
  patient* list;
  int seed;
  int npatients;
}

int pad_sink;

void pad() {
  int k = rand() %% 3;
  if (k > 0) {
    int* junk = newarray(int, k * 5);
    junk[0] = 1;
    pad_sink = pad_sink + junk[0];
  }
}

village* build(int level) {
  village* v = new village;
  pad();
  v->seed = rand() %% 1000;
  v->npatients = %d;
  v->list = null;
  patient* tail = null;
  for (int i = 0; i < v->npatients; i = i + 1) {
    patient* p = new patient;
    pad();
    p->time = rand() %% 100;
    p->units = rand() %% 10;
    p->severity = rand() %% 4;
    p->next = null;
    if (tail == null) {
      v->list = p;
    } else {
      tail->next = p;
    }
    tail = p;
  }
  if (level > 0) {
    v->child0 = build(level - 1);
    v->child1 = build(level - 1);
    v->child2 = build(level - 1);
    v->child3 = build(level - 1);
  } else {
    v->child0 = null;
    v->child1 = null;
    v->child2 = null;
    v->child3 = null;
  }
  return v;
}

// One simulation step: age every patient in the subtree, discharging
// units; returns an activity checksum.
int simulate(village* v) {
  if (v == null) { return 0; }
  int s = simulate(v->child0);
  s = s + simulate(v->child1);
  s = s + simulate(v->child2);
  s = s + simulate(v->child3);
  patient* p = v->list;
  while (p != null) {
    p->time = p->time + 1;
    if (p->units > 0) {
      p->units = p->units - 1;
    }
    s = s + p->time + p->severity;
    p = p->next;
  }
  return s;
}

int main() {
  village* top = build(%d);
  int s = 0;
  for (int step = 0; step < 2; step = step + 1) {
    s = s + simulate(top);
  }
  print_int(s);
  return 0;
}
|}
    patients depth

let workload =
  {
    Workload.name = "health";
    description = "hierarchical health-care simulation (Olden health kernel)";
    source;
    delinquent_hint = [ "simulate" ];
  }
