(* The em3d kernel (Olden): electromagnetic wave propagation on a bipartite
   graph. Each E node's value is updated from the values of its H-side
   neighbors (and vice versa) through per-node neighbor pointer arrays;
   neighbors are chosen randomly, so the [from[j]->value] loads are
   scattered — the delinquent loads. Fixed-point integer arithmetic
   substitutes for the original floating point (DESIGN.md §2). *)

let source scale =
  let n = max 32 (400 * scale) in
  let degree = 10 in
  Printf.sprintf
    {|
// em3d: bipartite graph relaxation (Olden em3d kernel, fixed-point).
struct enode { int value; int degree; enode** from; int* coeffs; }

enode* e_side;
enode* h_side;
int nnodes;
int degree;

int pad_sink;

void pad() {
  int k = rand() %% 3;
  if (k > 0) {
    int* junk = newarray(int, k * 2);
    junk[0] = 1;
    pad_sink = pad_sink + junk[0];
  }
}

void init_side(enode* side, enode* other) {
  for (int i = 0; i < nnodes; i = i + 1) {
    enode* n = side + i;
    n->value = rand() %% 4096;
    n->degree = degree;
    n->from = newarray(enode*, degree);
    pad();
    n->coeffs = newarray(int, degree);
    for (int j = 0; j < degree; j = j + 1) {
      n->from[j] = other + rand() %% nnodes;
      n->coeffs[j] = rand() %% 256;
    }
  }
}

void build() {
  nnodes = %d;
  degree = %d;
  e_side = newarray(enode, nnodes);
  h_side = newarray(enode, nnodes);
  init_side(e_side, h_side);
  init_side(h_side, e_side);
}

// One relaxation step over a side; returns a checksum of updated values.
int compute(enode* side) {
  int check = 0;
  for (int i = 0; i < nnodes; i = i + 1) {
    enode* n = side + i;
    int acc = n->value << 8;
    for (int j = 0; j < n->degree; j = j + 1) {
      acc = acc - n->coeffs[j] * n->from[j]->value;
    }
    n->value = (acc >> 8) & 4095;
    check = check + n->value;
  }
  return check;
}

int main() {
  build();
  int s = 0;
  for (int iter = 0; iter < 2; iter = iter + 1) {
    s = s + compute(e_side);
    s = s + compute(h_side);
  }
  print_int(s);
  return 0;
}
|}
    n degree

let workload =
  {
    Workload.name = "em3d";
    description = "bipartite electromagnetic relaxation (Olden em3d kernel)";
    source;
    delinquent_hint = [ "compute" ];
  }
