(* The vpr kernel: the placement-cost inner loop of FPGA place & route.
   Each net holds an array of pointers to the blocks it connects; the cost
   function walks every net and dereferences each pin's block to read its
   coordinates (bounding-box computation). Blocks are placed randomly, so
   the [pins[j]->x] loads scatter across the block array — the delinquent
   loads. A perturbation phase moves random blocks between cost passes. *)

let source scale =
  let nblocks = max 64 (6000 * scale) in
  let nnets = max 16 (1200 * scale) in
  let pins = 4 in
  Printf.sprintf
    {|
// vpr: placement bounding-box cost (SPEC CPU2000 vpr kernel).
struct block { int x; int y; int kind; }
struct net { int npins; block** pins; }

block* blocks;
net* nets;
int nblocks;
int nnets;
int grid;

int pad_sink;

void pad() {
  int k = rand() %% 3;
  if (k > 0) {
    int* junk = newarray(int, k * 2);
    junk[0] = 1;
    pad_sink = pad_sink + junk[0];
  }
}

void build() {
  nblocks = %d;
  nnets = %d;
  grid = 512;
  blocks = newarray(block, nblocks);
  for (int i = 0; i < nblocks; i = i + 1) {
    block* b = blocks + i;
    b->x = rand() %% grid;
    b->y = rand() %% grid;
    b->kind = rand() %% 3;
  }
  nets = newarray(net, nnets);
  for (int i = 0; i < nnets; i = i + 1) {
    net* n = nets + i;
    n->npins = %d;
    n->pins = newarray(block*, n->npins);
    pad();
    for (int j = 0; j < n->npins; j = j + 1) {
      n->pins[j] = blocks + rand() %% nblocks;
    }
  }
}

// Half-perimeter wirelength of one net's bounding box.
int net_cost(net* n) {
  block* first = n->pins[0];
  int minx = first->x;
  int maxx = first->x;
  int miny = first->y;
  int maxy = first->y;
  for (int j = 1; j < n->npins; j = j + 1) {
    block* b = n->pins[j];
    int bx = b->x;
    int by = b->y;
    if (bx < minx) { minx = bx; }
    if (bx > maxx) { maxx = bx; }
    if (by < miny) { miny = by; }
    if (by > maxy) { maxy = by; }
  }
  return (maxx - minx) + (maxy - miny);
}

int placement_cost() {
  int cost = 0;
  for (int i = 0; i < nnets; i = i + 1) {
    cost = cost + net_cost(nets + i);
  }
  return cost;
}

void perturb(int moves) {
  for (int m = 0; m < moves; m = m + 1) {
    block* b = blocks + rand() %% nblocks;
    b->x = rand() %% grid;
    b->y = rand() %% grid;
  }
}

int main() {
  build();
  int s = 0;
  for (int temp = 0; temp < 3; temp = temp + 1) {
    s = s + placement_cost();
    perturb(nnets / 8 + 1);
  }
  print_int(s);
  return 0;
}
|}
    nblocks nnets pins

let workload =
  {
    Workload.name = "vpr";
    description = "FPGA placement bounding-box cost (SPEC CPU2000 vpr kernel)";
    source;
    delinquent_hint = [ "net_cost" ];
  }
