let all =
  [
    Em3d.workload;
    Health.workload;
    Mst.workload;
    Treeadd.df;
    Treeadd.bf;
    Mcf.workload;
    Vpr.workload;
  ]

let find name =
  List.find (fun w -> String.equal w.Workload.name name) all

let reference_scale = 32
let test_scale = 2
