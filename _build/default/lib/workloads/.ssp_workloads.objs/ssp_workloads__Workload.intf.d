lib/workloads/workload.mli: Ssp_ir
