lib/workloads/treeadd.ml: Float Printf Workload
