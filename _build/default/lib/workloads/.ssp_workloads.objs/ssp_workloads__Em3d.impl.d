lib/workloads/em3d.ml: Printf Workload
