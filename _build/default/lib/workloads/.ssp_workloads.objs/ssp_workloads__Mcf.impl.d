lib/workloads/mcf.ml: Printf Workload
