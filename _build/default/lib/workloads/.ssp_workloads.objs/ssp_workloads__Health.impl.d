lib/workloads/health.ml: Printf Workload
