lib/workloads/vpr.ml: Printf Workload
