lib/workloads/suite.ml: Em3d Health List Mcf Mst String Treeadd Vpr Workload
