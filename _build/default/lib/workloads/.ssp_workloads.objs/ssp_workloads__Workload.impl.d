lib/workloads/workload.ml: Ssp_minic
