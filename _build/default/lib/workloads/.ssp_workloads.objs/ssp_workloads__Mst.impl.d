lib/workloads/mst.ml: Float Printf Workload
