(* The mcf kernel: the arc-pricing loop of primal network simplex
   (primal_bea_mpp), the paper's running example (Figure 3). An array of
   arcs is scanned group by group; each arc dereferences its tail and head
   node pointers to compute a reduced cost. The loads of
   [arc->tail->potential] are the delinquent loads. *)

let source scale =
  let nnodes = max 64 (4000 * scale) in
  let narcs = max 64 (1500 * scale) in
  let nr_group = 11 in
  Printf.sprintf
    {|
// mcf: simplified primal_bea_mpp arc pricing.
struct node_t { int potential; int orientation; int supply; int flow; }
struct arc_t { int cost; node_t* tail; node_t* head; int ident; }

arc_t* arcs;
node_t* nodes;
int nnodes;
int narcs;
int nr_group;

void build() {
  nnodes = %d;
  narcs = %d;
  nr_group = %d;
  nodes = newarray(node_t, nnodes);
  for (int i = 0; i < nnodes; i = i + 1) {
    node_t* n = nodes + i;
    n->potential = rand() %% 10000 - 5000;
    n->orientation = rand() %% 2;
    n->supply = 0;
    n->flow = 0;
  }
  arcs = newarray(arc_t, narcs);
  for (int i = 0; i < narcs; i = i + 1) {
    arc_t* a = arcs + i;
    a->cost = rand() %% 1000;
    a->tail = nodes + rand() %% nnodes;
    a->head = nodes + rand() %% nnodes;
    a->ident = rand() %% 4;
  }
}

// One basket pass over an arc group; returns the number of arcs priced
// into the basket (negative reduced cost).
int primal_bea_mpp(int group) {
  int basket = 0;
  arc_t* arc = arcs + group;
  arc_t* stop = arcs + narcs;
  while (arc < stop) {
    if (arc->ident > 0) {
      int red_cost = arc->cost - arc->tail->potential + arc->head->potential;
      if (red_cost < 0) {
        basket = basket + 1;
      }
    }
    arc = arc + nr_group;
  }
  return basket;
}

int main() {
  build();
  int total = 0;
  for (int g = 0; g < nr_group; g = g + 1) {
    total = total + primal_bea_mpp(g);
  }
  print_int(total);
  return 0;
}
|}
    nnodes narcs nr_group

let workload =
  {
    Workload.name = "mcf";
    description = "network simplex arc pricing (SPEC CPU2000 mcf kernel)";
    source;
    delinquent_hint = [ "primal_bea_mpp" ];
  }
