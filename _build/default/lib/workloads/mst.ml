(* The mst kernel (Olden): minimum-spanning-tree over a dense graph whose
   edge weights live in per-vertex chained hash tables. The BlueRule phase
   scans, for every tree vertex, all remaining vertices and performs a hash
   lookup in each one's table — long chains of dependent pointer loads
   (bucket heads and chain links) dominate the misses. *)

let source scale =
  let n = max 16 (70 * int_of_float (Float.sqrt (float_of_int (max 1 scale)))) in
  let passes = 2 in
  Printf.sprintf
    {|
// mst: BlueRule scans over per-vertex hash tables (Olden mst kernel).
struct hash_entry { int key; int weight; hash_entry* next; }
struct vertex { vertex* next; hash_entry** buckets; int id; int mindist; }

int nbuckets;
int nvertices;
vertex* vlist;

int pad_sink;

void pad() {
  int k = rand() %% 3;
  if (k > 0) {
    int* junk = newarray(int, k * 4);
    junk[0] = 1;
    pad_sink = pad_sink + junk[0];
  }
}

int hashfunc(int key) {
  return ((key >> 3) * 2654435761) %% nbuckets;
}

void hash_insert(vertex* v, int key, int weight) {
  int h = hashfunc(key);
  if (h < 0) { h = -h; }
  hash_entry* e = new hash_entry;
  pad();
  e->key = key;
  e->weight = weight;
  e->next = v->buckets[h];
  v->buckets[h] = e;
}

int hash_get(vertex* v, int key) {
  int h = hashfunc(key);
  if (h < 0) { h = -h; }
  hash_entry* e = v->buckets[h];
  while (e != null) {
    if (e->key == key) { return e->weight; }
    e = e->next;
  }
  return 1 << 30;
}

void build() {
  nvertices = %d;
  nbuckets = 32;
  vlist = null;
  for (int i = 0; i < nvertices; i = i + 1) {
    vertex* v = new vertex;
    pad();
    v->id = nvertices - 1 - i;
    v->mindist = 1 << 30;
    v->buckets = newarray(hash_entry*, nbuckets);
    for (int b = 0; b < nbuckets; b = b + 1) {
      v->buckets[b] = null;
    }
    v->next = vlist;
    vlist = v;
  }
  // Dense weights: an entry in every vertex's table for every other vertex.
  vertex* v = vlist;
  while (v != null) {
    for (int j = 0; j < nvertices; j = j + 1) {
      if (j != v->id) {
        hash_insert(v, j, (v->id * 31 + j * 17) %% 1000 + 1);
      }
    }
    v = v->next;
  }
}

// One BlueRule sweep: for each vertex, look up its distance to a probe
// vertex and fold the minimum into a checksum.
int blue_rule(int probe) {
  int sum = 0;
  vertex* v = vlist;
  while (v != null) {
    if (v->id != probe) {
      int d = hash_get(v, probe);
      if (d < v->mindist) {
        v->mindist = d;
      }
      sum = sum + (d %% 97);
    }
    v = v->next;
  }
  return sum;
}

int main() {
  build();
  int s = 0;
  for (int pass = 0; pass < %d; pass = pass + 1) {
    for (int probe = 0; probe < nvertices; probe = probe + 4) {
      s = s + blue_rule(probe);
    }
  }
  print_int(s);
  return 0;
}
|}
    n passes

let workload =
  {
    Workload.name = "mst";
    description = "minimum-spanning-tree hash-table scans (Olden mst kernel)";
    source;
    delinquent_hint = [ "hash_get"; "blue_rule" ];
  }
