type frame = {
  saved_stacked : int64 array;
  ret_blk : int;
  ret_ins : int;
  ret_fn : string;
}

type t = {
  id : int;
  mutable fn : string;
  mutable blk : int;
  mutable ins : int;
  regs : int64 array;
  mutable frames : frame list;
  mutable live_in : int64 array;
  lib_out : int64 array;
  mutable speculative : bool;
  mutable active : bool;
  mutable instrs : int;
  mutable rand_state : int64;
}

let lib_slots = 16

let create ~id =
  {
    id;
    fn = "";
    blk = 0;
    ins = 0;
    regs = Array.make Ssp_isa.Reg.count 0L;
    frames = [];
    live_in = Array.make lib_slots 0L;
    lib_out = Array.make lib_slots 0L;
    speculative = false;
    active = false;
    instrs = 0;
    rand_state = 0x9E3779B97F4A7C15L;
  }

let reset_for_spawn t ~fn ~blk ~live_in ~rand_state =
  t.fn <- fn;
  t.blk <- blk;
  t.ins <- 0;
  Array.fill t.regs 0 (Array.length t.regs) 0L;
  t.frames <- [];
  t.live_in <- Array.copy live_in;
  Array.fill t.lib_out 0 lib_slots 0L;
  t.speculative <- true;
  t.active <- true;
  t.instrs <- 0;
  t.rand_state <- rand_state

let get t r = if r = Ssp_isa.Reg.zero then 0L else t.regs.(r)

let set t r v = if r <> Ssp_isa.Reg.zero then t.regs.(r) <- v
