type category = Cat_l3 | Cat_l2 | Cat_l1 | Cat_cache_exec | Cat_exec | Cat_other

type load_site = {
  mutable accesses : int;
  mutable l1 : int;
  mutable l2 : int;
  mutable l2_partial : int;
  mutable l3 : int;
  mutable l3_partial : int;
  mutable mem : int;
  mutable mem_partial : int;
}

type t = {
  mutable cycles : int;
  mutable main_instrs : int;
  mutable spec_instrs : int;
  mutable spawns : int;
  mutable chk_fired : int;
  mutable mispredicts : int;
  mutable prefetches : int;
  categories : int array;
  loads : load_site Ssp_ir.Iref.Tbl.t;
  mutable outputs : int64 list;
}

let create () =
  {
    cycles = 0;
    main_instrs = 0;
    spec_instrs = 0;
    spawns = 0;
    chk_fired = 0;
    mispredicts = 0;
    prefetches = 0;
    categories = Array.make 6 0;
    loads = Ssp_ir.Iref.Tbl.create 64;
    outputs = [];
  }

let category_index = function
  | Cat_l3 -> 0
  | Cat_l2 -> 1
  | Cat_l1 -> 2
  | Cat_cache_exec -> 3
  | Cat_exec -> 4
  | Cat_other -> 5

let add_category t c =
  let i = category_index c in
  t.categories.(i) <- t.categories.(i) + 1

let load_site t iref =
  match Ssp_ir.Iref.Tbl.find_opt t.loads iref with
  | Some s -> s
  | None ->
    let s =
      {
        accesses = 0;
        l1 = 0;
        l2 = 0;
        l2_partial = 0;
        l3 = 0;
        l3_partial = 0;
        mem = 0;
        mem_partial = 0;
      }
    in
    Ssp_ir.Iref.Tbl.replace t.loads iref s;
    s

let record_load t iref level ~partial =
  let s = load_site t iref in
  s.accesses <- s.accesses + 1;
  match (level, partial) with
  | Hierarchy.L1, _ -> s.l1 <- s.l1 + 1
  | Hierarchy.L2, false -> s.l2 <- s.l2 + 1
  | Hierarchy.L2, true -> s.l2_partial <- s.l2_partial + 1
  | Hierarchy.L3, false -> s.l3 <- s.l3 + 1
  | Hierarchy.L3, true -> s.l3_partial <- s.l3_partial + 1
  | Hierarchy.Mem, false -> s.mem <- s.mem + 1
  | Hierarchy.Mem, true -> s.mem_partial <- s.mem_partial + 1

let finish t =
  t.outputs <- List.rev t.outputs;
  t

let ipc t =
  if t.cycles = 0 then 0.0 else float_of_int t.main_instrs /. float_of_int t.cycles

let pp ppf t =
  let cat name i = (name, t.categories.(i)) in
  let cats =
    [
      cat "L3" 0; cat "L2" 1; cat "L1" 2; cat "Cache+Exec" 3; cat "Exec" 4;
      cat "Other" 5;
    ]
  in
  Format.fprintf ppf
    "@[<v>cycles        %d@,main instrs   %d (IPC %.3f)@,spec instrs   %d@,\
     spawns        %d (chk fired %d)@,mispredicts   %d@,prefetches    %d@,\
     cycle breakdown:@,"
    t.cycles t.main_instrs (ipc t) t.spec_instrs t.spawns t.chk_fired
    t.mispredicts t.prefetches;
  List.iter
    (fun (n, v) ->
      Format.fprintf ppf "  %-11s %d (%.1f%%)@," n v
        (if t.cycles = 0 then 0.0
         else 100.0 *. float_of_int v /. float_of_int t.cycles))
    cats;
  Format.fprintf ppf "@]"
