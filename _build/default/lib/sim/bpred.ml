type t = {
  counters : int array;  (* 2-bit saturating *)
  mask : int;
  history : int array;  (* per thread *)
  btb_tags : int array;  (* sets * ways, -1 invalid *)
  btb_lru : int array;
  btb_sets : int;
  btb_ways : int;
  mutable clock : int;
  mutable lookups : int;
  mutable mispredicts : int;
}

let create (cfg : Ssp_machine.Config.t) =
  let n = cfg.gshare_entries in
  let sets = cfg.btb_entries / cfg.btb_ways in
  {
    counters = Array.make n 2;
    mask = n - 1;
    history = Array.make cfg.n_contexts 0;
    btb_tags = Array.make (sets * cfg.btb_ways) (-1);
    btb_lru = Array.make (sets * cfg.btb_ways) 0;
    btb_sets = sets;
    btb_ways = cfg.btb_ways;
    clock = 0;
    lookups = 0;
    mispredicts = 0;
  }

let index t ~thread ~pc = (pc lxor t.history.(thread)) land t.mask

let predict t ~thread ~pc =
  t.lookups <- t.lookups + 1;
  t.counters.(index t ~thread ~pc) >= 2

let update t ~thread ~pc ~taken =
  let i = index t ~thread ~pc in
  let c = t.counters.(i) in
  let predicted = c >= 2 in
  if predicted <> taken then t.mispredicts <- t.mispredicts + 1;
  t.counters.(i) <- (if taken then min 3 (c + 1) else max 0 (c - 1));
  t.history.(thread) <- ((t.history.(thread) lsl 1) lor Bool.to_int taken) land t.mask

let btb_find t ~pc =
  let s = pc mod t.btb_sets in
  let base = s * t.btb_ways in
  let rec go w =
    if w >= t.btb_ways then None
    else if t.btb_tags.(base + w) = pc then Some (base + w)
    else go (w + 1)
  in
  go 0

let btb_lookup t ~pc =
  match btb_find t ~pc with
  | Some i ->
    t.clock <- t.clock + 1;
    t.btb_lru.(i) <- t.clock;
    true
  | None -> false

let btb_insert t ~pc =
  match btb_find t ~pc with
  | Some _ -> ()
  | None ->
    let s = pc mod t.btb_sets in
    let base = s * t.btb_ways in
    let victim = ref base in
    for w = 1 to t.btb_ways - 1 do
      if t.btb_lru.(base + w) < t.btb_lru.(!victim) then victim := base + w
    done;
    t.clock <- t.clock + 1;
    t.btb_tags.(!victim) <- pc;
    t.btb_lru.(!victim) <- t.clock

let mispredicts t = t.mispredicts
let lookups t = t.lookups
