(** Branch prediction: a 2k-entry gshare direction predictor and a
    256-entry 4-way BTB for targets. History registers are per thread;
    prediction tables are shared (SMT). *)

type t

val create : Ssp_machine.Config.t -> t

val predict : t -> thread:int -> pc:int -> bool
(** Predicted direction for the branch at the given (hashed) pc. *)

val update : t -> thread:int -> pc:int -> taken:bool -> unit
(** Train the predictor and advance the thread's history. *)

val btb_lookup : t -> pc:int -> bool
(** Whether the BTB knows the target of the branch at the pc. *)

val btb_insert : t -> pc:int -> unit

val mispredicts : t -> int
val lookups : t -> int
