(** Architectural state of one hardware thread context: program counter,
    register file, register-stack frames, and the live-in buffer views used
    by SSP spawning. *)

type frame = {
  saved_stacked : int64 array;  (** r32–r127 of the caller *)
  ret_blk : int;
  ret_ins : int;
  ret_fn : string;
}

type t = {
  id : int;  (** hardware context number *)
  mutable fn : string;
  mutable blk : int;
  mutable ins : int;
  regs : int64 array;  (** 128 registers; r0 kept at zero *)
  mutable frames : frame list;
  mutable live_in : int64 array;  (** snapshot received at spawn *)
  lib_out : int64 array;  (** staging area for the next spawn *)
  mutable speculative : bool;
  mutable active : bool;
  mutable instrs : int;  (** dynamic instructions executed *)
  mutable rand_state : int64;
}

val lib_slots : int
(** Live-in buffer capacity (one register-stack spill area's worth). *)

val create : id:int -> t

val reset_for_spawn :
  t -> fn:string -> blk:int -> live_in:int64 array -> rand_state:int64 -> unit
(** Reinitialize a context as a speculative thread starting at the given
    block with the given live-in snapshot. *)

val get : t -> Ssp_isa.Reg.t -> int64
val set : t -> Ssp_isa.Reg.t -> int64 -> unit
