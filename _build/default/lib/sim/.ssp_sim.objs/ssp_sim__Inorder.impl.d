lib/sim/inorder.ml: Array Bpred Bundle Config Exec Hashtbl Hierarchy Latency List Op Smt Ssp_ir Ssp_isa Ssp_machine Stats Thread
