lib/sim/hierarchy.ml: Cache Config Format Int64 List Ssp_machine
