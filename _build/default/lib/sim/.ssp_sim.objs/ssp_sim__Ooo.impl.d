lib/sim/ooo.ml: Array Bpred Config Exec Hierarchy Latency List Op Queue Smt Ssp_ir Ssp_isa Ssp_machine Stats Thread
