lib/sim/cache.ml: Array Float Int64 Option Ssp_machine
