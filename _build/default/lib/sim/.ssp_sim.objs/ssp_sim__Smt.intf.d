lib/sim/smt.mli: Bpred Hierarchy Memory Ssp_ir Ssp_machine Stats Thread
