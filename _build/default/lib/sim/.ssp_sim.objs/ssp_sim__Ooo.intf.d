lib/sim/ooo.mli: Ssp_ir Ssp_machine Stats
