lib/sim/thread.mli: Ssp_isa
