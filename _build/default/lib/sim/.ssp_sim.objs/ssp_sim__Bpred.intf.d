lib/sim/bpred.mli: Ssp_machine
