lib/sim/funcsim.ml: Array Exec List Memory Option Ssp_ir Ssp_isa Thread
