lib/sim/smt.ml: Array Bpred Config Hashtbl Hierarchy Int64 List Memory Ssp_ir Ssp_isa Ssp_machine Stats Thread
