lib/sim/funcsim.mli: Exec Ssp_ir Ssp_isa Thread
