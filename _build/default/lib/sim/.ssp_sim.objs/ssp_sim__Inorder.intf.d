lib/sim/inorder.mli: Ssp_ir Ssp_machine Stats
