lib/sim/exec.ml: Array Int64 Memory Op Printf Reg Ssp_ir Ssp_isa Thread
