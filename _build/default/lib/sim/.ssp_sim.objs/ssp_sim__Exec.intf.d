lib/sim/exec.mli: Memory Ssp_ir Ssp_isa Thread
