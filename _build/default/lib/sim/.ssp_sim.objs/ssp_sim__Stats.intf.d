lib/sim/stats.mli: Format Hierarchy Ssp_ir
