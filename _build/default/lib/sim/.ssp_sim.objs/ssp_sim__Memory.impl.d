lib/sim/memory.ml: Bytes Char Hashtbl Int64 Ssp_ir
