lib/sim/hierarchy.mli: Format Ssp_machine
