lib/sim/cache.mli: Ssp_machine
