lib/sim/thread.ml: Array Ssp_isa
