lib/sim/memory.mli:
