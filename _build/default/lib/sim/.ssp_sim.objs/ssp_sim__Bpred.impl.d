lib/sim/bpred.ml: Array Bool Ssp_machine
