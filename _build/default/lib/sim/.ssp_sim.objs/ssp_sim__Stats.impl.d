lib/sim/stats.ml: Array Format Hierarchy List Ssp_ir
