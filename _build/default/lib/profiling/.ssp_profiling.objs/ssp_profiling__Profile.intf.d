lib/profiling/profile.mli: Hashtbl Ssp_ir Ssp_machine
