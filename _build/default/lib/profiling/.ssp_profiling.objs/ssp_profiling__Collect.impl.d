lib/profiling/collect.ml: Array Hashtbl List Op Option Profile Ssp_ir Ssp_isa Ssp_machine Ssp_sim
