lib/profiling/collect.mli: Profile Ssp_ir Ssp_machine
