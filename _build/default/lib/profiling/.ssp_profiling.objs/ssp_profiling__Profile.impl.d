lib/profiling/profile.ml: Array Hashtbl List Option Ssp_ir Ssp_machine
