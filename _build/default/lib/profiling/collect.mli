(** Profile collection: the "first pass" of Figure 1.

    Runs the original binary on the functional simulator with the cache
    hierarchy attached. The pseudo-clock advances one cycle per executed
    instruction (an in-order machine at IPC ≈ 1), which is accurate enough
    to rank loads by miss cycles and to annotate latencies; the real cycle
    models are used for all reported results. *)

val collect :
  ?config:Ssp_machine.Config.t ->
  ?max_instrs:int ->
  Ssp_ir.Prog.t ->
  Profile.t
(** [config] defaults to the in-order model (its cache geometry is what
    matters here). *)
