(** Profile data consumed by the post-pass tool: run-time block frequencies
    (annotating the CFG, §2.2), per-branch direction bias (condition
    prediction, §3.2.1.1), per-static-load cache behaviour (delinquent-load
    identification and latency annotation), and the dynamic call graph of
    indirect calls (speculative slicing, §3.1.2). *)

type load_stats = {
  mutable accesses : int;
  mutable l1_hits : int;
  mutable l2_hits : int;
  mutable l3_hits : int;
  mutable mem_hits : int;
  mutable partial_hits : int;
  mutable miss_cycles : int;
      (** total cycles spent beyond an L1 hit, the paper's "miss cycles" *)
}

type branch_stats = { mutable taken : int; mutable not_taken : int }

type t = {
  blocks : (string, int array) Hashtbl.t;  (** executions per block *)
  branches : branch_stats Ssp_ir.Iref.Tbl.t;
  loads : load_stats Ssp_ir.Iref.Tbl.t;
  calls : (string, int) Hashtbl.t Ssp_ir.Iref.Tbl.t;
      (** per call site (direct and indirect): callee → count *)
  mutable total_instrs : int;
}

val create : unit -> t

val block_freq : t -> string -> int -> int
val branch_bias : t -> Ssp_ir.Iref.t -> branch_stats option
val load_stats : t -> Ssp_ir.Iref.t -> load_stats option

val taken_ratio : branch_stats -> float

val call_targets : t -> Ssp_ir.Iref.t -> (string * int) list
(** Callees observed at the site, most frequent first. *)

val dominant_call_site : t -> callee:string -> Ssp_ir.Iref.t option
(** The most frequent call site targeting the function. *)

val avg_load_latency : t -> Ssp_machine.Config.t -> Ssp_ir.Iref.t -> int
(** Average observed load-to-use latency of the static load (L1 latency if
    never profiled) — the latency annotation the scheduler puts on
    dependence edges. *)

val total_miss_cycles : t -> int

val executed : t -> Ssp_ir.Iref.t -> bool
(** Whether the instruction's block was ever executed (control-flow
    speculation filter). *)
