type load_stats = {
  mutable accesses : int;
  mutable l1_hits : int;
  mutable l2_hits : int;
  mutable l3_hits : int;
  mutable mem_hits : int;
  mutable partial_hits : int;
  mutable miss_cycles : int;
}

type branch_stats = { mutable taken : int; mutable not_taken : int }

type t = {
  blocks : (string, int array) Hashtbl.t;
  branches : branch_stats Ssp_ir.Iref.Tbl.t;
  loads : load_stats Ssp_ir.Iref.Tbl.t;
  calls : (string, int) Hashtbl.t Ssp_ir.Iref.Tbl.t;
  mutable total_instrs : int;
}

let create () =
  {
    blocks = Hashtbl.create 16;
    branches = Ssp_ir.Iref.Tbl.create 64;
    loads = Ssp_ir.Iref.Tbl.create 64;
    calls = Ssp_ir.Iref.Tbl.create 16;
    total_instrs = 0;
  }

let block_freq t fn blk =
  match Hashtbl.find_opt t.blocks fn with
  | Some arr when blk < Array.length arr -> arr.(blk)
  | Some _ | None -> 0

let branch_bias t i = Ssp_ir.Iref.Tbl.find_opt t.branches i
let load_stats t i = Ssp_ir.Iref.Tbl.find_opt t.loads i

let taken_ratio b =
  let n = b.taken + b.not_taken in
  if n = 0 then 0.0 else float_of_int b.taken /. float_of_int n

let call_targets t i =
  match Ssp_ir.Iref.Tbl.find_opt t.calls i with
  | None -> []
  | Some tbl ->
    Hashtbl.fold (fun callee n acc -> (callee, n) :: acc) tbl []
    |> List.sort (fun (_, a) (_, b) -> compare b a)

let dominant_call_site t ~callee =
  let best = ref None in
  Ssp_ir.Iref.Tbl.iter
    (fun site tbl ->
      match Hashtbl.find_opt tbl callee with
      | Some n -> (
        match !best with
        | Some (_, m) when m >= n -> ()
        | _ -> best := Some (site, n))
      | None -> ())
    t.calls;
  Option.map fst !best

let avg_load_latency t (cfg : Ssp_machine.Config.t) i =
  let l1 = cfg.Ssp_machine.Config.l1.Ssp_machine.Config.latency in
  match load_stats t i with
  | None -> l1
  | Some s when s.accesses = 0 -> l1
  | Some s -> l1 + (s.miss_cycles / s.accesses)

let total_miss_cycles t =
  Ssp_ir.Iref.Tbl.fold (fun _ s acc -> acc + s.miss_cycles) t.loads 0

let executed t (i : Ssp_ir.Iref.t) = block_freq t i.fn i.blk > 0
