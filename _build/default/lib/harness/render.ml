let table ppf ~header rows =
  let all = header :: rows in
  let ncols =
    List.fold_left (fun acc r -> max acc (List.length r)) 0 all
  in
  let width c =
    List.fold_left
      (fun acc row ->
        match List.nth_opt row c with
        | Some s -> max acc (String.length s)
        | None -> acc)
      0 all
  in
  let widths = List.init ncols width in
  let print_row row =
    List.iteri
      (fun c w ->
        let s = Option.value ~default:"" (List.nth_opt row c) in
        if c = 0 then Format.fprintf ppf "%-*s" w s
        else Format.fprintf ppf "  %*s" w s)
      widths;
    Format.fprintf ppf "@,"
  in
  Format.fprintf ppf "@[<v>";
  print_row header;
  List.iteri
    (fun c w ->
      if c = 0 then Format.fprintf ppf "%s" (String.make w '-')
      else Format.fprintf ppf "  %s" (String.make w '-'))
    widths;
  Format.fprintf ppf "@,";
  List.iter print_row rows;
  Format.fprintf ppf "@]"

let bar v ~max:m ~width =
  let n =
    if m <= 0.0 then 0
    else int_of_float (Float.round (v /. m *. float_of_int width))
  in
  String.make (max 0 (min width n)) '#'

let f2 v = Printf.sprintf "%.2f" v
let pct v = Printf.sprintf "%.1f%%" (100.0 *. v)
