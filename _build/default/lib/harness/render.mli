(** Plain-text table rendering for the regenerated figures. *)

val table :
  Format.formatter -> header:string list -> string list list -> unit
(** Column-aligned table with a separator under the header. *)

val bar : float -> max:float -> width:int -> string
(** An ASCII bar proportional to the value (for figure-like output). *)

val f2 : float -> string
val pct : float -> string
