open Ssp_machine

type row = {
  benchmark : string;
  pipeline : string;
  auto_speedup : float;
  hand_speedup : float;
  retained : float;
}

let run_one setting name pipeline =
  let w = Ssp_workloads.Suite.find name in
  let prog = Ssp_workloads.Workload.program w ~scale:setting.Experiment.scale in
  let cfg = Experiment.config_for setting pipeline in
  let profile = Ssp_profiling.Collect.collect ~config:cfg prog in
  let simulate p =
    match cfg.Config.pipeline with
    | Config.In_order -> Ssp_sim.Inorder.run cfg p
    | Config.Out_of_order -> Ssp_sim.Ooo.run cfg p
  in
  let base = simulate prog in
  let auto = Ssp.Adapt.run ~config:cfg prog profile in
  let auto_stats = simulate auto.Ssp.Adapt.prog in
  let hand =
    match Ssp.Hand.adapt ~workload:name ~config:cfg prog profile with
    | Some r -> r
    | None -> auto
  in
  let hand_stats = simulate hand.Ssp.Adapt.prog in
  let s x = Experiment.speedup ~baseline:base x in
  let auto_speedup = s auto_stats and hand_speedup = s hand_stats in
  let retained =
    if hand_speedup <= 1.0 then 1.0
    else (auto_speedup -. 1.0) /. (hand_speedup -. 1.0)
  in
  {
    benchmark = name;
    pipeline =
      (match pipeline with
      | Config.In_order -> "in-order"
      | Config.Out_of_order -> "ooo");
    auto_speedup;
    hand_speedup;
    retained;
  }

let run ?(setting = Experiment.reference) () =
  List.concat_map
    (fun name ->
      [
        run_one setting name Config.In_order;
        run_one setting name Config.Out_of_order;
      ])
    [ "mcf"; "health" ]

let print ?setting ppf () =
  let rows = run ?setting () in
  Format.fprintf ppf
    "@[<v>Section 4.5. Automatic vs hand adaptation (speedup over the same \
     baseline)@,@,";
  Render.table ppf
    ~header:[ "benchmark"; "pipeline"; "auto"; "hand"; "gain retained" ]
    (List.map
       (fun r ->
         [
           r.benchmark;
           r.pipeline;
           Render.f2 r.auto_speedup;
           Render.f2 r.hand_speedup;
           Render.pct r.retained;
         ])
       rows);
  Format.fprintf ppf "@]"
