(** The paper's tables and figures, regenerated as text.

    Every function runs (or reuses) the per-benchmark simulations of
    {!Experiment} and prints rows matching the corresponding exhibit:

    - {!table1}: the machine models;
    - {!fig2}: speedup with a perfect memory subsystem vs. with perfect
      delinquent loads, on both pipelines (baseline: in-order for the
      in-order rows, OOO for the OOO rows, as in the paper);
    - {!table2}: slice characteristics;
    - {!fig8}: speedups of in-order+SSP, OOO and OOO+SSP over the baseline
      in-order processor;
    - {!fig9}: where delinquent loads are satisfied when they miss L1
      (L2/L3/memory, with partial-hit splits), for the four configurations;
    - {!fig10}: normalized cycle breakdown (L3/L2/L1/Cache+Exec/Exec/Other)
      for em3d, treeadd.df and vpr. *)

val table1 : Format.formatter -> unit -> unit
val fig2 : ?setting:Experiment.setting -> Format.formatter -> unit -> unit
val table2 : ?setting:Experiment.setting -> Format.formatter -> unit -> unit
val fig8 : ?setting:Experiment.setting -> Format.formatter -> unit -> unit
val fig9 : ?setting:Experiment.setting -> Format.formatter -> unit -> unit
val fig10 : ?setting:Experiment.setting -> Format.formatter -> unit -> unit

val fig8_data :
  ?setting:Experiment.setting -> unit -> (string * float * float * float) list
(** (benchmark, in-order+SSP, OOO, OOO+SSP) speedups — for tests and
    EXPERIMENTS.md. *)
