lib/harness/ablation.mli: Experiment Format
