lib/harness/render.mli: Format
