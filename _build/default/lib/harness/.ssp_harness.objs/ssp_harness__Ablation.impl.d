lib/harness/ablation.ml: Experiment Format List Render Ssp Ssp_analysis Ssp_ir Ssp_machine Ssp_profiling Ssp_sim Ssp_workloads
