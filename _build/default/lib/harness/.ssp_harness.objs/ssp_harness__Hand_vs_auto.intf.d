lib/harness/hand_vs_auto.mli: Experiment Format
