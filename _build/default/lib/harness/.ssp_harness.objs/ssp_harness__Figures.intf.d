lib/harness/figures.mli: Experiment Format
