lib/harness/experiment.mli: Ssp Ssp_ir Ssp_machine Ssp_profiling Ssp_sim Ssp_workloads
