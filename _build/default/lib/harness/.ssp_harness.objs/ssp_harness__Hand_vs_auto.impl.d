lib/harness/hand_vs_auto.ml: Config Experiment Format List Render Ssp Ssp_machine Ssp_profiling Ssp_sim Ssp_workloads
