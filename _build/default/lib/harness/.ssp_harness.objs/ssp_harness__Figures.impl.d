lib/harness/figures.ml: Array Experiment Format List Printf Render Ssp Ssp_ir Ssp_machine Ssp_sim Ssp_workloads
