lib/harness/render.ml: Float Format List Option Printf String
