lib/harness/experiment.ml: Config Hashtbl List Printf Ssp Ssp_ir Ssp_machine Ssp_profiling Ssp_sim Ssp_workloads
